// Command burstgen materializes the synthetic RouteViews-like dataset as
// MRT files — one BGP4MP update file per requested session plus a
// TABLE_DUMP_V2 RIB snapshot — so external tooling (or this repo's own
// readers) can consume the traces exactly like collector archives. The
// emitted pair feeds straight into the event pipeline: swift-replay
// and mrt.Source replay it in-process, bmpgen replays it over the wire
// as a synthetic BMP router.
//
// Usage:
//
//	burstgen -out /tmp/swift-traces -sessions 3 -ases 400
package main

import (
	"flag"
	"fmt"

	"os"
	"path/filepath"
	"swift/internal/telemetry/logging"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpsim"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	"swift/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "traces", "output directory")
		seed     = flag.Int64("seed", 1, "random seed")
		ases     = flag.Int("ases", 400, "topology size")
		sessions = flag.Int("sessions", 3, "sessions to materialize as MRT")
		failures = flag.Int("failures", 60, "failures over the month")
		maxPfx   = flag.Int("maxprefixes", 10000, "largest origin's prefix count")
		minBurst = flag.Int("minburst", 1000, "skip bursts smaller than this")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lvl, lerr := logging.ParseLevel(*logLevel)
	if lerr != nil {
		logging.New(os.Stderr, logging.Info).Fatalf("%v", lerr)
	}
	logger := logging.New(os.Stderr, lvl)

	ds := trace.Generate(trace.Config{
		NumASes:           *ases,
		AvgDegree:         8.4,
		Sessions:          *sessions * 4,
		Days:              30,
		Failures:          *failures,
		MaxPrefixes:       *maxPfx,
		PopularASes:       15,
		ASFailureFraction: 0.15,
		Timing:            bgpsim.DefaultTiming(*seed),
		Seed:              *seed,
	})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		logger.Fatalf("%v", err)
	}
	epoch := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC) // the paper's month

	written := 0
	for _, s := range ds.Sessions {
		if written >= *sessions {
			break
		}
		bursts := ds.BurstsAt(s, *minBurst)
		if len(bursts) == 0 {
			continue
		}
		written++
		base := fmt.Sprintf("as%d-from-as%d", s.Vantage, s.Neighbor)

		// RIB snapshot.
		ribPath := filepath.Join(*out, base+".rib.mrt")
		if err := writeRIB(ribPath, ds, s, epoch); err != nil {
			logger.Fatalf("%v", err)
		}

		// Updates: all bursts, offset by their failure times.
		updPath := filepath.Join(*out, base+".updates.mrt")
		n, err := writeUpdates(updPath, ds, s, bursts, epoch)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		fmt.Printf("%s: %d bursts, %d update records (+ RIB snapshot)\n", base, len(bursts), n)
	}
	if written == 0 {
		fmt.Println("no sessions observed bursts at this scale; try more -failures")
	}
}

func writeRIB(path string, ds *trace.Dataset, s trace.Session, epoch time.Time) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := mrt.NewWriter(f)
	if err := w.WritePeerIndexTable(epoch, s.Vantage, []mrt.PeerEntry{
		{ID: s.Neighbor, IP: 0x0a000001, AS: s.Neighbor},
	}); err != nil {
		return err
	}
	seq := uint32(0)
	for origin, path := range ds.SessionRIB(s) {
		for i := 0; i < ds.Net.Origins[origin]; i++ {
			rec := &mrt.RIBRecord{
				Sequence: seq,
				Prefix:   netaddr.PrefixFor(origin, i),
				Entries: []mrt.RIBEntry{{
					PeerIndex:  0,
					Originated: epoch.Add(-24 * time.Hour),
					Attrs: bgp.Attrs{
						ASPath:     path,
						HasNextHop: true,
						NextHop:    0x0a000001,
					},
				}},
			}
			seq++
			if err := w.WriteRIBIPv4(epoch, rec); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

func writeUpdates(path string, ds *trace.Dataset, s trace.Session, bursts []*bgpsim.Burst, epoch time.Time) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := mrt.NewWriter(f)
	records := 0
	burstIdx := 0
	for i := range ds.Failures {
		d := ds.Delta(i)
		wd, _ := ds.Base.BurstSizeAt(d, s.Vantage, s.Neighbor)
		if wd < 1 || burstIdx >= len(bursts) {
			continue
		}
		b := bursts[burstIdx]
		if b.Size != wd {
			continue // this failure's burst was below the threshold
		}
		burstIdx++
		at := epoch.Add(ds.Failures[i].At)
		// Pack consecutive withdrawals into shared UPDATEs, as a real
		// speaker would.
		var wdBatch []netaddr.Prefix
		var batchAt time.Time
		flush := func() error {
			if len(wdBatch) == 0 {
				return nil
			}
			for _, u := range bgp.PackWithdrawals(wdBatch) {
				if err := w.WriteBGP4MP(batchAt, s.Neighbor, s.Vantage, 0x0a000001, 0x0a000002, u); err != nil {
					return err
				}
				records++
			}
			wdBatch = wdBatch[:0]
			return nil
		}
		for _, ev := range b.Events {
			ts := at.Add(ev.At)
			if ev.Kind == bgpsim.KindWithdraw {
				if len(wdBatch) == 0 {
					batchAt = ts
				}
				wdBatch = append(wdBatch, ev.Prefix)
				if len(wdBatch) >= 500 {
					if err := flush(); err != nil {
						return records, err
					}
				}
				continue
			}
			if err := flush(); err != nil {
				return records, err
			}
			u := &bgp.Update{
				Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 0x0a000001},
				NLRI:  []netaddr.Prefix{ev.Prefix},
			}
			if err := w.WriteBGP4MP(ts, s.Neighbor, s.Vantage, 0x0a000001, 0x0a000002, u); err != nil {
				return records, err
			}
			records++
		}
		if err := flush(); err != nil {
			return records, err
		}
	}
	return records, w.Flush()
}
