// Command swiftd runs a SWIFT controller as a daemon (§7's deployment
// scheme). It has two ingestion modes:
//
// eBGP mode maintains one live session over TCP, feeds the primary
// session's stream into a single SWIFT engine, and reports every
// inference and reroute it performs. Listen for one passive session
// (the protected router's primary peer dials in):
//
//	swiftd -local-as 65001 -router-id 1.1.1.1 -listen :1790 -primary-as 65010
//
// Or dial the peer actively:
//
//	swiftd -local-as 65001 -router-id 1.1.1.1 -dial 192.0.2.1:179 -primary-as 65010
//
// BMP mode (RFC 7854) accepts monitored-router connections and runs
// one SWIFT engine per monitored peer — the multi-session deployment
// that watches every peer of the protected router at once:
//
//	swiftd -local-as 65001 -bmp-listen :11019
//
// Each peer's engine provisions from the in-band table dump the
// router sends after Peer Up (End-of-RIB or the -settle quiet period
// ends the dump).
//
// In eBGP mode the initial table is learned from the peer's opening
// announcement flood; alternates can be preloaded from a TABLE_DUMP_V2
// MRT snapshot with -alternates-rib (in BMP mode the snapshot is
// loaded into every monitored peer's engine).
//
// SIGINT/SIGTERM shut either mode down cleanly: sessions close with a
// CEASE notification, the BMP station drains its engine fleet, and the
// final status is printed before exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpd"
	"swift/internal/bmp"
	"swift/internal/controller"
	"swift/internal/inference"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

func main() {
	var (
		localAS   = flag.Uint("local-as", 65001, "local AS number")
		routerID  = flag.String("router-id", "10.0.0.1", "BGP identifier (IPv4)")
		listen    = flag.String("listen", "", "listen address for a passive eBGP session (e.g. :1790)")
		dial      = flag.String("dial", "", "peer address to dial an eBGP session actively")
		bmpListen = flag.String("bmp-listen", "", "listen address for BMP monitored routers (e.g. :11019)")
		primaryAS = flag.Uint("primary-as", 0, "expected peer AS (0 = accept any; eBGP mode)")
		altRIB    = flag.String("alternates-rib", "", "MRT TABLE_DUMP_V2 file with alternate routes")
		altAS     = flag.Uint("alternate-as", 0, "neighbor AS owning the alternate routes")
		settle    = flag.Duration("settle", 3*time.Second, "quiet period ending a table transfer")
	)
	flag.Parse()

	modes := 0
	for _, m := range []string{*listen, *dial, *bmpListen} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("exactly one of -listen, -dial or -bmp-listen is required")
	}

	var alternates []mrt.RIBRecord
	if *altRIB != "" {
		if *altAS == 0 {
			log.Fatal("-alternates-rib requires -alternate-as")
		}
		var err error
		alternates, err = loadRIB(*altRIB)
		if err != nil {
			log.Fatalf("loading alternates: %v", err)
		}
		log.Printf("loaded %d alternate RIB records from %s", len(alternates), *altRIB)
	}

	// Graceful shutdown on SIGINT/SIGTERM: both modes get a signal
	// channel and finish their writes instead of dying mid-stream.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	if *bmpListen != "" {
		runBMP(*bmpListen, uint32(*localAS), *settle, alternates, uint32(*altAS), sigs)
		return
	}
	runBGP(*listen, *dial, uint32(*localAS), parseID(*routerID), uint32(*primaryAS),
		*settle, alternates, uint32(*altAS), sigs)
}

// runBMP serves a BMP station over an engine fleet until a signal.
// The fleet's Observer hooks push every burst, decision and fallback
// straight into the daemon log — no decision polling, no log scraping.
func runBMP(addr string, localAS uint32, settle time.Duration, alternates []mrt.RIBRecord, altAS uint32, sigs <-chan os.Signal) {
	fleet := controller.NewFleet(controller.FleetConfig{
		Engine: func(key controller.PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{
				LocalAS:         localAS,
				PrimaryNeighbor: key.AS,
			}
			cfg.Inference = inference.Default()
			return cfg
		},
		Observer: controller.LoggingFleetObserver(log.Printf),
		OnPeer: func(p *controller.FleetPeer) {
			for _, rec := range alternates {
				for _, e := range rec.Entries {
					p.LearnAlternate(altAS, rec.Prefix, e.Attrs.ASPath)
				}
			}
		},
		Logf: log.Printf,
	})
	station := bmp.NewStation(bmp.StationConfig{
		Sink:        fleet,
		TableSettle: settle,
		Logf:        log.Printf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("BMP station listening on %s", addr)

	serveErr := make(chan error, 1)
	go func() { serveErr <- station.Serve(ln) }()

	statusTicker := time.NewTicker(10 * time.Second)
	defer statusTicker.Stop()
	for {
		select {
		case sig := <-sigs:
			log.Printf("%v: shutting down station", sig)
			if err := station.Close(); err != nil {
				log.Printf("station close: %v", err)
			}
			fleet.Close()
			log.Printf("final: %s", fleet.Status())
			return
		case err := <-serveErr:
			fleet.Close()
			if err != nil {
				log.Fatalf("station: %v", err)
			}
			return
		case <-statusTicker.C:
			m := station.Metrics()
			log.Printf("status: conns=%d msgs=%d rm=%d | %s",
				m.Conns, m.Messages, m.RouteMonitoring, fleet.Status())
		}
	}
}

// runBGP is the original single-session eBGP deployment.
func runBGP(listen, dial string, localAS, routerID, primaryAS uint32, settle time.Duration, alternates []mrt.RIBRecord, altAS uint32, sigs <-chan os.Signal) {
	// The Observer hooks are the daemon's reporting surface; Logf stays
	// unset so nothing is printed twice.
	cfg := swiftengine.Config{
		LocalAS:         localAS,
		PrimaryNeighbor: primaryAS,
	}
	cfg.Observer = swiftengine.LoggingObserver(log.Printf)
	cfg.Inference = inference.Default()
	engine := swiftengine.New(cfg)
	ctrl := controller.New(engine, log.Printf)

	if len(alternates) > 0 {
		var updates []*bgp.Update
		for _, rec := range alternates {
			for _, e := range rec.Entries {
				updates = append(updates, &bgp.Update{
					Attrs: e.Attrs,
					NLRI:  []netaddr.Prefix{rec.Prefix},
				})
			}
		}
		ctrl.LoadAlternate(altAS, updates)
		log.Printf("loaded %d alternate routes", len(updates))
	}

	var sess *bgpd.Session
	var err error
	bcfg := bgpd.Config{
		LocalAS:  localAS,
		RouterID: routerID,
		Logf:     log.Printf,
	}
	if listen != "" {
		l, lerr := net.Listen("tcp", listen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		log.Printf("listening on %s", listen)
		// The watcher owns the decision of whether a signal interrupted
		// the wait; reading its verdict (rather than polling a channel)
		// makes the signal-vs-established race deterministic — a
		// consumed signal is always honored, never dropped.
		established := make(chan struct{})
		tookSignal := make(chan bool, 1)
		go func() {
			select {
			case sig := <-sigs:
				log.Printf("%v: aborting before session establishment", sig)
				l.Close()
				tookSignal <- true
			case <-established:
				tookSignal <- false
			}
		}()
		sess, err = bgpd.Accept(l, bcfg)
		close(established)
		if <-tookSignal {
			if err == nil {
				sess.Close()
			}
			return
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		log.Printf("dialing %s", dial)
		// Dial on a goroutine so a signal can interrupt the connect /
		// handshake instead of queuing behind it.
		type dialResult struct {
			sess *bgpd.Session
			err  error
		}
		dialed := make(chan dialResult, 1)
		go func() {
			s, derr := bgpd.Dial(dial, bcfg)
			dialed <- dialResult{s, derr}
		}()
		select {
		case sig := <-sigs:
			log.Printf("%v: aborting dial", sig)
			return
		case r := <-dialed:
			if r.err != nil {
				log.Fatal(r.err)
			}
			sess = r.sess
		}
	}
	if primaryAS != 0 && sess.PeerAS() != primaryAS {
		log.Fatalf("peer AS %d, expected %d", sess.PeerAS(), primaryAS)
	}
	log.Printf("session established with AS%d", sess.PeerAS())

	// Table transfer: drain announcements until quiet for -settle.
	var table []*bgp.Update
	timer := time.NewTimer(settle)
transfer:
	for {
		select {
		case u, ok := <-sess.Updates():
			if !ok {
				log.Fatal("session closed during table transfer")
			}
			table = append(table, u)
			timer.Reset(settle)
		case <-timer.C:
			break transfer
		case sig := <-sigs:
			log.Printf("%v: closing session during table transfer", sig)
			sess.Close()
			return
		}
	}
	ctrl.LoadTable(table)
	if err := ctrl.Provision(); err != nil {
		log.Fatalf("provisioning: %v", err)
	}
	log.Printf("provisioned: %s", ctrl.Status())

	ctrl.AttachPrimary(sess)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	statusTicker := time.NewTicker(10 * time.Second)
	defer statusTicker.Stop()
	done := make(chan struct{})
	go func() {
		ctrl.Wait()
		close(done)
	}()
	for {
		select {
		case <-ticker.C:
			ctrl.Tick()
		case <-statusTicker.C:
			log.Printf("status: %s", ctrl.Status())
		case sig := <-sigs:
			// Graceful shutdown: CEASE the session (instead of dying
			// mid-write), let the reader drain, report, exit clean.
			log.Printf("%v: closing session", sig)
			if err := sess.Close(); err != nil {
				log.Printf("session close: %v", err)
			}
			<-done
			log.Printf("final: %s", ctrl.Status())
			return
		case <-done:
			log.Printf("final: %s", ctrl.Status())
			if err := sess.Err(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
	}
}

func parseID(s string) uint32 {
	ip := net.ParseIP(s).To4()
	if ip == nil {
		log.Fatalf("bad router id %q", s)
	}
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// loadRIB reads every RIB_IPV4_UNICAST record of a TABLE_DUMP_V2 file.
func loadRIB(path string) ([]mrt.RIBRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []mrt.RIBRecord
	err = mrt.WalkRIBIPv4(f, func(rr *mrt.RIBRecord) error {
		out = append(out, *rr)
		return nil
	})
	return out, err
}
