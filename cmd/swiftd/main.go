// Command swiftd runs a SWIFT controller as a daemon (§7's deployment
// scheme): it maintains live eBGP sessions over TCP, feeds the primary
// session's stream into the SWIFT engine, and reports every inference
// and reroute it performs.
//
// Listen for one passive session (the protected router's primary peer
// dials in):
//
//	swiftd -local-as 65001 -router-id 1.1.1.1 -listen :1790 -primary-as 65010
//
// Or dial the peer actively:
//
//	swiftd -local-as 65001 -router-id 1.1.1.1 -dial 192.0.2.1:179 -primary-as 65010
//
// The initial table is learned from the peer's opening announcement
// flood; alternates can be preloaded from a TABLE_DUMP_V2 MRT snapshot
// with -alternates-rib.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpd"
	"swift/internal/controller"
	"swift/internal/inference"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

func main() {
	var (
		localAS   = flag.Uint("local-as", 65001, "local AS number")
		routerID  = flag.String("router-id", "10.0.0.1", "BGP identifier (IPv4)")
		listen    = flag.String("listen", "", "listen address for a passive session (e.g. :1790)")
		dial      = flag.String("dial", "", "peer address to dial actively")
		primaryAS = flag.Uint("primary-as", 0, "expected peer AS (0 = accept any)")
		altRIB    = flag.String("alternates-rib", "", "MRT TABLE_DUMP_V2 file with alternate routes")
		altAS     = flag.Uint("alternate-as", 0, "neighbor AS owning the alternate routes")
		settle    = flag.Duration("settle", 3*time.Second, "quiet period after table transfer before provisioning")
	)
	flag.Parse()

	if (*listen == "") == (*dial == "") {
		log.Fatal("exactly one of -listen or -dial is required")
	}

	cfg := swiftengine.Config{
		LocalAS:         uint32(*localAS),
		PrimaryNeighbor: uint32(*primaryAS),
		Logf:            log.Printf,
	}
	cfg.Inference = inference.Default()
	engine := swiftengine.New(cfg)
	ctrl := controller.New(engine, log.Printf)

	if *altRIB != "" {
		if *altAS == 0 {
			log.Fatal("-alternates-rib requires -alternate-as")
		}
		n, err := loadAlternates(ctrl, *altRIB, uint32(*altAS))
		if err != nil {
			log.Fatalf("loading alternates: %v", err)
		}
		log.Printf("loaded %d alternate routes from %s", n, *altRIB)
	}

	var sess *bgpd.Session
	var err error
	bcfg := bgpd.Config{
		LocalAS:  uint32(*localAS),
		RouterID: parseID(*routerID),
		Logf:     log.Printf,
	}
	if *listen != "" {
		l, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		log.Printf("listening on %s", *listen)
		sess, err = bgpd.Accept(l, bcfg)
	} else {
		log.Printf("dialing %s", *dial)
		sess, err = bgpd.Dial(*dial, bcfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *primaryAS != 0 && sess.PeerAS() != uint32(*primaryAS) {
		log.Fatalf("peer AS %d, expected %d", sess.PeerAS(), *primaryAS)
	}
	log.Printf("session established with AS%d", sess.PeerAS())

	// Table transfer: drain announcements until quiet for -settle.
	var table []*bgp.Update
	timer := time.NewTimer(*settle)
transfer:
	for {
		select {
		case u, ok := <-sess.Updates():
			if !ok {
				log.Fatal("session closed during table transfer")
			}
			table = append(table, u)
			timer.Reset(*settle)
		case <-timer.C:
			break transfer
		}
	}
	ctrl.LoadTable(table)
	if err := ctrl.Provision(); err != nil {
		log.Fatalf("provisioning: %v", err)
	}
	log.Printf("provisioned: %s", ctrl.Status())

	ctrl.AttachPrimary(sess)
	ticker := time.NewTicker(time.Second)
	go func() {
		for range ticker.C {
			ctrl.Tick()
		}
	}()
	statusTicker := time.NewTicker(10 * time.Second)
	go func() {
		for range statusTicker.C {
			log.Printf("status: %s", ctrl.Status())
		}
	}()
	ctrl.Wait()
	log.Printf("final: %s", ctrl.Status())
	if err := sess.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseID(s string) uint32 {
	ip := net.ParseIP(s).To4()
	if ip == nil {
		log.Fatalf("bad router id %q", s)
	}
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

func loadAlternates(ctrl *controller.Controller, path string, neighbor uint32) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := mrt.NewReader(f)
	n := 0
	var updates []*bgp.Update
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rr, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			return n, err
		}
		for _, e := range rr.Entries {
			updates = append(updates, &bgp.Update{
				Attrs: e.Attrs,
				NLRI:  []netaddr.Prefix{rr.Prefix},
			})
		}
		n++
	}
	ctrl.LoadAlternate(neighbor, updates)
	return n, nil
}
