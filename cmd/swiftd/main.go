// Command swiftd runs a SWIFT controller as a daemon (§7's deployment
// scheme). It has two ingestion modes:
//
// eBGP mode maintains one live session over TCP, feeds the primary
// session's stream into a single SWIFT engine, and reports every
// inference and reroute it performs. Listen for one passive session
// (the protected router's primary peer dials in):
//
//	swiftd -local-as 65001 -router-id 1.1.1.1 -listen :1790 -primary-as 65010
//
// Or dial the peer actively:
//
//	swiftd -local-as 65001 -router-id 1.1.1.1 -dial 192.0.2.1:179 -primary-as 65010
//
// BMP mode (RFC 7854) accepts monitored-router connections and runs
// one SWIFT engine per monitored peer — the multi-session deployment
// that watches every peer of the protected router at once:
//
//	swiftd -local-as 65001 -bmp-listen :11019
//
// Each peer's engine provisions from the in-band table dump the
// router sends after Peer Up (End-of-RIB or the -settle quiet period
// ends the dump).
//
// In eBGP mode the initial table is learned from the peer's opening
// announcement flood; alternates can be preloaded from a TABLE_DUMP_V2
// MRT snapshot with -alternates-rib (in BMP mode the snapshot is
// loaded into every monitored peer's engine).
//
// Either mode exposes an ops HTTP plane with -http (e.g. -http :8080):
// GET /metrics serves Prometheus text exposition, /healthz liveness,
// /peers per-peer status JSON, /bursts the burst trace ring, and
// /debug/pprof/ the Go profiler. -metrics-interval controls the
// periodic stats log line (0 disables it) and -log-level filters the
// daemon log (debug, info, warn, error).
//
// In BMP mode -snapshot-dir enables warm restarts: the fleet is
// checkpointed to <dir>/fleet.snap on SIGUSR1, on POST /snapshot and on
// shutdown, and a start that finds a snapshot restores every peer's
// provisioned engine from it instead of waiting for routers to re-dump
// their tables. /healthz reports whether the start was warm or cold.
//
// SIGINT/SIGTERM shut either mode down cleanly: sessions close with a
// CEASE notification, the BMP station drains its engine fleet, and the
// final status is printed before exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpd"
	"swift/internal/bmp"
	"swift/internal/controller"
	"swift/internal/fusion"
	"swift/internal/inference"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/telemetry"
	"swift/internal/telemetry/logging"
	"swift/internal/telemetry/ops"
)

func main() {
	var (
		localAS    = flag.Uint("local-as", 65001, "local AS number")
		routerID   = flag.String("router-id", "10.0.0.1", "BGP identifier (IPv4)")
		listen     = flag.String("listen", "", "listen address for a passive eBGP session (e.g. :1790)")
		dial       = flag.String("dial", "", "peer address to dial an eBGP session actively")
		bmpListen  = flag.String("bmp-listen", "", "listen address for BMP monitored routers (e.g. :11019)")
		primaryAS  = flag.Uint("primary-as", 0, "expected peer AS (0 = accept any; eBGP mode)")
		altRIB     = flag.String("alternates-rib", "", "MRT TABLE_DUMP_V2 file with alternate routes")
		altAS      = flag.Uint("alternate-as", 0, "neighbor AS owning the alternate routes")
		settle     = flag.Duration("settle", 3*time.Second, "quiet period ending a table transfer")
		httpAddr   = flag.String("http", "", "ops HTTP listen address (e.g. :8080; empty disables)")
		metricsInt = flag.Duration("metrics-interval", 10*time.Second, "periodic stats log interval (0 disables)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		ringSize   = flag.Int("burst-ring", 256, "burst trace ring capacity (records kept for /bursts)")
		snapDir    = flag.String("snapshot-dir", "", "directory for warm-restart snapshots (BMP mode only): restore on start, checkpoint on SIGUSR1, POST /snapshot and shutdown")
		fused      = flag.Bool("fusion", false, "enable fleet-level evidence fusion across BMP-monitored sessions (BMP mode only)")
		fusionK    = flag.Int("fusion-k", 0, "fusion: peers whose corroborating evidence confirms a link (0 = default)")
		fusionThr  = flag.Float64("fusion-threshold", 0, "fusion: fused Fit-Score a link must reach to be confirmed (0 = default)")
	)
	flag.Parse()

	lvl, err := logging.ParseLevel(*logLevel)
	if err != nil {
		logging.New(os.Stderr, logging.Info).Fatalf("%v", err)
	}
	logger := logging.New(os.Stderr, lvl)

	modes := 0
	for _, m := range []string{*listen, *dial, *bmpListen} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		logger.Fatalf("exactly one of -listen, -dial or -bmp-listen is required")
	}

	var alternates []mrt.RIBRecord
	if *altRIB != "" {
		if *altAS == 0 {
			logger.Fatalf("-alternates-rib requires -alternate-as")
		}
		var err error
		alternates, err = loadRIB(*altRIB)
		if err != nil {
			logger.Fatalf("loading alternates: %v", err)
		}
		logger.Infof("loaded %d alternate RIB records from %s", len(alternates), *altRIB)
	}

	// Graceful shutdown on SIGINT/SIGTERM: both modes get a signal
	// channel and finish their writes instead of dying mid-stream.
	// With -snapshot-dir, SIGUSR1 additionally checkpoints the fleet
	// without shutting down.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if *snapDir != "" {
		if *bmpListen == "" {
			logger.Fatalf("-snapshot-dir requires -bmp-listen (snapshots capture an engine fleet)")
		}
		signal.Notify(sigs, syscall.SIGUSR1)
	}

	d := daemon{
		logger:   logger,
		registry: telemetry.NewRegistry(),
		ring:     telemetry.NewBurstRing(*ringSize),
		httpAddr: *httpAddr,
		interval: *metricsInt,
	}
	if *fused {
		if *bmpListen == "" {
			logger.Fatalf("-fusion requires -bmp-listen (fusion spans a fleet of monitored sessions)")
		}
		d.fusion = &fusion.Config{K: *fusionK, FuseThreshold: *fusionThr}
	}
	if *bmpListen != "" {
		d.snapDir = *snapDir
		d.runBMP(*bmpListen, uint32(*localAS), *settle, alternates, uint32(*altAS), sigs)
		return
	}
	d.runBGP(*listen, *dial, uint32(*localAS), parseID(logger, *routerID), uint32(*primaryAS),
		*settle, alternates, uint32(*altAS), sigs)
}

// daemon carries the telemetry spine shared by both ingestion modes.
type daemon struct {
	logger   *logging.Logger
	registry *telemetry.Registry
	ring     *telemetry.BurstRing
	httpAddr string
	interval time.Duration
	// fusion, when set, shares one evidence aggregator across the BMP
	// fleet's engines (-fusion; nil runs classic per-peer SWIFT).
	fusion *fusion.Config
	// snapDir, when set, holds the warm-restart snapshot (BMP mode).
	snapDir string
}

// serveOps starts the ops HTTP listener when -http was given. The
// server dies with the process; nothing needs a graceful drain.
func (d *daemon) serveOps(cfg ops.Config) {
	if d.httpAddr == "" {
		return
	}
	cfg.Registry = d.registry
	cfg.Ring = d.ring
	handler := ops.NewHandler(cfg)
	go func() {
		d.logger.Infof("ops HTTP listening on %s", d.httpAddr)
		if err := http.ListenAndServe(d.httpAddr, handler); err != nil {
			d.logger.Errorf("ops http: %v", err)
		}
	}()
}

// metricsC returns the periodic stats-log channel, nil (blocks forever
// in select) when -metrics-interval is 0.
func (d *daemon) metricsC() (<-chan time.Time, func()) {
	if d.interval <= 0 {
		return nil, func() {}
	}
	t := time.NewTicker(d.interval)
	return t.C, t.Stop
}

// runBMP serves a BMP station over an instrumented engine fleet until a
// signal. The fleet's Observer hooks push every burst, decision and
// fallback straight into the daemon log as they happen — no decision
// polling, no log scraping — while the telemetry registry and trace
// ring feed the ops plane.
func (d *daemon) runBMP(addr string, localAS uint32, settle time.Duration, alternates []mrt.RIBRecord, altAS uint32, sigs <-chan os.Signal) {
	logger := d.logger
	ft := controller.NewFleetTelemetry(d.registry, d.ring)
	fleetCfg := ft.Instrument(controller.FleetConfig{
		Fusion: d.fusion,
		Engine: func(key controller.PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{
				LocalAS:         localAS,
				PrimaryNeighbor: key.AS,
			}
			cfg.Inference = inference.Default()
			return cfg
		},
		Observer: controller.LoggingFleetObserver(logger.Infof),
		OnPeer: func(p *controller.FleetPeer) {
			for _, rec := range alternates {
				for _, e := range rec.Entries {
					p.LearnAlternate(altAS, rec.Prefix, e.Attrs.ASPath)
				}
			}
		},
		Logf: logger.Debugf,
	})

	// Warm restart: a snapshot in -snapshot-dir restores the whole
	// provisioned fleet before the listener opens; any failure falls
	// back to a cold start (monitored routers re-dump on reconnect).
	var fleet *controller.Fleet
	restoreStatus := "restore: cold start (no snapshot)"
	snapPath := filepath.Join(d.snapDir, "fleet.snap")
	if d.snapDir != "" {
		if file, err := os.Open(snapPath); err == nil {
			start := time.Now()
			restored, rerr := controller.RestoreFleet(file, fleetCfg)
			file.Close()
			if rerr != nil {
				logger.Warnf("snapshot restore from %s failed, cold start: %v", snapPath, rerr)
				restoreStatus = fmt.Sprintf("restore: failed (%v), cold start", rerr)
			} else {
				fleet = restored
				took := time.Since(start).Round(time.Millisecond)
				restoreStatus = fmt.Sprintf("restore: warm, %d peers from %s in %s", fleet.Len(), snapPath, took)
				logger.Infof("restored %d peers from %s in %s", fleet.Len(), snapPath, took)
			}
		} else if !os.IsNotExist(err) {
			logger.Warnf("snapshot %s unreadable, cold start: %v", snapPath, err)
			restoreStatus = fmt.Sprintf("restore: failed (%v), cold start", err)
		}
	}
	if fleet == nil {
		fleet = controller.NewFleet(fleetCfg)
	}

	// checkpoint writes the fleet snapshot with temp+rename so the
	// restore path never sees a torn file; SIGUSR1, POST /snapshot and
	// shutdown all funnel through it.
	checkpoint := func() error {
		tmp, err := os.CreateTemp(d.snapDir, "fleet.snap.tmp*")
		if err != nil {
			return err
		}
		if err := fleet.Snapshot(tmp); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), snapPath); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return nil
	}

	station := bmp.NewStation(bmp.StationConfig{
		Sink:        fleet,
		TableSettle: settle,
		Logf:        logger.Infof,
	})
	opsCfg := ops.Config{Fleet: fleet, Station: station}
	if d.snapDir != "" {
		opsCfg.Snapshot = checkpoint
		opsCfg.RestoreStatus = func() string { return restoreStatus }
	}
	d.serveOps(opsCfg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Infof("BMP station listening on %s", addr)

	serveErr := make(chan error, 1)
	go func() { serveErr <- station.Serve(ln) }()

	metricsC, stop := d.metricsC()
	defer stop()
	for {
		select {
		case sig := <-sigs:
			if sig == syscall.SIGUSR1 {
				if err := checkpoint(); err != nil {
					logger.Warnf("snapshot checkpoint: %v", err)
				} else {
					logger.Infof("snapshot checkpointed to %s", snapPath)
				}
				continue
			}
			logger.Infof("%v: shutting down station", sig)
			if err := station.Close(); err != nil {
				logger.Warnf("station close: %v", err)
			}
			if d.snapDir != "" {
				// The station has drained, so this captures the fleet's
				// final state; the next start restores it.
				if err := checkpoint(); err != nil {
					logger.Warnf("shutdown snapshot: %v", err)
				} else {
					logger.Infof("shutdown snapshot written to %s", snapPath)
				}
			}
			fleet.Close()
			logger.Infof("final: %s", fleet.Status())
			return
		case err := <-serveErr:
			fleet.Close()
			if err != nil {
				logger.Fatalf("station: %v", err)
			}
			return
		case <-metricsC:
			m := station.Metrics()
			logger.Infof("metrics: conns=%d msgs=%d rm=%d bytes=%d decode_errs=%d | %s",
				m.Conns, m.Messages, m.RouteMonitoring, m.Bytes, m.DecodeErrors, fleet.Status())
		}
	}
}

// runBGP is the original single-session eBGP deployment, instrumented
// under the fixed peer label "primary" (the session is established
// after the engine exists, so the label cannot carry the peer AS).
func (d *daemon) runBGP(listen, dial string, localAS, routerID, primaryAS uint32, settle time.Duration, alternates []mrt.RIBRecord, altAS uint32, sigs <-chan os.Signal) {
	logger := d.logger
	const peerLabel = "primary"
	ft := controller.NewFleetTelemetry(d.registry, d.ring)

	// The Observer hooks are the daemon's reporting surface; Logf stays
	// unset so nothing is printed twice.
	cfg := swiftengine.Config{
		LocalAS:         localAS,
		PrimaryNeighbor: primaryAS,
	}
	cfg.Metrics = ft.EngineMetricsFor(peerLabel)
	cfg.Observer = swiftengine.TraceObserver(d.ring, peerLabel).
		Then(swiftengine.LoggingObserver(logger.Infof))
	cfg.Inference = inference.Default()
	engine := swiftengine.New(cfg)
	ctrl := controller.New(engine, logger.Infof)

	if len(alternates) > 0 {
		var updates []*bgp.Update
		for _, rec := range alternates {
			for _, e := range rec.Entries {
				updates = append(updates, &bgp.Update{
					Attrs: e.Attrs,
					NLRI:  []netaddr.Prefix{rec.Prefix},
				})
			}
		}
		ctrl.LoadAlternate(altAS, updates)
		logger.Infof("loaded %d alternate routes", len(updates))
	}

	var sess *bgpd.Session
	var err error
	bcfg := bgpd.Config{
		LocalAS:  localAS,
		RouterID: routerID,
		Logf:     logger.Debugf,
	}
	if listen != "" {
		l, lerr := net.Listen("tcp", listen)
		if lerr != nil {
			logger.Fatalf("%v", lerr)
		}
		logger.Infof("listening on %s", listen)
		// The watcher owns the decision of whether a signal interrupted
		// the wait; reading its verdict (rather than polling a channel)
		// makes the signal-vs-established race deterministic — a
		// consumed signal is always honored, never dropped.
		established := make(chan struct{})
		tookSignal := make(chan bool, 1)
		go func() {
			select {
			case sig := <-sigs:
				logger.Infof("%v: aborting before session establishment", sig)
				l.Close()
				tookSignal <- true
			case <-established:
				tookSignal <- false
			}
		}()
		sess, err = bgpd.Accept(l, bcfg)
		close(established)
		if <-tookSignal {
			if err == nil {
				sess.Close()
			}
			return
		}
		if err != nil {
			logger.Fatalf("%v", err)
		}
	} else {
		logger.Infof("dialing %s", dial)
		// Dial on a goroutine so a signal can interrupt the connect /
		// handshake instead of queuing behind it.
		type dialResult struct {
			sess *bgpd.Session
			err  error
		}
		dialed := make(chan dialResult, 1)
		go func() {
			s, derr := bgpd.Dial(dial, bcfg)
			dialed <- dialResult{s, derr}
		}()
		select {
		case sig := <-sigs:
			logger.Infof("%v: aborting dial", sig)
			return
		case r := <-dialed:
			if r.err != nil {
				logger.Fatalf("%v", r.err)
			}
			sess = r.sess
		}
	}
	if primaryAS != 0 && sess.PeerAS() != primaryAS {
		logger.Fatalf("peer AS %d, expected %d", sess.PeerAS(), primaryAS)
	}
	logger.Infof("session established with AS%d", sess.PeerAS())

	peerAS := sess.PeerAS()
	controller.RegisterControllerMetrics(d.registry, ctrl, peerLabel, peerAS)
	d.serveOps(ops.Config{
		PeerStatuses: func() []controller.PeerStatus {
			return []controller.PeerStatus{ctrl.PeerStatus(peerLabel, peerAS)}
		},
	})

	// Table transfer: drain announcements until quiet for -settle.
	var table []*bgp.Update
	timer := time.NewTimer(settle)
transfer:
	for {
		select {
		case u, ok := <-sess.Updates():
			if !ok {
				logger.Fatalf("session closed during table transfer")
			}
			table = append(table, u)
			timer.Reset(settle)
		case <-timer.C:
			break transfer
		case sig := <-sigs:
			logger.Infof("%v: closing session during table transfer", sig)
			sess.Close()
			return
		}
	}
	ctrl.LoadTable(table)
	if err := ctrl.Provision(); err != nil {
		logger.Fatalf("provisioning: %v", err)
	}
	logger.Infof("provisioned: %s", ctrl.Status())

	ctrl.AttachPrimary(sess)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	metricsC, stop := d.metricsC()
	defer stop()
	done := make(chan struct{})
	go func() {
		ctrl.Wait()
		close(done)
	}()
	for {
		select {
		case <-ticker.C:
			ctrl.Tick()
		case <-metricsC:
			logger.Infof("status: %s", ctrl.Status())
		case sig := <-sigs:
			// Graceful shutdown: CEASE the session (instead of dying
			// mid-write), let the reader drain, report, exit clean.
			logger.Infof("%v: closing session", sig)
			if err := sess.Close(); err != nil {
				logger.Warnf("session close: %v", err)
			}
			<-done
			logger.Infof("final: %s", ctrl.Status())
			return
		case <-done:
			logger.Infof("final: %s", ctrl.Status())
			if err := sess.Err(); err != nil {
				logger.Fatalf("%v", err)
			}
			return
		}
	}
}

func parseID(logger *logging.Logger, s string) uint32 {
	ip := net.ParseIP(s).To4()
	if ip == nil {
		logger.Fatalf("bad router id %q", s)
	}
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// loadRIB reads every RIB_IPV4_UNICAST record of a TABLE_DUMP_V2 file.
func loadRIB(path string) ([]mrt.RIBRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []mrt.RIBRecord
	err = mrt.WalkRIBIPv4(f, func(rr *mrt.RIBRecord) error {
		out = append(out, *rr)
		return nil
	})
	return out, err
}
