// Command bmpgen replays MRT traces as a synthetic BMP router (RFC
// 7854): it dials a collector (swiftd -bmp-listen or any bmp.Station),
// announces one monitored peer per input file, streams each peer's
// TABLE_DUMP_V2 snapshot as the initial table dump (ending with
// End-of-RIB), and then forwards the BGP4MP update records as Route
// Monitoring messages with their original MRT timestamps — so the
// collector's engines see the true burst timeline no matter how fast
// the replay drains.
//
// Each positional argument is one peer:
//
//	updates.mrt            (live stream only; empty table)
//	rib.mrt:updates.mrt    (table dump, then the live stream)
//
// which pairs directly with burstgen's output:
//
//	burstgen -out traces -sessions 3
//	bmpgen -target :11019 traces/as1-from-as2.rib.mrt:traces/as1-from-as2.updates.mrt
//
// Peers stream concurrently over the single BMP connection, exactly
// like a real router multiplexing its sessions. -loop N replays each
// update stream N times (timestamps shifted forward every pass) for
// sustained load generation.
//
// bmpgen exercises the wire side of the event pipeline: the station it
// dials demuxes this stream into peer-attributed event batches for its
// sink (an engine fleet, or a single engine behind a SessionSink). For
// an in-process replay without the BMP framing, use mrt.Source.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/bgp"
	"swift/internal/bmp"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	"swift/internal/telemetry/logging"
)

// logger is the process-wide leveled logger, configured in main.
var logger *logging.Logger

func main() {
	var (
		target   = flag.String("target", "", "collector address to dial (e.g. :11019)")
		sysName  = flag.String("sysname", "bmpgen", "sysName announced in the Initiation message")
		localAS  = flag.Uint("local-as", 65001, "monitored router's AS (the collector side of each session)")
		loops    = flag.Int("loop", 1, "times to replay each update stream")
		gap      = flag.Duration("gap", time.Minute, "quiet gap inserted between replay loops")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lvl, err := logging.ParseLevel(*logLevel)
	if err != nil {
		logging.New(os.Stderr, logging.Info).Fatalf("%v", err)
	}
	logger = logging.New(os.Stderr, lvl)
	if *target == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bmpgen -target host:port [flags] [rib.mrt:]updates.mrt ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	conn, err := net.Dial("tcp", *target)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer conn.Close()
	w := &router{conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}

	if err := w.send(&bmp.Initiation{
		SysName:  *sysName,
		SysDescr: "swift bmpgen MRT replayer",
	}); err != nil {
		logger.Fatalf("%v", err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, arg := range flag.Args() {
		ribPath, updPath := splitSpec(arg)
		wg.Add(1)
		go func(idx int, ribPath, updPath string) {
			defer wg.Done()
			if err := replayPeer(w, idx, ribPath, updPath, uint32(*localAS), *loops, *gap); err != nil {
				logger.Warnf("%s: %v", updPath, err)
			}
		}(i, ribPath, updPath)
	}
	wg.Wait()
	if err := w.send(&bmp.Termination{Reason: bmp.ReasonAdminClose}); err != nil {
		logger.Warnf("termination: %v", err)
	}
	if err := w.flush(); err != nil {
		logger.Warnf("flush: %v", err)
	}
	elapsed := time.Since(start)
	msgs := w.msgs.Load()
	logger.Infof("replayed %d BMP messages in %v (%.0f msgs/s)",
		msgs, elapsed.Round(time.Millisecond), float64(msgs)/elapsed.Seconds())
}

func splitSpec(arg string) (ribPath, updPath string) {
	if i := strings.LastIndex(arg, ":"); i >= 0 {
		return arg[:i], arg[i+1:]
	}
	return "", arg
}

// router serializes concurrent peers' messages onto the one BMP
// connection.
type router struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	msgs atomic.Uint64
}

func (r *router) send(msgs ...bmp.Message) error {
	var buf []byte
	for _, m := range msgs {
		var err error
		buf, err = m.AppendWire(buf)
		if err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.bw.Write(buf); err != nil {
		return err
	}
	r.msgs.Add(uint64(len(msgs)))
	return nil
}

func (r *router) flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bw.Flush()
}

// update is one replayable BGP4MP record.
type update struct {
	ts   time.Time
	wire []byte // undecoded UPDATE body
}

// replayPeer streams one monitored peer: Peer Up, table dump,
// End-of-RIB, then the timestamped update stream (looped as asked).
func replayPeer(w *router, idx int, ribPath, updPath string, localAS uint32, loops int, gap time.Duration) error {
	peerAS, peerIP, updates, err := loadUpdates(updPath)
	if err != nil {
		return err
	}
	if len(updates) == 0 {
		return fmt.Errorf("no BGP4MP update records")
	}
	bgpID := peerIP
	if bgpID == 0 {
		bgpID = uint32(idx + 1)
	}
	hdr := func(ts time.Time) bmp.PeerHeader {
		h := bmp.PeerHeader{AS: peerAS, BGPID: bgpID}
		h.SetIPv4(peerIP)
		h.SetTimestamp(ts)
		return h
	}
	epoch := updates[0].ts.Add(-time.Hour) // the table predates the stream

	if err := w.send(&bmp.PeerUp{
		Peer:       hdr(epoch),
		LocalPort:  179,
		RemotePort: 179,
		SentOpen:   &bgp.Open{AS: localAS, HoldTime: 90, RouterID: localAS},
		RecvOpen:   &bgp.Open{AS: peerAS, HoldTime: 90, RouterID: bgpID},
	}); err != nil {
		return err
	}

	table := 0
	if ribPath != "" {
		if table, err = replayRIB(w, ribPath, hdr, epoch); err != nil {
			return err
		}
	}
	// End-of-RIB closes the table dump and provisions the engine.
	if err := w.send(&bmp.RouteMonitoring{Peer: hdr(epoch), Update: &bgp.Update{}}); err != nil {
		return err
	}

	span := updates[len(updates)-1].ts.Sub(updates[0].ts) + gap
	sent := 0
	var dec bgp.UpdateDecoder
	var u bgp.Update
	for loop := 0; loop < loops; loop++ {
		shift := time.Duration(loop) * span
		for _, rec := range updates {
			if err := dec.Decode(rec.wire); err != nil {
				return fmt.Errorf("update at %v: %w", rec.ts, err)
			}
			u = bgp.Update{
				Withdrawn: dec.Withdrawn,
				Attrs:     dec.Attrs,
				NLRI:      dec.NLRI,
			}
			if err := w.send(&bmp.RouteMonitoring{Peer: hdr(rec.ts.Add(shift)), Update: &u}); err != nil {
				return err
			}
			sent++
		}
	}
	logger.Infof("peer AS%d/%08x: %d table routes, %d updates sent (%d loops)",
		peerAS, bgpID, table, sent, loops)
	return w.send(&bmp.PeerDown{Peer: hdr(updates[len(updates)-1].ts), Reason: bmp.DownDeconfigured})
}

// loadUpdates reads every BGP4MP UPDATE record of an MRT file into
// memory (bodies stay undecoded; loops re-decode via a shared
// decoder).
func loadUpdates(path string) (peerAS, peerIP uint32, out []update, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	r := mrt.NewReader(f)
	for {
		m, err := r.NextBGP4MP()
		if err == io.EOF {
			break
		}
		if err != nil {
			return peerAS, peerIP, out, err
		}
		if m.Header.Type != bgp.TypeUpdate {
			continue
		}
		if peerAS == 0 {
			peerAS, peerIP = m.PeerAS, m.PeerIP
		}
		out = append(out, update{ts: m.Timestamp, wire: append([]byte(nil), m.Body...)})
	}
	return peerAS, peerIP, out, nil
}

// replayRIB streams a TABLE_DUMP_V2 snapshot as the peer's table dump.
func replayRIB(w *router, path string, hdr func(time.Time) bmp.PeerHeader, epoch time.Time) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	err = mrt.WalkRIBIPv4(f, func(rr *mrt.RIBRecord) error {
		for i := range rr.Entries {
			if err := w.send(&bmp.RouteMonitoring{
				Peer: hdr(epoch),
				Update: &bgp.Update{
					Attrs: rr.Entries[i].Attrs,
					NLRI:  []netaddr.Prefix{rr.Prefix},
				},
			}); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	return n, err
}
