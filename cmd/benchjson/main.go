// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, so CI can publish the perf trajectory
// (ns/op, B/op, allocs/op and custom metrics per benchmark) and future
// changes diff against a recorded baseline instead of prose.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Lines that are not benchmark results (headers, PASS/ok, logs) pass
// through to stderr untouched, so the human-readable output survives in
// the CI log alongside the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. Metrics holds custom
// b.ReportMetric units (e.g. "events/s") verbatim.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BPerOp and AllocsOp keep explicit zeros: "0 allocs/op" is a
	// result (the hot-path contract), not an absent measurement. They
	// are pointers so a run without -benchmem is distinguishable.
	BPerOp   *float64           `json:"b_per_op,omitempty"`
	AllocsOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-8   N   123 ns/op   45 B/op
// 6 allocs/op   7 custom/unit` line.
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Package: pkg, Iterations: iters}
	// The rest is (value, unit) pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = &v
		case "allocs/op":
			r.AllocsOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		seen = true
	}
	return r, seen
}
