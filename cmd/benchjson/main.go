// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file, so CI can publish the perf trajectory
// (ns/op, B/op, allocs/op and custom metrics per benchmark) and future
// changes diff against a recorded baseline instead of prose.
//
// Two modes. Filter mode parses stdin:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Run mode drives `go test` itself — the -bench filter and packages
// pass through — so a CI step is one line and the parallelism context
// is captured from the environment it actually ran under:
//
//	GOMAXPROCS=4 benchjson -bench 'FleetApplyParallel' -pkg ./internal/controller -o BENCH.json
//
// Each result records the GOMAXPROCS the benchmark ran at (parsed from
// the -N name suffix), so scaling benchmarks keep their parallelism
// alongside their custom metrics (e.g. "peers", "events/s").
//
// Lines that are not benchmark results (headers, PASS/ok, logs) pass
// through to stderr untouched, so the human-readable output survives in
// the CI log alongside the artifact.
//
// The output is a provenance-stamped object — generation time (UTC),
// Go version and git commit alongside the results — so an archived
// BENCH_N.json identifies the build it measured without relying on the
// CI run that produced it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Report is the output document: the parsed results plus the
// provenance of the build that produced them.
type Report struct {
	// Generated is the emission time in UTC, RFC 3339.
	Generated string `json:"generated"`
	// GoVersion is the toolchain that ran the benchmarks.
	GoVersion string `json:"go_version"`
	// Commit is `git rev-parse HEAD` of the working tree, with a
	// "-dirty" suffix when uncommitted changes were present; omitted
	// when the tree is not a git checkout.
	Commit  string   `json:"commit,omitempty"`
	Results []Result `json:"results"`
}

// Result is one benchmark's parsed measurements. Metrics holds custom
// b.ReportMetric units (e.g. "events/s") verbatim.
type Result struct {
	Name       string `json:"name"`
	Package    string `json:"package,omitempty"`
	Iterations int64  `json:"iterations"`
	// GOMAXPROCS is the -N suffix go test appends to benchmark names —
	// the parallelism the run actually had, which is what makes the
	// fleet-scaling numbers interpretable.
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BPerOp and AllocsOp keep explicit zeros: "0 allocs/op" is a
	// result (the hot-path contract), not an absent measurement. They
	// are pointers so a run without -benchmem is distinguishable.
	BPerOp   *float64           `json:"b_per_op,omitempty"`
	AllocsOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	bench := flag.String("bench", "", "run `go test -bench` with this filter instead of reading stdin")
	pkgs := flag.String("pkg", "./...", "packages to benchmark (run mode, space-separated)")
	benchtime := flag.String("benchtime", "", "passed through to go test -benchtime (run mode)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *bench != "" {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, strings.Fields(*pkgs)...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := cmd.Wait(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
				os.Exit(1)
			}
		}()
		in = pipe
	}

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})

	report := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Commit:    gitCommit(),
		Results:   results,
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := writeFileAtomic(*out, enc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// writeFileAtomic writes via a temp file in the target directory plus
// rename, so a run killed mid-write never leaves a truncated BENCH_*
// artifact to poison the recorded perf trajectory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// gitCommit resolves HEAD, tolerating non-git environments (empty
// string) and flagging uncommitted changes with a -dirty suffix.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		commit += "-dirty"
	}
	return commit
}

// parseBenchLine parses one `BenchmarkName-8   N   123 ns/op   45 B/op
// 6 allocs/op   7 custom/unit` line.
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = n
			name = name[:i] // the suffix is GOMAXPROCS, recorded below
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Package: pkg, Iterations: iters, GOMAXPROCS: procs}
	// The rest is (value, unit) pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = &v
		case "allocs/op":
			r.AllocsOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		seen = true
	}
	return r, seen
}
