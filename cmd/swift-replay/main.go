// Command swift-replay runs the SWIFT engine over MRT trace files — a
// RIB snapshot (TABLE_DUMP_V2) plus an update stream (BGP4MP), i.e. the
// artifact pair RouteViews collectors publish and cmd/burstgen emits.
// It reports every burst the engine detects and every inference and
// reroute it performs, making it the offline analysis twin of swiftd.
//
// The replay is one mrt.Source feeding one engine through the shared
// event-stream pipeline: the RIB snapshot loads through the sink's
// table-transfer surface, the update records stream as timestamped
// event batches, and the engine's Observer hooks report bursts and
// reroutes as they happen.
//
// Usage:
//
//	burstgen -out traces -sessions 1
//	swift-replay -rib traces/asX-from-asY.rib.mrt \
//	             -updates traces/asX-from-asY.updates.mrt \
//	             -local-as X -peer-as Y
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swift/internal/event"
	"swift/internal/inference"
	"swift/internal/mrt"
	swiftengine "swift/internal/swift"
	"swift/internal/telemetry/logging"
)

func main() {
	var (
		ribPath  = flag.String("rib", "", "TABLE_DUMP_V2 RIB snapshot (required)")
		updPath  = flag.String("updates", "", "BGP4MP update stream (required)")
		localAS  = flag.Uint("local-as", 0, "vantage AS number (required)")
		peerAS   = flag.Uint("peer-as", 0, "monitored peer AS number (required)")
		trigger  = flag.Int("trigger", 2500, "inference trigger threshold")
		start    = flag.Int("start-threshold", 1500, "burst start threshold")
		history  = flag.Bool("history", true, "use the plausibility gate")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lvl, lerr := logging.ParseLevel(*logLevel)
	if lerr != nil {
		logging.New(os.Stderr, logging.Info).Fatalf("%v", lerr)
	}
	logger := logging.New(os.Stderr, lvl)
	if *ribPath == "" || *updPath == "" || *localAS == 0 || *peerAS == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// The Observer hooks are the replay's live reporting surface; Logf
	// stays unset so nothing is printed twice.
	cfg := swiftengine.Config{
		LocalAS:         uint32(*localAS),
		PrimaryNeighbor: uint32(*peerAS),
	}
	cfg.Observer = swiftengine.LoggingObserver(logger.Infof)
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = *trigger
	cfg.Inference.UseHistory = *history
	cfg.Burst.StartThreshold = *start
	engine := swiftengine.New(cfg)

	rib, err := os.Open(*ribPath)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer rib.Close()
	upd, err := os.Open(*updPath)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer upd.Close()

	src := &mrt.Source{
		RIB:       rib,
		Updates:   upd,
		Peer:      event.PeerKey{AS: uint32(*peerAS), BGPID: uint32(*peerAS)},
		FinalTick: time.Hour, // close any open burst
	}
	if err := src.Run(swiftengine.NewSessionSink(engine)); err != nil {
		logger.Fatalf("replay: %v", err)
	}

	fmt.Printf("\nreplayed %d per-prefix events over %d RIB routes\n", src.Events, src.Routes)
	decisions := engine.Decisions()
	fmt.Printf("decisions: %d accepted, %d deferred by the gate\n",
		len(decisions), engine.Deferred())
	for i, d := range decisions {
		fmt.Printf("  #%d at %v: links %v (received %d, predicted %d, %d rules, %v)\n",
			i+1, d.At.Round(time.Millisecond), d.Result.Links, d.Result.Received,
			len(d.Predicted), d.RulesInstalled, d.DataplaneTime)
	}
}
