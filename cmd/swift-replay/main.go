// Command swift-replay runs the SWIFT engine over MRT trace files — a
// RIB snapshot (TABLE_DUMP_V2) plus an update stream (BGP4MP), i.e. the
// artifact pair RouteViews collectors publish and cmd/burstgen emits.
// It reports every burst the engine detects and every inference and
// reroute it performs, making it the offline analysis twin of swiftd.
//
// Usage:
//
//	burstgen -out traces -sessions 1
//	swift-replay -rib traces/asX-from-asY.rib.mrt \
//	             -updates traces/asX-from-asY.updates.mrt \
//	             -local-as X -peer-as Y
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"swift/internal/inference"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/trace"
)

func main() {
	var (
		ribPath = flag.String("rib", "", "TABLE_DUMP_V2 RIB snapshot (required)")
		updPath = flag.String("updates", "", "BGP4MP update stream (required)")
		localAS = flag.Uint("local-as", 0, "vantage AS number (required)")
		peerAS  = flag.Uint("peer-as", 0, "monitored peer AS number (required)")
		trigger = flag.Int("trigger", 2500, "inference trigger threshold")
		start   = flag.Int("start-threshold", 1500, "burst start threshold")
		history = flag.Bool("history", true, "use the plausibility gate")
	)
	flag.Parse()
	if *ribPath == "" || *updPath == "" || *localAS == 0 || *peerAS == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := swiftengine.Config{
		LocalAS:         uint32(*localAS),
		PrimaryNeighbor: uint32(*peerAS),
		Logf:            log.Printf,
	}
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = *trigger
	cfg.Inference.UseHistory = *history
	cfg.Burst.StartThreshold = *start
	engine := swiftengine.New(cfg)

	rib, err := os.Open(*ribPath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := trace.ReadRIBInto(rib, func(p netaddr.Prefix, path []uint32) {
		engine.LearnPrimary(p, path)
	})
	rib.Close()
	if err != nil {
		log.Fatalf("reading RIB: %v", err)
	}
	log.Printf("loaded %d routes from %s", n, *ribPath)
	if err := engine.Provision(); err != nil {
		log.Fatal(err)
	}

	upd, err := os.Open(*updPath)
	if err != nil {
		log.Fatal(err)
	}
	defer upd.Close()

	var epoch time.Time
	events := 0
	_, err = trace.ReadUpdates(upd, func(ev trace.UpdateEvent) {
		if epoch.IsZero() {
			epoch = ev.At
		}
		at := ev.At.Sub(epoch)
		if ev.Withdraw {
			engine.ObserveWithdraw(at, ev.Prefix)
		} else {
			engine.ObserveAnnounce(at, ev.Prefix, ev.Path)
		}
		events++
	})
	if err != nil {
		log.Fatalf("reading updates: %v", err)
	}
	engine.Tick(1 << 62) // close any open burst

	fmt.Printf("\nreplayed %d per-prefix events\n", events)
	fmt.Printf("decisions: %d accepted, %d deferred by the gate\n",
		len(engine.Decisions()), engine.Deferred())
	for i, d := range engine.Decisions() {
		fmt.Printf("  #%d at %v: links %v (received %d, predicted %d, %d rules, %v)\n",
			i+1, d.At.Round(time.Millisecond), d.Result.Links, d.Result.Received,
			len(d.Predicted), d.RulesInstalled, d.DataplaneTime)
	}
}
