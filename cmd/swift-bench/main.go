// Command swift-bench regenerates the paper's tables and figures at
// configurable scale and prints them in the paper's shape.
//
// Usage:
//
//	swift-bench -exp all                 # everything, default scale
//	swift-bench -exp table1              # one experiment
//	swift-bench -exp fig9 -prefixes 290000
//	swift-bench -exp fig6 -ases 1000 -sessions 213 -evalsessions 8
//
// Experiments: table1, fig2a, fig2b, fig6, sim-localization, table2,
// fig7, fig8, rules, safety, fig9, ablate-weights, ablate-trigger, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/experiments"
	"swift/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (see doc)")
		seed      = flag.Int64("seed", 1, "random seed")
		ases      = flag.Int("ases", 600, "topology size for trace experiments")
		sessions  = flag.Int("sessions", 120, "collector sessions in the dataset")
		evalSess  = flag.Int("evalsessions", 6, "sessions replayed through the full pipeline")
		failures  = flag.Int("failures", 150, "failures over the capture month")
		maxPfx    = flag.Int("maxprefixes", 20000, "largest origin's prefix count")
		prefixes  = flag.Int("prefixes", 290000, "case-study burst size (fig9)")
		minBurst  = flag.Int("minburst", 1500, "minimum burst size evaluated")
		benchmark = flag.Bool("time", true, "print wall-clock time per experiment")
	)
	flag.Parse()

	names := strings.Split(*exp, ",")
	needDataset := false
	for _, n := range names {
		switch n {
		case "table1", "fig9":
		default:
			needDataset = true
		}
	}

	var ds *trace.Dataset
	var sess []trace.Session
	if needDataset {
		fmt.Fprintf(os.Stderr, "generating dataset: %d ASes, %d sessions, %d failures...\n",
			*ases, *sessions, *failures)
		start := time.Now()
		ds = trace.Generate(trace.Config{
			NumASes:           *ases,
			AvgDegree:         8.4,
			Sessions:          *sessions,
			Days:              30,
			Failures:          *failures,
			MaxPrefixes:       *maxPfx,
			PopularASes:       15,
			ASFailureFraction: 0.15,
			Timing:            bgpsim.DefaultTiming(*seed),
			Seed:              *seed,
		})
		fmt.Fprintf(os.Stderr, "dataset ready in %v (%d prefixes in the table)\n",
			time.Since(start).Round(time.Millisecond), ds.Net.TotalPrefixes())
		seen := map[trace.Session]bool{}
		for _, st := range ds.Census(*minBurst) {
			if !seen[st.Session] && len(sess) < *evalSess {
				seen[st.Session] = true
				sess = append(sess, st.Session)
			}
		}
		if len(sess) == 0 {
			fmt.Fprintln(os.Stderr, "warning: no sessions observe bursts at this scale")
		}
	}

	run := func(name string, fn func() fmt.Stringer) {
		for _, want := range names {
			if want == name || want == "all" {
				start := time.Now()
				res := fn()
				fmt.Println(res.String())
				if *benchmark {
					fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
				}
				return
			}
		}
	}

	run("table1", func() fmt.Stringer { return experiments.Table1(nil, *seed) })
	run("fig2a", func() fmt.Stringer { return experiments.Fig2a(ds, *seed) })
	run("fig2b", func() fmt.Stringer { return experiments.Fig2b(ds) })
	run("fig6", func() fmt.Stringer {
		return twoResults{
			experiments.Fig6(ds, sess, *minBurst, false),
			experiments.Fig6(ds, sess, *minBurst, true),
		}
	})
	run("sim-localization", func() fmt.Stringer {
		return twoResults{
			prefixed{"clean:\n", experiments.SimLocalization(ds, sess, *minBurst, 200, 0)},
			prefixed{"with 1000 noise withdrawals:\n", experiments.SimLocalization(ds, sess, *minBurst, 200, 1000)},
		}
	})
	run("table2", func() fmt.Stringer { return experiments.Table2(ds, sess, *minBurst) })
	run("fig7", func() fmt.Stringer { return experiments.Fig7(ds, sess, *minBurst, nil) })
	run("fig8", func() fmt.Stringer { return experiments.Fig8(ds, sess, *minBurst) })
	run("rules", func() fmt.Stringer { return experiments.Rules(ds, sess, *minBurst, 16) })
	run("safety", func() fmt.Stringer { return experiments.Safety(ds, sess, *minBurst) })
	run("fig9", func() fmt.Stringer { return experiments.Fig9(*prefixes, *seed) })
	run("ablate-weights", func() fmt.Stringer { return experiments.AblateWeights(ds, sess, *minBurst) })
	run("ablate-trigger", func() fmt.Stringer { return experiments.AblateTrigger(ds, sess, *minBurst) })
}

// twoResults prints two results back to back.
type twoResults [2]fmt.Stringer

func (t twoResults) String() string { return t[0].String() + "\n" + t[1].String() }

// prefixed prepends a label.
type prefixed struct {
	label string
	inner fmt.Stringer
}

func (p prefixed) String() string { return p.label + p.inner.String() }
