// Command swift-eval runs a named failure-scenario matrix through the
// packet-level scenario engine and writes the JSON loss report.
//
// Every scenario builds a routed topology, injects a failure, replays
// the resulting BGP bursts into a fleet of SWIFT engines, and forwards
// a synthetic flow set through the real two-stage FIB at every
// virtual-time tick — scoring packets lost with SWIFT's fast reroute
// against a vanilla router converging one FIB write at a time on the
// same stream.
//
// -mode selects the fleet's inference mode: "per-peer" is classic
// SWIFT (each session infers and acts alone), "fused" shares one
// evidence aggregator across the fleet (cross-peer corroboration,
// conflict vetoes and verdict pre-triggering), and "both" runs the two
// on the same seed and prints the per-family comparison table.
//
// The run is deterministic: the same -matrix, -seed and -mode produce
// a byte-identical report.
//
//	swift-eval -matrix default -seed 1 -o report.json
//	swift-eval -matrix default -seed 1 -mode both
//	swift-eval -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"swift/internal/experiments"
	"swift/internal/scenario"
)

func main() {
	matrix := flag.String("matrix", "default", "scenario matrix to run")
	seed := flag.Int64("seed", 1, "matrix seed (same seed, same report)")
	mode := flag.String("mode", scenario.ModePerPeer, "evaluation mode: per-peer, fused or both")
	out := flag.String("o", "", "write the JSON report to this file (default stdout only)")
	list := flag.Bool("list", false, "list matrix names and their scenarios, then exit")
	quiet := flag.Bool("q", false, "suppress the rendered table")
	flag.Parse()

	if *list {
		for _, name := range scenario.MatrixNames() {
			specs, err := scenario.Matrix(name, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s (%d scenarios)\n", name, len(specs))
			for _, s := range specs {
				fmt.Printf("  %s\n", s.Name)
			}
		}
		return
	}

	var render string
	var buf []byte
	var elapsed time.Duration
	switch *mode {
	case "both":
		start := time.Now()
		cmp, err := experiments.CompareScenarioModes(*matrix, *seed)
		elapsed = time.Since(start)
		if err != nil {
			fatal(err)
		}
		render = experiments.RenderModeComparison(cmp)
		if *out != "" {
			if buf, err = cmp.JSON(); err != nil {
				fatal(err)
			}
		}
	default:
		rep, dt, err := experiments.RunScenarioMatrixModeTimed(*matrix, *seed, *mode)
		elapsed = dt
		if err != nil {
			fatal(err)
		}
		render = experiments.RenderScenarioMatrix(rep)
		if *out != "" {
			if buf, err = rep.JSON(); err != nil {
				fatal(err)
			}
		}
	}
	// Wall clock goes to stderr only: the report (stdout/-o) must stay
	// byte-identical run to run for the determinism smoke.
	fmt.Fprintf(os.Stderr, "swift-eval: matrix %q (%s) evaluated in %s\n",
		*matrix, *mode, elapsed.Round(time.Millisecond))
	if !*quiet {
		fmt.Print(render)
	}
	if *out != "" {
		buf = append(buf, '\n')
		if err := writeFileAtomic(*out, buf); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "swift-eval: report written to %s\n", *out)
	}
}

// writeFileAtomic writes via a temp file in the target directory plus
// rename, so an interrupted run never leaves a truncated report for
// CI's byte-compare to trip over.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swift-eval:", err)
	os.Exit(1)
}
