// Command swift-eval runs a named failure-scenario matrix through the
// packet-level scenario engine and writes the JSON loss report.
//
// Every scenario builds a routed topology, injects a failure, replays
// the resulting BGP bursts into a fleet of SWIFT engines, and forwards
// a synthetic flow set through the real two-stage FIB at every
// virtual-time tick — scoring packets lost with SWIFT's fast reroute
// against a vanilla router converging one FIB write at a time on the
// same stream.
//
// The run is deterministic: the same -matrix and -seed produce a
// byte-identical report.
//
//	swift-eval -matrix default -seed 1 -o report.json
//	swift-eval -list
package main

import (
	"flag"
	"fmt"
	"os"

	"swift/internal/experiments"
	"swift/internal/scenario"
)

func main() {
	matrix := flag.String("matrix", "default", "scenario matrix to run")
	seed := flag.Int64("seed", 1, "matrix seed (same seed, same report)")
	out := flag.String("o", "", "write the JSON report to this file (default stdout only)")
	list := flag.Bool("list", false, "list matrix names and their scenarios, then exit")
	quiet := flag.Bool("q", false, "suppress the rendered table")
	flag.Parse()

	if *list {
		for _, name := range scenario.MatrixNames() {
			specs, err := scenario.Matrix(name, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swift-eval:", err)
				os.Exit(1)
			}
			fmt.Printf("%s (%d scenarios)\n", name, len(specs))
			for _, s := range specs {
				fmt.Printf("  %s\n", s.Name)
			}
		}
		return
	}

	rep, err := experiments.RunScenarioMatrix(*matrix, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swift-eval:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(experiments.RenderScenarioMatrix(rep))
	}
	if *out != "" {
		buf, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "swift-eval:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "swift-eval:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swift-eval: report written to %s\n", *out)
	}
}
