// Quickstart: the smallest complete SWIFT deployment. One engine is
// provisioned with a primary table (via neighbor AS 2 across the chain
// 2→5→6) and an alternate (via AS 3), then a burst of withdrawals —
// the failure of the remote link (5,6) — streams in as one event
// batch. The engine infers the failure from the first few hundred
// messages and reroutes every affected prefix with a handful of tag
// rules; the Observer hook reports each decision as it happens.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"swift"
)

func main() {
	cfg := swift.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = swift.DefaultInference()
	cfg.Inference.TriggerEvery = 200 // small demo: infer every 200 withdrawals
	cfg.Inference.UseHistory = false
	cfg.Encoding = swift.DefaultEncoding()
	cfg.Encoding.MinPrefixes = 100 // encode links carrying >= 100 prefixes
	cfg.Burst = swift.BurstConfig{StartThreshold: 100, StopThreshold: 9}
	// Push-based hooks replace decision polling: the engine reports
	// every inference the moment its rules hit the data plane.
	cfg.Observer = swift.Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			fmt.Printf("  | burst started at %v (%d withdrawals in window)\n", at, withdrawals)
		},
		OnDecision: func(d swift.Decision) {
			fmt.Printf("  | inference at %v: links %v, %d prefixes predicted, %d rules in %v\n",
				d.At, d.Result.Links, len(d.Predicted), d.RulesInstalled, d.DataplaneTime)
		},
	}

	engine := swift.New(cfg)

	// Table transfer: 1,000 prefixes routed via AS 2 over the remote
	// chain 2→5→6; AS 3 offers a (5,6)-free alternate for each.
	fmt.Println("provisioning 1000 prefixes (primary via AS2, alternate via AS3)...")
	prefixes := make([]swift.Prefix, 0, 1000)
	for i := 0; i < 1000; i++ {
		p := swift.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/250, i%250))
		prefixes = append(prefixes, p)
		engine.LearnPrimary(p, []uint32{2, 5, 6})
		engine.LearnAlternate(3, p, []uint32{3, 6})
	}
	if err := engine.Provision(); err != nil {
		panic(err)
	}

	nh, _ := engine.FIB().ForwardPrefix(prefixes[0])
	fmt.Printf("before the outage: %v forwards via AS%d\n\n", prefixes[0], nh)

	// The remote link (5,6) fails: its withdrawals arrive as one event
	// batch — the engine's only hot path.
	fmt.Println("link (5,6) fails — streaming withdrawals...")
	batch := make(swift.Batch, 0, 600)
	for i, p := range prefixes[:600] {
		batch = append(batch, swift.WithdrawEvent(time.Duration(i)*2*time.Millisecond, p))
	}
	if err := engine.Apply(batch); err != nil {
		panic(err)
	}

	// Prefixes whose withdrawals have NOT yet arrived are already safe.
	survivor := prefixes[900]
	nh, ok := engine.FIB().ForwardPrefix(survivor)
	fmt.Printf("\nafter the inference: %v forwards via AS%d (ok=%v) — rerouted before its withdrawal arrived\n",
		survivor, nh, ok)
}
