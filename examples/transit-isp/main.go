// Transit-ISP scenario: the paper's running example (Fig. 1) end to
// end. A transit provider's customer (AS 1) routes 21k prefixes through
// the chain 2→5→6 towards ASes 6, 7 and 8. The remote link (5,6) fails;
// AS 1's session with AS 2 sees 11k withdrawals interleaved with 10k
// path updates, replayed through a synthetic BurstSource into the
// engine's event pipeline. The example compares the downtime of a
// vanilla router against the SWIFTED one on the same burst — the §7
// case study at transit-ISP scale.
//
// Run: go run ./examples/transit-isp
package main

import (
	"fmt"
	"time"

	"swift"
	"swift/internal/bgpsim"
	"swift/internal/netaddr"
	"swift/internal/router"
	"swift/internal/topology"
)

func main() {
	const scale = 10000 // S7 and S8 originate 10k prefixes each, as in the paper
	net := bgpsim.Fig1Network(scale)
	fmt.Printf("Fig.1 network: %d ASes, %d links, %d prefixes in the table\n",
		net.Graph.NumASes(), net.Graph.NumLinks(), net.TotalPrefixes())

	// Provision AS 1's SWIFT engine from the simulator's ground truth.
	sols := net.Solve(net.Graph)
	cfg := swift.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = swift.DefaultInference() // 2.5k trigger, history on
	cfg.Observer.OnDecision = func(d swift.Decision) {
		fmt.Printf("  inference at %v: links %v (%d received), %d prefixes covered\n",
			d.At.Round(time.Millisecond), d.Result.Links, d.Result.Received, len(d.Predicted))
	}
	engine := swift.New(cfg)
	for origin := range net.Origins {
		for _, nb := range []uint32{2, 3, 4} {
			r, ok := sols[origin].ExportTo(net.Graph, net.Policy, nb, 1)
			if !ok {
				continue
			}
			for i := 0; i < net.Origins[origin]; i++ {
				p := netaddr.PrefixFor(origin, i)
				if nb == 2 {
					engine.LearnPrimary(p, r.Path)
				} else {
					engine.LearnAlternate(nb, p, r.Path)
				}
			}
		}
	}
	if err := engine.Provision(); err != nil {
		panic(err)
	}

	// Fail (5,6) and replay the burst (testbed arrival pacing) through
	// the shared event pipeline — exactly how a live feed would arrive.
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.TestbedTiming(7))
	if err != nil {
		panic(err)
	}
	fmt.Printf("burst on the AS2 session: %d withdrawals + %d updates over %v\n",
		b.Size, len(b.Events)-b.Size, b.Duration().Round(time.Millisecond))

	src := &bgpsim.BurstSource{Bursts: []*bgpsim.Burst{b}, FinalTick: -1}
	if err := src.Run(engine); err != nil {
		panic(err)
	}

	// Compare data-plane downtime, probing 100 withdrawn prefixes.
	probes := router.SampleProbes(b, 100)
	bgpDown := router.MeasureDowntime(router.RestoreTimesBGP(b, 0), probes)
	swiftDown := router.MeasureDowntime(router.RestoreTimesSwift(b, engine.Decisions(), 0), probes)

	fmt.Printf("\nvanilla router : all probes restored after %v (median %v)\n",
		bgpDown.Last.Round(time.Millisecond), bgpDown.Median.Round(time.Millisecond))
	fmt.Printf("SWIFTED router : all probes restored after %v (median %v)\n",
		swiftDown.Last.Round(time.Millisecond), swiftDown.Median.Round(time.Millisecond))
	speedup := 100 * (1 - float64(swiftDown.Last)/float64(bgpDown.Last))
	fmt.Printf("speed-up       : %.1f%%\n", speedup)
}
