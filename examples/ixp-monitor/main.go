// IXP-monitor example: a route server vantage with many peering
// sessions, one SWIFT engine per session running in parallel (§4.1's
// per-session design). The example synthesizes a RouteViews-like
// capture, replays each session's bursts through its own engine
// concurrently (each burst as a synthetic event-stream Source feeding
// the engine Sink), and aggregates what the monitor learned: which
// remote links failed and how much of each burst was predicted early.
//
// Run: go run ./examples/ixp-monitor
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"swift"
	"swift/internal/bgpsim"
	"swift/internal/netaddr"
	"swift/internal/trace"
)

func main() {
	fmt.Println("synthesizing a month of BGP over a 300-AS Internet...")
	ds := trace.Generate(trace.Config{
		NumASes:           300,
		AvgDegree:         7,
		Sessions:          24,
		Days:              30,
		Failures:          60,
		MaxPrefixes:       8000,
		PopularASes:       8,
		ASFailureFraction: 0.15,
		Timing:            bgpsim.DefaultTiming(4),
		Seed:              4,
	})
	fmt.Printf("dataset: %d sessions, %d scheduled outages, %d prefixes\n\n",
		len(ds.Sessions), len(ds.Failures), ds.Net.TotalPrefixes())

	type report struct {
		session trace.Session
		bursts  int
		lines   []string
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports []report
	)
	// One engine per session, all sessions in parallel.
	for _, s := range ds.Sessions {
		wg.Add(1)
		go func(s trace.Session) {
			defer wg.Done()
			bursts := ds.BurstsAt(s, 1000)
			if len(bursts) == 0 {
				return
			}
			rep := report{session: s, bursts: len(bursts)}
			for _, b := range bursts {
				cfg := swift.Config{LocalAS: s.Vantage, PrimaryNeighbor: s.Neighbor}
				cfg.Inference = swift.DefaultInference()
				cfg.Inference.TriggerEvery = 500
				cfg.Inference.UseHistory = false
				cfg.Encoding = swift.DefaultEncoding()
				cfg.Encoding.MinPrefixes = 500
				cfg.Burst = swift.BurstConfig{StartThreshold: 500, StopThreshold: 9}
				// The first decision per burst, pushed by the engine —
				// no decision-log polling.
				var first *swift.Decision
				cfg.Observer.OnDecision = func(d swift.Decision) {
					if first == nil {
						first = &d
					}
				}
				engine := swift.New(cfg)
				for origin, path := range ds.SessionRIB(s) {
					for i := 0; i < ds.Net.Origins[origin]; i++ {
						engine.LearnPrimary(netaddr.PrefixFor(origin, i), path)
					}
				}
				if err := engine.Provision(); err != nil {
					continue
				}
				src := &bgpsim.BurstSource{Bursts: []*bgpsim.Burst{b}, FinalTick: -1}
				if err := src.Run(engine); err != nil {
					continue
				}
				if first != nil {
					rep.lines = append(rep.lines, fmt.Sprintf(
						"    burst of %6d: inferred %v at %7v (truth %v)",
						b.Size, first.Result.Links, first.At.Round(time.Millisecond), b.FailedLinks[0]))
				}
			}
			mu.Lock()
			reports = append(reports, rep)
			mu.Unlock()
		}(s)
	}
	wg.Wait()

	sort.Slice(reports, func(i, j int) bool {
		return reports[i].session.Vantage < reports[j].session.Vantage
	})
	totalBursts := 0
	for _, rep := range reports {
		totalBursts += rep.bursts
		fmt.Printf("session AS%d <- AS%d: %d bursts\n", rep.session.Vantage, rep.session.Neighbor, rep.bursts)
		for _, l := range rep.lines {
			fmt.Println(l)
		}
	}
	fmt.Printf("\n%d sessions observed %d bursts in the capture month\n", len(reports), totalBursts)
}
