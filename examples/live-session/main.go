// Live-session example: the §7 deployment over a real TCP BGP session
// on localhost. A "peer" speaker (playing AS 2's router) establishes a
// session with the SWIFT controller, floods the initial table, then
// replays the Fig. 1 burst on the wire as packed UPDATE messages. The
// controller detects the burst, infers the failed link and programs the
// data plane live; the engine's Observer hook pushes each decision to
// the example the moment it happens — no polling.
//
// Run: go run ./examples/live-session
package main

import (
	"fmt"
	"net"
	"time"

	"swift"
	"swift/internal/bgp"
	"swift/internal/bgpd"
	"swift/internal/bgpsim"
	"swift/internal/controller"
	"swift/internal/netaddr"
	"swift/internal/topology"
)

func main() {
	const scale = 2000
	netw := bgpsim.Fig1Network(scale)
	sols := netw.Solve(netw.Graph)

	// SWIFT controller for AS 1. Decisions are pushed over a channel by
	// the Observer hook instead of polled from the decision log.
	decisions := make(chan swift.Decision, 16)
	cfg := swift.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = swift.DefaultInference()
	cfg.Inference.TriggerEvery = 500
	cfg.Inference.UseHistory = false
	cfg.Encoding = swift.DefaultEncoding()
	cfg.Encoding.MinPrefixes = 200
	cfg.Burst = swift.BurstConfig{StartThreshold: 200, StopThreshold: 9}
	cfg.Observer.OnDecision = func(d swift.Decision) { decisions <- d }
	ctrl := controller.New(swift.New(cfg), func(f string, a ...any) {
		fmt.Printf("  | "+f+"\n", a...)
	})

	// Preload the table and the alternates (in a full deployment these
	// come from the other peers' sessions).
	for origin := range netw.Origins {
		for _, nb := range []uint32{2, 3, 4} {
			r, ok := sols[origin].ExportTo(netw.Graph, netw.Policy, nb, 1)
			if !ok {
				continue
			}
			u := &bgp.Update{Attrs: bgp.Attrs{ASPath: r.Path, HasNextHop: true, NextHop: nb}}
			for i := 0; i < netw.Origins[origin]; i++ {
				u.NLRI = append(u.NLRI, netaddr.PrefixFor(origin, i))
			}
			if nb == 2 {
				ctrl.LoadTable([]*bgp.Update{u})
			} else {
				ctrl.LoadAlternate(nb, []*bgp.Update{u})
			}
		}
	}
	if err := ctrl.Provision(); err != nil {
		panic(err)
	}
	fmt.Println("controller provisioned:", ctrl.Status())

	// Real TCP session on localhost.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer l.Close()
	peerReady := make(chan *bgpd.Session, 1)
	go func() {
		s, err := bgpd.Dial(l.Addr().String(), bgpd.Config{LocalAS: 2, RouterID: 2})
		if err != nil {
			panic(err)
		}
		peerReady <- s
	}()
	local, err := bgpd.Accept(l, bgpd.Config{LocalAS: 1, RouterID: 1})
	if err != nil {
		panic(err)
	}
	peer := <-peerReady
	defer local.Close()
	defer peer.Close()
	fmt.Printf("BGP session established over %s (peer AS%d)\n\n", l.Addr(), local.PeerAS())

	ctrl.AttachPrimary(local)

	// AS 2's router replays the (5,6) failure burst on the wire.
	b, err := netw.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.TestbedTiming(9))
	if err != nil {
		panic(err)
	}
	fmt.Printf("peer replays the burst: %d withdrawals, %d updates\n", b.Size, len(b.Events)-b.Size)
	var batch []netaddr.Prefix
	flush := func() {
		for _, m := range bgp.PackWithdrawals(batch) {
			if err := peer.Send(m); err != nil {
				panic(err)
			}
		}
		batch = batch[:0]
	}
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			batch = append(batch, ev.Prefix)
			if len(batch) >= 500 {
				flush()
			}
			continue
		}
		flush()
		if err := peer.Send(&bgp.Update{
			Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 2},
			NLRI:  []netaddr.Prefix{ev.Prefix},
		}); err != nil {
			panic(err)
		}
	}
	flush()

	// The observer pushes the first inference as soon as the controller
	// drains it off the socket.
	fmt.Println()
	select {
	case d := <-decisions:
		fmt.Printf("live inference: links %v after %d withdrawals, %d rules installed\n",
			d.Result.Links, d.Result.Received, d.RulesInstalled)
	case <-time.After(10 * time.Second):
		fmt.Println("no inference within 10s")
	}
	fmt.Println("final:", ctrl.Status())
}
