package swift_test

import (
	"testing"
	"time"

	"swift"
)

// TestPublicAPIQuickstart exercises the facade exactly like the package
// documentation example: provision a small engine, replay a burst, and
// observe the inference.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := swift.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = swift.DefaultInference()
	cfg.Inference.TriggerEvery = 100
	cfg.Inference.UseHistory = false
	cfg.Encoding = swift.DefaultEncoding()
	cfg.Encoding.MinPrefixes = 50
	cfg.Burst = swift.BurstConfig{StartThreshold: 50, StopThreshold: 9}

	e := swift.New(cfg)
	// 500 prefixes via 2->5->6, alternates via 3.
	var prefixes []swift.Prefix
	for i := 0; i < 500; i++ {
		p, err := swift.ParsePrefix(dottedQuad(i))
		if err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, p)
		e.LearnPrimary(p, []uint32{2, 5, 6})
		e.LearnAlternate(3, p, []uint32{3, 6})
	}
	if err := e.Provision(); err != nil {
		t.Fatal(err)
	}

	if nh, ok := e.FIB().ForwardPrefix(prefixes[0]); !ok || nh != 2 {
		t.Fatalf("pre-failure next hop = %d, %v", nh, ok)
	}

	// The (5,6) link fails: withdrawals stream in.
	for i, p := range prefixes[:400] {
		e.ObserveWithdraw(time.Duration(i)*time.Millisecond, p)
	}
	ds := e.Decisions()
	if len(ds) == 0 {
		t.Fatal("no inference decisions")
	}
	found := false
	for _, l := range ds[0].Result.Links {
		if l == swift.MakeLink(5, 6) || l.Has(5) || l.Has(6) {
			found = true
		}
	}
	if !found {
		t.Errorf("inferred %v, expected links around (5,6)", ds[0].Result.Links)
	}
	// Survivors must be diverted to the backup.
	if nh, ok := e.FIB().ForwardPrefix(prefixes[450]); !ok || nh != 3 {
		t.Errorf("rerouted next hop = %d, %v; want 3", nh, ok)
	}
}

func dottedQuad(i int) string {
	return "10." + itoa(i/250%250) + "." + itoa(i%250) + ".0/24"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFleetFacade drives the multi-peer API through the facade: a
// fleet of per-peer engines fed by batched observations, the way a
// BMP station delivers them.
func TestFleetFacade(t *testing.T) {
	fleet := swift.NewFleet(swift.FleetConfig{
		Engine: func(key swift.PeerKey) swift.Config {
			return swift.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
		},
	})
	defer fleet.Close()

	key := swift.PeerKey{AS: 2, BGPID: 7}
	// The fleet is a Provisioner: table transfer goes through the same
	// surface a BMP table dump or an MRT RIB snapshot would use.
	p := swift.MustParsePrefix("192.0.2.0/24")
	fleet.Learn(key, p, []uint32{2, 5, 6})
	if err := fleet.Provision(key); err != nil {
		t.Fatal(err)
	}
	// And a Sink: events route on their peer key.
	if err := fleet.Apply(swift.Batch{swift.WithdrawEvent(time.Second, p).WithPeer(key)}); err != nil {
		t.Fatal(err)
	}
	fleet.Sync()
	if m := fleet.Metrics(); m.Peers != 1 || m.Withdrawals != 1 {
		t.Errorf("fleet metrics = %+v", m)
	}

	st := swift.NewBMPStation(swift.BMPStationConfig{Sink: fleet})
	if st.Sink() != swift.Sink(fleet) {
		t.Error("station not wired to the fleet")
	}
}

// TestEngineAndFleetAreSinks pins the redesign's core contract: the
// single-session Engine and the collector-scale Fleet are
// interchangeable behind the same Source.
func TestEngineAndFleetAreSinks(t *testing.T) {
	var sinks []swift.Sink
	e := swift.New(swift.Config{LocalAS: 1, PrimaryNeighbor: 2})
	fleet := swift.NewFleet(swift.FleetConfig{})
	defer fleet.Close()
	sinks = append(sinks, e, swift.NewSessionSink(e), fleet)
	p := swift.MustParsePrefix("192.0.2.0/24")
	for i, s := range sinks {
		if err := s.Apply(swift.Batch{swift.AnnounceEvent(time.Second, p, []uint32{2, 5})}); err != nil {
			t.Errorf("sink %d: %v", i, err)
		}
	}
	var _ swift.Provisioner = fleet
	var _ swift.Provisioner = swift.NewSessionSink(e)
}

func TestFacadeHelpers(t *testing.T) {
	p := swift.MustParsePrefix("192.0.2.0/24")
	if p.String() != "192.0.2.0/24" {
		t.Error("prefix round trip failed")
	}
	l := swift.MakeLink(9, 3)
	if l.A != 3 || l.B != 9 {
		t.Error("link not canonical")
	}
	if swift.DefaultInference().WWS != 3 {
		t.Error("default inference weights wrong")
	}
	if swift.DefaultEncoding().PathBits != 18 {
		t.Error("default encoding bits wrong")
	}
}
