package swift_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the paper-formatted rows once (via b.Logf on
// -v, and always through the recorded metrics). cmd/swift-bench runs
// the same experiments at full paper scale with textual output.

import (
	"sync"
	"testing"

	"swift/internal/bgpsim"
	"swift/internal/experiments"
	"swift/internal/trace"
)

// benchDataset is shared across benchmarks: a mid-scale synthetic
// capture (the full 213-session month is cmd/swift-bench territory).
var (
	benchOnce sync.Once
	benchDS   *trace.Dataset
	benchSess []trace.Session
)

func dataset(b *testing.B) (*trace.Dataset, []trace.Session) {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = trace.Generate(trace.Config{
			NumASes:           300,
			AvgDegree:         7,
			Sessions:          60,
			Days:              30,
			Failures:          60,
			MaxPrefixes:       8000,
			PopularASes:       10,
			ASFailureFraction: 0.15,
			Timing:            bgpsim.DefaultTiming(1),
			Seed:              1,
		})
		seen := map[trace.Session]bool{}
		for _, st := range benchDS.Census(1500) {
			if !seen[st.Session] && len(benchSess) < 3 {
				seen[st.Session] = true
				benchSess = append(benchSess, st.Session)
			}
		}
	})
	if len(benchSess) == 0 {
		b.Skip("no bursty sessions in the bench dataset")
	}
	return benchDS, benchSess
}

// BenchmarkTable1Downtime regenerates Table 1: vanilla-router downtime
// versus burst size.
func BenchmarkTable1Downtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1([]int{10000, 50000, 100000}, 1)
		if i == 0 {
			b.Logf("\n%s", res)
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Downtime.Seconds(), "s-downtime-100k")
		}
	}
}

// BenchmarkFig2aBurstCounts regenerates Fig. 2a: bursts per month vs
// number of peering sessions.
func BenchmarkFig2aBurstCounts(b *testing.B) {
	ds, _ := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2a(ds, 7)
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.Box[3][0].Median, "bursts-30sess-5k")
		}
	}
}

// BenchmarkFig2bBurstDurations regenerates Fig. 2b: burst-duration CDF.
func BenchmarkFig2bBurstDurations(b *testing.B) {
	ds, _ := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2b(ds)
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(100*res.Over10s, "pct-over-10s")
		}
	}
}

// BenchmarkFig6Inference regenerates both panels of Fig. 6.
func BenchmarkFig6Inference(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noHist := experiments.Fig6(ds, sess, 1500, false)
		hist := experiments.Fig6(ds, sess, 1500, true)
		if i == 0 {
			b.Logf("\n%s\n%s", noHist, hist)
			b.ReportMetric(100*hist.Shares[0], "pct-top-left-hist")
			b.ReportMetric(100*hist.Shares[3], "pct-bottom-right")
		}
	}
}

// BenchmarkSimLocalization regenerates §6.2.2: ground-truth localization
// accuracy, with and without noise.
func BenchmarkSimLocalization(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean := experiments.SimLocalization(ds, sess, 1500, 200, 0)
		noisy := experiments.SimLocalization(ds, sess, 1500, 200, 1000)
		if i == 0 {
			b.Logf("\nclean:\n%s\nwith 1000 noise withdrawals:\n%s", clean, noisy)
			if clean.Bursts > 0 {
				b.ReportMetric(100*float64(clean.SafeBackups)/float64(clean.Bursts), "pct-safe-backups")
			}
		}
	}
}

// BenchmarkTable2Prediction regenerates Table 2: CPR/FPR/CP/FP
// percentiles for small and large bursts.
func BenchmarkTable2Prediction(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(ds, sess, 1500)
		if i == 0 {
			b.Logf("\n%s", res)
			if len(res.Small.CPR) > 3 {
				b.ReportMetric(res.Small.CPR[3], "pct-median-CPR-small")
			}
		}
	}
}

// BenchmarkFig7Encoding regenerates Fig. 7: encoding performance vs
// Part-1 bit budget.
func BenchmarkFig7Encoding(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The paper sweeps 13/18/23/28; at this dataset's scale the
		// dictionaries already fit in 13 bits, so extend the sweep down
		// to expose the coverage cliff.
		res := experiments.Fig7(ds, sess, 1500, []int{6, 10, 13, 18, 23, 28})
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.All[3].Median, "pct-18bit-median")
		}
	}
}

// BenchmarkFig8LearningTime regenerates Fig. 8: learning-time CDFs.
func BenchmarkFig8LearningTime(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(ds, sess, 1500)
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.Swift.Quantile(0.5), "s-swift-median")
			b.ReportMetric(res.BGP.Quantile(0.5), "s-bgp-median")
		}
	}
}

// BenchmarkRules65 regenerates §6.5: rule counts and FIB latency per
// inference.
func BenchmarkRules65(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Rules(ds, sess, 1500, 16)
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.LinksMedian, "links-median")
		}
	}
}

// BenchmarkFig9CaseStudy regenerates the §7 case study at a laptop
// scale (50k; cmd/swift-bench runs the full 290k).
func BenchmarkFig9CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(50000, 3)
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.SpeedupPct, "pct-speedup")
		}
	}
}

// BenchmarkAblateWeights sweeps the Fit-Score weights (DESIGN.md
// ablation: 3:1 is the paper's calibration).
func BenchmarkAblateWeights(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.AblateWeights(ds, sess, 1500)
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// BenchmarkAblateTrigger sweeps the inference trigger threshold.
func BenchmarkAblateTrigger(b *testing.B) {
	ds, sess := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.AblateTrigger(ds, sess, 1500)
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}
