package reroute

import (
	"testing"

	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/topology"
)

// fig1RIBs builds AS 1's primary RIB (session with AS 2) and the
// alternate tables from AS 3 and AS 4, matching Fig. 1.
func fig1RIBs(n int) (primary *rib.Table, alternates map[uint32]*rib.Table) {
	primary = rib.New(1)
	alt3 := rib.New(1)
	alt4 := rib.New(1)
	for i := 0; i < n; i++ {
		for _, origin := range []uint32{6, 7, 8} {
			p := netaddr.PrefixFor(origin, i)
			switch origin {
			case 6:
				primary.Announce(p, []uint32{2, 5, 6})
				alt3.Announce(p, []uint32{3, 6})
				alt4.Announce(p, []uint32{4, 5, 6})
			case 7:
				primary.Announce(p, []uint32{2, 5, 6, 7})
				alt3.Announce(p, []uint32{3, 6, 7})
				alt4.Announce(p, []uint32{4, 5, 6, 7})
			case 8:
				primary.Announce(p, []uint32{2, 5, 6, 8})
				alt3.Announce(p, []uint32{3, 6, 8})
				alt4.Announce(p, []uint32{4, 5, 6, 8})
			}
		}
	}
	return primary, map[uint32]*rib.Table{3: alt3, 4: alt4}
}

func TestFig1Backups(t *testing.T) {
	primary, alternates := fig1RIBs(10)
	plan := Compute(1, primary, alternates, nil, 5)

	p := netaddr.PrefixFor(8, 0) // path 2 5 6 8: links (1,2)(2,5)(5,6)(6,8)
	// Failure of (1,2) at depth 1: both 3 and 4 avoid ASes 1 and 2...
	// 4's path avoids 2 but the link (1,2) endpoint 1 is the local AS,
	// which every alternate "visits" — except pathAvoids only inspects
	// the advertised path, which starts at the neighbor. Both 3 and 4
	// qualify; 3 wins by ASN with equal cost.
	if nh := plan.BackupFor(p, 1); nh != 3 {
		t.Errorf("backup for depth 1 = %d, want 3", nh)
	}
	// Failure of (2,5) at depth 2: AS 4's path crosses 5, so only 3.
	if nh := plan.BackupFor(p, 2); nh != 3 {
		t.Errorf("backup for depth 2 = %d, want 3", nh)
	}
	// Failure of (5,6) at depth 3: AS 4 crosses the link itself, so it
	// is out; AS 3's path (3,6,8) crosses endpoint 6 (unavoidable — 6
	// is the only transit to 8) but not the link: the fallback tier
	// selects it, matching the paper's example where AS 3 is the (5,6)
	// backup.
	if nh := plan.BackupFor(p, 3); nh != 3 {
		t.Errorf("backup for depth 3 = %d, want 3 (link-free fallback)", nh)
	}
}

func TestFig1BackupsPaperExample(t *testing.T) {
	// §3: "the AS 1 router chooses AS 3 or AS 4 as backup next-hop for
	// the 20k prefixes of AS 7 and AS 8 upon the failure of link (1,2).
	// In contrast, it can only use AS 3 as backup for the failure of
	// link (2,5), since AS 4 also uses (5,...)". Depth-1 and depth-2
	// checks above cover this; here we verify AS 4 is used when AS 3 is
	// forbidden.
	primary, alternates := fig1RIBs(10)
	pol := &Policy{Forbid: map[uint32]bool{3: true}}
	plan := Compute(1, primary, alternates, pol, 5)
	p := netaddr.PrefixFor(8, 0)
	if nh := plan.BackupFor(p, 1); nh != 4 {
		t.Errorf("with 3 forbidden, depth-1 backup = %d, want 4", nh)
	}
	// Depth 2 (2,5): AS 4's path crosses endpoint 5 but not the link
	// (2,5) itself, so the fallback tier admits it.
	if nh := plan.BackupFor(p, 2); nh != 4 {
		t.Errorf("with 3 forbidden, depth-2 backup = %d, want 4", nh)
	}
}

func TestCostRanking(t *testing.T) {
	primary, alternates := fig1RIBs(5)
	// Make 4 cheaper than 3: depth-1 backups should flip to 4.
	pol := &Policy{Cost: map[uint32]int{3: 20, 4: 10}}
	plan := Compute(1, primary, alternates, pol, 5)
	p := netaddr.PrefixFor(7, 0)
	if nh := plan.BackupFor(p, 1); nh != 4 {
		t.Errorf("cheapest backup = %d, want 4", nh)
	}
	// Depth 2 still requires avoiding AS 5: only 3 qualifies despite
	// its higher cost.
	if nh := plan.BackupFor(p, 2); nh != 3 {
		t.Errorf("depth-2 backup = %d, want 3", nh)
	}
}

func TestCapacityGuard(t *testing.T) {
	primary, alternates := fig1RIBs(100)
	// AS 3 can absorb only 50 reroutes; overflow must spill to 4 where
	// 4 is viable (depth 1) and to nothing where it is not (depth 2).
	pol := &Policy{Capacity: map[uint32]int{3: 50}}
	plan := Compute(1, primary, alternates, pol, 5)
	if plan.Assigned[3] != 50 {
		t.Errorf("assigned to 3 = %d, want capped 50", plan.Assigned[3])
	}
	if plan.Assigned[4] == 0 {
		t.Error("overflow must spill to AS 4")
	}
	// The capacity guard is respected while the spill keeps coverage up.
	if plan.Assigned[3] > 50 {
		t.Errorf("assigned to 3 = %d exceeds its cap", plan.Assigned[3])
	}
}

func TestCoverageReport(t *testing.T) {
	primary, alternates := fig1RIBs(10)
	plan := Compute(1, primary, alternates, nil, 5)
	rep := plan.Coverage()
	if rep.Total != 30 {
		t.Errorf("total = %d, want 30", rep.Total)
	}
	// Depth 1 fully protectable; depth 3 (the 5,6 link for origin-8
	// paths) not at all.
	if rep.Protected[0] != 30 {
		t.Errorf("depth-1 protected = %d, want 30", rep.Protected[0])
	}
}

func TestDepthClamping(t *testing.T) {
	primary, alternates := fig1RIBs(2)
	plan := Compute(1, primary, alternates, nil, 99)
	if plan.Depth != MaxDepth {
		t.Errorf("depth = %d, want clamped %d", plan.Depth, MaxDepth)
	}
	p := netaddr.PrefixFor(6, 0) // 3-link path: backups sized to path
	if got := len(plan.Backups[p]); got != 3 {
		t.Errorf("backup slots = %d, want 3", got)
	}
}

func TestPathAvoids(t *testing.T) {
	l := topology.MakeLink(5, 6)
	if pathAvoids([]uint32{4, 5, 7}, l) {
		t.Error("path visiting endpoint 5 must not qualify")
	}
	if pathAvoids([]uint32{3, 6, 8}, l) {
		t.Error("path visiting endpoint 6 must not qualify")
	}
	if !pathAvoids([]uint32{3, 9, 8}, l) {
		t.Error("endpoint-free path must qualify")
	}
}

func TestRemoteNextHopViaTunnel(t *testing.T) {
	// §3.2: remote backup next-hops learned via iBGP count like local
	// ones. Model a remote egress 99 advertising a (5,6)-free path.
	primary, alternates := fig1RIBs(5)
	remote := rib.New(1)
	for i := 0; i < 5; i++ {
		remote.Announce(netaddr.PrefixFor(8, i), []uint32{99, 8})
	}
	alternates[99] = remote
	plan := Compute(1, primary, alternates, nil, 5)
	p := netaddr.PrefixFor(8, 0)
	if nh := plan.BackupFor(p, 3); nh != 99 {
		t.Errorf("depth-3 backup = %d, want remote 99", nh)
	}
}
