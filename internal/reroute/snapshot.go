package reroute

import (
	"fmt"
	"sort"

	"swift/internal/netaddr"
)

// Warm-restart image for a computed backup plan, canonically ordered
// (backup rows ascending by prefix, assignment counts ascending by
// next-hop AS) so the same plan always serializes identically.

// BackupRow is one prefix's backup next-hops, index d-1 protecting
// depth d.
type BackupRow struct {
	Prefix netaddr.Prefix
	Row    []uint32
}

// NHCount is one next-hop's assignment count.
type NHCount struct {
	NH    uint32
	Count int
}

// PlanImage is a Plan in canonical order.
type PlanImage struct {
	LocalAS  int
	Depth    int
	Backups  []BackupRow
	Assigned []NHCount
}

// Export captures the plan.
func (pl *Plan) Export() PlanImage {
	img := PlanImage{
		LocalAS:  pl.LocalAS,
		Depth:    pl.Depth,
		Backups:  make([]BackupRow, 0, len(pl.Backups)),
		Assigned: make([]NHCount, 0, len(pl.Assigned)),
	}
	for p, row := range pl.Backups {
		img.Backups = append(img.Backups, BackupRow{Prefix: p, Row: append([]uint32(nil), row...)})
	}
	sort.Slice(img.Backups, func(i, j int) bool { return img.Backups[i].Prefix < img.Backups[j].Prefix })
	for nh, n := range pl.Assigned {
		img.Assigned = append(img.Assigned, NHCount{NH: nh, Count: n})
	}
	sort.Slice(img.Assigned, func(i, j int) bool { return img.Assigned[i].NH < img.Assigned[j].NH })
	return img
}

// RestorePlan rebuilds a plan from its image. Backup rows share one
// arena like Compute's output.
func RestorePlan(img PlanImage) (*Plan, error) {
	pl := &Plan{
		LocalAS:  img.LocalAS,
		Depth:    img.Depth,
		Backups:  make(map[netaddr.Prefix][]uint32, len(img.Backups)),
		Assigned: make(map[uint32]int, len(img.Assigned)),
	}
	total := 0
	for _, r := range img.Backups {
		total += len(r.Row)
	}
	arena := make([]uint32, 0, total)
	for i, r := range img.Backups {
		if i > 0 && r.Prefix <= img.Backups[i-1].Prefix {
			return nil, fmt.Errorf("reroute: restore: backup rows not ascending at %v", r.Prefix)
		}
		start := len(arena)
		arena = append(arena, r.Row...)
		pl.Backups[r.Prefix] = arena[start : start+len(r.Row) : start+len(r.Row)]
	}
	for i, a := range img.Assigned {
		if i > 0 && a.NH <= img.Assigned[i-1].NH {
			return nil, fmt.Errorf("reroute: restore: assignments not ascending at %d", a.NH)
		}
		pl.Assigned[a.NH] = a.Count
	}
	return pl, nil
}
