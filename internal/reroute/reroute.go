// Package reroute computes SWIFT's backup next-hops (§3.2, §5): for
// every prefix and every AS link on its primary path, the neighbor to
// divert traffic to if that link fails. Selection honors the operator's
// rerouting policies — forbidden next-hops, per-neighbor cost ranking,
// and capacity ceilings (the 95th-percentile-billing guard) — and the
// safety rule of §4.2: a backup path must avoid BOTH endpoints of the
// protected link, so that rerouting stays loop- and blackhole-free even
// when the inference only localizes the failure to a set of links
// sharing an endpoint.
package reroute

import (
	"sort"

	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/topology"
)

// Policy is the operator's rerouting preference (§3.2 "SWIFT supports
// rerouting policies").
type Policy struct {
	// Forbid lists neighbors that must never be used as backups (e.g.,
	// expensive transit, embargoed peers).
	Forbid map[uint32]bool
	// Cost ranks neighbors: lower is more preferred. Unlisted neighbors
	// get cost 0. Model business preference here (customer 0, peer 10,
	// provider 20, expensive provider 30, ...).
	Cost map[uint32]int
	// Capacity caps how many prefixes may be rerouted to a neighbor
	// (0 = unlimited). This implements the "do not reroute large
	// amounts of traffic to low-bandwidth paths" guard.
	Capacity map[uint32]int
}

func (p *Policy) forbidden(n uint32) bool { return p != nil && p.Forbid[n] }

func (p *Policy) cost(n uint32) int {
	if p == nil {
		return 0
	}
	return p.Cost[n]
}

func (p *Policy) capacity(n uint32) int {
	if p == nil {
		return 0
	}
	return p.Capacity[n]
}

// MaxDepth is the deepest protected link position: SWIFT pre-computes
// backups for the first MaxDepth links of each path (§5 encodes up to
// AS-path position 5, i.e. link depths 1..4 beyond the local hop).
const MaxDepth = 5

// Plan holds the per-prefix backup table: Backups[p][d-1] is the backup
// next-hop AS protecting the link at depth d of p's primary path (0 =
// no viable backup).
type Plan struct {
	LocalAS int
	Depth   int
	Backups map[netaddr.Prefix][]uint32
	// Assigned counts prefixes assigned to each backup next-hop at any
	// depth, for capacity accounting and the load report.
	Assigned map[uint32]int
}

// BackupFor returns the backup next-hop protecting depth d (1-based) of
// p's path, or 0 when none exists.
func (pl *Plan) BackupFor(p netaddr.Prefix, d int) uint32 {
	bs := pl.Backups[p]
	if d < 1 || d > len(bs) {
		return 0
	}
	return bs[d-1]
}

// Compute builds the plan for the primary session's RIB given the
// alternative routes offered by every neighbor session.
//
// primary is the session whose routes the router currently uses (the
// paths packets follow). alternates maps each neighbor AS — including
// remote next-hops learned over iBGP tunnels (§3.2) — to the routes it
// advertises. depth limits how many links per path are protected.
func Compute(localAS uint32, primary *rib.Table, alternates map[uint32]*rib.Table, pol *Policy, depth int) *Plan {
	if depth <= 0 || depth > MaxDepth {
		depth = MaxDepth
	}
	plan := &Plan{
		LocalAS:  int(localAS),
		Depth:    depth,
		Backups:  make(map[netaddr.Prefix][]uint32, primary.Len()),
		Assigned: make(map[uint32]int),
	}

	// Deterministic neighbor ordering: by cost, then ASN.
	neighbors := make([]uint32, 0, len(alternates))
	for n := range alternates {
		neighbors = append(neighbors, n)
	}
	sort.Slice(neighbors, func(i, j int) bool {
		ci, cj := pol.cost(neighbors[i]), pol.cost(neighbors[j])
		if ci != cj {
			return ci < cj
		}
		return neighbors[i] < neighbors[j]
	})

	// Deterministic prefix ordering so capacity admission is stable.
	prefixes := make([]netaddr.Prefix, 0, primary.Len())
	primary.ForEach(func(p netaddr.Prefix, _ []uint32) {
		prefixes = append(prefixes, p)
	})
	netaddr.Sort(prefixes)

	// Paths are interned, so the positional link decomposition is
	// computed once per unique path, not once per prefix (real tables
	// carry orders of magnitude more prefixes than paths).
	linksByPath := make(map[rib.PathID][]topology.Link)
	for _, p := range prefixes {
		h, ok := primary.HandleOf(p)
		if !ok {
			continue
		}
		path := h.Path()
		links, memoized := linksByPath[h.ID()]
		if !memoized {
			links = rib.PathLinks(nil, localAS, path)
			linksByPath[h.ID()] = links
		}
		n := depth
		if len(links) < n {
			n = len(links)
		}
		backups := make([]uint32, n)
		primaryNH := uint32(0)
		if len(path) > 0 {
			primaryNH = path[0]
		}
		for d := 1; d <= n; d++ {
			backups[d-1] = pickBackup(p, links[d-1], primaryNH, neighbors, alternates, pol, plan, localAS)
		}
		plan.Backups[p] = backups
	}
	return plan
}

// pickBackup selects the most preferred viable backup neighbor for one
// (prefix, protected link) pair. Selection is tiered:
//
//  1. paths avoiding BOTH endpoints of the protected link (§4.2's
//     footnote — safe even when the inference only localized the
//     failure to a set of links sharing an endpoint), then
//  2. paths merely avoiding the link itself.
//
// The fallback tier is required by the paper's own running example: the
// backup for (5,6) is AS 3's path (3,6,8), which necessarily crosses
// endpoint 6 because AS 6 is the only transit towards its customers.
// Endpoint avoidance is impossible for prefixes whose every path goes
// through an endpoint, and rerouting onto a link-free path is still no
// worse than the blackhole it replaces (§3.3, Assumption 2 discussion).
func pickBackup(p netaddr.Prefix, protected topology.Link, primaryNH uint32, neighbors []uint32, alternates map[uint32]*rib.Table, pol *Policy, plan *Plan, localAS uint32) uint32 {
	for _, requireEndpointFree := range []bool{true, false} {
		for _, n := range neighbors {
			if n == primaryNH || pol.forbidden(n) {
				continue
			}
			if c := pol.capacity(n); c > 0 && plan.Assigned[n] >= c {
				continue
			}
			alt := alternates[n]
			if alt == nil {
				continue
			}
			path := alt.Path(p)
			if path == nil {
				continue
			}
			ok := false
			if requireEndpointFree {
				ok = pathAvoids(path, protected)
			} else {
				ok = pathAvoidsLink(path, localAS, protected)
			}
			if ok {
				plan.Assigned[n]++
				return n
			}
		}
	}
	return 0
}

// pathAvoids reports whether path visits neither endpoint of l (§4.2
// footnote: avoiding both endpoints keeps the backup safe under
// aggregated and AS-level inferences).
func pathAvoids(path []uint32, l topology.Link) bool {
	for _, as := range path {
		if as == l.A || as == l.B {
			return false
		}
	}
	return true
}

// pathAvoidsLink reports whether the full forwarding path (local AS
// prepended) never crosses link l itself.
func pathAvoidsLink(path []uint32, localAS uint32, l topology.Link) bool {
	prev := localAS
	for _, as := range path {
		if as == prev {
			continue
		}
		if topology.MakeLink(prev, as) == l {
			return false
		}
		prev = as
	}
	return true
}

// CoverageReport summarizes how protectable a RIB is: for each depth,
// the fraction of prefixes with a viable backup. The paper's claim that
// deeper links matter less (§5) shows up as rising coverage gaps with
// depth that affect fewer prefixes.
type CoverageReport struct {
	Depth     int
	Protected []int // Protected[d-1] = prefixes with a backup at depth d
	Total     int
}

// Coverage computes the report for a plan.
func (pl *Plan) Coverage() CoverageReport {
	rep := CoverageReport{Depth: pl.Depth, Protected: make([]int, pl.Depth)}
	for _, bs := range pl.Backups {
		rep.Total++
		for d, b := range bs {
			if b != 0 {
				rep.Protected[d]++
			}
		}
	}
	return rep
}
