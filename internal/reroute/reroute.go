// Package reroute computes SWIFT's backup next-hops (§3.2, §5): for
// every prefix and every AS link on its primary path, the neighbor to
// divert traffic to if that link fails. Selection honors the operator's
// rerouting policies — forbidden next-hops, per-neighbor cost ranking,
// and capacity ceilings (the 95th-percentile-billing guard) — and the
// safety rule of §4.2: a backup path must avoid BOTH endpoints of the
// protected link, so that rerouting stays loop- and blackhole-free even
// when the inference only localizes the failure to a set of links
// sharing an endpoint.
package reroute

import (
	"sort"

	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/topology"
)

// Policy is the operator's rerouting preference (§3.2 "SWIFT supports
// rerouting policies").
type Policy struct {
	// Forbid lists neighbors that must never be used as backups (e.g.,
	// expensive transit, embargoed peers).
	Forbid map[uint32]bool
	// Cost ranks neighbors: lower is more preferred. Unlisted neighbors
	// get cost 0. Model business preference here (customer 0, peer 10,
	// provider 20, expensive provider 30, ...).
	Cost map[uint32]int
	// Capacity caps how many prefixes may be rerouted to a neighbor
	// (0 = unlimited). This implements the "do not reroute large
	// amounts of traffic to low-bandwidth paths" guard.
	Capacity map[uint32]int
}

func (p *Policy) forbidden(n uint32) bool { return p != nil && p.Forbid[n] }

func (p *Policy) cost(n uint32) int {
	if p == nil {
		return 0
	}
	return p.Cost[n]
}

func (p *Policy) capacity(n uint32) int {
	if p == nil {
		return 0
	}
	return p.Capacity[n]
}

// MaxDepth is the deepest protected link position: SWIFT pre-computes
// backups for the first MaxDepth links of each path (§5 encodes up to
// AS-path position 5, i.e. link depths 1..4 beyond the local hop).
const MaxDepth = 5

// Plan holds the per-prefix backup table: Backups[p][d-1] is the backup
// next-hop AS protecting the link at depth d of p's primary path (0 =
// no viable backup).
type Plan struct {
	LocalAS int
	Depth   int
	Backups map[netaddr.Prefix][]uint32
	// Assigned counts prefixes assigned to each backup next-hop at any
	// depth, for capacity accounting and the load report.
	Assigned map[uint32]int
}

// BackupFor returns the backup next-hop protecting depth d (1-based) of
// p's path, or 0 when none exists.
func (pl *Plan) BackupFor(p netaddr.Prefix, d int) uint32 {
	bs := pl.Backups[p]
	if d < 1 || d > len(bs) {
		return 0
	}
	return bs[d-1]
}

// BackupsOf returns p's whole backup row (index d-1 protects depth d) —
// one map lookup instead of one per depth for tag-assembly consumers.
// The slice is owned by the plan.
func (pl *Plan) BackupsOf(p netaddr.Prefix) []uint32 { return pl.Backups[p] }

// computeState carries one Compute invocation's working set: the
// ordered neighbor list, their tables, and the per-(neighbor, depth)
// viability caches the per-prefix loop hits instead of re-walking alt
// paths.
type computeState struct {
	localAS   uint32
	pol       *Policy
	plan      *Plan
	neighbors []uint32
	alts      []*rib.Table
	// assigned counts assignments per neighbor index — the capacity
	// gauge, folded into plan.Assigned once at the end instead of a map
	// update per (prefix, depth) hit.
	assigned []int
	// handles[i] is the current prefix's interned alt path per neighbor,
	// resolved once per prefix instead of once per (depth, neighbor).
	handles []rib.PathHandle
	// verdicts[i*MaxDepth+(d-1)] caches the last (alt PathID → tier
	// verdicts) seen for neighbor i at depth d. Alternate tables group
	// prefixes over few unique paths and consecutive prefixes correlate,
	// so this single-entry cache absorbs almost every probe; a miss just
	// re-walks the alt path (the pre-cache cost).
	verdicts []tierVerdict
	// links is the per-group positional decomposition scratch.
	links []topology.Link
	// arena backs every backup row, one allocation per Compute.
	arena []uint32
}

// tierVerdict is one cached viability answer: for alt path pid against
// one protected link, whether it avoids both endpoints (tier 1) and
// whether it avoids the link itself (tier 2).
type tierVerdict struct {
	pid          rib.PathID
	link         topology.Link
	valid        bool
	endpointFree bool
	linkFree     bool
}

// Compute builds the plan for the primary session's RIB given the
// alternative routes offered by every neighbor session.
//
// primary is the session whose routes the router currently uses (the
// paths packets follow). alternates maps each neighbor AS — including
// remote next-hops learned over iBGP tunnels (§3.2) — to the routes it
// advertises. depth limits how many links per path are protected.
//
// The pass runs once per unique primary path group (the positional link
// decomposition is a path property), resolves each prefix's alternate
// paths once, and answers the per-(depth, neighbor) viability question
// from a cache keyed by the alternate's interned PathID — re-walking an
// alternate path only when a group actually switches paths. Prefixes
// are visited in sorted order only when a capacity policy makes
// admission order-dependent; without one the outcome is
// order-independent and the sort is skipped.
func Compute(localAS uint32, primary *rib.Table, alternates map[uint32]*rib.Table, pol *Policy, depth int) *Plan {
	if depth <= 0 || depth > MaxDepth {
		depth = MaxDepth
	}
	st := &computeState{
		localAS: localAS,
		pol:     pol,
		plan: &Plan{
			LocalAS:  int(localAS),
			Depth:    depth,
			Backups:  make(map[netaddr.Prefix][]uint32, primary.Len()),
			Assigned: make(map[uint32]int),
		},
		arena: make([]uint32, 0, primary.Len()*depth),
	}

	// Deterministic neighbor ordering: by cost, then ASN.
	for n := range alternates {
		st.neighbors = append(st.neighbors, n)
	}
	sort.Slice(st.neighbors, func(i, j int) bool {
		ci, cj := pol.cost(st.neighbors[i]), pol.cost(st.neighbors[j])
		if ci != cj {
			return ci < cj
		}
		return st.neighbors[i] < st.neighbors[j]
	})
	for _, n := range st.neighbors {
		st.alts = append(st.alts, alternates[n])
	}
	st.handles = make([]rib.PathHandle, len(st.neighbors))
	st.verdicts = make([]tierVerdict, len(st.neighbors)*MaxDepth)
	st.assigned = make([]int, len(st.neighbors))
	defer func() {
		for i, n := range st.neighbors {
			if st.assigned[i] > 0 {
				st.plan.Assigned[n] = st.assigned[i]
			}
		}
	}()

	if pol != nil && len(pol.Capacity) > 0 {
		// Capacity admission is first-come-first-served; visit prefixes
		// in sorted order so the plan is deterministic.
		prefixes := make([]netaddr.Prefix, 0, primary.Len())
		primary.ForEach(func(p netaddr.Prefix, _ []uint32) {
			prefixes = append(prefixes, p)
		})
		netaddr.Sort(prefixes)
		for _, p := range prefixes {
			h, ok := primary.HandleOf(p)
			if !ok {
				continue
			}
			st.links = rib.PathLinks(st.links[:0], localAS, h.Path())
			st.planPrefix(p, h.Path(), depth)
		}
		return st.plan
	}
	primary.ForEachPath(func(path []uint32, prefixes []netaddr.Prefix) {
		st.links = rib.PathLinks(st.links[:0], localAS, path)
		for _, p := range prefixes {
			st.planPrefix(p, path, depth)
		}
	})
	return st.plan
}

// planPrefix fills one prefix's backup row from the current group's
// link decomposition in st.links.
func (st *computeState) planPrefix(p netaddr.Prefix, path []uint32, depth int) {
	n := depth
	if len(st.links) < n {
		n = len(st.links)
	}
	primaryNH := uint32(0)
	if len(path) > 0 {
		primaryNH = path[0]
	}
	// Resolve the prefix's alternate paths once across all depths.
	for i, alt := range st.alts {
		st.handles[i] = rib.PathHandle{}
		if alt != nil {
			if h, ok := alt.HandleOf(p); ok {
				st.handles[i] = h
			}
		}
	}
	start := len(st.arena)
	st.arena = st.arena[:start+n]
	backups := st.arena[start : start+n : start+n]
	for d := 1; d <= n; d++ {
		backups[d-1] = st.pickBackup(st.links[d-1], d, primaryNH)
	}
	st.plan.Backups[p] = backups
}

// pickBackup selects the most preferred viable backup neighbor for one
// (prefix, protected link) pair. Selection is tiered:
//
//  1. paths avoiding BOTH endpoints of the protected link (§4.2's
//     footnote — safe even when the inference only localized the
//     failure to a set of links sharing an endpoint), then
//  2. paths merely avoiding the link itself.
//
// The fallback tier is required by the paper's own running example: the
// backup for (5,6) is AS 3's path (3,6,8), which necessarily crosses
// endpoint 6 because AS 6 is the only transit towards its customers.
// Endpoint avoidance is impossible for prefixes whose every path goes
// through an endpoint, and rerouting onto a link-free path is still no
// worse than the blackhole it replaces (§3.3, Assumption 2 discussion).
func (st *computeState) pickBackup(protected topology.Link, d int, primaryNH uint32) uint32 {
	for _, requireEndpointFree := range [2]bool{true, false} {
		for i, n := range st.neighbors {
			if n == primaryNH || st.pol.forbidden(n) {
				continue
			}
			if c := st.pol.capacity(n); c > 0 && st.assigned[i] >= c {
				continue
			}
			h := st.handles[i]
			if !h.Valid() {
				continue
			}
			v := &st.verdicts[i*MaxDepth+(d-1)]
			if !v.valid || v.pid != h.ID() || v.link != protected {
				path := h.Path()
				*v = tierVerdict{
					pid:          h.ID(),
					link:         protected,
					valid:        true,
					endpointFree: pathAvoids(path, protected),
					linkFree:     pathAvoidsLink(path, st.localAS, protected),
				}
			}
			ok := v.linkFree
			if requireEndpointFree {
				ok = v.endpointFree
			}
			if ok {
				st.assigned[i]++
				return n
			}
		}
	}
	return 0
}

// pathAvoids reports whether path visits neither endpoint of l (§4.2
// footnote: avoiding both endpoints keeps the backup safe under
// aggregated and AS-level inferences).
func pathAvoids(path []uint32, l topology.Link) bool {
	for _, as := range path {
		if as == l.A || as == l.B {
			return false
		}
	}
	return true
}

// pathAvoidsLink reports whether the full forwarding path (local AS
// prepended) never crosses link l itself.
func pathAvoidsLink(path []uint32, localAS uint32, l topology.Link) bool {
	prev := localAS
	for _, as := range path {
		if as == prev {
			continue
		}
		if topology.MakeLink(prev, as) == l {
			return false
		}
		prev = as
	}
	return true
}

// CoverageReport summarizes how protectable a RIB is: for each depth,
// the fraction of prefixes with a viable backup. The paper's claim that
// deeper links matter less (§5) shows up as rising coverage gaps with
// depth that affect fewer prefixes.
type CoverageReport struct {
	Depth     int
	Protected []int // Protected[d-1] = prefixes with a backup at depth d
	Total     int
}

// Coverage computes the report for a plan.
func (pl *Plan) Coverage() CoverageReport {
	rep := CoverageReport{Depth: pl.Depth, Protected: make([]int, pl.Depth)}
	for _, bs := range pl.Backups {
		rep.Total++
		for d, b := range bs {
			if b != 0 {
				rep.Protected[d]++
			}
		}
	}
	return rep
}
