// Package fusion implements fleet-level evidence fusion: it merges the
// per-peer Fit-Score evidence of a controller.Fleet's engines into
// shared per-link verdicts, so a failure corroborated by k vantages
// triggers fast reroute on *all* fleet peers earlier — and with fewer
// wrong-link activations — than any single session's inference.
//
// The paper's §7 deployment monitors many BGP sessions of one router;
// each session sees the same remote failure through a different RIB and
// a different propagation delay. Per-peer SWIFT makes every engine wait
// for its own burst to accumulate. The Aggregator instead accumulates
// each peer's latest (link set, Fit Score, withdrawal count, stream
// clock) proposal — a peer's newer inference supersedes its older one,
// exactly as the engine's own reroute does — plus burst lifecycle
// state, and combines them per link:
//
//   - strong-proposal path: one proposal whose Fit Score reaches
//     FuseThreshold while at least MinBursting peers are in-burst
//     confirms its links (the fastest vantage pre-triggers the rest);
//   - k-of-n path: K distinct peers whose current proposals agree on a
//     link confirm it when the noisy-OR fused score 1-∏(1-FSᵢ) reaches
//     FuseThreshold (weak agreeing vantages corroborate each other).
//
// Confirmed links form the fleet verdict. Its predicted prefix set is
// deliberately conservative: the union of the supporters' *withdrawn*
// prefixes — control-plane facts observed at some vantage — rather than
// any single RIB's speculative coverage, so pre-triggering a lagging
// peer does not inflate its false-positive rate.
//
// The same evidence drives a conflict veto: while corroboration is
// possible (≥ MinBursting peers in-burst), a peer's own proposal is
// deferred when another in-burst peer's current evidence names a
// disjoint link set with a materially higher Fit Score. Early wrong-link
// inferences (a burst's first triggers routinely rank a downstream link
// above the true failure) are suppressed instead of installed. When no
// corroboration context exists — a single bursting peer, a single-peer
// deployment — the gate stands aside and fused behavior degrades to
// per-peer SWIFT exactly; fusion never slows the only vantage that
// sees the failure.
//
// All state transitions are pure functions of the evidence stream in
// stream-clock order, so a deterministic delivery order (the scenario
// engine's virtual clock) yields byte-identical verdicts.
package fusion

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/topology"
)

// Defaults for Config's zero values.
const (
	DefaultK              = 2
	DefaultFuseThreshold  = 0.85
	DefaultConflictMargin = 0.10
	DefaultMinBursting    = 2
	DefaultTTL            = 10 * time.Second
)

// Config tunes the combining rule. The zero value selects defaults
// calibrated against the engine's per-peer acceptance behavior: a
// verdict needs roughly the evidence one confident engine or two
// doubtful ones would carry.
type Config struct {
	// K is the distinct-peer corroboration count of the k-of-n path.
	K int
	// FuseThreshold is the (fused) Fit Score a link needs for a verdict.
	FuseThreshold float64
	// ConflictMargin is how much stronger a disjoint proposal must be to
	// veto a peer's own decision.
	ConflictMargin float64
	// MinBursting is how many peers must be concurrently in-burst before
	// the gate and the strong-proposal path engage. Below it, fused mode
	// behaves exactly like per-peer SWIFT.
	MinBursting int
	// TTL is the evidence decay horizon on the stream clock: proposals
	// older than TTL (against the newest evidence seen) stop counting.
	TTL time.Duration
	// ManualPump disables the fleet's background verdict pump; the
	// embedder calls Fleet.FusePump at its own synchronization points
	// (the scenario engine pumps once per virtual tick, keeping verdict
	// fan-out deterministic).
	ManualPump bool
	// OnVerdict, when set, fires under the aggregator lock each time a
	// link is confirmed, with its supporter count and fused score — the
	// telemetry hook. It must be fast and must not call back into the
	// aggregator or the fleet.
	OnVerdict func(link topology.Link, supporters int, fused float64)
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.FuseThreshold <= 0 {
		c.FuseThreshold = DefaultFuseThreshold
	}
	if c.ConflictMargin <= 0 {
		c.ConflictMargin = DefaultConflictMargin
	}
	if c.MinBursting <= 0 {
		c.MinBursting = DefaultMinBursting
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	return c
}

// Proposal is one engine inference offered as evidence: the links the
// peer's tracker ranked first, their Fit Score, the withdrawal count
// consumed, and the prefixes already withdrawn across those links on
// the proposing session (the verdict's conservative prediction source).
// The Peer field is filled by the peer's Gate.
type Proposal struct {
	Peer      event.PeerKey
	At        time.Duration
	Links     []topology.Link
	FS        float64
	Received  int
	Withdrawn []netaddr.Prefix
}

// Answer is the gate's ruling on a proposal. A vetoed proposal is
// recorded as evidence but the proposing engine defers its reroute: a
// disjoint, materially stronger opinion exists in the fleet (or already
// stands as a verdict), so acting on this one would likely divert the
// wrong link's prefixes.
type Answer struct {
	// Act reports whether the engine should install the reroute.
	Act bool
	// ConflictFS is the strongest disjoint evidence score that vetoed
	// the proposal (zero when Act).
	ConflictFS float64
}

// Verdict is the fleet's current externally-confirmed failed-link set.
type Verdict struct {
	// Links are the confirmed links, sorted.
	Links []topology.Link
	// Predicted is the sorted union of the supporters' withdrawn
	// prefixes — the corroborated failure set peers pre-trigger on.
	Predicted []netaddr.Prefix
	// FS is the strongest per-link fused score.
	FS float64
	// At is the stream clock at which the newest confirmed link formed.
	At time.Duration
	// Supporters is the largest per-link distinct-peer support count.
	Supporters int
	// Epoch identifies the confirmed link set; it bumps only when links
	// are added or removed, so appliers can skip no-op re-publications.
	Epoch uint64
}

// peerEvidence is one peer's current standing in the aggregator.
type peerEvidence struct {
	inBurst   bool
	at        time.Duration // newest proposal's stream clock
	fs        float64
	links     []rib.LinkID
	withdrawn []netaddr.Prefix
	received  int
}

func (pe *peerEvidence) fresh(now, ttl time.Duration) bool {
	return len(pe.links) > 0 && now-pe.at <= ttl
}

func (pe *peerEvidence) holds(id rib.LinkID) bool {
	for _, l := range pe.links {
		if l == id {
			return true
		}
	}
	return false
}

// Aggregator accumulates per-peer evidence and maintains the verdict.
// All methods are safe for concurrent use; callers must never invoke
// them while holding a lock the fleet's verdict pump could need (the
// engine's Propose runs under its peer lock, which is safe because the
// pump snapshots under the aggregator lock only and applies verdicts
// after releasing it).
type Aggregator struct {
	cfg  Config
	pool *rib.Pool

	mu       sync.Mutex
	peers    map[event.PeerKey]*peerEvidence
	bursting int
	// active is the confirmed link set; since records each link's
	// formation time on the stream clock.
	active map[rib.LinkID]time.Duration
	maxAt  time.Duration // newest evidence clock, the live pump's "now"
	epoch  uint64

	// Counters for telemetry (sampled at scrape time).
	evidenceEvents atomic.Uint64
	vetoes         atomic.Uint64
	verdictLinks   atomic.Uint64
}

// NewAggregator builds an aggregator over the fleet's shared intern
// pool — evidence and verdicts are keyed on the pool's dense LinkIDs,
// so peers proposing the same topology link agree by construction.
func NewAggregator(cfg Config, pool *rib.Pool) *Aggregator {
	if pool == nil {
		pool = rib.NewPool()
	}
	return &Aggregator{
		cfg:    cfg.withDefaults(),
		pool:   pool,
		peers:  make(map[event.PeerKey]*peerEvidence),
		active: make(map[rib.LinkID]time.Duration),
	}
}

// Config returns the aggregator's effective (defaulted) configuration.
func (a *Aggregator) Config() Config { return a.cfg }

// Gate binds a peer's identity into a proposal gate for its engine.
func (a *Aggregator) Gate(peer event.PeerKey) *Gate { return &Gate{agg: a, peer: peer} }

// Gate is one peer's handle on the aggregator — the engine-facing
// surface that stamps the peer key onto proposals.
type Gate struct {
	agg  *Aggregator
	peer event.PeerKey
}

// Propose stamps the gate's peer onto p and offers it.
func (g *Gate) Propose(p Proposal) Answer {
	p.Peer = g.peer
	return g.agg.Propose(p)
}

func (a *Aggregator) peer(key event.PeerKey) *peerEvidence {
	pe := a.peers[key]
	if pe == nil {
		pe = &peerEvidence{}
		a.peers[key] = pe
	}
	return pe
}

// BurstStart records that a peer's detector opened a burst.
func (a *Aggregator) BurstStart(key event.PeerKey, at time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pe := a.peer(key)
	if !pe.inBurst {
		pe.inBurst = true
		a.bursting++
	}
	a.clock(at)
}

// BurstEnd retracts a peer's evidence: its burst closed, BGP converged
// on that session, and its in-flight opinion no longer corroborates
// anything. Links the retraction leaves under-supported drop out of the
// verdict.
func (a *Aggregator) BurstEnd(key event.PeerKey, at time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pe := a.peers[key]
	if pe == nil {
		return
	}
	if pe.inBurst {
		pe.inBurst = false
		a.bursting--
	}
	pe.links = pe.links[:0]
	pe.withdrawn = pe.withdrawn[:0]
	pe.fs = 0
	a.clock(at)
	a.recomputeLocked(at)
}

// Retract removes a peer entirely — fleet session teardown.
func (a *Aggregator) Retract(key event.PeerKey) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pe := a.peers[key]
	if pe == nil {
		return
	}
	if pe.inBurst {
		a.bursting--
	}
	delete(a.peers, key)
	a.recomputeLocked(a.maxAt)
}

// clock advances the aggregator's newest-evidence clock.
func (a *Aggregator) clock(at time.Duration) {
	if at > a.maxAt {
		a.maxAt = at
	}
}

// Propose records one engine inference as the peer's current evidence
// (superseding its previous proposal, as the engine's own reroute
// supersedes its previous rules) and rules on whether the proposing
// engine should act on it.
func (a *Aggregator) Propose(p Proposal) Answer {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evidenceEvents.Add(1)
	pe := a.peer(p.Peer)
	pe.at = p.At
	pe.fs = p.FS
	pe.received = p.Received
	pe.links = pe.links[:0]
	for _, l := range p.Links {
		pe.links = append(pe.links, a.pool.LinkID(l))
	}
	// Copy: the engine reuses/retains the decision buffers.
	pe.withdrawn = append(pe.withdrawn[:0], p.Withdrawn...)
	a.clock(p.At)
	a.recomputeLocked(p.At)

	// The gate. Without corroboration context, per-peer behavior stands.
	if a.bursting < a.cfg.MinBursting {
		return Answer{Act: true}
	}
	// Consistent with the verdict: act.
	for _, id := range pe.links {
		if _, ok := a.active[id]; ok {
			return Answer{Act: true}
		}
	}
	// Conflict veto: a disjoint, materially stronger current opinion
	// from another in-burst peer defers this one.
	var conflict float64
	for key, other := range a.peers {
		if key == p.Peer || !other.inBurst || !other.fresh(p.At, a.cfg.TTL) {
			continue
		}
		if other.fs < p.FS+a.cfg.ConflictMargin || other.fs <= conflict {
			continue
		}
		disjoint := true
		for _, id := range pe.links {
			if other.holds(id) {
				disjoint = false
				break
			}
		}
		if disjoint {
			conflict = other.fs
		}
	}
	if conflict > 0 {
		a.vetoes.Add(1)
		return Answer{Act: false, ConflictFS: conflict}
	}
	return Answer{Act: true}
}

// recomputeLocked re-derives the confirmed link set from the current
// evidence at stream clock now. Membership is a pure function of the
// evidence (order-independent); only formation times depend on when a
// link first satisfied its condition.
func (a *Aggregator) recomputeLocked(now time.Duration) {
	changed := false
	// Confirmation needs corroboration context at all.
	seen := make(map[rib.LinkID]bool)
	if a.bursting >= a.cfg.MinBursting {
		for _, pe := range a.peers {
			if !pe.inBurst || !pe.fresh(now, a.cfg.TTL) {
				continue
			}
			for _, id := range pe.links {
				if seen[id] {
					continue
				}
				seen[id] = true
				if !a.confirmedLocked(id, now) {
					continue
				}
				if _, ok := a.active[id]; !ok {
					a.active[id] = now
					changed = true
					if a.cfg.OnVerdict != nil {
						supporters, fused, _ := a.supportLocked(id, now)
						a.cfg.OnVerdict(a.pool.LinkAt(id), supporters, fused)
					}
				}
			}
		}
	}
	// Drop links whose support evaporated (burst ends, retraction,
	// supersession, decay).
	for id := range a.active {
		if a.bursting >= a.cfg.MinBursting && seen[id] && a.confirmedLocked(id, now) {
			continue
		}
		delete(a.active, id)
		changed = true
	}
	if changed {
		a.epoch++
		a.verdictLinks.Store(uint64(len(a.active)))
	}
}

// confirmedLocked decides one link's verdict membership. The k-of-n
// path stands on its own: K distinct vantages agreeing is corroboration
// no single opinion outranks. The strong-proposal path is a
// single-vantage shortcut, so it must be unchallenged — any fresh
// in-burst peer holding evidence for other links with a strictly higher
// score blocks it (early in a burst the wrong downstream link routinely
// crosses the threshold first; the challenger's link is the one the
// fleet should wait for).
func (a *Aggregator) confirmedLocked(id rib.LinkID, now time.Duration) bool {
	supporters, fused, maxFS := a.supportLocked(id, now)
	if supporters >= a.cfg.K && fused >= a.cfg.FuseThreshold {
		return true
	}
	if maxFS < a.cfg.FuseThreshold {
		return false
	}
	for _, pe := range a.peers {
		if !pe.inBurst || !pe.fresh(now, a.cfg.TTL) || pe.holds(id) {
			continue
		}
		if pe.fs > maxFS {
			return false
		}
	}
	return true
}

// supportLocked folds the fresh in-burst evidence for one link:
// distinct supporters, the noisy-OR fused score and the strongest
// single score.
func (a *Aggregator) supportLocked(id rib.LinkID, now time.Duration) (supporters int, fused, maxFS float64) {
	miss := 1.0
	for _, pe := range a.peers {
		if !pe.inBurst || !pe.fresh(now, a.cfg.TTL) || !pe.holds(id) {
			continue
		}
		supporters++
		miss *= 1 - pe.fs
		if pe.fs > maxFS {
			maxFS = pe.fs
		}
	}
	return supporters, 1 - miss, maxFS
}

// Snapshot re-evaluates decay at stream clock now and returns the
// current verdict. ok is false when no link is confirmed; the returned
// epoch still identifies the (empty) state.
func (a *Aggregator) Snapshot(now time.Duration) (v Verdict, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if now <= 0 {
		now = a.maxAt
	}
	a.clock(now)
	a.recomputeLocked(now)
	v.Epoch = a.epoch
	if len(a.active) == 0 {
		return v, false
	}
	v.Links = make([]topology.Link, 0, len(a.active))
	for id, since := range a.active {
		v.Links = append(v.Links, a.pool.LinkAt(id))
		if since > v.At {
			v.At = since
		}
		supporters, fused, maxFS := a.supportLocked(id, now)
		if fused < maxFS {
			fused = maxFS
		}
		if fused > v.FS {
			v.FS = fused
		}
		if supporters > v.Supporters {
			v.Supporters = supporters
		}
	}
	sort.Slice(v.Links, func(i, j int) bool {
		if v.Links[i].A != v.Links[j].A {
			return v.Links[i].A < v.Links[j].A
		}
		return v.Links[i].B < v.Links[j].B
	})
	// The conservative prediction: prefixes some supporter has already
	// seen withdrawn across a confirmed link.
	for _, pe := range a.peers {
		if !pe.inBurst || !pe.fresh(now, a.cfg.TTL) {
			continue
		}
		holds := false
		for id := range a.active {
			if pe.holds(id) {
				holds = true
				break
			}
		}
		if holds {
			v.Predicted = append(v.Predicted, pe.withdrawn...)
		}
	}
	netaddr.Sort(v.Predicted)
	v.Predicted = netaddr.DedupSorted(v.Predicted)
	return v, true
}

// Stats is a telemetry snapshot of the aggregator.
type Stats struct {
	// Peers is the tracked peer count, Bursting how many are in-burst.
	Peers    int
	Bursting int
	// EvidenceEvents counts proposals recorded; Vetoes how many the
	// conflict gate deferred.
	EvidenceEvents uint64
	Vetoes         uint64
	// VerdictLinks is the currently confirmed link count; Epoch the
	// verdict identity.
	VerdictLinks int
	Epoch        uint64
}

// Stats snapshots the aggregator's counters.
func (a *Aggregator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Peers:          len(a.peers),
		Bursting:       a.bursting,
		EvidenceEvents: a.evidenceEvents.Load(),
		Vetoes:         a.vetoes.Load(),
		VerdictLinks:   len(a.active),
		Epoch:          a.epoch,
	}
}
