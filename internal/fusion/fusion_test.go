package fusion

import (
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/topology"
)

var (
	peerA = event.PeerKey{AS: 65001, BGPID: 1}
	peerB = event.PeerKey{AS: 65002, BGPID: 2}
	peerC = event.PeerKey{AS: 65003, BGPID: 3}

	linkX = topology.Link{A: 5, B: 6}
	linkY = topology.Link{A: 6, B: 8}
)

func newTestAgg(cfg Config) *Aggregator {
	return NewAggregator(cfg, rib.NewPool())
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func prop(peer event.PeerKey, at time.Duration, fs float64, links ...topology.Link) Proposal {
	return Proposal{Peer: peer, At: at, Links: links, FS: fs, Received: 10}
}

func TestGateOffBelowMinBursting(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	// One bursting peer: no corroboration context, everything acts and
	// nothing confirms — per-peer SWIFT exactly.
	if ans := a.Propose(prop(peerA, ms(12), 0.99, linkX)); !ans.Act {
		t.Fatalf("single-burst proposal vetoed: %+v", ans)
	}
	if _, ok := a.Snapshot(ms(12)); ok {
		t.Fatal("verdict formed with a single bursting peer")
	}
}

func TestStrongProposalPath(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	if ans := a.Propose(prop(peerA, ms(30), 0.90, linkX)); !ans.Act {
		t.Fatalf("strong proposal vetoed: %+v", ans)
	}
	v, ok := a.Snapshot(ms(30))
	if !ok {
		t.Fatal("strong proposal with 2 bursting peers should confirm")
	}
	if len(v.Links) != 1 || v.Links[0] != linkX {
		t.Fatalf("verdict links = %v, want [%v]", v.Links, linkX)
	}
	if v.Supporters != 1 {
		t.Fatalf("supporters = %d, want 1", v.Supporters)
	}
}

func TestKOfNCorroboration(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	// Each alone is below FuseThreshold (0.85); noisy-OR of two 0.7s is
	// 1 - 0.3*0.3 = 0.91 >= 0.85 with K=2 supporters.
	a.Propose(prop(peerA, ms(30), 0.70, linkX))
	if _, ok := a.Snapshot(ms(30)); ok {
		t.Fatal("one weak proposal should not confirm")
	}
	a.Propose(prop(peerB, ms(35), 0.70, linkX))
	v, ok := a.Snapshot(ms(35))
	if !ok {
		t.Fatal("two corroborating weak proposals should confirm")
	}
	if v.Supporters != 2 {
		t.Fatalf("supporters = %d, want 2", v.Supporters)
	}
	if len(v.Links) != 1 || v.Links[0] != linkX {
		t.Fatalf("verdict links = %v, want [%v]", v.Links, linkX)
	}
}

func TestKOfNNeedsFusedThreshold(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	// Noisy-OR of two 0.5s is 0.75 < 0.85: agreement without enough
	// combined confidence stays unconfirmed.
	a.Propose(prop(peerA, ms(30), 0.50, linkX))
	a.Propose(prop(peerB, ms(35), 0.50, linkX))
	if _, ok := a.Snapshot(ms(35)); ok {
		t.Fatal("two 0.5-FS proposals should not reach the fused threshold")
	}
}

func TestConflictVeto(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.80, linkX))
	// Disjoint and more than ConflictMargin weaker: vetoed.
	ans := a.Propose(prop(peerB, ms(35), 0.60, linkY))
	if ans.Act {
		t.Fatal("disjoint weaker proposal should be vetoed")
	}
	if ans.ConflictFS != 0.80 {
		t.Fatalf("ConflictFS = %v, want 0.80", ans.ConflictFS)
	}
	// Agreeing with the stronger opinion: acts.
	if ans := a.Propose(prop(peerB, ms(40), 0.60, linkX)); !ans.Act {
		t.Fatalf("verdict-consistent proposal vetoed: %+v", ans)
	}
	// Disjoint but within the margin: acts (no material conflict).
	a.Propose(prop(peerA, ms(45), 0.65, linkX))
	if ans := a.Propose(prop(peerB, ms(50), 0.60, linkY)); !ans.Act {
		t.Fatalf("within-margin disjoint proposal vetoed: %+v", ans)
	}
}

func TestVerdictConsistentAlwaysActs(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.BurstStart(peerC, ms(25))
	a.Propose(prop(peerA, ms(30), 0.90, linkX)) // confirms linkX
	// peerB proposes the confirmed link with a tiny score while peerC
	// holds strong disjoint evidence: verdict consistency wins.
	a.Propose(prop(peerC, ms(32), 0.95, linkY))
	if ans := a.Propose(prop(peerB, ms(35), 0.40, linkX)); !ans.Act {
		t.Fatalf("proposal matching the verdict vetoed: %+v", ans)
	}
}

func TestSupersession(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	// Both peers briefly agree on the wrong link, then peerA moves on.
	// The superseded opinion must stop corroborating linkY.
	a.Propose(prop(peerA, ms(30), 0.70, linkY))
	a.Propose(prop(peerA, ms(40), 0.90, linkX))
	a.Propose(prop(peerB, ms(45), 0.70, linkY))
	v, ok := a.Snapshot(ms(45))
	if !ok {
		t.Fatal("expected a verdict")
	}
	if len(v.Links) != 1 || v.Links[0] != linkX {
		t.Fatalf("verdict links = %v, want only %v (stale linkY evidence must not count)", v.Links, linkX)
	}
}

func TestBurstEndRetractsEvidence(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.70, linkX))
	a.Propose(prop(peerB, ms(35), 0.70, linkX))
	if _, ok := a.Snapshot(ms(35)); !ok {
		t.Fatal("expected a verdict before burst end")
	}
	a.BurstEnd(peerA, ms(40))
	if _, ok := a.Snapshot(ms(40)); ok {
		t.Fatal("verdict should drop when corroboration context collapses")
	}
}

func TestRetract(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.90, linkX))
	if _, ok := a.Snapshot(ms(30)); !ok {
		t.Fatal("expected a verdict")
	}
	a.Retract(peerA)
	if _, ok := a.Snapshot(ms(31)); ok {
		t.Fatal("verdict should not survive its only supporter's teardown")
	}
	st := a.Stats()
	if st.Peers != 1 || st.Bursting != 1 {
		t.Fatalf("after retract: peers=%d bursting=%d, want 1/1", st.Peers, st.Bursting)
	}
}

func TestTTLDecay(t *testing.T) {
	a := newTestAgg(Config{TTL: 100 * time.Millisecond})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.90, linkX))
	if _, ok := a.Snapshot(ms(50)); !ok {
		t.Fatal("expected a verdict within TTL")
	}
	if _, ok := a.Snapshot(ms(200)); ok {
		t.Fatal("evidence older than TTL should stop confirming")
	}
}

func TestEpochSemantics(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.90, linkX))
	v1, ok := a.Snapshot(ms(30))
	if !ok {
		t.Fatal("expected a verdict")
	}
	// Re-snapshotting an unchanged link set keeps the epoch.
	v2, _ := a.Snapshot(ms(31))
	if v2.Epoch != v1.Epoch {
		t.Fatalf("epoch moved without a link-set change: %d -> %d", v1.Epoch, v2.Epoch)
	}
	// Adding a peer's corroboration of the same link: same set, same epoch.
	a.Propose(prop(peerB, ms(35), 0.70, linkX))
	v3, _ := a.Snapshot(ms(35))
	if v3.Epoch != v1.Epoch {
		t.Fatalf("epoch moved on unchanged link set: %d -> %d", v1.Epoch, v3.Epoch)
	}
	if v3.Supporters != 2 {
		t.Fatalf("supporters = %d, want 2", v3.Supporters)
	}
	// Dropping the verdict bumps the epoch.
	a.BurstEnd(peerA, ms(40))
	a.BurstEnd(peerB, ms(41))
	v4, ok := a.Snapshot(ms(41))
	if ok {
		t.Fatal("verdict should be empty after both bursts end")
	}
	if v4.Epoch == v3.Epoch {
		t.Fatal("epoch should bump when the link set empties")
	}
}

func TestVerdictPredictedIsSupportersWithdrawnUnion(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.BurstStart(peerC, ms(25))
	p1 := netaddr.MustParsePrefix("10.0.0.0/24")
	p2 := netaddr.MustParsePrefix("10.0.1.0/24")
	p3 := netaddr.MustParsePrefix("10.9.0.0/16")
	pa := prop(peerA, ms(30), 0.90, linkX)
	pa.Withdrawn = []netaddr.Prefix{p2, p1}
	a.Propose(pa)
	pb := prop(peerB, ms(35), 0.60, linkX)
	pb.Withdrawn = []netaddr.Prefix{p1, p3}
	a.Propose(pb)
	// peerC supports a different link: its withdrawn set must not leak in.
	pc := prop(peerC, ms(36), 0.95, linkY)
	pc.Withdrawn = []netaddr.Prefix{netaddr.MustParsePrefix("172.16.0.0/12")}
	a.Propose(pc)

	v, ok := a.Snapshot(ms(36))
	if !ok {
		t.Fatal("expected a verdict")
	}
	hasX := false
	for _, l := range v.Links {
		if l == linkX {
			hasX = true
		}
	}
	if !hasX {
		t.Fatalf("verdict links = %v, want %v present", v.Links, linkX)
	}
	if v.Links[0] != linkX || len(v.Links) < 1 {
		t.Fatalf("verdict links unsorted: %v", v.Links)
	}
	// linkY is also confirmed (FS 0.95), so its supporter's withdrawn set
	// is legitimately in the union. Check the linkX supporters' prefixes
	// are present, sorted and deduped.
	want := map[netaddr.Prefix]bool{p1: true, p2: true, p3: true}
	seen := map[netaddr.Prefix]int{}
	for _, p := range v.Predicted {
		seen[p]++
	}
	for p := range want {
		if seen[p] != 1 {
			t.Fatalf("predicted %v appears %d times, want exactly 1 (set: %v)", p, seen[p], v.Predicted)
		}
	}
	for i := 1; i < len(v.Predicted); i++ {
		if v.Predicted[i-1] >= v.Predicted[i] {
			t.Fatalf("predicted not strictly sorted: %v", v.Predicted)
		}
	}
}

func TestOnVerdictHook(t *testing.T) {
	var got []int
	a := newTestAgg(Config{OnVerdict: func(_ topology.Link, supporters int, _ float64) {
		got = append(got, supporters)
	}})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.70, linkX))
	a.Propose(prop(peerB, ms(35), 0.70, linkX))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("OnVerdict fired %v, want once with 2 supporters", got)
	}
	// Confirmation is edge-triggered: further snapshots don't refire.
	a.Snapshot(ms(40))
	if len(got) != 1 {
		t.Fatalf("OnVerdict refired on unchanged verdict: %v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	a := newTestAgg(Config{})
	a.BurstStart(peerA, ms(10))
	a.BurstStart(peerB, ms(20))
	a.Propose(prop(peerA, ms(30), 0.80, linkX))
	a.Propose(prop(peerB, ms(35), 0.60, linkY)) // vetoed
	st := a.Stats()
	if st.EvidenceEvents != 2 {
		t.Fatalf("evidence events = %d, want 2", st.EvidenceEvents)
	}
	if st.Vetoes != 1 {
		t.Fatalf("vetoes = %d, want 1", st.Vetoes)
	}
	if st.Peers != 2 || st.Bursting != 2 {
		t.Fatalf("peers=%d bursting=%d, want 2/2", st.Peers, st.Bursting)
	}
}
