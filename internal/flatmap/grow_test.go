package flatmap

import (
	"math/rand"
	"testing"
)

// fillToThreshold puts keys until the map sits exactly at the 13/16
// growth threshold — the next new-key insert must grow, a replace must
// not — returning the keys stored.
func fillToThreshold(m *Map[uint64, int]) []uint64 {
	var keys []uint64
	k := uint64(1)
	for {
		limit := len(m.keys) - len(m.keys)>>2 + len(m.keys)>>4
		if len(m.keys) != 0 && m.n >= limit {
			return keys
		}
		m.Put(k, int(k))
		keys = append(keys, k)
		k++
	}
}

// TestPutReplaceNeverRehashes pins the replace-triggers-grow fix: a
// same-key Put at the growth threshold must not rehash the slab —
// replacing cannot raise the load factor, and a rehash silently
// invalidates every outstanding Ptr.
func TestPutReplaceNeverRehashes(t *testing.T) {
	var m Map[uint64, int]
	keys := fillToThreshold(&m)

	slab := len(m.keys)
	last := keys[len(keys)-1]
	p := m.Ptr(last)
	if p == nil {
		t.Fatalf("Ptr(%d) = nil for stored key", last)
	}

	// Replace every stored key at the threshold: none may grow.
	for _, k := range keys {
		m.Put(k, int(k)*2)
	}
	if len(m.keys) != slab {
		t.Fatalf("same-key Put rehashed the slab at threshold: %d → %d", slab, len(m.keys))
	}
	// The Ptr taken before the replaces must still point into the live
	// slab — write through it and read back via Get.
	*p = -7
	if v, ok := m.Get(last); !ok || v != -7 {
		t.Fatalf("Ptr invalidated by same-key Put: Get(%d) = %d,%v, want -7,true", last, v, ok)
	}

	// A genuinely new key at the threshold must still grow.
	m.Put(1<<40, 1)
	if len(m.keys) == slab {
		t.Fatalf("insert at threshold did not grow the slab (n=%d, slab=%d)", m.n, slab)
	}
	for _, k := range keys {
		want := int(k) * 2
		if k == last {
			want = -7
		}
		if v, ok := m.Get(k); !ok || v != want {
			t.Fatalf("after grow: Get(%d) = %d,%v, want %d,true", k, v, ok, want)
		}
	}
}

// TestDeleteHeavyModel is a deletion-heavy property test biased to
// exercise backward-shift compaction across the slab boundary
// (wraparound clusters) and the out-of-line zero key. Keys are drawn
// from bands that hash near the top of the table so clusters routinely
// wrap past the last slot, and deletes outnumber inserts two to one
// once the map is warm.
func TestDeleteHeavyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var m Map[uint64, int]
	ref := make(map[uint64]int)

	// Seed hot: fill well past one grow so the slab is sizable.
	for i := 0; i < 600; i++ {
		k := uint64(rng.Intn(1024))
		m.Put(k, i)
		ref[k] = i
	}

	keyFor := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return 0 // out-of-line zero entry
		case 1:
			// Keys whose hash lands in the last few slots of the current
			// slab, so their probe chains wrap around.
			mask := m.mask
			if mask == 0 {
				return uint64(rng.Intn(64))
			}
			for {
				k := uint64(rng.Int63())
				if k != 0 && (k*0x9e3779b97f4a7c15)>>32&mask >= mask-3 {
					return k
				}
			}
		default:
			return uint64(rng.Intn(1024))
		}
	}

	for op := 0; op < 150000; op++ {
		k := keyFor()
		switch rng.Intn(5) {
		case 0, 1: // one part insert...
			v := rng.Int()
			m.Put(k, v)
			ref[k] = v
		default: // ...two parts delete, one part probe
			if rng.Intn(3) == 0 {
				v, ok := m.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("op %d: Get(%d) = %d,%v, want %d,%v", op, k, v, ok, rv, rok)
				}
			} else {
				got := m.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
				}
				delete(ref, k)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, want %d", op, m.Len(), len(ref))
		}
	}
	// Full sweep: every surviving key readable, none extra.
	for k, rv := range ref {
		if v, ok := m.Get(k); !ok || v != rv {
			t.Fatalf("sweep: Get(%d) = %d,%v, want %d,true", k, v, ok, rv)
		}
	}
	n := 0
	m.ForEach(func(k uint64, v int) {
		if rv, ok := ref[k]; !ok || rv != v {
			t.Fatalf("ForEach visited %d=%d, want %d,%v", k, v, rv, ok)
		}
		n++
	})
	if n != len(ref) {
		t.Fatalf("ForEach visited %d entries, want %d", n, len(ref))
	}
}
