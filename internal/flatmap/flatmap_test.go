package flatmap

import (
	"math/rand"
	"testing"
)

func TestZeroKeyOutOfLine(t *testing.T) {
	var m Map[uint64, string]
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map reports zero key")
	}
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q,%v, want zero,true", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
	if p := m.Ptr(0); p == nil || *p != "zero" {
		t.Fatal("Ptr(0) missing")
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) reported absent")
	}
	if m.Delete(0) {
		t.Fatal("second Delete(0) reported present")
	}
	if m.Len() != 0 {
		t.Fatalf("Len() = %d after delete, want 0", m.Len())
	}
}

func TestPutGetDelete(t *testing.T) {
	var m Map[uint64, int]
	for i := uint64(1); i <= 100; i++ {
		m.Put(i, int(i*10))
	}
	if m.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", m.Len())
	}
	m.Put(50, 999) // replace
	if v, _ := m.Get(50); v != 999 {
		t.Fatalf("Get(50) = %d after replace, want 999", v)
	}
	if p := m.Ptr(51); p == nil {
		t.Fatal("Ptr(51) = nil")
	} else {
		*p = -1
	}
	if v, _ := m.Get(51); v != -1 {
		t.Fatalf("Get(51) = %d after Ptr write, want -1", v)
	}
	for i := uint64(1); i <= 100; i += 2 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := m.Get(i)
		if i%2 == 1 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 0 {
			want := int(i * 10)
			if i == 50 {
				want = 999
			}
			if !ok || (v != want && i != 51) {
				t.Fatalf("Get(%d) = %d,%v, want %d,true", i, v, ok, want)
			}
		}
	}
}

// TestModel cross-checks random operations against a builtin map —
// the backward-shift deletion is the part worth hammering, since a
// wrong move condition silently breaks later probes.
func TestModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Map[uint64, int]
	ref := make(map[uint64]int)
	// Keys drawn from a small range force long shared probe chains.
	for op := 0; op < 200000; op++ {
		k := uint64(rng.Intn(512)) // includes 0
		switch rng.Intn(3) {
		case 0:
			v := rng.Int()
			m.Put(k, v)
			ref[k] = v
		case 1:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 2:
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v, want %d,%v", op, k, v, ok, rv, rok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, want %d", op, m.Len(), len(ref))
		}
	}
	m.ForEach(func(k uint64, v int) {
		if rv, ok := ref[k]; !ok || rv != v {
			t.Fatalf("ForEach visited %d=%d, want %d,%v", k, v, rv, ok)
		}
		delete(ref, k)
	})
	if len(ref) != 0 {
		t.Fatalf("ForEach missed %d entries", len(ref))
	}
}

func TestCloneIndependence(t *testing.T) {
	var m Map[uint64, int]
	for i := uint64(0); i < 50; i++ {
		m.Put(i, int(i))
	}
	c := m.Clone()
	c.Put(7, 700)
	c.Delete(8)
	if v, _ := m.Get(7); v != 7 {
		t.Fatalf("clone write leaked into original: Get(7) = %d", v)
	}
	if _, ok := m.Get(8); !ok {
		t.Fatal("clone delete leaked into original")
	}
	if v, _ := c.Get(7); v != 700 {
		t.Fatalf("clone Get(7) = %d, want 700", v)
	}
}

func TestClearKeepsSlab(t *testing.T) {
	var m Map[uint64, int]
	for i := uint64(0); i < 100; i++ {
		m.Put(i, int(i))
	}
	cap0 := len(m.keys)
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len() = %d after Clear, want 0", m.Len())
	}
	if len(m.keys) != cap0 {
		t.Fatalf("Clear dropped the slab: %d → %d", cap0, len(m.keys))
	}
	m.Put(3, 33)
	if v, ok := m.Get(3); !ok || v != 33 {
		t.Fatal("map unusable after Clear")
	}
}

func TestReserve(t *testing.T) {
	var m Map[uint64, int]
	m.Reserve(1000)
	slab := len(m.keys)
	for i := uint64(1); i <= 1000; i++ {
		m.Put(i, int(i))
	}
	if len(m.keys) != slab {
		t.Fatalf("rehash despite Reserve: slab %d → %d", slab, len(m.keys))
	}
}
