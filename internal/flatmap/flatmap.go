// Package flatmap provides an open-addressing hash map specialized for
// the repo's 64-bit value-type keys (netaddr.Prefix, dense ids). The
// RIB hot path spends a third of a burst cycle in generic map probes:
// announce-replace does four and a withdrawal three, each paying the
// runtime's hash interface and group machinery. A flat linear-probe
// table with an inlined multiply hash does the same lookups in a few
// nanoseconds, keeps entries in one cache-friendly slab, and — because
// the key is constrained to an integer kind — needs no per-key
// hashing setup at all.
//
// Deletions use backward-shift compaction (no tombstones), so probe
// chains never degrade under the withdraw/re-announce churn of a
// routing burst. The zero key is stored out of line: netaddr's
// Invalid/default-route prefix is the uint64 zero and must remain a
// legal key, so slots use key==0 as the empty marker and a dedicated
// zero-entry carries that one key.
//
// Maps are not concurrency-safe; every owner here confines one map to
// one goroutine (or its own lock), exactly like the Go maps they
// replace.
package flatmap

// Uint64 is the key constraint: any 64-bit integer kind.
type Uint64 interface{ ~uint64 }

// Map is a flat hash map from K to V. The zero value is an empty map
// ready for use (it allocates its slab on first Put).
type Map[K Uint64, V any] struct {
	keys []K // key==0 marks an empty slot
	vals []V
	mask uint64
	n    int // live entries, excluding the zero key

	zeroSet bool // the out-of-line entry for key 0
	zeroVal V
}

const minCap = 16

// hash is a Fibonacci multiply; the high bits feed the index, so
// clustered key ranges (dense prefixes, sequential ids) spread evenly.
func (m *Map[K, V]) hash(k K) uint64 {
	return (uint64(k) * 0x9e3779b97f4a7c15) >> 32 & m.mask
}

// Len returns the number of stored entries.
func (m *Map[K, V]) Len() int {
	if m.zeroSet {
		return m.n + 1
	}
	return m.n
}

// Get returns the value stored for k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	if k == 0 {
		return m.zeroVal, m.zeroSet
	}
	if m.n == 0 {
		var zero V
		return zero, false
	}
	i := m.hash(k)
	for {
		kk := m.keys[i]
		if kk == k {
			return m.vals[i], true
		}
		if kk == 0 {
			var zero V
			return zero, false
		}
		i = (i + 1) & m.mask
	}
}

// Ptr returns a pointer to k's stored value for in-place mutation, or
// nil when absent. The pointer is invalidated by any Put, Delete,
// Clear or Reserve.
func (m *Map[K, V]) Ptr(k K) *V {
	if k == 0 {
		if m.zeroSet {
			return &m.zeroVal
		}
		return nil
	}
	if m.n == 0 {
		return nil
	}
	i := m.hash(k)
	for {
		kk := m.keys[i]
		if kk == k {
			return &m.vals[i]
		}
		if kk == 0 {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// Put stores v for k, replacing any previous value.
func (m *Map[K, V]) Put(k K, v V) {
	if k == 0 {
		m.zeroSet, m.zeroVal = true, v
		return
	}
	// Probe first: replacing an existing key must never rehash, both
	// because it cannot raise the load factor and because callers hold
	// Ptr references that a rehash would silently invalidate.
	if len(m.keys) != 0 {
		i := m.hash(k)
		for {
			kk := m.keys[i]
			if kk == k {
				m.vals[i] = v
				return
			}
			if kk == 0 {
				// Grow at 13/16 (~0.8) load; linear probing stays short
				// well past that with a multiply hash, and the slab is
				// half the footprint of a lower factor. Only a genuine
				// insert moves the load, so only this path checks.
				if m.n < len(m.keys)-len(m.keys)>>2+len(m.keys)>>4 {
					m.keys[i] = k
					m.vals[i] = v
					m.n++
					return
				}
				break
			}
			i = (i + 1) & m.mask
		}
	}
	m.grow()
	i := m.hash(k)
	for m.keys[i] != 0 {
		i = (i + 1) & m.mask
	}
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

// Delete removes k, reporting whether it was present.
func (m *Map[K, V]) Delete(k K) bool {
	if k == 0 {
		ok := m.zeroSet
		m.zeroSet = false
		var zero V
		m.zeroVal = zero
		return ok
	}
	if m.n == 0 {
		return false
	}
	i := m.hash(k)
	for {
		kk := m.keys[i]
		if kk == 0 {
			return false
		}
		if kk == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Backward-shift: walk the cluster after i, moving back any entry
	// whose home slot precedes (or is) the hole; stop at the first
	// empty slot. Probe chains stay exact with no tombstones.
	var zero V
	j := i
	for {
		j = (j + 1) & m.mask
		kk := m.keys[j]
		if kk == 0 {
			break
		}
		h := m.hash(kk)
		// kk may shift into the hole at i only if its home h does not
		// sit inside the (i, j] arc — i.e. the hole is on kk's probe
		// path. Circular comparison via distances from h.
		if (j-h)&m.mask >= (i-h)&m.mask {
			m.keys[i] = kk
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
	m.vals[i] = zero
	m.n--
	return true
}

// Clear removes every entry, keeping the slab for reuse.
func (m *Map[K, V]) Clear() {
	clear(m.keys)
	clear(m.vals)
	m.n = 0
	m.zeroSet = false
	var zero V
	m.zeroVal = zero
}

// ForEach calls fn for every entry in unspecified order. fn must not
// mutate the map.
func (m *Map[K, V]) ForEach(fn func(k K, v V)) {
	if m.zeroSet {
		fn(0, m.zeroVal)
	}
	if m.n == 0 {
		return
	}
	for i, k := range m.keys {
		if k != 0 {
			fn(k, m.vals[i])
		}
	}
}

// Clone returns a deep copy of the map.
func (m *Map[K, V]) Clone() Map[K, V] {
	out := *m
	out.keys = append([]K(nil), m.keys...)
	out.vals = append([]V(nil), m.vals...)
	return out
}

// Reserve grows the slab so n entries fit without rehashing.
func (m *Map[K, V]) Reserve(n int) {
	need := minCap
	for need-need>>2+need>>4 <= n {
		need <<= 1
	}
	if need > len(m.keys) {
		m.rehash(need)
	}
}

func (m *Map[K, V]) grow() {
	n := len(m.keys) * 2
	if n < minCap {
		n = minCap
	}
	m.rehash(n)
}

func (m *Map[K, V]) rehash(n int) {
	oldK, oldV := m.keys, m.vals
	m.keys = make([]K, n)
	m.vals = make([]V, n)
	m.mask = uint64(n - 1)
	m.n = 0
	for i, k := range oldK {
		if k != 0 {
			// Insert without load checks: the new slab fits by
			// construction.
			j := m.hash(k)
			for m.keys[j] != 0 {
				j = (j + 1) & m.mask
			}
			m.keys[j] = k
			m.vals[j] = oldV[i]
			m.n++
		}
	}
}
