package bgpsim

import (
	"errors"
	"time"

	"swift/internal/event"
)

// BurstSource replays one or more simulated bursts as the shared event
// stream — the synthetic counterpart of a live BMP feed or an MRT
// archive, so evaluation workloads drive an Engine or a Fleet through
// exactly the pipeline a real deployment uses.
type BurstSource struct {
	// Bursts are replayed in order, each shifted by Spacing from the
	// previous burst's end.
	Bursts []*Burst
	// Spacing separates consecutive bursts on the stream clock
	// (default one hour — far past any burst-detection window, so each
	// burst is detected independently).
	Spacing time.Duration
	// Peer attributes the emitted events (zero is fine for
	// single-session sinks).
	Peer event.PeerKey
	// Peers, when non-empty, switches the source to multi-peer
	// interleaved replay (Peer is then ignored): bursts are assigned
	// round-robin across the peers, each wave of len(Peers) bursts
	// shares one timeline, and the waves' events are merged by
	// timestamp into mixed-peer batches — the event interleaving a
	// fleet sees from concurrently-bursting sessions, rather than one
	// synthetic peer's serial stream. Per-peer relative order is
	// preserved; each peer gets its own closing tick.
	Peers []event.PeerKey
	// BatchEvents caps how many events one batch carries (default 512).
	BatchEvents int
	// FinalTick, when positive, emits one closing tick this far past
	// the last event so the sink closes any burst still open (default
	// one minute; set negative to suppress).
	FinalTick time.Duration

	// Events counts the per-prefix events emitted by the last Run.
	Events int
}

var _ event.Source = (*BurstSource)(nil)

func (s *BurstSource) batchEvents() int {
	if s.BatchEvents <= 0 {
		return 512
	}
	return s.BatchEvents
}

func (s *BurstSource) spacing() time.Duration {
	if s.Spacing <= 0 {
		return time.Hour
	}
	return s.Spacing
}

// Run pushes every burst's withdrawals and announcements into sink as
// ordered event batches. With Peers set, bursts replay concurrently in
// waves across the peers (see Peers).
func (s *BurstSource) Run(sink event.Sink) error {
	if len(s.Bursts) == 0 {
		return errors.New("bgpsim: BurstSource has no bursts")
	}
	if len(s.Peers) > 0 {
		return s.runMultiPeer(sink)
	}
	s.Events = 0
	batch := make(event.Batch, 0, s.batchEvents())
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		b := batch
		batch = make(event.Batch, 0, cap(b))
		return sink.Apply(b)
	}
	var base, last time.Duration
	for i, b := range s.Bursts {
		if i > 0 {
			base = last + s.spacing()
		}
		for _, ev := range b.Events {
			at := base + ev.At
			if ev.Kind == KindWithdraw {
				batch = append(batch, event.Withdraw(at, ev.Prefix).WithPeer(s.Peer))
			} else {
				batch = append(batch, event.Announce(at, ev.Prefix, ev.Path).WithPeer(s.Peer))
			}
			s.Events++
			last = at
			if len(batch) >= s.batchEvents() {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	tick := s.FinalTick
	if tick == 0 {
		tick = time.Minute
	}
	if tick > 0 {
		return sink.Apply(event.Batch{event.Tick(last + tick).WithPeer(s.Peer)})
	}
	return nil
}

// runMultiPeer replays bursts round-robin across s.Peers: every wave of
// len(Peers) bursts shares one base offset, and the wave's per-peer
// streams are k-way merged by timestamp (ties broken by peer position)
// into mixed-peer batches.
func (s *BurstSource) runMultiPeer(sink event.Sink) error {
	s.Events = 0
	batch := make(event.Batch, 0, s.batchEvents())
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		b := batch
		batch = make(event.Batch, 0, cap(b))
		return sink.Apply(b)
	}
	var base, last time.Duration
	for wave := 0; wave*len(s.Peers) < len(s.Bursts); wave++ {
		if wave > 0 {
			base = last + s.spacing()
		}
		bursts := s.Bursts[wave*len(s.Peers):]
		if len(bursts) > len(s.Peers) {
			bursts = bursts[:len(s.Peers)]
		}
		// K-way merge of the wave's streams by event timestamp.
		idx := make([]int, len(bursts))
		for {
			pick := -1
			var at time.Duration
			for i, b := range bursts {
				if idx[i] >= len(b.Events) {
					continue
				}
				if evAt := base + b.Events[idx[i]].At; pick < 0 || evAt < at {
					pick, at = i, evAt
				}
			}
			if pick < 0 {
				break
			}
			ev := bursts[pick].Events[idx[pick]]
			idx[pick]++
			peer := s.Peers[pick]
			if ev.Kind == KindWithdraw {
				batch = append(batch, event.Withdraw(at, ev.Prefix).WithPeer(peer))
			} else {
				batch = append(batch, event.Announce(at, ev.Prefix, ev.Path).WithPeer(peer))
			}
			s.Events++
			if at > last {
				last = at
			}
			if len(batch) >= s.batchEvents() {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	tick := s.FinalTick
	if tick == 0 {
		tick = time.Minute
	}
	if tick > 0 {
		final := make(event.Batch, 0, len(s.Peers))
		for _, peer := range s.Peers {
			final = append(final, event.Tick(last+tick).WithPeer(peer))
		}
		return sink.Apply(final)
	}
	return nil
}
