// Package bgpsim is the control-plane simulator the evaluation uses in
// place of C-BGP [56]: it computes policy-compliant (Gao–Rexford)
// routing over an AS topology, replays link and node failures, and
// records the resulting timestamped BGP message streams at vantage-point
// sessions — bursts with ground truth about the failed resource.
//
// Routing is solved per origin AS with the standard three-phase
// valley-free propagation: customer routes climb provider links first,
// then a single peer hop, then provider routes descend to customers.
// Preference is customer > peer > provider, then shorter AS path, then
// lower next-hop ASN — with an optional per-AS explicit neighbor
// ranking used by fixtures like Fig. 1 where the paper pins the choice.
package bgpsim

import (
	"sort"

	"swift/internal/topology"
)

// Class ranks a route by the relationship through which it was learned.
type Class int8

// Route classes in preference order (lower is better).
const (
	ClassOwn Class = iota
	ClassCustomer
	ClassPeer
	ClassProvider
	ClassNone
)

// Route is one AS's best route towards an origin.
type Route struct {
	// Path lists the ASes from the holder's next-hop to the origin
	// (inclusive). It is empty for the origin itself. A nil path with
	// Class == ClassNone means no route.
	Path  []uint32
	Class Class
}

// Valid reports whether the route exists.
func (r Route) Valid() bool { return r.Class != ClassNone }

// NextHop returns the neighbor the route points at (0 for the origin's
// own route and for invalid routes).
func (r Route) NextHop() uint32 {
	if len(r.Path) == 0 {
		return 0
	}
	return r.Path[0]
}

// Policy hooks refine pure Gao–Rexford routing.
type Policy struct {
	// Export, when non-nil, can veto an export that Gao–Rexford would
	// allow. It models selective announcement agreements such as the
	// partial transit of Fig. 1 (exporter→importer for origin).
	Export func(exporter, importer, origin uint32) bool
	// Prefer maps an AS to an explicit neighbor ranking that overrides
	// the class/length tie-breaks. Neighbors absent from the list rank
	// after listed ones.
	Prefer map[uint32][]uint32
}

func (p *Policy) exportAllowed(exporter, importer, origin uint32) bool {
	if p == nil || p.Export == nil {
		return true
	}
	return p.Export(exporter, importer, origin)
}

// prefRank returns the explicit preference rank of neighbor at as, or a
// large value when unranked.
func (p *Policy) prefRank(as, neighbor uint32) int {
	if p == nil {
		return 1 << 30
	}
	list, ok := p.Prefer[as]
	if !ok {
		return 1 << 30
	}
	for i, n := range list {
		if n == neighbor {
			return i
		}
	}
	return 1 << 30
}

// OriginSolution holds every AS's best route towards one origin.
type OriginSolution struct {
	Origin uint32
	best   map[uint32]Route
}

// RouteAt returns as's best route towards the origin.
func (s *OriginSolution) RouteAt(as uint32) Route {
	if as == s.Origin {
		return Route{Class: ClassOwn}
	}
	r, ok := s.best[as]
	if !ok {
		return Route{Class: ClassNone}
	}
	return r
}

// FullPathAt returns as's AS path including as itself at the head, or
// nil when unreachable. This is the path a packet sourced at as follows.
func (s *OriginSolution) FullPathAt(as uint32) []uint32 {
	r := s.RouteAt(as)
	if !r.Valid() {
		return nil
	}
	out := make([]uint32, 0, 1+len(r.Path))
	out = append(out, as)
	return append(out, r.Path...)
}

// gaoRexfordExports reports whether holder may export its route r to
// importer under the baseline rules: own and customer routes go to
// everyone; peer and provider routes go to customers only.
func gaoRexfordExports(g *topology.Graph, holder uint32, r Route, importer uint32) bool {
	rel, ok := g.RelOf(holder, importer)
	if !ok {
		return false
	}
	if r.Class == ClassOwn || r.Class == ClassCustomer {
		return true
	}
	return rel == topology.RelCustomer
}

// ExportTo returns the route holder exports to importer for this
// origin under policy pol, applying both Gao–Rexford and the custom
// filter. ok is false when nothing is exported.
func (s *OriginSolution) ExportTo(g *topology.Graph, pol *Policy, holder, importer uint32) (Route, bool) {
	r := s.RouteAt(holder)
	if !r.Valid() {
		return Route{Class: ClassNone}, false
	}
	if !gaoRexfordExports(g, holder, r, importer) {
		return Route{Class: ClassNone}, false
	}
	if !pol.exportAllowed(holder, importer, s.Origin) {
		return Route{Class: ClassNone}, false
	}
	// The exported path is holder prepended to holder's path, with the
	// class as seen by the importer (decided by the importer's
	// relationship to holder, not carried here).
	path := make([]uint32, 0, 1+len(r.Path))
	path = append(path, holder)
	path = append(path, r.Path...)
	return Route{Path: path, Class: r.Class}, true
}

// SolveOrigin computes every AS's best route towards origin on g under
// pol. The implementation is deterministic.
func SolveOrigin(g *topology.Graph, pol *Policy, origin uint32) *OriginSolution {
	sol := &OriginSolution{Origin: origin, best: make(map[uint32]Route)}

	// better reports whether a beats b at holder, under explicit
	// preference, then class, then path length, then next-hop ASN.
	better := func(holder uint32, aClass Class, a cand, bClass Class, b cand) bool {
		ra, rb := pol.prefRank(holder, a.via), pol.prefRank(holder, b.via)
		if ra != rb {
			return ra < rb
		}
		if aClass != bClass {
			return aClass < bClass
		}
		if len(a.path) != len(b.path) {
			return len(a.path) < len(b.path)
		}
		return a.via < b.via
	}

	// classOf is the class of a route learned from neighbor n at holder.
	classOf := func(holder, n uint32) Class {
		rel, _ := g.RelOf(holder, n)
		switch rel {
		case topology.RelCustomer:
			return ClassCustomer
		case topology.RelPeer:
			return ClassPeer
		default:
			return ClassProvider
		}
	}

	// install records the best candidate per holder from a batch.
	install := func(holder uint32, c cand) {
		cls := classOf(holder, c.via)
		cur, ok := sol.best[holder]
		if !ok {
			sol.best[holder] = Route{Path: c.path, Class: cls}
			return
		}
		curCand := cand{via: cur.NextHop(), path: cur.Path}
		if better(holder, cls, c, cur.Class, curCand) {
			sol.best[holder] = Route{Path: c.path, Class: cls}
		}
	}

	// exportFrom yields the path holder would export (holder prepended).
	exportFrom := func(holder uint32) []uint32 {
		if holder == origin {
			return []uint32{origin}
		}
		r := sol.best[holder]
		path := make([]uint32, 0, 1+len(r.Path))
		path = append(path, holder)
		return append(path, r.Path...)
	}

	// Phase 1: customer routes ripple up provider links, BFS by level so
	// shorter paths install first and are never displaced (a route via a
	// customer at distance d can't beat one at distance d-1: equal class,
	// shorter path). Explicit preference can override within a level —
	// handled because installs within a level race through better().
	level := []uint32{origin}
	visited := map[uint32]bool{origin: true}
	for len(level) > 0 {
		// Deterministic processing order.
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		var next []uint32
		for _, u := range level {
			path := exportFrom(u)
			for _, nb := range g.Neighbors(u) {
				if nb.Rel != topology.RelProvider {
					continue // only u's providers learn a customer route here
				}
				if nb.AS == origin || !pol.exportAllowed(u, nb.AS, origin) {
					continue
				}
				install(nb.AS, cand{via: u, path: path})
				if !visited[nb.AS] {
					visited[nb.AS] = true
					next = append(next, nb.AS)
				}
			}
		}
		level = next
	}

	// Phase 2: one peer hop. Every AS holding a customer route (or the
	// origin) offers it to peers. Peer routes never propagate further
	// through peers (valley-free).
	holders := make([]uint32, 0, len(sol.best)+1)
	holders = append(holders, origin)
	for as := range sol.best {
		holders = append(holders, as)
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	type peerCand struct {
		to uint32
		c  cand
	}
	var peerCands []peerCand
	for _, u := range holders {
		if u != origin && sol.best[u].Class != ClassCustomer {
			continue
		}
		path := exportFrom(u)
		for _, nb := range g.Neighbors(u) {
			if nb.Rel != topology.RelPeer || nb.AS == origin {
				continue
			}
			if !pol.exportAllowed(u, nb.AS, origin) {
				continue
			}
			peerCands = append(peerCands, peerCand{to: nb.AS, c: cand{via: u, path: path}})
		}
	}
	for _, pc := range peerCands {
		install(pc.to, pc.c)
	}

	// Phase 3: provider routes descend customer links. A node may first
	// hear a long provider route (via a provider whose own route is a
	// long customer path) and later a shorter one through a provider
	// chain, so plain BFS under-relaxes; process exports shortest-first
	// with a heap (Dijkstra — hop weights are uniform, so pops are
	// monotone and each node's provider route finalizes at its minimum).
	var h exportHeap
	push := func(u uint32) {
		path := exportFrom(u)
		for _, nb := range g.Neighbors(u) {
			if nb.Rel != topology.RelCustomer || nb.AS == origin {
				continue // only customers learn provider routes
			}
			if !pol.exportAllowed(u, nb.AS, origin) {
				continue
			}
			h.push(exportItem{to: nb.AS, c: cand{via: u, path: path}})
		}
	}
	// Seed with every AS that holds any route after phases 1–2 (the
	// earlier holders list predates peer installation, so rebuild).
	seeds := make([]uint32, 0, len(sol.best)+1)
	seeds = append(seeds, origin)
	for as := range sol.best {
		seeds = append(seeds, as)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for _, as := range seeds {
		push(as)
	}
	for h.Len() > 0 {
		it := h.pop()
		before := sol.best[it.to]
		install(it.to, it.c)
		if routeChanged(before, sol.best[it.to]) {
			push(it.to)
		}
	}
	return sol
}

func routeChanged(a, b Route) bool {
	if a.Class != b.Class || len(a.Path) != len(b.Path) {
		return true
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return true
		}
	}
	return false
}
