package bgpsim

import (
	"testing"
	"time"

	"swift/internal/topology"
)

func fig1Burst(t *testing.T, scale int) *Burst {
	t.Helper()
	n := Fig1Network(scale)
	b, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), DefaultTiming(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Size == 0 {
		t.Fatal("fixture burst is empty")
	}
	return b
}

func TestShift(t *testing.T) {
	b := fig1Burst(t, 20)
	first := b.Events[0].At
	last := b.Duration()
	b.Shift(time.Second)
	if b.Events[0].At != first+time.Second || b.Duration() != last+time.Second {
		t.Errorf("Shift moved events to [%v, %v], want [%v, %v]",
			b.Events[0].At, b.Duration(), first+time.Second, last+time.Second)
	}
}

func TestPartialWithdraw(t *testing.T) {
	b := fig1Burst(t, 50)
	full := b.Size
	announces := len(b.Events) - b.Size
	b.PartialWithdraw(0.5, 7)
	if b.Size >= full || b.Size == 0 {
		t.Fatalf("PartialWithdraw(0.5) kept %d of %d withdrawals", b.Size, full)
	}
	if got := len(b.Events) - b.Size; got != announces {
		t.Errorf("announcements changed: %d -> %d", announces, got)
	}
	// Deterministic: same seed, same survivors.
	c := fig1Burst(t, 50).PartialWithdraw(0.5, 7)
	if c.Size != b.Size {
		t.Errorf("same seed kept %d vs %d withdrawals", c.Size, b.Size)
	}
	for i := range b.Events {
		if b.Events[i].Prefix != c.Events[i].Prefix || b.Events[i].Kind != c.Events[i].Kind {
			t.Fatalf("event %d diverged between same-seed runs", i)
		}
	}
	// WithdrawnOrigins only keeps origins that still withdraw.
	still := map[uint32]bool{}
	for _, ev := range b.Events {
		if ev.Kind == KindWithdraw {
			still[ev.Origin] = true
		}
	}
	for _, o := range b.WithdrawnOrigins {
		if !still[o] {
			t.Errorf("origin %d listed as withdrawn with no surviving withdrawal", o)
		}
	}
}

func TestReannounce(t *testing.T) {
	n := Fig1Network(20)
	b := fig1Burst(t, 20)
	sols := n.Solve(n.Graph)
	paths := n.SessionRIB(sols, 1, 2)
	preDur := b.Duration()
	at := preDur + time.Second
	b.Reannounce(paths, at, 0, 3)

	// Every withdrawn prefix reappears as an announcement after at,
	// carrying its original session path.
	withdrawn := map[uint32]bool{}
	reannounced := map[uint32]bool{}
	for _, ev := range b.Events {
		if ev.Kind == KindWithdraw {
			withdrawn[uint32(ev.Prefix)] = true
		}
		if ev.Kind == KindAnnounce && ev.At > at {
			reannounced[uint32(ev.Prefix)] = true
			want := paths[ev.Origin]
			if len(ev.Path) != len(want) {
				t.Fatalf("re-announce path %v, want %v", ev.Path, want)
			}
			for i := range want {
				if ev.Path[i] != want[i] {
					t.Fatalf("re-announce path %v, want %v", ev.Path, want)
				}
			}
		}
	}
	for p := range withdrawn {
		if !reannounced[p] {
			t.Errorf("withdrawn prefix %x never re-announced", p)
		}
	}
	// Events stay time-sorted.
	for i := 1; i < len(b.Events); i++ {
		if b.Events[i].At < b.Events[i-1].At {
			t.Fatal("events out of order after Reannounce")
		}
	}
}
