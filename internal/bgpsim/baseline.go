package bgpsim

import (
	"math/rand"
	"sort"
	"time"

	"swift/internal/topology"
)

// Baseline caches the pre-failure routing of a network plus an inverted
// index from AS link to the origins whose routing trees cross it. It
// makes failure replay proportional to the failure's blast radius
// instead of the whole table — the trace synthesizer replays hundreds
// of failures against 213 sessions, which is intractable with full
// re-solves.
type Baseline struct {
	net   *Network
	Sols  map[uint32]*OriginSolution
	usage map[topology.Link]map[uint32]struct{}
}

// Baseline solves every origin once and builds the link-usage index.
func (n *Network) Baseline() *Baseline {
	b := &Baseline{
		net:   n,
		Sols:  n.Solve(n.Graph),
		usage: make(map[topology.Link]map[uint32]struct{}),
	}
	for origin, sol := range b.Sols {
		seen := make(map[topology.Link]struct{})
		for as, r := range sol.best {
			prev := as
			for _, hop := range r.Path {
				if hop != prev {
					seen[topology.MakeLink(prev, hop)] = struct{}{}
				}
				prev = hop
			}
		}
		for l := range seen {
			set := b.usage[l]
			if set == nil {
				set = make(map[uint32]struct{})
				b.usage[l] = set
			}
			set[origin] = struct{}{}
		}
	}
	return b
}

// AffectedOrigins returns the origins whose routing trees cross any of
// the links, ascending. Removing a link can only force ASes off it, so
// unaffected origins keep their routes exactly (the solver is
// deterministic and removal-monotone).
func (b *Baseline) AffectedOrigins(links ...topology.Link) []uint32 {
	set := make(map[uint32]struct{})
	for _, l := range links {
		for o := range b.usage[l] {
			set[o] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkLoadAt returns how many prefixes the session (vantage, neighbor)
// currently routes across l, i.e. the burst size a failure of l would
// produce there at most.
func (b *Baseline) LinkLoadAt(vantage, neighbor uint32, l topology.Link) int {
	total := 0
	for o := range b.usage[l] {
		r, ok := b.Sols[o].ExportTo(b.net.Graph, b.net.Policy, neighbor, vantage)
		if !ok {
			continue
		}
		if pathUsesLink(vantage, r.Path, l) {
			total += b.net.Origins[o]
		}
	}
	return total
}

// FailureDelta is the re-solved routing for the origins a failure
// touches; origins outside Affected keep their baseline routes.
type FailureDelta struct {
	Links    []topology.Link
	After    *topology.Graph
	Affected []uint32
	Sols     map[uint32]*OriginSolution
}

// FailLink re-solves the affected origins with l removed.
func (b *Baseline) FailLink(l topology.Link) *FailureDelta {
	after := b.net.Graph.WithoutLink(l.A, l.B)
	d := &FailureDelta{
		Links:    []topology.Link{l},
		After:    after,
		Affected: b.AffectedOrigins(l),
		Sols:     make(map[uint32]*OriginSolution),
	}
	for _, o := range d.Affected {
		d.Sols[o] = SolveOrigin(after, b.net.Policy, o)
	}
	return d
}

// FailAS re-solves for a whole-AS outage.
func (b *Baseline) FailAS(dead uint32) *FailureDelta {
	var links []topology.Link
	for _, nb := range b.net.Graph.Neighbors(dead) {
		links = append(links, topology.MakeLink(dead, nb.AS))
	}
	after := b.net.Graph.WithoutAS(dead)
	d := &FailureDelta{
		Links:    links,
		After:    after,
		Affected: b.AffectedOrigins(links...),
		Sols:     make(map[uint32]*OriginSolution),
	}
	for _, o := range d.Affected {
		// The dead AS itself is solved on the after-graph too: it no
		// longer exists there, so it exports nothing anywhere.
		d.Sols[o] = SolveOrigin(after, b.net.Policy, o)
	}
	return d
}

// afterSol returns the post-failure solution for an origin.
func (d *FailureDelta) afterSol(b *Baseline, origin uint32) (*OriginSolution, bool) {
	if s, ok := d.Sols[origin]; ok {
		return s, true
	}
	s, ok := b.Sols[origin]
	return s, ok
}

// SessionChange describes what one session observes for one origin.
type SessionChange struct {
	Origin   uint32
	Withdraw bool
	NewPath  []uint32
	Dist     int
}

// SessionChanges diffs the exports of neighbor→vantage across the
// failure, touching only affected origins.
func (d *FailureDelta) SessionChanges(b *Baseline, vantage, neighbor uint32) []SessionChange {
	var out []SessionChange
	for _, origin := range d.Affected {
		if origin == vantage || origin == neighbor {
			continue
		}
		oldSol := b.Sols[origin]
		newSol, ok := d.afterSol(b, origin)
		oldR, oldOK := oldSol.ExportTo(b.net.Graph, b.net.Policy, neighbor, vantage)
		var newR Route
		newOK := false
		if ok && newSol != nil {
			newR, newOK = newSol.ExportTo(d.After, b.net.Policy, neighbor, vantage)
		}
		switch {
		case oldOK && !newOK:
			out = append(out, SessionChange{
				Origin:   origin,
				Withdraw: true,
				Dist:     failureDistance(oldR.Path, d.Links),
			})
		case oldOK && newOK && !samePath(oldR.Path, newR.Path):
			out = append(out, SessionChange{
				Origin:  origin,
				NewPath: newR.Path,
				Dist:    failureDistance(oldR.Path, d.Links),
			})
		case !oldOK && newOK:
			out = append(out, SessionChange{Origin: origin, NewPath: newR.Path, Dist: 1})
		}
	}
	return out
}

// BurstAt expands the session diff into a timestamped event stream,
// exactly like ReplayLinkFailure but using the cached baseline.
func (b *Baseline) BurstAt(d *FailureDelta, vantage, neighbor uint32, tm Timing) *Burst {
	changes := d.SessionChanges(b, vantage, neighbor)
	burst := &Burst{Vantage: vantage, Neighbor: neighbor, FailedLinks: d.Links}
	for _, c := range changes {
		if c.Withdraw {
			burst.WithdrawnOrigins = append(burst.WithdrawnOrigins, c.Origin)
		}
	}
	burst.Events, burst.Size = expandEvents(b.net, changes, tm)
	return burst
}

// BurstSizeAt returns just the withdrawal/announce counts the session
// would see — the cheap path for the Fig. 2 census, with no event
// expansion.
func (b *Baseline) BurstSizeAt(d *FailureDelta, vantage, neighbor uint32) (withdrawals, announces int) {
	for _, c := range d.SessionChanges(b, vantage, neighbor) {
		if c.Withdraw {
			withdrawals += b.net.Origins[c.Origin]
		} else {
			announces += b.net.Origins[c.Origin]
		}
	}
	return withdrawals, announces
}

// EstimateDuration models how long a burst of the given size takes to
// drain at the session under tm, without materializing events: the
// serialization time plus the expected tail extension. The formula
// matches expandEvents' construction in expectation.
func EstimateDuration(tm Timing, withdrawals, announces int) time.Duration {
	n := withdrawals + announces
	if n == 0 {
		return 0
	}
	serial := time.Duration(n) * tm.PerMsg
	// Reproduce expandEvents' burst-level tail gate (its first draw).
	tailProb := tm.TailProb
	if tm.TailBurstProb > 0 {
		rng := rand.New(rand.NewSource(tm.Seed))
		if rng.Float64() > tm.TailBurstProb {
			tailProb = 0
		}
	}
	// Tail messages land around TailScale later; the burst ends near
	// the max of the serialization clock and the late stragglers.
	tail := time.Duration(0)
	if tailProb > 0 && n > 20 {
		// Expected maximum of k ~ Exp(TailScale) stragglers ≈ H_k·scale.
		k := float64(n) * tailProb
		h := 0.0
		for i := 1; i <= int(k) && i < 64; i++ {
			h += 1.0 / float64(i)
		}
		if k >= 1 {
			tail = time.Duration(h * float64(tm.TailScale))
		}
	}
	if tail > serial {
		return tail
	}
	return serial
}

// pathUsesLink reports whether the vantage-rooted path crosses l.
func pathUsesLink(vantage uint32, path []uint32, l topology.Link) bool {
	prev := vantage
	for _, as := range path {
		if as != prev && topology.MakeLink(prev, as) == l {
			return true
		}
		prev = as
	}
	return false
}
