package bgpsim

import "container/heap"

// exportItem is a pending route export in the phase-3 relaxation.
type exportItem struct {
	to uint32
	c  cand
}

// cand is a route candidate offered to an AS.
type cand struct {
	via  uint32
	path []uint32
}

// exportHeap orders pending exports by path length, then destination,
// then next-hop, so the relaxation is both correct (shortest-first) and
// deterministic.
type exportHeap struct {
	items []exportItem
}

func (h *exportHeap) Len() int { return len(h.items) }

func (h *exportHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if len(a.c.path) != len(b.c.path) {
		return len(a.c.path) < len(b.c.path)
	}
	if a.to != b.to {
		return a.to < b.to
	}
	return a.c.via < b.c.via
}

func (h *exportHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *exportHeap) Push(x any) { h.items = append(h.items, x.(exportItem)) }

func (h *exportHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func (h *exportHeap) push(it exportItem) { heap.Push(h, it) }

func (h *exportHeap) pop() exportItem { return heap.Pop(h).(exportItem) }
