package bgpsim

import (
	"math/rand"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
)

// recordSink flattens every applied batch for inspection.
type recordSink struct{ events []event.Event }

func (r *recordSink) Apply(b event.Batch) error {
	r.events = append(r.events, b...)
	return nil
}

func syntheticBurst(base int, n int) *Burst {
	b := &Burst{Vantage: 1, Neighbor: 2}
	for i := 0; i < n; i++ {
		b.Events = append(b.Events, Event{
			At:     time.Duration(base+i*10) * time.Millisecond,
			Kind:   KindWithdraw,
			Prefix: netaddr.PrefixFor(uint32(8+base), i),
		})
		b.Size++
	}
	return b
}

// TestBurstSourceMultiPeerInterleaves pins the multi-peer replay
// contract: bursts assign round-robin to peers, one wave's events merge
// by timestamp into mixed-peer batches, each peer's relative order is
// preserved exactly, and every peer gets a closing tick.
func TestBurstSourceMultiPeerInterleaves(t *testing.T) {
	peers := []event.PeerKey{{AS: 2, BGPID: 1}, {AS: 3, BGPID: 2}}
	// Offsets 0 and 5ms so the two streams strictly interleave.
	b0, b1 := syntheticBurst(0, 8), syntheticBurst(5, 8)
	src := &BurstSource{Bursts: []*Burst{b0, b1}, Peers: peers, BatchEvents: 4}
	var sink recordSink
	if err := src.Run(&sink); err != nil {
		t.Fatal(err)
	}
	if src.Events != 16 {
		t.Fatalf("Events = %d, want 16", src.Events)
	}

	var perPeer [2][]event.Event
	ticks := map[event.PeerKey]int{}
	lastAt := time.Duration(-1)
	for _, ev := range sink.events {
		if ev.At < lastAt {
			t.Fatalf("stream goes back in time: %v after %v", ev.At, lastAt)
		}
		lastAt = ev.At
		if ev.Kind == event.KindTick {
			ticks[ev.Peer]++
			continue
		}
		switch ev.Peer {
		case peers[0]:
			perPeer[0] = append(perPeer[0], ev)
		case peers[1]:
			perPeer[1] = append(perPeer[1], ev)
		default:
			t.Fatalf("event attributed to unknown peer %v", ev.Peer)
		}
	}
	for i, want := range []*Burst{b0, b1} {
		if len(perPeer[i]) != len(want.Events) {
			t.Fatalf("peer %d got %d events, want %d", i, len(perPeer[i]), len(want.Events))
		}
		for j, ev := range perPeer[i] {
			if ev.Prefix != want.Events[j].Prefix || ev.At != want.Events[j].At {
				t.Fatalf("peer %d event %d = %+v, want prefix %v at %v",
					i, j, ev, want.Events[j].Prefix, want.Events[j].At)
			}
		}
	}
	// The two streams must actually interleave (not replay serially).
	first, mixed := sink.events[0].Peer, false
	for _, ev := range sink.events[:8] {
		if ev.Peer != first {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Fatal("first wave replayed serially; expected timestamp interleaving")
	}
	for _, peer := range peers {
		if ticks[peer] != 1 {
			t.Fatalf("peer %v got %d closing ticks, want 1", peer, ticks[peer])
		}
	}
}

// TestBurstSourceMultiPeerWaves checks that more bursts than peers roll
// into later waves, spaced past the detection window.
func TestBurstSourceMultiPeerWaves(t *testing.T) {
	peers := []event.PeerKey{{AS: 2, BGPID: 1}, {AS: 3, BGPID: 2}}
	src := &BurstSource{
		Bursts: []*Burst{syntheticBurst(0, 4), syntheticBurst(0, 4), syntheticBurst(0, 4)},
		Peers:  peers,
		// Default spacing (1h) applies between waves.
	}
	var sink recordSink
	if err := src.Run(&sink); err != nil {
		t.Fatal(err)
	}
	if src.Events != 12 {
		t.Fatalf("Events = %d, want 12", src.Events)
	}
	// Third burst (wave 2) goes to peers[0] again, one spacing later.
	var wave2 []event.Event
	for _, ev := range sink.events {
		if ev.Kind != event.KindTick && ev.At >= time.Hour {
			wave2 = append(wave2, ev)
		}
	}
	if len(wave2) != 4 {
		t.Fatalf("wave 2 carried %d events, want 4", len(wave2))
	}
	for _, ev := range wave2 {
		if ev.Peer != peers[0] {
			t.Fatalf("wave 2 event on %v, want round-robin back to %v", ev.Peer, peers[0])
		}
	}
}

// TestBurstSourceMultiPeerOrderProperty is the randomized property
// check behind the fused evaluation's determinism: for arbitrary
// per-peer bursts — uneven sizes, arbitrary start skew, duplicate
// timestamps within and across peers — the timestamp-merged interleave
// must (1) preserve every peer's relative event order exactly, (2)
// never move the stream clock backwards, (3) conserve the event count,
// and (4) break cross-peer timestamp ties by peer position, so the
// merge is a pure function of the inputs.
func TestBurstSourceMultiPeerOrderProperty(t *testing.T) {
	for trial := 0; trial < 64; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nPeers := 2 + rng.Intn(4)
		peers := make([]event.PeerKey, nPeers)
		bursts := make([]*Burst, nPeers)
		for i := range peers {
			peers[i] = event.PeerKey{AS: uint32(2 + i), BGPID: uint32(i + 1)}
			b := &Burst{Vantage: 1, Neighbor: peers[i].AS}
			// Arbitrary skew, including zero (tied starts across peers).
			skew := time.Duration(rng.Intn(4)) * 25 * time.Millisecond
			at := skew
			for j, n := 0, 1+rng.Intn(40); j < n; j++ {
				// Coarse steps make cross-peer (and some same-peer)
				// timestamp collisions common rather than exotic.
				at += time.Duration(rng.Intn(3)) * 10 * time.Millisecond
				b.Events = append(b.Events, Event{
					At:     at,
					Kind:   KindWithdraw,
					Prefix: netaddr.PrefixFor(uint32(8+i), j),
				})
				b.Size++
			}
			bursts[i] = b
		}
		src := &BurstSource{Bursts: bursts, Peers: peers, BatchEvents: 1 + rng.Intn(16)}
		var sink recordSink
		if err := src.Run(&sink); err != nil {
			t.Fatal(err)
		}

		want := 0
		for _, b := range bursts {
			want += len(b.Events)
		}
		if src.Events != want {
			t.Fatalf("trial %d: Events = %d, want %d", trial, src.Events, want)
		}

		peerIdx := make(map[event.PeerKey]int, nPeers)
		for i, p := range peers {
			peerIdx[p] = i
		}
		next := make([]int, nPeers)
		lastAt := time.Duration(-1)
		lastPick := -1
		total := 0
		for _, ev := range sink.events {
			if ev.Kind == event.KindTick {
				continue
			}
			i, ok := peerIdx[ev.Peer]
			if !ok {
				t.Fatalf("trial %d: event attributed to unknown peer %v", trial, ev.Peer)
			}
			if ev.At < lastAt {
				t.Fatalf("trial %d: stream clock moved backwards: %v after %v", trial, ev.At, lastAt)
			}
			if ev.At == lastAt && i < lastPick {
				t.Fatalf("trial %d: tie at %v served peer %d after peer %d (ties must follow peer position)",
					trial, ev.At, i, lastPick)
			}
			wantEv := bursts[i].Events[next[i]]
			if ev.Prefix != wantEv.Prefix || ev.At != wantEv.At {
				t.Fatalf("trial %d: peer %d event %d = (%v, %v), want (%v, %v) — per-peer order broken",
					trial, i, next[i], ev.Prefix, ev.At, wantEv.Prefix, wantEv.At)
			}
			next[i]++
			lastAt, lastPick = ev.At, i
			total++
		}
		if total != want {
			t.Fatalf("trial %d: sink saw %d events, want %d", trial, total, want)
		}
		for i := range bursts {
			if next[i] != len(bursts[i].Events) {
				t.Fatalf("trial %d: peer %d delivered %d of %d events", trial, i, next[i], len(bursts[i].Events))
			}
		}
	}
}
