package bgpsim

import (
	"math/rand"
	"sort"
	"time"

	"swift/internal/netaddr"
)

// This file holds deterministic burst transformations. ReplayLinkFailure
// and ReplayASFailure produce the canonical message stream of a clean
// failure; real sessions also show partial withdrawals, flap
// (withdraw-then-re-announce) recoveries and onset skew across peers.
// The scenario engine composes these to widen the evaluated space.

// Shift moves every event (and the burst as a whole) later by d — the
// per-peer onset skew of a multi-session replay, where the same failure
// reaches different sessions at different times. It returns b.
func (b *Burst) Shift(d time.Duration) *Burst {
	if d <= 0 {
		return b
	}
	for i := range b.Events {
		b.Events[i].At += d
	}
	return b
}

// PartialWithdraw keeps each withdrawal event with probability frac
// (deterministically, from seed) and drops the rest — the failure only
// partially affects the withdrawn origins, as when a provider loses one
// of several egresses for a customer's address space. Announcements are
// untouched. Size is updated; WithdrawnOrigins keeps every origin that
// still has at least one withdrawal. It returns b.
func (b *Burst) PartialWithdraw(frac float64, seed int64) *Burst {
	if frac <= 0 || frac >= 1 {
		return b
	}
	rng := rand.New(rand.NewSource(seed))
	kept := b.Events[:0]
	size := 0
	still := make(map[uint32]bool)
	for _, ev := range b.Events {
		if ev.Kind == KindWithdraw {
			if rng.Float64() >= frac {
				continue
			}
			size++
			still[ev.Origin] = true
		}
		kept = append(kept, ev)
	}
	b.Events = kept
	b.Size = size
	var origins []uint32
	for _, o := range b.WithdrawnOrigins {
		if still[o] {
			origins = append(origins, o)
		}
	}
	b.WithdrawnOrigins = origins
	return b
}

// Reannounce appends a recovery tail: every withdrawn prefix is
// re-announced with its original session path (paths maps origin to the
// pre-failure Adj-RIB-In path), starting at the given offset and
// serialized with exponential inter-message spacing of mean perMsg —
// the flap / transient-failure case where the failed resource comes
// back and BGP reconverges onto the pre-failure state. Prefixes are
// re-announced in withdrawal order. It returns b.
func (b *Burst) Reannounce(paths map[uint32][]uint32, at time.Duration, perMsg time.Duration, seed int64) *Burst {
	if perMsg <= 0 {
		perMsg = 400 * time.Microsecond
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[netaddr.Prefix]bool, b.Size)
	clock := at
	var tail []Event
	for _, ev := range b.Events {
		if ev.Kind != KindWithdraw || seen[ev.Prefix] {
			continue
		}
		seen[ev.Prefix] = true
		path := paths[ev.Origin]
		if path == nil {
			continue
		}
		clock += time.Duration(rng.ExpFloat64() * float64(perMsg))
		tail = append(tail, Event{
			At:     clock,
			Kind:   KindAnnounce,
			Prefix: ev.Prefix,
			Origin: ev.Origin,
			Path:   path,
		})
	}
	b.Events = append(b.Events, tail...)
	sort.SliceStable(b.Events, func(i, j int) bool { return b.Events[i].At < b.Events[j].At })
	return b
}
