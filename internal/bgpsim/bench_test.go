package bgpsim

import (
	"testing"

	"swift/internal/topology"
)

// BenchmarkSolveOrigin measures one per-origin policy solve on a
// 1,000-AS topology (the paper's C-BGP setup size).
func BenchmarkSolveOrigin(b *testing.B) {
	g := topology.Generate(topology.GenConfig{NumASes: 1000, AvgDegree: 8.4, Seed: 1})
	pol := &Policy{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveOrigin(g, pol, uint32(i%1000+1))
	}
}

// BenchmarkReplayFig1 measures a full failure replay at 10k scale.
func BenchmarkReplayFig1(b *testing.B) {
	net := Fig1Network(10000)
	link := topology.MakeLink(5, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ReplayLinkFailure(1, 2, link, TestbedTiming(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
