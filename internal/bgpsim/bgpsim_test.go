package bgpsim

import (
	"testing"
	"time"

	"swift/internal/topology"
)

func pathEq(got []uint32, want ...uint32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestSolveFig1PreFailure(t *testing.T) {
	n := Fig1Network(10)
	sols := n.Solve(n.Graph)

	// AS 1 must route S6/S7/S8 via 2→5→6 (the paper's primary paths).
	for origin, want := range map[uint32][]uint32{
		6: {2, 5, 6},
		7: {2, 5, 6, 7},
		8: {2, 5, 6, 8},
	} {
		r := sols[origin].RouteAt(1)
		if !r.Valid() || !pathEq(r.Path, want...) {
			t.Errorf("AS1 route to %d = %v, want %v", origin, r.Path, want)
		}
	}
	// AS 5 must prefer its direct provider 6 for S7.
	r := sols[7].RouteAt(5)
	if !pathEq(r.Path, 6, 7) {
		t.Errorf("AS5 route to 7 = %v, want [6 7]", r.Path)
	}
	// AS 4's path to S8 must cross (5,6): it is unusable as a backup.
	r = sols[8].RouteAt(4)
	if !pathEq(r.Path, 5, 6, 8) {
		t.Errorf("AS4 route to 8 = %v, want [5 6 8]", r.Path)
	}
	// AS 3 reaches S8 via its provider 6, avoiding (5,6).
	r = sols[8].RouteAt(3)
	if !pathEq(r.Path, 6, 8) {
		t.Errorf("AS3 route to 8 = %v, want [6 8]", r.Path)
	}
}

func TestSolveFig1SessionRIB(t *testing.T) {
	n := Fig1Network(10)
	sols := n.Solve(n.Graph)
	ribFromAS2 := n.SessionRIB(sols, 1, 2)
	// AS 2 exports its provider routes to its customer AS 1.
	if !pathEq(ribFromAS2[8], 2, 5, 6, 8) {
		t.Errorf("AS2 exports S8 as %v", ribFromAS2[8])
	}
	if !pathEq(ribFromAS2[2], 2) {
		t.Errorf("AS2 exports its own prefixes as %v", ribFromAS2[2])
	}
	// AS 3 also offers (5,6)-free paths — the backup SWIFT will use.
	ribFromAS3 := n.SessionRIB(sols, 1, 3)
	if !pathEq(ribFromAS3[8], 3, 6, 8) {
		t.Errorf("AS3 exports S8 as %v", ribFromAS3[8])
	}
	// Partial transit: AS 3 must NOT give AS 5 routes for S8.
	if _, ok := sols[8].ExportTo(n.Graph, n.Policy, 3, 5); ok {
		t.Error("AS3 must not export S8 to AS5 (partial transit)")
	}
	if _, ok := sols[7].ExportTo(n.Graph, n.Policy, 3, 5); !ok {
		t.Error("AS3 must export S7 to AS5 (partial transit)")
	}
}

func TestSolveFig1PostFailure(t *testing.T) {
	n := Fig1Network(10)
	after := n.Graph.WithoutLink(5, 6)
	sols := n.Solve(after)
	// AS 5 reroutes S7 via AS 3 (the paper's 10k path updates)...
	r := sols[7].RouteAt(5)
	if !pathEq(r.Path, 3, 6, 7) {
		t.Errorf("AS5 post-failure route to 7 = %v, want [3 6 7]", r.Path)
	}
	// ...but has no route at all for S6 and S8 (the 11k withdrawals).
	if sols[6].RouteAt(5).Valid() {
		t.Error("AS5 must lose S6")
	}
	if sols[8].RouteAt(5).Valid() {
		t.Error("AS5 must lose S8")
	}
	// AS 1 keeps connectivity for everything via AS 3.
	for _, origin := range []uint32{6, 7, 8} {
		if !sols[origin].RouteAt(1).Valid() {
			t.Errorf("AS1 lost origin %d entirely", origin)
		}
	}
}

func TestReplayFig1Burst(t *testing.T) {
	// The paper's running example: failing (5,6) produces 11k
	// withdrawals (S6+S8) and 10k updates (S7) on AS1's session with
	// AS2, at scale 10k / 1k.
	n := Fig1Network(10000)
	b, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), DefaultTiming(1))
	if err != nil {
		t.Fatal(err)
	}
	var withdrawals, announces int
	for _, ev := range b.Events {
		switch ev.Kind {
		case KindWithdraw:
			withdrawals++
		case KindAnnounce:
			announces++
			if !pathEq(ev.Path, 2, 5, 3, 6, 7) {
				t.Fatalf("announce path = %v", ev.Path)
			}
		}
	}
	if withdrawals != 11000 {
		t.Errorf("withdrawals = %d, want 11000", withdrawals)
	}
	if announces != 10000 {
		t.Errorf("announces = %d, want 10000", announces)
	}
	if b.Size != withdrawals {
		t.Errorf("Size = %d", b.Size)
	}
	if len(b.WithdrawnOrigins) != 2 {
		t.Errorf("withdrawn origins = %v", b.WithdrawnOrigins)
	}
	// Events must be time-sorted.
	for i := 1; i < len(b.Events); i++ {
		if b.Events[i].At < b.Events[i-1].At {
			t.Fatal("events not sorted by arrival time")
		}
	}
	if b.Duration() <= 0 {
		t.Error("burst must take time")
	}
}

func TestReplayDeterministic(t *testing.T) {
	n := Fig1Network(100)
	a, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), DefaultTiming(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), DefaultTiming(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ")
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.At != eb.At || ea.Prefix != eb.Prefix || ea.Kind != eb.Kind {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestReplayUnknownLink(t *testing.T) {
	n := Fig1Network(10)
	if _, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(1, 99), DefaultTiming(0)); err == nil {
		t.Error("unknown link must error")
	}
}

func TestReplayASFailure(t *testing.T) {
	n := Fig1Network(100)
	b, err := n.ReplayASFailure(1, 2, 6, DefaultTiming(3))
	if err != nil {
		t.Fatal(err)
	}
	// Killing AS 6 severs S6, S7 and S8 from everyone.
	if len(b.WithdrawnOrigins) != 3 {
		t.Errorf("withdrawn origins = %v", b.WithdrawnOrigins)
	}
	if len(b.FailedLinks) != 4 { // links 5-6, 3-6, 6-7, 6-8
		t.Errorf("failed links = %v", b.FailedLinks)
	}
}

func TestInjectNoise(t *testing.T) {
	n := Fig1Network(1000)
	b, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), DefaultTiming(1))
	if err != nil {
		t.Fatal(err)
	}
	before := b.Size
	b.InjectNoise(n, 50, 9)
	if b.Size != before+50 {
		t.Errorf("size = %d, want %d", b.Size, before+50)
	}
	affected := map[uint32]bool{}
	for _, o := range b.WithdrawnOrigins {
		affected[o] = true
	}
	noise := 0
	for _, ev := range b.Events {
		if ev.Kind == KindWithdraw && !affected[ev.Origin] {
			noise++
		}
	}
	if noise != 50 {
		t.Errorf("noise events = %d, want 50", noise)
	}
}

func TestSolveGeneratedTopologyReachability(t *testing.T) {
	g := topology.Generate(topology.GenConfig{NumASes: 300, AvgDegree: 8, Seed: 2})
	pol := &Policy{}
	// Every AS must reach a tier-1 origin (valley-free routing over a
	// connected scale-free graph reaches everyone through providers).
	tiers := g.Tiers()
	var t1 uint32
	for as, tier := range tiers {
		if tier == 1 {
			t1 = as
			break
		}
	}
	sol := SolveOrigin(g, pol, t1)
	unreached := 0
	for _, as := range g.ASes() {
		if as != t1 && !sol.RouteAt(as).Valid() {
			unreached++
		}
	}
	if unreached > 0 {
		t.Errorf("%d ASes cannot reach tier-1 origin %d", unreached, t1)
	}
}

func TestSolveValleyFree(t *testing.T) {
	g := topology.Generate(topology.GenConfig{NumASes: 200, AvgDegree: 8, Seed: 4})
	pol := &Policy{}
	for _, origin := range []uint32{1, 17, 42, 100, 199} {
		sol := SolveOrigin(g, pol, origin)
		for _, as := range g.ASes() {
			path := sol.FullPathAt(as)
			if path == nil {
				continue
			}
			if path[len(path)-1] != origin {
				t.Fatalf("path %v does not end at origin %d", path, origin)
			}
			// Valley-free: relationship sequence must be ups, then at
			// most one peer step, then downs. Walk from the origin
			// backwards: seen from the traffic direction (as -> origin),
			// each step as->next is valid if ... check no provider step
			// after a customer/peer step in the traffic direction.
			// Traffic goes path[0] -> path[end]. Step i: path[i]→path[i+1].
			phase := 0 // 0 = climbing (towards providers), 1 = after peer, 2 = descending
			for i := 0; i+1 < len(path); i++ {
				rel, ok := g.RelOf(path[i], path[i+1])
				if !ok {
					t.Fatalf("path %v uses non-adjacent step %d", path, i)
				}
				switch rel {
				case topology.RelProvider: // climbing
					if phase != 0 {
						t.Fatalf("valley in path %v at step %d", path, i)
					}
				case topology.RelPeer:
					if phase >= 1 {
						t.Fatalf("two peer steps in path %v", path)
					}
					phase = 1
				case topology.RelCustomer:
					phase = 2
				}
			}
			// No routing loop.
			seen := map[uint32]bool{}
			for _, as2 := range path {
				if seen[as2] {
					t.Fatalf("loop in path %v", path)
				}
				seen[as2] = true
			}
		}
	}
}

func TestSolveShortestWithinClass(t *testing.T) {
	// Diamond: origin 10 has two providers 20 (chain of 2) and 30
	// (direct) to vantage 40's neighbor; the shorter same-class path
	// must win.
	g := topology.New()
	g.AddCustomerProvider(10, 20)
	g.AddCustomerProvider(10, 30)
	g.AddCustomerProvider(20, 21)
	g.AddCustomerProvider(21, 40)
	g.AddCustomerProvider(30, 40)
	sol := SolveOrigin(g, &Policy{}, 10)
	r := sol.RouteAt(40)
	if !pathEq(r.Path, 30, 10) {
		t.Errorf("route = %v, want [30 10]", r.Path)
	}
}

func TestPreferOverride(t *testing.T) {
	g := topology.New()
	g.AddCustomerProvider(10, 20)
	g.AddCustomerProvider(10, 30)
	g.AddCustomerProvider(40, 20) // 40 buys from 20
	g.AddCustomerProvider(40, 30) // and from 30
	pol := &Policy{Prefer: map[uint32][]uint32{40: {30, 20}}}
	sol := SolveOrigin(g, pol, 10)
	r := sol.RouteAt(40)
	if r.NextHop() != 30 {
		t.Errorf("next hop = %d, want 30 (explicit preference)", r.NextHop())
	}
}

func TestProviderRouteRelaxation(t *testing.T) {
	// A node whose provider first offers a long customer-path route
	// must end with the shorter provider-chain route. Build: origin 1;
	// long customer chain 1→2→3→4 (all c2p); tier chain 1→9, 9→8, 8→4
	// shorter... Construct explicitly:
	g := topology.New()
	// Long climb: 1 is customer of 2, 2 of 3, 3 of 4.
	g.AddCustomerProvider(1, 2)
	g.AddCustomerProvider(2, 3)
	g.AddCustomerProvider(3, 4)
	// 5 is a customer of 4 and of 6; 6 peers with 7; 7 is provider of 1.
	g.AddCustomerProvider(5, 4)
	g.AddCustomerProvider(5, 6)
	g.AddCustomerProvider(1, 7) // 7 learns customer route [1] directly
	g.AddPeers(6, 7)
	sol := SolveOrigin(g, &Policy{}, 1)
	// 5's options: via provider 4 (provider route, path [4 3 2 1]) or
	// via provider 6 (provider route via peer 7: [6 7 1]).
	r := sol.RouteAt(5)
	if !pathEq(r.Path, 6, 7, 1) {
		t.Errorf("AS5 route = %v, want [6 7 1]", r.Path)
	}
}

func TestTimingShapesBurst(t *testing.T) {
	n := Fig1Network(5000)
	b, err := n.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), DefaultTiming(11))
	if err != nil {
		t.Fatal(err)
	}
	// 11k messages at ~400us mean spacing: the burst must span seconds,
	// not milliseconds, and not minutes.
	d := b.Duration()
	if d < time.Second || d > 2*time.Minute {
		t.Errorf("burst duration = %v; timing model out of calibration", d)
	}
}
