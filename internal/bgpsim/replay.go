package bgpsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"swift/internal/netaddr"
	"swift/internal/topology"
)

// Network bundles a topology with its routing policy and the prefixes
// each AS originates. It is the simulator's top-level object.
type Network struct {
	Graph   *topology.Graph
	Policy  *Policy
	Origins map[uint32]int // origin AS -> number of originated prefixes
}

// Prefixes returns the deterministic prefix set an origin announces.
func (n *Network) Prefixes(origin uint32) []netaddr.Prefix {
	count := n.Origins[origin]
	out := make([]netaddr.Prefix, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, netaddr.PrefixFor(origin, i))
	}
	return out
}

// TotalPrefixes returns the size of the full table.
func (n *Network) TotalPrefixes() int {
	t := 0
	for _, c := range n.Origins {
		t += c
	}
	return t
}

// Solve computes the per-origin routing for every originating AS.
func (n *Network) Solve(g *topology.Graph) map[uint32]*OriginSolution {
	out := make(map[uint32]*OriginSolution, len(n.Origins))
	for origin := range n.Origins {
		out[origin] = SolveOrigin(g, n.Policy, origin)
	}
	return out
}

// SessionRoute is one entry of a vantage session's Adj-RIB-In.
type SessionRoute struct {
	Origin uint32
	Path   []uint32 // as announced by the neighbor: neighbor first, origin last
}

// SessionRIB returns what neighbor exports to vantage under sols: the
// session's initial Adj-RIB-In, keyed by origin (all prefixes of an
// origin share the path).
func (n *Network) SessionRIB(sols map[uint32]*OriginSolution, vantage, neighbor uint32) map[uint32][]uint32 {
	out := make(map[uint32][]uint32)
	for origin, sol := range sols {
		if origin == vantage {
			continue
		}
		if origin == neighbor {
			out[origin] = []uint32{neighbor}
			continue
		}
		if r, ok := sol.ExportTo(n.Graph, n.Policy, neighbor, vantage); ok {
			out[origin] = r.Path
		}
	}
	return out
}

// MsgKind distinguishes the two UPDATE flavours in a replayed stream.
type MsgKind uint8

// Message kinds.
const (
	KindAnnounce MsgKind = iota
	KindWithdraw
)

// Event is one per-prefix BGP message observed at the vantage session,
// At seconds-scale offsets after the failure instant.
type Event struct {
	At     time.Duration
	Kind   MsgKind
	Prefix netaddr.Prefix
	Origin uint32
	Path   []uint32 // new path for announcements (neighbor first); nil for withdrawals
}

// Burst is a replayed failure: the message stream recorded at a vantage
// session plus ground truth about the failure.
type Burst struct {
	Vantage  uint32
	Neighbor uint32
	// FailedLinks is the ground truth (one entry for a link failure,
	// several sharing an endpoint for a node failure).
	FailedLinks []topology.Link
	// Events are sorted by arrival time.
	Events []Event
	// WithdrawnOrigins lists origins fully withdrawn on the session.
	WithdrawnOrigins []uint32
	// Size is the number of withdrawal events.
	Size int
}

// Duration returns the arrival time of the last event.
func (b *Burst) Duration() time.Duration {
	if len(b.Events) == 0 {
		return 0
	}
	return b.Events[len(b.Events)-1].At
}

// Timing models how a remote outage's message stream drains into the
// vantage session. Per-message spacing dominates (BGP messages arrive
// one at a time over TCP); hop distance adds onset latency; a heavy
// tail reproduces the paper's observation that 25% of bursts carry at
// least 32% of their withdrawals in the final third (§2.2.1).
type Timing struct {
	// PerMsg is the mean spacing between consecutive messages.
	PerMsg time.Duration
	// HopDelay is the per-AS-hop propagation delay from the failure.
	HopDelay time.Duration
	// TailProb is the probability a message is deferred into the tail.
	TailProb float64
	// TailBurstProb, when positive, is the probability that a burst has
	// a tail at all: the paper's data shows most bursts drain compactly
	// (63% finish within 10 s) while a minority dribble for minutes.
	// Zero disables the gate (every burst tails).
	TailBurstProb float64
	// TailScale is the mean extra delay of tail messages.
	TailScale time.Duration
	// Seed makes the replay deterministic.
	Seed int64
}

// DefaultTiming is calibrated so a 10k burst spans roughly 4–6 s and a
// 100k burst 40–60 s, matching the linear growth in Table 1 and the
// Fig. 2b duration CDF.
func DefaultTiming(seed int64) Timing {
	return Timing{
		PerMsg:        400 * time.Microsecond,
		HopDelay:      50 * time.Millisecond,
		TailProb:      0.08,
		TailBurstProb: 0.35,
		TailScale:     6 * time.Second,
		Seed:          seed,
	}
}

// TestbedTiming models the controlled lab setup of §2.1.2 and §7: the
// upstream router drains the burst back-to-back over a direct session
// with RFC 4271 update packing (hundreds of withdrawals per message),
// so CONTROL-plane arrival is fast — about 50 µs per withdrawn prefix.
// The router's DATA-plane convergence is then FIB-write bound (see
// router.PerPrefixUpdate), which is how the paper's Cisco needs 109 s
// for 290k prefixes while the SWIFT controller has seen its 20k trigger
// withdrawals after one second.
func TestbedTiming(seed int64) Timing {
	return Timing{
		PerMsg:   50 * time.Microsecond,
		HopDelay: time.Millisecond,
		Seed:     seed,
	}
}

// ReplayLinkFailure computes the burst that the failure of link produces
// on the vantage←neighbor session.
func (n *Network) ReplayLinkFailure(vantage, neighbor uint32, link topology.Link, tm Timing) (*Burst, error) {
	if !n.Graph.HasLink(link.A, link.B) {
		return nil, fmt.Errorf("bgpsim: link %v not in topology", link)
	}
	after := n.Graph.WithoutLink(link.A, link.B)
	return n.replay(vantage, neighbor, after, []topology.Link{link}, tm)
}

// ReplayASFailure computes the burst produced by a whole-AS outage,
// which takes down every adjacent link at once (§4.2's concurrent
// failure case).
func (n *Network) ReplayASFailure(vantage, neighbor, dead uint32, tm Timing) (*Burst, error) {
	var links []topology.Link
	for _, nb := range n.Graph.Neighbors(dead) {
		links = append(links, topology.MakeLink(dead, nb.AS))
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("bgpsim: AS %d has no links", dead)
	}
	after := n.Graph.WithoutAS(dead)
	return n.replay(vantage, neighbor, after, links, tm)
}

func (n *Network) replay(vantage, neighbor uint32, after *topology.Graph, failed []topology.Link, tm Timing) (*Burst, error) {
	solsBefore := n.Solve(n.Graph)
	solsAfter := n.Solve(after)

	b := &Burst{Vantage: vantage, Neighbor: neighbor, FailedLinks: failed}

	// Per-origin change detection on the session.
	type change struct {
		origin   uint32
		withdraw bool
		newPath  []uint32
		dist     int // hops from the failure to the neighbor on the old path
	}
	var changes []change
	origins := make([]uint32, 0, len(n.Origins))
	for o := range n.Origins {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })

	for _, origin := range origins {
		if origin == vantage || origin == neighbor {
			continue
		}
		oldR, oldOK := solsBefore[origin].ExportTo(n.Graph, n.Policy, neighbor, vantage)
		newR, newOK := solsAfter[origin].ExportTo(after, n.Policy, neighbor, vantage)
		switch {
		case oldOK && !newOK:
			changes = append(changes, change{
				origin:   origin,
				withdraw: true,
				dist:     failureDistance(oldR.Path, failed),
			})
			b.WithdrawnOrigins = append(b.WithdrawnOrigins, origin)
		case oldOK && newOK && !samePath(oldR.Path, newR.Path):
			changes = append(changes, change{
				origin:  origin,
				newPath: newR.Path,
				dist:    failureDistance(oldR.Path, failed),
			})
		case !oldOK && newOK:
			changes = append(changes, change{origin: origin, newPath: newR.Path, dist: 1})
		}
	}

	sc := make([]SessionChange, len(changes))
	for i, c := range changes {
		sc[i] = SessionChange{Origin: c.origin, Withdraw: c.withdraw, NewPath: c.newPath, Dist: c.dist}
	}
	b.Events, b.Size = expandEvents(n, sc, tm)
	return b, nil
}

// expandEvents turns per-origin session changes into the per-prefix,
// timestamped message stream: per-origin onset delays proportional to
// the failure distance, a heavy tail, then strict serialization with
// exponential inter-message spacing.
func expandEvents(n *Network, changes []SessionChange, tm Timing) ([]Event, int) {
	rng := rand.New(rand.NewSource(tm.Seed))
	tailProb := tm.TailProb
	// The gating draw must stay the first use of the rng so that
	// EstimateDuration can reproduce it.
	if tm.TailBurstProb > 0 && rng.Float64() > tm.TailBurstProb {
		tailProb = 0
	}
	type pending struct {
		ev   Event
		base time.Duration
	}
	var msgs []pending
	for _, c := range changes {
		count := n.Origins[c.Origin]
		base := time.Duration(c.Dist) * tm.HopDelay
		for i := 0; i < count; i++ {
			ev := Event{Prefix: netaddr.PrefixFor(c.Origin, i), Origin: c.Origin}
			if c.Withdraw {
				ev.Kind = KindWithdraw
			} else {
				ev.Kind = KindAnnounce
				ev.Path = c.NewPath
			}
			jitter := time.Duration(rng.Int63n(int64(tm.HopDelay) + 1))
			delay := base + jitter
			if tailProb > 0 && rng.Float64() < tailProb {
				delay += time.Duration(rng.ExpFloat64() * float64(tm.TailScale))
			}
			msgs = append(msgs, pending{ev: ev, base: delay})
		}
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].base < msgs[j].base })

	// Serialize: one message at a time, exponential spacing.
	var clock time.Duration
	events := make([]Event, 0, len(msgs))
	size := 0
	for _, m := range msgs {
		gap := time.Duration(rng.ExpFloat64() * float64(tm.PerMsg))
		if m.base > clock {
			clock = m.base
		}
		clock += gap
		m.ev.At = clock
		events = append(events, m.ev)
		if m.ev.Kind == KindWithdraw {
			size++
		}
	}
	return events, size
}

// InjectNoise adds n withdrawal events for prefixes of origins that are
// not affected by the burst, uniformly spread over the burst duration —
// the §6.2.2 noise-robustness setup. It returns the modified burst.
func (b *Burst) InjectNoise(net *Network, n int, seed int64) *Burst {
	rng := rand.New(rand.NewSource(seed))
	affected := make(map[uint32]bool, len(b.WithdrawnOrigins))
	for _, o := range b.WithdrawnOrigins {
		affected[o] = true
	}
	var pool []uint32
	for o := range net.Origins {
		if !affected[o] && o != b.Vantage && o != b.Neighbor {
			pool = append(pool, o)
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	if len(pool) == 0 {
		return b
	}
	dur := b.Duration()
	if dur == 0 {
		dur = time.Second
	}
	for i := 0; i < n; i++ {
		o := pool[rng.Intn(len(pool))]
		idx := rng.Intn(net.Origins[o])
		b.Events = append(b.Events, Event{
			At:     time.Duration(rng.Int63n(int64(dur))),
			Kind:   KindWithdraw,
			Prefix: netaddr.PrefixFor(o, idx),
			Origin: o,
		})
		b.Size++
	}
	sort.SliceStable(b.Events, func(i, j int) bool { return b.Events[i].At < b.Events[j].At })
	return b
}

// failureDistance returns the hop index (1-based from the neighbor) of
// the first failed link on path, approximating how far the failure news
// travels before reaching the session.
func failureDistance(path []uint32, failed []topology.Link) int {
	for i := 0; i+1 < len(path); i++ {
		l := topology.MakeLink(path[i], path[i+1])
		for _, f := range failed {
			if l == f {
				return i + 1
			}
		}
	}
	return len(path)
}

func samePath(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Fig1Network builds the complete running example of the paper: the
// Fig. 1 topology, the partial-transit policy, AS 1's explicit neighbor
// preference (2, then 4, then 3), and Fig. 4's prefix counts scaled so
// AS 7/8 originate scale prefixes each.
func Fig1Network(scale int) *Network {
	origins := topology.Fig1Origins(scale)
	return &Network{
		Graph: topology.Fig1(),
		Policy: &Policy{
			// AS 3 sells AS 5 partial transit covering only AS 7's
			// prefixes (§2.1: AS 5 has a backup for S7 but not S6/S8).
			Export: func(exporter, importer, origin uint32) bool {
				if exporter == 3 && importer == 5 {
					return origin == 7
				}
				if exporter == 5 && importer == 3 {
					// 3 only announces S7 to 5; symmetrically 5 does not
					// give 3 transit (3 reaches everything via 6 anyway).
					return false
				}
				return true
			},
			// The paper pins AS 1's primary to the 2→5→6 chain.
			Prefer: map[uint32][]uint32{1: {2, 4, 3}},
		},
		Origins: origins,
	}
}
