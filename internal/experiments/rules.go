package experiments

import (
	"fmt"
	"strings"
	"time"

	"swift/internal/dataplane"
	"swift/internal/inference"
	"swift/internal/stats"
	"swift/internal/trace"
)

// RulesResult reproduces §6.5's data-plane update accounting: the
// distribution of inferred-link counts per burst and the implied number
// of rule updates and FIB latency.
type RulesResult struct {
	LinksMedian, LinksP90 float64
	RulesMedian, RulesP90 float64
	TimeMedian, TimeP90   time.Duration
	BackupNextHops        int
	N                     int
}

// Rules runs the first-inference link counts over the sessions' bursts,
// with backupNHs modeling how many distinct backup next-hops the router
// has (the paper uses 16: rules = links x backups).
func Rules(ds *trace.Dataset, sessions []trace.Session, minBurst, backupNHs int) RulesResult {
	if backupNHs <= 0 {
		backupNHs = 16
	}
	cfg := inference.Default()
	cfg.UseHistory = true
	var links, rules, times []float64
	for _, s := range sessions {
		st := newSessionState(ds, s)
		for _, b := range ds.BurstsAt(s, minBurst) {
			ev := st.evalBurst(b, cfg, false, false)
			if ev.Missed {
				continue
			}
			nLinks := len(ev.Links)
			nRules := nLinks * backupNHs
			links = append(links, float64(nLinks))
			rules = append(rules, float64(nRules))
			times = append(times, float64(time.Duration(nRules)*dataplane.DefaultRuleUpdate))
		}
	}
	return RulesResult{
		LinksMedian:    stats.Percentile(links, 50),
		LinksP90:       stats.Percentile(links, 90),
		RulesMedian:    stats.Percentile(rules, 50),
		RulesP90:       stats.Percentile(rules, 90),
		TimeMedian:     time.Duration(stats.Percentile(times, 50)),
		TimeP90:        time.Duration(stats.Percentile(times, 90)),
		BackupNextHops: backupNHs,
		N:              len(links),
	}
}

// String renders the §6.5 summary.
func (r RulesResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec 6.5: data-plane updates per inference (%d bursts, %d backup next-hops)\n", r.N, r.BackupNextHops)
	fmt.Fprintf(&sb, "links inferred: median %.0f (paper 4), p90 %.0f (paper 29)\n", r.LinksMedian, r.LinksP90)
	fmt.Fprintf(&sb, "rule updates  : median %.0f (paper 64), p90 %.0f (paper 464)\n", r.RulesMedian, r.RulesP90)
	fmt.Fprintf(&sb, "FIB time      : median %v, p90 %v (paper: within 130 ms)\n", r.TimeMedian, r.TimeP90)
	return sb.String()
}
