package experiments

import (
	"fmt"
	"strings"

	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/topology"
	"swift/internal/trace"
)

// SafetyResult validates §3.3's guarantees empirically: whenever a
// SWIFTED router fast-reroutes, the chosen backup paths contain no
// loops and no failed links (Lemma 3.3), so rerouting strictly reduces
// disruption (Theorem 3.1) without creating forwarding loops
// (Theorem 3.2).
type SafetyResult struct {
	Bursts int
	// ReroutedPrefixes counts (burst, prefix) reroutes examined.
	ReroutedPrefixes int
	// LoopFree counts rerouted prefixes whose backup AS path is simple
	// (no repeated AS).
	LoopFree int
	// AvoidsFailure counts rerouted prefixes whose backup path avoids
	// every actually-failed link.
	AvoidsFailure int
	// Reaches counts rerouted prefixes whose backup path still reaches
	// the prefix's origin in the post-failure topology.
	Reaches int
}

// Safety replays bursts, performs the engine's reroute decision, and
// verifies each diverted prefix's backup path against the ground truth.
func Safety(ds *trace.Dataset, sessions []trace.Session, minBurst int) SafetyResult {
	cfg := inference.Default()
	cfg.UseHistory = false
	var res SafetyResult
	for _, s := range sessions {
		st := newSessionState(ds, s)
		plan := st.plan(nil, 5)
		for _, b := range ds.BurstsAt(s, minBurst) {
			ev := st.evalBurst(b, cfg, true, false)
			if ev.Missed || ev.RIBAtInference == nil {
				continue
			}
			res.Bursts++
			failed := make(map[topology.Link]bool)
			for _, l := range b.FailedLinks {
				failed[l] = true
			}
			// Examine a sample of the predicted set (cap the work).
			sample := ev.Predicted
			if len(sample) > 500 {
				stride := len(sample) / 500
				var picked []netaddr.Prefix
				for i := 0; i < len(sample); i += stride {
					picked = append(picked, sample[i])
				}
				sample = picked
			}
			for _, p := range sample {
				// The engine diverts p at its deepest protected failed
				// link; find the backup the plan assigned.
				depth, ok := protectedDepth(st, p, ev.Links)
				if !ok {
					continue
				}
				backup := plan.BackupFor(p, depth)
				if backup == 0 {
					continue // not reroutable; packets keep BGP's fate
				}
				alt := st.alts[backup]
				if alt == nil {
					continue
				}
				path := alt.Path(p)
				if path == nil {
					continue
				}
				res.ReroutedPrefixes++
				if simplePath(s.Vantage, path) {
					res.LoopFree++
				}
				if avoidsAll(s.Vantage, path, failed) {
					res.AvoidsFailure++
					res.Reaches++ // pre-failure valid + no failed link = still valid (§3.3 proof)
				}
			}
		}
	}
	return res
}

// protectedDepth returns the first depth at which p's path crosses one
// of the inferred links.
func protectedDepth(st *sessionState, p netaddr.Prefix, links []topology.Link) (int, bool) {
	path := st.master.Path(p)
	if path == nil {
		return 0, false
	}
	prev := st.session.Vantage
	depth := 0
	for _, as := range path {
		if as == prev {
			continue
		}
		depth++
		l := topology.MakeLink(prev, as)
		for _, il := range links {
			if l == il {
				return depth, true
			}
		}
		prev = as
	}
	return 0, false
}

func simplePath(local uint32, path []uint32) bool {
	seen := map[uint32]bool{local: true}
	for _, as := range path {
		if seen[as] {
			return false
		}
		seen[as] = true
	}
	return true
}

func avoidsAll(local uint32, path []uint32, failed map[topology.Link]bool) bool {
	prev := local
	for _, as := range path {
		if as != prev && failed[topology.MakeLink(prev, as)] {
			return false
		}
		prev = as
	}
	return true
}

// String renders the safety report.
func (r SafetyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec 3.3 safety check over %d bursts, %d rerouted prefixes sampled\n",
		r.Bursts, r.ReroutedPrefixes)
	pct := func(n int) float64 {
		if r.ReroutedPrefixes == 0 {
			return 0
		}
		return 100 * float64(n) / float64(r.ReroutedPrefixes)
	}
	fmt.Fprintf(&sb, "loop-free backup paths     : %.2f%%\n", pct(r.LoopFree))
	fmt.Fprintf(&sb, "backup avoids failed links : %.2f%% (paper: very few disrupted backups)\n", pct(r.AvoidsFailure))
	return sb.String()
}
