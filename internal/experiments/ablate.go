package experiments

import (
	"fmt"
	"sort"
	"strings"

	"swift/internal/inference"
	"swift/internal/stats"
	"swift/internal/trace"
)

// AblationRow is one configuration's aggregate accuracy.
type AblationRow struct {
	Name      string
	MedianTPR float64
	MedianFPR float64
	TopLeft   float64 // share of bursts in Fig. 6's good quadrant
	Missed    int
	N         int
}

// AblationResult collects rows for one swept knob.
type AblationResult struct {
	Knob string
	Rows []AblationRow
}

// ablate runs Fig. 6-style evaluation under each configuration.
func ablate(ds *trace.Dataset, sessions []trace.Session, minBurst int, knob string, cfgs map[string]inference.Config) AblationResult {
	res := AblationResult{Knob: knob}
	// Deterministic order: iterate a sorted name list.
	var names []string
	for name := range cfgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cfg := cfgs[name]
		var tprs, fprs []float64
		missed, total := 0, 0
		for _, s := range sessions {
			st := newSessionState(ds, s)
			for _, b := range ds.BurstsAt(s, minBurst) {
				total++
				ev := st.evalBurst(b, cfg, false, false)
				if ev.Missed {
					missed++
					continue
				}
				tprs = append(tprs, ev.TPR)
				fprs = append(fprs, ev.FPR)
			}
		}
		shares := stats.QuadrantShares(tprs, fprs)
		res.Rows = append(res.Rows, AblationRow{
			Name:      name,
			MedianTPR: stats.Percentile(tprs, 50),
			MedianFPR: stats.Percentile(fprs, 50),
			TopLeft:   shares[stats.TopLeft],
			Missed:    missed,
			N:         total,
		})
	}
	return res
}

// AblateWeights sweeps the Fit-Score weights (paper default 3:1).
func AblateWeights(ds *trace.Dataset, sessions []trace.Session, minBurst int) AblationResult {
	mk := func(wws, wps float64) inference.Config {
		c := inference.Default()
		c.WWS, c.WPS = wws, wps
		c.UseHistory = false
		return c
	}
	return ablate(ds, sessions, minBurst, "fit-score weights wWS:wPS", map[string]inference.Config{
		"1:3 (PS-heavy)":         mk(1, 3),
		"1:1 (balanced)":         mk(1, 1),
		"3:1 (paper default)":    mk(3, 1),
		"9:1 (WS-heavy extreme)": mk(9, 1),
	})
}

// AblateTrigger sweeps the inference trigger threshold (paper 2.5k).
func AblateTrigger(ds *trace.Dataset, sessions []trace.Session, minBurst int) AblationResult {
	mk := func(trigger int) inference.Config {
		c := inference.Default()
		c.TriggerEvery = trigger
		c.UseHistory = false
		return c
	}
	return ablate(ds, sessions, minBurst, "trigger threshold", map[string]inference.Config{
		"trigger 1000":           mk(1000),
		"trigger 2500 (default)": mk(2500),
		"trigger 5000":           mk(5000),
	})
}

// String renders an ablation table.
func (r AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", r.Knob)
	sb.WriteString("Config                    TPR-med  FPR-med  top-left  missed/n\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-25s %-8.2f %-8.3f %-9.2f %d/%d\n",
			row.Name, row.MedianTPR, row.MedianFPR, row.TopLeft, row.Missed, row.N)
	}
	return sb.String()
}
