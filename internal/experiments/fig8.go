package experiments

import (
	"fmt"
	"strings"

	"swift/internal/inference"
	"swift/internal/stats"
	"swift/internal/trace"
)

// Fig8Result reproduces Fig. 8: the CDF of per-withdrawal learning time
// for SWIFT (prediction time when predicted, arrival otherwise) versus
// BGP (arrival time), pooled over all bursts.
type Fig8Result struct {
	Swift, BGP *stats.CDF // seconds
}

// Fig8 gathers learning times over the sessions' bursts.
func Fig8(ds *trace.Dataset, sessions []trace.Session, minBurst int) Fig8Result {
	cfg := inference.Default()
	cfg.UseHistory = true
	var swiftT, bgpT []float64
	for _, s := range sessions {
		st := newSessionState(ds, s)
		for _, b := range ds.BurstsAt(s, minBurst) {
			ev := st.evalBurst(b, cfg, false, true)
			for i := range ev.BGPLearn {
				bgpT = append(bgpT, ev.BGPLearn[i].Seconds())
				swiftT = append(swiftT, ev.SwiftLearn[i].Seconds())
			}
		}
	}
	return Fig8Result{Swift: stats.NewCDF(swiftT), BGP: stats.NewCDF(bgpT)}
}

// String renders the reference quantiles (paper: SWIFT learns 50% in
// 2 s and 75% in 9 s; BGP needs 13 s and 32 s).
func (r Fig8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 8: learning-time CDF (seconds)\n")
	sb.WriteString("Quantile  SWIFT   BGP     (paper SWIFT / BGP)\n")
	paper := map[float64][2]string{0.5: {"2", "13"}, 0.75: {"9", "32"}}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		note := ""
		if p, ok := paper[q]; ok {
			note = fmt.Sprintf("(%ss / %ss)", p[0], p[1])
		}
		fmt.Fprintf(&sb, "%-9.2f %-7.1f %-7.1f %s\n", q, r.Swift.Quantile(q), r.BGP.Quantile(q), note)
	}
	fmt.Fprintf(&sb, "samples: %d withdrawals\n", r.BGP.N())
	return sb.String()
}
