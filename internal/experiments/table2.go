package experiments

import (
	"fmt"
	"strings"

	"swift/internal/inference"
	"swift/internal/stats"
	"swift/internal/trace"
)

// Table2Result reproduces Table 2: withdrawal-prediction performance
// (CPR/FPR/CP/FP percentiles) split into small (threshold..15k) and
// large (>15k) bursts, with the history model on.
type Table2Result struct {
	SplitAt      int
	Percentiles  []float64
	Small, Large Table2Block
}

// Table2Block is one half of the table.
type Table2Block struct {
	N   int
	CPR []float64 // per percentile, in %
	FPR []float64
	CP  []float64
	FP  []float64
}

// Table2 evaluates prediction quality on the sessions' bursts.
func Table2(ds *trace.Dataset, sessions []trace.Session, minBurst int) Table2Result {
	cfg := inference.Default()
	cfg.UseHistory = true
	res := Table2Result{
		SplitAt:     15000,
		Percentiles: []float64{10, 20, 30, 50, 70, 80, 90},
	}
	type row struct {
		cpr, fpr float64
		cp, fp   int
		size     int
	}
	var rows []row
	for _, s := range sessions {
		st := newSessionState(ds, s)
		for _, b := range ds.BurstsAt(s, minBurst) {
			ev := st.evalBurst(b, cfg, false, false)
			if ev.Missed {
				continue
			}
			rows = append(rows, row{cpr: ev.CPR, fpr: ev.FPR, cp: ev.CP, fp: ev.FP, size: ev.Size})
		}
	}
	fill := func(filter func(int) bool) Table2Block {
		var blk Table2Block
		var cprs, fprs, cps, fps []float64
		for _, r := range rows {
			if !filter(r.size) {
				continue
			}
			blk.N++
			cprs = append(cprs, 100*r.cpr)
			fprs = append(fprs, 100*r.fpr)
			cps = append(cps, float64(r.cp))
			fps = append(fps, float64(r.fp))
		}
		for _, p := range res.Percentiles {
			blk.CPR = append(blk.CPR, stats.Percentile(cprs, p))
			blk.FPR = append(blk.FPR, stats.Percentile(fprs, p))
			blk.CP = append(blk.CP, stats.Percentile(cps, p))
			blk.FP = append(blk.FP, stats.Percentile(fps, p))
		}
		return blk
	}
	res.Small = fill(func(n int) bool { return n <= res.SplitAt })
	res.Large = fill(func(n int) bool { return n > res.SplitAt })
	return res
}

// String renders the two blocks like the paper's Table 2.
func (r Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 2: withdrawal prediction (history model on)\n")
	render := func(name string, blk Table2Block) {
		fmt.Fprintf(&sb, "%s (%d bursts)\n", name, blk.N)
		sb.WriteString("      ")
		for _, p := range r.Percentiles {
			fmt.Fprintf(&sb, "%7.0fth", p)
		}
		sb.WriteString("\n")
		rows := []struct {
			label string
			vals  []float64
			pct   bool
		}{
			{"CPR", blk.CPR, true},
			{"FPR", blk.FPR, true},
			{"CP ", blk.CP, false},
			{"FP ", blk.FP, false},
		}
		for _, row := range rows {
			fmt.Fprintf(&sb, "%-6s", row.label)
			for _, v := range row.vals {
				if row.pct {
					fmt.Fprintf(&sb, "%8.2f%%", v)
				} else {
					fmt.Fprintf(&sb, "%9.0f", v)
				}
			}
			sb.WriteString("\n")
		}
	}
	render(fmt.Sprintf("burst size <= %d", r.SplitAt), r.Small)
	render(fmt.Sprintf("burst size  > %d", r.SplitAt), r.Large)
	return sb.String()
}
