package experiments

import (
	"fmt"
	"strings"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/router"
	"swift/internal/topology"
)

// Table1Row is one burst-size row of Table 1.
type Table1Row struct {
	Withdrawals   int
	PaperDowntime time.Duration
	Downtime      time.Duration
}

// Table1Result reproduces Table 1: data-plane downtime of a vanilla
// router versus burst size upon the Fig. 1 (5,6) failure.
type Table1Result struct {
	Rows []Table1Row
}

// paperTable1 holds the published numbers.
var paperTable1 = map[int]time.Duration{
	10000:  3800 * time.Millisecond,
	50000:  19 * time.Second,
	100000: 37900 * time.Millisecond,
	290000: 109 * time.Second,
}

// Table1 measures downtime for each burst size: AS 6 advertises the
// prefixes, link (5,6) fails, and the AS 1 router (vanilla BGP,
// per-prefix FIB writes) restores 100 probes as withdrawals drain in.
func Table1(sizes []int, seed int64) Table1Result {
	if len(sizes) == 0 {
		sizes = []int{10000, 50000, 100000, 290000}
	}
	var out Table1Result
	for _, n := range sizes {
		net := &bgpsim.Network{
			Graph:   topology.Fig1(),
			Policy:  bgpsim.Fig1Network(1).Policy,
			Origins: map[uint32]int{6: n},
		}
		b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.TestbedTiming(seed))
		if err != nil {
			panic(err) // static topology: cannot fail
		}
		restore := router.RestoreTimesBGP(b, router.PerPrefixUpdate)
		d := router.MeasureDowntime(restore, router.SampleProbes(b, 100))
		out.Rows = append(out.Rows, Table1Row{
			Withdrawals:   n,
			PaperDowntime: paperTable1[n],
			Downtime:      d.Last,
		})
	}
	return out
}

// String renders the table next to the paper's numbers.
func (r Table1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 1: data-plane downtime vs burst size (vanilla router)\n")
	sb.WriteString("Withdrawals   Paper (s)   Measured (s)\n")
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperDowntime > 0 {
			paper = fmt.Sprintf("%.1f", row.PaperDowntime.Seconds())
		}
		fmt.Fprintf(&sb, "%-13d %-11s %.1f\n", row.Withdrawals, paper, row.Downtime.Seconds())
	}
	return sb.String()
}
