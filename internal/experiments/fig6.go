package experiments

import (
	"fmt"
	"strings"

	"swift/internal/bgpsim"
	"swift/internal/inference"
	"swift/internal/stats"
	"swift/internal/topology"
	"swift/internal/trace"
)

// Fig6Result reproduces one panel of Fig. 6: per-burst (TPR, FPR)
// points of the first accepted inference, summarized by quadrant.
type Fig6Result struct {
	WithHistory bool
	TPRs, FPRs  []float64
	// Shares holds the fraction of bursts per quadrant (TopLeft,
	// TopRight, BottomLeft, BottomRight).
	Shares [4]float64
	// Missed counts bursts where the history gate never accepted.
	Missed int
	Total  int
}

// Fig6 replays every burst of at least minBurst withdrawals at the
// given sessions through the inference pipeline. withHistory selects
// the 6a (false) or 6b (true) panel.
func Fig6(ds *trace.Dataset, sessions []trace.Session, minBurst int, withHistory bool) Fig6Result {
	cfg := inference.Default()
	cfg.UseHistory = withHistory
	res := Fig6Result{WithHistory: withHistory}
	for _, s := range sessions {
		st := newSessionState(ds, s)
		for _, b := range ds.BurstsAt(s, minBurst) {
			res.Total++
			ev := st.evalBurst(b, cfg, false, false)
			if ev.Missed {
				res.Missed++
				continue
			}
			res.TPRs = append(res.TPRs, ev.TPR)
			res.FPRs = append(res.FPRs, ev.FPR)
		}
	}
	res.Shares = stats.QuadrantShares(res.TPRs, res.FPRs)
	return res
}

// String renders the quadrant shares the way Fig. 6 annotates them.
func (r Fig6Result) String() string {
	label := "without history (Fig 6a)"
	paper := [4]float64{0.758, 0.119, 0.123, 0}
	if r.WithHistory {
		label = "with history (Fig 6b)"
		paper = [4]float64{0.851, 0.053, 0.096, 0}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 6 %s: %d bursts evaluated, %d missed by the gate\n", label, len(r.TPRs), r.Missed)
	sb.WriteString("Quadrant      Paper   Measured\n")
	names := []string{"top-left  ", "top-right ", "bottom-left", "bottom-right"}
	for q := 0; q < 4; q++ {
		fmt.Fprintf(&sb, "%-13s %5.1f%%  %5.1f%%\n", names[q], 100*paper[q], 100*r.Shares[q])
	}
	return sb.String()
}

// SimLocalizationResult reproduces §6.2.2: inference accuracy on
// simulated bursts with ground truth, at burst end and early (after a
// fixed withdrawal count), with and without injected noise.
type SimLocalizationResult struct {
	Bursts int
	// At burst end:
	EndExact, EndSuperset, EndAdjacent, EndWrong int
	// Early (after earlyCount withdrawals):
	EarlyExact, EarlySuperset, EarlyAdjacent, EarlyWrong int
	// SafeBackups counts early inferences whose backup choice (links'
	// endpoints avoided) bypasses the actually failed link.
	SafeBackups int
}

// SimLocalization runs random link failures on a C-BGP-like network
// (every AS originating prefixesPerAS prefixes) and checks Theorem 4.1
// at burst end plus the early-inference behavior.
func SimLocalization(ds *trace.Dataset, sessions []trace.Session, minBurst, earlyCount, noise int) SimLocalizationResult {
	cfg := inference.Default()
	cfg.UseHistory = false
	var res SimLocalizationResult
	for _, s := range sessions {
		st := newSessionState(ds, s)
		for i := range ds.Failures {
			d := ds.Delta(i)
			w, _ := ds.Base.BurstSizeAt(d, s.Vantage, s.Neighbor)
			if w < minBurst {
				continue
			}
			tm := ds.Cfg.Timing
			tm.Seed = ds.Cfg.Seed ^ int64(i)<<17 ^ int64(s.Vantage)
			b := ds.Base.BurstAt(d, s.Vantage, s.Neighbor, tm)
			if noise > 0 {
				b.InjectNoise(ds.Net, noise, tm.Seed^0x5eed)
			}
			res.Bursts++

			failed := make(map[string]bool)
			endpointSet := make(map[uint32]bool)
			for _, l := range b.FailedLinks {
				failed[l.String()] = true
				endpointSet[l.A] = true
				endpointSet[l.B] = true
			}

			// End-of-burst inference.
			table := st.master.Clone()
			tr := inference.NewTracker(cfg, table)
			var early *inference.Result
			count := 0
			for _, e := range b.Events {
				if e.Kind == bgpsim.KindWithdraw {
					tr.ObserveWithdraw(e.Prefix)
					count++
					if early == nil && count == earlyCount {
						r := tr.Infer()
						early = &r
					}
				} else {
					tr.ObserveAnnounce(e.Prefix, e.Path)
				}
			}
			end := tr.Infer()

			exact, super, adj, wrong := gradeInference(end.Links, failed, endpointSet)
			res.EndExact += exact
			res.EndSuperset += super
			res.EndAdjacent += adj
			res.EndWrong += wrong

			if early == nil {
				early = &end
			}
			exact, super, adj, wrong = gradeInference(early.Links, failed, endpointSet)
			res.EarlyExact += exact
			res.EarlySuperset += super
			res.EarlyAdjacent += adj
			res.EarlyWrong += wrong

			// Safety: avoiding both endpoints of every inferred link
			// must bypass the actually failed links.
			safe := true
			avoided := make(map[uint32]bool)
			for _, l := range early.Links {
				avoided[l.A] = true
				avoided[l.B] = true
			}
			for _, l := range b.FailedLinks {
				if !avoided[l.A] && !avoided[l.B] {
					safe = false
				}
			}
			if safe {
				res.SafeBackups++
			}

			// Return the burst clone's path references to the shared
			// pool (the master table and later bursts keep theirs).
			tr.Reset()
			table.Release()
		}
	}
	return res
}

// gradeInference buckets an inference: exact (the failed set, or a
// subset of it for multi-link ground truth), superset (contains all
// failed links plus extras), adjacent (touches a failed endpoint), or
// wrong.
func gradeInference(links []topology.Link, failed map[string]bool, endpoints map[uint32]bool) (exact, superset, adjacent, wrong int) {
	if len(links) == 0 {
		return 0, 0, 0, 1
	}
	allFailed := true
	containsFailed := false
	touches := false
	for _, l := range links {
		if failed[l.String()] {
			containsFailed = true
		} else {
			allFailed = false
		}
		if endpoints[l.A] || endpoints[l.B] {
			touches = true
		}
	}
	switch {
	case containsFailed && allFailed:
		return 1, 0, 0, 0
	case containsFailed:
		return 0, 1, 0, 0
	case touches:
		return 0, 0, 1, 0
	default:
		return 0, 0, 0, 1
	}
}

// String renders the §6.2.2 summary.
func (r SimLocalizationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec 6.2.2 simulated localization over %d bursts\n", r.Bursts)
	pct := func(n int) float64 {
		if r.Bursts == 0 {
			return 0
		}
		return 100 * float64(n) / float64(r.Bursts)
	}
	fmt.Fprintf(&sb, "at burst end : exact %.0f%%  superset %.0f%%  adjacent %.0f%%  wrong %.0f%%\n",
		pct(r.EndExact), pct(r.EndSuperset), pct(r.EndAdjacent), pct(r.EndWrong))
	fmt.Fprintf(&sb, "early        : exact %.0f%%  superset %.0f%%  adjacent %.0f%%  wrong %.0f%%\n",
		pct(r.EarlyExact), pct(r.EarlySuperset), pct(r.EarlyAdjacent), pct(r.EarlyWrong))
	fmt.Fprintf(&sb, "early backups bypassing the failed link: %.1f%% (paper: all but 1 burst)\n", pct(r.SafeBackups))
	return sb.String()
}
