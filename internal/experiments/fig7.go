package experiments

import (
	"fmt"
	"strings"

	"swift/internal/encoding"
	"swift/internal/inference"
	"swift/internal/stats"
	"swift/internal/trace"
)

// Fig7Result reproduces Fig. 7: encoding performance (fraction of
// predicted prefixes actually reroutable by tag rules) as a function of
// the Part-1 bit budget, over all bursts and over bursts of at least
// 10k withdrawals.
type Fig7Result struct {
	Bits     []int
	All      []stats.Boxplot // per bit budget
	Large    []stats.Boxplot
	MinLarge int
}

// Fig7 evaluates the encoding bit sweep.
func Fig7(ds *trace.Dataset, sessions []trace.Session, minBurst int, bits []int) Fig7Result {
	if len(bits) == 0 {
		bits = []int{13, 18, 23, 28}
	}
	cfg := inference.Default()
	cfg.UseHistory = true
	res := Fig7Result{Bits: bits, MinLarge: 10000}

	perBitAll := make([][]float64, len(bits))
	perBitLarge := make([][]float64, len(bits))

	for _, s := range sessions {
		st := newSessionState(ds, s)
		plan := st.plan(nil, 5)
		// Compile one scheme per bit budget against the steady-state
		// table (tags are provisioned before failures).
		schemes := make([]*encoding.Scheme, len(bits))
		for i, b := range bits {
			ecfg := encoding.Default()
			ecfg.PathBits = b
			// Keep the 48-bit budget consistent: wider Part 1 comes at
			// no cost here because the NH groups fit in 30 bits anyway;
			// larger budgets model a wider tag carrier.
			if b+6*5 > ecfg.TagBits {
				ecfg.TagBits = b + 6*5
			}
			sc, err := encoding.Build(ecfg, st.master, plan)
			if err != nil {
				continue
			}
			schemes[i] = sc
		}
		for _, b := range ds.BurstsAt(s, minBurst) {
			ev := st.evalBurst(b, cfg, true, false)
			if ev.Missed || len(ev.Predicted) == 0 || ev.RIBAtInference == nil {
				continue
			}
			for i, sc := range schemes {
				if sc == nil {
					continue
				}
				covered := 0
				for _, p := range ev.Predicted {
					if sc.Reroutable(p, ev.Links, ev.RIBAtInference) {
						covered++
					}
				}
				perf := 100 * float64(covered) / float64(len(ev.Predicted))
				perBitAll[i] = append(perBitAll[i], perf)
				if ev.Size >= res.MinLarge {
					perBitLarge[i] = append(perBitLarge[i], perf)
				}
			}
		}
	}
	for i := range bits {
		res.All = append(res.All, stats.NewBoxplot(perBitAll[i]))
		res.Large = append(res.Large, stats.NewBoxplot(perBitLarge[i]))
	}
	return res
}

// String renders the sweep.
func (r Fig7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 7: encoding performance vs AS-path bits (paper: 18 bits -> 98.7% median)\n")
	sb.WriteString("Bits  all-median  all-mean  >=10k-median  >=10k-mean   (n)\n")
	for i, b := range r.Bits {
		fmt.Fprintf(&sb, "%-5d %-11.1f %-9.1f %-13.1f %-11.1f (%d)\n",
			b, r.All[i].Median, r.All[i].Mean, r.Large[i].Median, r.Large[i].Mean, r.All[i].N)
	}
	return sb.String()
}
