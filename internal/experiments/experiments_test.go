package experiments

import (
	"strings"
	"sync"
	"testing"

	"swift/internal/bgpsim"
	"swift/internal/trace"
)

// testDataset is a shared small dataset; experiments only read it.
var (
	dsOnce sync.Once
	dsMem  *trace.Dataset
)

func testDataset() *trace.Dataset {
	dsOnce.Do(func() {
		dsMem = trace.Generate(trace.Config{
			NumASes:           250,
			AvgDegree:         6,
			Sessions:          40,
			Days:              30,
			Failures:          50,
			MaxPrefixes:       8000,
			PopularASes:       5,
			ASFailureFraction: 0.15,
			Timing:            bgpsim.DefaultTiming(42),
			Seed:              42,
		})
	})
	return dsMem
}

// evalSessions picks a few sessions that actually see bursts.
func evalSessions(t *testing.T, ds *trace.Dataset, minBurst, want int) []trace.Session {
	t.Helper()
	census := ds.Census(minBurst)
	seen := map[trace.Session]bool{}
	var out []trace.Session
	for _, st := range census {
		if !seen[st.Session] {
			seen[st.Session] = true
			out = append(out, st.Session)
			if len(out) == want {
				break
			}
		}
	}
	if len(out) == 0 {
		t.Skip("no sessions with bursts at this scale")
	}
	return out
}

func TestTable1Shape(t *testing.T) {
	res := Table1([]int{2000, 10000}, 1)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[1].Downtime <= res.Rows[0].Downtime {
		t.Errorf("downtime must grow with burst size: %v vs %v",
			res.Rows[0].Downtime, res.Rows[1].Downtime)
	}
	// The 10k row is the paper's 3.8 s row: same order of magnitude.
	got := res.Rows[1].Downtime.Seconds()
	if got < 1 || got > 15 {
		t.Errorf("10k downtime = %.1fs; paper 3.8s, want same order", got)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("String() missing header")
	}
}

func TestFig2aShape(t *testing.T) {
	ds := testDataset()
	res := Fig2a(ds, 7)
	if len(res.Box) != 4 || len(res.Box[0]) != 3 {
		t.Fatalf("box dims = %dx%d", len(res.Box), len(res.Box[0]))
	}
	// More sessions must see at least as many bursts (medians).
	for j := range res.MinSizes {
		prev := -1.0
		for i := range res.SessionCounts {
			m := res.Box[i][j].Median
			if m < prev {
				t.Errorf("median bursts decreased with more sessions at min size %d", res.MinSizes[j])
			}
			prev = m
		}
	}
	// Larger min size, fewer bursts.
	for i := range res.SessionCounts {
		if res.Box[i][2].Median > res.Box[i][0].Median {
			t.Errorf("25k median above 5k median at %d sessions", res.SessionCounts[i])
		}
	}
	_ = res.String()
}

func TestFig2bShape(t *testing.T) {
	ds := testDataset()
	res := Fig2b(ds)
	if res.TotalBursts == 0 {
		t.Skip("no bursts at this scale")
	}
	// Large bursts last longer: compare medians where both exist.
	if res.LargeCDF.N() > 0 && res.SmallCDF.N() > 0 {
		if res.LargeCDF.Quantile(0.5) < res.SmallCDF.Quantile(0.5) {
			t.Error("large bursts should take longer than small ones")
		}
	}
	_ = res.String()
}

func TestFig6Shape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 3)
	noHist := Fig6(ds, sessions, 1500, false)
	if noHist.Total == 0 {
		t.Skip("no bursts")
	}
	if len(noHist.TPRs) == 0 {
		t.Fatal("no evaluated bursts without history")
	}
	// The paper's headline: no bad inferences (bottom-right empty), and
	// the top half dominates.
	if noHist.Shares[3] > 0.05 {
		t.Errorf("bottom-right share = %.2f; paper reports 0", noHist.Shares[3])
	}
	if noHist.Shares[0]+noHist.Shares[1] < 0.5 {
		t.Errorf("top half = %.2f; expected dominant", noHist.Shares[0]+noHist.Shares[1])
	}

	hist := Fig6(ds, sessions, 1500, true)
	_ = hist.String()
	_ = noHist.String()
}

func TestSimLocalizationShape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 2)
	res := SimLocalization(ds, sessions, 1500, 200, 0)
	if res.Bursts == 0 {
		t.Skip("no bursts")
	}
	wrongShare := float64(res.EndWrong) / float64(res.Bursts)
	if wrongShare > 0.1 {
		t.Errorf("end-of-burst wrong inferences = %.0f%%; theorem 4.1 expects ~0",
			100*wrongShare)
	}
	safeShare := float64(res.SafeBackups) / float64(res.Bursts)
	if safeShare < 0.9 {
		t.Errorf("safe backups = %.0f%%; paper reports all but one burst", 100*safeShare)
	}
	_ = res.String()

	noisy := SimLocalization(ds, sessions, 1500, 200, 200)
	if noisy.Bursts == 0 {
		t.Error("noise variant evaluated nothing")
	}
}

func TestTable2Shape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 3)
	res := Table2(ds, sessions, 1500)
	if res.Small.N+res.Large.N == 0 {
		t.Skip("no accepted inferences")
	}
	blk := res.Small
	if blk.N == 0 {
		blk = res.Large
	}
	// CPR percentiles are non-decreasing by construction.
	for i := 1; i < len(blk.CPR); i++ {
		if blk.CPR[i] < blk.CPR[i-1] {
			t.Fatal("CPR percentiles must be monotone")
		}
	}
	// Median CPR should be substantial (paper: ~90%).
	if mid := blk.CPR[3]; mid < 30 {
		t.Errorf("median CPR = %.1f%%; expected a strong prediction", mid)
	}
	_ = res.String()
}

func TestFig7Shape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 2)
	res := Fig7(ds, sessions, 1500, nil)
	if len(res.All) != 4 {
		t.Fatalf("bit budgets = %d", len(res.All))
	}
	if res.All[1].N == 0 {
		t.Skip("no encoded bursts")
	}
	// More bits, better or equal median coverage.
	for i := 1; i < len(res.Bits); i++ {
		if res.All[i].Median < res.All[i-1].Median-1e-9 {
			t.Errorf("coverage dropped from %d to %d bits: %.1f -> %.1f",
				res.Bits[i-1], res.Bits[i], res.All[i-1].Median, res.All[i].Median)
		}
	}
	// 18 bits must already cover the vast majority (paper: 98.7%).
	if res.All[1].Median < 60 {
		t.Errorf("18-bit median coverage = %.1f%%; expected strong coverage", res.All[1].Median)
	}
	_ = res.String()
}

func TestFig8Shape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 2)
	res := Fig8(ds, sessions, 1500)
	if res.BGP.N() == 0 {
		t.Skip("no withdrawals")
	}
	if res.Swift.N() != res.BGP.N() {
		t.Fatalf("sample counts differ: %d vs %d", res.Swift.N(), res.BGP.N())
	}
	// SWIFT must learn no later than BGP at every quantile.
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		if res.Swift.Quantile(q) > res.BGP.Quantile(q)+1e-9 {
			t.Errorf("SWIFT slower at q=%.2f: %.2fs vs %.2fs",
				q, res.Swift.Quantile(q), res.BGP.Quantile(q))
		}
	}
	// And strictly faster at the median (the 2s-vs-13s claim's shape).
	if res.Swift.Quantile(0.5) >= res.BGP.Quantile(0.5) {
		t.Error("SWIFT median learning time must beat BGP")
	}
	_ = res.String()
}

func TestRulesShape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 2)
	res := Rules(ds, sessions, 1500, 16)
	if res.N == 0 {
		t.Skip("no inferences")
	}
	if res.LinksMedian < 1 {
		t.Errorf("median links = %.1f", res.LinksMedian)
	}
	if res.RulesMedian != res.LinksMedian*16 {
		t.Errorf("rules = links x 16, got %.0f vs %.0f", res.RulesMedian, res.LinksMedian*16)
	}
	_ = res.String()
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(20000, 3)
	if res.BGPDowntime <= res.SwiftDowntime {
		t.Fatalf("SWIFT %v must beat BGP %v", res.SwiftDowntime, res.BGPDowntime)
	}
	// At 20k prefixes the speed-up is already large; the paper's 98%
	// needs 290k (checked in the bench harness). Demand >70% here.
	if res.SpeedupPct < 70 {
		t.Errorf("speed-up = %.1f%%; expected >70%% at 20k prefixes", res.SpeedupPct)
	}
	// Loss curves: BGP starts at 100%, SWIFT drops far earlier.
	if res.BGPSeries[0].Loss != 1 {
		t.Error("BGP loss must start at 100%")
	}
	_ = res.String()
}

func TestAblations(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 2)
	w := AblateWeights(ds, sessions, 1500)
	if len(w.Rows) != 4 {
		t.Fatalf("weight rows = %d", len(w.Rows))
	}
	tr := AblateTrigger(ds, sessions, 1500)
	if len(tr.Rows) != 3 {
		t.Fatalf("trigger rows = %d", len(tr.Rows))
	}
	_ = w.String()
	_ = tr.String()
}

func TestSafetyShape(t *testing.T) {
	ds := testDataset()
	sessions := evalSessions(t, ds, 1500, 2)
	res := Safety(ds, sessions, 1500)
	if res.Bursts == 0 || res.ReroutedPrefixes == 0 {
		t.Skip("no reroutes to verify")
	}
	if res.LoopFree != res.ReroutedPrefixes {
		t.Errorf("loop-free = %d of %d; Theorem 3.2 demands all",
			res.LoopFree, res.ReroutedPrefixes)
	}
	// The vast majority of backups must dodge the actual failure.
	// Assumption 2 is legitimately violated on some multi-link (AS)
	// failures, where the inference localizes one entry link and the
	// fallback backup crosses another dead link of the same router —
	// packets there are no worse off than under vanilla BGP (§3.3).
	if float64(res.AvoidsFailure) < 0.75*float64(res.ReroutedPrefixes) {
		t.Errorf("backups avoiding the failure = %d of %d; expected ≥75%%",
			res.AvoidsFailure, res.ReroutedPrefixes)
	}
	_ = res.String()
}

func TestScenarioMatrixRunner(t *testing.T) {
	rep, err := RunScenarioMatrix("smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) == 0 {
		t.Fatal("empty matrix report")
	}
	if rep.RemoteSwiftWins != rep.RemoteScenarios {
		t.Errorf("SWIFT strictly better on %d of %d remote scenarios",
			rep.RemoteSwiftWins, rep.RemoteScenarios)
	}
	out := RenderScenarioMatrix(rep)
	for _, r := range rep.Scenarios {
		if !strings.Contains(out, r.Name) {
			t.Errorf("rendering lacks scenario %q", r.Name)
		}
	}
	if _, err := RunScenarioMatrix("no-such-matrix", 1); err == nil {
		t.Error("unknown matrix did not error")
	}
}
