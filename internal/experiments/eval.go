// Package experiments regenerates every table and figure of the SWIFT
// paper's evaluation (§2, §6, §7). Each experiment returns a structured
// result plus a text rendering shaped like the paper's presentation, so
// the bench harness and cmd/swift-bench print comparable rows.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/scenario"
	"swift/internal/topology"
	"swift/internal/trace"
)

// RunScenarioMatrix evaluates a named failure-scenario matrix (see
// internal/scenario) — the packet-level complement of the paper-figure
// experiments below: instead of decision metrics it scores, per
// scenario and per session, the packets a SWIFTED router loses against
// a vanilla router on the same stream. Deterministic: same name and
// seed, byte-identical report.
func RunScenarioMatrix(name string, seed int64) (*scenario.MatrixReport, error) {
	return scenario.Run(name, seed)
}

// RenderScenarioMatrix renders a matrix report as the experiment
// tables do: one row per scenario plus the aggregate footer.
func RenderScenarioMatrix(rep *scenario.MatrixReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario matrix %q (seed %d): %d scenarios\n", rep.Matrix, rep.Seed, len(rep.Scenarios))
	fmt.Fprintf(&b, "%-26s %-20s %9s %10s %10s %8s\n", "scenario", "failure", "packets", "swift-lost", "bgp-lost", "saved")
	for _, r := range rep.Scenarios {
		saved := "-"
		if r.BGPLost > 0 {
			saved = fmt.Sprintf("%.1f%%", 100*float64(r.BGPLost-r.SwiftLost)/float64(r.BGPLost))
		}
		fmt.Fprintf(&b, "%-26s %-20s %9d %10d %10d %8s\n",
			r.Name, r.Failure, r.PacketsSent, r.SwiftLost, r.BGPLost, saved)
	}
	fmt.Fprintf(&b, "total: %d packets, swift lost %d, vanilla lost %d; remote failures: %d/%d strictly better with SWIFT\n",
		rep.PacketsSent, rep.SwiftLost, rep.BGPLost, rep.RemoteSwiftWins, rep.RemoteScenarios)
	return b.String()
}

// BurstEval is the per-burst outcome of replaying one burst through the
// inference (and optionally encoding) pipeline.
type BurstEval struct {
	// Size is the burst's withdrawal count; Duration its span.
	Size     int
	Duration time.Duration

	// Missed reports that the plausibility gate never accepted an
	// inference for this burst.
	Missed bool

	// First accepted inference:
	Links      []topology.Link
	InferredAt time.Duration
	Received   int

	// Fig. 6 metrics (positives = all withdrawals of the burst).
	TPR, FPR float64

	// Table 2 metrics (positives = withdrawals after the inference).
	CPR    float64
	CP, FP int

	// Learning times for Fig. 8: for every withdrawal, when SWIFT knew
	// (prediction time or arrival) and when BGP knew (arrival).
	SwiftLearn, BGPLearn []time.Duration

	// Predicted is the set the inference would reroute (active at
	// inference time); kept for the encoding evaluation.
	Predicted []netaddr.Prefix
	// RIBAtInference is the table snapshot used for encoding checks.
	RIBAtInference *rib.Table
}

// sessionState is the reusable per-session context: master RIB and the
// alternate tables of the vantage's other neighbors.
type sessionState struct {
	ds      *trace.Dataset
	session trace.Session
	master  *rib.Table
	alts    map[uint32]*rib.Table
	perOrig map[uint32][]uint32 // origin -> session path (for quick rebuilds)
}

// stateCache memoizes sessionState per (dataset, session): experiments
// share datasets and states are immutable after construction (bursts
// clone the master table).
var stateCache sync.Map // map[stateKey]*sessionState

type stateKey struct {
	ds *trace.Dataset
	s  trace.Session
}

// newSessionState expands a session's initial table once per dataset;
// individual bursts clone it.
func newSessionState(ds *trace.Dataset, s trace.Session) *sessionState {
	key := stateKey{ds: ds, s: s}
	if v, ok := stateCache.Load(key); ok {
		return v.(*sessionState)
	}
	st := buildSessionState(ds, s)
	stateCache.Store(key, st)
	return st
}

func buildSessionState(ds *trace.Dataset, s trace.Session) *sessionState {
	st := &sessionState{ds: ds, session: s, alts: make(map[uint32]*rib.Table)}
	st.master = rib.New(s.Vantage)
	st.perOrig = ds.SessionRIB(s)
	for origin, path := range st.perOrig {
		for i := 0; i < ds.Net.Origins[origin]; i++ {
			st.master.Announce(netaddr.PrefixFor(origin, i), path)
		}
	}
	for _, nb := range ds.Net.Graph.Neighbors(s.Vantage) {
		if nb.AS == s.Neighbor {
			continue
		}
		altByOrigin := ds.Net.SessionRIB(ds.Base.Sols, s.Vantage, nb.AS)
		alt := rib.New(s.Vantage)
		for origin, path := range altByOrigin {
			for i := 0; i < ds.Net.Origins[origin]; i++ {
				alt.Announce(netaddr.PrefixFor(origin, i), path)
			}
		}
		st.alts[nb.AS] = alt
	}
	return st
}

// evalBurst replays one burst against a fresh clone of the session
// table. keepRIB retains the inference-time table snapshot (needed by
// the encoding experiment); keepLearn retains per-withdrawal learning
// times (needed by Fig. 8).
func (st *sessionState) evalBurst(b *bgpsim.Burst, cfg inference.Config, keepRIB, keepLearn bool) BurstEval {
	table := st.master.Clone()
	startLen := table.Len()
	tracker := inference.NewTracker(cfg, table)
	// The working clone and the tracker's burst state hold references
	// into the session's shared path pool; return them when the burst
	// evaluation is done so a many-burst run doesn't pin every path it
	// ever withdrew. (The RIBAtInference snapshot, when kept, retains
	// its own references for the encoding experiment's lifetime.)
	defer func() {
		tracker.Reset()
		table.Release()
	}()

	ev := BurstEval{Size: b.Size, Duration: b.Duration(), Missed: true}

	trigger := cfg.TriggerEvery
	if trigger <= 0 {
		trigger = inference.Default().TriggerEvery
	}

	withdrawn := make(map[netaddr.Prefix]struct{}, b.Size)
	var wPrime map[netaddr.Prefix]struct{}
	predictedSet := make(map[netaddr.Prefix]struct{})
	lastTrigger := 0

	for _, e := range b.Events {
		switch e.Kind {
		case bgpsim.KindWithdraw:
			if keepLearn {
				ev.BGPLearn = append(ev.BGPLearn, e.At)
				if _, ok := predictedSet[e.Prefix]; ok && !ev.Missed {
					ev.SwiftLearn = append(ev.SwiftLearn, ev.InferredAt)
				} else {
					ev.SwiftLearn = append(ev.SwiftLearn, e.At)
				}
			}
			tracker.ObserveWithdraw(e.Prefix)
			withdrawn[e.Prefix] = struct{}{}
			if ev.Missed && tracker.Received()-lastTrigger >= trigger {
				lastTrigger = tracker.Received()
				res := tracker.Infer()
				if len(res.Links) == 0 || !res.Accepted {
					continue
				}
				ev.Missed = false
				ev.Links = res.Links
				ev.InferredAt = e.At
				ev.Received = res.Received
				ev.Predicted = tracker.PredictedPrefixes(res)
				for _, p := range ev.Predicted {
					predictedSet[p] = struct{}{}
				}
				wPrime = make(map[netaddr.Prefix]struct{}, len(ev.Predicted))
				for _, p := range ev.Predicted {
					wPrime[p] = struct{}{}
				}
				for _, p := range tracker.WithdrawnOn(res.Links) {
					wPrime[p] = struct{}{}
				}
				if keepRIB {
					ev.RIBAtInference = table.Clone()
				}
			}
		case bgpsim.KindAnnounce:
			tracker.ObserveAnnounce(e.Prefix, e.Path)
		}
	}

	if ev.Missed {
		return ev
	}

	// Fig. 6: positives = all withdrawn prefixes of the burst.
	var tp, fp int
	for p := range wPrime {
		if _, ok := withdrawn[p]; ok {
			tp++
		} else {
			fp++
		}
	}
	fn := len(withdrawn) - tp
	negatives := startLen - len(withdrawn)
	if tp+fn > 0 {
		ev.TPR = float64(tp) / float64(tp+fn)
	}
	if negatives > 0 {
		ev.FPR = float64(fp) / float64(negatives)
	}

	// Table 2: positives restricted to withdrawals after the inference.
	withdrawnAfter := 0
	cp := 0
	for _, e := range b.Events {
		if e.Kind != bgpsim.KindWithdraw || e.At <= ev.InferredAt {
			continue
		}
		withdrawnAfter++
		if _, ok := predictedSet[e.Prefix]; ok {
			cp++
		}
	}
	ev.CP = cp
	if withdrawnAfter > 0 {
		ev.CPR = float64(cp) / float64(withdrawnAfter)
	}
	fpPred := 0
	for p := range predictedSet {
		if _, ok := withdrawn[p]; !ok {
			fpPred++
		}
	}
	ev.FP = fpPred
	if negatives > 0 {
		ev.FPR = float64(fpPred) / float64(negatives)
	}
	return ev
}

// plan computes the reroute plan for the session's master table.
func (st *sessionState) plan(pol *reroute.Policy, depth int) *reroute.Plan {
	return reroute.Compute(st.session.Vantage, st.master, st.alts, pol, depth)
}
