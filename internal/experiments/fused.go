package experiments

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"swift/internal/scenario"
)

// RunScenarioMatrixMode evaluates a named matrix in one evaluation mode
// (scenario.ModePerPeer or scenario.ModeFused). Deterministic: same
// name, seed and mode, byte-identical report.
func RunScenarioMatrixMode(name string, seed int64, mode string) (*scenario.MatrixReport, error) {
	switch mode {
	case "", scenario.ModePerPeer:
		return scenario.RunMode(name, seed, false)
	case scenario.ModeFused:
		return scenario.RunMode(name, seed, true)
	}
	return nil, fmt.Errorf("experiments: unknown evaluation mode %q (have %q, %q)",
		mode, scenario.ModePerPeer, scenario.ModeFused)
}

// RunScenarioMatrixModeTimed is RunScenarioMatrixMode plus the
// evaluation wall clock. The elapsed time is returned out-of-band
// (never folded into the report), so the JSON stays byte-deterministic
// while callers — swift-eval prints it to stderr — can track how fast
// the batched forwarding path chews through a matrix.
func RunScenarioMatrixModeTimed(name string, seed int64, mode string) (*scenario.MatrixReport, time.Duration, error) {
	start := time.Now()
	rep, err := RunScenarioMatrixMode(name, seed, mode)
	return rep, time.Since(start), err
}

// ModeAggregate folds one mode's per-session rows of a scenario family
// into comparable totals. MeanRestore averages the sessions'
// time-to-restore (sessions that never lost a packet contribute zero,
// in both modes alike); FPR and FNR are unweighted session means.
type ModeAggregate struct {
	Lost        int64         `json:"lost"`
	MeanRestore time.Duration `json:"mean_restore_ns"`
	FP          int           `json:"fp"`
	FN          int           `json:"fn"`
	FPR         float64       `json:"fpr"`
	FNR         float64       `json:"fnr"`
	External    int           `json:"external_decisions,omitempty"`
	Vetoed      int           `json:"vetoed,omitempty"`
}

// FamilyDelta is one row of the per-peer vs fused comparison: a
// scenario family (the matrix name with size tokens stripped, so
// fig1-x150-3peer and fig1-x300-3peer fold into fig1-3peer) aggregated
// over every scenario and session in it, under both modes.
type FamilyDelta struct {
	Family       string        `json:"family"`
	Scenarios    int           `json:"scenarios"`
	Sessions     int           `json:"sessions"`
	MultiSession bool          `json:"multi_session"`
	PerPeer      ModeAggregate `json:"per_peer"`
	Fused        ModeAggregate `json:"fused"`
}

// ModeComparison is the paired-run output of CompareScenarioModes: the
// two full matrix reports plus the per-family fold.
type ModeComparison struct {
	Matrix   string                 `json:"matrix"`
	Seed     int64                  `json:"seed"`
	Families []FamilyDelta          `json:"families"`
	PerPeer  *scenario.MatrixReport `json:"per_peer"`
	Fused    *scenario.MatrixReport `json:"fused"`
}

// JSON renders the comparison with stable formatting (deterministic for
// a fixed matrix and seed, like the underlying reports).
func (c *ModeComparison) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// sizeToken matches the scale components of scenario names ("-x150",
// "-n28") so size variants of one shape collapse into a family.
var sizeToken = regexp.MustCompile(`-(x|n)[0-9]+`)

// FamilyOf maps a scenario name to its comparison family.
func FamilyOf(name string) string { return sizeToken.ReplaceAllString(name, "") }

// CompareScenarioModes runs the named matrix under both evaluation
// modes on the same seed (identical scenarios, events and flows) and
// folds the outcome per scenario family.
func CompareScenarioModes(name string, seed int64) (*ModeComparison, error) {
	pp, err := scenario.RunMode(name, seed, false)
	if err != nil {
		return nil, err
	}
	fu, err := scenario.RunMode(name, seed, true)
	if err != nil {
		return nil, err
	}
	c := &ModeComparison{Matrix: name, Seed: seed, PerPeer: pp, Fused: fu}

	type acc struct {
		delta        FamilyDelta
		ppRestore    time.Duration
		fuRestore    time.Duration
		ppFPR, ppFNR float64
		fuFPR, fuFNR float64
	}
	byFamily := make(map[string]*acc)
	var order []string
	for i, pr := range pp.Scenarios {
		fr := fu.Scenarios[i]
		if pr.Name != fr.Name {
			return nil, fmt.Errorf("experiments: mode reports diverge at scenario %d: %q vs %q", i, pr.Name, fr.Name)
		}
		fam := FamilyOf(pr.Name)
		a := byFamily[fam]
		if a == nil {
			a = &acc{delta: FamilyDelta{Family: fam}}
			byFamily[fam] = a
			order = append(order, fam)
		}
		a.delta.Scenarios++
		a.delta.Sessions += len(pr.Peers)
		if len(pr.Peers) > 1 {
			a.delta.MultiSession = true
		}
		a.delta.PerPeer.Lost += pr.SwiftLost
		a.delta.Fused.Lost += fr.SwiftLost
		for _, p := range pr.Peers {
			a.ppRestore += p.SwiftRestore
			a.ppFPR += p.FPR
			a.ppFNR += p.FNR
			a.delta.PerPeer.FP += p.FP
			a.delta.PerPeer.FN += p.FN
		}
		for _, p := range fr.Peers {
			a.fuRestore += p.SwiftRestore
			a.fuFPR += p.FPR
			a.fuFNR += p.FNR
			a.delta.Fused.FP += p.FP
			a.delta.Fused.FN += p.FN
			a.delta.Fused.External += p.External
			a.delta.Fused.Vetoed += p.Vetoed
		}
	}
	sort.Strings(order)
	for _, fam := range order {
		a := byFamily[fam]
		n := a.delta.Sessions
		if n > 0 {
			a.delta.PerPeer.MeanRestore = a.ppRestore / time.Duration(n)
			a.delta.Fused.MeanRestore = a.fuRestore / time.Duration(n)
			a.delta.PerPeer.FPR = a.ppFPR / float64(n)
			a.delta.PerPeer.FNR = a.ppFNR / float64(n)
			a.delta.Fused.FPR = a.fuFPR / float64(n)
			a.delta.Fused.FNR = a.fuFNR / float64(n)
		}
		c.Families = append(c.Families, a.delta)
	}
	return c, nil
}

// RenderModeComparison renders the per-family comparison table: packets
// lost, mean time-to-restore and the prediction error rates under both
// modes, plus how often fusion engaged (external pre-triggers applied
// and own inferences vetoed).
func RenderModeComparison(c *ModeComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %q seed %d: per-peer vs fused (%d scenarios)\n",
		c.Matrix, c.Seed, len(c.PerPeer.Scenarios))
	fmt.Fprintf(&b, "%-20s %4s  %19s  %23s  %17s  %15s  %9s\n",
		"family", "sess", "lost pp->fu", "restore pp->fu", "FPR pp->fu", "FNR pp->fu", "ext/veto")
	for _, f := range c.Families {
		mark := " "
		if f.MultiSession {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-19s%s %4d  %8d -> %8d  %10s -> %10s  %7.4f -> %7.4f  %6.3f -> %6.3f  %4d/%4d\n",
			f.Family, mark, f.Sessions,
			f.PerPeer.Lost, f.Fused.Lost,
			f.PerPeer.MeanRestore.Round(time.Millisecond), f.Fused.MeanRestore.Round(time.Millisecond),
			f.PerPeer.FPR, f.Fused.FPR,
			f.PerPeer.FNR, f.Fused.FNR,
			f.Fused.External, f.Fused.Vetoed)
	}
	fmt.Fprintf(&b, "total: swift lost %d (per-peer) vs %d (fused); * = multi-session family\n",
		c.PerPeer.SwiftLost, c.Fused.SwiftLost)
	return b.String()
}
