package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"swift/internal/stats"
	"swift/internal/trace"
)

// Fig2aResult reproduces Fig. 2a: the number of bursts per month a
// router would see as a function of how many peering sessions it
// maintains, for several minimum burst sizes.
type Fig2aResult struct {
	SessionCounts []int
	MinSizes      []int
	// Box[i][j] summarizes the burst count over random session subsets
	// of size SessionCounts[i] at minimum size MinSizes[j].
	Box [][]stats.Boxplot
}

// Fig2a samples random session subsets (as the paper does) and counts
// the month's bursts each subset observes.
func Fig2a(ds *trace.Dataset, seed int64) Fig2aResult {
	res := Fig2aResult{
		SessionCounts: []int{1, 5, 15, 30},
		MinSizes:      []int{5000, 10000, 25000},
	}
	// One census at the smallest threshold; filter per min size.
	census := ds.Census(1500)
	perSession := make(map[trace.Session][]int) // session -> burst sizes
	for _, st := range census {
		perSession[st.Session] = append(perSession[st.Session], st.Withdrawals)
	}
	rng := rand.New(rand.NewSource(seed))
	const trials = 200
	res.Box = make([][]stats.Boxplot, len(res.SessionCounts))
	for i, nSess := range res.SessionCounts {
		res.Box[i] = make([]stats.Boxplot, len(res.MinSizes))
		for j, minSize := range res.MinSizes {
			var counts []float64
			for t := 0; t < trials; t++ {
				subset := rng.Perm(len(ds.Sessions))
				n := nSess
				if n > len(subset) {
					n = len(subset)
				}
				count := 0
				for _, idx := range subset[:n] {
					for _, size := range perSession[ds.Sessions[idx]] {
						if size >= minSize {
							count++
						}
					}
				}
				counts = append(counts, float64(count))
			}
			res.Box[i][j] = stats.NewBoxplot(counts)
		}
	}
	return res
}

// String renders the figure as a table of medians and whiskers.
func (r Fig2aResult) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 2a: bursts per month vs number of peering sessions\n")
	sb.WriteString("Sessions  MinSize  P5    Median  P95\n")
	for i, n := range r.SessionCounts {
		for j, m := range r.MinSizes {
			b := r.Box[i][j]
			fmt.Fprintf(&sb, "%-9d %-8d %-5.0f %-7.0f %.0f\n", n, m, b.P5, b.Median, b.P95)
		}
	}
	return sb.String()
}

// Fig2bResult reproduces Fig. 2b: burst-duration CDFs split at 10k
// withdrawals, plus the headline shares (§2.2.1).
type Fig2bResult struct {
	SmallCDF, LargeCDF *stats.CDF // durations in seconds
	// Over10s and Over30s are the fractions of all bursts lasting
	// longer than 10 s / 30 s (paper: 37% and 9.7%).
	Over10s, Over30s float64
	// PopularShare is the fraction of bursts withdrawing prefixes of a
	// popular origin (paper: 84%).
	PopularShare float64
	TotalBursts  int
}

// Fig2b computes duration CDFs over the census.
func Fig2b(ds *trace.Dataset) Fig2bResult {
	census := ds.Census(1500)
	var small, large, all []float64
	popular := 0
	for _, st := range census {
		secs := st.Duration.Seconds()
		all = append(all, secs)
		if st.Withdrawals > 10000 {
			large = append(large, secs)
		} else {
			small = append(small, secs)
		}
		if st.Popular {
			popular++
		}
	}
	res := Fig2bResult{
		SmallCDF:    stats.NewCDF(small),
		LargeCDF:    stats.NewCDF(large),
		TotalBursts: len(census),
	}
	if len(all) > 0 {
		allCDF := stats.NewCDF(all)
		res.Over10s = 1 - allCDF.At(10)
		res.Over30s = 1 - allCDF.At(30)
		res.PopularShare = float64(popular) / float64(len(all))
	}
	return res
}

// String renders the CDF at the paper's reference points.
func (r Fig2bResult) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 2b: burst duration CDF (split at 10k withdrawals)\n")
	sb.WriteString("Duration(s)  CDF<=10k  CDF>10k\n")
	for _, d := range []float64{5, 10, 20, 30, 40, 60, 80} {
		fmt.Fprintf(&sb, "%-12.0f %-9.2f %.2f\n", d, r.SmallCDF.At(d), r.LargeCDF.At(d))
	}
	fmt.Fprintf(&sb, "bursts: %d total; >10s: %.1f%% (paper 37%%); >30s: %.1f%% (paper 9.7%%)\n",
		r.TotalBursts, 100*r.Over10s, 100*r.Over30s)
	fmt.Fprintf(&sb, "bursts touching popular origins: %.0f%% (paper 84%%)\n", 100*r.PopularShare)
	return sb.String()
}
