package experiments

import (
	"fmt"
	"strings"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/router"
	swiftengine "swift/internal/swift"
	"swift/internal/topology"
)

// Fig9Result reproduces the §7 case study: convergence of the vanilla
// router versus the SWIFTED one on a 290k-prefix burst, including the
// packet-loss time series of Fig. 9a.
type Fig9Result struct {
	Prefixes      int
	BGPDowntime   time.Duration
	SwiftDowntime time.Duration
	SpeedupPct    float64
	BGPSeries     []router.LossPoint
	SwiftSeries   []router.LossPoint
}

// Fig9 runs the case study at the given scale (the paper uses 290k).
func Fig9(prefixes int, seed int64) Fig9Result {
	net := &bgpsim.Network{
		Graph:   topology.Fig1(),
		Policy:  bgpsim.Fig1Network(1).Policy,
		Origins: map[uint32]int{6: prefixes},
	}
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.TestbedTiming(seed))
	if err != nil {
		panic(err)
	}

	// SWIFTED side: engine provisioned with AS 3 as the alternate.
	sols := net.Solve(net.Graph)
	cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = inference.Default()
	cfg.Inference.UseHistory = true
	e := swiftengine.New(cfg)
	for _, nb := range []uint32{2, 3, 4} {
		r, ok := sols[6].ExportTo(net.Graph, net.Policy, nb, 1)
		if !ok {
			continue
		}
		for i := 0; i < prefixes; i++ {
			p := netaddr.PrefixFor(6, i)
			if nb == 2 {
				e.LearnPrimary(p, r.Path)
			} else {
				e.LearnAlternate(nb, p, r.Path)
			}
		}
	}
	if err := e.Provision(); err != nil {
		panic(err)
	}
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			e.ObserveWithdraw(ev.At, ev.Prefix)
		} else {
			e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
		}
	}

	probes := router.SampleProbes(b, 100)
	bgpRestore := router.RestoreTimesBGP(b, router.PerPrefixUpdate)
	swiftRestore := router.RestoreTimesSwift(b, e.Decisions(), router.PerPrefixUpdate)
	dBGP := router.MeasureDowntime(bgpRestore, probes)
	dSwift := router.MeasureDowntime(swiftRestore, probes)

	step := dBGP.Last / 100
	if step <= 0 {
		step = time.Second
	}
	res := Fig9Result{
		Prefixes:      prefixes,
		BGPDowntime:   dBGP.Last,
		SwiftDowntime: dSwift.Last,
		BGPSeries:     router.LossSeries(bgpRestore, probes, step),
		SwiftSeries:   router.LossSeries(swiftRestore, probes, step),
	}
	if dBGP.Last > 0 {
		res.SpeedupPct = 100 * (1 - float64(dSwift.Last)/float64(dBGP.Last))
	}
	return res
}

// String renders the case-study summary and a coarse loss curve.
func (r Fig9Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 9a / Sec 7 case study (%d prefixes)\n", r.Prefixes)
	fmt.Fprintf(&sb, "vanilla router downtime : %.1fs (paper 109s at 290k)\n", r.BGPDowntime.Seconds())
	fmt.Fprintf(&sb, "SWIFTED router downtime : %.1fs (paper <2s)\n", r.SwiftDowntime.Seconds())
	fmt.Fprintf(&sb, "speed-up                : %.1f%% (paper 98%%)\n", r.SpeedupPct)
	sb.WriteString("loss curve (time -> loss%) BGP | SWIFT:\n")
	for i := 0; i < len(r.BGPSeries); i += len(r.BGPSeries)/10 + 1 {
		p := r.BGPSeries[i]
		sw := 0.0
		for _, q := range r.SwiftSeries {
			if q.T >= p.T {
				sw = q.Loss
				break
			}
		}
		fmt.Fprintf(&sb, "  %6.1fs  %5.1f%% | %5.1f%%\n", p.T.Seconds(), 100*p.Loss, 100*sw)
	}
	return sb.String()
}
