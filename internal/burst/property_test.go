package burst

import (
	"math/rand"
	"testing"
	"time"
)

// TestDetectorSegmenterAgree replays random withdrawal streams through
// both the streaming Detector and the batch Segmenter and checks they
// find the same number of bursts — the streaming path is what the
// engine uses, the batch path what the §2.2 census uses.
func TestDetectorSegmenterAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		cfg := Config{StartThreshold: 50, StopThreshold: 5}
		var times []time.Duration
		clock := time.Duration(0)
		// Random alternation of dense bursts and quiet gaps.
		nBursts := 1 + rng.Intn(4)
		for b := 0; b < nBursts; b++ {
			clock += time.Duration(30+rng.Intn(60)) * time.Second
			n := 100 + rng.Intn(400)
			for i := 0; i < n; i++ {
				clock += time.Duration(rng.Intn(10)) * time.Millisecond
				times = append(times, clock)
			}
		}
		spans := Segment(cfg, times)
		if len(spans) != nBursts {
			t.Fatalf("trial %d: segmenter found %d bursts, generated %d", trial, len(spans), nBursts)
		}

		d := NewDetector(cfg, nil)
		started := 0
		for _, at := range times {
			if d.ObserveWithdrawal(at) == Started {
				started++
			}
			// Ticks between messages let the detector close quiet bursts.
			d.Tick(at + 1)
		}
		d.Tick(clock + time.Minute)
		if started != nBursts {
			t.Fatalf("trial %d: detector started %d bursts, generated %d", trial, started, nBursts)
		}
	}
}

// TestSegmentWithdrawalConservation: every generated withdrawal inside
// a dense region is attributed to exactly one burst.
func TestSegmentWithdrawalConservation(t *testing.T) {
	cfg := Config{StartThreshold: 100, StopThreshold: 5}
	var times []time.Duration
	const perBurst = 1000
	for b := 0; b < 3; b++ {
		base := time.Duration(b) * time.Hour
		for i := 0; i < perBurst; i++ {
			times = append(times, base+time.Duration(i)*time.Millisecond)
		}
	}
	spans := Segment(cfg, times)
	total := 0
	for _, s := range spans {
		total += s.Withdrawals
	}
	if total != 3*perBurst {
		t.Errorf("attributed %d withdrawals, generated %d", total, 3*perBurst)
	}
}
