package burst

import (
	"fmt"
	"time"
)

// Warm-restart images for the adaptive-threshold state. The History's
// Fenwick tree collapses to its sparse per-value counts (canonical:
// ascending by value, zero counts omitted), which is both the smallest
// faithful representation and one that re-serializes identically after
// a restore. The Detector carries its window verbatim so a snapshot
// taken mid-stream resumes with the same thresholds armed.

// HistoryCount is one (window count value, occurrences) pair.
type HistoryCount struct {
	Value int
	Count int
}

// HistoryImage is the recorded distribution, ascending by Value.
type HistoryImage struct {
	Counts []HistoryCount
}

// Export captures the recorded window-count distribution.
func (h *History) Export() HistoryImage {
	var img HistoryImage
	for v := 1; v <= h.size; v++ {
		if c := h.prefix(v) - h.prefix(v-1); c > 0 {
			img.Counts = append(img.Counts, HistoryCount{Value: v - 1, Count: c})
		}
	}
	return img
}

// Restore rebuilds an empty history from img in one re-treeing pass —
// the same bulk build grow uses — instead of Record-ing sample by
// sample.
func (h *History) Restore(img HistoryImage) error {
	if h.n != 0 {
		return fmt.Errorf("burst: restore into non-empty history (%d samples)", h.n)
	}
	if len(img.Counts) == 0 {
		return nil
	}
	size := 256
	for i, c := range img.Counts {
		if c.Value < 0 || c.Count <= 0 {
			return fmt.Errorf("burst: restore: invalid history pair (%d, %d)", c.Value, c.Count)
		}
		if i > 0 && c.Value <= img.Counts[i-1].Value {
			return fmt.Errorf("burst: restore: history values not ascending at %d", c.Value)
		}
	}
	for size < img.Counts[len(img.Counts)-1].Value+1 {
		size *= 2
	}
	h.size = size
	h.tree = make([]int, size+1)
	for _, c := range img.Counts {
		for i := c.Value + 1; i <= size; i += i & -i {
			h.tree[i] += c.Count
		}
		h.n += c.Count
	}
	return nil
}

// DetectorImage is a detector's phase plus its sliding window, oldest
// first (the ring is exported compacted, so restoring resets head to
// zero without changing behavior).
type DetectorImage struct {
	State   State
	Started time.Duration
	Count   int
	Times   []time.Duration
}

// Export captures the detector's phase and window.
func (d *Detector) Export() DetectorImage {
	return DetectorImage{
		State:   d.state,
		Started: d.started,
		Count:   d.count,
		Times:   append([]time.Duration(nil), d.times[d.head:]...),
	}
}

// Restore loads img into a fresh detector (config and history binding
// come from the constructor, not the image).
func (d *Detector) Restore(img DetectorImage) error {
	if len(d.times) != d.head {
		return fmt.Errorf("burst: restore into non-empty detector window")
	}
	if img.State != Quiet && img.State != InBurst {
		return fmt.Errorf("burst: restore: unknown detector state %d", img.State)
	}
	for i := 1; i < len(img.Times); i++ {
		if img.Times[i] < img.Times[i-1] {
			return fmt.Errorf("burst: restore: window times not monotone at %d", i)
		}
	}
	d.state = img.State
	d.started = img.Started
	d.count = img.Count
	d.times = append([]time.Duration(nil), img.Times...)
	d.head = 0
	return nil
}
