package burst

import (
	"testing"
	"time"
)

// BenchmarkDetector measures the sliding-window hot path.
func BenchmarkDetector(b *testing.B) {
	d := NewDetector(Config{}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ObserveWithdrawal(time.Duration(i) * 100 * time.Microsecond)
	}
}
