package burst

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestDetectorStartsOnDenseWindow(t *testing.T) {
	d := NewDetector(Config{StartThreshold: 100, StopThreshold: 5}, nil)
	tr := None
	for i := 0; i < 100; i++ {
		tr = d.ObserveWithdrawal(ms(i))
	}
	if tr != Started {
		t.Fatalf("100th withdrawal in 100ms should start a burst, got %v", tr)
	}
	if d.State() != InBurst {
		t.Error("state should be InBurst")
	}
	if d.BurstCount() != 100 {
		t.Errorf("burst count = %d", d.BurstCount())
	}
}

func TestDetectorIgnoresSparseStream(t *testing.T) {
	d := NewDetector(Config{StartThreshold: 10, StopThreshold: 2}, nil)
	// One withdrawal per minute: the 10s window never fills.
	for i := 0; i < 100; i++ {
		if tr := d.ObserveWithdrawal(time.Duration(i) * time.Minute); tr != None {
			t.Fatalf("sparse stream started a burst at %d", i)
		}
	}
}

func TestDetectorEndsOnQuiet(t *testing.T) {
	d := NewDetector(Config{StartThreshold: 50, StopThreshold: 5}, nil)
	for i := 0; i < 60; i++ {
		d.ObserveWithdrawal(ms(i * 10))
	}
	if d.State() != InBurst {
		t.Fatal("burst should have started")
	}
	// Long silence: the window drains past the stop threshold.
	if tr := d.Tick(ms(600) + DefaultWindow); tr != Ended {
		t.Fatalf("Tick after silence = %v, want Ended", tr)
	}
	if d.State() != Quiet {
		t.Error("state should be Quiet")
	}
	if d.BurstCount() != 0 {
		t.Error("burst count must reset")
	}
}

func TestDetectorCountsWholeBurst(t *testing.T) {
	d := NewDetector(Config{StartThreshold: 10, StopThreshold: 1}, nil)
	n := 0
	for i := 0; i < 500; i++ {
		if d.ObserveWithdrawal(ms(i)) == Started {
			n = d.BurstCount()
		}
	}
	if n != 10 {
		t.Errorf("count at start = %d, want 10", n)
	}
	if d.BurstCount() != 500 {
		t.Errorf("final count = %d, want 500", d.BurstCount())
	}
}

func TestDetectorNonMonotoneClamped(t *testing.T) {
	d := NewDetector(Config{StartThreshold: 3, StopThreshold: 1}, nil)
	d.ObserveWithdrawal(ms(100))
	d.ObserveWithdrawal(ms(50)) // goes back in time: clamped
	if tr := d.ObserveWithdrawal(ms(100)); tr != Started {
		t.Errorf("clamped stream should still trigger, got %v", tr)
	}
}

func TestHistoryPercentiles(t *testing.T) {
	var h History
	for i := 1; i <= 10000; i++ {
		h.Record(i % 10) // window counts 0..9
	}
	if p := h.Percentile(90); p != 9 {
		t.Errorf("P90 = %d, want 9", p)
	}
	if h.N() != 10000 {
		t.Errorf("N = %d", h.N())
	}
	// The floor keeps quiet sessions from hair-triggering.
	if th := h.StartThreshold(1500); th != 1500 {
		t.Errorf("StartThreshold = %d, want floored 1500", th)
	}
	// A history with huge windows raises the threshold.
	var h2 History
	for i := 0; i < 10000; i++ {
		h2.Record(3000)
	}
	if th := h2.StartThreshold(1500); th != 3000 {
		t.Errorf("StartThreshold = %d, want 3000", th)
	}
}

func TestDetectorUsesHistoryThreshold(t *testing.T) {
	var h History
	for i := 0; i < 100000; i++ {
		h.Record(5) // very quiet history: threshold floors at min
	}
	d := NewDetector(Config{StartThreshold: 20, StopThreshold: 2}, &h)
	tr := None
	for i := 0; i < 20; i++ {
		tr = d.ObserveWithdrawal(ms(i))
	}
	if tr != Started {
		t.Errorf("history-floored threshold should trigger at 20, got %v", tr)
	}
}

func TestSegment(t *testing.T) {
	// 2000 withdrawals in 2 s, then silence, then 30 more spread out.
	var times []time.Duration
	for i := 0; i < 2000; i++ {
		times = append(times, ms(i))
	}
	for i := 0; i < 30; i++ {
		times = append(times, time.Minute+time.Duration(i)*time.Second)
	}
	spans := Segment(Config{}, times)
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Withdrawals < 2000 {
		t.Errorf("burst withdrawals = %d", spans[0].Withdrawals)
	}
	if spans[0].Duration() > 15*time.Second {
		t.Errorf("burst duration = %v", spans[0].Duration())
	}
}

func TestSegmentMultipleBursts(t *testing.T) {
	var times []time.Duration
	for b := 0; b < 3; b++ {
		base := time.Duration(b) * time.Hour
		for i := 0; i < 1600; i++ {
			times = append(times, base+ms(i*2))
		}
	}
	spans := Segment(Config{}, times)
	if len(spans) != 3 {
		t.Fatalf("found %d bursts, want 3", len(spans))
	}
}

func TestSegmentOpenEndedBurst(t *testing.T) {
	var times []time.Duration
	for i := 0; i < 1600; i++ {
		times = append(times, ms(i))
	}
	spans := Segment(Config{}, times)
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].End != times[len(times)-1] {
		t.Errorf("open burst end = %v", spans[0].End)
	}
}

func TestSegmentEmpty(t *testing.T) {
	if spans := Segment(Config{}, nil); len(spans) != 0 {
		t.Errorf("spans on empty input = %v", spans)
	}
}
