// Package burst implements SWIFT's burst detection (§4.1): a sliding
// window over the withdrawal stream whose start/stop thresholds come
// from percentiles of the session's recent history (99.99th and 90th of
// withdrawals seen over any window-sized period). It provides both a
// streaming Detector, used by the SWIFT engine, and a batch Segmenter
// used by the trace analysis of §2.2.
package burst

import (
	"time"
)

// DefaultWindow is the paper's 10-second sliding window.
const DefaultWindow = 10 * time.Second

// Default thresholds, the paper's calibration on RouteViews/RIS data:
// 1,500 withdrawals per window starts a burst (99.99th percentile), 9
// stops it (90th percentile).
const (
	DefaultStartThreshold = 1500
	DefaultStopThreshold  = 9
)

// Config parameterizes a Detector or Segmenter.
type Config struct {
	// Window is the sliding window size (default 10 s).
	Window time.Duration
	// StartThreshold begins a burst when the window holds this many
	// withdrawals (default 1,500). When a History is attached to a
	// Detector, its 99.99th percentile takes precedence.
	StartThreshold int
	// StopThreshold ends a burst when the window count drops to or
	// below it (default 9).
	StopThreshold int
}

func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

func (c Config) start() int {
	if c.StartThreshold <= 0 {
		return DefaultStartThreshold
	}
	return c.StartThreshold
}

func (c Config) stop() int {
	if c.StopThreshold <= 0 {
		return DefaultStopThreshold
	}
	return c.StopThreshold
}

// History tracks per-window withdrawal counts over a long period (the
// paper uses a month) and derives the adaptive thresholds. It sits on
// the engine's per-withdrawal hot path — Record runs once per message
// and the threshold percentile is consulted whenever the detector is
// quiet — so it keeps an order-statistics tree (a Fenwick tree over
// counts) instead of raw samples: Record and Percentile stay
// logarithmic in the largest count seen no matter how long the session
// has been up, where re-sorting raw samples degraded quadratically on
// long-lived engines.
type History struct {
	n    int
	size int   // tree capacity, a power of two
	tree []int // Fenwick tree over windowCount+1, 1-based
}

// Record adds one observed window count.
func (h *History) Record(windowCount int) {
	if windowCount < 0 {
		windowCount = 0
	}
	idx := windowCount + 1
	if idx > h.size {
		h.grow(idx)
	}
	for i := idx; i <= h.size; i += i & -i {
		h.tree[i]++
	}
	h.n++
}

// grow rebuilds the tree with capacity >= min (amortized: capacities
// double, and a session's window counts plateau at its burst peak).
func (h *History) grow(min int) {
	size := h.size
	if size == 0 {
		size = 256
	}
	for size < min {
		size *= 2
	}
	// Recover per-value counts from the old tree, then re-tree them.
	counts := make([]int, size+1)
	for v := 1; v <= h.size; v++ {
		counts[v] = h.prefix(v) - h.prefix(v-1)
	}
	h.size = size
	h.tree = make([]int, size+1)
	for v := 1; v <= size; v++ {
		if counts[v] == 0 {
			continue
		}
		for i := v; i <= size; i += i & -i {
			h.tree[i] += counts[v]
		}
	}
}

// prefix returns how many recorded samples have value+1 <= v.
func (h *History) prefix(v int) int {
	s := 0
	for i := v; i > 0; i -= i & -i {
		s += h.tree[i]
	}
	return s
}

// N returns the number of recorded samples.
func (h *History) N() int { return h.n }

// Percentile returns the p-th percentile (nearest-rank) of recorded
// window counts, or 0 with no samples.
func (h *History) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	idx := int(p / 100 * float64(h.n))
	if idx >= h.n {
		idx = h.n - 1
	}
	if idx < 0 {
		idx = 0
	}
	// Select the (idx+1)-th smallest sample by descending the tree.
	k := idx + 1
	pos := 0
	for bit := h.size; bit > 0; bit >>= 1 {
		if next := pos + bit; next <= h.size && h.tree[next] < k {
			pos = next
			k -= h.tree[next]
		}
	}
	return pos // stored as value+1 at index pos+1
}

// StartThreshold returns the burst-start threshold implied by history
// (99.99th percentile, floored at min so a quiet session does not
// trigger on every withdrawal).
func (h *History) StartThreshold(min int) int {
	t := h.Percentile(99.99)
	if t < min {
		return min
	}
	return t
}

// State is the detector's current phase.
type State int

// Detector states.
const (
	Quiet State = iota
	InBurst
)

// Detector consumes a timestamped withdrawal stream and reports burst
// boundaries. Time is a monotone offset (the replay and trace formats
// use offsets from an epoch); feeding non-monotone times is an error
// tolerated by clamping.
type Detector struct {
	cfg     Config
	hist    *History
	state   State
	times   []time.Duration // withdrawal times within the window (ring as slice)
	head    int
	started time.Duration
	count   int // withdrawals in current burst
}

// NewDetector returns a detector. hist may be nil to use the static
// thresholds in cfg.
func NewDetector(cfg Config, hist *History) *Detector {
	return &Detector{cfg: cfg, hist: hist}
}

// State returns the current phase.
func (d *Detector) State() State { return d.state }

// BurstCount returns the number of withdrawals observed in the current
// burst (0 when quiet).
func (d *Detector) BurstCount() int {
	if d.state != InBurst {
		return 0
	}
	return d.count
}

// BurstStart returns the time the current burst began.
func (d *Detector) BurstStart() time.Duration { return d.started }

// Transition describes what a call to Observe caused.
type Transition int

// Observe outcomes.
const (
	None Transition = iota
	Started
	Ended
)

// evict drops window entries older than at-window.
func (d *Detector) evict(at time.Duration) {
	w := d.cfg.window()
	for d.head < len(d.times) && d.times[d.head] <= at-w {
		d.head++
	}
	if d.head > 1024 && d.head*2 > len(d.times) {
		d.times = append([]time.Duration(nil), d.times[d.head:]...)
		d.head = 0
	}
}

func (d *Detector) windowCount() int { return len(d.times) - d.head }

// startThreshold resolves the effective start threshold.
func (d *Detector) startThreshold() int {
	if d.hist != nil && d.hist.N() > 0 {
		return d.hist.StartThreshold(d.cfg.start())
	}
	return d.cfg.start()
}

// ObserveWithdrawal feeds one withdrawal at the given offset.
func (d *Detector) ObserveWithdrawal(at time.Duration) Transition {
	if n := len(d.times); n > d.head && at < d.times[n-1] {
		at = d.times[n-1] // clamp non-monotone input
	}
	d.times = append(d.times, at)
	d.evict(at)
	if d.hist != nil {
		d.hist.Record(d.windowCount())
	}
	if d.state == Quiet && d.windowCount() >= d.startThreshold() {
		d.state = InBurst
		d.started = at
		d.count = d.windowCount()
		return Started
	}
	if d.state == InBurst {
		d.count++
	}
	return None
}

// Tick advances time without a withdrawal (announcements and keepalives
// drive this), possibly ending a burst.
func (d *Detector) Tick(at time.Duration) Transition {
	d.evict(at)
	if d.state == InBurst && d.windowCount() <= d.cfg.stop() {
		d.state = Quiet
		return Ended
	}
	return None
}

// Span is one burst found by the batch Segmenter.
type Span struct {
	Start, End time.Duration
	// Withdrawals counts withdrawal messages inside the span.
	Withdrawals int
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Segment finds bursts in a batch of withdrawal offsets (sorted
// ascending) the way §2.2.1 does: a burst starts when the window count
// rises above cfg's start threshold and stops when it falls below the
// stop threshold.
func Segment(cfg Config, times []time.Duration) []Span {
	w, start, stop := cfg.window(), cfg.start(), cfg.stop()
	var spans []Span
	var cur *Span
	head := 0
	for i, at := range times {
		for head < i && times[head] <= at-w {
			head++
		}
		count := i - head + 1
		if cur == nil && count >= start {
			spans = append(spans, Span{Start: times[head]})
			cur = &spans[len(spans)-1]
			cur.Withdrawals = count
			continue
		}
		if cur != nil {
			if count <= stop {
				// The window has drained: the burst really ended at the
				// last withdrawal before this gap, and the current
				// (post-gap) withdrawal is not part of it.
				cur.End = times[i-1]
				cur = nil
				continue
			}
			cur.Withdrawals++
		}
	}
	if cur != nil {
		cur.End = times[len(times)-1]
	}
	return spans
}
