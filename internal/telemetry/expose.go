package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sort by
// name, series by label values, so two scrapes of identical state are
// byte-identical — which is what the golden tests pin.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		writeHeader(bw, f)
		switch f.k {
		case kindCounterFunc, kindGaugeFunc:
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(f.fn()))
			bw.WriteByte('\n')
			continue
		}
		for _, s := range f.snapshot() {
			switch f.k {
			case kindCounter:
				writeSample(bw, f.name, "", f.labels, s.values, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", f.labels, s.values, "", s.g.Value())
			case kindHistogram:
				writeHistogram(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

// ServeHTTP makes the registry a GET /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

func writeHeader(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.k.promType())
	w.WriteByte('\n')
}

// writeHistogram renders one series' cumulative buckets, sum and count.
func writeHistogram(w *bufio.Writer, f *family, s *series) {
	h := s.h
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(w, f.name, "_bucket", f.labels, s.values, formatValue(ub), float64(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(w, f.name, "_bucket", f.labels, s.values, "+Inf", float64(cum))
	writeRaw(w, f.name+"_sum", f.labels, s.values, h.Sum())
	writeRaw(w, f.name+"_count", f.labels, s.values, float64(h.Count()))
}

func writeRaw(w *bufio.Writer, name string, labels, values []string, v float64) {
	writeSample(w, name, "", labels, values, "", v)
}

// writeSample renders one line: name[suffix]{labels...[,le="le"]} value.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders integers without an exponent and everything else
// in shortest-roundtrip form, matching what Prometheus parsers expect.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
