package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metric family kinds. Func-backed families sample a callback at scrape
// time instead of holding series — the wrapper for counters that
// already exist as atomics elsewhere (a BMP station's message count),
// so wiring telemetry never double-counts or forks a data path.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one label-value combination of a family. Exactly one of
// c/g/h is set, matching the family kind.
type series struct {
	values []string
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	k      kind
	labels []string
	bounds []float64 // histogram kinds only

	fn func() float64 // func kinds only

	mu     sync.Mutex
	series map[string]*series
}

// seriesKey joins label values with an unprintable separator; label
// values are arbitrary strings, so a printable join could collide.
func seriesKey(values []string) string {
	return strings.Join(values, "\xff")
}

// with returns the keyed series, creating it on first use.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{values: append([]string(nil), values...), key: key}
		switch f.k {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		default:
			panic("telemetry: func-backed family has no series")
		}
		f.series[key] = s
	}
	return s
}

// snapshot returns the family's series sorted by label values, for
// deterministic exposition.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Registry holds metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use. Registering the same
// name twice with an identical schema returns the existing family
// (idempotent wiring); a schema mismatch panics — that is a programming
// error, caught at startup.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64, fn func() float64) *family {
	if !validName(name) {
		panic("telemetry: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName(l) {
			panic("telemetry: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.k != k || len(f.labels) != len(labels) {
			panic("telemetry: conflicting re-registration of " + name)
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic("telemetry: conflicting labels on re-registration of " + name)
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		k:      k,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		fn:     fn,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).with(nil).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).with(nil).g
}

// Histogram registers (or finds) an unlabeled histogram with the given
// cumulative upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets, nil).with(nil).h
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the bridge for counters that already live as atomics in
// another subsystem.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, kindCounterFunc, nil, nil, func() float64 { return float64(fn()) })
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// With returns the pre-resolved counter for the label values; hold the
// handle, don't call With on a hot path.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).c }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// With returns the pre-resolved gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).g }

// Reset drops every series of the family. Scrape-time collectors that
// re-enumerate a live population (e.g. per-peer FIB sizes) Reset then
// re-fill, so departed members don't linger as stale samples.
func (v *GaugeVec) Reset() {
	v.f.mu.Lock()
	v.f.series = make(map[string]*series)
	v.f.mu.Unlock()
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// With returns the pre-resolved histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).h }

// OnScrape registers fn to run at the start of every exposition pass,
// before any family renders. Collectors that derive gauges from live
// state (pool occupancy, fleet size, per-peer FIB rule counts) refresh
// them here instead of instrumenting the state's write paths.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// sortedFamilies runs the scrape hooks, then snapshots the family set
// ordered by name. Hooks run outside the registry lock so they may
// register families and resolve series freely.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	hooks := r.onScrape
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
