package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte: family
// ordering by name, series ordering by label values, help and label
// escaping, integer vs float rendering, cumulative histogram buckets
// with +Inf, _sum and _count, and func-backed sampling.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()

	c := reg.Counter("a_total", "line one\nline two \\ escaped")
	c.Add(3)

	vec := reg.CounterVec("b_peer_total", "per-peer counter", "peer")
	vec.With("AS2/00000001").Add(2)
	vec.With(`we"ird\`).Inc()

	g := reg.Gauge("c_gauge", "a float gauge")
	g.Set(2.5)

	h := reg.HistogramVec("d_latency_seconds", "a histogram", []float64{0.1, 1}, "peer")
	ph := h.With("p1")
	ph.Observe(0.05)
	ph.Observe(0.5)
	ph.Observe(5)

	reg.CounterFunc("e_sampled_total", "func-backed counter", func() uint64 { return 7 })
	reg.GaugeFunc("f_sampled", "func-backed gauge", func() float64 { return -1.5 })

	want := `# HELP a_total line one\nline two \\ escaped
# TYPE a_total counter
a_total 3
# HELP b_peer_total per-peer counter
# TYPE b_peer_total counter
b_peer_total{peer="AS2/00000001"} 2
b_peer_total{peer="we\"ird\\"} 1
# HELP c_gauge a float gauge
# TYPE c_gauge gauge
c_gauge 2.5
# HELP d_latency_seconds a histogram
# TYPE d_latency_seconds histogram
d_latency_seconds_bucket{peer="p1",le="0.1"} 1
d_latency_seconds_bucket{peer="p1",le="1"} 2
d_latency_seconds_bucket{peer="p1",le="+Inf"} 3
d_latency_seconds_sum{peer="p1"} 5.55
d_latency_seconds_count{peer="p1"} 3
# HELP e_sampled_total func-backed counter
# TYPE e_sampled_total counter
e_sampled_total 7
# HELP f_sampled func-backed gauge
# TYPE f_sampled gauge
f_sampled -1.5
`
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Determinism: a second scrape of identical state is byte-identical.
	var buf2 strings.Builder
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two scrapes of identical state differ")
	}
}

// TestRegistryIdempotentAndConflicts: same-schema re-registration
// returns the existing family; a schema mismatch panics.
func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.CounterVec("x_total", "help", "peer")
	b := reg.CounterVec("x_total", "help", "peer")
	a.With("p").Add(4)
	if got := b.With("p").Value(); got != 4 {
		t.Fatalf("re-registered vec sees %d, want 4 (must share series)", got)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("kind conflict", func() { reg.Gauge("x_total", "help") })
	mustPanic("label conflict", func() { reg.CounterVec("x_total", "help", "as") })
	mustPanic("arity mismatch", func() { a.With("p", "q") })
	mustPanic("bad name", func() { reg.Counter("2bad", "") })
	mustPanic("bad label", func() { reg.CounterVec("ok_total", "", "bad-label") })
	mustPanic("bad buckets", func() { reg.Histogram("h_seconds", "", []float64{1, 1}) })
}

// TestGaugeVecReset: Reset drops series so scrape-time collectors can
// re-enumerate a live population without stale samples.
func TestGaugeVecReset(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("pop_gauge", "", "peer")
	v.With("gone").Set(1)
	v.Reset()
	v.With("here").Set(2)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "gone") {
		t.Errorf("stale series survived Reset:\n%s", out)
	}
	if !strings.Contains(out, `pop_gauge{peer="here"} 2`) {
		t.Errorf("refilled series missing:\n%s", out)
	}
}

// TestOnScrapeRegistersFamilies: families created inside a scrape hook
// appear in the same exposition pass.
func TestOnScrapeRegistersFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.OnScrape(func() {
		reg.Gauge("late_gauge", "registered during scrape").Set(9)
	})
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "late_gauge 9") {
		t.Errorf("hook-registered family missing:\n%s", buf.String())
	}
}

// TestNilHandlesNoOp: every handle method tolerates a nil receiver —
// the contract that lets uninstrumented engines skip call-site guards.
func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram observed something")
	}
}

// TestRegistryConcurrent hammers registration, mutation and scraping
// from many goroutines; run under -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("conc_total", "", "peer")
	hist := reg.Histogram("conc_seconds", "", DefLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := string(rune('a' + g))
			c := vec.With(peer)
			for i := 0; i < 1000; i++ {
				c.Inc()
				hist.Observe(float64(i) * 1e-5)
				if i%100 == 0 {
					var buf strings.Builder
					if err := reg.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	for g := 0; g < 8; g++ {
		total += vec.With(string(rune('a' + g))).Value()
	}
	if total != 8000 {
		t.Errorf("counters total %d, want 8000", total)
	}
	if hist.Count() != 8000 {
		t.Errorf("histogram count %d, want 8000", hist.Count())
	}
}
