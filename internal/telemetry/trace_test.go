package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func wall(s int) time.Time {
	return time.Date(2026, 8, 7, 12, 0, s, 0, time.UTC)
}

// TestBurstRingLifecycle walks one burst through start → decision →
// end → provision and checks the snapshot reflects every stage.
func TestBurstRingLifecycle(t *testing.T) {
	r := NewBurstRing(8)
	r.Start("p1", wall(0), time.Second, 1500)
	r.Decision("p1", DecisionTrace{
		At: 2 * time.Second, FitScore: 0.9, Links: []string{"(5,6)"},
		PredictedPrefixes: 1200, Received: 2000, RulesInstalled: 3,
	})
	recs := r.Snapshot()
	if len(recs) != 1 || !recs[0].Open || len(recs[0].Decisions) != 1 {
		t.Fatalf("mid-burst snapshot = %+v", recs)
	}
	r.End("p1", wall(5), 6*time.Second, 4000)
	r.Provision("p1", ProvisionTrace{At: 6 * time.Second, TaggedPrefixes: 900, PathBitsUsed: 12, NextHops: 2})

	recs = r.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Open || rec.EndAt != 6*time.Second || rec.Withdrawals != 4000 {
		t.Errorf("closed record = %+v", rec)
	}
	if rec.WithdrawalsAtStart != 1500 {
		t.Errorf("withdrawals at start = %d, want 1500", rec.WithdrawalsAtStart)
	}
	if rec.Provision == nil || rec.Provision.TaggedPrefixes != 900 {
		t.Errorf("provision = %+v", rec.Provision)
	}
	if len(rec.Decisions) != 1 || rec.Decisions[0].Links[0] != "(5,6)" {
		t.Errorf("decisions = %+v", rec.Decisions)
	}

	// The record is ops-plane JSON; it must marshal.
	if _, err := json.Marshal(recs); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestBurstRingEviction: the ring is bounded; old records (and their
// byKey entries) leave when capacity is exceeded, newest first wins.
func TestBurstRingEviction(t *testing.T) {
	r := NewBurstRing(2)
	r.Start("a", wall(0), 0, 1)
	r.End("a", wall(1), time.Second, 1)
	r.Start("b", wall(2), 2*time.Second, 2)
	r.Start("c", wall(3), 3*time.Second, 3) // evicts a
	if r.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", r.Len())
	}
	recs := r.Snapshot()
	if recs[0].Peer != "c" || recs[1].Peer != "b" {
		t.Fatalf("snapshot order = [%s %s], want [c b]", recs[0].Peer, recs[1].Peer)
	}
	// An update to the evicted peer's burst is dropped, not resurrected.
	r.Decision("a", DecisionTrace{})
	r.End("a", wall(4), 4*time.Second, 9)
	for _, rec := range r.Snapshot() {
		if rec.Peer == "a" {
			t.Fatal("evicted record resurrected")
		}
	}
}

// TestBurstRingDecisionCap: a runaway burst cannot grow one record
// without bound; overflow is counted.
func TestBurstRingDecisionCap(t *testing.T) {
	r := NewBurstRing(4)
	r.Start("p", wall(0), 0, 1)
	for i := 0; i < maxTraceDecisions+5; i++ {
		r.Decision("p", DecisionTrace{Received: i})
	}
	rec := r.Snapshot()[0]
	if len(rec.Decisions) != maxTraceDecisions {
		t.Errorf("kept %d decisions, want %d", len(rec.Decisions), maxTraceDecisions)
	}
	if rec.DecisionsDropped != 5 {
		t.Errorf("dropped = %d, want 5", rec.DecisionsDropped)
	}
}

// TestBurstRingSnapshotIsolation: mutating the ring after Snapshot must
// not change the returned copies.
func TestBurstRingSnapshotIsolation(t *testing.T) {
	r := NewBurstRing(4)
	r.Start("p", wall(0), 0, 10)
	r.Decision("p", DecisionTrace{Received: 1})
	snap := r.Snapshot()
	r.Decision("p", DecisionTrace{Received: 2})
	r.End("p", wall(1), time.Second, 99)
	if len(snap[0].Decisions) != 1 || snap[0].Withdrawals != 10 || !snap[0].Open {
		t.Errorf("snapshot mutated by later ring writes: %+v", snap[0])
	}
}

// TestBurstRingNilSafe: a nil ring is inert, like nil metric handles.
func TestBurstRingNilSafe(t *testing.T) {
	var r *BurstRing
	r.Start("p", wall(0), 0, 1)
	r.Decision("p", DecisionTrace{})
	r.End("p", wall(1), 0, 1)
	r.Provision("p", ProvisionTrace{})
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Error("nil ring not inert")
	}
}
