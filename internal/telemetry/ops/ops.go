// Package ops is swiftd's management-plane HTTP surface — the
// ndndpdk-svc-style service endpoint the ROADMAP calls for. One handler
// serves:
//
//	GET /metrics      Prometheus text exposition of the registry
//	GET /healthz      liveness (200 "ok", or 503 when the health
//	                  callback reports down)
//	GET /peers        per-peer fleet status as JSON
//	GET /bursts       the burst trace ring, newest first, as JSON
//	GET /fusion       fusion aggregator stats + current verdict as JSON
//	                  (when the fleet runs with fusion enabled)
//	GET /debug/pprof/ the standard Go profiler endpoints
//
// NewHandler also completes the scrape-side wiring: given a fleet it
// registers the fleet/pool/FIB collectors, and given a BMP station it
// bridges the station's ingestion counters into the registry — so a
// daemon builds its whole ops plane with one call.
package ops

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"swift/internal/bmp"
	"swift/internal/controller"
	"swift/internal/fusion"
	"swift/internal/telemetry"
)

// Config assembles an ops handler. Registry is required; everything
// else is optional and gates its endpoint or wiring.
type Config struct {
	// Registry backs GET /metrics.
	Registry *telemetry.Registry
	// Ring backs GET /bursts (404 when nil).
	Ring *telemetry.BurstRing
	// Fleet, when set, is wired into the registry's scrape pass and
	// backs GET /peers.
	Fleet *controller.Fleet
	// Station, when set, has its ingestion counters exported under
	// swift_station_*.
	Station *bmp.Station
	// PeerStatuses overrides the /peers payload — the hook for
	// single-session deployments with no fleet.
	PeerStatuses func() []controller.PeerStatus
	// Healthy, when set, gates /healthz; nil means always healthy.
	Healthy func() bool
	// Snapshot, when set, backs POST /snapshot: it checkpoints the
	// fleet to durable storage and returns when the snapshot is on
	// disk (405 on GET, 404 when unset).
	Snapshot func() error
	// RestoreStatus, when set, reports how the process started (warm
	// restore vs cold start); its line is appended to the /healthz
	// body so orchestration can tell the difference.
	RestoreStatus func() string
}

// NewHandler wires the configured sources into the registry and returns
// the ops mux. Call it once per process (metric registration is
// idempotent only for identical schemas).
func NewHandler(cfg Config) http.Handler {
	if cfg.Registry == nil {
		panic("ops: Config.Registry is required")
	}
	if cfg.Fleet != nil {
		controller.RegisterFleetMetrics(cfg.Registry, cfg.Fleet)
	}
	if cfg.Station != nil {
		RegisterStationMetrics(cfg.Registry, cfg.Station)
	}
	peers := cfg.PeerStatuses
	if peers == nil && cfg.Fleet != nil {
		peers = cfg.Fleet.PeerStatuses
	}

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", cfg.Registry)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Healthy != nil && !cfg.Healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
		if cfg.RestoreStatus != nil {
			w.Write([]byte(cfg.RestoreStatus() + "\n"))
		}
	})
	if cfg.Snapshot != nil {
		mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
			if err := cfg.Snapshot(); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte("snapshot written\n"))
		})
	}
	if peers != nil {
		list := peers
		mux.HandleFunc("GET /peers", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, list())
		})
	}
	if cfg.Ring != nil {
		mux.HandleFunc("GET /bursts", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, cfg.Ring.Snapshot())
		})
	}
	if cfg.Fleet != nil && cfg.Fleet.Fusion() != nil {
		agg := cfg.Fleet.Fusion()
		mux.HandleFunc("GET /fusion", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, fusionStatus(agg))
		})
	}
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// FusionStatus is the GET /fusion payload: the aggregator's counters
// plus the currently confirmed verdict, when one stands.
type FusionStatus struct {
	Peers          int            `json:"peers"`
	Bursting       int            `json:"bursting"`
	EvidenceEvents uint64         `json:"evidence_events"`
	Vetoes         uint64         `json:"vetoes"`
	VerdictLinks   int            `json:"verdict_links"`
	Epoch          uint64         `json:"epoch"`
	Verdict        *FusionVerdict `json:"verdict,omitempty"`
}

// FusionVerdict is the JSON shape of a confirmed fleet verdict.
type FusionVerdict struct {
	Links      []string      `json:"links"`
	Predicted  int           `json:"predicted_prefixes"`
	FS         float64       `json:"fit_score"`
	At         time.Duration `json:"at_ns"`
	Supporters int           `json:"supporters"`
	Epoch      uint64        `json:"epoch"`
}

func fusionStatus(agg *fusion.Aggregator) FusionStatus {
	s := agg.Stats()
	st := FusionStatus{
		Peers:          s.Peers,
		Bursting:       s.Bursting,
		EvidenceEvents: s.EvidenceEvents,
		Vetoes:         s.Vetoes,
		VerdictLinks:   s.VerdictLinks,
		Epoch:          s.Epoch,
	}
	if v, ok := agg.Snapshot(0); ok {
		links := make([]string, len(v.Links))
		for i, l := range v.Links {
			links[i] = l.String()
		}
		st.Verdict = &FusionVerdict{
			Links:      links,
			Predicted:  len(v.Predicted),
			FS:         v.FS,
			At:         v.At,
			Supporters: v.Supporters,
			Epoch:      v.Epoch,
		}
	}
	return st
}

// writeJSON renders v indented; the payloads are operator-facing and
// small (peers, trace ring), so readability beats compactness.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// RegisterStationMetrics bridges a BMP station's ingestion counters
// into reg as scrape-time sampled families — the station's own atomics
// stay the single source of truth.
func RegisterStationMetrics(reg *telemetry.Registry, st *bmp.Station) {
	reg.GaugeFunc("swift_station_connections",
		"Live monitored-router connections.",
		func() float64 { return float64(st.Metrics().Conns) })
	reg.CounterFunc("swift_station_messages_total",
		"BMP messages ingested.",
		func() uint64 { return st.Metrics().Messages })
	reg.CounterFunc("swift_station_route_monitoring_total",
		"Route Monitoring messages ingested.",
		func() uint64 { return st.Metrics().RouteMonitoring })
	reg.CounterFunc("swift_station_peer_ups_total",
		"Peer Up notifications ingested.",
		func() uint64 { return st.Metrics().PeerUps })
	reg.CounterFunc("swift_station_peer_downs_total",
		"Peer Down notifications ingested.",
		func() uint64 { return st.Metrics().PeerDowns })
	reg.CounterFunc("swift_station_stats_reports_total",
		"Stats Report messages ingested.",
		func() uint64 { return st.Metrics().StatsReports })
	reg.CounterFunc("swift_station_bytes_total",
		"Wire bytes read off router connections.",
		func() uint64 { return st.Metrics().Bytes })
	reg.CounterFunc("swift_station_decode_errors_total",
		"Connections dropped on framing or decode failures.",
		func() uint64 { return st.Metrics().DecodeErrors })
}
