package ops

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swift/internal/controller"
	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/telemetry"
)

// TestHandlerEndpoints drives the full ops mux over a live instrumented
// fleet: /metrics exposes the wired families, /healthz gates on the
// callback, /peers and /bursts serve coherent JSON.
func TestHandlerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewBurstRing(8)
	ft := controller.NewFleetTelemetry(reg, ring)
	fleet := controller.NewFleet(ft.Instrument(controller.FleetConfig{
		Engine: func(key controller.PeerKey) swiftengine.Config {
			return swiftengine.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
		},
	}))
	defer fleet.Close()

	healthy := true
	h := NewHandler(Config{
		Registry: reg,
		Ring:     ring,
		Fleet:    fleet,
		Healthy:  func() bool { return healthy },
	})

	k := controller.PeerKey{AS: 2, BGPID: 1}
	if err := fleet.Apply(event.Batch{
		event.Announce(time.Second, netaddr.PrefixFor(8, 1), []uint32{2, 5, 6}).WithPeer(k),
	}); err != nil {
		t.Fatal(err)
	}
	fleet.Sync()
	ring.Start(k.String(), time.Now(), time.Second, 1500)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
	healthy = false
	if rec := get("/healthz"); rec.Code != 503 {
		t.Errorf("unhealthy /healthz = %d, want 503", rec.Code)
	}

	rec := get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`swift_peer_announcements_total{peer="AS2/00000001"} 1`,
		"# TYPE swift_fleet_events_total counter",
		"swift_fleet_peers 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	rec = get("/peers")
	var peers []controller.PeerStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &peers); err != nil {
		t.Fatalf("/peers: %v", err)
	}
	if len(peers) != 1 || peers[0].Peer != k.String() || peers[0].Announcements != 1 {
		t.Errorf("/peers = %+v", peers)
	}

	rec = get("/bursts")
	var bursts []telemetry.BurstRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &bursts); err != nil {
		t.Fatalf("/bursts: %v", err)
	}
	if len(bursts) != 1 || bursts[0].Peer != k.String() || !bursts[0].Open {
		t.Errorf("/bursts = %+v", bursts)
	}

	if rec := get("/debug/pprof/cmdline"); rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", rec.Code)
	}
	if rec := get("/nope"); rec.Code != 404 {
		t.Errorf("/nope = %d, want 404", rec.Code)
	}
}
