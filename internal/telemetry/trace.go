package telemetry

import (
	"sync"
	"time"
)

// maxTraceDecisions bounds how many decisions one burst record keeps;
// a runaway burst cannot grow a record without bound.
const maxTraceDecisions = 64

// DecisionTrace is one accepted inference inside a burst record.
type DecisionTrace struct {
	// At is the decision's offset on the peer's virtual stream clock.
	At time.Duration `json:"at_ns"`
	// InferLatency is how long the inference computation took.
	InferLatency time.Duration `json:"infer_latency_ns"`
	// FitScore is the score of the accepted link set.
	FitScore float64 `json:"fit_score"`
	// Links names the inferred failed links, e.g. "(5,6)".
	Links []string `json:"links"`
	// PredictedPrefixes counts the prefixes the reroute diverts.
	PredictedPrefixes int `json:"predicted_prefixes"`
	// Received is the withdrawal count the inference consumed.
	Received int `json:"received"`
	// RulesInstalled counts the stage-2 writes the decision performed.
	RulesInstalled int `json:"rules_installed"`
	// External marks a fleet-fused verdict applied to this peer rather
	// than the session's own inference. For external records, Received
	// carries the verdict's corroborating-peer count.
	External bool `json:"external,omitempty"`
}

// ProvisionTrace is the burst-end fallback outcome of a record.
type ProvisionTrace struct {
	At time.Duration `json:"at_ns"`
	// Unchanged is true when BGP reconverged onto exactly the
	// provisioned routes and the recompile was skipped.
	Unchanged      bool `json:"unchanged"`
	TaggedPrefixes int  `json:"tagged_prefixes"`
	PathBitsUsed   int  `json:"path_bits_used"`
	NextHops       int  `json:"next_hops"`
}

// BurstRecord is one burst's lifecycle: open at a detector trigger,
// closed at burst end, optionally annotated with the fallback
// re-provision that followed. Timestamps come in pairs — wall clock
// (when the daemon saw it) and the peer's virtual stream clock (when it
// happened on the session timeline), which diverge under accelerated
// replays.
type BurstRecord struct {
	ID   uint64 `json:"id"`
	Peer string `json:"peer"`
	// StartWall/EndWall are daemon wall-clock times.
	StartWall time.Time `json:"start_wall"`
	EndWall   time.Time `json:"end_wall,omitzero"`
	// StartAt/EndAt are virtual stream offsets.
	StartAt time.Duration `json:"start_at_ns"`
	EndAt   time.Duration `json:"end_at_ns,omitempty"`
	// Open is true while the burst is still in progress.
	Open bool `json:"open"`
	// WithdrawalsAtStart is the window count that tripped the detector;
	// Withdrawals is the burst's total once closed.
	WithdrawalsAtStart int `json:"withdrawals_at_start"`
	Withdrawals        int `json:"withdrawals"`
	// Decisions lists the accepted inferences, oldest first (capped;
	// DecisionsDropped counts any overflow).
	Decisions        []DecisionTrace `json:"decisions,omitempty"`
	DecisionsDropped int             `json:"decisions_dropped,omitempty"`
	// Provision is the burst-end fallback outcome, when one ran.
	Provision *ProvisionTrace `json:"provision,omitempty"`
}

// BurstRing is a bounded ring of burst lifecycle records — the
// daemon's flight recorder, queryable as JSON from the ops plane. All
// methods are safe for concurrent use; they run on burst events only
// (start, decision, end, provision), never on the per-message hot path.
type BurstRing struct {
	mu    sync.Mutex
	cap   int
	recs  []*BurstRecord          // ring, oldest at head when full
	head  int                     // index of the oldest record
	next  uint64                  // next record ID
	byKey map[string]*BurstRecord // latest record per peer, for updates
}

// NewBurstRing builds a ring keeping the last capacity bursts
// (default 256 when capacity <= 0).
func NewBurstRing(capacity int) *BurstRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &BurstRing{cap: capacity, byKey: make(map[string]*BurstRecord)}
}

// push appends rec, evicting the oldest record when full.
func (r *BurstRing) push(rec *BurstRecord) {
	if len(r.recs) < r.cap {
		r.recs = append(r.recs, rec)
		return
	}
	old := r.recs[r.head]
	if r.byKey[old.Peer] == old {
		delete(r.byKey, old.Peer)
	}
	r.recs[r.head] = rec
	r.head = (r.head + 1) % r.cap
}

// Start opens a record for peer's new burst.
func (r *BurstRing) Start(peer string, wall time.Time, at time.Duration, withdrawals int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	rec := &BurstRecord{
		ID:                 r.next,
		Peer:               peer,
		StartWall:          wall,
		StartAt:            at,
		Open:               true,
		WithdrawalsAtStart: withdrawals,
		Withdrawals:        withdrawals,
	}
	r.push(rec)
	r.byKey[peer] = rec
}

// Decision appends an accepted inference to peer's current burst. A
// decision with no open burst (races around ring eviction) is dropped.
func (r *BurstRing) Decision(peer string, d DecisionTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.byKey[peer]
	if rec == nil || !rec.Open {
		return
	}
	if len(rec.Decisions) >= maxTraceDecisions {
		rec.DecisionsDropped++
		return
	}
	rec.Decisions = append(rec.Decisions, d)
}

// End closes peer's current burst with its total withdrawal count.
func (r *BurstRing) End(peer string, wall time.Time, at time.Duration, received int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.byKey[peer]
	if rec == nil || !rec.Open {
		return
	}
	rec.Open = false
	rec.EndWall = wall
	rec.EndAt = at
	rec.Withdrawals = received
}

// Provision annotates peer's most recent burst with its fallback
// re-provision outcome.
func (r *BurstRing) Provision(peer string, p ProvisionTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.byKey[peer]
	if rec == nil || rec.Open {
		return
	}
	rec.Provision = &p
}

// Len returns the number of records held.
func (r *BurstRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Snapshot returns deep copies of the records, newest first — safe to
// marshal while bursts keep evolving.
func (r *BurstRing) Snapshot() []BurstRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BurstRecord, 0, len(r.recs))
	for i := len(r.recs) - 1; i >= 0; i-- {
		rec := r.recs[(r.head+i)%len(r.recs)]
		cp := *rec
		cp.Decisions = append([]DecisionTrace(nil), rec.Decisions...)
		if rec.Provision != nil {
			p := *rec.Provision
			cp.Provision = &p
		}
		out = append(out, cp)
	}
	return out
}
