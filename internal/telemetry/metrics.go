// Package telemetry is the repo's zero-dependency metrics core: atomic
// counters, gauges and fixed-bucket histograms, grouped into labeled
// families by a Registry that exposes them in Prometheus text format.
//
// The design constraint is the SWIFT hot path: Engine.Apply processes
// tens of millions of events per second with zero allocations, and
// instrumentation must not change that. Handles (*Counter, *Gauge,
// *Histogram) are therefore pre-resolved once — a labeled family is a
// map, but With() is called at peer-creation time, never per event —
// and every mutation is a single atomic op on a struct the caller
// already holds. All handle methods are nil-receiver safe, so
// uninstrumented code paths pay one predictable branch and nothing
// else.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter no-ops, so optional instrumentation
// needs no call-site guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric that can go up and down. The zero
// value is ready to use and reads 0; a nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; gauges are set-mostly, Add is for the odd
// up/down tally).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative
// upper bounds in ascending order (Prometheus "le" semantics); an
// implicit +Inf bucket catches the overflow. Observe is lock-free: one
// linear scan over a handful of bounds and three atomic ops. A nil
// *Histogram no-ops.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefLatencyBuckets covers the engine's inference latencies: 10 µs to
// 100 ms in roughly-2.5x steps (seconds).
var DefLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

// DefDurationBuckets covers burst durations on the virtual stream
// clock: half a second to twenty minutes (seconds).
var DefDurationBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1200,
}
