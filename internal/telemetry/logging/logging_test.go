package logging

import (
	"strings"
	"testing"
)

func TestLevelFiltering(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, Warn)
	l.Debugf("d %d", 1)
	l.Infof("i %d", 2)
	l.Warnf("w %d", 3)
	l.Errorf("e %d", 4)
	out := buf.String()
	if strings.Contains(out, "d 1") || strings.Contains(out, "i 2") {
		t.Errorf("below-threshold lines leaked:\n%s", out)
	}
	if !strings.Contains(out, "WARN w 3") || !strings.Contains(out, "ERROR e 4") {
		t.Errorf("expected lines missing:\n%s", out)
	}

	l.SetLevel(Debug)
	l.Debugf("d %d", 5)
	if !strings.Contains(buf.String(), "DEBUG d 5") {
		t.Error("SetLevel(Debug) did not enable debug lines")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": Debug, "info": Info, "warn": Warn, "error": Error,
		"WARN": Warn, "Info": Info,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestNilLoggerDiscards(t *testing.T) {
	var l *Logger
	l.Debugf("x")
	l.Infof("x")
	l.Warnf("x")
	l.Errorf("x")
	if l.Enabled(Error) {
		t.Error("nil logger claims Enabled")
	}
}
