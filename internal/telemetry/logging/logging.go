// Package logging is the repo's one leveled logger. The daemons and
// load generators previously each wired bare log.Printf closures into
// every subsystem's Logf hook; this package keeps that plain
// printf-style surface (a *Logger's level methods satisfy the
// `func(format string, args ...any)` hooks everywhere) while adding the
// two things operations need: a severity floor (-log-level) and a
// uniform prefix so one daemon's interleaved subsystem output stays
// greppable.
package logging

import (
	"fmt"
	"io"
	"log"
	"strings"
	"sync/atomic"
)

// Level is a log severity.
type Level int32

const (
	// Debug is per-message internals: station demux events, fleet peer
	// lifecycle, batch flushes.
	Debug Level = iota
	// Info is the operational narrative: sessions, bursts, decisions,
	// provisions, periodic status.
	Info
	// Warn is degraded-but-running: decode errors, sink failures.
	Warn
	// Error is about-to-fail-or-exit.
	Error
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Debug:
		return "DEBUG"
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Error:
		return "ERROR"
	}
	return fmt.Sprintf("LEVEL(%d)", int32(l))
}

// ParseLevel parses "debug", "info", "warn" or "error" (case
// insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return Debug, nil
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("logging: unknown level %q (want debug, info, warn or error)", s)
}

// Logger is a leveled printf logger. A nil *Logger discards everything,
// so optional Logf wiring needs no guards. Methods are safe for
// concurrent use.
type Logger struct {
	min atomic.Int32
	out *log.Logger
}

// New builds a logger writing to w with the given severity floor,
// stamped with the standard date/time flags.
func New(w io.Writer, min Level) *Logger {
	l := &Logger{out: log.New(w, "", log.LstdFlags)}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the severity floor at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && lvl >= Level(l.min.Load())
}

// Logf emits one line at lvl.
func (l *Logger) Logf(lvl Level, format string, args ...any) {
	if !l.Enabled(lvl) {
		return
	}
	l.out.Printf(lvl.String()+" "+format, args...)
}

// Debugf logs at Debug. Pass the method itself wherever a subsystem
// takes a `Logf func(string, ...any)` hook.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(Debug, format, args...) }

// Infof logs at Info.
func (l *Logger) Infof(format string, args ...any) { l.Logf(Info, format, args...) }

// Warnf logs at Warn.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(Warn, format, args...) }

// Errorf logs at Error.
func (l *Logger) Errorf(format string, args ...any) { l.Logf(Error, format, args...) }

// Fatalf logs at Error and exits with status 1.
func (l *Logger) Fatalf(format string, args ...any) {
	if l != nil && l.Enabled(Error) {
		l.out.Fatalf(Error.String()+" "+format, args...)
	}
	log.Fatalf(format, args...)
}
