package ring

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingCloseDrainClaimedCell pins the close/drain race directly: a
// producer that won the tail CAS in TryPush but has not yet published
// the cell's seq is invisible to TryPop, so the old closed-path
// re-drain ("one more TryPop, then give up") exited with the value
// still in flight and its delivery lost. The fixed Pop spins while
// head != tail, waiting the publication out.
//
// The test builds the exact interleaving by hand: it claims a cell the
// way TryPush does (tail advance without the seq store), closes the
// ring, lets the consumer reach the closed-path drain, and only then
// publishes. On the old code Pop deterministically returns ok=false
// and the value is stranded; on the fixed code Pop returns it.
func TestRingCloseDrainClaimedCell(t *testing.T) {
	r := New[int](4)

	// Claim a cell exactly like TryPush's winning CAS, but stop before
	// the publish — this is the producer frozen inside the race window.
	pos := r.tail.Load()
	if !r.tail.CompareAndSwap(pos, pos+1) {
		t.Fatal("uncontested tail CAS failed")
	}
	c := &r.cells[pos&r.mask]

	// The ring closes while the producer is still in the window.
	r.Close()

	type res struct {
		v  int
		ok bool
	}
	got := make(chan res, 1)
	go func() {
		v, ok := r.Pop()
		got <- res{v, ok}
	}()

	// Give the consumer ample time to reach the closed-path drain and
	// observe the claimed-but-unpublished cell, then publish.
	time.Sleep(5 * time.Millisecond)
	c.v = 42
	c.seq.Store(pos + 1)

	select {
	case g := <-got:
		if !g.ok || g.v != 42 {
			t.Fatalf("Pop after Close = (%d, %v), want (42, true): claimed cell stranded", g.v, g.ok)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not return after the claimed cell was published")
	}

	// The ring is now closed and empty; Pop must report drained.
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on drained closed ring returned ok=true")
	}
}

// TestRingCloseTryPushStress hammers Close against concurrent TryPush
// producers and asserts conservation: every value whose TryPush
// reported success is either handed to the consumer before Pop reports
// drained, or still sits in the ring afterwards (a producer that
// passed the closed check just before Close and landed after the
// consumer left — the fleet's refuse-then-drain protocol rules that
// case out by waiting for senders first). What may never happen is a
// successfully pushed value vanishing.
func TestRingCloseTryPushStress(t *testing.T) {
	const (
		iters     = 300
		producers = 4
	)
	for it := 0; it < iters; it++ {
		r := New[uint64](8)
		var accepted atomic.Uint64 // bitmask-free: count + sum as checksum
		var acceptedSum atomic.Uint64

		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				v := uint64(p)*1_000_000 + 1
				for !r.Closed() {
					if r.TryPush(v) {
						accepted.Add(1)
						acceptedSum.Add(v)
						v++
					}
				}
			}(p)
		}

		var popped, poppedSum uint64
		done := make(chan struct{})
		go func() {
			defer close(done)
			<-start
			for {
				v, ok := r.Pop()
				if !ok {
					return
				}
				popped++
				poppedSum += v
			}
		}()

		close(start)
		time.Sleep(50 * time.Microsecond)
		r.Close()
		wg.Wait()
		<-done

		// Producers joined, consumer exited: whatever late pushes landed
		// after the consumer left must still be in the ring.
		var leftover, leftoverSum uint64
		for {
			v, ok := r.TryPop()
			if !ok {
				break
			}
			leftover++
			leftoverSum += v
		}
		if popped+leftover != accepted.Load() || poppedSum+leftoverSum != acceptedSum.Load() {
			t.Fatalf("iter %d: accepted %d values (sum %d) but popped %d (+%d leftover, sum %d): pushed batch dropped",
				it, accepted.Load(), acceptedSum.Load(), popped, leftover, poppedSum+leftoverSum)
		}
	}
}
