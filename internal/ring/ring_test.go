package ring

import (
	"sync"
	"testing"
)

func TestTryPushTryPopEmptyFull(t *testing.T) {
	r := New[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring reported a value")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush %d refused below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on drained ring reported a value")
	}
}

// TestWraparound cycles values through a tiny ring many times its
// capacity, so head/tail positions run far past the cell count and
// every cell's sequence number wraps repeatedly.
func TestWraparound(t *testing.T) {
	r := New[int](8)
	next := 0
	for round := 0; round < 1000; round++ {
		n := 1 + round%8
		for i := 0; i < n; i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("round %d: push %d refused", round, next+i)
			}
		}
		for i := 0; i < n; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: pop = %d,%v, want %d,true", round, v, ok, next+i)
			}
		}
		next += n
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestCloseDrainsThenReportsDead(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 3; i++ {
		r.TryPush(i)
	}
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if r.TryPush(9) {
		t.Fatal("TryPush succeeded on a closed ring")
	}
	if r.Push(9) {
		t.Fatal("Push succeeded on a closed ring")
	}
	// Buffered values drain after close.
	for i := 0; i < 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("post-close Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on a closed drained ring reported a value")
	}
	r.Close() // idempotent
}

func TestPushBlocksUntilPop(t *testing.T) {
	r := New[int](2)
	r.TryPush(0)
	r.TryPush(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !r.Push(2) {
			t.Error("blocking Push reported closed")
		}
	}()
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = %d,%v, want 0,true", v, ok)
	}
	<-done
	for _, want := range []int{1, 2} {
		if v, ok := r.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, want)
		}
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	r := New[int](2)
	got := make(chan int)
	go func() {
		v, ok := r.Pop()
		if !ok {
			t.Error("blocking Pop reported closed")
		}
		got <- v
	}()
	r.Push(42)
	if v := <-got; v != 42 {
		t.Fatalf("Pop = %d, want 42", v)
	}
}

func TestCloseWakesBlockedSides(t *testing.T) {
	full := New[int](2)
	full.TryPush(0)
	full.TryPush(1)
	empty := New[int](2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if full.Push(2) {
			t.Error("Push on closing full ring succeeded")
		}
	}()
	go func() {
		defer wg.Done()
		// The consumer drains the two buffered values, then sees dead.
		for i := 0; i < 2; i++ {
			if _, ok := full.Pop(); !ok {
				t.Error("pre-close values lost")
				return
			}
		}
	}()
	full.Close()
	wg.Wait()

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := empty.Pop(); ok {
			t.Error("Pop on closed empty ring reported a value")
		}
	}()
	empty.Close()
	wg.Wait()
}

func TestBatchOps(t *testing.T) {
	r := New[int](8)
	if n := r.PushBatch([]int{1, 2, 3, 4, 5}); n != 5 {
		t.Fatalf("PushBatch = %d, want 5", n)
	}
	buf := make([]int, 0, 3)
	buf = r.PopBatch(buf)
	if len(buf) != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("PopBatch = %v, want [1 2 3]", buf)
	}
	buf = r.PopBatchWait(buf)
	if len(buf) != 2 || buf[0] != 4 || buf[1] != 5 {
		t.Fatalf("PopBatchWait = %v, want [4 5]", buf)
	}
	r.Close()
	if buf = r.PopBatchWait(buf); len(buf) != 0 {
		t.Fatalf("PopBatchWait on closed ring = %v, want empty", buf)
	}
}

// TestMPSCOrder drives several producers against the single consumer
// and checks per-producer FIFO: values from one producer arrive in the
// order that producer pushed them, regardless of interleaving.
func TestMPSCOrder(t *testing.T) {
	const producers = 4
	const perProducer = 10000
	r := New[[2]int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if !r.Push([2]int{p, i}) {
					t.Errorf("producer %d: push %d refused", p, i)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		r.Close()
	}()
	var lastSeen [producers]int
	for p := range lastSeen {
		lastSeen[p] = -1
	}
	total := 0
	buf := make([][2]int, 0, 32)
	for {
		buf = r.PopBatchWait(buf)
		if len(buf) == 0 {
			break
		}
		for _, v := range buf {
			p, i := v[0], v[1]
			if i != lastSeen[p]+1 {
				t.Fatalf("producer %d: got %d after %d", p, i, lastSeen[p])
			}
			lastSeen[p] = i
			total++
		}
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d values, want %d", total, producers*perProducer)
	}
}
