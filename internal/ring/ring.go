// Package ring provides the bounded single-consumer ring buffer behind
// the fleet dataplane's worker shards, modeled on the SPSC rings that
// feed NDN-DPDK's forwarding threads: a power-of-two cell array with
// per-cell sequence numbers, try and blocking push/pop variants, batch
// drain, and a zero-alloc steady state (cells are reused in place; the
// only allocations ever made are at construction).
//
// The consumer side is strictly single-goroutine — exactly one worker
// owns Pop/PopBatch — which keeps dequeue free of compare-and-swap
// loops. The producer side is multi-producer safe (a CAS claims a
// cell), degenerating to the uncontended SPSC fast path when a single
// source feeds the ring; the fleet needs this because any number of
// BMP connections, replay sources and direct Enqueue callers may land
// batches on one shard concurrently.
//
// Blocking coordination is intentionally coarse: both sides spin
// through a quick recheck and then park on a one-slot notification
// channel, so the steady state (ring neither full nor empty) never
// touches a futex, and the idle state costs nothing.
package ring

import (
	"runtime"
	"sync/atomic"
)

// cell is one slot: seq is the Vyukov-style sequence number that
// encodes whether the slot is free for the producer (seq == pos) or
// ready for the consumer (seq == pos+1).
type cell[T any] struct {
	seq atomic.Uint64
	v   T
}

// Ring is a bounded multi-producer single-consumer queue. The zero
// value is not usable; construct with New.
type Ring[T any] struct {
	mask  uint64
	cells []cell[T]

	_    [48]byte // keep tail off the cells/mask cache line
	tail atomic.Uint64
	_    [56]byte // and head off tail's
	head atomic.Uint64

	closed atomic.Bool
	// closeCh broadcasts Close to every parked producer and consumer.
	closeCh chan struct{}
	// popWait is set while the consumer is parked on popCh; a producer
	// that lands a value CASes it back and posts one token.
	popWait atomic.Bool
	popCh   chan struct{}
	// pushWaiters counts producers parked on pushCh; the consumer
	// posts one token per pop while any are waiting.
	pushWaiters atomic.Int64
	pushCh      chan struct{}
}

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func New[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{
		mask:    uint64(n - 1),
		cells:   make([]cell[T], n),
		closeCh: make(chan struct{}),
		popCh:   make(chan struct{}, 1),
		pushCh:  make(chan struct{}, 1),
	}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.cells) }

// Len returns the number of buffered values. It is a racy snapshot,
// exact only when producers and the consumer are quiescent — the shape
// occupancy gauges want.
func (r *Ring[T]) Len() int {
	n := int64(r.tail.Load()) - int64(r.head.Load())
	if n < 0 {
		return 0
	}
	if n > int64(len(r.cells)) {
		return len(r.cells)
	}
	return int(n)
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// TryPush enqueues v without blocking. It reports false when the ring
// is full or closed.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	pos := r.tail.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				c.v = v
				c.seq.Store(pos + 1)
				r.wakePop()
				return true
			}
			pos = r.tail.Load()
		case d < 0:
			return false // full
		default:
			pos = r.tail.Load()
		}
	}
}

// Push enqueues v, blocking while the ring is full — backpressure,
// never loss. It reports false only when the ring is (or becomes)
// closed before the value lands.
func (r *Ring[T]) Push(v T) bool {
	for {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		// Park: register, then recheck once to close the race against a
		// consumer that popped (and checked pushWaiters) in between.
		r.pushWaiters.Add(1)
		if r.TryPush(v) {
			r.pushWaiters.Add(-1)
			return true
		}
		select {
		case <-r.pushCh:
		case <-r.closeCh:
		}
		r.pushWaiters.Add(-1)
	}
}

// PushBatch enqueues every value of b in order, blocking as needed. It
// returns the number pushed — short only if the ring closes mid-batch.
func (r *Ring[T]) PushBatch(b []T) int {
	for i, v := range b {
		if !r.Push(v) {
			return i
		}
	}
	return len(b)
}

// TryPop dequeues one value without blocking. ok is false when the
// ring is empty (closed or not). Single consumer only.
func (r *Ring[T]) TryPop() (v T, ok bool) {
	pos := r.head.Load()
	c := &r.cells[pos&r.mask]
	seq := c.seq.Load()
	if int64(seq)-int64(pos+1) < 0 {
		return v, false // empty
	}
	v = c.v
	var zero T
	c.v = zero // release the value's references to GC
	c.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
	r.wakePush()
	return v, true
}

// Pop dequeues one value, blocking while the ring is empty. ok is
// false once the ring is closed and drained — the consumer's exit
// signal. Single consumer only.
func (r *Ring[T]) Pop() (v T, ok bool) {
	for {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Drain after observing closed: a producer may have landed a
			// value between the failed TryPop and the flag read — or worse,
			// claimed a cell (won the tail CAS in TryPush) without having
			// published its seq yet. TryPop reports empty for such a cell,
			// so a single re-drain could exit with the value still in
			// flight. head != tail is the authoritative occupancy signal:
			// spin until every claimed cell is published and popped.
			for {
				if v, ok = r.TryPop(); ok {
					return v, true
				}
				if r.head.Load() == r.tail.Load() {
					return v, false
				}
				runtime.Gosched()
			}
		}
		r.popWait.Store(true)
		if v, ok = r.TryPop(); ok {
			r.popWait.Store(false)
			return v, true
		}
		select {
		case <-r.popCh:
		case <-r.closeCh:
		}
		r.popWait.Store(false)
	}
}

// PopBatch drains up to cap(dst) buffered values into dst[:0] without
// blocking, returning the filled prefix. Single consumer only.
func (r *Ring[T]) PopBatch(dst []T) []T {
	dst = dst[:0]
	for len(dst) < cap(dst) {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		dst = append(dst, v)
	}
	return dst
}

// PopBatchWait is PopBatch that blocks for the first value: it returns
// a non-empty prefix, or an empty one only when the ring is closed and
// drained. Single consumer only.
func (r *Ring[T]) PopBatchWait(dst []T) []T {
	v, ok := r.Pop()
	if !ok {
		return dst[:0]
	}
	dst = append(dst[:0], v)
	for len(dst) < cap(dst) {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		dst = append(dst, v)
	}
	return dst
}

// Close marks the ring closed and wakes every parked producer and
// consumer. Blocked Push calls return false; Pop drains what remains
// and then reports ok=false. Idempotent.
func (r *Ring[T]) Close() {
	if !r.closed.Swap(true) {
		close(r.closeCh)
	}
}

// wakePop hands the parked consumer one token.
func (r *Ring[T]) wakePop() {
	if r.popWait.CompareAndSwap(true, false) {
		select {
		case r.popCh <- struct{}{}:
		default:
		}
	}
}

// wakePush hands one parked producer one token. The consumer calls
// this on every pop while producers are parked; each token frees one
// producer, whose own push then frees the next via the ring's spare
// capacity, so the chain drains without a broadcast.
func (r *Ring[T]) wakePush() {
	if r.pushWaiters.Load() > 0 {
		select {
		case r.pushCh <- struct{}{}:
		default:
		}
	}
}
