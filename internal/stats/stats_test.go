package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	} {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-sample percentile = %v", got)
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	if m := Mean(xs); !almostEq(m, 5) {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(xs); !almostEq(m, 5) {
		t.Errorf("Median = %v", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestWeightedGeoMean(t *testing.T) {
	// Equal weights over {4, 9} -> sqrt(36) = 6.
	if g := WeightedGeoMean([]float64{4, 9}, []float64{1, 1}); !almostEq(g, 6) {
		t.Errorf("geo mean = %v, want 6", g)
	}
	// The paper's Fit Score shape: (ws^3 * ps)^(1/4).
	ws, ps := 1.0, 0.5
	want := math.Pow(math.Pow(ws, 3)*ps, 0.25)
	if g := WeightedGeoMean([]float64{ws, ps}, []float64{3, 1}); !almostEq(g, want) {
		t.Errorf("fit score = %v, want %v", g, want)
	}
}

func TestWeightedGeoMean2MatchesSliceForm(t *testing.T) {
	// The two-value fast path must agree with the general form bit for
	// bit across the Fit Score's input range, including the guards.
	cases := []struct{ x1, w1, x2, w2 float64 }{
		{4, 1, 9, 1},
		{1, 3, 0.5, 1},
		{0.004, 3, 0.17, 1},
		{1e-9, 3, 1, 1},
		{0, 3, 1, 1},
		{1, 3, 0, 1},
		{-1, 1, 2, 1},
		{0.5, 0, 0.25, 0},
	}
	for _, c := range cases {
		want := WeightedGeoMean([]float64{c.x1, c.x2}, []float64{c.w1, c.w2})
		if got := WeightedGeoMean2(c.x1, c.w1, c.x2, c.w2); got != want {
			t.Errorf("WeightedGeoMean2(%v,%v,%v,%v) = %v, slice form = %v",
				c.x1, c.w1, c.x2, c.w2, got, want)
		}
	}
}

func TestWeightedGeoMeanZeroes(t *testing.T) {
	if g := WeightedGeoMean([]float64{0, 1}, []float64{3, 1}); g != 0 {
		t.Errorf("zero factor must force 0, got %v", g)
	}
	if g := WeightedGeoMean([]float64{-1, 1}, []float64{1, 1}); g != 0 {
		t.Errorf("negative factor must return 0, got %v", g)
	}
	if g := WeightedGeoMean(nil, nil); g != 0 {
		t.Errorf("empty input must return 0, got %v", g)
	}
	if g := WeightedGeoMean([]float64{1}, []float64{1, 2}); g != 0 {
		t.Errorf("mismatched lengths must return 0, got %v", g)
	}
}

func TestWeightedGeoMeanBounds(t *testing.T) {
	// Property: for inputs in (0,1], the result stays within [min, max].
	f := func(a, b uint8) bool {
		x := float64(a%100+1) / 100
		y := float64(b%100+1) / 100
		g := WeightedGeoMean([]float64{x, y}, []float64{3, 1})
		lo, hi := math.Min(x, y), math.Max(x, y)
		return g >= lo-1e-12 && g <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxplot(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	b := NewBoxplot(xs)
	if !almostEq(b.Median, 50) || !almostEq(b.P5, 5) || !almostEq(b.P95, 95) || !almostEq(b.Mean, 50) {
		t.Errorf("boxplot = %+v", b)
	}
	if b.N != 101 {
		t.Errorf("N = %d", b.N)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	for _, tc := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	} {
		if got := c.At(tc.x); !almostEq(got, tc.want) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := c.Quantile(1.0); q != 3 {
		t.Errorf("Quantile(1.0) = %v", q)
	}
	xs, ys := c.Points()
	if len(xs) != 3 || ys[len(ys)-1] != 1 {
		t.Errorf("Points = %v %v", xs, ys)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	// Property: At(Quantile(q)) >= q for q in (0,1].
	samples := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	c := NewCDF(samples)
	for q := 0.05; q <= 1.0; q += 0.05 {
		if c.At(c.Quantile(q)) < q-1e-9 {
			t.Errorf("At(Quantile(%v)) = %v < q", q, c.At(c.Quantile(q)))
		}
	}
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 90, FN: 10, FP: 5, TN: 95}
	if !almostEq(c.TPR(), 0.9) {
		t.Errorf("TPR = %v", c.TPR())
	}
	if !almostEq(c.FPR(), 0.05) {
		t.Errorf("FPR = %v", c.FPR())
	}
	if !almostEq(c.Precision(), 90.0/95.0) {
		t.Errorf("Precision = %v", c.Precision())
	}
	var zero Confusion
	if zero.TPR() != 0 || zero.FPR() != 0 || zero.Precision() != 0 {
		t.Error("zero confusion must have zero rates")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	a.Add(Confusion{TP: 10, FP: 20, TN: 30, FN: 40})
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestQuadrantOf(t *testing.T) {
	for _, tc := range []struct {
		tpr, fpr float64
		want     Quadrant
	}{
		{0.9, 0.1, TopLeft},
		{0.9, 0.9, TopRight},
		{0.1, 0.1, BottomLeft},
		{0.1, 0.9, BottomRight},
		{0.5, 0.499, TopLeft}, // boundary: TPR >= .5 counts as top
	} {
		if got := QuadrantOf(tc.tpr, tc.fpr); got != tc.want {
			t.Errorf("QuadrantOf(%v,%v) = %v, want %v", tc.tpr, tc.fpr, got, tc.want)
		}
	}
}

func TestQuadrantShares(t *testing.T) {
	tprs := []float64{0.9, 0.9, 0.1, 0.9}
	fprs := []float64{0.1, 0.9, 0.1, 0.2}
	s := QuadrantShares(tprs, fprs)
	if !almostEq(s[TopLeft], 0.5) || !almostEq(s[TopRight], 0.25) || !almostEq(s[BottomLeft], 0.25) || s[BottomRight] != 0 {
		t.Errorf("shares = %v", s)
	}
	var total float64
	for _, v := range s {
		total += v
	}
	if !almostEq(total, 1) {
		t.Errorf("shares must sum to 1, got %v", total)
	}
}

func TestQuadrantString(t *testing.T) {
	if TopLeft.String() != "top-left" || Quadrant(9).String() != "unknown" {
		t.Error("Quadrant.String broken")
	}
}

func TestPercentileIntsMatchesFloat(t *testing.T) {
	xs := []int{5, 1, 9, 3}
	if got, want := PercentileInts(xs, 50), Percentile([]float64{5, 1, 9, 3}, 50); !almostEq(got, want) {
		t.Errorf("PercentileInts = %v, want %v", got, want)
	}
}
