package stats

// Confusion holds the four cells of a binary classification outcome. In
// the SWIFT evaluation (§6.2) the "positive" class is "prefix withdrawn
// during the burst" and the "predicted positive" class is "prefix whose
// path traversed a link SWIFT inferred as failed".
type Confusion struct {
	TP, FP, TN, FN int
}

// TPR returns the true positive rate TP/(TP+FN), or 0 when undefined.
func (c Confusion) TPR() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// FPR returns the false positive rate FP/(FP+TN), or 0 when undefined.
func (c Confusion) FPR() float64 {
	d := c.FP + c.TN
	if d == 0 {
		return 0
	}
	return float64(c.FP) / float64(d)
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	d := c.TP + c.FP
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// Add accumulates another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Quadrant identifies the four regions of Fig. 6, splitting the TPR/FPR
// plane at 50%.
type Quadrant int

// The quadrants of Fig. 6. TopLeft is a very good inference (high TPR,
// low FPR); TopRight overestimates; BottomLeft underestimates; and
// BottomRight is a bad inference, which the paper reports SWIFT never
// produces.
const (
	TopLeft Quadrant = iota
	TopRight
	BottomLeft
	BottomRight
)

// String implements fmt.Stringer.
func (q Quadrant) String() string {
	switch q {
	case TopLeft:
		return "top-left"
	case TopRight:
		return "top-right"
	case BottomLeft:
		return "bottom-left"
	case BottomRight:
		return "bottom-right"
	}
	return "unknown"
}

// QuadrantOf classifies a (TPR, FPR) point, both in [0,1].
func QuadrantOf(tpr, fpr float64) Quadrant {
	switch {
	case tpr >= 0.5 && fpr < 0.5:
		return TopLeft
	case tpr >= 0.5:
		return TopRight
	case fpr < 0.5:
		return BottomLeft
	default:
		return BottomRight
	}
}

// QuadrantShares converts per-burst (TPR, FPR) points into the fraction
// of bursts in each quadrant, matching the percentages printed inside
// Fig. 6's corners. The two slices must have equal length.
func QuadrantShares(tprs, fprs []float64) (shares [4]float64) {
	if len(tprs) == 0 || len(tprs) != len(fprs) {
		return shares
	}
	var counts [4]int
	for i := range tprs {
		counts[QuadrantOf(tprs[i], fprs[i])]++
	}
	for q, c := range counts {
		shares[q] = float64(c) / float64(len(tprs))
	}
	return shares
}
