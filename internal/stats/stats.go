// Package stats provides the small statistical toolkit the SWIFT
// evaluation relies on: percentiles, empirical CDFs, boxplot summaries,
// weighted geometric means (the Fit Score of §4.1), and binary
// classification metrics (TPR/FPR/CPR of §6.2-§6.3).
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty input.
// xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileSorted is Percentile for inputs already in ascending order,
// avoiding the copy and sort. It is what the hot burst-detection path
// uses against its history window.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// PercentileInts is Percentile over integer samples.
func PercentileInts(xs []int, p float64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Percentile(fs, p)
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// WeightedGeoMean2 is the two-value WeightedGeoMean: (x1^w1 · x2^w2)^(1/(w1+w2)).
// It is the exact combinator of the SWIFT Fit Score — WS weighted
// against PS — inlined for the inference hot loop, which calls it once
// per scored link and must not allocate the two slices the general form
// takes. Semantics match WeightedGeoMean: a non-positive x forces 0, as
// does a zero weight sum.
func WeightedGeoMean2(x1, w1, x2, w2 float64) float64 {
	if x1 <= 0 || x2 <= 0 {
		return 0
	}
	wSum := w1 + w2
	if wSum == 0 {
		return 0
	}
	return math.Exp((w1*math.Log(x1) + w2*math.Log(x2)) / wSum)
}

// WeightedGeoMean computes (Π x_i^{w_i})^{1/Σw_i}, the combinator used by
// the SWIFT Fit Score. Any x_i == 0 forces the result to 0 (a link with
// zero withdrawal share can never be the root cause); negative inputs are
// invalid and also return 0. Hot callers with exactly two values use
// WeightedGeoMean2, which allocates nothing.
func WeightedGeoMean(xs, ws []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ws) {
		return 0
	}
	var logSum, wSum float64
	for i, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += ws[i] * math.Log(x)
		wSum += ws[i]
	}
	if wSum == 0 {
		return 0
	}
	return math.Exp(logSum / wSum)
}

// Boxplot summarizes a sample the way the paper's box-and-whisker figures
// do: median line, interquartile box, 5th/95th-percentile whiskers, and
// the mean dot of Fig. 7.
type Boxplot struct {
	P5, P25, Median, P75, P95, Mean float64
	N                               int
}

// NewBoxplot computes the summary. xs is not modified.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Boxplot{
		P5:     percentileSorted(s, 5),
		P25:    percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		P95:    percentileSorted(s, 95),
		Mean:   Mean(s),
		N:      len(s),
	}
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF. xs is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x) in [0,1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Move past equal values so At is P(X <= x), not P(X < x).
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// Points renders the CDF as (x, cumulative fraction) pairs suitable for
// plotting, one point per distinct sample value.
func (c *CDF) Points() (xs, ys []float64) {
	n := len(c.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && c.sorted[j] == c.sorted[i] {
			j++
		}
		xs = append(xs, c.sorted[i])
		ys = append(ys, float64(j)/float64(n))
		i = j
	}
	return xs, ys
}
