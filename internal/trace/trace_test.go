package trace

import (
	"testing"
	"time"

	"swift/internal/bgpsim"
)

// smallConfig keeps unit tests fast; the bench harness runs the
// paper-scale Default.
func smallConfig(seed int64) Config {
	return Config{
		NumASes:           200,
		AvgDegree:         6,
		Sessions:          30,
		Days:              30,
		Failures:          40,
		MaxPrefixes:       5000,
		PopularASes:       5,
		ASFailureFraction: 0.15,
		Timing:            bgpsim.DefaultTiming(seed),
		Seed:              seed,
	}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(smallConfig(1))
	if len(ds.Sessions) != 30 {
		t.Errorf("sessions = %d", len(ds.Sessions))
	}
	if len(ds.Failures) != 40 {
		t.Errorf("failures = %d", len(ds.Failures))
	}
	// Failure schedule must be sorted and within the capture.
	capture := 30 * 24 * time.Hour
	for i, f := range ds.Failures {
		if f.At < 0 || f.At > capture {
			t.Errorf("failure %d at %v outside capture", i, f.At)
		}
		if i > 0 && f.At < ds.Failures[i-1].At {
			t.Error("failures not sorted")
		}
	}
	// Prefix counts must be heavy-tailed: max well above median.
	max, total := 0, 0
	for _, c := range ds.Net.Origins {
		total += c
		if c > max {
			max = c
		}
	}
	if max < total/50 {
		t.Errorf("max origin %d not heavy-tailed vs total %d", max, total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if len(a.Failures) != len(b.Failures) {
		t.Fatal("failure counts differ")
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("failure %d differs: %+v vs %+v", i, a.Failures[i], b.Failures[i])
		}
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("session %d differs", i)
		}
	}
}

func TestCensusFindsBursts(t *testing.T) {
	ds := Generate(smallConfig(3))
	stats := ds.Census(100)
	if len(stats) == 0 {
		t.Fatal("no bursts of 100+ withdrawals in 40 failures")
	}
	for _, st := range stats {
		if st.Withdrawals < 100 {
			t.Errorf("census returned %d-withdrawal burst below threshold", st.Withdrawals)
		}
		if st.Duration <= 0 {
			t.Error("burst with zero duration")
		}
	}
	// Bigger threshold, fewer bursts.
	big := ds.Census(1000)
	if len(big) > len(stats) {
		t.Error("higher threshold must not find more bursts")
	}
}

func TestPopularOriginsAppearInLargeBursts(t *testing.T) {
	ds := Generate(smallConfig(5))
	stats := ds.Census(500)
	if len(stats) == 0 {
		t.Skip("no large bursts at this scale/seed")
	}
	popular := 0
	for _, st := range stats {
		if st.Popular {
			popular++
		}
	}
	// Hypergiants' prefixes ride most loaded links: the share of large
	// bursts touching them must be substantial (84% in the paper).
	if popular*2 < len(stats) {
		t.Errorf("popular bursts = %d/%d; expected a majority", popular, len(stats))
	}
}

func TestBurstsAtMaterializesEvents(t *testing.T) {
	ds := Generate(smallConfig(9))
	stats := ds.Census(200)
	if len(stats) == 0 {
		t.Skip("no bursts")
	}
	s := stats[0].Session
	bursts := ds.BurstsAt(s, 200)
	if len(bursts) == 0 {
		t.Fatal("census found bursts but BurstsAt did not")
	}
	b := bursts[0]
	if b.Size < 200 || len(b.Events) < b.Size {
		t.Errorf("burst size %d events %d", b.Size, len(b.Events))
	}
	for i := 1; i < len(b.Events); i++ {
		if b.Events[i].At < b.Events[i-1].At {
			t.Fatal("events not time-ordered")
		}
	}
	// The census' size estimate must match the materialized stream.
	if b.Size != stats[0].Withdrawals {
		// The first census entry and first burst correspond only when
		// they reference the same failure; find the matching stat.
		found := false
		for _, st := range stats {
			if st.Session == s && st.Withdrawals == b.Size {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("materialized size %d matches no census row", b.Size)
		}
	}
}

func TestDeltaCaching(t *testing.T) {
	ds := Generate(smallConfig(11))
	d1 := ds.Delta(0)
	d2 := ds.Delta(0)
	if d1 != d2 {
		t.Error("delta not cached")
	}
}

func TestSessionRIBCoversOrigins(t *testing.T) {
	ds := Generate(smallConfig(13))
	s := ds.Sessions[0]
	ribByOrigin := ds.SessionRIB(s)
	// A provider exports nearly the full table to its customer.
	if len(ribByOrigin) < ds.Net.Graph.NumASes()/2 {
		t.Errorf("session RIB has %d origins of %d", len(ribByOrigin), ds.Net.Graph.NumASes())
	}
	for origin, path := range ribByOrigin {
		if len(path) == 0 {
			t.Fatalf("empty path for origin %d", origin)
		}
		if path[0] != s.Neighbor {
			t.Fatalf("path for %d starts at %d, want neighbor %d", origin, path[0], s.Neighbor)
		}
	}
}

func TestEstimateDurationMonotone(t *testing.T) {
	tm := bgpsim.DefaultTiming(1)
	small := bgpsim.EstimateDuration(tm, 1000, 0)
	large := bgpsim.EstimateDuration(tm, 100000, 0)
	if large <= small {
		t.Errorf("duration not monotone: %v vs %v", small, large)
	}
	if bgpsim.EstimateDuration(tm, 0, 0) != 0 {
		t.Error("empty burst must have zero duration")
	}
}
