package trace

import (
	"bytes"
	"testing"
	"time"

	"swift/internal/netaddr"
)

func TestMRTRoundTripRIB(t *testing.T) {
	ds := Generate(smallConfig(21))
	s := ds.Sessions[0]

	var buf bytes.Buffer
	written, err := ds.WriteSessionRIB(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 {
		t.Fatal("empty RIB")
	}
	got := make(map[netaddr.Prefix][]uint32)
	read, err := ReadRIBInto(bytes.NewReader(buf.Bytes()), func(p netaddr.Prefix, path []uint32) {
		got[p] = append([]uint32(nil), path...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if read != written {
		t.Fatalf("read %d records, wrote %d", read, written)
	}
	// Spot-check against the source of truth.
	for origin, path := range ds.SessionRIB(s) {
		p := netaddr.PrefixFor(origin, 0)
		gp, ok := got[p]
		if !ok {
			t.Fatalf("prefix %v missing from round trip", p)
		}
		if len(gp) != len(path) {
			t.Fatalf("path length mismatch for %v: %v vs %v", p, gp, path)
		}
		for i := range gp {
			if gp[i] != path[i] {
				t.Fatalf("path mismatch for %v: %v vs %v", p, gp, path)
			}
		}
		break
	}
}

func TestMRTRoundTripUpdates(t *testing.T) {
	ds := Generate(smallConfig(23))
	// Find a session with bursts.
	census := ds.Census(200)
	if len(census) == 0 {
		t.Skip("no bursts at this scale")
	}
	s := census[0].Session

	var buf bytes.Buffer
	records, bursts, err := ds.WriteSessionUpdates(&buf, s, 200)
	if err != nil {
		t.Fatal(err)
	}
	if bursts == 0 || records == 0 {
		t.Fatalf("bursts=%d records=%d", bursts, records)
	}

	var withdrawals, announces int
	var prev time.Time
	monotonePerBurst := true
	n, err := ReadUpdates(bytes.NewReader(buf.Bytes()), func(ev UpdateEvent) {
		if ev.Withdraw {
			withdrawals++
		} else {
			announces++
			if len(ev.Path) == 0 {
				t.Error("announcement without AS path")
			}
		}
		// Timestamps are non-decreasing within the file except at burst
		// boundaries (failures are spread over the month).
		if !prev.IsZero() && ev.At.Before(prev.Add(-24*time.Hour)) {
			monotonePerBurst = false
		}
		prev = ev.At
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != withdrawals+announces {
		t.Fatalf("event count mismatch: %d vs %d", n, withdrawals+announces)
	}
	// The file must contain each burst's withdrawals.
	expected := 0
	for _, st := range ds.Census(200) {
		if st.Session == s {
			expected += st.Withdrawals
		}
	}
	if withdrawals != expected {
		t.Errorf("withdrawals = %d, census says %d", withdrawals, expected)
	}
	_ = monotonePerBurst // informational; burst batching may reorder at boundaries
}

func TestReadUpdatesRejectsGarbage(t *testing.T) {
	if _, err := ReadUpdates(bytes.NewReader([]byte("not an mrt file at all")), func(UpdateEvent) {}); err == nil {
		t.Error("garbage must not parse")
	}
}
