package trace

import (
	"fmt"
	"io"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpsim"
	"swift/internal/mrt"
	"swift/internal/netaddr"
)

// Epoch is the nominal start of every synthesized capture — the first
// day of the paper's measurement month.
var Epoch = time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)

// WriteSessionRIB dumps a session's initial table as TABLE_DUMP_V2
// records, the format RouteViews RIB snapshots use.
func (ds *Dataset) WriteSessionRIB(w io.Writer, s Session) (records int, err error) {
	mw := mrt.NewWriter(w)
	if err := mw.WritePeerIndexTable(Epoch, s.Vantage, []mrt.PeerEntry{
		{ID: s.Neighbor, IP: 0x0a000001, AS: s.Neighbor},
	}); err != nil {
		return 0, err
	}
	seq := uint32(0)
	for origin, path := range ds.SessionRIB(s) {
		for i := 0; i < ds.Net.Origins[origin]; i++ {
			rec := &mrt.RIBRecord{
				Sequence: seq,
				Prefix:   netaddr.PrefixFor(origin, i),
				Entries: []mrt.RIBEntry{{
					PeerIndex:  0,
					Originated: Epoch.Add(-24 * time.Hour),
					Attrs: bgp.Attrs{
						ASPath:     path,
						HasNextHop: true,
						NextHop:    0x0a000001,
					},
				}},
			}
			seq++
			if err := mw.WriteRIBIPv4(Epoch, rec); err != nil {
				return int(seq), err
			}
		}
	}
	return int(seq), mw.Flush()
}

// WriteSessionUpdates dumps every burst the session observes (at least
// minBurst withdrawals) as BGP4MP update records, packing withdrawals
// into shared UPDATE messages like a real speaker. It returns the
// number of MRT records written.
func (ds *Dataset) WriteSessionUpdates(w io.Writer, s Session, minBurst int) (records, bursts int, err error) {
	mw := mrt.NewWriter(w)
	for i := range ds.Failures {
		d := ds.Delta(i)
		wd, _ := ds.Base.BurstSizeAt(d, s.Vantage, s.Neighbor)
		if wd < minBurst {
			continue
		}
		tm := ds.Cfg.Timing
		tm.Seed = ds.Cfg.Seed ^ int64(i)<<20 ^ int64(s.Vantage)<<8 ^ int64(s.Neighbor)
		b := ds.Base.BurstAt(d, s.Vantage, s.Neighbor, tm)
		bursts++
		at := Epoch.Add(ds.Failures[i].At)

		var batch []netaddr.Prefix
		var batchAt time.Time
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			for _, u := range bgp.PackWithdrawals(batch) {
				if err := mw.WriteBGP4MP(batchAt, s.Neighbor, s.Vantage, 0x0a000001, 0x0a000002, u); err != nil {
					return err
				}
				records++
			}
			batch = batch[:0]
			return nil
		}
		for _, ev := range b.Events {
			ts := at.Add(ev.At)
			if ev.Kind == bgpsim.KindWithdraw {
				if len(batch) == 0 {
					batchAt = ts
				}
				batch = append(batch, ev.Prefix)
				if len(batch) >= 500 {
					if err := flush(); err != nil {
						return records, bursts, err
					}
				}
				continue
			}
			if err := flush(); err != nil {
				return records, bursts, err
			}
			u := &bgp.Update{
				Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 0x0a000001},
				NLRI:  []netaddr.Prefix{ev.Prefix},
			}
			if err := mw.WriteBGP4MP(ts, s.Neighbor, s.Vantage, 0x0a000001, 0x0a000002, u); err != nil {
				return records, bursts, err
			}
			records++
		}
		if err := flush(); err != nil {
			return records, bursts, err
		}
	}
	return records, bursts, mw.Flush()
}

// ReadRIBInto replays a TABLE_DUMP_V2 stream into per-prefix routes,
// calling fn for each (prefix, AS path) pair.
func ReadRIBInto(r io.Reader, fn func(p netaddr.Prefix, path []uint32)) (int, error) {
	mr := mrt.NewReader(r)
	n := 0
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rr, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			return n, fmt.Errorf("trace: RIB record: %w", err)
		}
		for _, e := range rr.Entries {
			fn(rr.Prefix, e.Attrs.ASPath)
			n++
		}
	}
}

// UpdateEvent is one per-prefix message decoded from an MRT update file.
type UpdateEvent struct {
	At       time.Time
	Withdraw bool
	Prefix   netaddr.Prefix
	Path     []uint32
}

// ReadUpdates decodes a BGP4MP update stream into per-prefix events,
// calling fn for each in file order.
func ReadUpdates(r io.Reader, fn func(UpdateEvent)) (int, error) {
	mr := mrt.NewReader(r)
	var d bgp.UpdateDecoder
	n := 0
	for {
		m, err := mr.NextBGP4MP()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if m.Header.Type != bgp.TypeUpdate {
			continue
		}
		if err := d.Decode(m.Body); err != nil {
			return n, fmt.Errorf("trace: update at %v: %w", m.Timestamp, err)
		}
		for _, p := range d.Withdrawn {
			fn(UpdateEvent{At: m.Timestamp, Withdraw: true, Prefix: p})
			n++
		}
		if len(d.NLRI) > 0 {
			path := append([]uint32(nil), d.Attrs.ASPath...)
			for _, p := range d.NLRI {
				fn(UpdateEvent{At: m.Timestamp, Prefix: p, Path: path})
				n++
			}
		}
	}
}
