// Package trace synthesizes the RouteViews/RIPE-RIS-like dataset the
// SWIFT evaluation runs on (§2.2, §6.1): a month of BGP activity over a
// synthetic Internet, observed from a couple hundred peering sessions.
// Failures of heavily-loaded links produce bursts whose sizes, arrival
// shapes and noise floor are calibrated against the statistics the
// paper reports for November 2016 (3,335 bursts across 213 sessions,
// 16% above 10k withdrawals, heavy tails, a 9-withdrawal 90th-percentile
// noise floor per 10 s window, and "popular" origins present in most
// large bursts).
//
// The substitution preserves what the algorithms consume: timestamped
// per-session streams of per-prefix withdrawals and announcements whose
// root cause is unknown to the consumer but known to the evaluator.
package trace

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/topology"
)

// Config parameterizes a dataset.
type Config struct {
	// NumASes sizes the synthetic Internet (default 1,000).
	NumASes int
	// AvgDegree matches CAIDA's October 2016 value by default (8.4).
	AvgDegree float64
	// Sessions is the number of collector peering sessions (213 in the
	// paper's dataset).
	Sessions int
	// Days is the capture length (30 = the paper's month).
	Days int
	// Failures is the number of link/router outages over the capture.
	Failures int
	// MaxPrefixes caps the largest origin's table (power-law sizes).
	MaxPrefixes int
	// PopularASes marks the top-N origins by prefix count as "popular"
	// (the Umbrella-top-100 analog; 15 organizations in the paper).
	PopularASes int
	// ASFailureFraction is the share of outages that kill a whole AS
	// (multi-link failures) rather than a single link.
	ASFailureFraction float64
	// Timing shapes per-burst message arrival.
	Timing bgpsim.Timing
	// Seed drives all randomness.
	Seed int64
}

// Default returns a dataset shaped like the paper's, at a scale a
// laptop solves in seconds.
func Default(seed int64) Config {
	return Config{
		NumASes:           1000,
		AvgDegree:         8.4,
		Sessions:          213,
		Days:              30,
		Failures:          260,
		MaxPrefixes:       30000,
		PopularASes:       15,
		ASFailureFraction: 0.15,
		Timing:            bgpsim.DefaultTiming(seed),
		Seed:              seed,
	}
}

// Session is one collector peering: the stream is what Neighbor exports
// to Vantage.
type Session struct {
	Vantage  uint32
	Neighbor uint32
}

// Failure is one scheduled outage.
type Failure struct {
	At time.Duration // offset into the capture
	// Link is the failed link; for AS failures, DeadAS is set and Link
	// is one of its links.
	Link   topology.Link
	DeadAS uint32 // 0 for plain link failures
}

// Dataset is a fully materialized synthetic capture.
type Dataset struct {
	Cfg      Config
	Net      *bgpsim.Network
	Base     *bgpsim.Baseline
	Sessions []Session
	Failures []Failure
	popular  map[uint32]bool
	deltas   map[int]*bgpsim.FailureDelta // lazily computed per failure
	census   map[int][]BurstStat          // memoized Census results
	bursts   map[burstKey][]*bgpsim.Burst // memoized BurstsAt results
	rng      *rand.Rand
}

// Generate builds the dataset: topology, prefix counts, sessions and
// the failure schedule. The expensive per-failure re-solves happen
// lazily on first use and are cached.
func Generate(cfg Config) *Dataset {
	if cfg.NumASes == 0 {
		cfg = mergeDefaults(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.Generate(topology.GenConfig{
		NumASes:   cfg.NumASes,
		AvgDegree: cfg.AvgDegree,
		Seed:      cfg.Seed,
	})

	// Power-law prefix counts: count_i ~ MaxPrefixes / rank^0.8, with
	// a floor of 5. Popularity follows table size, like the handful of
	// hypergiant origins in the real table.
	ases := g.ASes()
	perm := rng.Perm(len(ases))
	origins := make(map[uint32]int, len(ases))
	popular := make(map[uint32]bool)
	for rank, idx := range perm {
		as := ases[idx]
		count := int(float64(cfg.MaxPrefixes) / math.Pow(float64(rank+1), 0.8))
		if count < 5 {
			count = 5
		}
		if count > 1<<20-1 {
			count = 1<<20 - 1
		}
		origins[as] = count
		if rank < cfg.PopularASes {
			popular[as] = true
		}
	}

	net := &bgpsim.Network{Graph: g, Policy: &bgpsim.Policy{}, Origins: origins}
	base := net.Baseline()

	ds := &Dataset{
		Cfg:     cfg,
		Net:     net,
		Base:    base,
		popular: popular,
		deltas:  make(map[int]*bgpsim.FailureDelta),
		census:  make(map[int][]BurstStat),
		bursts:  make(map[burstKey][]*bgpsim.Burst),
		rng:     rng,
	}
	ds.pickSessions(rng)
	ds.scheduleFailures(rng)
	return ds
}

func mergeDefaults(cfg Config) Config {
	d := Default(cfg.Seed)
	d.Seed = cfg.Seed
	return d
}

// pickSessions samples customer→provider edges as collector peerings:
// the provider side is the monitored peer (real collectors peer with
// transit routers).
func (ds *Dataset) pickSessions(rng *rand.Rand) {
	var candidates []Session
	for _, as := range ds.Net.Graph.ASes() {
		for _, nb := range ds.Net.Graph.Neighbors(as) {
			if nb.Rel == topology.RelProvider {
				candidates = append(candidates, Session{Vantage: as, Neighbor: nb.AS})
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Vantage != candidates[j].Vantage {
			return candidates[i].Vantage < candidates[j].Vantage
		}
		return candidates[i].Neighbor < candidates[j].Neighbor
	})
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	n := ds.Cfg.Sessions
	if n > len(candidates) {
		n = len(candidates)
	}
	ds.Sessions = candidates[:n]
}

// scheduleFailures samples outage targets weighted by how many routing
// trees cross each link: heavily loaded links fail as often as light
// ones in reality, but only loaded ones produce observable bursts, and
// the capture — like the paper's — is defined by its bursts.
func (ds *Dataset) scheduleFailures(rng *rand.Rand) {
	links := ds.Net.Graph.Links()
	weights := make([]float64, len(links))
	total := 0.0
	for i, l := range links {
		w := float64(len(ds.Base.AffectedOrigins(l)))
		weights[i] = w
		total += w
	}
	capture := time.Duration(ds.Cfg.Days) * 24 * time.Hour
	for f := 0; f < ds.Cfg.Failures; f++ {
		at := time.Duration(rng.Int63n(int64(capture)))
		pick := rng.Float64() * total
		idx := 0
		for i, w := range weights {
			pick -= w
			if pick <= 0 {
				idx = i
				break
			}
		}
		fail := Failure{At: at, Link: links[idx]}
		if rng.Float64() < ds.Cfg.ASFailureFraction {
			// Kill the endpoint with more links (a core router outage).
			if ds.Net.Graph.Degree(links[idx].A) >= ds.Net.Graph.Degree(links[idx].B) {
				fail.DeadAS = links[idx].A
			} else {
				fail.DeadAS = links[idx].B
			}
		}
		ds.Failures = append(ds.Failures, fail)
	}
	sort.Slice(ds.Failures, func(i, j int) bool { return ds.Failures[i].At < ds.Failures[j].At })
}

// Popular reports whether an origin is one of the hypergiant analogs.
func (ds *Dataset) Popular(origin uint32) bool { return ds.popular[origin] }

// Delta returns (computing and caching on first use) the routing delta
// of failure i.
func (ds *Dataset) Delta(i int) *bgpsim.FailureDelta {
	if d, ok := ds.deltas[i]; ok {
		return d
	}
	f := ds.Failures[i]
	var d *bgpsim.FailureDelta
	if f.DeadAS != 0 {
		d = ds.Base.FailAS(f.DeadAS)
	} else {
		d = ds.Base.FailLink(f.Link)
	}
	ds.deltas[i] = d
	return d
}

// BurstStat is the cheap per-(failure, session) census row.
type BurstStat struct {
	FailureIdx  int
	Session     Session
	At          time.Duration
	Withdrawals int
	Announces   int
	Duration    time.Duration
	// Popular reports whether the burst withdraws any popular origin.
	Popular bool
}

// Census computes burst sizes and durations for every (failure,
// session) pair with at least minWithdrawals, without materializing the
// event streams. This powers the Fig. 2 analysis.
func (ds *Dataset) Census(minWithdrawals int) []BurstStat {
	if out, ok := ds.census[minWithdrawals]; ok {
		return out
	}
	var out []BurstStat
	for i := range ds.Failures {
		d := ds.Delta(i)
		for _, s := range ds.Sessions {
			w, a := ds.Base.BurstSizeAt(d, s.Vantage, s.Neighbor)
			if w < minWithdrawals {
				continue
			}
			// Per-burst timing seed, identical to BurstsAt's, so the
			// census duration matches the materialized stream.
			tm := ds.Cfg.Timing
			tm.Seed = ds.Cfg.Seed ^ int64(i)<<20 ^ int64(s.Vantage)<<8 ^ int64(s.Neighbor)
			stat := BurstStat{
				FailureIdx:  i,
				Session:     s,
				At:          ds.Failures[i].At,
				Withdrawals: w,
				Announces:   a,
				Duration:    bgpsim.EstimateDuration(tm, w, a),
			}
			for _, c := range d.SessionChanges(ds.Base, s.Vantage, s.Neighbor) {
				if c.Withdraw && ds.popular[c.Origin] {
					stat.Popular = true
					break
				}
			}
			out = append(out, stat)
		}
	}
	ds.census[minWithdrawals] = out
	return out
}

type burstKey struct {
	s   Session
	min int
}

// BurstsAt materializes full event streams for every failure visible at
// the session with at least minWithdrawals — the workload for the
// inference and encoding evaluations (Fig. 6, Table 2, Fig. 7, Fig. 8).
// Results are memoized: experiments replay the same streams repeatedly.
func (ds *Dataset) BurstsAt(s Session, minWithdrawals int) []*bgpsim.Burst {
	key := burstKey{s: s, min: minWithdrawals}
	if out, ok := ds.bursts[key]; ok {
		return out
	}
	var out []*bgpsim.Burst
	for i := range ds.Failures {
		d := ds.Delta(i)
		w, _ := ds.Base.BurstSizeAt(d, s.Vantage, s.Neighbor)
		if w < minWithdrawals {
			continue
		}
		tm := ds.Cfg.Timing
		tm.Seed = ds.Cfg.Seed ^ int64(i)<<20 ^ int64(s.Vantage)<<8 ^ int64(s.Neighbor)
		out = append(out, ds.Base.BurstAt(d, s.Vantage, s.Neighbor, tm))
	}
	ds.bursts[key] = out
	return out
}

// SessionRIB returns a session's initial table keyed by origin.
func (ds *Dataset) SessionRIB(s Session) map[uint32][]uint32 {
	return ds.Net.SessionRIB(ds.Base.Sols, s.Vantage, s.Neighbor)
}

// NoiseWindowP90 returns the calibrated per-window noise floor the
// paper measured (9 withdrawals per 10 s at the 90th percentile); the
// burst detector's stop threshold comes from here.
func NoiseWindowP90() int { return 9 }
