package snapshot

import (
	"bytes"
	"hash/crc32"
	"strings"
	"testing"

	"swift/internal/event"
	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/swift"
	"swift/internal/topology"
)

// testImage builds a small but fully populated fleet image from a real
// engine: provisioned scheme and FIB, alternates, and a shared pool.
func testImage(t testing.TB) *FleetImage {
	pool := rib.NewPool()
	cfg := swift.Config{LocalAS: 1, PrimaryNeighbor: 2, Pool: pool}
	cfg.Encoding.MinPrefixes = 4
	eng := swift.New(cfg)
	for i := 0; i < 32; i++ {
		p := netaddr.PrefixFor(8, i)
		eng.LearnPrimary(p, []uint32{2, 5 + uint32(i%3), 6})
		eng.LearnAlternate(3, p, []uint32{3, 6})
	}
	if err := eng.Provision(); err != nil {
		t.Fatal(err)
	}
	return &FleetImage{
		Pool: pool.Export(),
		Peers: []PeerImage{
			{Key: event.PeerKey{AS: 2, BGPID: 9}, State: eng.ExportState()},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	img := testImage(t)
	var buf bytes.Buffer
	if err := Write(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Peers) != 1 || got.Peers[0].Key != img.Peers[0].Key {
		t.Fatalf("peers round-tripped wrong: %+v", got.Peers)
	}
	if len(got.Pool.Paths) != len(img.Pool.Paths) || len(got.Pool.Links) != len(img.Pool.Links) {
		t.Fatalf("pool %d paths/%d links, want %d/%d",
			len(got.Pool.Paths), len(got.Pool.Links), len(img.Pool.Paths), len(img.Pool.Links))
	}
	if len(got.Peers[0].State.Table.Routes) != 32 {
		t.Fatalf("table routes %d, want 32", len(got.Peers[0].State.Table.Routes))
	}
	if got.Peers[0].State.Scheme == nil || got.Peers[0].State.Plan == nil {
		t.Fatal("provisioned scheme/plan lost in round trip")
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-serialization differs: %d vs %d bytes", buf.Len(), buf2.Len())
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	img := testImage(t)
	var buf bytes.Buffer
	if err := Write(&buf, img); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every single-byte flip must be caught — by a structural check or,
	// failing that, the trailing CRC.
	for _, off := range []int{0, 5, len(magic), len(magic) + 2, len(good) / 3, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x20
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Errorf("flip at offset %d accepted", off)
		}
	}
	for _, cut := range []int{1, 4, len(good) / 2, len(good) - 1} {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

// section assembles magic+version plus raw (kind, payload) pairs with a
// valid trailing checksum, for structural-error tests.
func rawStream(sections ...[2]any) []byte {
	var e enc
	b := []byte(magic)
	e.u32(Version)
	b = append(b, e.take()...)
	for _, s := range sections {
		kind, payload := s[0].(uint32), s[1].([]byte)
		var h enc
		h.u32(kind)
		h.u64(uint64(len(payload)))
		b = append(b, h.take()...)
		b = append(b, payload...)
	}
	var h enc
	h.u32(secEnd)
	h.u64(4)
	b = append(b, h.take()...)
	var tail enc
	tail.u32(crc32.ChecksumIEEE(b))
	return append(b, tail.take()...)
}

func TestWireStructuralErrors(t *testing.T) {
	emptyPool := func() []byte {
		var e enc
		e.u64(1) // one link: the reserved zero entry
		e.link(topology.Link{})
		e.u64(0) // no paths
		return e.take()
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"bad magic", append([]byte("NOTASNAP"), rawStream()[8:]...), "magic"},
		{"peer before pool", rawStream([2]any{secPeer, []byte{}}), "before pool"},
		{"duplicate pool", rawStream([2]any{secPool, emptyPool()}, [2]any{secPool, emptyPool()}), "duplicate"},
		{"unknown section", rawStream([2]any{uint32(77), []byte{}}), "unknown section"},
		{"no pool", rawStream(), "no pool"},
		{"trailing bytes", rawStream([2]any{secPool, append(emptyPool(), 0)}), "trailing"},
	}
	for _, tc := range cases {
		_, err := Read(bytes.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
