// Package snapshot is SWIFT's warm-restart wire format: a versioned,
// length-prefixed binary serialization of a whole fleet — the shared
// path/link intern pool plus every peer engine's state — that restores
// without re-ingesting MRT or BMP dumps. The paper's monitor is
// long-lived (§7 runs it continuously against live BGP feeds); a
// restart that had to replay a multi-gigabyte RIB dump to get back to
// provisioned FIBs would hold reroute protection down for minutes.
//
// Layout (all integers little-endian, fixed width):
//
//	magic "SWFTSNAP" | u32 version
//	section*           u32 kind | u64 payload length | payload
//	end section        u32 0xffffffff | u64 4 | u32 CRC-32 (IEEE)
//
// The CRC covers every byte before it, headers included. Section
// payloads are themselves fixed-width fields and u64-counted arrays —
// no varints, no padding — so a given FleetImage always serializes to
// the same bytes, and the images export in canonical order, so a
// restored fleet re-snapshots byte-identically.
package snapshot

import (
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"time"

	"swift/internal/burst"
	"swift/internal/dataplane"
	"swift/internal/encoding"
	"swift/internal/event"
	"swift/internal/netaddr"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/swift"
	"swift/internal/topology"
)

// Version is the current wire-format version. Readers reject anything
// else: the format carries dense pool ids and compiled tag layouts, so
// cross-version migration means re-provisioning, not bit reshuffling.
const Version = 1

const magic = "SWFTSNAP"

const (
	secPool uint32 = 1
	secPeer uint32 = 2
	secEnd  uint32 = 0xffffffff
)

// PeerImage is one peer engine keyed by its BGP session identity.
type PeerImage struct {
	Key   event.PeerKey
	State swift.EngineState
}

// FleetImage is a whole fleet: the shared intern pool and the peers in
// ascending (AS, BGPID) order.
type FleetImage struct {
	Pool  rib.PoolImage
	Peers []PeerImage
}

// Write serializes img to w.
func Write(w io.Writer, img *FleetImage) error {
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return err
	}
	var e enc
	e.u32(Version)
	if err := cw.flush(&e); err != nil {
		return err
	}
	encodePool(&e, &img.Pool)
	if err := writeSection(cw, &e, secPool); err != nil {
		return err
	}
	for i := range img.Peers {
		encodePeer(&e, &img.Peers[i])
		if err := writeSection(cw, &e, secPeer); err != nil {
			return err
		}
	}
	e.u32(secEnd)
	e.u64(4)
	if err := cw.flush(&e); err != nil {
		return err
	}
	// The checksum itself is outside the hashed span.
	e.u32(cw.crc.Sum32())
	_, err := w.Write(e.take())
	return err
}

// Read parses one fleet image from r, verifying the trailing checksum.
func Read(r io.Reader) (*FleetImage, error) {
	cr := &crcReader{r: r, crc: crc32.NewIEEE()}
	hdr := make([]byte, len(magic)+4)
	if _, err := io.ReadFull(cr, hdr); err != nil {
		return nil, fmt.Errorf("snapshot: header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", hdr[:len(magic)])
	}
	if v := leU32(hdr[len(magic):]); v != Version {
		return nil, fmt.Errorf("snapshot: version %d, want %d", v, Version)
	}
	img := &FleetImage{}
	poolSeen := false
	sec := make([]byte, 12)
	for {
		if _, err := io.ReadFull(cr, sec); err != nil {
			return nil, fmt.Errorf("snapshot: section header: %w", err)
		}
		kind, n := leU32(sec), leU64(sec[4:])
		if kind == secEnd {
			if n != 4 {
				return nil, fmt.Errorf("snapshot: end section length %d", n)
			}
			want := cr.crc.Sum32()
			var sum [4]byte
			if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
				return nil, fmt.Errorf("snapshot: checksum: %w", err)
			}
			if got := leU32(sum[:]); got != want {
				return nil, fmt.Errorf("snapshot: checksum mismatch: stored %#x, computed %#x", got, want)
			}
			break
		}
		if n > 1<<34 {
			return nil, fmt.Errorf("snapshot: section %d length %d implausible", kind, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(cr, payload); err != nil {
			return nil, fmt.Errorf("snapshot: section %d payload: %w", kind, err)
		}
		d := &dec{b: payload}
		switch kind {
		case secPool:
			if poolSeen {
				return nil, fmt.Errorf("snapshot: duplicate pool section")
			}
			poolSeen = true
			decodePool(d, &img.Pool)
		case secPeer:
			if !poolSeen {
				return nil, fmt.Errorf("snapshot: peer section before pool section")
			}
			var p PeerImage
			decodePeer(d, &p)
			if d.err == nil {
				if k := len(img.Peers); k > 0 && !keyLess(img.Peers[k-1].Key, p.Key) {
					return nil, fmt.Errorf("snapshot: peers not ascending at %s", p.Key)
				}
				img.Peers = append(img.Peers, p)
			}
		default:
			return nil, fmt.Errorf("snapshot: unknown section kind %d", kind)
		}
		if d.err != nil {
			return nil, d.err
		}
		if d.off != len(d.b) {
			return nil, fmt.Errorf("snapshot: section %d has %d trailing bytes", kind, len(d.b)-d.off)
		}
	}
	if !poolSeen {
		return nil, fmt.Errorf("snapshot: no pool section")
	}
	return img, nil
}

func keyLess(a, b event.PeerKey) bool {
	if a.AS != b.AS {
		return a.AS < b.AS
	}
	return a.BGPID < b.BGPID
}

// --- section encodings -------------------------------------------------

func encodePool(e *enc, p *rib.PoolImage) {
	e.u64(uint64(len(p.Links)))
	for _, l := range p.Links {
		e.link(l)
	}
	e.u64(uint64(len(p.Paths)))
	for _, pi := range p.Paths {
		e.u32(uint32(pi.ID))
		e.u32s(pi.Path)
	}
}

func decodePool(d *dec, p *rib.PoolImage) {
	n := d.count(8)
	p.Links = make([]topology.Link, n)
	for i := range p.Links {
		p.Links[i] = d.link()
	}
	n = d.count(12)
	p.Paths = make([]rib.PathImage, n)
	for i := range p.Paths {
		p.Paths[i].ID = rib.PathID(d.u32())
		p.Paths[i].Path = d.u32sArena()
	}
}

func encodeTable(e *enc, t *rib.TableImage) {
	e.u32(t.LocalAS)
	e.u64(uint64(len(t.Routes)))
	for _, r := range t.Routes {
		e.u64(uint64(r.Prefix))
		e.u32(uint32(r.Path))
	}
}

func decodeTable(d *dec, t *rib.TableImage) {
	t.LocalAS = d.u32()
	n := d.count(12)
	t.Routes = make([]rib.RouteImage, n)
	for i := range t.Routes {
		t.Routes[i].Prefix = d.prefix()
		t.Routes[i].Path = rib.PathID(d.u32())
	}
}

func encodePeer(e *enc, p *PeerImage) {
	st := &p.State
	e.u32(p.Key.AS)
	e.u32(p.Key.BGPID)
	encodeTable(e, &st.Table)
	e.u64(uint64(len(st.Alts)))
	for i := range st.Alts {
		e.u32(st.Alts[i].Neighbor)
		encodeTable(e, &st.Alts[i].Table)
	}
	e.u64(uint64(len(st.History.Counts)))
	for _, c := range st.History.Counts {
		e.i64(int64(c.Value))
		e.i64(int64(c.Count))
	}
	e.u8(uint8(st.Detector.State))
	e.i64(int64(st.Detector.Started))
	e.i64(int64(st.Detector.Count))
	e.u64(uint64(len(st.Detector.Times)))
	for _, t := range st.Detector.Times {
		e.i64(int64(t))
	}
	e.bool(st.Plan != nil)
	if st.Plan != nil {
		e.i64(int64(st.Plan.LocalAS))
		e.i64(int64(st.Plan.Depth))
		e.u64(uint64(len(st.Plan.Backups)))
		for _, b := range st.Plan.Backups {
			e.u64(uint64(b.Prefix))
			e.u32s(b.Row)
		}
		e.u64(uint64(len(st.Plan.Assigned)))
		for _, a := range st.Plan.Assigned {
			e.u32(a.NH)
			e.i64(int64(a.Count))
		}
	}
	e.bool(st.Scheme != nil)
	if st.Scheme != nil {
		s := st.Scheme
		e.i64(int64(s.Cfg.TagBits))
		e.i64(int64(s.Cfg.PathBits))
		e.i64(int64(s.Cfg.MaxDepth))
		e.i64(int64(s.Cfg.MinPrefixes))
		e.i64(int64(s.Cfg.NHBits))
		e.u32(s.LocalAS)
		e.u64(uint64(len(s.LinkDicts)))
		for _, dict := range s.LinkDicts {
			e.u64(uint64(len(dict)))
			for _, lv := range dict {
				e.link(lv.Link)
				e.u64(lv.Value)
			}
		}
		e.u64(uint64(len(s.NHs)))
		for _, nv := range s.NHs {
			e.u32(nv.AS)
			e.u64(nv.Value)
		}
		e.u64(uint64(len(s.Tags)))
		for _, t := range s.Tags {
			e.u64(uint64(t.Prefix))
			e.u64(uint64(t.Tag))
		}
	}
	e.u64(uint64(len(st.FIB.Tags)))
	for _, t := range st.FIB.Tags {
		e.u64(uint64(t.Prefix))
		e.u64(uint64(t.Tag))
	}
	e.u64(uint64(len(st.FIB.Rules)))
	for _, r := range st.FIB.Rules {
		e.u64(uint64(r.Value))
		e.u64(uint64(r.Mask))
		e.u32(r.NextHop)
		e.i64(int64(r.Priority))
	}
	e.i64(int64(st.FIB.Writes))
	e.i64(int64(st.FIB.Elapsed))
	e.u64(st.ProvisionSig)
	e.bool(st.HaveProvision)
	e.i64(int64(st.LastWithdrawal))
	e.i64(int64(st.BurstStartAt))
	e.bool(st.RerouteActive)
	e.links(st.OwnLinks)
	e.bool(st.ExtActive)
	e.links(st.ExtLinks)
	e.u64(st.ExtEpoch)
}

func decodePeer(d *dec, p *PeerImage) {
	st := &p.State
	p.Key.AS = d.u32()
	p.Key.BGPID = d.u32()
	decodeTable(d, &st.Table)
	n := d.count(16)
	st.Alts = make([]swift.AltState, n)
	for i := range st.Alts {
		st.Alts[i].Neighbor = d.u32()
		decodeTable(d, &st.Alts[i].Table)
	}
	n = d.count(16)
	if n > 0 {
		st.History.Counts = make([]burst.HistoryCount, n)
		for i := range st.History.Counts {
			st.History.Counts[i].Value = int(d.i64())
			st.History.Counts[i].Count = int(d.i64())
		}
	}
	st.Detector.State = burst.State(d.u8())
	st.Detector.Started = time.Duration(d.i64())
	st.Detector.Count = int(d.i64())
	n = d.count(8)
	if n > 0 {
		st.Detector.Times = make([]time.Duration, n)
		for i := range st.Detector.Times {
			st.Detector.Times[i] = time.Duration(d.i64())
		}
	}
	if d.bool() {
		pl := &reroute.PlanImage{
			LocalAS: int(d.i64()),
			Depth:   int(d.i64()),
		}
		n = d.count(16)
		pl.Backups = make([]reroute.BackupRow, n)
		for i := range pl.Backups {
			pl.Backups[i].Prefix = d.prefix()
			pl.Backups[i].Row = d.u32sArena()
		}
		n = d.count(12)
		pl.Assigned = make([]reroute.NHCount, n)
		for i := range pl.Assigned {
			pl.Assigned[i].NH = d.u32()
			pl.Assigned[i].Count = int(d.i64())
		}
		st.Plan = pl
	}
	if d.bool() {
		s := &encoding.SchemeImage{}
		s.Cfg.TagBits = int(d.i64())
		s.Cfg.PathBits = int(d.i64())
		s.Cfg.MaxDepth = int(d.i64())
		s.Cfg.MinPrefixes = int(d.i64())
		s.Cfg.NHBits = int(d.i64())
		s.LocalAS = d.u32()
		n = d.count(8)
		s.LinkDicts = make([][]encoding.LinkValue, n)
		for i := range s.LinkDicts {
			m := d.count(16)
			s.LinkDicts[i] = make([]encoding.LinkValue, m)
			for j := range s.LinkDicts[i] {
				s.LinkDicts[i][j].Link = d.link()
				s.LinkDicts[i][j].Value = d.u64()
			}
		}
		n = d.count(12)
		s.NHs = make([]encoding.NHValue, n)
		for i := range s.NHs {
			s.NHs[i].AS = d.u32()
			s.NHs[i].Value = d.u64()
		}
		n = d.count(16)
		s.Tags = make([]encoding.TagAssignment, n)
		for i := range s.Tags {
			s.Tags[i].Prefix = d.prefix()
			s.Tags[i].Tag = encoding.Tag(d.u64())
		}
		st.Scheme = s
	}
	n = d.count(16)
	if n > 0 {
		st.FIB.Tags = make([]dataplane.TagEntry, n)
		for i := range st.FIB.Tags {
			st.FIB.Tags[i].Prefix = d.prefix()
			st.FIB.Tags[i].Tag = encoding.Tag(d.u64())
		}
	}
	n = d.count(28)
	if n > 0 {
		st.FIB.Rules = make([]encoding.Rule, n)
		for i := range st.FIB.Rules {
			st.FIB.Rules[i].Value = encoding.Tag(d.u64())
			st.FIB.Rules[i].Mask = encoding.Tag(d.u64())
			st.FIB.Rules[i].NextHop = d.u32()
			st.FIB.Rules[i].Priority = int(d.i64())
		}
	}
	st.FIB.Writes = int(d.i64())
	st.FIB.Elapsed = time.Duration(d.i64())
	st.ProvisionSig = d.u64()
	st.HaveProvision = d.bool()
	st.LastWithdrawal = time.Duration(d.i64())
	st.BurstStartAt = time.Duration(d.i64())
	st.RerouteActive = d.bool()
	st.OwnLinks = d.links()
	st.ExtActive = d.bool()
	st.ExtLinks = d.links()
	st.ExtEpoch = d.u64()
}

// --- primitives --------------------------------------------------------

func writeSection(cw *crcWriter, e *enc, kind uint32) error {
	payload := e.take()
	var h enc
	h.u32(kind)
	h.u64(uint64(len(payload)))
	if err := cw.flush(&h); err != nil {
		return err
	}
	_, err := cw.Write(payload)
	return err
}

// enc accumulates little-endian fixed-width fields.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *enc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) i64(v int64) { e.u64(uint64(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) link(l topology.Link) {
	e.u32(l.A)
	e.u32(l.B)
}
func (e *enc) links(ls []topology.Link) {
	e.u64(uint64(len(ls)))
	for _, l := range ls {
		e.link(l)
	}
}
func (e *enc) u32s(v []uint32) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u32(x)
	}
}

// take returns the accumulated bytes and resets the encoder, keeping
// the slab.
func (e *enc) take() []byte {
	b := e.b
	e.b = e.b[len(e.b):]
	return b
}

// dec reads little-endian fixed-width fields, latching the first error.
type dec struct {
	b   []byte
	off int
	err error
	// arena backs u32sArena: the short per-row slices a big section
	// decodes (plan backup rows, pooled paths) are carved out of shared
	// chunks instead of being allocated one by one.
	arena []uint32
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.fail("truncated payload at offset %d (need %d bytes)", d.off, n)
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := leU32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := leU64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad boolean at offset %d", d.off-1)
		return false
	}
}

func (d *dec) prefix() netaddr.Prefix { return netaddr.Prefix(d.u64()) }

func (d *dec) link() topology.Link {
	a := d.u32()
	b := d.u32()
	return topology.Link{A: a, B: b}
}

func (d *dec) links() []topology.Link {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	ls := make([]topology.Link, n)
	for i := range ls {
		ls[i] = d.link()
	}
	return ls
}

func (d *dec) u32s() []uint32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = d.u32()
	}
	return v
}

// u32sArena is u32s carved out of the decoder's shared slab — for the
// tiny slices that come in the hundreds of thousands. Returned slices
// are capacity-capped so an append by the consumer cannot clobber a
// neighbor.
func (d *dec) u32sArena() []uint32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	if cap(d.arena)-len(d.arena) < n {
		sz := 1 << 16
		if n > sz {
			sz = n
		}
		d.arena = make([]uint32, 0, sz)
	}
	start := len(d.arena)
	for i := 0; i < n; i++ {
		d.arena = append(d.arena, d.u32())
	}
	return d.arena[start:len(d.arena):len(d.arena)]
}

// count reads an element count and bounds it by the bytes remaining
// (each element takes at least elemSize bytes), so a corrupt length
// cannot drive a giant allocation.
func (d *dec) count(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if max := uint64(len(d.b)-d.off) / uint64(elemSize); n > max {
		d.fail("count %d at offset %d exceeds remaining payload", n, d.off-8)
		return 0
	}
	return int(n)
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

func (cw *crcWriter) flush(e *enc) error {
	_, err := cw.Write(e.take())
	return err
}

type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}
