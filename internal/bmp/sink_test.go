package bmp

import (
	"net"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// TestStationFeedsSessionSink swaps the fleet for a single engine
// behind a SessionSink: the same BMP byte stream (table dump,
// End-of-RIB, live withdrawals) must provision the engine through the
// Provisioner surface and drive its burst machinery — the Sink
// interchangeability the redesign promises.
func TestStationFeedsSessionSink(t *testing.T) {
	cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference.TriggerEvery = 100
	cfg.Inference.UseHistory = false
	cfg.Burst.StartThreshold = 100
	cfg.Burst.StopThreshold = 9
	cfg.Encoding.MinPrefixes = 50
	engine := swiftengine.New(cfg)
	sink := swiftengine.NewSessionSink(engine)
	for i := 0; i < 500; i++ {
		engine.LearnAlternate(3, netaddr.PrefixFor(8, i), []uint32{3, 6})
	}
	st := NewStation(StationConfig{Sink: sink, TableSettle: time.Minute})

	key := event.PeerKey{AS: 2, BGPID: 9}
	epoch := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	router := &bmpRouter{t: t, epoch: epoch}
	router.send(&Initiation{SysName: "session-sink"})
	router.peerUp(key)
	// Table dump + End-of-RIB: loads through the SessionSink's
	// Provisioner surface and provisions the engine.
	path := []uint32{2, 5, 6}
	for i := 0; i < 500; i++ {
		router.routeMonitoring(key, epoch, &bgp.Update{
			Attrs: bgp.Attrs{ASPath: path, HasNextHop: true, NextHop: 2},
			NLRI:  []netaddr.Prefix{netaddr.PrefixFor(8, i)},
		})
	}
	router.routeMonitoring(key, epoch, &bgp.Update{}) // End-of-RIB
	// Live burst: 400 timestamped withdrawals.
	var wd []netaddr.Prefix
	for i := 0; i < 400; i++ {
		wd = append(wd, netaddr.PrefixFor(8, i))
	}
	for _, u := range bgp.PackWithdrawals(wd) {
		router.routeMonitoring(key, epoch.Add(time.Second), u)
	}
	router.send(&Termination{Reason: ReasonAdminClose})

	conn, collector := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- st.ServeConn(collector) }()
	go func() {
		conn.Write(router.wire)
		conn.Close()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeConn: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("ServeConn did not finish")
	}

	sink.Do(func(e *swiftengine.Engine) {
		if e.Scheme() == nil {
			t.Fatal("engine not provisioned from the in-band table dump")
		}
		if e.RIB().Len() != 100 { // 500 learned - 400 withdrawn
			t.Errorf("RIB has %d routes after the burst, want 100", e.RIB().Len())
		}
		if len(e.Decisions()) == 0 {
			t.Error("burst made no decisions through the session sink")
		}
	})
}
