package bmp

import (
	"testing"

	"swift/internal/bgp"
	"swift/internal/netaddr"
)

// fuzzSeedWires builds one valid wire encoding per message type; the
// fuzzer mutates from these (and the corpus under testdata/fuzz).
func fuzzSeedWires(tb testing.TB) [][]byte {
	tb.Helper()
	peer := PeerHeader{AS: 65001, BGPID: 0x0a000001, Seconds: 1700000000}
	open := &bgp.Open{Version: bgp.Version, AS: 65001, HoldTime: 90, RouterID: 0x0a000001}
	msgs := []Message{
		&Initiation{SysName: "swift", SysDescr: "fuzz seed"},
		&Termination{Reason: 1, Info: []string{"bye"}},
		&PeerUp{Peer: peer, LocalPort: 179, RemotePort: 33001, SentOpen: open, RecvOpen: open},
		&PeerDown{Peer: peer, Reason: 2, FSMEvent: 7},
		&RouteMonitoring{Peer: peer, Update: &bgp.Update{
			Attrs: bgp.Attrs{ASPath: []uint32{65001, 3356}, HasNextHop: true, NextHop: 0x0a000001},
			NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/24")},
		}},
		&StatsReport{Peer: peer, Stats: []Stat{{Type: StatDupPrefix, Value: 7}, {Type: StatAdjRIBIn, Value: 1 << 40}}},
	}
	var out [][]byte
	for _, m := range msgs {
		wire, err := m.AppendWire(nil)
		if err != nil {
			tb.Fatalf("seed encode %T: %v", m, err)
		}
		// Strip the common header: the fuzz input is (type, body).
		out = append(out, append([]byte{wire[5]}, wire[HeaderLen:]...))
	}
	return out
}

// FuzzDecodeMsg drives the full BMP message decoder with (type, body)
// inputs: no input may panic, and every successfully decoded message
// must re-encode and re-decode cleanly.
func FuzzDecodeMsg(f *testing.F) {
	for _, seed := range fuzzSeedWires(f) {
		f.Add(seed)
	}
	f.Add([]byte{TypeRouteMonitoring})
	f.Add([]byte{TypePeerUp, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		m, err := DecodeMessage(data[0], data[1:])
		if err != nil || m == nil {
			return
		}
		wire, err := m.AppendWire(nil)
		if err != nil {
			// Some decoded values are not re-encodable (e.g. a Peer
			// Down whose reason carries no payload); only panics are
			// bugs here.
			return
		}
		if len(wire) < HeaderLen {
			t.Fatalf("re-encoded wire shorter than a header: %x", wire)
		}
		if _, err := DecodeMessage(wire[5], wire[HeaderLen:]); err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", m, err)
		}
	})
}
