package bmp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/bgp"
	"swift/internal/controller"
)

// StationConfig parameterizes a Station.
type StationConfig struct {
	// Fleet receives the demuxed per-peer streams. Required.
	Fleet *controller.Fleet
	// TableSettle is the quiet period after which a peer still waiting
	// for End-of-RIB is provisioned anyway (routers predating RFC 4724
	// never send the marker). Default 3 s.
	TableSettle time.Duration
	// BatchOps caps how many observations accumulate per peer before a
	// batch is handed to the engine goroutine (default 512). Batches
	// also flush whenever the connection's read buffer drains, so
	// latency stays at one syscall under light load.
	BatchOps int
	// Logf, when set, receives one line per station event.
	Logf func(format string, args ...any)
}

func (c StationConfig) tableSettle() time.Duration {
	if c.TableSettle <= 0 {
		return 3 * time.Second
	}
	return c.TableSettle
}

func (c StationConfig) batchOps() int {
	if c.BatchOps <= 0 {
		return 512
	}
	return c.BatchOps
}

// StationMetrics is a snapshot of a station's ingestion counters.
type StationMetrics struct {
	Conns           int
	Messages        uint64
	RouteMonitoring uint64
	PeerUps         uint64
	PeerDowns       uint64
	StatsReports    uint64
}

// Station is the BMP collector side: it accepts monitored-router
// connections, demultiplexes the per-peer Route Monitoring streams and
// drives one SWIFT engine per peer through the fleet. One station
// serves many routers; each router's peers join the same fleet.
type Station struct {
	cfg StationConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	messages atomic.Uint64
	routeMon atomic.Uint64
	peerUps  atomic.Uint64
	peerDown atomic.Uint64
	statsRep atomic.Uint64
}

// NewStation builds a station over an existing fleet.
func NewStation(cfg StationConfig) *Station {
	if cfg.Fleet == nil {
		panic("bmp: StationConfig.Fleet is required")
	}
	return &Station{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Fleet returns the engine pool the station feeds.
func (st *Station) Fleet() *controller.Fleet { return st.cfg.Fleet }

// Metrics snapshots the ingestion counters.
func (st *Station) Metrics() StationMetrics {
	st.mu.Lock()
	conns := len(st.conns)
	st.mu.Unlock()
	return StationMetrics{
		Conns:           conns,
		Messages:        st.messages.Load(),
		RouteMonitoring: st.routeMon.Load(),
		PeerUps:         st.peerUps.Load(),
		PeerDowns:       st.peerDown.Load(),
		StatsReports:    st.statsRep.Load(),
	}
}

// Serve accepts router connections on ln until the station closes,
// running each connection on its own goroutine. It returns nil after
// Close.
func (st *Station) Serve(ln net.Listener) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		ln.Close()
		return errors.New("bmp: station closed")
	}
	st.ln = ln
	st.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			st.mu.Lock()
			closed := st.closed
			st.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			if err := st.ServeConn(conn); err != nil {
				st.logf("bmp: router %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops the listener, closes every router connection and waits
// for the connection handlers to drain. The fleet stays open — its
// engines remain inspectable and the caller owns its shutdown.
func (st *Station) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		st.wg.Wait()
		return nil
	}
	st.closed = true
	ln := st.ln
	for c := range st.conns {
		c.Close()
	}
	st.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	st.wg.Wait()
	return nil
}

func (st *Station) track(conn net.Conn) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	st.conns[conn] = struct{}{}
	return true
}

func (st *Station) untrack(conn net.Conn) {
	st.mu.Lock()
	delete(st.conns, conn)
	st.mu.Unlock()
}

// peerStream is the per-(connection, peer) demux state.
type peerStream struct {
	key    controller.PeerKey
	handle *controller.FleetPeer

	// syncing is true while the initial table dump drains into
	// LearnPrimary; End-of-RIB (or the settle timer) flips it.
	syncing bool
	// sawTimestamp records that the router timestamps this peer's
	// messages, putting its engine clock in the router's time domain.
	sawTimestamp bool

	pending []controller.Op
	learned int
	lastMsg time.Time // wall-clock arrival of the newest message
	lastAt  time.Duration
}

// ServeConn runs one monitored-router connection to completion: it
// demuxes every BMP message into per-peer engine batches. It returns
// after the router terminates the session, the connection drops, or
// the station closes. Exported so tests and in-process routers can
// drive a station without a TCP listener.
func (st *Station) ServeConn(conn net.Conn) error {
	if !st.track(conn) {
		conn.Close()
		return errors.New("bmp: station closed")
	}
	defer st.untrack(conn)
	defer conn.Close()

	c := &connState{
		st:    st,
		peers: make(map[controller.PeerKey]*peerStream),
	}
	// The settle scanner provisions peers whose table dump ended
	// without an End-of-RIB marker and ticks live engines when the
	// stream goes quiet (bursts end by timer, not by message).
	stop := make(chan struct{})
	defer close(stop)
	go c.settleLoop(stop)

	r := NewReader(conn)
	for {
		typ, body, err := r.Next()
		if err != nil {
			c.flushAll()
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		st.messages.Add(1)
		if err := c.handle(typ, body); err != nil {
			if errors.Is(err, errTerminated) {
				c.flushAll()
				return nil
			}
			c.flushAll()
			return err
		}
		// About to block on the socket: hand off everything pending.
		if r.Buffered() == 0 {
			c.flushAll()
		}
	}
}

// errTerminated signals a clean Termination message.
var errTerminated = errors.New("bmp: session terminated by router")

// connState demuxes one router connection.
type connState struct {
	st *Station

	mu    sync.Mutex // guards peers against the settle scanner
	peers map[controller.PeerKey]*peerStream

	sysName string
	upd     bgp.UpdateDecoder
	peerHdr PeerHeader
}

func (c *connState) stream(key controller.PeerKey) *peerStream {
	if ps, ok := c.peers[key]; ok {
		return ps
	}
	handle := c.st.cfg.Fleet.Peer(key)
	ps := &peerStream{
		key:    key,
		handle: handle,
		// A peer provisioned out-of-band (tests, preloaded tables)
		// skips the table-dump phase and goes straight to live.
		syncing: !handle.Provisioned(),
		lastMsg: time.Now(),
	}
	c.peers[key] = ps
	return ps
}

func (c *connState) handle(typ uint8, body []byte) error {
	switch typ {
	case TypeRouteMonitoring:
		c.st.routeMon.Add(1)
		return c.handleRouteMonitoring(body)
	case TypePeerUp:
		c.st.peerUps.Add(1)
		var m PeerUp
		if err := m.Decode(body); err != nil {
			return err
		}
		key := controller.PeerKey{AS: m.Peer.AS, BGPID: m.Peer.BGPID}
		c.mu.Lock()
		syncing := c.stream(key).syncing
		c.mu.Unlock()
		c.st.logf("bmp: peer up %s (syncing=%v)", key, syncing)
		return nil
	case TypePeerDown:
		c.st.peerDown.Add(1)
		var m PeerDown
		if err := m.Decode(body); err != nil {
			return err
		}
		key := controller.PeerKey{AS: m.Peer.AS, BGPID: m.Peer.BGPID}
		c.mu.Lock()
		if ps, ok := c.peers[key]; ok {
			c.flushLocked(ps)
			delete(c.peers, key)
		}
		c.mu.Unlock()
		c.st.logf("bmp: peer down %s reason %d", key, m.Reason)
		return nil
	case TypeStatsReport:
		c.st.statsRep.Add(1)
		return nil
	case TypeInitiation:
		var m Initiation
		if err := m.Decode(body); err != nil {
			return err
		}
		c.sysName = m.SysName
		c.st.logf("bmp: initiation from %q (%s)", m.SysName, m.SysDescr)
		return nil
	case TypeTermination:
		var m Termination
		if err := m.Decode(body); err != nil {
			return err
		}
		c.st.logf("bmp: termination from %q reason %d", c.sysName, m.Reason)
		return errTerminated
	case TypeRouteMirroring:
		return nil // mirrored PDUs carry no SWIFT signal
	}
	// Unknown type: the frame was already consumed whole and the
	// stream stays aligned, so skip it instead of blinding the
	// collector to every peer on this router (post-RFC-7854 message
	// types keep appearing; framing-level garbage is still fatal via
	// the version/length guards in Reader).
	c.st.logf("bmp: skipping unknown message type %d (%d bytes)", typ, len(body))
	return nil
}

// handleRouteMonitoring is the hot path: peer header + UPDATE, decoded
// without allocation into per-peer batches.
func (c *connState) handleRouteMonitoring(body []byte) error {
	b, err := ParsePeerHeader(body, &c.peerHdr)
	if err != nil {
		return err
	}
	h, err := bgp.ParseHeader(b)
	if err != nil {
		return fmt.Errorf("bmp: embedded UPDATE header: %w", err)
	}
	if h.Type != bgp.TypeUpdate || len(b) < int(h.Len) {
		return fmt.Errorf("%w: route monitoring UPDATE", ErrShortMessage)
	}
	if err := c.upd.Decode(b[bgp.HeaderLen:h.Len]); err != nil {
		return err
	}

	key := controller.PeerKey{AS: c.peerHdr.AS, BGPID: c.peerHdr.BGPID}
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := c.stream(key)
	ps.lastMsg = time.Now()
	at := c.streamOffset(ps)

	if ps.syncing {
		// End-of-RIB (RFC 4724): an UPDATE with no withdrawn routes and
		// no NLRI marks the end of the initial table dump.
		if len(c.upd.NLRI) == 0 && len(c.upd.Withdrawn) == 0 {
			c.provisionLocked(ps)
			return nil
		}
		if len(c.upd.NLRI) > 0 {
			path := append([]uint32(nil), c.upd.Attrs.ASPath...)
			for _, p := range c.upd.NLRI {
				ps.handle.LearnPrimary(p, path)
				ps.learned++
			}
		}
		// Withdrawals during a table dump carry no signal; skip them.
		return nil
	}

	for _, p := range c.upd.Withdrawn {
		ps.pending = append(ps.pending, controller.Op{At: at, Withdraw: true, Prefix: p})
	}
	if len(c.upd.NLRI) > 0 {
		path := append([]uint32(nil), c.upd.Attrs.ASPath...)
		for _, p := range c.upd.NLRI {
			ps.pending = append(ps.pending, controller.Op{At: at, Prefix: p, Path: path})
		}
	}
	ps.lastAt = at
	if len(ps.pending) >= c.st.cfg.batchOps() {
		c.flushLocked(ps)
	}
	return nil
}

// streamOffset converts a message's per-peer header timestamp into the
// engine's stream offset. Routers that timestamp their messages give
// the engines the true burst timeline regardless of replay speed;
// timestampless routers fall back to arrival wall-clock, like the
// single-session controller. The epoch lives on the fleet peer, so a
// flapping router connection cannot rewind the engine clock.
func (c *connState) streamOffset(ps *peerStream) time.Duration {
	ts := c.peerHdr.Timestamp()
	if ts.IsZero() {
		ts = time.Now()
	} else {
		ps.sawTimestamp = true
	}
	return ps.handle.StreamOffset(ts)
}

func (c *connState) provisionLocked(ps *peerStream) {
	ps.syncing = false
	if err := ps.handle.Provision(); err != nil {
		c.st.logf("bmp: peer %s provision failed after %d routes: %v", ps.key, ps.learned, err)
		return
	}
	c.st.logf("bmp: peer %s provisioned (%d routes learned)", ps.key, ps.learned)
}

// flushLocked hands the pending batch to the peer's engine goroutine.
// Caller holds c.mu.
func (c *connState) flushLocked(ps *peerStream) {
	if len(ps.pending) == 0 {
		return
	}
	ops := ps.pending
	ps.pending = make([]controller.Op, 0, cap(ops))
	ps.handle.Enqueue(controller.Batch{At: ps.lastAt, Ops: ops})
}

func (c *connState) flushAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ps := range c.peers {
		c.flushLocked(ps)
	}
}

// settleLoop periodically provisions peers whose table dump went quiet
// without an End-of-RIB and ticks live engines so bursts close when
// the stream does.
func (c *connState) settleLoop(stop <-chan struct{}) {
	settle := c.st.cfg.tableSettle()
	t := time.NewTicker(settle / 4)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, ps := range c.peers {
			quiet := now.Sub(ps.lastMsg)
			if ps.syncing {
				if ps.learned > 0 && quiet >= settle {
					c.provisionLocked(ps)
				}
				continue
			}
			if quiet >= settle/4 && len(ps.pending) > 0 {
				// The read loop only flushes when its buffer drains or
				// a batch fills; a connection stalled mid-message can
				// strand a sub-batch here. Bound that delay.
				c.flushLocked(ps)
			}
			if quiet >= settle/4 && ps.lastAt > 0 && !ps.sawTimestamp {
				// Advance the engine clock past the quiet gap so the
				// burst detector can declare the burst over. Only for
				// peers in the wall-clock domain: a timestamped stream
				// runs on the router's clock, and mixing in wall-quiet
				// would push the engine clock ahead of (or behind) the
				// stream during replays faster or slower than real
				// time — those peers' bursts close through their own
				// message timeline instead.
				ps.handle.Enqueue(controller.Batch{At: ps.lastAt + quiet})
			}
		}
		c.mu.Unlock()
	}
}

func (st *Station) logf(format string, args ...any) {
	if st.cfg.Logf != nil {
		st.cfg.Logf(format, args...)
	}
}
