package bmp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/bgp"
	"swift/internal/event"
)

// StationConfig parameterizes a Station.
type StationConfig struct {
	// Sink receives the demuxed per-peer event stream. Required. A
	// controller.Fleet routes each peer to its own engine; a
	// swift.SessionSink funnels everything into one. If the sink also
	// implements event.Provisioner, each peer's in-band table dump is
	// loaded through it and the peer is provisioned at End-of-RIB;
	// otherwise peers are assumed provisioned out-of-band and go
	// straight to live streaming.
	Sink event.Sink
	// TableSettle is the quiet period after which a peer still waiting
	// for End-of-RIB is provisioned anyway (routers predating RFC 4724
	// never send the marker). Default 3 s.
	TableSettle time.Duration
	// BatchEvents caps how many events accumulate per peer before a
	// batch is handed to the sink (default 512). Batches also flush
	// whenever the connection's read buffer drains, so latency stays at
	// one syscall under light load.
	BatchEvents int
	// Logf, when set, receives one line per station event.
	Logf func(format string, args ...any)
}

func (c StationConfig) tableSettle() time.Duration {
	if c.TableSettle <= 0 {
		return 3 * time.Second
	}
	return c.TableSettle
}

func (c StationConfig) batchEvents() int {
	if c.BatchEvents <= 0 {
		return 512
	}
	return c.BatchEvents
}

// StationMetrics is a snapshot of a station's ingestion counters.
type StationMetrics struct {
	Conns           int
	Messages        uint64
	RouteMonitoring uint64
	PeerUps         uint64
	PeerDowns       uint64
	StatsReports    uint64
	// Bytes counts wire bytes read off router connections — the ingest
	// rate's numerator.
	Bytes uint64
	// DecodeErrors counts connections dropped on framing or embedded-
	// UPDATE decode failures. Nonzero means a router is sending garbage
	// (or the codec has a gap a fuzzer should find).
	DecodeErrors uint64
}

// Station is the BMP collector side: it accepts monitored-router
// connections, demultiplexes the per-peer Route Monitoring streams into
// peer-attributed event batches and pushes them into the configured
// sink. One station serves many routers; each router's peers share the
// sink. A Station is an event.Source over its live connections.
type Station struct {
	cfg  StationConfig
	prov event.Provisioner // cfg.Sink's setup surface, when it has one

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// clocks maps each peer to its stream clock. Clocks live on the
	// station (not the connection) so a flapping router cannot rewind a
	// peer's engine clock by reconnecting.
	clockMu sync.Mutex
	clocks  map[event.PeerKey]*event.StreamClock

	messages  atomic.Uint64
	routeMon  atomic.Uint64
	peerUps   atomic.Uint64
	peerDown  atomic.Uint64
	statsRep  atomic.Uint64
	bytes     atomic.Uint64
	decodeErr atomic.Uint64
}

// NewStation builds a station over an existing sink.
func NewStation(cfg StationConfig) *Station {
	if cfg.Sink == nil {
		panic("bmp: StationConfig.Sink is required")
	}
	st := &Station{
		cfg:    cfg,
		conns:  make(map[net.Conn]struct{}),
		clocks: make(map[event.PeerKey]*event.StreamClock),
	}
	st.prov, _ = cfg.Sink.(event.Provisioner)
	return st
}

// Sink returns the event sink the station feeds.
func (st *Station) Sink() event.Sink { return st.cfg.Sink }

// clock returns the peer's stream clock, creating it on first use.
func (st *Station) clock(key event.PeerKey) *event.StreamClock {
	st.clockMu.Lock()
	defer st.clockMu.Unlock()
	c, ok := st.clocks[key]
	if !ok {
		c = &event.StreamClock{}
		st.clocks[key] = c
	}
	return c
}

// Metrics snapshots the ingestion counters.
func (st *Station) Metrics() StationMetrics {
	st.mu.Lock()
	conns := len(st.conns)
	st.mu.Unlock()
	return StationMetrics{
		Conns:           conns,
		Messages:        st.messages.Load(),
		RouteMonitoring: st.routeMon.Load(),
		PeerUps:         st.peerUps.Load(),
		PeerDowns:       st.peerDown.Load(),
		StatsReports:    st.statsRep.Load(),
		Bytes:           st.bytes.Load(),
		DecodeErrors:    st.decodeErr.Load(),
	}
}

// Serve accepts router connections on ln until the station closes,
// running each connection on its own goroutine. It returns nil after
// Close.
func (st *Station) Serve(ln net.Listener) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		ln.Close()
		return errors.New("bmp: station closed")
	}
	st.ln = ln
	st.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			st.mu.Lock()
			closed := st.closed
			st.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			if err := st.ServeConn(conn); err != nil {
				st.logf("bmp: router %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops the listener, closes every router connection and waits
// for the connection handlers to drain. The sink stays open — its
// engines remain inspectable and the caller owns its shutdown.
func (st *Station) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		st.wg.Wait()
		return nil
	}
	st.closed = true
	ln := st.ln
	for c := range st.conns {
		c.Close()
	}
	st.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	st.wg.Wait()
	return nil
}

func (st *Station) track(conn net.Conn) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	st.conns[conn] = struct{}{}
	return true
}

func (st *Station) untrack(conn net.Conn) {
	st.mu.Lock()
	delete(st.conns, conn)
	st.mu.Unlock()
}

// peerStream is the per-(connection, peer) demux state.
type peerStream struct {
	key   event.PeerKey
	clock *event.StreamClock
	// dst receives this peer's batches: the sink's bound per-peer fast
	// path when it offers one (event.PeerSink), the sink itself
	// otherwise.
	dst event.Sink

	// syncing is true while the initial table dump drains into the
	// sink's Provisioner; End-of-RIB (or the settle timer) flips it.
	// It is never set when the sink has no Provisioner surface.
	syncing bool
	// sawTimestamp records that the router timestamps this peer's
	// messages, putting its engine clock in the router's time domain.
	sawTimestamp bool

	pending event.Batch
	learned int
	lastMsg time.Time // wall-clock arrival of the newest message
	lastAt  time.Duration
}

// ServeConn runs one monitored-router connection to completion: it
// demuxes every BMP message into per-peer event batches for the sink.
// It returns after the router terminates the session, the connection
// drops, or the station closes. Exported so tests and in-process
// routers can drive a station without a TCP listener.
func (st *Station) ServeConn(conn net.Conn) error {
	if !st.track(conn) {
		conn.Close()
		return errors.New("bmp: station closed")
	}
	defer st.untrack(conn)
	defer conn.Close()

	c := &connState{
		st:    st,
		peers: make(map[event.PeerKey]*peerStream),
	}
	// The settle scanner provisions peers whose table dump ended
	// without an End-of-RIB marker and ticks live engines when the
	// stream goes quiet (bursts end by timer, not by message).
	stop := make(chan struct{})
	defer close(stop)
	go c.settleLoop(stop)

	r := NewReader(&countingReader{r: conn, n: &st.bytes})
	for {
		typ, body, err := r.Next()
		if err != nil {
			c.flushAll()
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			st.decodeErr.Add(1)
			return err
		}
		st.messages.Add(1)
		if err := c.handle(typ, body); err != nil {
			if errors.Is(err, errTerminated) {
				c.flushAll()
				return nil
			}
			st.decodeErr.Add(1)
			c.flushAll()
			return err
		}
		// About to block on the socket: hand off everything pending.
		if r.Buffered() == 0 {
			c.flushAll()
		}
	}
}

// errTerminated signals a clean Termination message.
var errTerminated = errors.New("bmp: session terminated by router")

// connState demuxes one router connection.
type connState struct {
	st *Station

	mu    sync.Mutex // guards peers against the settle scanner
	peers map[event.PeerKey]*peerStream

	sysName string
	upd     bgp.UpdateDecoder
	peerHdr PeerHeader
}

func (c *connState) stream(key event.PeerKey) *peerStream {
	if ps, ok := c.peers[key]; ok {
		return ps
	}
	ps := &peerStream{
		key:   key,
		clock: c.st.clock(key),
		dst:   c.st.cfg.Sink,
		// A sink without a setup surface — or a peer provisioned
		// out-of-band (tests, preloaded tables) — skips the table-dump
		// phase and goes straight to live.
		syncing: c.st.prov != nil && !c.st.prov.Provisioned(key),
		lastMsg: time.Now(),
	}
	if fast, ok := c.st.cfg.Sink.(event.PeerSink); ok {
		ps.dst = fast.PeerSink(key)
	}
	c.peers[key] = ps
	return ps
}

func (c *connState) handle(typ uint8, body []byte) error {
	switch typ {
	case TypeRouteMonitoring:
		c.st.routeMon.Add(1)
		return c.handleRouteMonitoring(body)
	case TypePeerUp:
		c.st.peerUps.Add(1)
		var m PeerUp
		if err := m.Decode(body); err != nil {
			return err
		}
		key := event.PeerKey{AS: m.Peer.AS, BGPID: m.Peer.BGPID}
		c.mu.Lock()
		syncing := c.stream(key).syncing
		c.mu.Unlock()
		c.st.logf("bmp: peer up %s (syncing=%v)", key, syncing)
		return nil
	case TypePeerDown:
		c.st.peerDown.Add(1)
		var m PeerDown
		if err := m.Decode(body); err != nil {
			return err
		}
		key := event.PeerKey{AS: m.Peer.AS, BGPID: m.Peer.BGPID}
		c.mu.Lock()
		if ps, ok := c.peers[key]; ok {
			c.flushLocked(ps)
			delete(c.peers, key)
		}
		c.mu.Unlock()
		c.st.logf("bmp: peer down %s reason %d", key, m.Reason)
		return nil
	case TypeStatsReport:
		c.st.statsRep.Add(1)
		return nil
	case TypeInitiation:
		var m Initiation
		if err := m.Decode(body); err != nil {
			return err
		}
		c.sysName = m.SysName
		c.st.logf("bmp: initiation from %q (%s)", m.SysName, m.SysDescr)
		return nil
	case TypeTermination:
		var m Termination
		if err := m.Decode(body); err != nil {
			return err
		}
		c.st.logf("bmp: termination from %q reason %d", c.sysName, m.Reason)
		return errTerminated
	case TypeRouteMirroring:
		return nil // mirrored PDUs carry no SWIFT signal
	}
	// Unknown type: the frame was already consumed whole and the
	// stream stays aligned, so skip it instead of blinding the
	// collector to every peer on this router (post-RFC-7854 message
	// types keep appearing; framing-level garbage is still fatal via
	// the version/length guards in Reader).
	c.st.logf("bmp: skipping unknown message type %d (%d bytes)", typ, len(body))
	return nil
}

// handleRouteMonitoring is the hot path: peer header + UPDATE, decoded
// without allocation into per-peer event batches.
func (c *connState) handleRouteMonitoring(body []byte) error {
	b, err := ParsePeerHeader(body, &c.peerHdr)
	if err != nil {
		return err
	}
	h, err := bgp.ParseHeader(b)
	if err != nil {
		return fmt.Errorf("bmp: embedded UPDATE header: %w", err)
	}
	if h.Type != bgp.TypeUpdate || len(b) < int(h.Len) {
		return fmt.Errorf("%w: route monitoring UPDATE", ErrShortMessage)
	}
	if err := c.upd.Decode(b[bgp.HeaderLen:h.Len]); err != nil {
		return err
	}

	key := event.PeerKey{AS: c.peerHdr.AS, BGPID: c.peerHdr.BGPID}
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := c.stream(key)
	ps.lastMsg = time.Now()
	at := c.streamOffset(ps)

	if ps.syncing {
		// End-of-RIB (RFC 4724): an UPDATE with no withdrawn routes and
		// no NLRI marks the end of the initial table dump.
		if len(c.upd.NLRI) == 0 && len(c.upd.Withdrawn) == 0 {
			c.provisionLocked(ps)
			return nil
		}
		if len(c.upd.NLRI) > 0 {
			path := append([]uint32(nil), c.upd.Attrs.ASPath...)
			for _, p := range c.upd.NLRI {
				c.st.prov.Learn(key, p, path)
				ps.learned++
			}
		}
		// Withdrawals during a table dump carry no signal; skip them.
		return nil
	}

	for _, p := range c.upd.Withdrawn {
		ps.pending = append(ps.pending, event.Withdraw(at, p).WithPeer(key))
	}
	if len(c.upd.NLRI) > 0 {
		// One path copy per UPDATE, shared by all its NLRI events.
		path := append([]uint32(nil), c.upd.Attrs.ASPath...)
		for _, p := range c.upd.NLRI {
			ps.pending = append(ps.pending, event.Announce(at, p, path).WithPeer(key))
		}
	}
	ps.lastAt = at
	if len(ps.pending) >= c.st.cfg.batchEvents() {
		c.flushLocked(ps)
	}
	return nil
}

// streamOffset converts a message's per-peer header timestamp into the
// peer's stream offset. Routers that timestamp their messages give the
// engines the true burst timeline regardless of replay speed;
// timestampless routers fall back to arrival wall-clock. The clock
// lives on the station, so a flapping router connection cannot rewind
// the engine clock.
func (c *connState) streamOffset(ps *peerStream) time.Duration {
	ts := c.peerHdr.Timestamp()
	if ts.IsZero() {
		ts = time.Now()
	} else {
		ps.sawTimestamp = true
	}
	return ps.clock.Offset(ts)
}

func (c *connState) provisionLocked(ps *peerStream) {
	ps.syncing = false
	if err := c.st.prov.Provision(ps.key); err != nil {
		c.st.logf("bmp: peer %s provision failed after %d routes: %v", ps.key, ps.learned, err)
		return
	}
	c.st.logf("bmp: peer %s provisioned (%d routes learned)", ps.key, ps.learned)
}

// flushLocked hands the pending batch to the sink. Caller holds c.mu.
func (c *connState) flushLocked(ps *peerStream) {
	if len(ps.pending) == 0 {
		return
	}
	b := ps.pending
	ps.pending = make(event.Batch, 0, cap(b))
	if err := ps.dst.Apply(b); err != nil {
		c.st.logf("bmp: peer %s: sink: %v", ps.key, err)
	}
}

func (c *connState) flushAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ps := range c.peers {
		c.flushLocked(ps)
	}
}

// settleLoop periodically provisions peers whose table dump went quiet
// without an End-of-RIB and ticks live engines so bursts close when
// the stream does.
func (c *connState) settleLoop(stop <-chan struct{}) {
	settle := c.st.cfg.tableSettle()
	t := time.NewTicker(settle / 4)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, ps := range c.peers {
			quiet := now.Sub(ps.lastMsg)
			if ps.syncing {
				if ps.learned > 0 && quiet >= settle {
					c.provisionLocked(ps)
				}
				continue
			}
			if quiet >= settle/4 && len(ps.pending) > 0 {
				// The read loop only flushes when its buffer drains or
				// a batch fills; a connection stalled mid-message can
				// strand a sub-batch here. Bound that delay.
				c.flushLocked(ps)
			}
			if quiet >= settle/4 && ps.lastAt > 0 && !ps.sawTimestamp {
				// Advance the engine clock past the quiet gap so the
				// burst detector can declare the burst over. Only for
				// peers in the wall-clock domain: a timestamped stream
				// runs on the router's clock, and mixing in wall-quiet
				// would push the engine clock ahead of (or behind) the
				// stream during replays faster or slower than real
				// time — those peers' bursts close through their own
				// message timeline instead.
				tick := event.Batch{event.Tick(ps.lastAt + quiet).WithPeer(ps.key)}
				if err := ps.dst.Apply(tick); err != nil {
					c.st.logf("bmp: peer %s: sink: %v", ps.key, err)
				}
			}
		}
		c.mu.Unlock()
	}
}

// countingReader tallies wire bytes into the station's ingest counter
// as they are read off the connection.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.n.Add(uint64(n))
	}
	return n, err
}

func (st *Station) logf(format string, args ...any) {
	if st.cfg.Logf != nil {
		st.cfg.Logf(format, args...)
	}
}
