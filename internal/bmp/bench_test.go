package bmp

import (
	"fmt"
	"net"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/controller"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// BenchmarkStationIngest measures multi-peer Route Monitoring
// throughput through the full demux path: wire framing, peer-header
// parse, UPDATE decode, batch hand-off and engine application across a
// fleet of provisioned per-peer engines. The msgs/s and prefixes/s
// metrics are the headline ingestion numbers.
func BenchmarkStationIngest(b *testing.B) {
	for _, peers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			benchStationIngest(b, peers)
		})
	}
}

const benchPrefixesPerMsg = 10

func benchStationIngest(b *testing.B, numPeers int) {
	fleet := controller.NewFleet(controller.FleetConfig{
		Engine: func(key controller.PeerKey) swiftengine.Config {
			return swiftengine.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
		},
	})
	defer fleet.Close()
	st := NewStation(StationConfig{Sink: fleet, TableSettle: time.Hour})

	// Provision every peer up front so the stream is pure live-path
	// ingestion (no table-transfer branch).
	path := []uint32{65010, 3356, 15169}
	keys := make([]controller.PeerKey, numPeers)
	for i := range keys {
		keys[i] = controller.PeerKey{AS: 65010, BGPID: uint32(i + 1)}
		h := fleet.Peer(keys[i])
		for j := 0; j < 256; j++ {
			h.LearnPrimary(netaddr.PrefixFor(100, j), path)
		}
		if err := h.Provision(); err != nil {
			b.Fatal(err)
		}
	}

	// One pre-encoded Route Monitoring message per peer: an
	// announcement refresh of known prefixes (the steady-state common
	// case; withdrawals escalate into burst detection and inference,
	// which BenchmarkStationBurst-style workloads cover elsewhere).
	frames := make([][]byte, numPeers)
	for i, key := range keys {
		hdr := PeerHeader{AS: key.AS, BGPID: key.BGPID}
		hdr.SetIPv4(0x0a000000 | key.BGPID)
		u := &bgp.Update{Attrs: bgp.Attrs{ASPath: path, HasNextHop: true, NextHop: 1}}
		for j := 0; j < benchPrefixesPerMsg; j++ {
			u.NLRI = append(u.NLRI, netaddr.PrefixFor(100, j))
		}
		wire, err := (&RouteMonitoring{Peer: hdr, Update: u}).AppendWire(nil)
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = wire
	}
	// A block interleaves every peer once; blocks repeat to fill b.N.
	var block []byte
	for _, f := range frames {
		block = append(block, f...)
	}

	router, collector := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- st.ServeConn(collector) }()

	b.ResetTimer()
	b.SetBytes(int64(len(block) / numPeers))
	sent := 0
	for sent < b.N {
		n := numPeers
		buf := block
		if rem := b.N - sent; rem < n {
			n = rem
			buf = buf[:0]
			for _, f := range frames[:n] {
				buf = append(buf, f...)
			}
		}
		if _, err := router.Write(buf); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	router.Close()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	fleet.Sync()
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "msgs/s")
		b.ReportMetric(float64(b.N*benchPrefixesPerMsg)/elapsed, "prefixes/s")
	}
	if got := fleet.Metrics().Announcements; got != uint64(b.N*benchPrefixesPerMsg) {
		b.Fatalf("fleet applied %d announcements, want %d", got, b.N*benchPrefixesPerMsg)
	}
}

// BenchmarkCodecRouteMonitoring isolates the wire codec: encode and
// hot-path decode of one Route Monitoring message, no engines.
func BenchmarkCodecRouteMonitoring(b *testing.B) {
	hdr := PeerHeader{AS: 65010, BGPID: 7}
	hdr.SetIPv4(0x0a000001)
	u := &bgp.Update{Attrs: bgp.Attrs{ASPath: []uint32{65010, 3356, 15169}, HasNextHop: true, NextHop: 1}}
	for j := 0; j < benchPrefixesPerMsg; j++ {
		u.NLRI = append(u.NLRI, netaddr.PrefixFor(100, j))
	}
	wire, err := (&RouteMonitoring{Peer: hdr, Update: u}).AppendWire(nil)
	if err != nil {
		b.Fatal(err)
	}
	var ph PeerHeader
	var dec bgp.UpdateDecoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := wire[HeaderLen:]
		rest, err := ParsePeerHeader(body, &ph)
		if err != nil {
			b.Fatal(err)
		}
		h, err := bgp.ParseHeader(rest)
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(rest[bgp.HeaderLen:h.Len]); err != nil {
			b.Fatal(err)
		}
	}
}
