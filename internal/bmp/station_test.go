package bmp

import (
	"net"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpsim"
	"swift/internal/controller"
	"swift/internal/inference"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/topology"
)

// fig1FleetConfig mirrors the single-session controller test's engine
// tuning so the Fig. 1 burst triggers within the replayed stream.
func fig1FleetConfig(key controller.PeerKey) swiftengine.Config {
	cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = 250
	cfg.Inference.UseHistory = false
	cfg.Encoding.MinPrefixes = 100
	cfg.Burst.StartThreshold = 100
	return cfg
}

// bmpRouter scripts one monitored router's half of a BMP session into
// a byte stream.
type bmpRouter struct {
	t     *testing.T
	wire  []byte
	epoch time.Time
}

func (r *bmpRouter) send(m Message) {
	r.t.Helper()
	var err error
	r.wire, err = m.AppendWire(r.wire)
	if err != nil {
		r.t.Fatal(err)
	}
}

func (r *bmpRouter) header(key controller.PeerKey, ts time.Time) PeerHeader {
	h := PeerHeader{AS: key.AS, BGPID: key.BGPID}
	h.SetIPv4(0x0a000000 | key.BGPID)
	h.SetTimestamp(ts)
	return h
}

func (r *bmpRouter) peerUp(key controller.PeerKey) {
	r.send(&PeerUp{
		Peer:       r.header(key, r.epoch),
		LocalPort:  179,
		RemotePort: 40000 + uint16(key.BGPID),
		SentOpen:   &bgp.Open{AS: key.AS, HoldTime: 90, RouterID: key.BGPID},
		RecvOpen:   &bgp.Open{AS: 1, HoldTime: 90, RouterID: 1},
	})
}

func (r *bmpRouter) routeMonitoring(key controller.PeerKey, ts time.Time, u *bgp.Update) {
	r.send(&RouteMonitoring{Peer: r.header(key, ts), Update: u})
}

// table streams the initial Adj-RIB-In dump followed by End-of-RIB.
func (r *bmpRouter) table(key controller.PeerKey, routes map[netaddr.Prefix][]uint32) {
	keys := make([]netaddr.Prefix, 0, len(routes))
	attrs := make(map[netaddr.Prefix]*bgp.Attrs, len(routes))
	for p, path := range routes {
		keys = append(keys, p)
		attrs[p] = &bgp.Attrs{ASPath: path, HasNextHop: true, NextHop: 0x0a000001}
	}
	for _, u := range bgp.PackAnnouncements(keys, attrs) {
		r.routeMonitoring(key, r.epoch, u)
	}
	r.routeMonitoring(key, r.epoch, &bgp.Update{}) // End-of-RIB
}

// burst streams a replayed failure, packing consecutive withdrawals
// like a real speaker.
func (r *bmpRouter) burst(key controller.PeerKey, b *bgpsim.Burst) {
	var wd []netaddr.Prefix
	var wdAt time.Duration
	flush := func() {
		for _, u := range bgp.PackWithdrawals(wd) {
			r.routeMonitoring(key, r.epoch.Add(wdAt), u)
		}
		wd = wd[:0]
	}
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			if len(wd) == 0 {
				wdAt = ev.At
			}
			wd = append(wd, ev.Prefix)
			if len(wd) >= 400 {
				flush()
			}
			continue
		}
		flush()
		r.routeMonitoring(key, r.epoch.Add(ev.At), &bgp.Update{
			Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 0x0a000001},
			NLRI:  []netaddr.Prefix{ev.Prefix},
		})
	}
	flush()
}

// fig1Routes returns every origin's route as exported by neighbor nb
// to vantage AS 1, keyed by prefix.
func fig1Routes(t *testing.T, netw *bgpsim.Network, sols map[uint32]*bgpsim.OriginSolution, nb uint32) map[netaddr.Prefix][]uint32 {
	t.Helper()
	routes := make(map[netaddr.Prefix][]uint32)
	for origin := range netw.Origins {
		r, ok := sols[origin].ExportTo(netw.Graph, netw.Policy, nb, 1)
		if !ok {
			continue
		}
		for i := 0; i < netw.Origins[origin]; i++ {
			routes[netaddr.PrefixFor(origin, i)] = r.Path
		}
	}
	return routes
}

// TestStationMultiPeerBurst is the subsystem's end-to-end test: one
// synthetic router streams the Fig. 1 burst over BMP for two peers;
// the station demuxes the streams, provisions each peer's engine from
// its in-band table dump, and both engines must infer the failed link
// and install reroute rules while their streams are still draining.
func TestStationMultiPeerBurst(t *testing.T) {
	netw := bgpsim.Fig1Network(1000)
	sols := netw.Solve(netw.Graph)
	primary := fig1Routes(t, netw, sols, 2)

	fleet := controller.NewFleet(controller.FleetConfig{Engine: fig1FleetConfig})
	defer fleet.Close()

	keys := []controller.PeerKey{{AS: 2, BGPID: 21}, {AS: 2, BGPID: 22}}
	for _, key := range keys {
		// Alternates come from the other neighbors' tables, preloaded
		// as a deployment would from RIB snapshots.
		h := fleet.Peer(key)
		for _, nb := range []uint32{3, 4} {
			for p, path := range fig1Routes(t, netw, sols, nb) {
				h.LearnAlternate(nb, p, path)
			}
		}
	}

	st := NewStation(StationConfig{Sink: fleet, TableSettle: time.Minute})
	router, collector := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- st.ServeConn(collector) }()

	r := &bmpRouter{t: t, epoch: time.Date(2016, 11, 5, 12, 0, 0, 0, time.UTC)}
	r.send(&Initiation{SysName: "fig1-router", SysDescr: "bmp e2e test"})
	for i, key := range keys {
		r.peerUp(key)
		r.table(key, primary)
		b, err := netw.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(int64(3+i)))
		if err != nil {
			t.Fatal(err)
		}
		r.burst(key, b)
	}
	r.send(&Termination{Reason: ReasonAdminClose})

	go func() {
		router.Write(r.wire)
		router.Close()
	}()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("ServeConn: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("ServeConn did not finish")
	}
	fleet.Sync()

	if got := fleet.Len(); got != len(keys) {
		t.Fatalf("fleet has %d peers, want %d", got, len(keys))
	}
	for _, key := range keys {
		h, ok := fleet.Lookup(key)
		if !ok {
			t.Fatalf("peer %s missing from fleet", key)
		}
		ds := h.Decisions()
		if len(ds) == 0 {
			t.Fatalf("peer %s made no decisions", key)
		}
		last := ds[len(ds)-1]
		found := false
		for _, l := range last.Result.Links {
			if l == topology.MakeLink(5, 6) {
				found = true
			}
		}
		if !found {
			t.Errorf("peer %s inferred %v, want link (5,6)", key, last.Result.Links)
		}
		if last.RulesInstalled == 0 {
			t.Errorf("peer %s installed no reroute rules", key)
		}
		if len(last.Predicted) == 0 {
			t.Errorf("peer %s predicted no prefixes", key)
		}
	}

	m := st.Metrics()
	if m.PeerUps != uint64(len(keys)) || m.RouteMonitoring == 0 {
		t.Errorf("station metrics = %+v", m)
	}
	fm := fleet.Metrics()
	if fm.Withdrawals == 0 || fm.Announcements == 0 || fm.Decisions == 0 {
		t.Errorf("fleet metrics = %+v", fm)
	}
	if fleet.Status() == "" {
		t.Error("empty fleet status")
	}
}

// TestStationServeTCP exercises the listener path end to end over a
// real socket: accept, initiate, peer up, a trickle of route
// monitoring, then a clean station Close.
func TestStationServeTCP(t *testing.T) {
	fleet := controller.NewFleet(controller.FleetConfig{Engine: fig1FleetConfig})
	defer fleet.Close()
	st := NewStation(StationConfig{Sink: fleet, TableSettle: time.Minute})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- st.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	key := controller.PeerKey{AS: 65010, BGPID: 9}
	r := &bmpRouter{t: t, epoch: time.Now()}
	r.send(&Initiation{SysName: "tcp-router"})
	r.peerUp(key)
	r.routeMonitoring(key, r.epoch, &bgp.Update{
		Attrs: bgp.Attrs{ASPath: []uint32{65010, 3356}, HasNextHop: true, NextHop: 1},
		NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")},
	})
	r.routeMonitoring(key, r.epoch, &bgp.Update{}) // End-of-RIB
	if _, err := conn.Write(r.wire); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		if h, ok := fleet.Lookup(key); ok && h.Provisioned() {
			break
		}
		select {
		case <-deadline:
			t.Fatal("peer never provisioned over TCP")
		case <-time.After(20 * time.Millisecond):
		}
	}
	conn.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestStationFlushesStalledBatch covers the mid-message stall: a full
// Route Monitoring message followed by a fragment of the next one
// leaves the read buffer non-empty (suppressing the buffer-drained
// flush) while the read loop blocks — the settle scanner must hand the
// stranded ops to the engine anyway.
func TestStationFlushesStalledBatch(t *testing.T) {
	fleet := controller.NewFleet(controller.FleetConfig{Engine: fig1FleetConfig})
	defer fleet.Close()
	key := controller.PeerKey{AS: 2, BGPID: 5}
	h := fleet.Peer(key)
	pfx := netaddr.MustParsePrefix("10.0.0.0/24")
	h.LearnPrimary(pfx, []uint32{2, 5, 6})
	if err := h.Provision(); err != nil {
		t.Fatal(err)
	}

	st := NewStation(StationConfig{Sink: fleet, TableSettle: 200 * time.Millisecond})
	router, collector := net.Pipe()
	defer router.Close()
	go st.ServeConn(collector)

	r := &bmpRouter{t: t, epoch: time.Now()}
	r.peerUp(key)
	r.routeMonitoring(key, time.Time{}, &bgp.Update{Withdrawn: []netaddr.Prefix{pfx}})
	stalled := append(r.wire, Version, 0, 0) // next message cut off mid-header
	if _, err := router.Write(stalled); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for fleet.Metrics().Withdrawals == 0 {
		select {
		case <-deadline:
			t.Fatal("stranded withdrawal never reached the engine")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestStationSkipsUnknownType: a well-framed message of a type this
// codec does not know must be skipped, not kill the whole multi-peer
// connection.
func TestStationSkipsUnknownType(t *testing.T) {
	fleet := controller.NewFleet(controller.FleetConfig{Engine: fig1FleetConfig})
	defer fleet.Close()
	st := NewStation(StationConfig{Sink: fleet, TableSettle: time.Minute})
	router, collector := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- st.ServeConn(collector) }()

	r := &bmpRouter{t: t, epoch: time.Now()}
	r.send(&Initiation{SysName: "future-router"})
	// A hypothetical post-RFC-7854 message type 9 with an 8-byte body.
	unknown := []byte{Version, 0, 0, 0, HeaderLen + 8, 9, 1, 2, 3, 4, 5, 6, 7, 8}
	r.wire = append(r.wire, unknown...)
	r.peerUp(controller.PeerKey{AS: 65010, BGPID: 3}) // must still arrive
	r.send(&Termination{Reason: ReasonAdminClose})
	go func() {
		router.Write(r.wire)
		router.Close()
	}()
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeConn failed on an unknown message type: %v", err)
	}
	if m := st.Metrics(); m.PeerUps != 1 {
		t.Errorf("peer up after unknown type not processed: %+v", m)
	}
}

// TestStationReconnectKeepsClock: a router connection flap must not
// rewind a timestamped peer's engine clock — the epoch persists on the
// fleet peer across connections.
func TestStationReconnectKeepsClock(t *testing.T) {
	fleet := controller.NewFleet(controller.FleetConfig{Engine: fig1FleetConfig})
	defer fleet.Close()
	key := controller.PeerKey{AS: 2, BGPID: 8}
	h := fleet.Peer(key)
	pfx := netaddr.MustParsePrefix("10.0.0.0/24")
	h.LearnPrimary(pfx, []uint32{2, 5, 6})
	if err := h.Provision(); err != nil {
		t.Fatal(err)
	}
	st := NewStation(StationConfig{Sink: fleet, TableSettle: time.Minute})
	epoch := time.Date(2016, 11, 5, 12, 0, 0, 0, time.UTC)

	session := func(at time.Duration) {
		router, collector := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- st.ServeConn(collector) }()
		r := &bmpRouter{t: t, epoch: epoch}
		r.peerUp(key)
		r.routeMonitoring(key, epoch.Add(at), &bgp.Update{Withdrawn: []netaddr.Prefix{pfx}})
		go func() {
			router.Write(r.wire)
			router.Close()
		}()
		if err := <-done; err != nil {
			t.Fatalf("ServeConn: %v", err)
		}
		fleet.Sync()
	}

	// The epoch anchors at the first observed timestamp, so the first
	// observation lands at offset 0 …
	session(10 * time.Second)
	if got := h.LastAt(); got != 0 {
		t.Fatalf("first session LastAt = %v, want 0s", got)
	}
	// … and a message 10 s later on a NEW connection must land at 10 s
	// (a per-connection epoch would re-anchor and rewind it to 0).
	session(20 * time.Second)
	if got := h.LastAt(); got != 10*time.Second {
		t.Errorf("after reconnect LastAt = %v, want 10s (clock re-anchored)", got)
	}
}
