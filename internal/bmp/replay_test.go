package bmp

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpsim"
	"swift/internal/controller"
	"swift/internal/inference"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/trace"
)

// replayEngineConfig is shared by both replay paths so any divergence
// comes from the transport, not the tuning.
func replayEngineConfig(vantage, neighbor uint32) swiftengine.Config {
	cfg := swiftengine.Config{LocalAS: vantage, PrimaryNeighbor: neighbor}
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = 500
	cfg.Inference.UseHistory = false
	cfg.Burst.StartThreshold = 500
	return cfg
}

// traceToMRT materializes one synthetic session as collector archives:
// a TABLE_DUMP_V2 RIB snapshot and a BGP4MP update file carrying its
// bursts, spaced an hour apart.
func traceToMRT(t *testing.T, ds *trace.Dataset, s trace.Session, bursts []*bgpsim.Burst, epoch time.Time) (rib, updates []byte) {
	t.Helper()
	var ribBuf bytes.Buffer
	w := mrt.NewWriter(&ribBuf)
	if err := w.WritePeerIndexTable(epoch, s.Vantage, []mrt.PeerEntry{{ID: s.Neighbor, IP: 0x0a000001, AS: s.Neighbor}}); err != nil {
		t.Fatal(err)
	}
	seq := uint32(0)
	for origin, path := range ds.SessionRIB(s) {
		for i := 0; i < ds.Net.Origins[origin]; i++ {
			rec := &mrt.RIBRecord{
				Sequence: seq,
				Prefix:   netaddr.PrefixFor(origin, i),
				Entries: []mrt.RIBEntry{{
					Originated: epoch.Add(-24 * time.Hour),
					Attrs:      bgp.Attrs{ASPath: path, HasNextHop: true, NextHop: 0x0a000001},
				}},
			}
			seq++
			if err := w.WriteRIBIPv4(epoch, rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var updBuf bytes.Buffer
	uw := mrt.NewWriter(&updBuf)
	writeMsg := func(ts time.Time, u *bgp.Update) {
		if err := uw.WriteBGP4MP(ts, s.Neighbor, s.Vantage, 0x0a000001, 0x0a000002, u); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range bursts {
		at := epoch.Add(time.Duration(i+1) * time.Hour)
		var wd []netaddr.Prefix
		var wdAt time.Time
		flush := func() {
			for _, u := range bgp.PackWithdrawals(wd) {
				writeMsg(wdAt, u)
			}
			wd = wd[:0]
		}
		for _, ev := range b.Events {
			ts := at.Add(ev.At)
			if ev.Kind == bgpsim.KindWithdraw {
				if len(wd) == 0 {
					wdAt = ts
				}
				wd = append(wd, ev.Prefix)
				if len(wd) >= 400 {
					flush()
				}
				continue
			}
			flush()
			writeMsg(ts, &bgp.Update{
				Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 0x0a000001},
				NLRI:  []netaddr.Prefix{ev.Prefix},
			})
		}
		flush()
	}
	if err := uw.Flush(); err != nil {
		t.Fatal(err)
	}
	return ribBuf.Bytes(), updBuf.Bytes()
}

// TestMRTReplayMatchesDirect is the transport-equivalence test: a
// TABLE_DUMP_V2 snapshot plus a BGP4MP update archive replayed through
// the BMP Station path must leave the per-peer engine with exactly the
// decisions the direct Observe* path produces from the same bytes.
func TestMRTReplayMatchesDirect(t *testing.T) {
	ds := trace.Generate(trace.Config{
		NumASes:           250,
		AvgDegree:         7,
		Sessions:          50,
		Days:              30,
		Failures:          50,
		MaxPrefixes:       6000,
		PopularASes:       10,
		ASFailureFraction: 0.15,
		Timing:            bgpsim.DefaultTiming(11),
		Seed:              11,
	})
	var sess trace.Session
	var bursts []*bgpsim.Burst
	for _, st := range ds.Census(1500) {
		bs := ds.BurstsAt(st.Session, 1500)
		if len(bs) > 0 {
			sess, bursts = st.Session, bs
			break
		}
	}
	if len(bursts) == 0 {
		t.Skip("no bursty session at this scale")
	}
	if len(bursts) > 2 {
		bursts = bursts[:2] // two bursts exercise burst-end + re-detection
	}
	epoch := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	ribMRT, updMRT := traceToMRT(t, ds, sess, bursts, epoch)

	// Path 1: direct Observe* calls, exactly what the MRT bytes say.
	direct := swiftengine.New(replayEngineConfig(sess.Vantage, sess.Neighbor))
	r := mrt.NewReader(bytes.NewReader(ribMRT))
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rr, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range rr.Entries {
			direct.LearnPrimary(rr.Prefix, e.Attrs.ASPath)
		}
	}
	if err := direct.Provision(); err != nil {
		t.Fatal(err)
	}
	ur := mrt.NewReader(bytes.NewReader(updMRT))
	var dec bgp.UpdateDecoder
	for {
		m, err := ur.NextBGP4MP()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.Type != bgp.TypeUpdate {
			continue
		}
		if err := dec.Decode(m.Body); err != nil {
			t.Fatal(err)
		}
		at := m.Timestamp.Sub(epoch)
		for _, p := range dec.Withdrawn {
			direct.ObserveWithdraw(at, p)
		}
		if len(dec.NLRI) > 0 {
			path := append([]uint32(nil), dec.Attrs.ASPath...)
			for _, p := range dec.NLRI {
				direct.ObserveAnnounce(at, p, path)
			}
		}
	}

	// Path 2: the same MRT bytes replayed as a BMP router into a
	// station (table dump + End-of-RIB + timestamped updates).
	fleet := controller.NewFleet(controller.FleetConfig{
		Engine: func(controller.PeerKey) swiftengine.Config {
			return replayEngineConfig(sess.Vantage, sess.Neighbor)
		},
	})
	defer fleet.Close()
	st := NewStation(StationConfig{Fleet: fleet, TableSettle: time.Hour})
	key := controller.PeerKey{AS: sess.Neighbor, BGPID: sess.Neighbor}

	router := &bmpRouter{t: t, epoch: epoch}
	router.send(&Initiation{SysName: "mrt-replay"})
	router.peerUp(key)
	rr := mrt.NewReader(bytes.NewReader(ribMRT))
	for {
		rec, err := rr.Next()
		if err != nil {
			break
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rib, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range rib.Entries {
			router.routeMonitoring(key, epoch, &bgp.Update{
				Attrs: e.Attrs,
				NLRI:  []netaddr.Prefix{rib.Prefix},
			})
		}
	}
	router.routeMonitoring(key, epoch, &bgp.Update{}) // End-of-RIB
	ur2 := mrt.NewReader(bytes.NewReader(updMRT))
	for {
		m, err := ur2.NextBGP4MP()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var u bgp.Update
		if err := u.Decode(m.Body); err != nil {
			t.Fatal(err)
		}
		router.routeMonitoring(key, m.Timestamp, &u)
	}
	router.send(&Termination{Reason: ReasonAdminClose})

	conn, collector := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- st.ServeConn(collector) }()
	go func() {
		conn.Write(router.wire)
		conn.Close()
	}()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("ServeConn: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("ServeConn did not finish")
	}
	fleet.Sync()

	h, ok := fleet.Lookup(key)
	if !ok {
		t.Fatal("replay peer missing from fleet")
	}
	got := h.Decisions()
	want := direct.Decisions()
	if len(want) == 0 {
		t.Fatalf("direct path made no decisions (burst sizes %d); test is vacuous", bursts[0].Size)
	}
	if len(got) != len(want) {
		t.Fatalf("station path made %d decisions, direct path %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.At != w.At {
			t.Errorf("decision %d: at %v vs %v", i, g.At, w.At)
		}
		if len(g.Result.Links) != len(w.Result.Links) {
			t.Fatalf("decision %d: links %v vs %v", i, g.Result.Links, w.Result.Links)
		}
		for j := range w.Result.Links {
			if g.Result.Links[j] != w.Result.Links[j] {
				t.Errorf("decision %d: link %d = %v, want %v", i, j, g.Result.Links[j], w.Result.Links[j])
			}
		}
		if len(g.Predicted) != len(w.Predicted) {
			t.Errorf("decision %d: predicted %d prefixes, want %d", i, len(g.Predicted), len(w.Predicted))
		}
		if g.RulesInstalled != w.RulesInstalled {
			t.Errorf("decision %d: %d rules, want %d", i, g.RulesInstalled, w.RulesInstalled)
		}
	}
}
