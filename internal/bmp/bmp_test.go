package bmp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/netaddr"
)

func peerHdr(as, id uint32) PeerHeader {
	h := PeerHeader{PeerType: PeerTypeGlobal, AS: as, BGPID: id}
	h.SetIPv4(0x0a000000 | id)
	h.SetTimestamp(time.Date(2016, 11, 5, 12, 0, 0, 250_000_000, time.UTC))
	return h
}

func testOpen(as uint32) *bgp.Open {
	return &bgp.Open{AS: as, HoldTime: 90, RouterID: as<<8 | 1}
}

// sampleMessages covers every codec-supported message type with
// representative payloads.
func sampleMessages(t *testing.T) []Message {
	t.Helper()
	return []Message{
		&Initiation{SysName: "edge1.example", SysDescr: "swift bmp exporter", Info: []string{"rack 12"}},
		&Termination{Reason: ReasonAdminClose, Info: []string{"maintenance"}},
		&PeerUp{
			Peer:       peerHdr(65010, 7),
			LocalPort:  179,
			RemotePort: 41952,
			SentOpen:   testOpen(65001),
			RecvOpen:   testOpen(65010),
		},
		&PeerDown{Peer: peerHdr(65010, 7), Reason: DownRemoteNotification,
			Notification: &bgp.Notification{Code: bgp.NotifCease, Subcode: 2}},
		&PeerDown{Peer: peerHdr(65010, 7), Reason: DownLocalNoNotification, FSMEvent: 18},
		&PeerDown{Peer: peerHdr(65010, 7), Reason: DownRemoteNoNotification},
		&RouteMonitoring{
			Peer: peerHdr(65010, 7),
			Update: &bgp.Update{
				Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")},
				Attrs: bgp.Attrs{
					ASPath:     []uint32{65010, 3356, 15169},
					HasNextHop: true, NextHop: 0x0a000001,
					Communities: []uint32{65010<<16 | 100},
				},
				NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("198.51.100.0/24"), netaddr.MustParsePrefix("203.0.113.0/24")},
			},
		},
		&RouteMonitoring{ // End-of-RIB
			Peer:   peerHdr(65010, 7),
			Update: &bgp.Update{},
		},
		&StatsReport{Peer: peerHdr(65010, 7), Stats: []Stat{
			{Type: StatRejected, Value: 12},
			{Type: StatDupWithdraw, Value: 3},
			{Type: StatAdjRIBIn, Value: 640_000},
		}},
	}
}

// TestRoundTripMessages encodes every message type, decodes it back and
// re-encodes: the two wire images must match byte for byte, and the
// decoded structures must survive a DeepEqual against a re-decode.
func TestRoundTripMessages(t *testing.T) {
	for _, m := range sampleMessages(t) {
		wire1, err := m.AppendWire(nil)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		got, err := ReadMessage(NewReader(bytes.NewReader(wire1)))
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if got.BMPType() != m.BMPType() {
			t.Fatalf("%T: type %d, want %d", m, got.BMPType(), m.BMPType())
		}
		wire2, err := got.AppendWire(nil)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", m, err)
		}
		if !bytes.Equal(wire1, wire2) {
			t.Errorf("%T: wire image changed across a decode/encode cycle\n  first: %x\n second: %x", m, wire1, wire2)
		}
		got2, err := ReadMessage(NewReader(bytes.NewReader(wire2)))
		if err != nil {
			t.Fatalf("%T: second decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Errorf("%T: decoded values diverge:\n  %#v\n  %#v", m, got, got2)
		}
	}
}

// TestReaderStream frames a multi-message session off one stream in
// order, ending with a clean EOF.
func TestReaderStream(t *testing.T) {
	msgs := sampleMessages(t)
	var stream []byte
	for _, m := range msgs {
		var err error
		stream, err = m.AppendWire(stream)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(stream))
	for i, want := range msgs {
		typ, _, err := r.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if typ != want.BMPType() {
			t.Fatalf("message %d: type %d, want %d", i, typ, want.BMPType())
		}
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("expected EOF after the last message")
	}
}

func randPrefix(rng *rand.Rand) netaddr.Prefix {
	l := 8 + rng.Intn(25)
	addr := rng.Uint32() &^ (1<<(32-l) - 1)
	return netaddr.MakePrefix(addr, l)
}

func randPath(rng *rand.Rand) []uint32 {
	path := make([]uint32, 1+rng.Intn(6))
	for i := range path {
		path[i] = 1 + rng.Uint32()%400_000
	}
	return path
}

func randPeerHeader(rng *rand.Rand) PeerHeader {
	h := PeerHeader{
		PeerType:      uint8(rng.Intn(3)),
		Flags:         uint8(rng.Intn(2)) * PeerFlagL,
		Distinguisher: rng.Uint64(),
		AS:            1 + rng.Uint32()%400_000,
		BGPID:         rng.Uint32(),
		Seconds:       rng.Uint32(),
		Micros:        rng.Uint32() % 1_000_000,
	}
	h.SetIPv4(rng.Uint32())
	h.Seconds |= 1 // keep the timestamp non-zero so Timestamp() round-trips
	return h
}

func randMessage(rng *rand.Rand) Message {
	switch rng.Intn(6) {
	case 0:
		m := &Initiation{SysName: randString(rng), SysDescr: randString(rng)}
		for i := rng.Intn(3); i > 0; i-- {
			m.Info = append(m.Info, randString(rng))
		}
		return m
	case 1:
		m := &Termination{Reason: uint16(rng.Intn(5))}
		for i := rng.Intn(3); i > 0; i-- {
			m.Info = append(m.Info, randString(rng))
		}
		return m
	case 2:
		return &PeerUp{
			Peer:       randPeerHeader(rng),
			LocalPort:  uint16(rng.Uint32()),
			RemotePort: uint16(rng.Uint32()),
			SentOpen:   testOpen(1 + rng.Uint32()%100_000),
			RecvOpen:   testOpen(1 + rng.Uint32()%100_000),
		}
	case 3:
		m := &PeerDown{Peer: randPeerHeader(rng)}
		switch rng.Intn(3) {
		case 0:
			m.Reason = DownRemoteNotification
			m.Notification = &bgp.Notification{Code: bgp.NotifCease, Subcode: uint8(rng.Intn(9))}
		case 1:
			m.Reason = DownLocalNoNotification
			m.FSMEvent = uint16(rng.Intn(30))
		default:
			m.Reason = DownDeconfigured
		}
		return m
	case 4:
		u := &bgp.Update{}
		for i := rng.Intn(20); i > 0; i-- {
			u.Withdrawn = append(u.Withdrawn, randPrefix(rng))
		}
		n := rng.Intn(20)
		if len(u.Withdrawn) == 0 {
			n++
		}
		if n > 0 {
			u.Attrs = bgp.Attrs{ASPath: randPath(rng), HasNextHop: true, NextHop: rng.Uint32()}
			for i := 0; i < n; i++ {
				u.NLRI = append(u.NLRI, randPrefix(rng))
			}
		}
		return &RouteMonitoring{Peer: randPeerHeader(rng), Update: u}
	default:
		m := &StatsReport{Peer: randPeerHeader(rng)}
		for i := rng.Intn(6); i > 0; i-- {
			typ := []uint16{StatRejected, StatDupPrefix, StatDupWithdraw, StatAdjRIBIn, StatLocRIB}[rng.Intn(5)]
			v := uint64(rng.Uint32())
			if statIsGauge(typ) {
				v = rng.Uint64()
			}
			m.Stats = append(m.Stats, Stat{Type: typ, Value: v})
		}
		return m
	}
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(24))
	for i := range b {
		b[i] = byte(' ' + rng.Intn(94))
	}
	return string(b)
}

// TestPropertyRoundTrip is the codec property test: randomly generated
// messages of every type must survive encode → decode → encode with an
// identical wire image.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		m := randMessage(rng)
		wire1, err := m.AppendWire(nil)
		if err != nil {
			t.Fatalf("case %d (%T): encode: %v", i, m, err)
		}
		got, err := ReadMessage(NewReader(bytes.NewReader(wire1)))
		if err != nil {
			t.Fatalf("case %d (%T): decode: %v\nwire: %x", i, m, err, wire1)
		}
		wire2, err := got.AppendWire(nil)
		if err != nil {
			t.Fatalf("case %d (%T): re-encode: %v", i, m, err)
		}
		if !bytes.Equal(wire1, wire2) {
			t.Fatalf("case %d (%T): wire image not stable\n first: %x\nsecond: %x", i, m, wire1, wire2)
		}
	}
}

// TestDecodeRobustness feeds truncations and random corruptions of
// valid messages through the decoder: every outcome must be a value or
// an error, never a panic or an out-of-range read.
func TestDecodeRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var corpus [][]byte
	for i := 0; i < 200; i++ {
		wire, err := randMessage(rng).AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, wire)
	}
	for _, wire := range corpus {
		// Every truncation point.
		for cut := 0; cut < len(wire); cut++ {
			if _, err := ReadMessage(NewReader(bytes.NewReader(wire[:cut]))); err == nil && cut < len(wire) {
				// Truncations inside the declared length must error; a
				// shorter valid message is impossible since the length
				// field spans the full image.
				t.Fatalf("truncation at %d of %d decoded successfully", cut, len(wire))
			}
		}
		// Random single-byte corruptions (skip the version byte: the
		// reader rejects those trivially).
		for i := 0; i < 20; i++ {
			mut := append([]byte(nil), wire...)
			pos := 1 + rng.Intn(len(mut)-1)
			mut[pos] ^= byte(1 + rng.Intn(255))
			_, _ = ReadMessage(NewReader(bytes.NewReader(mut))) // must not panic
		}
	}
}

// TestReaderRejectsBadFrames covers the framing-level guards.
func TestReaderRejectsBadFrames(t *testing.T) {
	cases := map[string][]byte{
		"bad version":    {9, 0, 0, 0, 6, TypeInitiation},
		"undersized len": {Version, 0, 0, 0, 3, TypeInitiation},
		"oversized len":  {Version, 0xff, 0xff, 0xff, 0xff, TypeInitiation},
		"truncated hdr":  {Version, 0},
	}
	for name, wire := range cases {
		if _, _, err := NewReader(bytes.NewReader(wire)).Next(); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestDecodeMessageUnknownType rejects unknown types and passes Route
// Mirroring through as a nil no-op.
func TestDecodeMessageUnknownType(t *testing.T) {
	if _, err := DecodeMessage(99, nil); err == nil {
		t.Error("type 99: expected an error")
	}
	if m, err := DecodeMessage(TypeRouteMirroring, []byte{1, 2, 3}); err != nil || m != nil {
		t.Errorf("route mirroring: got %v, %v; want nil, nil", m, err)
	}
}
