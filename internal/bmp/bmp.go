// Package bmp implements the BGP Monitoring Protocol version 3
// (RFC 7854), the export format real routers use to stream every
// peer's BGP feed to a collector over a single TCP connection. It is
// the multi-peer ingestion substrate of the SWIFT reproduction: a
// monitored router opens one connection to a bmp.Station, announces
// each of its peers with Peer Up, and then forwards each peer's
// UPDATEs as Route Monitoring messages — which the station demuxes
// into a fleet of per-peer SWIFT engines.
//
// The codec covers the message types a SWIFT deployment consumes:
// Initiation, Termination, Peer Up, Peer Down, Route Monitoring and
// Stats Report. Embedded BGP PDUs (OPENs inside Peer Up, UPDATEs
// inside Route Monitoring, NOTIFICATIONs inside Peer Down) reuse the
// internal/bgp wire codec, including its allocation-free
// UpdateDecoder for the hot Route Monitoring path.
package bmp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"swift/internal/bgp"
)

// Protocol constants (RFC 7854 §4).
const (
	Version       = 3
	HeaderLen     = 6  // version + length + type
	PeerHeaderLen = 42 // the per-peer header of peer-scoped messages
	// MaxMsgLen caps one BMP message. The RFC sets no limit; Peer Up
	// carries two whole OPENs and Route Monitoring one UPDATE, so 64 KiB
	// is generous and bounds a malicious length field.
	MaxMsgLen = 1 << 16
)

// BMP message types (RFC 7854 §4.1).
const (
	TypeRouteMonitoring = 0
	TypeStatsReport     = 1
	TypePeerDown        = 2
	TypePeerUp          = 3
	TypeInitiation      = 4
	TypeTermination     = 5
	TypeRouteMirroring  = 6
)

// Peer types (§4.2).
const (
	PeerTypeGlobal = 0
	PeerTypeRD     = 1
	PeerTypeLocal  = 2
)

// Peer flags (§4.2).
const (
	PeerFlagV = 0x80 // IPv6 peer address
	PeerFlagL = 0x40 // post-policy Adj-RIB-In
	PeerFlagA = 0x20 // legacy 2-byte AS_PATH format
)

// Information TLV types (§4.4), used by Initiation and Peer Up.
const (
	InfoString   = 0
	InfoSysDescr = 1
	InfoSysName  = 2
)

// Termination TLV types and reasons (§4.5).
const (
	TermInfoString = 0
	TermInfoReason = 1

	ReasonAdminClose    = 0
	ReasonUnspecified   = 1
	ReasonOutOfResource = 2
	ReasonRedundant     = 3
	ReasonPermAdmin     = 4
)

// Peer Down reasons (§4.9).
const (
	DownLocalNotification    = 1 // local close; NOTIFICATION follows
	DownLocalNoNotification  = 2 // local close; FSM event code follows
	DownRemoteNotification   = 3 // remote close; NOTIFICATION follows
	DownRemoteNoNotification = 4
	DownDeconfigured         = 5 // monitoring stopped for this peer
)

// Wire-format errors.
var (
	ErrShortMessage = errors.New("bmp: message truncated")
	ErrBadVersion   = errors.New("bmp: unsupported version")
	ErrBadLength    = errors.New("bmp: bad message length")
	ErrBadType      = errors.New("bmp: unknown message type")
)

// PeerHeader is the 42-byte per-peer header carried by every
// peer-scoped message (§4.2). Addresses are kept in wire form (16
// bytes, IPv4 in the low 4 when the V flag is clear) so encoding
// round-trips exactly; the IPv4 helpers cover this repository's
// v4-only data path.
type PeerHeader struct {
	PeerType      uint8
	Flags         uint8
	Distinguisher uint64
	Addr          [16]byte
	AS            uint32
	BGPID         uint32
	Seconds       uint32 // timestamp, seconds since the epoch
	Micros        uint32 // timestamp, microsecond remainder
}

// IPv4 returns the peer address as a v4 integer (valid when the V flag
// is clear).
func (h *PeerHeader) IPv4() uint32 { return binary.BigEndian.Uint32(h.Addr[12:16]) }

// SetIPv4 stores a v4 peer address in wire position.
func (h *PeerHeader) SetIPv4(a uint32) {
	h.Addr = [16]byte{}
	binary.BigEndian.PutUint32(h.Addr[12:16], a)
}

// Timestamp returns the header timestamp (zero time when unset).
func (h *PeerHeader) Timestamp() time.Time {
	if h.Seconds == 0 && h.Micros == 0 {
		return time.Time{}
	}
	return time.Unix(int64(h.Seconds), int64(h.Micros)*1000).UTC()
}

// SetTimestamp stores t in the seconds/microseconds pair.
func (h *PeerHeader) SetTimestamp(t time.Time) {
	if t.IsZero() {
		h.Seconds, h.Micros = 0, 0
		return
	}
	h.Seconds = uint32(t.Unix())
	h.Micros = uint32(t.Nanosecond() / 1000)
}

func (h *PeerHeader) appendWire(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, PeerHeaderLen)...)
	b := dst[off:]
	b[0] = h.PeerType
	b[1] = h.Flags
	binary.BigEndian.PutUint64(b[2:10], h.Distinguisher)
	copy(b[10:26], h.Addr[:])
	binary.BigEndian.PutUint32(b[26:30], h.AS)
	binary.BigEndian.PutUint32(b[30:34], h.BGPID)
	binary.BigEndian.PutUint32(b[34:38], h.Seconds)
	binary.BigEndian.PutUint32(b[38:42], h.Micros)
	return dst
}

// ParsePeerHeader decodes the per-peer header at the start of a
// peer-scoped message body and returns the remainder.
func ParsePeerHeader(b []byte, h *PeerHeader) ([]byte, error) {
	if len(b) < PeerHeaderLen {
		return nil, ErrShortMessage
	}
	h.PeerType = b[0]
	h.Flags = b[1]
	h.Distinguisher = binary.BigEndian.Uint64(b[2:10])
	copy(h.Addr[:], b[10:26])
	h.AS = binary.BigEndian.Uint32(b[26:30])
	h.BGPID = binary.BigEndian.Uint32(b[30:34])
	h.Seconds = binary.BigEndian.Uint32(b[34:38])
	h.Micros = binary.BigEndian.Uint32(b[38:42])
	return b[PeerHeaderLen:], nil
}

// Message is any encodable BMP message.
type Message interface {
	// BMPType returns the RFC 7854 message type code.
	BMPType() uint8
	// AppendWire appends the complete wire encoding (common header
	// included) to dst and returns the extended slice.
	AppendWire(dst []byte) ([]byte, error)
}

// finishMessage writes the common header for the message encoded at
// dst[off:] and validates the total length.
func finishMessage(dst []byte, off int, typ uint8) ([]byte, error) {
	total := len(dst) - off
	if total > MaxMsgLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLength, total)
	}
	dst[off] = Version
	binary.BigEndian.PutUint32(dst[off+1:off+5], uint32(total))
	dst[off+5] = typ
	return dst, nil
}

func appendCommonHeader(dst []byte) []byte {
	return append(dst, make([]byte, HeaderLen)...)
}

// TLV is one Information TLV (§4.4).
type TLV struct {
	Type  uint16
	Value []byte
}

func appendTLV(dst []byte, typ uint16, val []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], typ)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(val)))
	dst = append(dst, hdr[:]...)
	return append(dst, val...)
}

func parseTLVs(b []byte) ([]TLV, error) {
	var out []TLV
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, ErrShortMessage
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		vlen := int(binary.BigEndian.Uint16(b[2:4]))
		if len(b) < 4+vlen {
			return nil, ErrShortMessage
		}
		out = append(out, TLV{Type: typ, Value: append([]byte(nil), b[4:4+vlen]...)})
		b = b[4+vlen:]
	}
	return out, nil
}

// Initiation announces the monitored router to the station (§4.3).
type Initiation struct {
	SysName  string
	SysDescr string
	// Info carries any additional free-form InfoString TLVs.
	Info []string
}

// BMPType implements Message.
func (*Initiation) BMPType() uint8 { return TypeInitiation }

// AppendWire implements Message.
func (m *Initiation) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = appendCommonHeader(dst)
	if m.SysDescr != "" {
		dst = appendTLV(dst, InfoSysDescr, []byte(m.SysDescr))
	}
	if m.SysName != "" {
		dst = appendTLV(dst, InfoSysName, []byte(m.SysName))
	}
	for _, s := range m.Info {
		dst = appendTLV(dst, InfoString, []byte(s))
	}
	return finishMessage(dst, off, TypeInitiation)
}

// Decode parses an Initiation body (everything after the common header).
func (m *Initiation) Decode(body []byte) error {
	tlvs, err := parseTLVs(body)
	if err != nil {
		return err
	}
	m.SysName, m.SysDescr, m.Info = "", "", nil
	for _, t := range tlvs {
		switch t.Type {
		case InfoSysName:
			m.SysName = string(t.Value)
		case InfoSysDescr:
			m.SysDescr = string(t.Value)
		case InfoString:
			m.Info = append(m.Info, string(t.Value))
		}
	}
	return nil
}

// Termination closes the monitoring session (§4.5).
type Termination struct {
	Reason uint16
	// Info carries free-form TermInfoString TLVs.
	Info []string
}

// BMPType implements Message.
func (*Termination) BMPType() uint8 { return TypeTermination }

// AppendWire implements Message.
func (m *Termination) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = appendCommonHeader(dst)
	var reason [2]byte
	binary.BigEndian.PutUint16(reason[:], m.Reason)
	dst = appendTLV(dst, TermInfoReason, reason[:])
	for _, s := range m.Info {
		dst = appendTLV(dst, TermInfoString, []byte(s))
	}
	return finishMessage(dst, off, TypeTermination)
}

// Decode parses a Termination body.
func (m *Termination) Decode(body []byte) error {
	tlvs, err := parseTLVs(body)
	if err != nil {
		return err
	}
	m.Reason, m.Info = 0, nil
	for _, t := range tlvs {
		switch t.Type {
		case TermInfoReason:
			if len(t.Value) != 2 {
				return fmt.Errorf("%w: termination reason length %d", ErrBadLength, len(t.Value))
			}
			m.Reason = binary.BigEndian.Uint16(t.Value)
		case TermInfoString:
			m.Info = append(m.Info, string(t.Value))
		}
	}
	return nil
}

// PeerUp reports a monitored peer session coming up (§4.10). The two
// embedded OPENs are the ones the router sent and received on that
// session.
type PeerUp struct {
	Peer       PeerHeader
	LocalAddr  [16]byte
	LocalPort  uint16
	RemotePort uint16
	SentOpen   *bgp.Open
	RecvOpen   *bgp.Open
}

// BMPType implements Message.
func (*PeerUp) BMPType() uint8 { return TypePeerUp }

// AppendWire implements Message.
func (m *PeerUp) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = appendCommonHeader(dst)
	dst = m.Peer.appendWire(dst)
	dst = append(dst, m.LocalAddr[:]...)
	var ports [4]byte
	binary.BigEndian.PutUint16(ports[0:2], m.LocalPort)
	binary.BigEndian.PutUint16(ports[2:4], m.RemotePort)
	dst = append(dst, ports[:]...)
	for _, o := range []*bgp.Open{m.SentOpen, m.RecvOpen} {
		if o == nil {
			return nil, errors.New("bmp: peer up requires both OPENs")
		}
		var err error
		dst, err = o.AppendWire(dst)
		if err != nil {
			return nil, err
		}
	}
	return finishMessage(dst, off, TypePeerUp)
}

// Decode parses a Peer Up body.
func (m *PeerUp) Decode(body []byte) error {
	b, err := ParsePeerHeader(body, &m.Peer)
	if err != nil {
		return err
	}
	if len(b) < 20 {
		return ErrShortMessage
	}
	copy(m.LocalAddr[:], b[0:16])
	m.LocalPort = binary.BigEndian.Uint16(b[16:18])
	m.RemotePort = binary.BigEndian.Uint16(b[18:20])
	b = b[20:]
	for _, dst := range []**bgp.Open{&m.SentOpen, &m.RecvOpen} {
		h, err := bgp.ParseHeader(b)
		if err != nil {
			return fmt.Errorf("bmp: embedded OPEN header: %w", err)
		}
		if h.Type != bgp.TypeOpen || len(b) < int(h.Len) {
			return fmt.Errorf("%w: peer up OPEN", ErrShortMessage)
		}
		o := new(bgp.Open)
		if err := o.Decode(b[bgp.HeaderLen:h.Len]); err != nil {
			return fmt.Errorf("bmp: embedded OPEN: %w", err)
		}
		*dst = o
		b = b[h.Len:]
	}
	return nil
}

// PeerDown reports a monitored peer session going down (§4.9).
type PeerDown struct {
	Peer   PeerHeader
	Reason uint8
	// Notification is set for reasons 1 and 3.
	Notification *bgp.Notification
	// FSMEvent is set for reason 2.
	FSMEvent uint16
}

// BMPType implements Message.
func (*PeerDown) BMPType() uint8 { return TypePeerDown }

// AppendWire implements Message.
func (m *PeerDown) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = appendCommonHeader(dst)
	dst = m.Peer.appendWire(dst)
	dst = append(dst, m.Reason)
	switch m.Reason {
	case DownLocalNotification, DownRemoteNotification:
		if m.Notification == nil {
			return nil, errors.New("bmp: peer down reason requires a NOTIFICATION")
		}
		var err error
		dst, err = m.Notification.AppendWire(dst)
		if err != nil {
			return nil, err
		}
	case DownLocalNoNotification:
		var ev [2]byte
		binary.BigEndian.PutUint16(ev[:], m.FSMEvent)
		dst = append(dst, ev[:]...)
	}
	return finishMessage(dst, off, TypePeerDown)
}

// Decode parses a Peer Down body.
func (m *PeerDown) Decode(body []byte) error {
	b, err := ParsePeerHeader(body, &m.Peer)
	if err != nil {
		return err
	}
	if len(b) < 1 {
		return ErrShortMessage
	}
	m.Reason = b[0]
	m.Notification, m.FSMEvent = nil, 0
	b = b[1:]
	switch m.Reason {
	case DownLocalNotification, DownRemoteNotification:
		h, err := bgp.ParseHeader(b)
		if err != nil {
			return fmt.Errorf("bmp: embedded NOTIFICATION header: %w", err)
		}
		if h.Type != bgp.TypeNotification || len(b) < int(h.Len) {
			return fmt.Errorf("%w: peer down NOTIFICATION", ErrShortMessage)
		}
		n := new(bgp.Notification)
		if err := n.Decode(b[bgp.HeaderLen:h.Len]); err != nil {
			return err
		}
		m.Notification = n
	case DownLocalNoNotification:
		if len(b) < 2 {
			return ErrShortMessage
		}
		m.FSMEvent = binary.BigEndian.Uint16(b[0:2])
	}
	return nil
}

// RouteMonitoring forwards one UPDATE from a monitored peer (§4.6).
// This is the hot message type: a collector session is almost entirely
// Route Monitoring.
type RouteMonitoring struct {
	Peer   PeerHeader
	Update *bgp.Update
}

// BMPType implements Message.
func (*RouteMonitoring) BMPType() uint8 { return TypeRouteMonitoring }

// AppendWire implements Message.
func (m *RouteMonitoring) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = appendCommonHeader(dst)
	dst = m.Peer.appendWire(dst)
	if m.Update == nil {
		return nil, errors.New("bmp: route monitoring requires an UPDATE")
	}
	var err error
	dst, err = m.Update.AppendWire(dst)
	if err != nil {
		return nil, err
	}
	return finishMessage(dst, off, TypeRouteMonitoring)
}

// Decode parses a Route Monitoring body, allocating a fresh Update.
// Hot paths should use ParsePeerHeader plus a reusable
// bgp.UpdateDecoder instead (see Station).
func (m *RouteMonitoring) Decode(body []byte) error {
	b, err := ParsePeerHeader(body, &m.Peer)
	if err != nil {
		return err
	}
	h, err := bgp.ParseHeader(b)
	if err != nil {
		return fmt.Errorf("bmp: embedded UPDATE header: %w", err)
	}
	if h.Type != bgp.TypeUpdate || len(b) < int(h.Len) {
		return fmt.Errorf("%w: route monitoring UPDATE", ErrShortMessage)
	}
	u := new(bgp.Update)
	if err := u.Decode(b[bgp.HeaderLen:h.Len]); err != nil {
		return err
	}
	m.Update = u
	return nil
}

// Stat is one statistics TLV (§4.8).
type Stat struct {
	Type  uint16
	Value uint64
}

// Stats Report TLV types this package knows the width of; gauges are
// 8 bytes, counters 4 (§4.8).
const (
	StatRejected    = 0 // counter: prefixes rejected by inbound policy
	StatDupPrefix   = 1 // counter: duplicate prefix advertisements
	StatDupWithdraw = 2 // counter: duplicate withdraws
	StatAdjRIBIn    = 7 // gauge: routes in Adj-RIB-In
	StatLocRIB      = 8 // gauge: routes in Loc-RIB
)

func statIsGauge(typ uint16) bool { return typ == StatAdjRIBIn || typ == StatLocRIB }

// StatsReport carries periodic per-peer counters (§4.8).
type StatsReport struct {
	Peer  PeerHeader
	Stats []Stat
}

// BMPType implements Message.
func (*StatsReport) BMPType() uint8 { return TypeStatsReport }

// AppendWire implements Message.
func (m *StatsReport) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = appendCommonHeader(dst)
	dst = m.Peer.appendWire(dst)
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(m.Stats)))
	dst = append(dst, count[:]...)
	for _, s := range m.Stats {
		if statIsGauge(s.Type) {
			var v [8]byte
			binary.BigEndian.PutUint64(v[:], s.Value)
			dst = appendTLV(dst, s.Type, v[:])
		} else {
			if s.Value > 0xffffffff {
				return nil, fmt.Errorf("bmp: stat %d overflows its 32-bit counter", s.Type)
			}
			var v [4]byte
			binary.BigEndian.PutUint32(v[:], uint32(s.Value))
			dst = appendTLV(dst, s.Type, v[:])
		}
	}
	return finishMessage(dst, off, TypeStatsReport)
}

// Decode parses a Stats Report body. Unknown stat widths other than 4
// or 8 bytes are skipped, as the RFC instructs.
func (m *StatsReport) Decode(body []byte) error {
	b, err := ParsePeerHeader(body, &m.Peer)
	if err != nil {
		return err
	}
	if len(b) < 4 {
		return ErrShortMessage
	}
	count := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	m.Stats = m.Stats[:0]
	for i := 0; i < count; i++ {
		if len(b) < 4 {
			return ErrShortMessage
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		vlen := int(binary.BigEndian.Uint16(b[2:4]))
		if len(b) < 4+vlen {
			return ErrShortMessage
		}
		val := b[4 : 4+vlen]
		switch vlen {
		case 4:
			m.Stats = append(m.Stats, Stat{Type: typ, Value: uint64(binary.BigEndian.Uint32(val))})
		case 8:
			m.Stats = append(m.Stats, Stat{Type: typ, Value: binary.BigEndian.Uint64(val)})
		}
		b = b[4+vlen:]
	}
	return nil
}

// WriteMessage encodes m and writes it to w.
func WriteMessage(w io.Writer, m Message) error {
	buf, err := m.AppendWire(nil)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeMessage decodes one message body (everything after the common
// header) into a typed value. Route Mirroring is recognized but
// returned as nil: SWIFT has no use for mirrored PDUs.
func DecodeMessage(typ uint8, body []byte) (Message, error) {
	switch typ {
	case TypeRouteMonitoring:
		m := new(RouteMonitoring)
		return m, m.Decode(body)
	case TypeStatsReport:
		m := new(StatsReport)
		return m, m.Decode(body)
	case TypePeerDown:
		m := new(PeerDown)
		return m, m.Decode(body)
	case TypePeerUp:
		m := new(PeerUp)
		return m, m.Decode(body)
	case TypeInitiation:
		m := new(Initiation)
		return m, m.Decode(body)
	case TypeTermination:
		m := new(Termination)
		return m, m.Decode(body)
	case TypeRouteMirroring:
		return nil, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrBadType, typ)
}

// Reader frames BMP messages off a stream into a reusable buffer: the
// returned body is valid only until the next call, which is what a
// demuxing hot loop wants (zero steady-state allocation).
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next message's type and body. io.EOF marks a clean
// end of stream between messages.
func (r *Reader) Next() (typ uint8, body []byte, err error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrShortMessage
		}
		return 0, nil, err
	}
	if hdr[0] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[0])
	}
	total := binary.BigEndian.Uint32(hdr[1:5])
	if total < HeaderLen || total > MaxMsgLen {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadLength, total)
	}
	typ = hdr[5]
	n := int(total) - HeaderLen
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	body = r.buf[:n]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return 0, nil, ErrShortMessage
	}
	return typ, body, nil
}

// Buffered reports how many undrained bytes sit in the read buffer —
// the demux loop uses it to flush batches before blocking on the
// socket.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadMessage reads and decodes the next message off rd, allocating
// fresh storage (the convenience path; hot loops use Next plus
// ParsePeerHeader directly).
func ReadMessage(rd *Reader) (Message, error) {
	typ, body, err := rd.Next()
	if err != nil {
		return nil, err
	}
	return DecodeMessage(typ, body)
}
