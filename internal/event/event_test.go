package event

import (
	"testing"
	"time"

	"swift/internal/netaddr"
)

func TestConstructors(t *testing.T) {
	p := netaddr.MustParsePrefix("192.0.2.0/24")
	w := Withdraw(time.Second, p)
	if w.Kind != KindWithdraw || w.At != time.Second || w.Prefix != p || w.Path != nil {
		t.Errorf("Withdraw = %+v", w)
	}
	path := []uint32{2, 5, 6}
	a := Announce(2*time.Second, p, path)
	if a.Kind != KindAnnounce || a.At != 2*time.Second || len(a.Path) != 3 {
		t.Errorf("Announce = %+v", a)
	}
	tk := Tick(3 * time.Second)
	if tk.Kind != KindTick || tk.At != 3*time.Second || tk.Prefix != netaddr.Invalid {
		t.Errorf("Tick = %+v", tk)
	}
	key := PeerKey{AS: 65010, BGPID: 7}
	if got := w.WithPeer(key); got.Peer != key || got.Kind != KindWithdraw {
		t.Errorf("WithPeer = %+v", got)
	}
	if w.Peer != (PeerKey{}) {
		t.Error("WithPeer mutated the receiver")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindWithdraw: "withdraw",
		KindAnnounce: "announce",
		KindTick:     "tick",
		Kind(9):      "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := (PeerKey{AS: 65010, BGPID: 0x0a000001}).String(); got != "AS65010/0a000001" {
		t.Errorf("PeerKey.String() = %q", got)
	}
}

func TestSinkFunc(t *testing.T) {
	var got Batch
	var s Sink = SinkFunc(func(b Batch) error {
		got = b
		return nil
	})
	b := Batch{Tick(time.Second)}
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != KindTick {
		t.Errorf("sink saw %+v", got)
	}
}

func TestStreamClockMonotonic(t *testing.T) {
	var c StreamClock
	t0 := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	if off := c.Offset(t0); off != 0 {
		t.Fatalf("first offset = %v, want 0", off)
	}
	if off := c.Offset(t0.Add(time.Minute)); off != time.Minute {
		t.Fatalf("offset = %v, want 1m", off)
	}
	// A clock step backwards must clamp, never rewind.
	if off := c.Offset(t0.Add(30 * time.Second)); off != time.Minute {
		t.Fatalf("rewound offset = %v, want clamped 1m", off)
	}
	if off := c.Offset(t0.Add(2 * time.Minute)); off != 2*time.Minute {
		t.Fatalf("offset after clamp = %v, want 2m", off)
	}
}
