// Package event defines the one vocabulary every SWIFT stream speaks.
//
// The paper's workflow (§3) is a pipeline: a BGP message stream flows
// in, burst/inference state evolves, reroute decisions come out. Every
// transport in this repo — a live BMP feed, an MRT replay, a synthetic
// burst, a test harness — reduces its input to the same three event
// kinds (withdraw, announce, tick) and hands them to a Sink in ordered
// Batches. Engines and engine fleets are Sinks; feeds are Sources; the
// stream itself is the API.
//
// Events are peer-attributed so that single-session sinks (one Engine)
// and collector-scale sinks (a Fleet demuxing per peer) are fed by the
// same sources unchanged: an Engine ignores Event.Peer, a Fleet routes
// on it.
package event

import (
	"fmt"
	"sync"
	"time"

	"swift/internal/netaddr"
)

// Kind discriminates the three stream event flavours.
type Kind uint8

const (
	// KindWithdraw is one withdrawn prefix.
	KindWithdraw Kind = iota
	// KindAnnounce is one announced (or re-announced) prefix with its
	// AS path.
	KindAnnounce
	// KindTick carries no message: it only advances the stream clock,
	// letting burst detectors close bursts when a stream goes quiet.
	KindTick
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindWithdraw:
		return "withdraw"
	case KindAnnounce:
		return "announce"
	case KindTick:
		return "tick"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// PeerKey identifies the BGP session an event was observed on: the
// (AS, BGP identifier) pair, unique per monitored router. The zero key
// is valid and means "the only session" for single-session streams.
type PeerKey struct {
	AS    uint32
	BGPID uint32
}

// String renders the key as "AS65010/0a000001".
func (k PeerKey) String() string { return fmt.Sprintf("AS%d/%08x", k.AS, k.BGPID) }

// Event is one observation on a BGP session's stream.
type Event struct {
	// At is the event's offset on the session's stream clock.
	At time.Duration
	// Prefix is the subject prefix (withdraw/announce only).
	Prefix netaddr.Prefix
	// Path is the announced AS path; nil for withdrawals and ticks.
	// Consecutive announce events from one UPDATE share the same
	// backing slice — sinks must not mutate it.
	Path []uint32
	// Peer attributes the event to its session. Single-session sinks
	// ignore it; fleet sinks demultiplex on it.
	Peer PeerKey
	// Kind selects withdraw, announce or tick.
	Kind Kind
}

// Withdraw builds a withdrawal event.
func Withdraw(at time.Duration, p netaddr.Prefix) Event {
	return Event{Kind: KindWithdraw, At: at, Prefix: p}
}

// Announce builds an announcement event. The path is retained, not
// copied: callers that reuse path buffers must copy first.
func Announce(at time.Duration, p netaddr.Prefix, path []uint32) Event {
	return Event{Kind: KindAnnounce, At: at, Prefix: p, Path: path}
}

// Tick builds a clock-advance event.
func Tick(at time.Duration) Event {
	return Event{Kind: KindTick, At: at}
}

// WithPeer returns a copy of the event attributed to peer.
func (e Event) WithPeer(peer PeerKey) Event {
	e.Peer = peer
	return e
}

// Batch is an ordered group of events applied in one hand-off. Batching
// is the pipeline's unit of amortization: a sink pays its per-delivery
// setup once per batch instead of once per message.
type Batch []Event

// Sink consumes event batches. Both the single-session Engine and the
// collector-scale Fleet satisfy it, so sources feed either unchanged.
//
// Apply must observe events in batch order. Whether application is
// synchronous (Engine) or queued behind a delivery goroutine (Fleet) is
// the sink's business; callers needing a barrier use the sink's own
// synchronization (e.g. Fleet.Sync).
type Sink interface {
	Apply(Batch) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Batch) error

// Apply calls f.
func (f SinkFunc) Apply(b Batch) error { return f(b) }

// Source pushes a stream of event batches into a sink until the stream
// is exhausted or the sink fails. A Source owns segmentation (how many
// events per batch) and the stream clock (each event's At).
type Source interface {
	Run(Sink) error
}

// PeerSink is an optional fast-path surface of a Sink: a sink that can
// bind a dedicated sub-sink for one peer's events. Sources that demux
// per peer anyway (a BMP station's per-peer streams) bind once at
// stream setup and skip the per-batch peer routing; the returned sink
// must only be fed that peer's events.
type PeerSink interface {
	PeerSink(peer PeerKey) Sink
}

// Provisioner is the optional setup surface of a Sink. Sources that
// carry an initial table transfer (a BMP table dump, an MRT RIB
// snapshot) load routes and compile the reroute plan through it before
// streaming live events. Sinks that don't implement it are assumed to
// be provisioned out-of-band.
type Provisioner interface {
	// Learn installs one initial-table route on the peer's primary RIB.
	Learn(peer PeerKey, p netaddr.Prefix, path []uint32)
	// Provisioned reports whether the peer's reroute plan is compiled.
	Provisioned(peer PeerKey) bool
	// Provision compiles the peer's plan from the routes learned so far.
	Provision(peer PeerKey) error
}

// StreamClock converts a source's wall-clock timestamps into the
// monotonic stream offsets events carry. The epoch anchors at the first
// timestamp ever seen and persists for the clock's lifetime — across
// source reconnects — and offsets never run backwards, so a flapping
// session or a router clock step cannot rewind an engine's burst
// detector. The zero value is ready to use.
type StreamClock struct {
	mu        sync.Mutex
	epoch     time.Time
	haveEpoch bool
	last      time.Duration
}

// Offset converts ts into a non-decreasing stream offset.
func (c *StreamClock) Offset(ts time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveEpoch {
		c.epoch = ts
		c.haveEpoch = true
	}
	off := ts.Sub(c.epoch)
	if off < c.last {
		off = c.last
	}
	c.last = off
	return off
}
