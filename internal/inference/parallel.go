package inference

import (
	"runtime"
	"sync"
)

// The scoring worker pool. Candidate re-ranking and live-path counting
// are embarrassingly parallel over disjoint index spans; for large sets
// the tracker fans them out here. The pool is bounded — at most
// GOMAXPROCS (capped) goroutines serve every tracker in the process —
// so a fleet of engines inferring at once cannot multiply goroutines
// past the core count; a saturated pool degrades to inline execution,
// never to queue buildup.
var scoreWorkers = func() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}()

const (
	// linkGrain is the minimum number of candidate links per worker —
	// below 2 grains the handoff costs more than the exp/log re-keying.
	linkGrain = 256
	// pathGrain is the minimum number of live paths per counting
	// worker.
	pathGrain = 2048
)

var workers struct {
	once sync.Once
	jobs chan func()
}

func startWorkers() {
	workers.jobs = make(chan func(), scoreWorkers)
	for i := 0; i < scoreWorkers-1; i++ {
		go func() {
			for f := range workers.jobs {
				f()
			}
		}()
	}
}

// parallelFor splits [0, n) into per-worker spans and runs fn over them
// on the bounded pool, running serially when the work is too small to
// amortize the handoff. fn must be safe to run concurrently on disjoint
// spans; parallelFor returns only after every span completed.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	if scoreWorkers <= 1 || n < 2*grain {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	workers.once.Do(startWorkers)
	w := (n + grain - 1) / grain
	if w > scoreWorkers {
		w = scoreWorkers
	}
	span := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := span; lo < n; lo += span {
		hi := lo + span
		if hi > n {
			hi = n
		}
		lo := lo
		wg.Add(1)
		job := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case workers.jobs <- job:
		default:
			job() // pool saturated: run inline, never queue up
		}
	}
	fn(0, span) // the caller takes the first span itself
	wg.Wait()
}
