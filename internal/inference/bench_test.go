package inference

import (
	"testing"

	"swift/internal/netaddr"
	"swift/internal/rib"
)

// BenchmarkObserveWithdraw measures the per-message cost of the hot
// path: RIB withdrawal plus per-link W accounting.
func BenchmarkObserveWithdraw(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	n := b.N
	if n > 1<<20-1 {
		n = 1<<20 - 1
	}
	for i := 0; i < n; i++ {
		table.Announce(netaddr.PrefixFor(8, i%(1<<20-1)), []uint32{2, 5, 6, 8})
	}
	tr := NewTracker(cfg, table)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i%n))
	}
}

// BenchmarkObserveWithdrawHot keeps the RIB full by re-announcing each
// withdrawn prefix, so every iteration measures a live withdrawal (the
// table never drains into the miss path) plus the matching
// re-announce; the periodic Reset bounds burst state the way the
// engine's burst lifecycle does.
func BenchmarkObserveWithdrawHot(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	const n = 1 << 16
	path := []uint32{2, 5, 6, 8}
	for i := 0; i < n; i++ {
		table.Announce(netaddr.PrefixFor(8, i), path)
	}
	tr := NewTracker(cfg, table)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netaddr.PrefixFor(8, i%n)
		tr.ObserveWithdraw(p)
		tr.ObserveAnnounce(p, path)
		if tr.Received() >= 15000 {
			tr.Reset()
		}
	}
}

// BenchmarkInfer measures one inference over a burst state with many
// charged links.
func BenchmarkInfer(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	// 50 distinct paths over distinct links, 200 prefixes each.
	for g := uint32(0); g < 50; g++ {
		for i := 0; i < 200; i++ {
			table.Announce(netaddr.PrefixFor(100+g, i), []uint32{2, 500 + g, 600 + g, 100 + g})
		}
	}
	tr := NewTracker(cfg, table)
	for g := uint32(0); g < 50; g++ {
		for i := 0; i < 100; i++ {
			tr.ObserveWithdraw(netaddr.PrefixFor(100+g, i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tr.Infer()
		if len(res.Links) == 0 {
			b.Fatal("no inference")
		}
	}
}

// BenchmarkInferRepeated measures the in-burst trigger cadence: a
// withdrawal lands, then Infer re-runs. The incremental candidate order
// re-ranks only the links that withdrawal dirtied and the pick runs on
// reused buffers, so each call allocates (almost) nothing — the
// acceptance bar is <= 10 allocs/op. The periodic Reset bounds burst
// state the way the engine's burst lifecycle does.
func BenchmarkInferRepeated(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	const groups = 50
	for g := uint32(0); g < groups; g++ {
		for i := 0; i < 400; i++ {
			table.Announce(netaddr.PrefixFor(100+g, i), []uint32{2, 500 + g, 600 + g, 100 + g})
		}
	}
	tr := NewTracker(cfg, table)
	seed := func() {
		for g := uint32(0); g < groups; g++ {
			for i := 0; i < 4+int(g%17); i++ {
				p := netaddr.PrefixFor(100+g, i)
				tr.ObserveWithdraw(p)
				tr.ObserveAnnounce(p, []uint32{2, 500 + g, 600 + g, 100 + g})
			}
		}
	}
	seed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One more withdrawal dirties one path's links...
		g := uint32(i % groups)
		p := netaddr.PrefixFor(100+g, 20+(i/50)%380)
		tr.ObserveWithdraw(p)
		tr.ObserveAnnounce(p, []uint32{2, 500 + g, 600 + g, 100 + g})
		// ...and the trigger re-infers.
		if res := tr.Infer(); len(res.Links) == 0 {
			b.Fatal("no inference")
		}
		if tr.Received() >= 15000 {
			tr.Reset()
			seed()
		}
	}
}

// BenchmarkInferWide measures the trigger cadence over a very wide
// candidate set (6,000 touched links over 2,000 disjoint paths), the
// shape that fans the re-keying and live-path counting out over the
// worker pool on multi-core hosts; the incremental order keeps the
// per-call cost at the dirty links, not the candidate-set width.
func BenchmarkInferWide(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	const groups = 2000
	path := make([]uint32, 3)
	for g := uint32(0); g < groups; g++ {
		path[0], path[1], path[2] = 100000+g, 10000+g, 20000+g
		for i := 0; i < 20; i++ {
			table.Announce(netaddr.PrefixFor(2+g%250, int(g/250)*100+i), path)
		}
	}
	tr := NewTracker(cfg, table)
	for g := uint32(0); g < groups; g++ {
		for k := 0; k < 1+int(g%7); k++ {
			tr.ObserveWithdraw(netaddr.PrefixFor(2+g%250, int(g/250)*100+k))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dirty one group, then re-infer.
		g := uint32(i) % groups
		p := netaddr.PrefixFor(2+g%250, int(g/250)*100+7+i%13)
		path[0], path[1], path[2] = 100000+g, 10000+g, 20000+g
		tr.ObserveWithdraw(p)
		tr.ObserveAnnounce(p, path)
		if res := tr.Infer(); len(res.Links) == 0 {
			b.Fatal("no inference")
		}
	}
}
