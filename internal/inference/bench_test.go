package inference

import (
	"testing"

	"swift/internal/netaddr"
	"swift/internal/rib"
)

// BenchmarkObserveWithdraw measures the per-message cost of the hot
// path: RIB withdrawal plus per-link W accounting.
func BenchmarkObserveWithdraw(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	n := b.N
	if n > 1<<20-1 {
		n = 1<<20 - 1
	}
	for i := 0; i < n; i++ {
		table.Announce(netaddr.PrefixFor(8, i%(1<<20-1)), []uint32{2, 5, 6, 8})
	}
	tr := NewTracker(cfg, table)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i%n))
	}
}

// BenchmarkObserveWithdrawHot keeps the RIB full by re-announcing each
// withdrawn prefix, so every iteration measures a live withdrawal (the
// table never drains into the miss path) plus the matching
// re-announce; the periodic Reset bounds burst state the way the
// engine's burst lifecycle does.
func BenchmarkObserveWithdrawHot(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	const n = 1 << 16
	path := []uint32{2, 5, 6, 8}
	for i := 0; i < n; i++ {
		table.Announce(netaddr.PrefixFor(8, i), path)
	}
	tr := NewTracker(cfg, table)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netaddr.PrefixFor(8, i%n)
		tr.ObserveWithdraw(p)
		tr.ObserveAnnounce(p, path)
		if tr.Received() >= 20000 {
			tr.Reset()
		}
	}
}

// BenchmarkInfer measures one inference over a burst state with many
// charged links.
func BenchmarkInfer(b *testing.B) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	// 50 distinct paths over distinct links, 200 prefixes each.
	for g := uint32(0); g < 50; g++ {
		for i := 0; i < 200; i++ {
			table.Announce(netaddr.PrefixFor(100+g, i), []uint32{2, 500 + g, 600 + g, 100 + g})
		}
	}
	tr := NewTracker(cfg, table)
	for g := uint32(0); g < 50; g++ {
		for i := 0; i < 100; i++ {
			tr.ObserveWithdraw(netaddr.PrefixFor(100+g, i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tr.Infer()
		if len(res.Links) == 0 {
			b.Fatal("no inference")
		}
	}
}
