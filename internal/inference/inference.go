// Package inference implements the SWIFT inference algorithm of §4:
// Withdrawal Share and Path Share per AS link, their weighted-geometric-
// mean Fit Score, greedy aggregation of links sharing an endpoint (for
// concurrent failures such as router outages), and the adaptive
// triggering policy that trades speed for plausibility against history.
//
// The tracker runs on the interned RIB core: withdrawn paths are kept
// alive by reference for the duration of a burst, W(l, t) is a dense
// per-LinkID counter, withdrawn prefixes are grouped per PathID, and
// every set union the aggregation step needs is computed by testing the
// handful of unique paths against the link set instead of folding
// per-prefix hash sets. Steady-state observation allocates nothing.
package inference

import (
	"math"
	"sort"
	"sync/atomic"

	"swift/internal/flatmap"
	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/stats"
	"swift/internal/topology"
)

// Config holds the algorithm's tunables with the paper's defaults.
type Config struct {
	// WWS and WPS weight Withdrawal Share and Path Share in the Fit
	// Score. The paper's calibration found WWS = 3·WPS best (§4.2).
	WWS, WPS float64
	// TriggerEvery is the number of received withdrawals between
	// inference attempts (2,500 in the paper).
	TriggerEvery int
	// AcceptAlways is the received-withdrawal count past which an
	// inference is accepted regardless of history (20,000).
	AcceptAlways int
	// Plausibility maps received-withdrawal brackets to the maximum
	// predicted burst size history considers plausible (§4.2). Entries
	// must be sorted by Received ascending.
	Plausibility []PlausibilityRule
	// UseHistory enables the plausibility gate (Fig. 6b vs 6a).
	UseHistory bool
	// TieEpsilon treats Fit Scores within this relative distance of the
	// maximum as tied, returning all of them (the conservative strategy
	// when the failed link cannot be determined univocally).
	TieEpsilon float64
}

// PlausibilityRule is one row of §4.2's table: after Received
// withdrawals, accept if the predicted total is at most MaxPredicted.
type PlausibilityRule struct {
	Received     int
	MaxPredicted int
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		WWS:          3,
		WPS:          1,
		TriggerEvery: 2500,
		AcceptAlways: 20000,
		Plausibility: []PlausibilityRule{
			{Received: 2500, MaxPredicted: 10000},
			{Received: 5000, MaxPredicted: 20000},
			{Received: 7500, MaxPredicted: 50000},
			{Received: 10000, MaxPredicted: 100000},
		},
		UseHistory: true,
		TieEpsilon: 1e-9,
	}
}

// LinkScore is one link's metrics at inference time.
type LinkScore struct {
	Link topology.Link
	W    int // withdrawn prefixes whose path crossed the link
	P    int // prefixes still routed across the link
	WS   float64
	PS   float64
	FS   float64
}

// Tracker accumulates burst state against a session RIB. Feed every
// message of the stream through ObserveWithdraw/ObserveAnnounce (they
// also maintain the RIB), call Reset at burst boundaries, and Infer
// whenever a decision is wanted.
type Tracker struct {
	cfg Config
	rib *rib.Table
	// totalW counts withdrawals received in the burst, including those
	// for prefixes the RIB did not know (they contribute to W(t) — the
	// denominator — as in the paper, where every received withdrawal is
	// information).
	totalW int

	// wCount is W(l, t) by dense LinkID; wLinks lists the links with a
	// non-zero counter (the burst's touched set). Both persist across
	// Reset — counters are zeroed through the touched list, never
	// reallocated.
	wCount []int32
	wLinks []rib.LinkID

	// wPaths holds one owned reference per unique path withdrawn this
	// burst, pinning its PathID for the burst's lifetime; wByPath groups
	// the withdrawn prefixes by that PathID (slices are truncated, not
	// dropped, on Reset). Set unions over withdrawn prefixes — the
	// multi-link aggregation of §4.2 — test each of these few paths
	// against the link set and sum group sizes.
	wPaths  []rib.PathHandle
	wByPath [][]netaddr.Prefix

	// wSeen records each withdrawn prefix's path; multi lists, for the
	// rare prefix withdrawn more than once in a burst (path exploration:
	// withdraw, re-announce, withdraw), every path it was withdrawn
	// with. Unions dedup exactly with it, without per-prefix hash sets.
	// wSeen is probed once per withdrawal, so it uses the flat map.
	wSeen flatmap.Map[netaddr.Prefix, rib.PathHandle]
	multi map[netaddr.Prefix][]rib.PathHandle

	// Incremental scoring state. ord keeps the burst's touched links
	// sorted by kval, a totalW-free rank key (see keyOf) whose order
	// equals Fit-Score order but does not move as more withdrawals
	// arrive. Links whose W or P inputs changed since the last Infer are
	// collected in dirty (dirtyOn dedups); an Infer re-scores only
	// those and merges them back, so repeated in-burst inference stops
	// recomputing the whole candidate set from scratch.
	ord     []rib.LinkID
	ord2    []rib.LinkID
	kval    []float64
	dirty   []rib.LinkID
	dirtyOn []bool
	ordered bool
	sorter  ordSorter

	// pickOrdered scratch: the tie set, one candidate set per endpoint,
	// and the candidate-extension buffer. Reused across calls so a
	// repeated in-burst Infer allocates only its Result.
	linksA []topology.Link
	linksB []topology.Link
	linksC []topology.Link
	cand   []topology.Link

	// scratch
	idBuf []rib.LinkID
	set   rib.LinkSet
}

// NewTracker wraps a session RIB and registers itself as the table's
// link observer (a table feeds at most one tracker).
func NewTracker(cfg Config, table *rib.Table) *Tracker {
	t := &Tracker{
		cfg:   cfg,
		rib:   table,
		multi: make(map[netaddr.Prefix][]rib.PathHandle),
	}
	t.sorter.t = t
	table.SetLinkObserver(t.linkTouched)
	return t
}

// linkTouched is the RIB's P(l, t)-change hook: a burst-scored link
// whose still-routed count moved must be re-ranked at the next Infer.
func (t *Tracker) linkTouched(id rib.LinkID) {
	if int(id) < len(t.wCount) && t.wCount[id] > 0 {
		t.markDirty(id)
	}
}

// markDirty queues id for re-scoring (deduplicated) and keeps the
// dense per-link rank arrays sized.
func (t *Tracker) markDirty(id rib.LinkID) {
	if int(id) >= len(t.dirtyOn) {
		n := int(id) + 1 + int(id)/2
		grownB := make([]bool, n)
		copy(grownB, t.dirtyOn)
		t.dirtyOn = grownB
		grownK := make([]float64, n)
		copy(grownK, t.kval)
		t.kval = grownK
	}
	if !t.dirtyOn[id] {
		t.dirtyOn[id] = true
		t.dirty = append(t.dirty, id)
	}
}

// RIB returns the underlying table.
func (t *Tracker) RIB() *rib.Table { return t.rib }

// Received returns the number of withdrawals observed since Reset.
func (t *Tracker) Received() int { return t.totalW }

// Reset clears burst state (on burst end, or after rerouting when BGP
// has reconverged), reusing every buffer: counters are zeroed through
// the touched lists, prefix groups are truncated in place, and the
// held path references go back to the pool.
func (t *Tracker) Reset() {
	for _, id := range t.wLinks {
		t.wCount[id] = 0
	}
	t.wLinks = t.wLinks[:0]
	for _, h := range t.wPaths {
		t.wByPath[h.ID()] = t.wByPath[h.ID()][:0]
		t.rib.ReleaseHandle(h)
	}
	t.wPaths = t.wPaths[:0]
	t.wSeen.Clear()
	clear(t.multi)
	t.totalW = 0
	t.clearDirty()
	t.ord = t.ord[:0]
	t.ordered = false
}

func (t *Tracker) clearDirty() {
	for _, id := range t.dirty {
		t.dirtyOn[id] = false
	}
	t.dirty = t.dirty[:0]
}

// ObserveWithdraw processes one withdrawal: it charges the prefix's
// current links with the withdrawal and removes the route. Steady
// state this allocates nothing — the withdrawn path's links come
// precomputed from the pool and land in reused counters and groups.
func (t *Tracker) ObserveWithdraw(p netaddr.Prefix) {
	t.totalW++
	h, ok := t.rib.WithdrawHandle(p)
	if !ok {
		return
	}
	t.idBuf = t.rib.AppendPathLinkIDs(t.idBuf[:0], h)
	for _, id := range t.idBuf {
		t.growW(id)
		if t.wCount[id] == 0 {
			t.wLinks = append(t.wLinks, id)
		}
		t.wCount[id]++
		t.markDirty(id)
	}
	pid := int(h.ID())
	if pid >= len(t.wByPath) {
		grown := make([][]netaddr.Prefix, pid+1+pid/2)
		copy(grown, t.wByPath)
		t.wByPath = grown
	}
	if len(t.wByPath[pid]) == 0 {
		t.wPaths = append(t.wPaths, h) // first touch: keep the reference
	} else {
		t.rib.ReleaseHandle(h) // burst already holds one
	}
	t.wByPath[pid] = append(t.wByPath[pid], p)

	// Duplicate-withdrawal bookkeeping for exact unions. First-withdrawal
	// is the overwhelmingly common case, so it pays exactly one flat-map
	// probe; the multi index is only consulted on a repeat.
	if prev, seen := t.wSeen.Get(p); seen {
		if lst, ok := t.multi[p]; ok {
			t.multi[p] = append(lst, h)
		} else {
			t.multi[p] = []rib.PathHandle{prev, h}
		}
	} else {
		t.wSeen.Put(p, h)
	}
}

func (t *Tracker) growW(id rib.LinkID) {
	if int(id) >= len(t.wCount) {
		grown := make([]int32, int(id)+1+int(id)/2)
		copy(grown, t.wCount)
		t.wCount = grown
	}
}

// ObserveAnnounce processes one announcement (a new or changed path).
// Path updates move P(l) — they carry the implicit information that the
// prefix's old links still work for it, which is exactly what drives
// PS apart for the failed link versus its neighbors.
func (t *Tracker) ObserveAnnounce(p netaddr.Prefix, path []uint32) {
	t.rib.Announce(p, path)
}

// RankKey is the canonical candidate-ordering key: WWS·ln W(l) +
// WPS·ln PS(l). The Fit Score is the monotone transform
// exp((key − WWS·ln W(t)) / (WWS+WPS)), so ordering by key equals
// ordering by Fit Score wherever two scores differ as real numbers —
// but unlike the score itself, the key does not move as W(t) grows,
// which is what lets clean links keep their sorted position across
// Infer calls while only dirtied links re-rank. It is exported so model
// tests order their reference scores by the exact same float
// computation (small-integer W/P combinations produce mathematically
// tied scores routinely; the key is the tie domain).
func RankKey(wws, wps, w, p float64) float64 {
	return wws*math.Log(w) + wps*math.Log(w/(w+p))
}

// keyOf evaluates RankKey on one link's counters.
func (t *Tracker) keyOf(id rib.LinkID) float64 {
	w := float64(t.wCount[id])
	p := float64(t.rib.OnLinkID(id))
	return RankKey(t.cfg.WWS, t.cfg.WPS, w, p)
}

// rankLess is the candidate order: rank key descending, ties by link
// for determinism (the same tiebreak a Fit-Score sort uses, since equal
// (W, P) inputs produce bitwise-equal keys and scores).
func (t *Tracker) rankLess(a, b rib.LinkID) bool {
	ka, kb := t.kval[a], t.kval[b]
	if ka != kb {
		return ka > kb
	}
	la, lb := t.rib.LinkByID(a), t.rib.LinkByID(b)
	if la.A != lb.A {
		return la.A < lb.A
	}
	return la.B < lb.B
}

// ordSorter sorts a LinkID slice by rankLess without allocating (the
// tracker embeds one and hands sort.Sort its pointer).
type ordSorter struct {
	t   *Tracker
	ids []rib.LinkID
}

func (s *ordSorter) Len() int           { return len(s.ids) }
func (s *ordSorter) Swap(i, j int)      { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }
func (s *ordSorter) Less(i, j int) bool { return s.t.rankLess(s.ids[i], s.ids[j]) }

func (t *Tracker) sortIDs(ids []rib.LinkID) {
	t.sorter.ids = ids
	sort.Sort(&t.sorter)
	t.sorter.ids = nil
}

// refreshOrder brings ord up to date: a full build on the first use of
// a burst, then incremental — only links dirtied since the last call
// are re-keyed (in parallel past the grain) and merged back into the
// clean remainder.
func (t *Tracker) refreshOrder() {
	if !t.ordered {
		t.ord = append(t.ord[:0], t.wLinks...)
		for _, id := range t.ord {
			t.markDirty(id) // sizes kval
		}
		parallelFor(len(t.ord), linkGrain, func(lo, hi int) {
			for _, id := range t.ord[lo:hi] {
				t.kval[id] = t.keyOf(id)
			}
		})
		t.sortIDs(t.ord)
		t.clearDirty()
		t.ordered = true
		return
	}
	if len(t.dirty) == 0 {
		return
	}
	d := t.dirty
	parallelFor(len(d), linkGrain, func(lo, hi int) {
		for _, id := range d[lo:hi] {
			t.kval[id] = t.keyOf(id)
		}
	})
	// Drop the dirtied links from the clean order, sort just them, and
	// merge the two runs.
	keep := t.ord[:0]
	for _, id := range t.ord {
		if !t.dirtyOn[id] {
			keep = append(keep, id)
		}
	}
	t.sortIDs(d)
	out := t.ord2[:0]
	i, j := 0, 0
	for i < len(keep) && j < len(d) {
		if t.rankLess(d[j], keep[i]) {
			out = append(out, d[j])
			j++
		} else {
			out = append(out, keep[i])
			i++
		}
	}
	out = append(out, keep[i:]...)
	out = append(out, d[j:]...)
	t.ord2 = out
	t.ord, t.ord2 = t.ord2, t.ord
	t.clearDirty()
}

// fsOf materializes one ordered link's Fit Score at the current W(t).
func (t *Tracker) fsOf(id rib.LinkID) float64 {
	w := int(t.wCount[id])
	p := t.rib.OnLinkID(id)
	ws := float64(w) / float64(t.totalW)
	ps := float64(w) / float64(w+p)
	return stats.WeightedGeoMean2(ws, t.cfg.WWS, ps, t.cfg.WPS)
}

// Scores computes per-link metrics for every link touched by the burst,
// sorted by RankKey descending — Fit-Score order, with mathematically
// tied scores broken by link for determinism. The slice is freshly
// allocated; the order comes from the maintained incremental rank, so a
// repeated call after few changes costs the re-rank of the dirty links
// plus materialization.
func (t *Tracker) Scores() []LinkScore {
	if t.totalW == 0 {
		return nil
	}
	t.refreshOrder()
	out := make([]LinkScore, 0, len(t.ord))
	for _, id := range t.ord {
		w := int(t.wCount[id])
		p := t.rib.OnLinkID(id)
		ws := float64(w) / float64(t.totalW)
		ps := float64(w) / float64(w+p)
		fs := stats.WeightedGeoMean2(ws, t.cfg.WWS, ps, t.cfg.WPS)
		out = append(out, LinkScore{Link: t.rib.LinkByID(id), W: w, P: p, WS: ws, PS: ps, FS: fs})
	}
	return out
}

// Result is an inference outcome.
type Result struct {
	// Links are the inferred failed links. Multiple entries either tie
	// at the maximum Fit Score or aggregate around a shared endpoint.
	Links []topology.Link
	// FS is the score of the returned set.
	FS float64
	// Predicted is the number of prefixes still routed over the
	// inferred links — the set SWIFT would reroute, and its estimate of
	// the withdrawals still to come.
	Predicted int
	// Received is the withdrawal count the inference consumed.
	Received int
	// Accepted reports whether the plausibility gate passed.
	Accepted bool
}

// PredictedPrefixes returns the prefixes the inference would reroute.
func (t *Tracker) PredictedPrefixes(r Result) []netaddr.Prefix {
	return t.rib.PrefixesOnAny(r.Links)
}

// AppendPredicted appends the prefixes an inference over links would
// reroute — the unsorted form of PredictedPrefixes for hot-path
// consumers that don't need canonical order. Each prefix appears once.
func (t *Tracker) AppendPredicted(dst []netaddr.Prefix, links []topology.Link) []netaddr.Prefix {
	t.rib.FillLinkSet(&t.set, links)
	return t.rib.AppendPrefixesOnSet(dst, &t.set)
}

// AppendWithdrawnOn appends the burst's already-withdrawn prefixes
// whose pre-withdrawal path crossed any of links — WithdrawnOn without
// the sort, for the engine's decision path. Prefixes withdrawn several
// times dedup through the multi index, so each appears exactly once;
// the order is unspecified.
func (t *Tracker) AppendWithdrawnOn(dst []netaddr.Prefix, links []topology.Link) []netaddr.Prefix {
	t.rib.FillLinkSet(&t.set, links)
	if len(t.multi) == 0 {
		for _, h := range t.wPaths {
			if t.rib.PathCrossesSet(h, &t.set) {
				dst = append(dst, t.wByPath[h.ID()]...)
			}
		}
		return dst
	}
	// Multi-withdrawn prefixes can sit in several path groups (and
	// twice in one); emit them from the multi index instead, once.
	for _, h := range t.wPaths {
		if !t.rib.PathCrossesSet(h, &t.set) {
			continue
		}
		for _, p := range t.wByPath[h.ID()] {
			if _, ok := t.multi[p]; !ok {
				dst = append(dst, p)
			}
		}
	}
	for p, hs := range t.multi {
		for _, h := range hs {
			if t.rib.PathCrossesSet(h, &t.set) {
				dst = append(dst, p)
				break
			}
		}
	}
	return dst
}

// WithdrawnOn returns the sorted union of prefixes already withdrawn in
// this burst whose pre-withdrawal path crossed any of the links.
// Together with PredictedPrefixes it forms the W′ set of §6.2's
// evaluation: all prefixes whose paths traversed the inferred links.
func (t *Tracker) WithdrawnOn(links []topology.Link) []netaddr.Prefix {
	t.rib.FillLinkSet(&t.set, links)
	var out []netaddr.Prefix
	for _, h := range t.wPaths {
		if t.rib.PathCrossesSet(h, &t.set) {
			out = append(out, t.wByPath[h.ID()]...)
		}
	}
	netaddr.Sort(out)
	// A prefix withdrawn more than once (with different paths both
	// crossing the set) appears twice; compact.
	return netaddr.DedupSorted(out)
}

// Infer runs the algorithm against the current burst state. With
// UseHistory set, Accepted applies §4.2's plausibility gate; otherwise
// every inference is accepted.
//
// Inference is incremental across calls within one burst: the candidate
// order is maintained (only links dirtied since the last call re-rank),
// scoring runs on reused buffers, and the only allocation is the
// returned link set. Large candidate or live-path sets fan the scoring
// and counting loops out over the bounded worker pool.
func (t *Tracker) Infer() Result {
	if t.totalW == 0 {
		return Result{}
	}
	t.refreshOrder()
	if len(t.ord) == 0 {
		return Result{}
	}
	links := t.pickOrdered()
	t.rib.FillLinkSet(&t.set, links)
	res := Result{
		Links:     append([]topology.Link(nil), links...),
		FS:        t.setFS(links),
		Predicted: t.countOnSet(),
		Received:  t.totalW,
		Accepted:  true,
	}
	if t.cfg.UseHistory {
		res.Accepted = t.plausible(res)
	}
	return res
}

// countOnSet counts prefixes crossing t.set, splitting the live-path
// scan across the worker pool when the table is large. Integer partial
// sums keep the result exact regardless of the split.
func (t *Tracker) countOnSet() int {
	n := t.rib.NumLivePaths()
	if n < 2*pathGrain {
		return t.rib.CountOnSet(&t.set)
	}
	var total atomic.Int64
	parallelFor(n, pathGrain, func(lo, hi int) {
		total.Add(int64(t.rib.CountOnSetRange(&t.set, lo, hi)))
	})
	return int(total.Load())
}

// plausible applies the history gate: large predictions early in a
// burst are deferred until enough withdrawals confirm them.
func (t *Tracker) plausible(r Result) bool {
	if r.Received >= t.cfg.AcceptAlways {
		return true
	}
	maxPred := -1
	for _, rule := range t.cfg.Plausibility {
		if r.Received >= rule.Received {
			maxPred = rule.MaxPredicted
		}
	}
	if maxPred < 0 {
		// Below the smallest bracket: accept only tiny predictions.
		if len(t.cfg.Plausibility) > 0 {
			return r.Predicted <= t.cfg.Plausibility[0].MaxPredicted
		}
		return true
	}
	return r.Predicted <= maxPred
}

// pickOrdered returns the maximum-FS links, extended by greedy
// same-endpoint aggregation when that increases the set score (the
// concurrent-failure handling of §4.2). It walks the maintained rank
// order on reused buffers; the returned slice aliases tracker scratch
// and is only valid until the next pick.
//
// Aggregate WS and PS use set unions rather than the paper's printed
// per-link sums: on a tree of paths seen from a single vantage, the
// prefixes withdrawn behind a far link also cross every nearer link, so
// summing W(l) double-counts them and inflates WS(S) past 1 for nested
// sets. The union form is the de-duplicated equivalent and matches the
// paper's worked examples (Fig. 4 aggregates nothing; a multi-homed
// entry to a failed router aggregates its entry links).
func (t *Tracker) pickOrdered() []topology.Link {
	topID := t.ord[0]
	topFS := t.fsOf(topID)
	topLink := t.rib.LinkByID(topID)
	links := append(t.linksA[:0], topLink)
	// Ties at the maximum: conservative multi-link answer.
	for _, id := range t.ord[1:] {
		if topFS-t.fsOf(id) <= t.cfg.TieEpsilon*math.Max(1, topFS) {
			links = append(links, t.rib.LinkByID(id))
		} else {
			break
		}
	}
	t.linksA = links

	// Greedy aggregation around each endpoint of the top link: extend
	// the current set with incident links in FS-descending order while
	// the set FS improves. Each endpoint gets its own scratch set so
	// the winner survives the other endpoint's pass.
	best := links
	bestFS := t.setFS(links)
	endpointSets := [2]*[]topology.Link{&t.linksB, &t.linksC}
	for ei, endpoint := range [2]uint32{topLink.A, topLink.B} {
		set := append((*endpointSets[ei])[:0], links...)
		*endpointSets[ei] = set
		shares := true
		for _, l := range set {
			if !l.Has(endpoint) {
				shares = false
				break
			}
		}
		if !shares {
			continue
		}
		cur := bestFS
		for _, id := range t.ord[1:] {
			l := t.rib.LinkByID(id)
			if !l.Has(endpoint) || inSet(set, l) {
				continue
			}
			cand := append(append(t.cand[:0], set...), l)
			t.cand = cand[:0]
			if fs := t.setFS(cand); fs > cur {
				set, cur = append(set[:0], cand...), fs
			}
		}
		*endpointSets[ei] = set
		if cur > bestFS {
			best, bestFS = set, cur
		}
	}
	return best
}

func inSet(set []topology.Link, l topology.Link) bool {
	for _, x := range set {
		if x == l {
			return true
		}
	}
	return false
}

// setFS computes the aggregate Fit Score of a link set (§4.2, with set
// unions in place of sums — see pickLinks):
// WS(S) = |∪ W(l)| / W(t);  PS(S) = |∪ W(l)| / (|∪ W(l)| + |∪ P(l)|).
//
// Both unions come from per-path groups: a unique path is tested
// against the set once and contributes its whole group, so the cost is
// O(unique paths), not O(prefixes). Prefixes withdrawn more than once
// are deduplicated through the multi index.
func (t *Tracker) setFS(links []topology.Link) float64 {
	if t.totalW == 0 {
		return 0
	}
	var w, p int
	if len(links) == 1 {
		if id, ok := t.rib.LookupLinkID(links[0]); ok {
			if int(id) < len(t.wCount) {
				w = int(t.wCount[id])
			}
			p = t.rib.OnLinkID(id)
		}
	} else {
		t.rib.FillLinkSet(&t.set, links)
		for _, h := range t.wPaths {
			if t.rib.PathCrossesSet(h, &t.set) {
				w += len(t.wByPath[h.ID()])
			}
		}
		// Subtract the over-count from prefixes withdrawn with several
		// paths that cross the set: each contributes 1, not its
		// crossing-path count.
		for _, hs := range t.multi {
			c := 0
			for _, h := range hs {
				if t.rib.PathCrossesSet(h, &t.set) {
					c++
				}
			}
			if c > 1 {
				w -= c - 1
			}
		}
		p = t.rib.CountOnSet(&t.set)
	}
	if w+p == 0 {
		return 0
	}
	ws := float64(w) / float64(t.totalW)
	ps := float64(w) / float64(w+p)
	return stats.WeightedGeoMean2(ws, t.cfg.WWS, ps, t.cfg.WPS)
}

// CommonEndpoint returns the endpoint shared by every link in the set,
// or (0, false) when there is none. The reroute layer avoids paths
// through this endpoint to stay safe under aggregated inferences (§4.2).
func CommonEndpoint(links []topology.Link) (uint32, bool) {
	if len(links) == 0 {
		return 0, false
	}
	if len(links) == 1 {
		return 0, false // a single link has two candidate endpoints
	}
	for _, cand := range []uint32{links[0].A, links[0].B} {
		all := true
		for _, l := range links[1:] {
			if !l.Has(cand) {
				all = false
				break
			}
		}
		if all {
			return cand, true
		}
	}
	return 0, false
}
