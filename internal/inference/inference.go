// Package inference implements the SWIFT inference algorithm of §4:
// Withdrawal Share and Path Share per AS link, their weighted-geometric-
// mean Fit Score, greedy aggregation of links sharing an endpoint (for
// concurrent failures such as router outages), and the adaptive
// triggering policy that trades speed for plausibility against history.
package inference

import (
	"math"
	"sort"

	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/stats"
	"swift/internal/topology"
)

// Config holds the algorithm's tunables with the paper's defaults.
type Config struct {
	// WWS and WPS weight Withdrawal Share and Path Share in the Fit
	// Score. The paper's calibration found WWS = 3·WPS best (§4.2).
	WWS, WPS float64
	// TriggerEvery is the number of received withdrawals between
	// inference attempts (2,500 in the paper).
	TriggerEvery int
	// AcceptAlways is the received-withdrawal count past which an
	// inference is accepted regardless of history (20,000).
	AcceptAlways int
	// Plausibility maps received-withdrawal brackets to the maximum
	// predicted burst size history considers plausible (§4.2). Entries
	// must be sorted by Received ascending.
	Plausibility []PlausibilityRule
	// UseHistory enables the plausibility gate (Fig. 6b vs 6a).
	UseHistory bool
	// TieEpsilon treats Fit Scores within this relative distance of the
	// maximum as tied, returning all of them (the conservative strategy
	// when the failed link cannot be determined univocally).
	TieEpsilon float64
}

// PlausibilityRule is one row of §4.2's table: after Received
// withdrawals, accept if the predicted total is at most MaxPredicted.
type PlausibilityRule struct {
	Received     int
	MaxPredicted int
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		WWS:          3,
		WPS:          1,
		TriggerEvery: 2500,
		AcceptAlways: 20000,
		Plausibility: []PlausibilityRule{
			{Received: 2500, MaxPredicted: 10000},
			{Received: 5000, MaxPredicted: 20000},
			{Received: 7500, MaxPredicted: 50000},
			{Received: 10000, MaxPredicted: 100000},
		},
		UseHistory: true,
		TieEpsilon: 1e-9,
	}
}

// LinkScore is one link's metrics at inference time.
type LinkScore struct {
	Link topology.Link
	W    int // withdrawn prefixes whose path crossed the link
	P    int // prefixes still routed across the link
	WS   float64
	PS   float64
	FS   float64
}

// Tracker accumulates burst state against a session RIB. Feed every
// message of the stream through ObserveWithdraw/ObserveAnnounce (they
// also maintain the RIB), call Reset at burst boundaries, and Infer
// whenever a decision is wanted.
type Tracker struct {
	cfg Config
	rib *rib.Table
	// wOn records, per link, the prefixes withdrawn during the burst
	// whose path crossed the link (append-only: a prefix is withdrawn
	// at most once per burst while it holds a route). Its lengths are
	// the W(l, t) counters; set unions over it drive the multi-link
	// aggregation of §4.2.
	wOn map[topology.Link][]netaddr.Prefix
	// totalW counts withdrawals received in the burst, including those
	// for prefixes the RIB did not know (they contribute to W(t) — the
	// denominator — as in the paper, where every received withdrawal is
	// information).
	totalW int
}

// NewTracker wraps a session RIB.
func NewTracker(cfg Config, table *rib.Table) *Tracker {
	return &Tracker{cfg: cfg, rib: table, wOn: make(map[topology.Link][]netaddr.Prefix)}
}

// RIB returns the underlying table.
func (t *Tracker) RIB() *rib.Table { return t.rib }

// Received returns the number of withdrawals observed since Reset.
func (t *Tracker) Received() int { return t.totalW }

// Reset clears burst state (on burst end, or after rerouting when BGP
// has reconverged).
func (t *Tracker) Reset() {
	t.wOn = make(map[topology.Link][]netaddr.Prefix)
	t.totalW = 0
}

// ObserveWithdraw processes one withdrawal: it charges the prefix's
// current links with the withdrawal and removes the route.
func (t *Tracker) ObserveWithdraw(p netaddr.Prefix) {
	t.totalW++
	old := t.rib.Withdraw(p)
	if old == nil {
		return
	}
	var buf [16]topology.Link
	for _, l := range rib.PathLinks(buf[:0], t.rib.LocalAS(), old) {
		t.wOn[l] = append(t.wOn[l], p)
	}
}

// ObserveAnnounce processes one announcement (a new or changed path).
// Path updates move P(l) — they carry the implicit information that the
// prefix's old links still work for it, which is exactly what drives
// PS apart for the failed link versus its neighbors.
func (t *Tracker) ObserveAnnounce(p netaddr.Prefix, path []uint32) {
	t.rib.Announce(p, path)
}

// Scores computes per-link metrics for every link touched by the burst,
// sorted by Fit Score descending (ties by link order for determinism).
func (t *Tracker) Scores() []LinkScore {
	if t.totalW == 0 {
		return nil
	}
	out := make([]LinkScore, 0, len(t.wOn))
	for l, wps := range t.wOn {
		w := len(wps)
		p := t.rib.OnLink(l)
		ws := float64(w) / float64(t.totalW)
		ps := float64(w) / float64(w+p)
		fs := stats.WeightedGeoMean([]float64{ws, ps}, []float64{t.cfg.WWS, t.cfg.WPS})
		out = append(out, LinkScore{Link: l, W: w, P: p, WS: ws, PS: ps, FS: fs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FS != out[j].FS {
			return out[i].FS > out[j].FS
		}
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}

// Result is an inference outcome.
type Result struct {
	// Links are the inferred failed links. Multiple entries either tie
	// at the maximum Fit Score or aggregate around a shared endpoint.
	Links []topology.Link
	// FS is the score of the returned set.
	FS float64
	// Predicted is the number of prefixes still routed over the
	// inferred links — the set SWIFT would reroute, and its estimate of
	// the withdrawals still to come.
	Predicted int
	// Received is the withdrawal count the inference consumed.
	Received int
	// Accepted reports whether the plausibility gate passed.
	Accepted bool
}

// PredictedPrefixes returns the prefixes the inference would reroute.
func (t *Tracker) PredictedPrefixes(r Result) []netaddr.Prefix {
	return t.rib.PrefixesOnAny(r.Links)
}

// WithdrawnOn returns the union of prefixes already withdrawn in this
// burst whose pre-withdrawal path crossed any of the links. Together
// with PredictedPrefixes it forms the W′ set of §6.2's evaluation: all
// prefixes whose paths traversed the inferred links.
func (t *Tracker) WithdrawnOn(links []topology.Link) []netaddr.Prefix {
	seen := make(map[netaddr.Prefix]struct{})
	for _, l := range links {
		for _, p := range t.wOn[l] {
			seen[p] = struct{}{}
		}
	}
	out := make([]netaddr.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	netaddr.Sort(out)
	return out
}

// Infer runs the algorithm against the current burst state. With
// UseHistory set, Accepted applies §4.2's plausibility gate; otherwise
// every inference is accepted.
func (t *Tracker) Infer() Result {
	scores := t.Scores()
	if len(scores) == 0 {
		return Result{}
	}
	links := t.pickLinks(scores)
	pred := 0
	{
		seen := make(map[netaddr.Prefix]struct{})
		var buf []netaddr.Prefix
		for _, l := range links {
			buf = t.rib.PrefixesOn(buf[:0], l)
			for _, p := range buf {
				seen[p] = struct{}{}
			}
		}
		pred = len(seen)
	}
	res := Result{
		Links:     links,
		FS:        t.setFS(links),
		Predicted: pred,
		Received:  t.totalW,
		Accepted:  true,
	}
	if t.cfg.UseHistory {
		res.Accepted = t.plausible(res)
	}
	return res
}

// plausible applies the history gate: large predictions early in a
// burst are deferred until enough withdrawals confirm them.
func (t *Tracker) plausible(r Result) bool {
	if r.Received >= t.cfg.AcceptAlways {
		return true
	}
	maxPred := -1
	for _, rule := range t.cfg.Plausibility {
		if r.Received >= rule.Received {
			maxPred = rule.MaxPredicted
		}
	}
	if maxPred < 0 {
		// Below the smallest bracket: accept only tiny predictions.
		if len(t.cfg.Plausibility) > 0 {
			return r.Predicted <= t.cfg.Plausibility[0].MaxPredicted
		}
		return true
	}
	return r.Predicted <= maxPred
}

// pickLinks returns the maximum-FS links, extended by greedy
// same-endpoint aggregation when that increases the set score (the
// concurrent-failure handling of §4.2).
//
// Aggregate WS and PS use set unions rather than the paper's printed
// per-link sums: on a tree of paths seen from a single vantage, the
// prefixes withdrawn behind a far link also cross every nearer link, so
// summing W(l) double-counts them and inflates WS(S) past 1 for nested
// sets. The union form is the de-duplicated equivalent and matches the
// paper's worked examples (Fig. 4 aggregates nothing; a multi-homed
// entry to a failed router aggregates its entry links).
func (t *Tracker) pickLinks(scores []LinkScore) []topology.Link {
	top := scores[0]
	links := []topology.Link{top.Link}
	// Ties at the maximum: conservative multi-link answer.
	for _, s := range scores[1:] {
		if top.FS-s.FS <= t.cfg.TieEpsilon*math.Max(1, top.FS) {
			links = append(links, s.Link)
		} else {
			break
		}
	}

	// Greedy aggregation around each endpoint of the top link: extend
	// the current set with incident links in FS-descending order while
	// the set FS improves.
	best := links
	bestFS := t.setFS(links)
	for _, endpoint := range []uint32{top.Link.A, top.Link.B} {
		set := append([]topology.Link(nil), links...)
		shares := true
		for _, l := range set {
			if !l.Has(endpoint) {
				shares = false
				break
			}
		}
		if !shares {
			continue
		}
		cur := bestFS
		for _, s := range scores[1:] {
			if !s.Link.Has(endpoint) || inSet(set, s.Link) {
				continue
			}
			cand := append(append([]topology.Link(nil), set...), s.Link)
			fs := t.setFS(cand)
			if fs > cur {
				set, cur = cand, fs
			}
		}
		if cur > bestFS {
			best, bestFS = set, cur
		}
	}
	return best
}

func inSet(set []topology.Link, l topology.Link) bool {
	for _, x := range set {
		if x == l {
			return true
		}
	}
	return false
}

// setFS computes the aggregate Fit Score of a link set (§4.2, with set
// unions in place of sums — see pickLinks):
// WS(S) = |∪ W(l)| / W(t);  PS(S) = |∪ W(l)| / (|∪ W(l)| + |∪ P(l)|).
func (t *Tracker) setFS(links []topology.Link) float64 {
	if t.totalW == 0 {
		return 0
	}
	var w, p int
	if len(links) == 1 {
		l := links[0]
		w = len(t.wOn[l])
		p = t.rib.OnLink(l)
	} else {
		wUnion := make(map[netaddr.Prefix]struct{})
		for _, l := range links {
			for _, wp := range t.wOn[l] {
				wUnion[wp] = struct{}{}
			}
		}
		pUnion := make(map[netaddr.Prefix]struct{})
		var buf []netaddr.Prefix
		for _, l := range links {
			buf = t.rib.PrefixesOn(buf[:0], l)
			for _, pp := range buf {
				pUnion[pp] = struct{}{}
			}
		}
		w, p = len(wUnion), len(pUnion)
	}
	if w+p == 0 {
		return 0
	}
	ws := float64(w) / float64(t.totalW)
	ps := float64(w) / float64(w+p)
	return stats.WeightedGeoMean([]float64{ws, ps}, []float64{t.cfg.WWS, t.cfg.WPS})
}

// CommonEndpoint returns the endpoint shared by every link in the set,
// or (0, false) when there is none. The reroute layer avoids paths
// through this endpoint to stay safe under aggregated inferences (§4.2).
func CommonEndpoint(links []topology.Link) (uint32, bool) {
	if len(links) == 0 {
		return 0, false
	}
	if len(links) == 1 {
		return 0, false // a single link has two candidate endpoints
	}
	for _, cand := range []uint32{links[0].A, links[0].B} {
		all := true
		for _, l := range links[1:] {
			if !l.Has(cand) {
				all = false
				break
			}
		}
		if all {
			return cand, true
		}
	}
	return 0, false
}
