package inference

import (
	"math"
	"testing"

	"swift/internal/bgpsim"
	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/topology"
)

func link(a, b uint32) topology.Link { return topology.MakeLink(a, b) }

// fig1Tracker builds AS 1's session RIB with AS 2 in the pre-failure
// state of Fig. 1 (scaled 1/10: S2/S5/S6 = 100, S7/S8 = 1000 prefixes).
func fig1Tracker(cfg Config) *Tracker {
	tb := rib.New(1)
	add := func(origin uint32, count int, path ...uint32) {
		for i := 0; i < count; i++ {
			tb.Announce(netaddr.PrefixFor(origin, i), path)
		}
	}
	add(2, 100, 2)
	add(5, 100, 2, 5)
	add(6, 100, 2, 5, 6)
	add(7, 1000, 2, 5, 6, 7)
	add(8, 1000, 2, 5, 6, 8)
	return NewTracker(cfg, tb)
}

// playFig1Burst feeds the full Fig. 1 burst: withdrawals for S6+S8,
// announcements moving S7 to the (5,6)-free path.
func playFig1Burst(t *Tracker) {
	for i := 0; i < 100; i++ {
		t.ObserveWithdraw(netaddr.PrefixFor(6, i))
	}
	for i := 0; i < 1000; i++ {
		t.ObserveWithdraw(netaddr.PrefixFor(8, i))
		t.ObserveAnnounce(netaddr.PrefixFor(7, i), []uint32{2, 5, 3, 6, 7})
	}
}

func TestFig4EndOfBurstInference(t *testing.T) {
	cfg := Default()
	cfg.UseHistory = false
	tr := fig1Tracker(cfg)
	playFig1Burst(tr)

	scores := tr.Scores()
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	if scores[0].Link != link(5, 6) {
		t.Fatalf("top link = %v, want (5,6); scores: %+v", scores[0].Link, scores[:3])
	}
	// At burst end the failed link's WS and PS are both exactly 1
	// (Theorem 4.1's condition).
	if scores[0].WS != 1 || scores[0].PS != 1 || scores[0].FS != 1 {
		t.Errorf("FS components for (5,6) = WS %v PS %v FS %v, want 1,1,1",
			scores[0].WS, scores[0].PS, scores[0].FS)
	}
	// W values from Fig. 4 (scaled): (5,6)=1100, (6,8)=1000, (6,7)=0.
	var by = map[topology.Link]LinkScore{}
	for _, s := range scores {
		by[s.Link] = s
	}
	if by[link(5, 6)].W != 1100 {
		t.Errorf("W(5,6) = %d, want 1100", by[link(5, 6)].W)
	}
	if by[link(6, 8)].W != 1000 {
		t.Errorf("W(6,8) = %d, want 1000", by[link(6, 8)].W)
	}
	if _, ok := by[link(6, 7)]; ok {
		t.Error("(6,7) must have no withdrawals charged")
	}
	// WS(6,8) = 10/11 exactly.
	if got, want := by[link(6, 8)].WS, 1000.0/1100.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("WS(6,8) = %v, want %v", got, want)
	}

	res := tr.Infer()
	if len(res.Links) != 1 || res.Links[0] != link(5, 6) {
		t.Errorf("inferred = %v, want [(5,6)]", res.Links)
	}
	if !res.Accepted {
		t.Error("end-of-burst inference must be accepted")
	}
}

func TestEarlyInferencePrefersFailedLink(t *testing.T) {
	cfg := Default()
	cfg.UseHistory = false
	tr := fig1Tracker(cfg)
	// Feed only the first 10% of the burst: 10 S6 withdrawals, 100 S8
	// withdrawals, 100 S7 updates.
	for i := 0; i < 10; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(6, i))
	}
	for i := 0; i < 100; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i))
		tr.ObserveAnnounce(netaddr.PrefixFor(7, i), []uint32{2, 5, 3, 6, 7})
	}
	res := tr.Infer()
	// Early on, (5,6) may be indistinguishable from upstream links, but
	// the returned set must contain (5,6) or links adjacent to it, and
	// the predicted set must cover the prefixes still to be withdrawn.
	found := false
	for _, l := range res.Links {
		if l == link(5, 6) || l.Has(5) || l.Has(6) {
			found = true
		}
	}
	if !found {
		t.Errorf("early inference %v unrelated to the failure", res.Links)
	}
}

func TestWeightsFavorWSEarly(t *testing.T) {
	// With wWS=3 early inference must rank (5,6) at least as high as
	// (2,5): both have WS=1 but (5,6) sheds P faster via S7 updates.
	cfg := Default()
	cfg.UseHistory = false
	tr := fig1Tracker(cfg)
	for i := 0; i < 100; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i))
		tr.ObserveAnnounce(netaddr.PrefixFor(7, i), []uint32{2, 5, 3, 6, 7})
	}
	scores := tr.Scores()
	var fs56, fs25 float64
	for _, s := range scores {
		switch s.Link {
		case link(5, 6):
			fs56 = s.FS
		case link(2, 5):
			fs25 = s.FS
		}
	}
	if fs56 <= fs25 {
		t.Errorf("FS(5,6)=%v must exceed FS(2,5)=%v after updates shed P", fs56, fs25)
	}
}

func TestUnknownPrefixWithdrawalCountsTowardTotal(t *testing.T) {
	cfg := Default()
	cfg.UseHistory = false
	tr := fig1Tracker(cfg)
	tr.ObserveWithdraw(netaddr.PrefixFor(99, 0)) // never announced
	if tr.Received() != 1 {
		t.Errorf("received = %d", tr.Received())
	}
	if len(tr.Scores()) != 0 {
		t.Error("unknown prefix must not charge any link")
	}
}

func TestReset(t *testing.T) {
	cfg := Default()
	tr := fig1Tracker(cfg)
	tr.ObserveWithdraw(netaddr.PrefixFor(6, 0))
	tr.Reset()
	if tr.Received() != 0 || len(tr.Scores()) != 0 {
		t.Error("reset must clear burst state")
	}
	// The RIB itself persists across bursts.
	if tr.RIB().Len() == 0 {
		t.Error("reset must not clear the RIB")
	}
}

func TestPlausibilityGate(t *testing.T) {
	cfg := Default()
	tr := fig1Tracker(cfg)
	// 150 withdrawals from S8 leave ~1950 prefixes predicted on the
	// (2,5)/(5,6) chain — under the 10k bracket, so accepted.
	for i := 0; i < 150; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i))
	}
	res := tr.Infer()
	if !res.Accepted {
		t.Errorf("small predicted=%d must pass the gate", res.Predicted)
	}

	// A tracker with a huge RIB on one link: tiny burst predicting a
	// 20k reroute must be deferred below the first bracket.
	big := rib.New(1)
	for i := 0; i < 20000; i++ {
		big.Announce(netaddr.PrefixFor(8, i), []uint32{2, 5, 6, 8})
	}
	tr2 := NewTracker(cfg, big)
	for i := 0; i < 100; i++ {
		tr2.ObserveWithdraw(netaddr.PrefixFor(8, i))
	}
	res2 := tr2.Infer()
	if res2.Accepted {
		t.Errorf("predicted=%d at received=%d must be deferred", res2.Predicted, res2.Received)
	}
	// After 20k received, always accepted.
	for i := 100; i < 20000; i++ {
		tr2.ObserveWithdraw(netaddr.PrefixFor(8, i))
	}
	res3 := tr2.Infer()
	if !res3.Accepted {
		t.Error("past AcceptAlways the inference must be accepted")
	}
}

func TestAggregationForNodeFailure(t *testing.T) {
	// Router 6 dies behind TWO disjoint entry chains (via 5 and via 9):
	// withdrawals split across (5,6) and (9,6), so neither alone
	// explains the burst and the aggregation must return a set sharing
	// endpoint 6. Heavy surviving prefix populations on the shared
	// upstream links keep their Path Share (hence FS) low.
	cfg := Default()
	cfg.UseHistory = false
	tb := rib.New(1)
	add := func(origin uint32, count int, path ...uint32) {
		for i := 0; i < count; i++ {
			tb.Announce(netaddr.PrefixFor(origin, i), path)
		}
	}
	add(7, 500, 2, 5, 6, 7)
	add(8, 500, 2, 9, 6, 8)
	add(5, 5000, 2, 5)        // survives: keeps FS(2,5) low
	add(9, 5000, 2, 9)        // survives: keeps FS(2,9) low
	add(10, 500, 2, 11, 6, 7) // survives via a third entry: keeps FS(6,7) low
	tr := NewTracker(cfg, tb)
	for i := 0; i < 500; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(7, i))
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i))
	}
	res := tr.Infer()
	if len(res.Links) < 2 {
		t.Fatalf("aggregation expected, got %v (scores %+v)", res.Links, tr.Scores())
	}
	common, ok := CommonEndpoint(res.Links)
	if !ok || common != 6 {
		t.Errorf("common endpoint = %d, %v; want 6 (links %v)", common, ok, res.Links)
	}
	// The predicted set must not drag in the surviving heavy origins.
	for _, p := range tr.PredictedPrefixes(res) {
		if o, _, _ := netaddr.PrefixOrigin(p); o == 5 || o == 9 {
			t.Fatalf("prediction reroutes unaffected origin %d", o)
		}
	}
}

func TestCommonEndpoint(t *testing.T) {
	if _, ok := CommonEndpoint(nil); ok {
		t.Error("empty set has no common endpoint")
	}
	if _, ok := CommonEndpoint([]topology.Link{link(1, 2)}); ok {
		t.Error("single link is ambiguous")
	}
	if c, ok := CommonEndpoint([]topology.Link{link(5, 6), link(6, 7)}); !ok || c != 6 {
		t.Errorf("common = %d, %v", c, ok)
	}
	if _, ok := CommonEndpoint([]topology.Link{link(1, 2), link(3, 4)}); ok {
		t.Error("disjoint links share nothing")
	}
}

func TestTheorem41OnSimulatedBursts(t *testing.T) {
	// Theorem 4.1: with every AS injecting prefixes, running the
	// inference at the END of a burst returns a set containing the
	// failed link. Validate on simulated topologies.
	g := topology.Generate(topology.GenConfig{NumASes: 120, AvgDegree: 6, Seed: 9})
	origins := make(map[uint32]int)
	for _, as := range g.ASes() {
		origins[as] = 5
	}
	net := &bgpsim.Network{Graph: g, Policy: &bgpsim.Policy{}, Origins: origins}
	sols := net.Solve(g)

	// Pick the vantage as a low-degree AS and its first provider.
	vantage := uint32(100)
	var neighbor uint32
	for _, nb := range g.Neighbors(vantage) {
		if nb.Rel == topology.RelProvider {
			neighbor = nb.AS
			break
		}
	}
	if neighbor == 0 {
		neighbor = g.Neighbors(vantage)[0].AS
	}

	sessionRIB := net.SessionRIB(sols, vantage, neighbor)
	tested := 0
	for _, l := range g.Links() {
		if tested >= 8 {
			break
		}
		if l.Has(vantage) {
			continue
		}
		b, err := net.ReplayLinkFailure(vantage, neighbor, l, bgpsim.DefaultTiming(int64(l.A)<<16|int64(l.B)))
		if err != nil || b.Size < 20 {
			continue // failure invisible on this session
		}
		tested++
		cfg := Default()
		cfg.UseHistory = false
		tb := rib.New(vantage)
		for origin, path := range sessionRIB {
			for i := 0; i < origins[origin]; i++ {
				tb.Announce(netaddr.PrefixFor(origin, i), path)
			}
		}
		tr := NewTracker(cfg, tb)
		for _, ev := range b.Events {
			if ev.Kind == bgpsim.KindWithdraw {
				tr.ObserveWithdraw(ev.Prefix)
			} else {
				tr.ObserveAnnounce(ev.Prefix, ev.Path)
			}
		}
		res := tr.Infer()
		found := false
		for _, il := range res.Links {
			if il == l {
				found = true
			}
		}
		if !found {
			// The theorem guarantees containment when the vantage sees
			// the full extent; links far from the session may be
			// underdetermined, but the returned set must then at least
			// touch the failed link's endpoints.
			touches := false
			for _, il := range res.Links {
				if il.Has(l.A) || il.Has(l.B) {
					touches = true
				}
			}
			if !touches {
				t.Errorf("failure %v: inferred %v neither contains nor touches it", l, res.Links)
			}
		}
	}
	if tested == 0 {
		t.Skip("no visible failures found on this session")
	}
}

func TestInferEmptyTracker(t *testing.T) {
	tr := NewTracker(Default(), rib.New(1))
	res := tr.Infer()
	if len(res.Links) != 0 || res.Accepted {
		t.Errorf("empty inference = %+v", res)
	}
}

func TestPredictedPrefixes(t *testing.T) {
	cfg := Default()
	cfg.UseHistory = false
	tr := fig1Tracker(cfg)
	for i := 0; i < 200; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i))
	}
	res := tr.Infer()
	ps := tr.PredictedPrefixes(res)
	if len(ps) != res.Predicted {
		t.Errorf("PredictedPrefixes len %d != Predicted %d", len(ps), res.Predicted)
	}
	if res.Predicted == 0 {
		t.Error("prediction must be non-empty mid-burst")
	}
}

// TestInferParallelCounting forces the scoring worker pool on (the
// 1-CPU CI fallback would otherwise run serial) over a table wide
// enough to cross the parallel-counting grain, and checks the fanned
// count agrees with the serial one. Under -race this is the regression
// test for the CountOnSetRange workers racing on the table's inline
// first-link cache.
func TestInferParallelCounting(t *testing.T) {
	oldWorkers := scoreWorkers
	scoreWorkers = 4
	defer func() { scoreWorkers = oldWorkers }()

	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	const groups = 5000 // > 2*pathGrain live paths
	path := make([]uint32, 3)
	for g := uint32(0); g < groups; g++ {
		path[0], path[1], path[2] = 100000+g, 10000+g, 20000+g
		table.Announce(netaddr.PrefixFor(2+g%250, int(g/250)*100), path)
	}
	tr := NewTracker(cfg, table)
	for g := uint32(0); g < groups; g += 7 {
		tr.ObserveWithdraw(netaddr.PrefixFor(2+g%250, int(g/250)*100))
	}
	res := tr.Infer()
	if len(res.Links) == 0 {
		t.Fatal("no inference")
	}
	if want := len(tr.PredictedPrefixes(res)); res.Predicted != want {
		t.Fatalf("parallel Predicted = %d, serial materialization = %d", res.Predicted, want)
	}
}
