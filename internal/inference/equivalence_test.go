package inference

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/stats"
	"swift/internal/topology"
)

// This file pins the interned RIB/tracker to a naive map-based
// reference model: a RIB as map[Prefix]path with a map[Link]set[Prefix]
// inverted index, and a tracker whose W state is map[Link][]Prefix —
// the pre-interning data layout. Under random Announce/Withdraw/Infer
// sequences (with path prepending, >16-hop paths and re-withdrawals
// after path exploration) both must produce identical counters, scores
// and inference decisions.

// refTable is the naive model RIB. Each (prefix, link) pair counts
// once, matching Table's counter semantics.
type refTable struct {
	localAS uint32
	routes  map[netaddr.Prefix][]uint32
	byLink  map[topology.Link]map[netaddr.Prefix]struct{}
}

func newRefTable(localAS uint32) *refTable {
	return &refTable{
		localAS: localAS,
		routes:  make(map[netaddr.Prefix][]uint32),
		byLink:  make(map[topology.Link]map[netaddr.Prefix]struct{}),
	}
}

// linkSetOf returns the deduplicated links of path seen from localAS.
func linkSetOf(localAS uint32, path []uint32) []topology.Link {
	var out []topology.Link
	for _, l := range rib.PathLinks(nil, localAS, path) {
		dup := false
		for _, x := range out {
			if x == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}

func (t *refTable) announce(p netaddr.Prefix, path []uint32) {
	if old, ok := t.routes[p]; ok {
		for _, l := range linkSetOf(t.localAS, old) {
			delete(t.byLink[l], p)
			if len(t.byLink[l]) == 0 {
				delete(t.byLink, l)
			}
		}
	}
	t.routes[p] = append([]uint32(nil), path...)
	for _, l := range linkSetOf(t.localAS, path) {
		set := t.byLink[l]
		if set == nil {
			set = make(map[netaddr.Prefix]struct{})
			t.byLink[l] = set
		}
		set[p] = struct{}{}
	}
}

func (t *refTable) withdraw(p netaddr.Prefix) ([]uint32, bool) {
	old, ok := t.routes[p]
	if !ok {
		return nil, false
	}
	for _, l := range linkSetOf(t.localAS, old) {
		delete(t.byLink[l], p)
		if len(t.byLink[l]) == 0 {
			delete(t.byLink, l)
		}
	}
	delete(t.routes, p)
	return old, true
}

// refTracker is the naive model tracker.
type refTracker struct {
	cfg    Config
	table  *refTable
	wOn    map[topology.Link][]netaddr.Prefix
	totalW int
}

func newRefTracker(cfg Config, table *refTable) *refTracker {
	return &refTracker{cfg: cfg, table: table, wOn: make(map[topology.Link][]netaddr.Prefix)}
}

func (t *refTracker) observeWithdraw(p netaddr.Prefix) {
	t.totalW++
	old, ok := t.table.withdraw(p)
	if !ok {
		return
	}
	for _, l := range linkSetOf(t.table.localAS, old) {
		t.wOn[l] = append(t.wOn[l], p)
	}
}

func (t *refTracker) observeAnnounce(p netaddr.Prefix, path []uint32) {
	t.table.announce(p, path)
}

func (t *refTracker) reset() {
	t.wOn = make(map[topology.Link][]netaddr.Prefix)
	t.totalW = 0
}

func (t *refTracker) scores() []LinkScore {
	if t.totalW == 0 {
		return nil
	}
	out := make([]LinkScore, 0, len(t.wOn))
	keys := make(map[topology.Link]float64, len(t.wOn))
	for l, wps := range t.wOn {
		w := len(wps)
		p := len(t.table.byLink[l])
		ws := float64(w) / float64(t.totalW)
		ps := float64(w) / float64(w+p)
		fs := stats.WeightedGeoMean([]float64{ws, ps}, []float64{t.cfg.WWS, t.cfg.WPS})
		keys[l] = RankKey(t.cfg.WWS, t.cfg.WPS, float64(w), float64(p))
		out = append(out, LinkScore{Link: l, W: w, P: p, WS: ws, PS: ps, FS: fs})
	}
	// Canonical candidate order: RankKey descending, ties by link.
	// Small-integer W/P combinations produce mathematically tied Fit
	// Scores routinely (e.g. W=2,P=30 vs W=1,P=1 at WWS=3), so the
	// score itself is not a usable sort key; the rank key is the
	// algorithm's ordering contract.
	sort.Slice(out, func(i, j int) bool {
		ki, kj := keys[out[i].Link], keys[out[j].Link]
		if ki != kj {
			return ki > kj
		}
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}

func (t *refTracker) setFS(links []topology.Link) float64 {
	if t.totalW == 0 {
		return 0
	}
	var w, p int
	if len(links) == 1 {
		w = len(t.wOn[links[0]])
		p = len(t.table.byLink[links[0]])
	} else {
		wUnion := make(map[netaddr.Prefix]struct{})
		pUnion := make(map[netaddr.Prefix]struct{})
		for _, l := range links {
			for _, wp := range t.wOn[l] {
				wUnion[wp] = struct{}{}
			}
			for pp := range t.table.byLink[l] {
				pUnion[pp] = struct{}{}
			}
		}
		w, p = len(wUnion), len(pUnion)
	}
	if w+p == 0 {
		return 0
	}
	ws := float64(w) / float64(t.totalW)
	ps := float64(w) / float64(w+p)
	return stats.WeightedGeoMean([]float64{ws, ps}, []float64{t.cfg.WWS, t.cfg.WPS})
}

func (t *refTracker) pickLinks(scores []LinkScore) []topology.Link {
	top := scores[0]
	links := []topology.Link{top.Link}
	for _, s := range scores[1:] {
		if top.FS-s.FS <= t.cfg.TieEpsilon*math.Max(1, top.FS) {
			links = append(links, s.Link)
		} else {
			break
		}
	}
	best := links
	bestFS := t.setFS(links)
	for _, endpoint := range []uint32{top.Link.A, top.Link.B} {
		set := append([]topology.Link(nil), links...)
		shares := true
		for _, l := range set {
			if !l.Has(endpoint) {
				shares = false
				break
			}
		}
		if !shares {
			continue
		}
		cur := bestFS
		for _, s := range scores[1:] {
			if !s.Link.Has(endpoint) || inSet(set, s.Link) {
				continue
			}
			cand := append(append([]topology.Link(nil), set...), s.Link)
			fs := t.setFS(cand)
			if fs > cur {
				set, cur = cand, fs
			}
		}
		if cur > bestFS {
			best, bestFS = set, cur
		}
	}
	return best
}

func (t *refTracker) infer() Result {
	scores := t.scores()
	if len(scores) == 0 {
		return Result{}
	}
	links := t.pickLinks(scores)
	pred := make(map[netaddr.Prefix]struct{})
	for _, l := range links {
		for p := range t.table.byLink[l] {
			pred[p] = struct{}{}
		}
	}
	res := Result{
		Links:     links,
		FS:        t.setFS(links),
		Predicted: len(pred),
		Received:  t.totalW,
		Accepted:  true,
	}
	if t.cfg.UseHistory {
		if r := res.Received; r >= t.cfg.AcceptAlways {
			res.Accepted = true
		} else {
			maxPred := -1
			for _, rule := range t.cfg.Plausibility {
				if r >= rule.Received {
					maxPred = rule.MaxPredicted
				}
			}
			if maxPred < 0 && len(t.cfg.Plausibility) > 0 {
				maxPred = t.cfg.Plausibility[0].MaxPredicted
			}
			if maxPred >= 0 {
				res.Accepted = res.Predicted <= maxPred
			}
		}
	}
	return res
}

// randomPath draws a path biased toward overlap (shared trunks),
// occasionally with prepending runs and occasionally longer than the
// old 16-link scratch buffers.
func randomPath(rng *rand.Rand) []uint32 {
	var path []uint32
	// Shared trunk through AS 2 or 3 most of the time.
	trunk := [][]uint32{{2, 5, 6}, {2, 5}, {3, 6}, {2, 9}, {4}}[rng.Intn(5)]
	path = append(path, trunk...)
	hops := rng.Intn(4)
	if rng.Intn(20) == 0 {
		hops = 18 + rng.Intn(6) // >16 links end to end
	}
	last := path[len(path)-1]
	for i := 0; i < hops; i++ {
		next := 10 + uint32(rng.Intn(30))
		if next == last {
			continue
		}
		path = append(path, next)
		if rng.Intn(5) == 0 { // prepending run
			for k := 0; k < rng.Intn(3)+1; k++ {
				path = append(path, next)
			}
		}
		last = next
	}
	return path
}

func sameScores(a, b []LinkScore) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Link != b[i].Link || a[i].W != b[i].W || a[i].P != b[i].P {
			return false
		}
		if math.Abs(a[i].FS-b[i].FS) > 1e-12 {
			return false
		}
	}
	return true
}

func sameLinks(a, b []topology.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func samePrefixes(a, b []netaddr.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInternedTrackerMatchesReferenceModel is the model-based property
// test: random op sequences, decision-for-decision equality.
func TestInternedTrackerMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		pool := rib.NewPool()
		runEquivalenceSeed(t, seed, pool)
		if pool.Len() != 0 {
			t.Fatalf("seed %d: pool leaks %d paths after drain+reset", seed, pool.Len())
		}
	}
}

// TestInternedTrackerConcurrentPool re-runs the model test with the
// tracker's table sharing its pool with concurrently-churning
// goroutines — the fleet shape over the sharded pool. Foreign interning
// must never perturb the tracker's decisions (tables are isolated;
// only the pool is shared), and once the noise stops and the tracker
// drains, the pool must return to empty. Run with -race.
func TestInternedTrackerConcurrentPool(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		pool := rib.NewPool()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + g)))
				var held []rib.PathHandle
				for {
					select {
					case <-stop:
						for _, h := range held {
							pool.Release(h)
						}
						return
					default:
					}
					// Churn both overlapping (trunk) and private paths,
					// holding some handles to keep refcounts moving.
					path := randomPath(rng)
					if rng.Intn(2) == 0 {
						path = append(path, 500+uint32(g))
					}
					h := pool.Intern(path)
					if len(held) < 32 && rng.Intn(2) == 0 {
						held = append(held, h)
					} else {
						pool.Release(h)
					}
					if len(held) > 0 && rng.Intn(4) == 0 {
						pool.Release(held[len(held)-1])
						held = held[:len(held)-1]
					}
				}
			}(g)
		}
		runEquivalenceSeed(t, seed, pool)
		close(stop)
		wg.Wait()
		if pool.Len() != 0 {
			t.Fatalf("seed %d: pool leaks %d paths after concurrent churn + drain", seed, pool.Len())
		}
	}
}

// runEquivalenceSeed runs one random op sequence against both the
// interned tracker (on a table over pool) and the naive reference,
// requiring identical scores, decisions and materialized prefix sets
// throughout; it ends by draining the table and resetting the tracker
// so the caller can assert the pool baseline.
func runEquivalenceSeed(t *testing.T, seed int64, pool *rib.Pool) {
	t.Helper()
	{
		rng := rand.New(rand.NewSource(seed))
		cfg := Default()
		cfg.UseHistory = seed%2 == 0
		cfg.Plausibility = []PlausibilityRule{{Received: 5, MaxPredicted: 30}, {Received: 20, MaxPredicted: 200}}
		cfg.AcceptAlways = 60

		table := rib.NewWithPool(1, pool)
		tr := NewTracker(cfg, table)
		ref := newRefTracker(cfg, newRefTable(1))

		for op := 0; op < 600; op++ {
			p := netaddr.PrefixFor(uint32(2+rng.Intn(8)), rng.Intn(25))
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				path := randomPath(rng)
				tr.ObserveAnnounce(p, path)
				ref.observeAnnounce(p, path)
			case 4, 5, 6, 7:
				tr.ObserveWithdraw(p)
				ref.observeWithdraw(p)
			case 8:
				if tr.Received() != ref.totalW {
					t.Fatalf("seed %d op %d: received %d vs %d", seed, op, tr.Received(), ref.totalW)
				}
				if !sameScores(tr.Scores(), ref.scores()) {
					t.Fatalf("seed %d op %d: scores diverge\n got %+v\nwant %+v",
						seed, op, tr.Scores(), ref.scores())
				}
				got, want := tr.Infer(), ref.infer()
				if !sameLinks(got.Links, want.Links) {
					t.Fatalf("seed %d op %d: links %v vs %v", seed, op, got.Links, want.Links)
				}
				if math.Abs(got.FS-want.FS) > 1e-12 || got.Predicted != want.Predicted ||
					got.Received != want.Received || got.Accepted != want.Accepted {
					t.Fatalf("seed %d op %d: result %+v vs %+v", seed, op, got, want)
				}
				if len(got.Links) > 0 {
					gp, wp := tr.PredictedPrefixes(got), refPredicted(ref, want.Links)
					if !samePrefixes(gp, wp) {
						t.Fatalf("seed %d op %d: predicted prefixes %v vs %v", seed, op, gp, wp)
					}
					gw, ww := tr.WithdrawnOn(got.Links), refWithdrawnOn(ref, want.Links)
					if !samePrefixes(gw, ww) {
						t.Fatalf("seed %d op %d: withdrawn-on %v vs %v", seed, op, gw, ww)
					}
				}
			case 9:
				if rng.Intn(4) == 0 {
					tr.Reset()
					ref.reset()
				}
			}
		}

		// Leak check: drain everything, reset the burst; the caller
		// asserts the pool baseline.
		var all []netaddr.Prefix
		table.ForEach(func(p netaddr.Prefix, _ []uint32) { all = append(all, p) })
		for _, p := range all {
			tr.ObserveWithdraw(p)
		}
		tr.Reset()
		if table.Len() != 0 {
			t.Fatalf("seed %d: table not drained", seed)
		}
	}
}

func refPredicted(ref *refTracker, links []topology.Link) []netaddr.Prefix {
	seen := make(map[netaddr.Prefix]struct{})
	for _, l := range links {
		for p := range ref.table.byLink[l] {
			seen[p] = struct{}{}
		}
	}
	out := make([]netaddr.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	netaddr.Sort(out)
	return out
}

func refWithdrawnOn(ref *refTracker, links []topology.Link) []netaddr.Prefix {
	seen := make(map[netaddr.Prefix]struct{})
	for _, l := range links {
		for _, p := range ref.wOn[l] {
			seen[p] = struct{}{}
		}
	}
	out := make([]netaddr.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	netaddr.Sort(out)
	return out
}

// TestTrackerHoldsBurstRefs checks the refcount contract mid-burst:
// withdrawn paths stay pooled (their PathIDs pinned) until Reset.
func TestTrackerHoldsBurstRefs(t *testing.T) {
	pool := rib.NewPool()
	table := rib.NewWithPool(1, pool)
	cfg := Default()
	cfg.UseHistory = false
	tr := NewTracker(cfg, table)
	for i := 0; i < 10; i++ {
		table.Announce(netaddr.PrefixFor(8, i), []uint32{2, 5, 6, 8})
	}
	if pool.Len() != 1 {
		t.Fatalf("pool = %d, want 1", pool.Len())
	}
	for i := 0; i < 10; i++ {
		tr.ObserveWithdraw(netaddr.PrefixFor(8, i))
	}
	// Every route is gone but the burst still references the path.
	if table.Len() != 0 {
		t.Fatal("routes should be withdrawn")
	}
	if pool.Len() != 1 {
		t.Fatalf("pool = %d mid-burst, want 1 (tracker must pin withdrawn paths)", pool.Len())
	}
	if res := tr.Infer(); len(res.Links) == 0 {
		t.Fatal("burst state must still drive inference")
	}
	tr.Reset()
	if pool.Len() != 0 {
		t.Fatalf("pool = %d after Reset, want 0", pool.Len())
	}
}

// TestPathExplorationReWithdrawal covers the withdraw → re-announce →
// withdraw sequence (BGP path exploration): the second withdrawal
// charges the new path, and unions dedup the prefix exactly once.
func TestPathExplorationReWithdrawal(t *testing.T) {
	cfg := Default()
	cfg.UseHistory = false
	table := rib.New(1)
	tr := NewTracker(cfg, table)
	ref := newRefTracker(cfg, newRefTable(1))

	p := netaddr.PrefixFor(8, 0)
	for _, step := range []struct {
		announce bool
		path     []uint32
	}{
		{true, []uint32{2, 5, 6}},
		{false, nil},
		{true, []uint32{3, 6}},
		{false, nil},
		{true, []uint32{2, 5, 6}}, // back on the original path
		{false, nil},
	} {
		if step.announce {
			tr.ObserveAnnounce(p, step.path)
			ref.observeAnnounce(p, step.path)
		} else {
			tr.ObserveWithdraw(p)
			ref.observeWithdraw(p)
		}
	}
	if !sameScores(tr.Scores(), ref.scores()) {
		t.Fatalf("scores diverge:\n got %+v\nwant %+v", tr.Scores(), ref.scores())
	}
	// Multi-link union across both paths' links: p counts once.
	links := []topology.Link{topology.MakeLink(5, 6), topology.MakeLink(3, 6)}
	got, want := tr.setFS(links), ref.setFS(links)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("setFS = %v, want %v", got, want)
	}
	if wd := tr.WithdrawnOn(links); len(wd) != 1 || wd[0] != p {
		t.Fatalf("WithdrawnOn = %v, want [%v] exactly once", wd, p)
	}
}
