package encoding

import (
	"testing"

	"swift/internal/netaddr"
	"swift/internal/rib"
)

// BenchmarkBuild measures compiling the scheme over a 100k-prefix RIB.
func BenchmarkBuild(b *testing.B) {
	table := rib.New(1)
	for g := uint32(0); g < 20; g++ {
		for i := 0; i < 5000; i++ {
			table.Announce(netaddr.PrefixFor(100+g, i), []uint32{2, 500 + g%8, 600 + g%4, 100 + g})
		}
	}
	cfg := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg, table, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleMatch measures the stage-2 match predicate.
func BenchmarkRuleMatch(b *testing.B) {
	r := Rule{Value: 0b0110_0000, Mask: 0b1111_0000, NextHop: 3}
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Matches(Tag(i)) {
			hits++
		}
	}
	_ = hits
}
