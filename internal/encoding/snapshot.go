package encoding

import (
	"fmt"
	"sort"

	"swift/internal/netaddr"
	"swift/internal/topology"
)

// Warm-restart image for a compiled scheme. The dictionaries and the
// tag assignment are serialized verbatim (canonically ordered); the
// bit layout is a pure function of the dictionary sizes and the config,
// so RestoreScheme recomputes it with layout() instead of shipping bit
// positions over the wire.

// LinkValue is one per-depth dictionary entry.
type LinkValue struct {
	Link  topology.Link
	Value uint64
}

// NHValue is one next-hop dictionary entry.
type NHValue struct {
	AS    uint32
	Value uint64
}

// TagAssignment is one prefix's compiled tag.
type TagAssignment struct {
	Prefix netaddr.Prefix
	Tag    Tag
}

// SchemeImage is a compiled scheme in canonical order: per-depth link
// dictionaries ascending by value, next-hops ascending by value, tags
// ascending by prefix.
type SchemeImage struct {
	Cfg       Config
	LocalAS   uint32
	LinkDicts [][]LinkValue
	NHs       []NHValue
	Tags      []TagAssignment
}

// Export captures the scheme.
func (s *Scheme) Export() SchemeImage {
	img := SchemeImage{
		Cfg:       s.cfg,
		LocalAS:   s.localAS,
		LinkDicts: make([][]LinkValue, len(s.linkIDs)),
		NHs:       make([]NHValue, 0, len(s.nhIDs)),
		Tags:      make([]TagAssignment, 0, len(s.tags)),
	}
	for i, dict := range s.linkIDs {
		d := make([]LinkValue, 0, len(dict))
		for l, v := range dict {
			d = append(d, LinkValue{Link: l, Value: v})
		}
		sort.Slice(d, func(a, b int) bool { return d[a].Value < d[b].Value })
		img.LinkDicts[i] = d
	}
	for as, v := range s.nhIDs {
		img.NHs = append(img.NHs, NHValue{AS: as, Value: v})
	}
	sort.Slice(img.NHs, func(a, b int) bool { return img.NHs[a].Value < img.NHs[b].Value })
	for p, t := range s.tags {
		img.Tags = append(img.Tags, TagAssignment{Prefix: p, Tag: t})
	}
	sort.Slice(img.Tags, func(a, b int) bool { return img.Tags[a].Prefix < img.Tags[b].Prefix })
	return img
}

// RestoreScheme compiles a scheme from an image: dictionaries and tags
// load verbatim, the field layout is recomputed from the dictionary
// sizes — the same pure function Build uses, so a restored scheme emits
// bit-identical rules and tags.
func RestoreScheme(img SchemeImage) (*Scheme, error) {
	cfg := img.Cfg
	if cfg.TagBits <= 0 || cfg.TagBits > 64 {
		return nil, fmt.Errorf("encoding: restore: tag width %d out of range", cfg.TagBits)
	}
	if cfg.MaxDepth < 2 {
		return nil, fmt.Errorf("encoding: restore: MaxDepth %d too small", cfg.MaxDepth)
	}
	if len(img.LinkDicts) != cfg.MaxDepth-1 {
		return nil, fmt.Errorf("encoding: restore: %d link dictionaries for MaxDepth %d",
			len(img.LinkDicts), cfg.MaxDepth)
	}
	nhGroups := 1 + (cfg.MaxDepth - 1)
	if cfg.NHBits*nhGroups > cfg.TagBits-cfg.PathBits {
		return nil, fmt.Errorf("encoding: restore: next-hop groups exceed available bits")
	}
	s := &Scheme{
		cfg:     cfg,
		localAS: img.LocalAS,
		nhIDs:   make(map[uint32]uint64, len(img.NHs)),
		nhASes:  make(map[uint64]uint32, len(img.NHs)),
		tags:    make(map[netaddr.Prefix]Tag, len(img.Tags)),
		linkIDs: make([]map[topology.Link]uint64, len(img.LinkDicts)),
	}
	for i, dict := range img.LinkDicts {
		m := make(map[topology.Link]uint64, len(dict))
		for _, lv := range dict {
			// Values are dense 1..len by construction; a value outside
			// that range would overflow the recomputed group width.
			if lv.Value == 0 || lv.Value > uint64(len(dict)) {
				return nil, fmt.Errorf("encoding: restore: depth-%d dictionary value %d out of range [1,%d]",
					i+2, lv.Value, len(dict))
			}
			if _, dup := m[lv.Link]; dup {
				return nil, fmt.Errorf("encoding: restore: duplicate link %v at depth %d", lv.Link, i+2)
			}
			m[lv.Link] = lv.Value
		}
		s.linkIDs[i] = m
	}
	pathBits := 0
	for _, m := range s.linkIDs {
		pathBits += widthFor(len(m))
	}
	if pathBits > cfg.PathBits {
		return nil, fmt.Errorf("encoding: restore: dictionaries need %d path bits, budget %d",
			pathBits, cfg.PathBits)
	}
	maxNH := uint64(1)<<cfg.NHBits - 1
	for _, nv := range img.NHs {
		if nv.Value == 0 || nv.Value > maxNH {
			return nil, fmt.Errorf("encoding: restore: next-hop value %d out of range [1,%d]", nv.Value, maxNH)
		}
		if _, dup := s.nhASes[nv.Value]; dup {
			return nil, fmt.Errorf("encoding: restore: duplicate next-hop value %d", nv.Value)
		}
		if _, dup := s.nhIDs[nv.AS]; dup {
			return nil, fmt.Errorf("encoding: restore: duplicate next-hop AS %d", nv.AS)
		}
		s.nhIDs[nv.AS] = nv.Value
		s.nhASes[nv.Value] = nv.AS
	}
	s.layout()
	for i, ta := range img.Tags {
		if i > 0 && ta.Prefix <= img.Tags[i-1].Prefix {
			return nil, fmt.Errorf("encoding: restore: tags not ascending at %v", ta.Prefix)
		}
		s.tags[ta.Prefix] = ta.Tag
	}
	return s, nil
}
