package encoding

import (
	"testing"

	"swift/internal/netaddr"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/topology"
)

func link(a, b uint32) topology.Link { return topology.MakeLink(a, b) }

// fig1State builds AS 1's RIB and reroute plan at a scale where every
// Fig. 1 link clears the MinPrefixes threshold.
func fig1State(t *testing.T, cfg Config, n int) (*rib.Table, *reroute.Plan, *Scheme) {
	t.Helper()
	primary := rib.New(1)
	alt3 := rib.New(1)
	alt4 := rib.New(1)
	for i := 0; i < n; i++ {
		for _, origin := range []uint32{6, 7, 8} {
			p := netaddr.PrefixFor(origin, i)
			switch origin {
			case 6:
				primary.Announce(p, []uint32{2, 5, 6})
				alt3.Announce(p, []uint32{3, 6})
				alt4.Announce(p, []uint32{4, 5, 6})
			case 7:
				primary.Announce(p, []uint32{2, 5, 6, 7})
				alt3.Announce(p, []uint32{3, 6, 7})
				alt4.Announce(p, []uint32{4, 5, 6, 7})
			case 8:
				primary.Announce(p, []uint32{2, 5, 6, 8})
				alt3.Announce(p, []uint32{3, 6, 8})
				alt4.Announce(p, []uint32{4, 5, 6, 8})
			}
		}
	}
	plan := reroute.Compute(1, primary, map[uint32]*rib.Table{3: alt3, 4: alt4}, nil, 5)
	s, err := Build(cfg, primary, plan)
	if err != nil {
		t.Fatal(err)
	}
	return primary, plan, s
}

func TestBuildValidation(t *testing.T) {
	table := rib.New(1)
	if _, err := Build(Config{TagBits: 0}, table, nil); err == nil {
		t.Error("zero tag width must fail")
	}
	if _, err := Build(Config{TagBits: 48, PathBits: 40, MaxDepth: 5, NHBits: 6}, table, nil); err == nil {
		t.Error("next-hop overflow must fail")
	}
	if _, err := Build(Config{TagBits: 48, PathBits: 18, MaxDepth: 1, NHBits: 6}, table, nil); err == nil {
		t.Error("MaxDepth 1 must fail")
	}
}

func TestTagsDistinguishPaths(t *testing.T) {
	cfg := Default()
	cfg.MinPrefixes = 100
	_, _, s := fig1State(t, cfg, 2000)

	t6, _ := s.TagFor(netaddr.PrefixFor(6, 0))
	t7, _ := s.TagFor(netaddr.PrefixFor(7, 0))
	t8, _ := s.TagFor(netaddr.PrefixFor(8, 0))
	if t7 == t8 {
		t.Error("paths through (6,7) and (6,8) must get distinct tags")
	}
	if t6 == t7 {
		t.Error("3-hop and 4-hop paths must differ")
	}
	// Same path, same tag.
	t7b, _ := s.TagFor(netaddr.PrefixFor(7, 1))
	if t7 != t7b {
		t.Error("identical paths must share a tag")
	}
}

func TestRerouteRuleMatchesAffectedOnly(t *testing.T) {
	cfg := Default()
	cfg.MinPrefixes = 100
	_, _, s := fig1State(t, cfg, 2000)

	rules := s.RerouteRules([]topology.Link{link(5, 6)})
	if len(rules) == 0 {
		t.Fatal("no rules for encoded link (5,6)")
	}
	// Every prefix of origins 6, 7, 8 must match some rule (they all
	// cross (5,6)); and the matched backup must be AS 3 for depth-2
	// failures, per Fig. 1.
	match := func(p netaddr.Prefix) (uint32, bool) {
		tag, ok := s.TagFor(p)
		if !ok {
			return 0, false
		}
		for _, r := range rules {
			if r.Matches(tag) {
				return r.NextHop, true
			}
		}
		return 0, false
	}
	for _, origin := range []uint32{6, 7, 8} {
		nh, ok := match(netaddr.PrefixFor(origin, 0))
		if !ok {
			t.Errorf("origin %d: no reroute rule matched", origin)
			continue
		}
		if nh != 3 {
			t.Errorf("origin %d rerouted to %d, want 3", origin, nh)
		}
	}
}

func TestReroutableCoverage(t *testing.T) {
	cfg := Default()
	cfg.MinPrefixes = 100
	table, _, s := fig1State(t, cfg, 2000)
	links := []topology.Link{link(5, 6)}
	n := 0
	for _, origin := range []uint32{6, 7, 8} {
		for i := 0; i < 2000; i++ {
			if s.Reroutable(netaddr.PrefixFor(origin, i), links, table) {
				n++
			}
		}
	}
	if n != 6000 {
		t.Errorf("reroutable = %d / 6000", n)
	}
	// A link nobody crosses yields nothing.
	for _, origin := range []uint32{6, 7, 8} {
		if s.Reroutable(netaddr.PrefixFor(origin, 0), []topology.Link{link(40, 41)}, table) {
			t.Error("unrelated link must not match")
		}
	}
}

func TestPrimaryRule(t *testing.T) {
	cfg := Default()
	cfg.MinPrefixes = 100
	_, _, s := fig1State(t, cfg, 2000)
	r, ok := s.PrimaryRule(2)
	if !ok {
		t.Fatal("primary next-hop 2 must be in the dictionary")
	}
	tag, _ := s.TagFor(netaddr.PrefixFor(7, 0))
	if !r.Matches(tag) {
		t.Error("primary rule must match prefixes routed via 2")
	}
	if _, ok := s.PrimaryRule(77); ok {
		t.Error("unknown next-hop must not produce a rule")
	}
}

func TestMinPrefixesThreshold(t *testing.T) {
	// With the paper's 1,500 threshold and only 1,000 prefixes per
	// link, nothing is encoded.
	cfg := Default()
	_, _, s := fig1State(t, cfg, 1000)
	st := s.Stats()
	// Origin 6's 1000 + origin 7's 1000 + origin 8's 1000 cross (5,6)
	// at depth 3... all 3000 >= 1500, so (5,6) at depth 3 qualifies,
	// while (6,7)/(6,8) at depth 4 (1000 each) do not.
	if s.LinkEncoded(link(6, 7), 4) || s.LinkEncoded(link(6, 8), 4) {
		t.Error("links under the threshold must not be encoded")
	}
	if !s.LinkEncoded(link(5, 6), 3) {
		t.Error("the 3000-prefix link must be encoded")
	}
	if st.EncodedLinks == 0 {
		t.Error("expected at least one encoded link")
	}
}

func TestBitBudgetRespected(t *testing.T) {
	// Many distinct links at one depth must stop at the PathBits budget.
	table := rib.New(1)
	idx := 0
	for as := uint32(100); as < 400; as++ {
		for i := 0; i < 20; i++ {
			table.Announce(netaddr.PrefixFor(as%64+200, idx%1000), []uint32{2, as, as + 1000})
			idx++
		}
	}
	cfg := Default()
	cfg.MinPrefixes = 1
	s, err := Build(cfg, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	if used := s.PathBitsUsed(); used > cfg.PathBits {
		t.Errorf("path bits used = %d > budget %d", used, cfg.PathBits)
	}
}

func TestRuleCountPerLink(t *testing.T) {
	// §6.5: one rule per (link, backup next-hop). With 2 alternates in
	// the dictionary plus the primary, rules for one link stay small.
	cfg := Default()
	cfg.MinPrefixes = 100
	_, _, s := fig1State(t, cfg, 2000)
	rules := s.RerouteRules([]topology.Link{link(5, 6)})
	// (5,6) appears at depths 2 (origin 6: 2-5-6) wait — depth 2 is
	// link index 2 on (1,2),(2,5),(5,6): depth 3. One encoded depth ×
	// ≤3 dictionary next-hops.
	if len(rules) > 6 {
		t.Errorf("rule count = %d, want few (one per backup NH per depth)", len(rules))
	}
}

func TestGroupPacking(t *testing.T) {
	g := group{shift: 10, width: 3}
	for v := uint64(0); v < 8; v++ {
		tag := g.place(v)
		if got := g.extract(tag); got != v {
			t.Errorf("extract(place(%d)) = %d", v, got)
		}
	}
	if g.mask() != Tag(0x7<<10) {
		t.Errorf("mask = %x", g.mask())
	}
	zero := group{}
	if zero.extract(Tag(0xffff)) != 0 {
		t.Error("zero-width group must extract 0")
	}
}

func TestWidthFor(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {63, 6},
	} {
		if got := widthFor(c.n); got != c.want {
			t.Errorf("widthFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	cfg := Default()
	cfg.MinPrefixes = 100
	_, _, s := fig1State(t, cfg, 2000)
	st := s.Stats()
	if st.TaggedPrefixes != 6000 {
		t.Errorf("tagged = %d", st.TaggedPrefixes)
	}
	if st.NextHops < 2 {
		t.Errorf("next hops = %d", st.NextHops)
	}
	if st.PathBitsUsed <= 0 || st.PathBitsUsed > cfg.PathBits {
		t.Errorf("path bits = %d", st.PathBitsUsed)
	}
}
