// Package encoding implements the SWIFT data-plane encoding scheme of
// §5. It compresses, into a fixed tag (48 bits when carried in a
// destination MAC), (1) the AS links a packet will traverse, one
// adaptive-width bit group per path position, and (2) the primary
// next-hop plus one backup next-hop per protected link depth. A single
// ternary match on the tag then reroutes every prefix affected by an
// inferred link failure, independently of how many prefixes there are.
//
// Space comes from the paper's two observations: links carrying fewer
// than ~1,500 prefixes never produce bursts worth fast-rerouting and are
// left unencoded, and the paths a single router uses exhibit few
// distinct links per position, so per-position dictionaries stay small.
package encoding

import (
	"fmt"
	"math/bits"
	"sort"

	"swift/internal/netaddr"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/topology"
)

// Config sizes the tag.
type Config struct {
	// TagBits is the total tag width (48 for a destination MAC).
	TagBits int
	// PathBits is the budget for Part 1, the AS-link groups (§6.4 shows
	// 18 bits reroute >98% of predicted prefixes).
	PathBits int
	// MaxDepth is the deepest encoded link position. Depth 1 is the
	// local link (identified by the primary next-hop group), so Part 1
	// holds groups for depths 2..MaxDepth.
	MaxDepth int
	// MinPrefixes is the per-link encoding threshold (1,500): links
	// carrying fewer prefixes are not worth a dictionary slot.
	MinPrefixes int
	// NHBits is the width of each next-hop group (6 bits = 64
	// next-hops, as in §5's partitioning discussion).
	NHBits int
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		TagBits:     48,
		PathBits:    18,
		MaxDepth:    5,
		MinPrefixes: 1500,
		NHBits:      6,
	}
}

// Tag is a packed SWIFT tag. Bit 0 is the least significant bit of the
// last (deepest backup) group; groups are laid out most-significant
// first: [depth-2 links][depth-3]...[depth-MaxDepth] [primary NH]
// [backup depth-1]...[backup depth-MaxDepth].
type Tag uint64

// Rule is a ternary match over tags: a packet tag matches when
// tag & Mask == Value.
type Rule struct {
	Value Tag
	Mask  Tag
	// NextHop is the AS to forward matching packets to.
	NextHop uint32
	// Priority orders rules (higher wins); reroute rules outrank the
	// primary rules.
	Priority int
}

// Matches reports whether t satisfies r.
func (r Rule) Matches(t Tag) bool { return t&r.Mask == r.Value }

// group describes one bit field inside the tag.
type group struct {
	shift uint // bits to the right of the field
	width uint
}

func (g group) extract(t Tag) uint64 {
	if g.width == 0 {
		return 0
	}
	return (uint64(t) >> g.shift) & (1<<g.width - 1)
}

func (g group) place(v uint64) Tag { return Tag(v << g.shift) }

func (g group) mask() Tag { return Tag((uint64(1)<<g.width - 1) << g.shift) }

// Scheme is a compiled encoding: dictionaries per link depth, the
// next-hop dictionary, and the field layout. Build one from a RIB
// snapshot and a reroute plan; rebuild when BGP has reconverged.
type Scheme struct {
	cfg Config
	// linkIDs[d] maps the link at depth d+2 to its dictionary value
	// (values start at 1; 0 means "not encoded").
	linkIDs []map[topology.Link]uint64
	// linkGroups[d] is the bit field of depth d+2.
	linkGroups []group
	// nhIDs maps next-hop AS -> value (1-based).
	nhIDs map[uint32]uint64
	// nhASes inverts nhIDs.
	nhASes map[uint64]uint32
	// primary and backups[d] (depth d+1) are next-hop fields.
	primary group
	backups []group
	// tags holds the per-prefix tag assignment.
	tags map[netaddr.Prefix]Tag
	// localAS identifies the router, needed to recognize local links.
	localAS uint32
}

// Build compiles a scheme from the primary RIB and the backup plan.
func Build(cfg Config, table *rib.Table, plan *reroute.Plan) (*Scheme, error) {
	if cfg.TagBits <= 0 || cfg.TagBits > 64 {
		return nil, fmt.Errorf("encoding: tag width %d out of range", cfg.TagBits)
	}
	if cfg.MaxDepth < 2 {
		return nil, fmt.Errorf("encoding: MaxDepth %d too small", cfg.MaxDepth)
	}
	// Primary + one backup group per protected depth. Links are encoded
	// up to MaxDepth, but the deepest position is match-only: backups
	// cover depths 1..MaxDepth-1, which is exactly the paper's 48-bit
	// partition (18 path bits + 5 groups x 6 bits = 48).
	nhGroups := 1 + (cfg.MaxDepth - 1)
	nhSpace := cfg.TagBits - cfg.PathBits
	if cfg.NHBits*nhGroups > nhSpace {
		return nil, fmt.Errorf("encoding: %d next-hop groups of %d bits exceed %d available bits",
			nhGroups, cfg.NHBits, nhSpace)
	}

	s := &Scheme{
		cfg:     cfg,
		localAS: table.LocalAS(),
		nhIDs:   make(map[uint32]uint64),
		nhASes:  make(map[uint64]uint32),
		tags:    make(map[netaddr.Prefix]Tag, table.Len()),
		linkIDs: make([]map[topology.Link]uint64, cfg.MaxDepth-1),
	}
	for i := range s.linkIDs {
		s.linkIDs[i] = make(map[topology.Link]uint64)
	}

	s.buildNHDict(table, plan)
	s.buildLinkDicts(table)
	s.layout()
	s.assignTags(table, plan)
	return s, nil
}

// buildNHDict collects every next-hop that appears as a primary or
// backup, most used first, keeping at most 2^NHBits-1. Primary use is
// summed per unique path (the next-hop is a property of the path, not
// the prefix).
func (s *Scheme) buildNHDict(table *rib.Table, plan *reroute.Plan) {
	use := make(map[uint32]int)
	table.ForEachPath(func(path []uint32, prefixes []netaddr.Prefix) {
		if len(path) > 0 {
			use[path[0]] += len(prefixes)
		}
	})
	if plan != nil {
		for nh, n := range plan.Assigned {
			use[nh] += n
		}
	}
	type nhUse struct {
		as uint32
		n  int
	}
	all := make([]nhUse, 0, len(use))
	for as, n := range use {
		all = append(all, nhUse{as, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].as < all[j].as
	})
	max := (1 << s.cfg.NHBits) - 1
	for i, u := range all {
		if i >= max {
			break
		}
		id := uint64(i + 1)
		s.nhIDs[u.as] = id
		s.nhASes[id] = u.as
	}
}

// buildLinkDicts fills the per-depth dictionaries under the PathBits
// budget, admitting links by descending prefix load.
func (s *Scheme) buildLinkDicts(table *rib.Table) {
	type cand struct {
		link  topology.Link
		depth int // 2-based: index into linkIDs is depth-2
		load  int
	}
	// Load per (link, depth) pair: a link may appear at several depths.
	// One pass per unique path, charging its whole prefix group at
	// once: the positional decomposition is a path property.
	loads := make(map[topology.Link][]int) // per link, count at each depth
	var buf []topology.Link
	local := table.LocalAS()
	table.ForEachPath(func(path []uint32, prefixes []netaddr.Prefix) {
		buf = rib.PathLinks(buf[:0], local, path)
		for d := 2; d <= s.cfg.MaxDepth && d <= len(buf); d++ {
			l := buf[d-1]
			arr := loads[l]
			if arr == nil {
				arr = make([]int, s.cfg.MaxDepth-1)
				loads[l] = arr
			}
			arr[d-2] += len(prefixes)
		}
	})
	var cands []cand
	for l, arr := range loads {
		for di, n := range arr {
			if n >= s.cfg.MinPrefixes {
				cands = append(cands, cand{link: l, depth: di + 2, load: n})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load > cands[j].load
		}
		if cands[i].depth != cands[j].depth {
			return cands[i].depth < cands[j].depth
		}
		if cands[i].link.A != cands[j].link.A {
			return cands[i].link.A < cands[j].link.A
		}
		return cands[i].link.B < cands[j].link.B
	})

	widths := func(counts []int) int {
		total := 0
		for _, c := range counts {
			total += widthFor(c)
		}
		return total
	}
	counts := make([]int, s.cfg.MaxDepth-1)
	for _, c := range cands {
		di := c.depth - 2
		counts[di]++
		if widths(counts) > s.cfg.PathBits {
			counts[di]-- // does not fit; try the next (lighter) candidate
			continue
		}
		s.linkIDs[di][c.link] = uint64(counts[di])
	}
}

// widthFor returns the bits needed for n dictionary entries plus the
// reserved zero value.
func widthFor(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n))
}

// layout assigns bit positions: link groups first (most significant),
// then primary, then backups.
func (s *Scheme) layout() {
	s.linkGroups = make([]group, len(s.linkIDs))
	s.backups = make([]group, s.cfg.MaxDepth-1)

	pos := uint(s.cfg.TagBits)
	for i, dict := range s.linkIDs {
		w := uint(widthFor(len(dict)))
		pos -= w
		s.linkGroups[i] = group{shift: pos, width: w}
	}
	nhw := uint(s.cfg.NHBits)
	// Next-hop fields start below the path budget to keep the two tag
	// parts independent (rebuilding dictionaries never moves them).
	pos = uint(s.cfg.TagBits - s.cfg.PathBits)
	pos -= nhw
	s.primary = group{shift: pos, width: nhw}
	for d := range s.backups {
		pos -= nhw
		s.backups[d] = group{shift: pos, width: nhw}
	}
}

// assignTags computes every prefix's tag. The path part — link groups
// and primary next-hop — is identical for every prefix sharing a path,
// so it is assembled once per unique path; only the per-depth backup
// groups vary per prefix (the reroute plan is per-prefix).
func (s *Scheme) assignTags(table *rib.Table, plan *reroute.Plan) {
	var buf []topology.Link
	local := table.LocalAS()
	table.ForEachPath(func(path []uint32, prefixes []netaddr.Prefix) {
		var pathPart Tag
		buf = rib.PathLinks(buf[:0], local, path)
		for d := 2; d <= s.cfg.MaxDepth && d <= len(buf); d++ {
			if id, ok := s.linkIDs[d-2][buf[d-1]]; ok {
				pathPart |= s.linkGroups[d-2].place(id)
			}
		}
		if len(path) > 0 {
			if id, ok := s.nhIDs[path[0]]; ok {
				pathPart |= s.primary.place(id)
			}
		}
		for _, p := range prefixes {
			t := pathPart
			if plan != nil {
				// One plan lookup per prefix; the row indexes by depth.
				bs := plan.BackupsOf(p)
				if len(bs) > len(s.backups) {
					bs = bs[:len(s.backups)]
				}
				for d, nh := range bs {
					if nh != 0 {
						if id, ok := s.nhIDs[nh]; ok {
							t |= s.backups[d].place(id)
						}
					}
				}
			}
			s.tags[p] = t
		}
	})
}

// TagFor returns the tag assigned to p.
func (s *Scheme) TagFor(p netaddr.Prefix) (Tag, bool) {
	t, ok := s.tags[p]
	return t, ok
}

// Tags returns the full prefix→tag assignment (the rules for the first
// forwarding-table stage). The map is owned by the scheme.
func (s *Scheme) Tags() map[netaddr.Prefix]Tag { return s.tags }

// NextHopID returns the dictionary value of a next-hop AS.
func (s *Scheme) NextHopID(as uint32) (uint64, bool) {
	id, ok := s.nhIDs[as]
	return id, ok
}

// LinkEncoded reports whether link l has a dictionary slot at depth d.
func (s *Scheme) LinkEncoded(l topology.Link, d int) bool {
	if d < 2 || d > s.cfg.MaxDepth {
		return false
	}
	_, ok := s.linkIDs[d-2][l]
	return ok
}

// PrimaryRule builds the default rule forwarding packets whose primary
// next-hop group equals nh's id. ok is false when nh is not in the
// dictionary.
func (s *Scheme) PrimaryRule(nh uint32) (Rule, bool) {
	id, ok := s.nhIDs[nh]
	if !ok {
		return Rule{}, false
	}
	return Rule{
		Value:    s.primary.place(id),
		Mask:     s.primary.mask(),
		NextHop:  nh,
		Priority: 0,
	}, true
}

// RerouteRules builds the high-priority rules that divert every prefix
// whose path crosses any of the inferred links at any encoded depth,
// matching (link-at-depth, backup-next-hop) pairs as in §3.2's example:
//
//	match(tag: *01** ***1*) >> fwd(3)
//
// One rule is emitted per (link, depth, distinct backup id) triple.
func (s *Scheme) RerouteRules(links []topology.Link) []Rule {
	var rules []Rule
	seen := make(map[Rule]bool)
	for _, l := range links {
		// Depth 1 (the local link) is identified by the primary group.
		// Only depths with a backup group are actionable.
		for d := 1; d <= len(s.backups); d++ {
			var matchVal, matchMask Tag
			if d == 1 {
				// Depth 1 is a LOCAL link (local AS, neighbor): packets
				// crossing it are exactly those whose primary next-hop
				// is the far endpoint, so match the primary group. Links
				// not incident to the local AS have no depth-1 meaning.
				if !l.Has(s.localAS) {
					continue
				}
				nh := l.Other(s.localAS)
				if s.nhIDs[nh] == 0 {
					continue
				}
				matchVal = s.primary.place(s.nhIDs[nh])
				matchMask = s.primary.mask()
			} else {
				id, ok := s.linkIDs[d-2][l]
				if !ok {
					continue
				}
				matchVal = s.linkGroups[d-2].place(id)
				matchMask = s.linkGroups[d-2].mask()
			}
			// One rule per backup id in use at this depth.
			bg := s.backups[d-1]
			for id, as := range s.nhASes {
				r := Rule{
					Value:    matchVal | bg.place(id),
					Mask:     matchMask | bg.mask(),
					NextHop:  as,
					Priority: 10,
				}
				if !seen[r] {
					seen[r] = true
					rules = append(rules, r)
				}
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Value != rules[j].Value {
			return rules[i].Value < rules[j].Value
		}
		return rules[i].Mask < rules[j].Mask
	})
	return rules
}

// Reroutable reports whether prefix p would be matched by the reroute
// rules for the given links — i.e., whether its path crosses one of
// them at an encoded depth AND a backup next-hop is encoded for that
// depth. This is the per-prefix predicate behind Fig. 7's encoding
// performance.
func (s *Scheme) Reroutable(p netaddr.Prefix, links []topology.Link, table *rib.Table) bool {
	path := table.Path(p)
	if path == nil {
		return false
	}
	var buf [16]topology.Link
	pls := rib.PathLinks(buf[:0], table.LocalAS(), path)
	t := s.tags[p]
	for d := 1; d <= len(pls) && d <= len(s.backups); d++ {
		hit := false
		for _, l := range links {
			if pls[d-1] == l {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if d == 1 {
			// Local link: always identified via the primary group.
			if s.backups[0].extract(t) != 0 && s.primary.extract(t) != 0 {
				return true
			}
			continue
		}
		if s.LinkEncoded(pls[d-1], d) && s.backups[d-1].extract(t) != 0 {
			return true
		}
	}
	return false
}

// PathBitsUsed reports how many Part-1 bits the dictionaries consumed.
func (s *Scheme) PathBitsUsed() int {
	total := 0
	for _, g := range s.linkGroups {
		total += int(g.width)
	}
	return total
}

// Stats summarizes a scheme.
type Stats struct {
	EncodedLinks   int
	PathBitsUsed   int
	NextHops       int
	TaggedPrefixes int
}

// Stats returns summary counters.
func (s *Scheme) Stats() Stats {
	n := 0
	for _, d := range s.linkIDs {
		n += len(d)
	}
	return Stats{
		EncodedLinks:   n,
		PathBitsUsed:   s.PathBitsUsed(),
		NextHops:       len(s.nhIDs),
		TaggedPrefixes: len(s.tags),
	}
}
