package encoding

import (
	"math/rand"
	"testing"

	"swift/internal/netaddr"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/topology"
)

// TestReroutableMatchesRules verifies the core encoding invariant: a
// prefix reported Reroutable for a link set is matched by at least one
// of RerouteRules' rules (and diverted to a non-primary next-hop),
// while prefixes with no relation to the links match none. Checked over
// randomized topologies.
func TestReroutableMatchesRules(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		// Random 3-4 hop paths over a small AS pool, heavy enough to
		// clear a low encoding threshold.
		table := rib.New(1)
		alt := rib.New(1)
		pool := []uint32{10, 11, 12, 20, 21, 30, 31}
		type group struct {
			path   []uint32
			origin uint32
		}
		var groups []group
		for g := 0; g < 5; g++ {
			hops := 2 + rng.Intn(3)
			path := []uint32{pool[rng.Intn(2)]} // first hop 10 or 11
			for len(path) < hops {
				next := pool[rng.Intn(len(pool))]
				if next != path[len(path)-1] {
					path = append(path, next)
				}
			}
			origin := uint32(100 + g)
			path = append(path, origin)
			groups = append(groups, group{path: path, origin: origin})
			for i := 0; i < 300; i++ {
				p := netaddr.PrefixFor(origin, i)
				table.Announce(p, path)
				alt.Announce(p, []uint32{99, origin}) // endpoint-free backup
			}
		}
		plan := reroute.Compute(1, table, map[uint32]*rib.Table{99: alt}, nil, 5)
		cfg := Default()
		cfg.MinPrefixes = 100
		s, err := Build(cfg, table, plan)
		if err != nil {
			t.Fatal(err)
		}

		// Pick a random link from a random group's path as "failed".
		g := groups[rng.Intn(len(groups))]
		hop := rng.Intn(len(g.path))
		var failed topology.Link
		if hop == 0 {
			failed = topology.MakeLink(1, g.path[0])
		} else {
			failed = topology.MakeLink(g.path[hop-1], g.path[hop])
		}
		links := []topology.Link{failed}
		rules := s.RerouteRules(links)

		for _, grp := range groups {
			p := netaddr.PrefixFor(grp.origin, 0)
			tag, ok := s.TagFor(p)
			if !ok {
				t.Fatalf("trial %d: no tag for %v", trial, p)
			}
			matched := false
			var matchedNH uint32
			for _, r := range rules {
				if r.Matches(tag) {
					matched = true
					matchedNH = r.NextHop
					break
				}
			}
			if s.Reroutable(p, links, table) {
				if !matched {
					t.Fatalf("trial %d: %v reroutable for %v but no rule matches tag %b",
						trial, p, failed, tag)
				}
				if matchedNH == grp.path[0] {
					t.Fatalf("trial %d: reroute rule sends %v back to its primary %d",
						trial, p, matchedNH)
				}
			}
			// A prefix whose path never crosses the link must never be
			// caught by the rules (tags are exact per position).
			crosses := false
			prev := uint32(1)
			for _, as := range grp.path {
				if topology.MakeLink(prev, as) == failed {
					crosses = true
				}
				prev = as
			}
			if !crosses && matched {
				t.Fatalf("trial %d: %v (path %v) caught by rules for unrelated %v",
					trial, p, grp.path, failed)
			}
		}
	}
}

// TestTagStability verifies that rebuilding a scheme over the same RIB
// yields identical tags (determinism the FIB provisioning relies on).
func TestTagStability(t *testing.T) {
	table := rib.New(1)
	for g := uint32(0); g < 8; g++ {
		for i := 0; i < 300; i++ {
			table.Announce(netaddr.PrefixFor(100+g, i), []uint32{2, 50 + g, 100 + g})
		}
	}
	cfg := Default()
	cfg.MinPrefixes = 100
	a, err := Build(cfg, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p, ta := range a.Tags() {
		if tb, ok := b.TagFor(p); !ok || tb != ta {
			t.Fatalf("tag for %v differs across rebuilds: %b vs %b", p, ta, tb)
		}
	}
}
