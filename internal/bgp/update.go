package bgp

import (
	"encoding/binary"
	"fmt"

	"swift/internal/netaddr"
)

// Path attribute type codes (RFC 4271 §5, RFC 1997).
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunities     = 8
)

// ORIGIN values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	ASSet      = 1
	ASSequence = 2
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Attrs carries the decoded path attributes of an UPDATE. Only the
// attributes the SWIFT pipeline consumes are modeled as fields; unknown
// transitive attributes are preserved opaquely so a speaker can re-export
// routes without losing them.
type Attrs struct {
	Origin       uint8
	ASPath       []uint32 // flattened AS_SEQUENCE, first hop first
	HasNextHop   bool
	NextHop      uint32
	HasMED       bool
	MED          uint32
	HasLocalPref bool
	LocalPref    uint32
	Communities  []uint32
	Unknown      []RawAttr
}

// RawAttr is an attribute this package does not interpret.
type RawAttr struct {
	Flags uint8
	Type  uint8
	Value []byte
}

// Update is the BGP UPDATE message (RFC 4271 §4.3). Withdrawn and NLRI
// prefixes use the compact netaddr.Prefix representation.
type Update struct {
	Withdrawn []netaddr.Prefix
	Attrs     Attrs
	NLRI      []netaddr.Prefix
}

// MsgType implements Message.
func (*Update) MsgType() uint8 { return TypeUpdate }

// IsWithdrawalOnly reports whether the update only withdraws routes.
func (u *Update) IsWithdrawalOnly() bool {
	return len(u.NLRI) == 0 && len(u.Withdrawn) > 0
}

func appendPrefix(dst []byte, p netaddr.Prefix) []byte {
	l := p.Len()
	dst = append(dst, byte(l))
	a := p.Addr()
	for nbytes := (l + 7) / 8; nbytes > 0; nbytes-- {
		dst = append(dst, byte(a>>24))
		a <<= 8
	}
	return dst
}

func parsePrefix(b []byte) (netaddr.Prefix, int, error) {
	if len(b) < 1 {
		return netaddr.Invalid, 0, ErrShortMessage
	}
	l := int(b[0])
	if l > 32 {
		return netaddr.Invalid, 0, fmt.Errorf("bgp: prefix length %d", l)
	}
	nbytes := (l + 7) / 8
	if len(b) < 1+nbytes {
		return netaddr.Invalid, 0, ErrShortMessage
	}
	var a uint32
	for i := 0; i < nbytes; i++ {
		a |= uint32(b[1+i]) << (24 - 8*uint(i))
	}
	return netaddr.MakePrefix(a, l), 1 + nbytes, nil
}

// appendAttrs encodes the path attributes. AS numbers are always encoded
// as 4 octets: every session in this repository negotiates RFC 6793.
func appendAttrs(dst []byte, a *Attrs) ([]byte, error) {
	put := func(flags, typ uint8, val []byte) error {
		if len(val) > 0xffff {
			return fmt.Errorf("%w: attribute %d too long", ErrBadAttr, typ)
		}
		// A preserved unknown attribute may carry the extended-length
		// flag even for a short value; the length field's width must
		// match the flag bit or decoders misparse the block.
		if len(val) > 255 || flags&flagExtLen != 0 {
			flags |= flagExtLen
			dst = append(dst, flags, typ, byte(len(val)>>8), byte(len(val)))
		} else {
			dst = append(dst, flags, typ, byte(len(val)))
		}
		dst = append(dst, val...)
		return nil
	}

	if err := put(flagTransitive, AttrOrigin, []byte{a.Origin}); err != nil {
		return nil, err
	}

	var pathVal []byte
	if len(a.ASPath) > 0 {
		if len(a.ASPath) > 255 {
			return nil, fmt.Errorf("%w: AS path longer than 255", ErrBadAttr)
		}
		pathVal = make([]byte, 2+4*len(a.ASPath))
		pathVal[0] = ASSequence
		pathVal[1] = byte(len(a.ASPath))
		for i, as := range a.ASPath {
			binary.BigEndian.PutUint32(pathVal[2+4*i:], as)
		}
	}
	if err := put(flagTransitive, AttrASPath, pathVal); err != nil {
		return nil, err
	}

	if a.HasNextHop {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.NextHop)
		if err := put(flagTransitive, AttrNextHop, v[:]); err != nil {
			return nil, err
		}
	}
	if a.HasMED {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.MED)
		if err := put(flagOptional, AttrMED, v[:]); err != nil {
			return nil, err
		}
	}
	if a.HasLocalPref {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.LocalPref)
		if err := put(flagTransitive, AttrLocalPref, v[:]); err != nil {
			return nil, err
		}
	}
	if len(a.Communities) > 0 {
		v := make([]byte, 4*len(a.Communities))
		for i, c := range a.Communities {
			binary.BigEndian.PutUint32(v[4*i:], c)
		}
		if err := put(flagOptional|flagTransitive, AttrCommunities, v); err != nil {
			return nil, err
		}
	}
	for _, raw := range a.Unknown {
		if err := put(raw.Flags, raw.Type, raw.Value); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// AppendWire implements Message.
func (u *Update) AppendWire(dst []byte) ([]byte, error) {
	var wd []byte
	for _, p := range u.Withdrawn {
		wd = appendPrefix(wd, p)
	}
	var attrs []byte
	if len(u.NLRI) > 0 {
		var err error
		attrs, err = appendAttrs(nil, &u.Attrs)
		if err != nil {
			return nil, err
		}
	}
	var nlri []byte
	for _, p := range u.NLRI {
		nlri = appendPrefix(nlri, p)
	}

	total := HeaderLen + 2 + len(wd) + 2 + len(attrs) + len(nlri)
	if total > MaxMsgLen {
		return nil, fmt.Errorf("%w: update of %d bytes", ErrBadLength, total)
	}
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	marshalHeader(b, total, TypeUpdate)
	b = b[HeaderLen:]
	binary.BigEndian.PutUint16(b[0:2], uint16(len(wd)))
	copy(b[2:], wd)
	p := 2 + len(wd)
	binary.BigEndian.PutUint16(b[p:p+2], uint16(len(attrs)))
	copy(b[p+2:], attrs)
	copy(b[p+2+len(attrs):], nlri)
	return dst, nil
}

// Decode parses an UPDATE body, allocating fresh slices.
func (u *Update) Decode(body []byte) error {
	var d UpdateDecoder
	if err := d.Decode(body); err != nil {
		return err
	}
	u.Withdrawn = append([]netaddr.Prefix(nil), d.Withdrawn...)
	u.NLRI = append([]netaddr.Prefix(nil), d.NLRI...)
	u.Attrs = d.Attrs
	u.Attrs.ASPath = append([]uint32(nil), d.Attrs.ASPath...)
	u.Attrs.Communities = append([]uint32(nil), d.Attrs.Communities...)
	return nil
}

// UpdateDecoder decodes UPDATE bodies into reusable storage. Successive
// calls to Decode overwrite the previous contents (gopacket's
// DecodingLayerParser pattern): the caller must copy anything it wants to
// keep across calls. The zero value is ready to use.
type UpdateDecoder struct {
	Withdrawn []netaddr.Prefix
	Attrs     Attrs
	NLRI      []netaddr.Prefix
}

// Decode parses body. Slices inside the decoder alias its internal
// buffers, not body, except Unknown attribute values which alias body.
func (d *UpdateDecoder) Decode(body []byte) error {
	d.Withdrawn = d.Withdrawn[:0]
	d.NLRI = d.NLRI[:0]
	d.Attrs = Attrs{
		ASPath:      d.Attrs.ASPath[:0],
		Communities: d.Attrs.Communities[:0],
	}

	if len(body) < 4 {
		return ErrShortMessage
	}
	wdLen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+wdLen+2 {
		return ErrShortMessage
	}
	wd := body[2 : 2+wdLen]
	for len(wd) > 0 {
		p, n, err := parsePrefix(wd)
		if err != nil {
			return err
		}
		d.Withdrawn = append(d.Withdrawn, p)
		wd = wd[n:]
	}

	attrStart := 2 + wdLen + 2
	attrLen := int(binary.BigEndian.Uint16(body[2+wdLen : attrStart]))
	if len(body) < attrStart+attrLen {
		return ErrShortMessage
	}
	if err := d.decodeAttrs(body[attrStart : attrStart+attrLen]); err != nil {
		return err
	}

	nlri := body[attrStart+attrLen:]
	for len(nlri) > 0 {
		p, n, err := parsePrefix(nlri)
		if err != nil {
			return err
		}
		d.NLRI = append(d.NLRI, p)
		nlri = nlri[n:]
	}
	if len(d.NLRI) > 0 && len(d.Attrs.ASPath) == 0 && !d.Attrs.HasNextHop {
		return fmt.Errorf("%w: NLRI without mandatory attributes", ErrBadAttr)
	}
	return nil
}

func (d *UpdateDecoder) decodeAttrs(b []byte) error {
	for len(b) > 0 {
		if len(b) < 3 {
			return ErrShortMessage
		}
		flags, typ := b[0], b[1]
		var vlen, hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return ErrShortMessage
			}
			vlen, hdr = int(binary.BigEndian.Uint16(b[2:4])), 4
		} else {
			vlen, hdr = int(b[2]), 3
		}
		if len(b) < hdr+vlen {
			return ErrShortMessage
		}
		val := b[hdr : hdr+vlen]
		switch typ {
		case AttrOrigin:
			if vlen != 1 {
				return fmt.Errorf("%w: ORIGIN length %d", ErrBadAttr, vlen)
			}
			d.Attrs.Origin = val[0]
		case AttrASPath:
			if err := d.decodeASPath(val); err != nil {
				return err
			}
		case AttrNextHop:
			if vlen != 4 {
				return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttr, vlen)
			}
			d.Attrs.HasNextHop = true
			d.Attrs.NextHop = binary.BigEndian.Uint32(val)
		case AttrMED:
			if vlen != 4 {
				return fmt.Errorf("%w: MED length %d", ErrBadAttr, vlen)
			}
			d.Attrs.HasMED = true
			d.Attrs.MED = binary.BigEndian.Uint32(val)
		case AttrLocalPref:
			if vlen != 4 {
				return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadAttr, vlen)
			}
			d.Attrs.HasLocalPref = true
			d.Attrs.LocalPref = binary.BigEndian.Uint32(val)
		case AttrCommunities:
			if vlen%4 != 0 {
				return fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttr, vlen)
			}
			for i := 0; i < vlen; i += 4 {
				d.Attrs.Communities = append(d.Attrs.Communities, binary.BigEndian.Uint32(val[i:]))
			}
		case AttrAtomicAggregate, AttrAggregator:
			// Accepted and ignored: they do not influence SWIFT.
		default:
			d.Attrs.Unknown = append(d.Attrs.Unknown, RawAttr{Flags: flags, Type: typ, Value: val})
		}
		b = b[hdr+vlen:]
	}
	return nil
}

// decodeASPath flattens AS_SEQUENCE segments into Attrs.ASPath. AS_SET
// members are appended too (order inside a set is not meaningful, but
// SWIFT link extraction only needs adjacency through the sequence, and
// sets terminate the usable part of a path — we mark that by stopping).
// AS numbers are 4 octets, per the sessions this repository establishes.
func (d *UpdateDecoder) decodeASPath(b []byte) error {
	for len(b) > 0 {
		if len(b) < 2 {
			return ErrShortMessage
		}
		segType, n := b[0], int(b[1])
		if segType != ASSet && segType != ASSequence {
			return fmt.Errorf("%w: AS path segment type %d", ErrBadAttr, segType)
		}
		if len(b) < 2+4*n {
			return ErrShortMessage
		}
		if segType == ASSet {
			// An AS_SET aggregates an unordered tail; links beyond it are
			// unknown, so the path stops here for SWIFT purposes.
			return nil
		}
		for i := 0; i < n; i++ {
			d.Attrs.ASPath = append(d.Attrs.ASPath, binary.BigEndian.Uint32(b[2+4*i:]))
		}
		b = b[2+4*n:]
	}
	return nil
}
