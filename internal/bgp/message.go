// Package bgp implements the BGP-4 wire format (RFC 4271) used by the
// SWIFT reproduction: message framing, OPEN / UPDATE / NOTIFICATION /
// KEEPALIVE encoding and decoding, and the path attributes SWIFT cares
// about (AS_PATH above all — it is the input to both the inference and
// the encoding algorithms).
//
// The decoder follows the gopacket idiom of decoding into caller-owned,
// reusable structures: UpdateDecoder decodes UPDATE messages without
// allocating per message, which matters when replaying million-message
// traces through the SWIFT engine.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message type codes from RFC 4271 §4.1.
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Protocol limits from RFC 4271.
const (
	HeaderLen  = 19
	MaxMsgLen  = 4096
	MarkerLen  = 16
	Version    = 4
	ASTrans    = 23456 // RFC 6793 2-byte placeholder for 4-byte ASNs
	minHoldSec = 3
)

// Wire-format errors. Decoders wrap these with positional context.
var (
	ErrShortMessage = errors.New("bgp: message truncated")
	ErrBadMarker    = errors.New("bgp: bad marker")
	ErrBadLength    = errors.New("bgp: bad message length")
	ErrBadType      = errors.New("bgp: unknown message type")
	ErrBadAttr      = errors.New("bgp: malformed path attribute")
)

// Header is the fixed 19-byte BGP message header.
type Header struct {
	Len  uint16
	Type uint8
}

// marshalHeader writes the all-ones marker, length and type into dst,
// which must have at least HeaderLen bytes.
func marshalHeader(dst []byte, length int, typ uint8) {
	for i := 0; i < MarkerLen; i++ {
		dst[i] = 0xff
	}
	binary.BigEndian.PutUint16(dst[16:18], uint16(length))
	dst[18] = typ
}

// ParseHeader validates and decodes a message header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, ErrShortMessage
	}
	for i := 0; i < MarkerLen; i++ {
		if b[i] != 0xff {
			return Header{}, ErrBadMarker
		}
	}
	h := Header{
		Len:  binary.BigEndian.Uint16(b[16:18]),
		Type: b[18],
	}
	if h.Len < HeaderLen || h.Len > MaxMsgLen {
		return h, fmt.Errorf("%w: %d", ErrBadLength, h.Len)
	}
	if h.Type < TypeOpen || h.Type > TypeKeepalive {
		return h, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	return h, nil
}

// ReadMessage reads one complete BGP message from r, returning its header
// and body (the bytes after the header). The body slice is freshly
// allocated and owned by the caller.
func ReadMessage(r io.Reader) (Header, []byte, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return h, nil, err
	}
	body := make([]byte, int(h.Len)-HeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return h, nil, fmt.Errorf("bgp: reading body: %w", err)
	}
	return h, body, nil
}

// Message is any encodable BGP message.
type Message interface {
	// MsgType returns the RFC 4271 type code.
	MsgType() uint8
	// AppendWire appends the complete wire encoding (header included)
	// to dst and returns the extended slice.
	AppendWire(dst []byte) ([]byte, error)
}

// WriteMessage encodes m and writes it to w.
func WriteMessage(w io.Writer, m Message) error {
	buf, err := m.AppendWire(nil)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Keepalive is the body-less KEEPALIVE message.
type Keepalive struct{}

// MsgType implements Message.
func (Keepalive) MsgType() uint8 { return TypeKeepalive }

// AppendWire implements Message.
func (Keepalive) AppendWire(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	marshalHeader(dst[off:], HeaderLen, TypeKeepalive)
	return dst, nil
}

// DecodeMessage decodes a full message (header+body) into a typed value.
// It allocates; hot paths should use UpdateDecoder directly.
func DecodeMessage(h Header, body []byte) (Message, error) {
	switch h.Type {
	case TypeOpen:
		var o Open
		if err := o.Decode(body); err != nil {
			return nil, err
		}
		return &o, nil
	case TypeUpdate:
		var u Update
		if err := u.Decode(body); err != nil {
			return nil, err
		}
		return &u, nil
	case TypeNotification:
		var n Notification
		if err := n.Decode(body); err != nil {
			return nil, err
		}
		return &n, nil
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, ErrBadLength
		}
		return Keepalive{}, nil
	}
	return nil, ErrBadType
}
