package bgp

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"swift/internal/netaddr"
)

func TestKeepaliveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Keepalive{}); err != nil {
		t.Fatal(err)
	}
	h, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeKeepalive || len(body) != 0 || h.Len != HeaderLen {
		t.Errorf("keepalive header = %+v body %d bytes", h, len(body))
	}
}

func TestHeaderErrors(t *testing.T) {
	good := make([]byte, HeaderLen)
	marshalHeader(good, HeaderLen, TypeKeepalive)

	short := good[:HeaderLen-1]
	if _, err := ParseHeader(short); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short header error = %v", err)
	}

	badMarker := append([]byte(nil), good...)
	badMarker[3] = 0
	if _, err := ParseHeader(badMarker); !errors.Is(err, ErrBadMarker) {
		t.Errorf("bad marker error = %v", err)
	}

	badLen := append([]byte(nil), good...)
	badLen[16], badLen[17] = 0, 5
	if _, err := ParseHeader(badLen); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length error = %v", err)
	}

	badType := append([]byte(nil), good...)
	badType[18] = 9
	if _, err := ParseHeader(badType); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type error = %v", err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	in := &Open{
		AS:       64512,
		HoldTime: 90,
		RouterID: 0x0a000001,
	}
	wire, err := in.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	h, body, err := ReadMessage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeOpen {
		t.Fatalf("type = %d", h.Type)
	}
	var out Open
	if err := out.Decode(body); err != nil {
		t.Fatal(err)
	}
	if out.AS != 64512 || out.HoldTime != 90 || out.RouterID != 0x0a000001 || out.Version != Version {
		t.Errorf("open = %+v", out)
	}
	if as4, ok := out.FourOctetAS(); !ok || as4 != 64512 {
		t.Errorf("four-octet AS = %d, %v", as4, ok)
	}
}

func TestOpenFourOctetASTrans(t *testing.T) {
	in := &Open{AS: 400000, HoldTime: 180, RouterID: 1}
	wire, err := in.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The wire 2-byte field must carry ASTrans.
	if got := uint16(wire[HeaderLen+1])<<8 | uint16(wire[HeaderLen+2]); got != ASTrans {
		t.Errorf("wire AS field = %d, want %d", got, ASTrans)
	}
	var out Open
	if err := out.Decode(wire[HeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if out.AS != 400000 {
		t.Errorf("decoded AS = %d, want 400000", out.AS)
	}
}

func TestOpenHoldTimeValidation(t *testing.T) {
	in := &Open{AS: 1, HoldTime: 2, RouterID: 1}
	if _, err := in.AppendWire(nil); err == nil {
		t.Error("hold time 2 must be rejected")
	}
	in.HoldTime = 0 // zero disables keepalives and is legal
	if _, err := in.AppendWire(nil); err != nil {
		t.Errorf("hold time 0 rejected: %v", err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	in := &Notification{Code: NotifCease, Subcode: 2, Data: []byte{1, 2, 3}}
	wire, err := in.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	var out Notification
	if err := out.Decode(body); err != nil {
		t.Fatal(err)
	}
	if out.Code != NotifCease || out.Subcode != 2 || !bytes.Equal(out.Data, []byte{1, 2, 3}) {
		t.Errorf("notification = %+v", out)
	}
	if out.Error() == "" {
		t.Error("Error() must render")
	}
}

func mustPrefix(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func TestUpdateRoundTrip(t *testing.T) {
	in := &Update{
		Withdrawn: []netaddr.Prefix{mustPrefix("10.1.0.0/16"), mustPrefix("10.2.3.0/24")},
		Attrs: Attrs{
			Origin:       OriginIGP,
			ASPath:       []uint32{65001, 65002, 400000},
			HasNextHop:   true,
			NextHop:      0xc0000201,
			HasMED:       true,
			MED:          50,
			HasLocalPref: true,
			LocalPref:    100,
			Communities:  []uint32{65001<<16 | 666},
		},
		NLRI: []netaddr.Prefix{mustPrefix("192.0.2.0/24"), mustPrefix("198.51.0.0/16")},
	}
	wire, err := in.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	h, body, err := ReadMessage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeUpdate {
		t.Fatalf("type = %d", h.Type)
	}
	var out Update
	if err := out.Decode(body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Withdrawn, in.Withdrawn) {
		t.Errorf("withdrawn = %v", out.Withdrawn)
	}
	if !reflect.DeepEqual(out.NLRI, in.NLRI) {
		t.Errorf("nlri = %v", out.NLRI)
	}
	if !reflect.DeepEqual(out.Attrs.ASPath, in.Attrs.ASPath) {
		t.Errorf("as path = %v", out.Attrs.ASPath)
	}
	if out.Attrs.NextHop != in.Attrs.NextHop || out.Attrs.MED != in.Attrs.MED ||
		out.Attrs.LocalPref != in.Attrs.LocalPref {
		t.Errorf("attrs = %+v", out.Attrs)
	}
	if !reflect.DeepEqual(out.Attrs.Communities, in.Attrs.Communities) {
		t.Errorf("communities = %v", out.Attrs.Communities)
	}
}

func TestUpdateWithdrawalOnly(t *testing.T) {
	in := &Update{Withdrawn: []netaddr.Prefix{mustPrefix("10.0.0.0/8")}}
	wire, err := in.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Update
	if err := out.Decode(wire[HeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if !out.IsWithdrawalOnly() {
		t.Error("IsWithdrawalOnly = false")
	}
	if len(out.NLRI) != 0 {
		t.Errorf("nlri = %v", out.NLRI)
	}
}

func TestUpdateDecoderReuse(t *testing.T) {
	var d UpdateDecoder
	u1 := &Update{Withdrawn: []netaddr.Prefix{mustPrefix("10.0.0.0/8"), mustPrefix("10.1.0.0/16")}}
	w1, _ := u1.AppendWire(nil)
	if err := d.Decode(w1[HeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if len(d.Withdrawn) != 2 {
		t.Fatalf("withdrawn = %v", d.Withdrawn)
	}
	u2 := &Update{
		Attrs: Attrs{ASPath: []uint32{1, 2}, HasNextHop: true, NextHop: 9},
		NLRI:  []netaddr.Prefix{mustPrefix("192.0.2.0/24")},
	}
	w2, _ := u2.AppendWire(nil)
	if err := d.Decode(w2[HeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if len(d.Withdrawn) != 0 || len(d.NLRI) != 1 || len(d.Attrs.ASPath) != 2 {
		t.Errorf("reused decoder state = %+v", d)
	}
}

func TestUpdateNLRIWithoutAttrsRejected(t *testing.T) {
	// Hand-build an UPDATE with NLRI but zero attributes.
	body := []byte{0, 0, 0, 0, 24, 192, 0, 2}
	var d UpdateDecoder
	if err := d.Decode(body); err == nil {
		t.Error("NLRI without mandatory attributes must be rejected")
	}
}

func TestUpdateTruncations(t *testing.T) {
	in := &Update{
		Attrs: Attrs{ASPath: []uint32{1}, HasNextHop: true, NextHop: 1},
		NLRI:  []netaddr.Prefix{mustPrefix("10.0.0.0/8")},
	}
	wire, _ := in.AppendWire(nil)
	body := wire[HeaderLen:]
	for cut := 1; cut < len(body); cut++ {
		var d UpdateDecoder
		// Any truncation must error, never panic.
		_ = d.Decode(body[:cut])
	}
}

func TestASPathSetTerminatesPath(t *testing.T) {
	// AS_SEQUENCE {1,2} then AS_SET {3,4}: flattened path stops at the set.
	val := []byte{
		ASSequence, 2, 0, 0, 0, 1, 0, 0, 0, 2,
		ASSet, 2, 0, 0, 0, 3, 0, 0, 0, 4,
	}
	var d UpdateDecoder
	if err := d.decodeASPath(val); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Attrs.ASPath, []uint32{1, 2}) {
		t.Errorf("path = %v", d.Attrs.ASPath)
	}
}

func TestPrefixWireRoundTripProperty(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		p := netaddr.MakePrefix(addr, int(l%33))
		wire := appendPrefix(nil, p)
		q, n, err := parsePrefix(wire)
		return err == nil && n == len(wire) && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackWithdrawals(t *testing.T) {
	var ps []netaddr.Prefix
	for i := 0; i < 1500; i++ {
		ps = append(ps, netaddr.BlockFor(100, i%250))
	}
	msgs := PackWithdrawals(ps)
	if len(msgs) != 3 {
		t.Fatalf("messages = %d, want 3", len(msgs))
	}
	total := 0
	for _, m := range msgs {
		total += len(m.Withdrawn)
		if !m.IsWithdrawalOnly() {
			t.Error("packed withdrawal has NLRI")
		}
		wire, err := m.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(wire) > MaxMsgLen {
			t.Errorf("message %d bytes exceeds limit", len(wire))
		}
	}
	if total != 1500 {
		t.Errorf("total packed = %d", total)
	}
}

func TestPackAnnouncementsGroupsByAttrs(t *testing.T) {
	a1 := &Attrs{ASPath: []uint32{1, 2}, HasNextHop: true, NextHop: 1}
	a2 := &Attrs{ASPath: []uint32{1, 2}, HasNextHop: true, NextHop: 1, Communities: []uint32{7}}
	p1, p2, p3 := netaddr.BlockFor(1, 0), netaddr.BlockFor(1, 1), netaddr.BlockFor(1, 2)
	msgs := PackAnnouncements(
		[]netaddr.Prefix{p1, p2, p3},
		map[netaddr.Prefix]*Attrs{p1: a1, p2: a2, p3: a1},
	)
	if len(msgs) != 2 {
		t.Fatalf("messages = %d, want 2 (distinct communities defeat packing)", len(msgs))
	}
	if len(msgs[0].NLRI) != 2 || len(msgs[1].NLRI) != 1 {
		t.Errorf("group sizes = %d, %d", len(msgs[0].NLRI), len(msgs[1].NLRI))
	}
}

func TestAttrKeyDistinguishes(t *testing.T) {
	base := Attrs{ASPath: []uint32{1, 2}, HasNextHop: true, NextHop: 5}
	same := base
	if AttrKey(&base) != AttrKey(&same) {
		t.Error("identical attrs must share a key")
	}
	diff := base
	diff.ASPath = []uint32{1, 3}
	if AttrKey(&base) == AttrKey(&diff) {
		t.Error("different AS paths must differ")
	}
	comm := base
	comm.Communities = []uint32{1}
	if AttrKey(&base) == AttrKey(&comm) {
		t.Error("different communities must differ")
	}
}

func TestDecodeMessageDispatch(t *testing.T) {
	for _, m := range []Message{
		Keepalive{},
		&Open{AS: 1, HoldTime: 90, RouterID: 1},
		&Notification{Code: NotifCease},
		&Update{Withdrawn: []netaddr.Prefix{mustPrefix("10.0.0.0/8")}},
	} {
		wire, err := m.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		h, body, err := ReadMessage(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeMessage(h, body)
		if err != nil {
			t.Fatalf("DecodeMessage(%d): %v", h.Type, err)
		}
		if out.MsgType() != m.MsgType() {
			t.Errorf("type = %d, want %d", out.MsgType(), m.MsgType())
		}
	}
}

func BenchmarkUpdateDecode(b *testing.B) {
	var ps []netaddr.Prefix
	for i := 0; i < 300; i++ {
		ps = append(ps, netaddr.BlockFor(42, i%250))
	}
	u := &Update{Withdrawn: ps}
	wire, _ := u.AppendWire(nil)
	body := wire[HeaderLen:]
	var d UpdateDecoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(body); err != nil {
			b.Fatal(err)
		}
	}
}
