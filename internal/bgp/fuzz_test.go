package bgp

import (
	"testing"

	"swift/internal/netaddr"
)

// fuzzAttrSeeds builds valid attribute blocks the fuzzer mutates from.
func fuzzAttrSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := []*Attrs{
		{ASPath: []uint32{65001, 3356, 15169}, HasNextHop: true, NextHop: 0x0a000001},
		{
			Origin: 1, ASPath: []uint32{65550, 2914},
			HasNextHop: true, NextHop: 0xc0a80001,
			HasMED: true, MED: 50, HasLocalPref: true, LocalPref: 200,
			Communities: []uint32{65001<<16 | 666},
			Unknown:     []RawAttr{{Flags: 0xc0, Type: 32, Value: []byte{1, 2, 3, 4}}},
		},
		{},
	}
	var out [][]byte
	for _, a := range seeds {
		wire, err := AppendAttrs(nil, a)
		if err != nil {
			tb.Fatalf("seed encode: %v", err)
		}
		out = append(out, wire)
	}
	return out
}

func attrsEqual(a, b *Attrs) bool {
	if a.Origin != b.Origin || a.HasNextHop != b.HasNextHop || a.NextHop != b.NextHop ||
		a.HasMED != b.HasMED || a.MED != b.MED ||
		a.HasLocalPref != b.HasLocalPref || a.LocalPref != b.LocalPref ||
		len(a.ASPath) != len(b.ASPath) || len(a.Communities) != len(b.Communities) ||
		len(a.Unknown) != len(b.Unknown) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	for i := range a.Unknown {
		u, v := a.Unknown[i], b.Unknown[i]
		if u.Flags != v.Flags || u.Type != v.Type || string(u.Value) != string(v.Value) {
			return false
		}
	}
	return true
}

// FuzzDecodeAttrs drives the path-attribute decoder: no input panics,
// and the allocating and buffer-reusing decoders must agree exactly —
// same error verdict, same decoded attributes (the reuse path is the
// table-dump hot path; a divergence would corrupt interned RIBs).
func FuzzDecodeAttrs(f *testing.F) {
	for _, seed := range fuzzAttrSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{0x40, 2, 4, 2, 1, 0, 1})  // AS_PATH, 2-byte segment arithmetic
	f.Add([]byte{0x80, 4, 4, 0, 0, 0, 99}) // MED
	f.Add([]byte{0xc0, 8, 2, 0, 1})        // truncated communities
	f.Fuzz(func(t *testing.T, data []byte) {
		var fresh Attrs
		errFresh := DecodeAttrs(data, &fresh)

		var reused Attrs
		var dec UpdateDecoder
		errReuse := DecodeAttrsReuse(data, &reused, &dec)

		if (errFresh == nil) != (errReuse == nil) {
			t.Fatalf("decoder disagreement: fresh=%v reuse=%v", errFresh, errReuse)
		}
		if errFresh != nil {
			return
		}
		if !attrsEqual(&fresh, &reused) {
			t.Fatalf("decoded attrs diverge:\nfresh: %+v\nreuse: %+v", fresh, reused)
		}
		// A decoded block must re-encode (or report a clean error) and
		// the re-encoding must decode back to the same attributes.
		wire, err := AppendAttrs(nil, &fresh)
		if err != nil {
			return
		}
		var again Attrs
		if err := DecodeAttrs(wire, &again); err != nil {
			t.Fatalf("re-decode of re-encoded attrs failed: %v", err)
		}
		if !attrsEqual(&fresh, &again) {
			t.Fatalf("re-encode roundtrip diverges:\nfirst: %+v\nagain: %+v", fresh, again)
		}
	})
}

// FuzzDecodeMsg drives the full message decoder with (type, body)
// inputs: no input may panic, and decoded messages must re-encode and
// re-decode cleanly.
func FuzzDecodeMsg(f *testing.F) {
	seedMsgs := []Message{
		Keepalive{},
		&Open{Version: Version, AS: 65001, HoldTime: 90, RouterID: 0x0a000001},
		&Open{Version: Version, AS: 70000, HoldTime: 180, RouterID: 1, Capabilities: []Capability{{Code: 65, Value: []byte{0, 1, 17, 112}}}},
		&Notification{Code: 6, Subcode: 2, Data: []byte("shutdown")},
		&Update{
			Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")},
			Attrs:     Attrs{ASPath: []uint32{65001, 174}, HasNextHop: true, NextHop: 0x0a000001},
			NLRI:      []netaddr.Prefix{netaddr.MustParsePrefix("10.2.0.0/16")},
		},
	}
	for _, m := range seedMsgs {
		wire, err := m.AppendWire(nil)
		if err != nil {
			f.Fatalf("seed encode %T: %v", m, err)
		}
		f.Add(append([]byte{m.MsgType()}, wire[HeaderLen:]...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		h := Header{Type: data[0], Len: uint16(HeaderLen + len(data) - 1)}
		m, err := DecodeMessage(h, data[1:])
		if err != nil {
			return
		}
		wire, err := m.AppendWire(nil)
		if err != nil {
			return
		}
		if _, err := ParseHeader(wire); err != nil {
			t.Fatalf("re-encoded %T has a bad header: %v", m, err)
		}
		if _, err := DecodeMessage(Header{Type: m.MsgType(), Len: uint16(len(wire))}, wire[HeaderLen:]); err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", m, err)
		}
	})
}
