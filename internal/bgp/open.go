package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Capability codes (RFC 5492 registry) supported by this implementation.
const (
	CapMultiprotocol = 1  // RFC 4760
	CapRouteRefresh  = 2  // RFC 2918
	CapFourOctetAS   = 65 // RFC 6793
)

// Capability is a single capability TLV from an OPEN optional parameter.
type Capability struct {
	Code  uint8
	Value []byte
}

// Open is the BGP OPEN message (RFC 4271 §4.2).
type Open struct {
	Version      uint8
	AS           uint32 // full 4-byte ASN; wire carries ASTrans when > 65535
	HoldTime     uint16
	RouterID     uint32
	Capabilities []Capability
}

// MsgType implements Message.
func (*Open) MsgType() uint8 { return TypeOpen }

// FourOctetAS reports whether the peer advertised RFC 6793 support, and
// the ASN it carried there.
func (o *Open) FourOctetAS() (uint32, bool) {
	for _, c := range o.Capabilities {
		if c.Code == CapFourOctetAS && len(c.Value) == 4 {
			return binary.BigEndian.Uint32(c.Value), true
		}
	}
	return 0, false
}

// AppendWire implements Message. A CapFourOctetAS capability carrying the
// full ASN is added automatically when none is present.
func (o *Open) AppendWire(dst []byte) ([]byte, error) {
	if o.HoldTime != 0 && o.HoldTime < minHoldSec {
		return nil, fmt.Errorf("bgp: hold time %d below minimum %d", o.HoldTime, minHoldSec)
	}
	caps := o.Capabilities
	if _, ok := o.FourOctetAS(); !ok {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], o.AS)
		caps = append(append([]Capability(nil), caps...), Capability{Code: CapFourOctetAS, Value: v[:]})
	}

	var capBuf []byte
	for _, c := range caps {
		if len(c.Value) > 255 {
			return nil, fmt.Errorf("bgp: capability %d value too long", c.Code)
		}
		capBuf = append(capBuf, c.Code, byte(len(c.Value)))
		capBuf = append(capBuf, c.Value...)
	}
	// One optional parameter of type 2 (Capabilities) wrapping all TLVs.
	optLen := 0
	if len(capBuf) > 0 {
		optLen = 2 + len(capBuf)
		if optLen > 255 {
			return nil, errors.New("bgp: capabilities exceed optional parameter space")
		}
	}

	wireAS := o.AS
	if wireAS > 0xffff {
		wireAS = ASTrans
	}
	version := o.Version
	if version == 0 {
		version = Version
	}

	total := HeaderLen + 10 + optLen
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	marshalHeader(b, total, TypeOpen)
	b = b[HeaderLen:]
	b[0] = version
	binary.BigEndian.PutUint16(b[1:3], uint16(wireAS))
	binary.BigEndian.PutUint16(b[3:5], o.HoldTime)
	binary.BigEndian.PutUint32(b[5:9], o.RouterID)
	b[9] = byte(optLen)
	if optLen > 0 {
		b[10] = 2 // parameter type: capabilities
		b[11] = byte(len(capBuf))
		copy(b[12:], capBuf)
	}
	return dst, nil
}

// Decode parses an OPEN body. The 4-byte ASN is recovered from the
// capability when the 2-byte field carries ASTrans.
func (o *Open) Decode(body []byte) error {
	if len(body) < 10 {
		return ErrShortMessage
	}
	o.Version = body[0]
	o.AS = uint32(binary.BigEndian.Uint16(body[1:3]))
	o.HoldTime = binary.BigEndian.Uint16(body[3:5])
	o.RouterID = binary.BigEndian.Uint32(body[5:9])
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return fmt.Errorf("%w: optional parameters", ErrBadLength)
	}
	o.Capabilities = nil
	opts := body[10:]
	for len(opts) > 0 {
		if len(opts) < 2 {
			return ErrShortMessage
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return ErrShortMessage
		}
		if ptype == 2 { // capabilities
			caps := opts[2 : 2+plen]
			for len(caps) > 0 {
				if len(caps) < 2 || len(caps) < 2+int(caps[1]) {
					return ErrShortMessage
				}
				clen := int(caps[1])
				o.Capabilities = append(o.Capabilities, Capability{
					Code:  caps[0],
					Value: append([]byte(nil), caps[2:2+clen]...),
				})
				caps = caps[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	if as4, ok := o.FourOctetAS(); ok && o.AS == ASTrans {
		o.AS = as4
	}
	return nil
}

// Notification is the BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// NOTIFICATION error codes (RFC 4271 §6).
const (
	NotifHeaderError = 1
	NotifOpenError   = 2
	NotifUpdateError = 3
	NotifHoldTimer   = 4
	NotifFSMError    = 5
	NotifCease       = 6
)

// MsgType implements Message.
func (*Notification) MsgType() uint8 { return TypeNotification }

// AppendWire implements Message.
func (n *Notification) AppendWire(dst []byte) ([]byte, error) {
	total := HeaderLen + 2 + len(n.Data)
	if total > MaxMsgLen {
		return nil, ErrBadLength
	}
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	marshalHeader(b, total, TypeNotification)
	b[HeaderLen] = n.Code
	b[HeaderLen+1] = n.Subcode
	copy(b[HeaderLen+2:], n.Data)
	return dst, nil
}

// Decode parses a NOTIFICATION body.
func (n *Notification) Decode(body []byte) error {
	if len(body) < 2 {
		return ErrShortMessage
	}
	n.Code = body[0]
	n.Subcode = body[1]
	n.Data = append([]byte(nil), body[2:]...)
	return nil
}

// Error renders the notification as a Go error string so that sessions
// can surface peer-sent errors directly.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", n.Code, n.Subcode)
}
