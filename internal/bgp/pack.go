package bgp

import "swift/internal/netaddr"

// maxPrefixesPerUpdate bounds how many /24s fit in one 4096-byte UPDATE
// alongside a worst-case attribute set. A /24 NLRI entry costs 4 bytes;
// we leave generous headroom for long AS paths and communities.
const maxPrefixesPerUpdate = 600

// PackWithdrawals splits a withdrawal set into as few UPDATE messages as
// the 4096-byte limit allows. Withdrawals carry no attributes, so they
// always pack maximally — this is why real bursts deliver withdrawals
// faster than path updates (§2.1.1).
func PackWithdrawals(prefixes []netaddr.Prefix) []*Update {
	var out []*Update
	for len(prefixes) > 0 {
		n := len(prefixes)
		if n > maxPrefixesPerUpdate {
			n = maxPrefixesPerUpdate
		}
		out = append(out, &Update{Withdrawn: append([]netaddr.Prefix(nil), prefixes[:n]...)})
		prefixes = prefixes[n:]
	}
	return out
}

// AttrKey returns a comparable fingerprint of the attributes that decide
// whether two announcements may share an UPDATE (RFC 4271 packing rule:
// identical attributes only). Distinct communities — widespread in the
// wild (§2.1.1) — therefore defeat packing, which the trace generator
// exploits to model slow announcement streams.
func AttrKey(a *Attrs) string {
	// A compact byte fingerprint; not wire format, just equality.
	buf := make([]byte, 0, 8+4*len(a.ASPath)+4*len(a.Communities))
	buf = append(buf, a.Origin)
	flag := byte(0)
	if a.HasNextHop {
		flag |= 1
	}
	if a.HasMED {
		flag |= 2
	}
	if a.HasLocalPref {
		flag |= 4
	}
	buf = append(buf, flag)
	put32 := func(v uint32) {
		buf = append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	put32(a.NextHop)
	put32(a.MED)
	put32(a.LocalPref)
	put32(uint32(len(a.ASPath)))
	for _, as := range a.ASPath {
		put32(as)
	}
	for _, c := range a.Communities {
		put32(c)
	}
	return string(buf)
}

// PackAnnouncements groups announcements by identical attributes and
// packs each group into minimal UPDATEs. The input maps each prefix to
// its attributes; ordering of the output follows the first appearance of
// each attribute group in keys.
func PackAnnouncements(keys []netaddr.Prefix, attrs map[netaddr.Prefix]*Attrs) []*Update {
	groups := make(map[string][]netaddr.Prefix)
	groupAttrs := make(map[string]*Attrs)
	var order []string
	for _, p := range keys {
		a := attrs[p]
		if a == nil {
			continue
		}
		k := AttrKey(a)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			groupAttrs[k] = a
		}
		groups[k] = append(groups[k], p)
	}
	var out []*Update
	for _, k := range order {
		ps := groups[k]
		for len(ps) > 0 {
			n := len(ps)
			if n > maxPrefixesPerUpdate {
				n = maxPrefixesPerUpdate
			}
			out = append(out, &Update{
				Attrs: *groupAttrs[k],
				NLRI:  append([]netaddr.Prefix(nil), ps[:n]...),
			})
			ps = ps[n:]
		}
	}
	return out
}
