package bgp

// AppendAttrs encodes a bare path-attribute block (no message framing).
// TABLE_DUMP_V2 RIB entries embed attribute blocks in exactly this
// shape, which is why it is exported alongside the UPDATE codec.
func AppendAttrs(dst []byte, a *Attrs) ([]byte, error) {
	return appendAttrs(dst, a)
}

// DecodeAttrs decodes a bare path-attribute block into a, overwriting
// its previous contents. Decoded slices are freshly allocated.
func DecodeAttrs(b []byte, a *Attrs) error {
	var d UpdateDecoder
	if err := d.decodeAttrs(b); err != nil {
		return err
	}
	*a = d.Attrs
	a.ASPath = append([]uint32(nil), d.Attrs.ASPath...)
	a.Communities = append([]uint32(nil), d.Attrs.Communities...)
	return nil
}

// DecodeAttrsReuse is DecodeAttrs recycling a's slice capacity (and
// the caller's scratch decoder): nothing is freshly allocated once the
// buffers are warm, so the decoded slices are only valid until the
// next call with the same a. Use it when the consumer interns or
// copies what it keeps — an interning RIB copies a path on first
// sight only, making a table-dump walk garbage-free per entry.
func DecodeAttrsReuse(b []byte, a *Attrs, d *UpdateDecoder) error {
	d.Attrs = Attrs{
		ASPath:      d.Attrs.ASPath[:0],
		Communities: d.Attrs.Communities[:0],
	}
	if err := d.decodeAttrs(b); err != nil {
		return err
	}
	asPath, communities := a.ASPath, a.Communities
	*a = d.Attrs
	a.ASPath = append(asPath[:0], d.Attrs.ASPath...)
	a.Communities = append(communities[:0], d.Attrs.Communities...)
	return nil
}
