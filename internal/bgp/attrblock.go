package bgp

// AppendAttrs encodes a bare path-attribute block (no message framing).
// TABLE_DUMP_V2 RIB entries embed attribute blocks in exactly this
// shape, which is why it is exported alongside the UPDATE codec.
func AppendAttrs(dst []byte, a *Attrs) ([]byte, error) {
	return appendAttrs(dst, a)
}

// DecodeAttrs decodes a bare path-attribute block into a, overwriting
// its previous contents. Decoded slices are freshly allocated.
func DecodeAttrs(b []byte, a *Attrs) error {
	var d UpdateDecoder
	if err := d.decodeAttrs(b); err != nil {
		return err
	}
	*a = d.Attrs
	a.ASPath = append([]uint32(nil), d.Attrs.ASPath...)
	a.Communities = append([]uint32(nil), d.Attrs.Communities...)
	return nil
}
