package router

import (
	"testing"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/inference"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/topology"
)

func fig1Burst(t *testing.T, scale int, seed int64) (*bgpsim.Network, *bgpsim.Burst) {
	t.Helper()
	net := bgpsim.Fig1Network(scale)
	// Router-convergence experiments model the paper's controlled
	// testbed (Table 1, Fig. 9a), not Internet-tail arrival.
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.TestbedTiming(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net, b
}

func TestRestoreTimesBGPSerial(t *testing.T) {
	_, b := fig1Burst(t, 1000, 1)
	restore := RestoreTimesBGP(b, PerPrefixUpdate)
	if len(restore) != b.Size {
		t.Fatalf("restore entries = %d, want %d", len(restore), b.Size)
	}
	// Restoration can never precede the withdrawal's arrival.
	arrival := make(map[netaddr.Prefix]time.Duration)
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			arrival[ev.Prefix] = ev.At
		}
	}
	for p, r := range restore {
		if r < arrival[p] {
			t.Fatalf("prefix %v restored at %v before arrival %v", p, r, arrival[p])
		}
	}
}

func TestDowntimeScalesWithBurstSize(t *testing.T) {
	// Table 1's shape: downtime grows roughly linearly with burst size.
	_, small := fig1Burst(t, 1000, 2)
	_, large := fig1Burst(t, 10000, 2)
	dSmall := MeasureDowntime(RestoreTimesBGP(small, 0), SampleProbes(small, 100))
	dLarge := MeasureDowntime(RestoreTimesBGP(large, 0), SampleProbes(large, 100))
	if dLarge.Last <= dSmall.Last {
		t.Errorf("downtime must grow with burst size: %v vs %v", dSmall.Last, dLarge.Last)
	}
	ratio := float64(dLarge.Last) / float64(dSmall.Last)
	if ratio < 3 || ratio > 30 {
		t.Errorf("10x burst gave %gx downtime; expected roughly linear growth", ratio)
	}
}

func TestSwiftBeatsBGP(t *testing.T) {
	net, b := fig1Burst(t, 2000, 3)
	// Build a SWIFTED engine and harvest its decisions.
	sols := net.Solve(net.Graph)
	cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = 500
	cfg.Inference.UseHistory = false
	cfg.Encoding.MinPrefixes = 200
	cfg.Burst.StartThreshold = 200
	e := swiftengine.New(cfg)
	for origin := range net.Origins {
		for _, nb := range []uint32{2, 3, 4} {
			r, ok := sols[origin].ExportTo(net.Graph, net.Policy, nb, 1)
			if !ok {
				continue
			}
			for i := 0; i < net.Origins[origin]; i++ {
				p := netaddr.PrefixFor(origin, i)
				if nb == 2 {
					e.LearnPrimary(p, r.Path)
				} else {
					e.LearnAlternate(nb, p, r.Path)
				}
			}
		}
	}
	if err := e.Provision(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			e.ObserveWithdraw(ev.At, ev.Prefix)
		} else {
			e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
		}
	}
	if len(e.Decisions()) == 0 {
		t.Fatal("no decisions")
	}

	probes := SampleProbes(b, 100)
	bgpRestore := RestoreTimesBGP(b, 0)
	swiftRestore := RestoreTimesSwift(b, e.Decisions(), 0)
	dBGP := MeasureDowntime(bgpRestore, probes)
	dSwift := MeasureDowntime(swiftRestore, probes)
	if dSwift.Median >= dBGP.Median {
		t.Errorf("SWIFT median %v must beat BGP median %v", dSwift.Median, dBGP.Median)
	}
	// The paper's headline 98% reduction emerges at the case-study
	// scale (the bench harness checks it); at this 2.2k-burst scale the
	// first inference lands ~a quarter into the burst, so demand a
	// clear but smaller margin.
	if float64(dSwift.Median) > 0.7*float64(dBGP.Median) {
		t.Errorf("SWIFT median %v not <70%% of BGP median %v", dSwift.Median, dBGP.Median)
	}
}

func TestLossSeriesMonotone(t *testing.T) {
	_, b := fig1Burst(t, 1000, 4)
	restore := RestoreTimesBGP(b, 0)
	series := LossSeries(restore, SampleProbes(b, 50), 100*time.Millisecond)
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	if series[0].Loss != 1.0 {
		t.Errorf("loss at t=0 = %v, want 1.0 (all probes dark)", series[0].Loss)
	}
	last := series[len(series)-1]
	if last.Loss != 0 {
		t.Errorf("final loss = %v, want 0", last.Loss)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Loss > series[i-1].Loss {
			t.Fatal("loss must be non-increasing")
		}
	}
}

func TestSampleProbes(t *testing.T) {
	_, b := fig1Burst(t, 1000, 5)
	probes := SampleProbes(b, 100)
	if len(probes) != 100 {
		t.Fatalf("probes = %d", len(probes))
	}
	seen := make(map[netaddr.Prefix]bool)
	for _, p := range probes {
		if seen[p] {
			t.Fatal("duplicate probe")
		}
		seen[p] = true
	}
	// Asking for more probes than withdrawals returns all withdrawals.
	all := SampleProbes(b, 1<<30)
	if len(all) != b.Size {
		t.Errorf("all probes = %d, want %d", len(all), b.Size)
	}
}

func TestMeasureDowntimeEmpty(t *testing.T) {
	if d := MeasureDowntime(nil, nil); d.Last != 0 {
		t.Error("empty restore map must yield zero downtime")
	}
}
