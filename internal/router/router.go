// Package router models data-plane convergence of a BGP router upon a
// remote outage — the measurement harness behind Table 1 and the §7
// case study (Fig. 9a). A vanilla router processes the withdrawal burst
// message by message and rewrites its FIB one prefix at a time; a
// SWIFTED router restores predicted prefixes in bulk at inference time
// with a handful of tag rules. Both models share the same burst, so the
// comparison isolates exactly what the paper measures.
package router

import (
	"sort"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// PerPrefixUpdate is the default modeled FIB write cost per prefix for
// the vanilla router. 375 µs/prefix is Table 1's measured slope
// (109 s / 290k withdrawals on the paper's Cisco Nexus 7018), slightly
// above the 128–282 µs software-router range of [24, 64].
const PerPrefixUpdate = 375 * time.Microsecond

// RestoreTimesBGP computes, for every withdrawn prefix in the burst,
// when a vanilla router restores its connectivity: the withdrawal must
// arrive (burst timing), wait behind earlier messages, and pay a
// per-prefix FIB write to switch to the locally known alternate route.
func RestoreTimesBGP(b *bgpsim.Burst, perUpdate time.Duration) map[netaddr.Prefix]time.Duration {
	if perUpdate <= 0 {
		perUpdate = PerPrefixUpdate
	}
	out := make(map[netaddr.Prefix]time.Duration, b.Size)
	var clock time.Duration
	for _, ev := range b.Events {
		if ev.At > clock {
			clock = ev.At
		}
		clock += perUpdate // every message costs a FIB write
		if ev.Kind == bgpsim.KindWithdraw {
			out[ev.Prefix] = clock
		}
	}
	return out
}

// RestoreTimesSwift computes when a SWIFTED router restores each
// withdrawn prefix: at the first accepted inference that predicted it
// (plus the rule-installation latency), or at the BGP time otherwise.
func RestoreTimesSwift(b *bgpsim.Burst, decisions []swiftengine.Decision, perUpdate time.Duration) map[netaddr.Prefix]time.Duration {
	bgp := RestoreTimesBGP(b, perUpdate)
	// Earliest predicted-restoration time per prefix.
	predicted := make(map[netaddr.Prefix]time.Duration)
	for _, d := range decisions {
		ready := d.At + d.DataplaneTime
		for _, p := range d.Predicted {
			if t, ok := predicted[p]; !ok || ready < t {
				predicted[p] = ready
			}
		}
	}
	out := make(map[netaddr.Prefix]time.Duration, len(bgp))
	for p, t := range bgp {
		if pt, ok := predicted[p]; ok && pt < t {
			out[p] = pt
		} else {
			out[p] = t
		}
	}
	return out
}

// Downtime summarizes a restore-time map against the probe methodology
// of §2.1.2: the time until a given fraction of probed prefixes have
// connectivity again.
type Downtime struct {
	// Last is the restoration time of the final probe (the paper's
	// Table 1 number: time to retrieve connectivity for all probes).
	Last time.Duration
	// Median and P99 describe the distribution.
	Median, P99 time.Duration
}

// MeasureDowntime samples probes (all prefixes when probes is nil).
func MeasureDowntime(restore map[netaddr.Prefix]time.Duration, probes []netaddr.Prefix) Downtime {
	var ts []time.Duration
	if probes == nil {
		for _, t := range restore {
			ts = append(ts, t)
		}
	} else {
		for _, p := range probes {
			if t, ok := restore[p]; ok {
				ts = append(ts, t)
			}
		}
	}
	if len(ts) == 0 {
		return Downtime{}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return Downtime{
		Last:   ts[len(ts)-1],
		Median: ts[len(ts)/2],
		P99:    ts[(len(ts)-1)*99/100],
	}
}

// LossPoint is one sample of the Fig. 9a packet-loss curve.
type LossPoint struct {
	T    time.Duration
	Loss float64 // fraction of probes still blackholed
}

// LossSeries samples the fraction of unrestored probes over time at the
// given step, from the failure instant until full restoration.
func LossSeries(restore map[netaddr.Prefix]time.Duration, probes []netaddr.Prefix, step time.Duration) []LossPoint {
	var ts []time.Duration
	if probes == nil {
		for _, t := range restore {
			ts = append(ts, t)
		}
	} else {
		for _, p := range probes {
			if t, ok := restore[p]; ok {
				ts = append(ts, t)
			}
		}
	}
	if len(ts) == 0 {
		return nil
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	end := ts[len(ts)-1]
	var out []LossPoint
	idx := 0
	for t := time.Duration(0); ; t += step {
		for idx < len(ts) && ts[idx] <= t {
			idx++
		}
		out = append(out, LossPoint{T: t, Loss: float64(len(ts)-idx) / float64(len(ts))})
		if t >= end {
			break
		}
	}
	return out
}

// SampleProbes deterministically picks n probe prefixes among the
// burst's withdrawn prefixes, mimicking §2.1.2's 100 random probe IPs.
func SampleProbes(b *bgpsim.Burst, n int) []netaddr.Prefix {
	var withdrawn []netaddr.Prefix
	seen := make(map[netaddr.Prefix]bool)
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw && !seen[ev.Prefix] {
			seen[ev.Prefix] = true
			withdrawn = append(withdrawn, ev.Prefix)
		}
	}
	if n >= len(withdrawn) {
		return withdrawn
	}
	// Even stride over the (time-ordered) withdrawals: covers head,
	// middle and tail of the burst.
	out := make([]netaddr.Prefix, 0, n)
	stride := len(withdrawn) / n
	for i := 0; i < n; i++ {
		out = append(out, withdrawn[i*stride])
	}
	return out
}
