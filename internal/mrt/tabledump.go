package mrt

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"swift/internal/bgp"
	"swift/internal/netaddr"
)

// PeerEntry is one collector peer in a TABLE_DUMP_V2 PEER_INDEX_TABLE.
type PeerEntry struct {
	ID uint32 // BGP identifier
	IP uint32
	AS uint32
}

// RIBEntry is one (peer, route) pair inside a RIB_IPV4_UNICAST record.
type RIBEntry struct {
	PeerIndex  uint16
	Originated time.Time
	Attrs      bgp.Attrs
}

// RIBRecord is a decoded RIB_IPV4_UNICAST record: every peer's route for
// one prefix.
type RIBRecord struct {
	Sequence uint32
	Prefix   netaddr.Prefix
	Entries  []RIBEntry
}

// WritePeerIndexTable writes the peer index that subsequent RIB records
// reference by position.
func (w *Writer) WritePeerIndexTable(ts time.Time, collectorID uint32, peers []PeerEntry) error {
	body := make([]byte, 6, 6+16*len(peers))
	binary.BigEndian.PutUint32(body[0:4], collectorID)
	// view name length 0
	body = append(body, byte(len(peers)>>8), byte(len(peers)))
	// The 2 bytes appended above are the peer count; bytes 4:6 are the
	// view-name length (zero).
	for _, p := range peers {
		body = append(body, 0x02) // type: AS4, IPv4
		var buf [12]byte
		binary.BigEndian.PutUint32(buf[0:4], p.ID)
		binary.BigEndian.PutUint32(buf[4:8], p.IP)
		binary.BigEndian.PutUint32(buf[8:12], p.AS)
		body = append(body, buf[:]...)
	}
	return w.writeRecord(ts, TypeTableDumpV2, SubtypePeerIndexTable, body)
}

// WriteRIBIPv4 writes one RIB_IPV4_UNICAST record.
func (w *Writer) WriteRIBIPv4(ts time.Time, rec *RIBRecord) error {
	body := make([]byte, 4, 64)
	binary.BigEndian.PutUint32(body[0:4], rec.Sequence)
	body = appendWirePrefix(body, rec.Prefix)
	body = append(body, byte(len(rec.Entries)>>8), byte(len(rec.Entries)))
	for i := range rec.Entries {
		e := &rec.Entries[i]
		var hdr [8]byte
		binary.BigEndian.PutUint16(hdr[0:2], e.PeerIndex)
		binary.BigEndian.PutUint32(hdr[2:6], uint32(e.Originated.Unix()))
		attrs, err := bgp.AppendAttrs(nil, &e.Attrs)
		if err != nil {
			return err
		}
		if len(attrs) > 0xffff {
			return fmt.Errorf("mrt: attributes too long for RIB entry")
		}
		binary.BigEndian.PutUint16(hdr[6:8], uint16(len(attrs)))
		body = append(body, hdr[:]...)
		body = append(body, attrs...)
	}
	return w.writeRecord(ts, TypeTableDumpV2, SubtypeRIBIPv4Unicast, body)
}

// WalkRIBIPv4 streams every RIB_IPV4_UNICAST record of a TABLE_DUMP_V2
// file to fn, skipping other record types. It stops at end of stream
// (returning nil), on a decode error, or on the first error fn
// returns. Each record is freshly decoded: fn may retain it.
func WalkRIBIPv4(r io.Reader, fn func(*RIBRecord) error) error {
	rd := NewReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rec.Type != TypeTableDumpV2 || rec.Subtype != SubtypeRIBIPv4Unicast {
			continue
		}
		rr, err := DecodeRIBIPv4(rec.Body)
		if err != nil {
			return err
		}
		if err := fn(rr); err != nil {
			return err
		}
	}
}

// WalkRIBIPv4Reuse is WalkRIBIPv4 recycling one RIBRecord — entry
// slots, AS-path and community buffers included — across callbacks:
// once the buffers are warm, walking a full-table dump generates no
// per-entry garbage. fn must not retain the record or any slice in it
// past the call. Safe for any consumer that interns or copies what it
// keeps, which is exactly what the provisioning path does: Learn hands
// each path to the RIB's intern pool, so only the first occurrence of
// a path is ever copied.
func WalkRIBIPv4Reuse(r io.Reader, fn func(*RIBRecord) error) error {
	rd := NewReader(r)
	var rr RIBRecord
	var dec bgp.UpdateDecoder
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rec.Type != TypeTableDumpV2 || rec.Subtype != SubtypeRIBIPv4Unicast {
			continue
		}
		if err := decodeRIBIPv4Into(rec.Body, &rr, &dec); err != nil {
			return err
		}
		if err := fn(&rr); err != nil {
			return err
		}
	}
}

// DecodePeerIndexTable decodes a PEER_INDEX_TABLE body.
func DecodePeerIndexTable(body []byte) (collectorID uint32, peers []PeerEntry, err error) {
	if len(body) < 6 {
		return 0, nil, ErrTruncated
	}
	collectorID = binary.BigEndian.Uint32(body[0:4])
	nameLen := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 6+nameLen+2 {
		return 0, nil, ErrTruncated
	}
	b := body[6+nameLen:]
	count := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	for i := 0; i < count; i++ {
		if len(b) < 1 {
			return 0, nil, ErrTruncated
		}
		typ := b[0]
		b = b[1:]
		var p PeerEntry
		addrLen, asLen := 4, 2
		if typ&0x01 != 0 {
			addrLen = 16
		}
		if typ&0x02 != 0 {
			asLen = 4
		}
		need := 4 + addrLen + asLen
		if len(b) < need {
			return 0, nil, ErrTruncated
		}
		p.ID = binary.BigEndian.Uint32(b[0:4])
		if addrLen == 4 {
			p.IP = binary.BigEndian.Uint32(b[4:8])
		}
		if asLen == 4 {
			p.AS = binary.BigEndian.Uint32(b[4+addrLen:])
		} else {
			p.AS = uint32(binary.BigEndian.Uint16(b[4+addrLen:]))
		}
		b = b[need:]
		peers = append(peers, p)
	}
	return collectorID, peers, nil
}

// DecodeRIBIPv4 decodes a RIB_IPV4_UNICAST body into a fresh record
// the caller may retain.
func DecodeRIBIPv4(body []byte) (*RIBRecord, error) {
	rec := &RIBRecord{}
	var dec bgp.UpdateDecoder
	if err := decodeRIBIPv4Into(body, rec, &dec); err != nil {
		return nil, err
	}
	return rec, nil
}

// decodeRIBIPv4Into decodes a RIB_IPV4_UNICAST body into rec, reusing
// rec's entry slots (and each slot's attribute buffers) and dec as
// scratch. Everything decoded is only valid until the next call with
// the same rec.
func decodeRIBIPv4Into(body []byte, rec *RIBRecord, dec *bgp.UpdateDecoder) error {
	if len(body) < 5 {
		return ErrTruncated
	}
	rec.Sequence = binary.BigEndian.Uint32(body[0:4])
	b := body[4:]
	p, n, err := parseWirePrefix(b)
	if err != nil {
		return err
	}
	rec.Prefix = p
	b = b[n:]
	if len(b) < 2 {
		return ErrTruncated
	}
	count := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if count <= cap(rec.Entries) {
		// Resurrected slots keep their attribute buffers (truncation
		// never zeroed them), so re-decoding into them is append-only.
		rec.Entries = rec.Entries[:count]
	} else {
		grown := make([]RIBEntry, count)
		copy(grown, rec.Entries[:cap(rec.Entries)])
		rec.Entries = grown
	}
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			rec.Entries = rec.Entries[:i]
			return ErrTruncated
		}
		e := &rec.Entries[i]
		e.PeerIndex = binary.BigEndian.Uint16(b[0:2])
		e.Originated = time.Unix(int64(binary.BigEndian.Uint32(b[2:6])), 0).UTC()
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		if len(b) < 8+alen {
			rec.Entries = rec.Entries[:i]
			return ErrTruncated
		}
		if err := bgp.DecodeAttrsReuse(b[8:8+alen], &e.Attrs, dec); err != nil {
			rec.Entries = rec.Entries[:i]
			return err
		}
		b = b[8+alen:]
	}
	return nil
}

// appendWirePrefix and parseWirePrefix use the RFC 4271 prefix encoding,
// which TABLE_DUMP_V2 shares with UPDATE NLRI.
func appendWirePrefix(dst []byte, p netaddr.Prefix) []byte {
	l := p.Len()
	dst = append(dst, byte(l))
	a := p.Addr()
	for nbytes := (l + 7) / 8; nbytes > 0; nbytes-- {
		dst = append(dst, byte(a>>24))
		a <<= 8
	}
	return dst
}

func parseWirePrefix(b []byte) (netaddr.Prefix, int, error) {
	if len(b) < 1 {
		return netaddr.Invalid, 0, ErrTruncated
	}
	l := int(b[0])
	if l > 32 {
		return netaddr.Invalid, 0, fmt.Errorf("mrt: prefix length %d", l)
	}
	nbytes := (l + 7) / 8
	if len(b) < 1+nbytes {
		return netaddr.Invalid, 0, ErrTruncated
	}
	var a uint32
	for i := 0; i < nbytes; i++ {
		a |= uint32(b[1+i]) << (24 - 8*uint(i))
	}
	return netaddr.MakePrefix(a, l), 1 + nbytes, nil
}
