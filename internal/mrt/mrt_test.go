package mrt

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/netaddr"
)

func TestBGP4MPRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Unix(1700000000, 0).UTC()
	u := &bgp.Update{
		Attrs: bgp.Attrs{
			ASPath:     []uint32{65001, 65002},
			HasNextHop: true,
			NextHop:    0x0a000001,
		},
		NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")},
	}
	if err := w.WriteBGP4MP(ts, 65001, 64512, 0x01020304, 0x05060708, u); err != nil {
		t.Fatal(err)
	}
	wd := &bgp.Update{Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("198.51.0.0/16")}}
	if err := w.WriteBGP4MP(ts.Add(time.Second), 65001, 64512, 0x01020304, 0x05060708, wd); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	m1, err := r.NextBGP4MP()
	if err != nil {
		t.Fatal(err)
	}
	if m1.PeerAS != 65001 || m1.LocalAS != 64512 || !m1.Timestamp.Equal(ts) {
		t.Errorf("record 1 = %+v", m1)
	}
	var got bgp.Update
	if err := got.Decode(m1.Body); err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
		t.Errorf("nlri = %v", got.NLRI)
	}
	m2, err := r.NextBGP4MP()
	if err != nil {
		t.Fatal(err)
	}
	var got2 bgp.Update
	if err := got2.Decode(m2.Body); err != nil {
		t.Fatal(err)
	}
	if !got2.IsWithdrawalOnly() {
		t.Error("record 2 should be withdrawal-only")
	}
	if _, err := r.NextBGP4MP(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderSkipsUnknownRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.writeRecord(time.Unix(0, 0), 99, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	u := &bgp.Update{Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")}}
	if err := w.WriteBGP4MP(time.Unix(5, 0), 1, 2, 3, 4, u); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	m, err := r.NextBGP4MP()
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerAS != 1 {
		t.Errorf("peer AS = %d", m.PeerAS)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	u := &bgp.Update{Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")}}
	if err := w.WriteBGP4MP(time.Unix(5, 0), 1, 2, 3, 4, u); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.NextBGP4MP(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestTableDumpRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Unix(1700000000, 0).UTC()
	peers := []PeerEntry{
		{ID: 0x01010101, IP: 0x0a000001, AS: 65001},
		{ID: 0x02020202, IP: 0x0a000002, AS: 400000},
	}
	if err := w.WritePeerIndexTable(ts, 0xc0ffee00, peers); err != nil {
		t.Fatal(err)
	}
	rib := &RIBRecord{
		Sequence: 7,
		Prefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
		Entries: []RIBEntry{
			{
				PeerIndex:  0,
				Originated: ts.Add(-time.Hour),
				Attrs: bgp.Attrs{
					ASPath:     []uint32{65001, 65002, 65003},
					HasNextHop: true,
					NextHop:    0x0a000001,
				},
			},
			{
				PeerIndex:  1,
				Originated: ts.Add(-2 * time.Hour),
				Attrs: bgp.Attrs{
					ASPath:     []uint32{400000, 65003},
					HasNextHop: true,
					NextHop:    0x0a000002,
				},
			},
		},
	}
	if err := w.WriteRIBIPv4(ts, rib); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	r := NewReader(bytes.NewReader(buf.Bytes()))
	rec1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Type != TypeTableDumpV2 || rec1.Subtype != SubtypePeerIndexTable {
		t.Fatalf("record 1 = %d/%d", rec1.Type, rec1.Subtype)
	}
	cid, gotPeers, err := DecodePeerIndexTable(rec1.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cid != 0xc0ffee00 || len(gotPeers) != 2 || gotPeers[1].AS != 400000 {
		t.Errorf("peer table = %x %+v", cid, gotPeers)
	}

	rec2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotRIB, err := DecodeRIBIPv4(rec2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if gotRIB.Sequence != 7 || gotRIB.Prefix != rib.Prefix || len(gotRIB.Entries) != 2 {
		t.Errorf("rib = %+v", gotRIB)
	}
	if got := gotRIB.Entries[1].Attrs.ASPath; len(got) != 2 || got[0] != 400000 {
		t.Errorf("entry 1 path = %v", got)
	}
	if !gotRIB.Entries[0].Originated.Equal(ts.Add(-time.Hour)) {
		t.Errorf("originated = %v", gotRIB.Entries[0].Originated)
	}
}

func TestExtendedTimestampRecord(t *testing.T) {
	// Hand-build a BGP4MP_ET record: same as BGP4MP but with 4 extra
	// microsecond bytes at the start of the body.
	var inner bytes.Buffer
	w := NewWriter(&inner)
	u := &bgp.Update{Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")}}
	if err := w.WriteBGP4MP(time.Unix(100, 0), 1, 2, 3, 4, u); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	raw := inner.Bytes()
	body := raw[12:]

	var buf bytes.Buffer
	w2 := NewWriter(&buf)
	etBody := append([]byte{0x00, 0x07, 0xa1, 0x20}, body...) // 500000 us
	if err := w2.writeRecord(time.Unix(100, 0), TypeBGP4MPET, SubtypeBGP4MPMessageAS4, etBody); err != nil {
		t.Fatal(err)
	}
	w2.Flush()

	r := NewReader(bytes.NewReader(buf.Bytes()))
	m, err := r.NextBGP4MP()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(100, 0).Add(500 * time.Millisecond).UTC()
	if !m.Timestamp.Equal(want) {
		t.Errorf("timestamp = %v, want %v", m.Timestamp, want)
	}
}

func TestManyRecordsStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 500
	for i := 0; i < n; i++ {
		u := &bgp.Update{Withdrawn: []netaddr.Prefix{netaddr.BlockFor(uint32(i%200+1), i%250)}}
		if err := w.WriteBGP4MP(time.Unix(int64(i), 0), uint32(i%7+1), 64512, 1, 2, u); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	count := 0
	for {
		_, err := r.NextBGP4MP()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Errorf("read %d records, want %d", count, n)
	}
}

func TestWalkRIBIPv4(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Unix(1700000000, 0).UTC()
	if err := w.WritePeerIndexTable(ts, 1, []PeerEntry{{ID: 2, IP: 3, AS: 65002}}); err != nil {
		t.Fatal(err)
	}
	want := []netaddr.Prefix{
		netaddr.MustParsePrefix("192.0.2.0/24"),
		netaddr.MustParsePrefix("198.51.100.0/24"),
	}
	for i, p := range want {
		rec := &RIBRecord{
			Sequence: uint32(i),
			Prefix:   p,
			Entries: []RIBEntry{{
				Originated: ts,
				Attrs:      bgp.Attrs{ASPath: []uint32{65002, 65003}, HasNextHop: true, NextHop: 3},
			}},
		}
		if err := w.WriteRIBIPv4(ts, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// The walk must visit exactly the RIB records, skipping the peer
	// index table, and stop cleanly at EOF.
	var got []netaddr.Prefix
	err := WalkRIBIPv4(bytes.NewReader(buf.Bytes()), func(rr *RIBRecord) error {
		got = append(got, rr.Prefix)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: prefix %v, want %v", i, got[i], want[i])
		}
	}

	// A callback error must stop the walk and propagate.
	calls := 0
	sentinel := io.ErrClosedPipe
	if err := WalkRIBIPv4(bytes.NewReader(buf.Bytes()), func(*RIBRecord) error {
		calls++
		return sentinel
	}); err != sentinel {
		t.Errorf("walk error = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after erroring, want 1", calls)
	}

	// A truncated stream must surface an error, not silent success.
	if err := WalkRIBIPv4(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), func(*RIBRecord) error {
		return nil
	}); err == nil {
		t.Error("truncated stream walked without error")
	}
}

// TestWalkRIBIPv4ReuseMatchesFresh pins the buffer-reusing walker to
// the fresh-record walker: same records, same order, same attributes —
// across records with different path lengths and entry counts, so slot
// and buffer resurrection is exercised.
func TestWalkRIBIPv4ReuseMatchesFresh(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Unix(1700000000, 0).UTC()
	if err := w.WritePeerIndexTable(ts, 1, []PeerEntry{{ID: 2, IP: 3, AS: 65002}}); err != nil {
		t.Fatal(err)
	}
	recs := []*RIBRecord{
		{Sequence: 0, Prefix: netaddr.MustParsePrefix("192.0.2.0/24"), Entries: []RIBEntry{
			{Originated: ts, Attrs: bgp.Attrs{ASPath: []uint32{65002, 65003, 65004, 65005}, HasNextHop: true, NextHop: 3}},
			{Originated: ts, Attrs: bgp.Attrs{ASPath: []uint32{65002, 65010}, HasNextHop: true, NextHop: 3}},
		}},
		{Sequence: 1, Prefix: netaddr.MustParsePrefix("198.51.100.0/24"), Entries: []RIBEntry{
			{Originated: ts, Attrs: bgp.Attrs{ASPath: []uint32{65002}, HasNextHop: true, NextHop: 3, Communities: []uint32{7, 9}}},
		}},
		{Sequence: 2, Prefix: netaddr.MustParsePrefix("203.0.113.0/24"), Entries: []RIBEntry{
			{Originated: ts, Attrs: bgp.Attrs{ASPath: []uint32{65002, 65020, 65021}, HasNextHop: true, NextHop: 3}},
			{Originated: ts, Attrs: bgp.Attrs{ASPath: []uint32{65002, 65030}, HasNextHop: true, NextHop: 3}},
			{Originated: ts, Attrs: bgp.Attrs{ASPath: []uint32{65002}, HasNextHop: true, NextHop: 3}},
		}},
	}
	for _, r := range recs {
		if err := w.WriteRIBIPv4(ts, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	type flat struct {
		seq    uint32
		prefix netaddr.Prefix
		path   []uint32
		comms  []uint32
	}
	collect := func(walk func(io.Reader, func(*RIBRecord) error) error) []flat {
		var out []flat
		err := walk(bytes.NewReader(buf.Bytes()), func(rr *RIBRecord) error {
			for i := range rr.Entries {
				out = append(out, flat{
					seq:    rr.Sequence,
					prefix: rr.Prefix,
					path:   append([]uint32(nil), rr.Entries[i].Attrs.ASPath...),
					comms:  append([]uint32(nil), rr.Entries[i].Attrs.Communities...),
				})
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	fresh, reused := collect(WalkRIBIPv4), collect(WalkRIBIPv4Reuse)
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("walkers disagree:\nfresh  %+v\nreused %+v", fresh, reused)
	}
	if len(fresh) != 6 {
		t.Fatalf("flattened %d entries, want 6", len(fresh))
	}
}
