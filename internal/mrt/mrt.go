// Package mrt implements the MRT export format (RFC 6396) subset used by
// RouteViews and RIPE RIS archives: BGP4MP_MESSAGE(_AS4) update records
// and TABLE_DUMP_V2 RIB snapshots. The SWIFT evaluation consumes BGP
// traces in exactly this shape; the synthetic trace generator writes MRT
// so the whole pipeline exercises the same parsing path it would with
// real collector archives.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"swift/internal/bgp"
)

// MRT record types and subtypes (RFC 6396).
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16
	TypeBGP4MPET    = 17 // extended (microsecond) timestamps

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2

	SubtypeBGP4MPMessage    = 1
	SubtypeBGP4MPMessageAS4 = 4
)

// Errors returned by the reader.
var (
	ErrTruncated   = errors.New("mrt: truncated record")
	ErrUnsupported = errors.New("mrt: unsupported record")
)

// Record is one MRT record: the common header plus its undecoded body.
type Record struct {
	Timestamp time.Time
	Type      uint16
	Subtype   uint16
	Body      []byte
}

// BGP4MPMessage is a decoded BGP4MP_MESSAGE(_AS4) record: one BGP message
// as seen on a collector's peering session.
type BGP4MPMessage struct {
	Timestamp time.Time
	PeerAS    uint32
	LocalAS   uint32
	PeerIP    uint32
	LocalIP   uint32
	// Header and Body are the embedded BGP message.
	Header bgp.Header
	Body   []byte
}

// Writer emits MRT records.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Flush flushes buffered records.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) writeRecord(ts time.Time, typ, subtype uint16, body []byte) error {
	if w.err != nil {
		return w.err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteBGP4MP writes one BGP message as a BGP4MP_MESSAGE_AS4 record.
func (w *Writer) WriteBGP4MP(ts time.Time, peerAS, localAS, peerIP, localIP uint32, msg bgp.Message) error {
	wire, err := msg.AppendWire(nil)
	if err != nil {
		return err
	}
	body := make([]byte, 20, 20+len(wire))
	binary.BigEndian.PutUint32(body[0:4], peerAS)
	binary.BigEndian.PutUint32(body[4:8], localAS)
	// interface index 0, AFI 1 (IPv4)
	binary.BigEndian.PutUint16(body[10:12], 1)
	binary.BigEndian.PutUint32(body[12:16], peerIP)
	binary.BigEndian.PutUint32(body[16:20], localIP)
	body = append(body, wire...)
	return w.writeRecord(ts, TypeBGP4MP, SubtypeBGP4MPMessageAS4, body)
}

// Reader decodes MRT records from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next raw record, or io.EOF at end of stream.
func (r *Reader) Next() (*Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	rec := &Record{
		Timestamp: time.Unix(int64(binary.BigEndian.Uint32(hdr[0:4])), 0).UTC(),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
	}
	blen := binary.BigEndian.Uint32(hdr[8:12])
	if blen > 1<<24 {
		return nil, fmt.Errorf("mrt: implausible record length %d", blen)
	}
	rec.Body = make([]byte, blen)
	if _, err := io.ReadFull(r.r, rec.Body); err != nil {
		return nil, ErrTruncated
	}
	if rec.Type == TypeBGP4MPET {
		// Extended-timestamp records carry 4 extra microsecond bytes
		// before the message body.
		if len(rec.Body) < 4 {
			return nil, ErrTruncated
		}
		us := binary.BigEndian.Uint32(rec.Body[0:4])
		rec.Timestamp = rec.Timestamp.Add(time.Duration(us) * time.Microsecond)
		rec.Type = TypeBGP4MP
		rec.Body = rec.Body[4:]
	}
	return rec, nil
}

// NextBGP4MP scans forward to the next BGP4MP message record and decodes
// it. Non-BGP4MP records are skipped; io.EOF signals end of stream.
func (r *Reader) NextBGP4MP() (*BGP4MPMessage, error) {
	for {
		rec, err := r.Next()
		if err != nil {
			return nil, err
		}
		if rec.Type != TypeBGP4MP {
			continue
		}
		switch rec.Subtype {
		case SubtypeBGP4MPMessage, SubtypeBGP4MPMessageAS4:
		default:
			continue
		}
		return decodeBGP4MP(rec)
	}
}

func decodeBGP4MP(rec *Record) (*BGP4MPMessage, error) {
	b := rec.Body
	asLen := 4
	if rec.Subtype == SubtypeBGP4MPMessage {
		asLen = 2
	}
	need := 2*asLen + 4 // ASes + ifindex + AFI
	if len(b) < need {
		return nil, ErrTruncated
	}
	m := &BGP4MPMessage{Timestamp: rec.Timestamp}
	if asLen == 4 {
		m.PeerAS = binary.BigEndian.Uint32(b[0:4])
		m.LocalAS = binary.BigEndian.Uint32(b[4:8])
	} else {
		m.PeerAS = uint32(binary.BigEndian.Uint16(b[0:2]))
		m.LocalAS = uint32(binary.BigEndian.Uint16(b[2:4]))
	}
	b = b[2*asLen:]
	afi := binary.BigEndian.Uint16(b[2:4])
	b = b[4:]
	addrLen := 4
	if afi == 2 {
		addrLen = 16
	}
	if len(b) < 2*addrLen {
		return nil, ErrTruncated
	}
	if afi == 1 {
		m.PeerIP = binary.BigEndian.Uint32(b[0:4])
		m.LocalIP = binary.BigEndian.Uint32(b[4:8])
	}
	b = b[2*addrLen:]
	if afi != 1 {
		return nil, fmt.Errorf("%w: AFI %d", ErrUnsupported, afi)
	}
	h, err := bgp.ParseHeader(b)
	if err != nil {
		return nil, fmt.Errorf("mrt: embedded BGP header: %w", err)
	}
	if len(b) < int(h.Len) {
		return nil, ErrTruncated
	}
	m.Header = h
	m.Body = b[bgp.HeaderLen:h.Len]
	return m, nil
}
