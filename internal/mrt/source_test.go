package mrt_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpsim"
	"swift/internal/event"
	"swift/internal/inference"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/trace"
)

func sourceEngineConfig(vantage, neighbor uint32) swiftengine.Config {
	cfg := swiftengine.Config{LocalAS: vantage, PrimaryNeighbor: neighbor}
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = 500
	cfg.Inference.UseHistory = false
	cfg.Burst.StartThreshold = 500
	return cfg
}

// materializeMRT renders one synthetic session as collector archives: a
// TABLE_DUMP_V2 RIB snapshot plus a BGP4MP update file carrying its
// bursts an hour apart.
func materializeMRT(t *testing.T, ds *trace.Dataset, s trace.Session, bursts []*bgpsim.Burst, epoch time.Time) (rib, updates []byte) {
	t.Helper()
	var ribBuf bytes.Buffer
	w := mrt.NewWriter(&ribBuf)
	if err := w.WritePeerIndexTable(epoch, s.Vantage, []mrt.PeerEntry{{ID: s.Neighbor, IP: 0x0a000001, AS: s.Neighbor}}); err != nil {
		t.Fatal(err)
	}
	seq := uint32(0)
	for origin, path := range ds.SessionRIB(s) {
		for i := 0; i < ds.Net.Origins[origin]; i++ {
			rec := &mrt.RIBRecord{
				Sequence: seq,
				Prefix:   netaddr.PrefixFor(origin, i),
				Entries: []mrt.RIBEntry{{
					Originated: epoch.Add(-24 * time.Hour),
					Attrs:      bgp.Attrs{ASPath: path, HasNextHop: true, NextHop: 0x0a000001},
				}},
			}
			seq++
			if err := w.WriteRIBIPv4(epoch, rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var updBuf bytes.Buffer
	uw := mrt.NewWriter(&updBuf)
	writeMsg := func(ts time.Time, u *bgp.Update) {
		if err := uw.WriteBGP4MP(ts, s.Neighbor, s.Vantage, 0x0a000001, 0x0a000002, u); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range bursts {
		at := epoch.Add(time.Duration(i+1) * time.Hour)
		var wd []netaddr.Prefix
		var wdAt time.Time
		flush := func() {
			for _, u := range bgp.PackWithdrawals(wd) {
				writeMsg(wdAt, u)
			}
			wd = wd[:0]
		}
		for _, ev := range b.Events {
			ts := at.Add(ev.At)
			if ev.Kind == bgpsim.KindWithdraw {
				if len(wd) == 0 {
					wdAt = ts
				}
				wd = append(wd, ev.Prefix)
				if len(wd) >= 400 {
					flush()
				}
				continue
			}
			flush()
			writeMsg(ts, &bgp.Update{
				Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 0x0a000001},
				NLRI:  []netaddr.Prefix{ev.Prefix},
			})
		}
		flush()
	}
	if err := uw.Flush(); err != nil {
		t.Fatal(err)
	}
	return ribBuf.Bytes(), updBuf.Bytes()
}

// TestSourceMatchesLegacyShims is the redesign's semantic-equivalence
// gate: replaying the same MRT archives through mrt.Source →
// Engine.Apply and through the legacy per-message Observe* shims must
// yield identical Decisions() — the event-stream API changes no paper
// semantics.
func TestSourceMatchesLegacyShims(t *testing.T) {
	ds := trace.Generate(trace.Config{
		NumASes:           250,
		AvgDegree:         7,
		Sessions:          50,
		Days:              30,
		Failures:          50,
		MaxPrefixes:       6000,
		PopularASes:       10,
		ASFailureFraction: 0.15,
		Timing:            bgpsim.DefaultTiming(11),
		Seed:              11,
	})
	var sess trace.Session
	var bursts []*bgpsim.Burst
	for _, st := range ds.Census(1500) {
		bs := ds.BurstsAt(st.Session, 1500)
		if len(bs) > 0 {
			sess, bursts = st.Session, bs
			break
		}
	}
	if len(bursts) == 0 {
		t.Skip("no bursty session at this scale")
	}
	if len(bursts) > 2 {
		bursts = bursts[:2] // two bursts exercise burst-end + re-detection
	}
	epoch := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	ribMRT, updMRT := materializeMRT(t, ds, sess, bursts, epoch)
	const finalTick = time.Hour

	// Path 1: mrt.Source feeding Engine.Apply through a SessionSink
	// (RIB loads via the Provisioner surface, updates stream as
	// batches).
	viaSource := swiftengine.New(sourceEngineConfig(sess.Vantage, sess.Neighbor))
	src := &mrt.Source{
		RIB:       bytes.NewReader(ribMRT),
		Updates:   bytes.NewReader(updMRT),
		Peer:      event.PeerKey{AS: sess.Neighbor, BGPID: sess.Neighbor},
		FinalTick: finalTick,
	}
	if err := src.Run(swiftengine.NewSessionSink(viaSource)); err != nil {
		t.Fatal(err)
	}
	if src.Routes == 0 || src.Events == 0 {
		t.Fatalf("source replayed %d routes, %d events", src.Routes, src.Events)
	}

	// Path 2: the legacy per-message walk over the same bytes, through
	// the deprecated Observe* shims.
	legacy := swiftengine.New(sourceEngineConfig(sess.Vantage, sess.Neighbor))
	if err := mrt.WalkRIBIPv4(bytes.NewReader(ribMRT), func(rr *mrt.RIBRecord) error {
		for _, e := range rr.Entries {
			legacy.LearnPrimary(rr.Prefix, e.Attrs.ASPath)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Provision(); err != nil {
		t.Fatal(err)
	}
	r := mrt.NewReader(bytes.NewReader(updMRT))
	var dec bgp.UpdateDecoder
	var msgEpoch time.Time
	lastAt := time.Duration(-1)
	for {
		m, err := r.NextBGP4MP()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.Type != bgp.TypeUpdate {
			continue
		}
		if err := dec.Decode(m.Body); err != nil {
			t.Fatal(err)
		}
		if msgEpoch.IsZero() {
			msgEpoch = m.Timestamp
		}
		at := m.Timestamp.Sub(msgEpoch)
		for _, p := range dec.Withdrawn {
			legacy.ObserveWithdraw(at, p)
		}
		if len(dec.NLRI) > 0 {
			path := append([]uint32(nil), dec.Attrs.ASPath...)
			for _, p := range dec.NLRI {
				legacy.ObserveAnnounce(at, p, path)
			}
		}
		lastAt = at
	}
	legacy.Tick(lastAt + finalTick)

	got, want := viaSource.Decisions(), legacy.Decisions()
	if len(want) == 0 {
		t.Fatalf("legacy path made no decisions (burst sizes %d); test is vacuous", bursts[0].Size)
	}
	if len(got) != len(want) {
		t.Fatalf("source path made %d decisions, legacy path %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.At != w.At {
			t.Errorf("decision %d: at %v vs %v", i, g.At, w.At)
		}
		if len(g.Result.Links) != len(w.Result.Links) {
			t.Fatalf("decision %d: links %v vs %v", i, g.Result.Links, w.Result.Links)
		}
		for j := range w.Result.Links {
			if g.Result.Links[j] != w.Result.Links[j] {
				t.Errorf("decision %d: link %d = %v, want %v", i, j, g.Result.Links[j], w.Result.Links[j])
			}
		}
		if len(g.Predicted) != len(w.Predicted) {
			t.Errorf("decision %d: predicted %d prefixes, want %d", i, len(g.Predicted), len(w.Predicted))
		}
		if g.RulesInstalled != w.RulesInstalled {
			t.Errorf("decision %d: %d rules, want %d", i, g.RulesInstalled, w.RulesInstalled)
		}
	}
}

// TestSourcePeerAttribution checks the per-record fallback attribution
// and the explicit override.
func TestSourcePeerAttribution(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	p := netaddr.MustParsePrefix("192.0.2.0/24")
	ts := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	u := &bgp.Update{Attrs: bgp.Attrs{ASPath: []uint32{65010, 3356}, HasNextHop: true, NextHop: 1}, NLRI: []netaddr.Prefix{p}}
	if err := w.WriteBGP4MP(ts, 65010, 65001, 0x0a000001, 0x0a000002, u); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	collect := func(src *mrt.Source) event.Batch {
		var got event.Batch
		if err := src.Run(event.SinkFunc(func(b event.Batch) error {
			got = append(got, b...)
			return nil
		})); err != nil {
			t.Fatal(err)
		}
		return got
	}

	got := collect(&mrt.Source{Updates: bytes.NewReader(wire)})
	if len(got) != 1 || got[0].Peer != (event.PeerKey{AS: 65010, BGPID: 0x0a000001}) {
		t.Errorf("record attribution = %+v", got)
	}
	override := event.PeerKey{AS: 7, BGPID: 9}
	got = collect(&mrt.Source{Updates: bytes.NewReader(wire), Peer: override})
	if len(got) != 1 || got[0].Peer != override {
		t.Errorf("override attribution = %+v", got)
	}
	if got[0].Kind != event.KindAnnounce || got[0].Prefix != p || got[0].At != 0 {
		t.Errorf("event = %+v", got[0])
	}
}
