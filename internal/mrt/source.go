package mrt

import (
	"errors"
	"fmt"
	"io"
	"time"

	"swift/internal/bgp"
	"swift/internal/event"
)

// Source replays MRT collector archives as the shared event stream —
// the artifact pair RouteViews publishes (a TABLE_DUMP_V2 RIB snapshot
// plus a BGP4MP update file) becomes an event.Source that feeds any
// sink: one Engine (via swift.SessionSink) or a whole Fleet,
// unchanged. The optional RIB snapshot is loaded through the sink's
// event.Provisioner surface before streaming, mirroring the in-band
// table dump a live BMP feed carries.
type Source struct {
	// Updates is the BGP4MP update stream. Required.
	Updates io.Reader
	// RIB, when set, is a TABLE_DUMP_V2 snapshot loaded and provisioned
	// before the update stream (the "before the outage" half of the
	// paper's Fig. 3). It requires Peer and a sink implementing
	// event.Provisioner.
	RIB io.Reader
	// Peer attributes the emitted events. The zero key attributes each
	// event to its record's collector peer (AS from the BGP4MP header,
	// BGP identifier from the peer IP).
	Peer event.PeerKey
	// Epoch anchors the stream clock; events carry At = ts - Epoch.
	// Zero selects the first update record's timestamp.
	Epoch time.Time
	// BatchEvents caps how many events one batch carries (default 512).
	// Batches never split one UPDATE's events across deliveries.
	BatchEvents int
	// FinalTick, when positive, emits one closing tick this far past
	// the last event, so the sink's burst detectors close any burst
	// still open at end of archive.
	FinalTick time.Duration

	// Events counts the per-prefix events emitted by the last Run
	// (ticks excluded).
	Events int
	// Routes counts the RIB snapshot routes loaded by the last Run.
	Routes int
}

var _ event.Source = (*Source)(nil)

func (s *Source) batchEvents() int {
	if s.BatchEvents <= 0 {
		return 512
	}
	return s.BatchEvents
}

// Run loads the snapshot (when configured), then pushes the update
// stream into sink as timestamped event batches until the archive is
// exhausted or the sink fails.
func (s *Source) Run(sink event.Sink) error {
	if s.Updates == nil {
		return errors.New("mrt: Source.Updates is required")
	}
	s.Events, s.Routes = 0, 0
	if s.RIB != nil {
		if err := s.loadRIB(sink); err != nil {
			return err
		}
	}

	r := NewReader(s.Updates)
	var dec bgp.UpdateDecoder
	epoch := s.Epoch
	batch := make(event.Batch, 0, s.batchEvents())
	lastAt := time.Duration(-1)
	// Peers seen, in first-seen order, so a FinalTick closes every
	// peer's bursts — not just the last record's.
	seen := make(map[event.PeerKey]struct{})
	var order []event.PeerKey
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		b := batch
		batch = make(event.Batch, 0, cap(b))
		return sink.Apply(b)
	}
	for {
		m, err := r.NextBGP4MP()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if m.Header.Type != bgp.TypeUpdate {
			continue
		}
		if err := dec.Decode(m.Body); err != nil {
			return fmt.Errorf("mrt: update at %v: %w", m.Timestamp, err)
		}
		if epoch.IsZero() {
			epoch = m.Timestamp
		}
		at := m.Timestamp.Sub(epoch)
		key := s.Peer
		if key == (event.PeerKey{}) {
			key = event.PeerKey{AS: m.PeerAS, BGPID: m.PeerIP}
		}
		for _, p := range dec.Withdrawn {
			batch = append(batch, event.Withdraw(at, p).WithPeer(key))
		}
		if len(dec.NLRI) > 0 {
			// One path copy per UPDATE, shared by all its NLRI events.
			path := append([]uint32(nil), dec.Attrs.ASPath...)
			for _, p := range dec.NLRI {
				batch = append(batch, event.Announce(at, p, path).WithPeer(key))
			}
		}
		s.Events += len(dec.Withdrawn) + len(dec.NLRI)
		lastAt = at
		if _, ok := seen[key]; !ok {
			seen[key] = struct{}{}
			order = append(order, key)
		}
		if len(batch) >= s.batchEvents() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if s.FinalTick > 0 && lastAt >= 0 {
		for _, key := range order {
			if err := sink.Apply(event.Batch{event.Tick(lastAt + s.FinalTick).WithPeer(key)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadRIB drains the TABLE_DUMP_V2 snapshot into the sink's
// Provisioner surface and compiles the peer's plan. Each record's
// decoded AS path is handed to Learn, which interns it into the
// engine's path pool: a full-table dump provisions as one canonical
// copy per unique path (plus the Prefix→PathID route map), not one
// slice per prefix, and the per-record decode allocations die young.
// Fleet sinks share one pool across peers, so replaying several
// vantage dumps stores their overlapping paths once.
func (s *Source) loadRIB(sink event.Sink) error {
	if s.Peer == (event.PeerKey{}) {
		return errors.New("mrt: Source.RIB requires explicit Peer attribution")
	}
	prov, ok := sink.(event.Provisioner)
	if !ok {
		return fmt.Errorf("mrt: sink %T cannot load a RIB snapshot (no Provisioner surface)", sink)
	}
	// The reusing walker recycles record and attribute buffers across
	// records; Learn interns each path into the sink's pool, copying it
	// only on first sight, so provisioning a full-table dump costs one
	// canonical path copy per unique path.
	err := WalkRIBIPv4Reuse(s.RIB, func(rr *RIBRecord) error {
		for i := range rr.Entries {
			prov.Learn(s.Peer, rr.Prefix, rr.Entries[i].Attrs.ASPath)
			s.Routes++
		}
		return nil
	})
	if err != nil {
		return err
	}
	return prov.Provision(s.Peer)
}
