// Package rib implements the per-session Adj-RIB-In a SWIFTED router
// maintains: prefix → AS-path state plus an inverted index from AS link
// to the prefixes currently routed across it. The index is the data
// structure both the inference algorithm (W and P counters of §4.1) and
// the encoding algorithm (per-link prefix loads of §5) are built on.
package rib

import (
	"swift/internal/netaddr"
	"swift/internal/topology"
)

// Table is one BGP session's RIB with link indexing. It is not
// concurrency-safe: the SWIFT engine owns one per session and serializes
// access (the paper runs inference per session precisely to enable this
// parallelism without sharing).
type Table struct {
	localAS uint32
	routes  map[netaddr.Prefix][]uint32 // prefix -> announced path (neighbor first)
	byLink  map[topology.Link]map[netaddr.Prefix]struct{}
}

// New returns an empty table for a session of localAS.
func New(localAS uint32) *Table {
	return &Table{
		localAS: localAS,
		routes:  make(map[netaddr.Prefix][]uint32),
		byLink:  make(map[topology.Link]map[netaddr.Prefix]struct{}),
	}
}

// LocalAS returns the AS that owns the table.
func (t *Table) LocalAS() uint32 { return t.localAS }

// Len returns the number of routed prefixes.
func (t *Table) Len() int { return len(t.routes) }

// Path returns the current AS path for p (nil when absent). The slice is
// owned by the table.
func (t *Table) Path(p netaddr.Prefix) []uint32 { return t.routes[p] }

// PathLinks appends to dst the links of path as seen from the local AS:
// (local, n1), (n1, n2), ... Duplicate consecutive ASes (prepending) are
// skipped, as are self-loops.
func PathLinks(dst []topology.Link, localAS uint32, path []uint32) []topology.Link {
	prev := localAS
	for _, as := range path {
		if as == prev {
			continue // AS-path prepending
		}
		dst = append(dst, topology.MakeLink(prev, as))
		prev = as
	}
	return dst
}

// Links returns the links of p's current path (nil when absent).
func (t *Table) Links(p netaddr.Prefix) []topology.Link {
	path := t.routes[p]
	if path == nil {
		return nil
	}
	return PathLinks(nil, t.localAS, path)
}

// Announce installs or replaces the route for p, returning the previous
// path (nil if p was new). The stored path aliases the argument; callers
// that reuse buffers must pass a copy.
func (t *Table) Announce(p netaddr.Prefix, path []uint32) (old []uint32) {
	old = t.routes[p]
	if old != nil {
		t.unindex(p, old)
	}
	t.routes[p] = path
	t.index(p, path)
	return old
}

// Withdraw removes the route for p, returning the withdrawn path (nil if
// p was not routed).
func (t *Table) Withdraw(p netaddr.Prefix) (old []uint32) {
	old = t.routes[p]
	if old == nil {
		return nil
	}
	t.unindex(p, old)
	delete(t.routes, p)
	return old
}

func (t *Table) index(p netaddr.Prefix, path []uint32) {
	var buf [16]topology.Link
	for _, l := range PathLinks(buf[:0], t.localAS, path) {
		set := t.byLink[l]
		if set == nil {
			set = make(map[netaddr.Prefix]struct{})
			t.byLink[l] = set
		}
		set[p] = struct{}{}
	}
}

func (t *Table) unindex(p netaddr.Prefix, path []uint32) {
	var buf [16]topology.Link
	for _, l := range PathLinks(buf[:0], t.localAS, path) {
		if set := t.byLink[l]; set != nil {
			delete(set, p)
			if len(set) == 0 {
				delete(t.byLink, l)
			}
		}
	}
}

// OnLink returns the number of prefixes whose current path crosses l —
// the P(l, t) of §4.1.
func (t *Table) OnLink(l topology.Link) int { return len(t.byLink[l]) }

// PrefixesOn appends to dst every prefix currently routed across l. The
// order is unspecified.
func (t *Table) PrefixesOn(dst []netaddr.Prefix, l topology.Link) []netaddr.Prefix {
	for p := range t.byLink[l] {
		dst = append(dst, p)
	}
	return dst
}

// PrefixesOnAny returns the union of prefixes across the given links —
// the set SWIFT reroutes after inferring that those links failed.
func (t *Table) PrefixesOnAny(links []topology.Link) []netaddr.Prefix {
	seen := make(map[netaddr.Prefix]struct{})
	for _, l := range links {
		for p := range t.byLink[l] {
			seen[p] = struct{}{}
		}
	}
	out := make([]netaddr.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	netaddr.Sort(out)
	return out
}

// ActiveLinks returns every link currently carrying at least one prefix.
// The order is unspecified.
func (t *Table) ActiveLinks() []topology.Link {
	out := make([]topology.Link, 0, len(t.byLink))
	for l := range t.byLink {
		out = append(out, l)
	}
	return out
}

// ForEach calls fn for every (prefix, path) pair. Iteration order is
// unspecified; fn must not mutate the table.
func (t *Table) ForEach(fn func(p netaddr.Prefix, path []uint32)) {
	for p, path := range t.routes {
		fn(p, path)
	}
}

// Clone returns a deep copy of the table (paths are shared, both
// index levels are fresh). The encoding layer snapshots the RIB this way
// before recomputing tags.
func (t *Table) Clone() *Table {
	out := New(t.localAS)
	for p, path := range t.routes {
		out.routes[p] = path
	}
	for l, set := range t.byLink {
		cp := make(map[netaddr.Prefix]struct{}, len(set))
		for p := range set {
			cp[p] = struct{}{}
		}
		out.byLink[l] = cp
	}
	return out
}
