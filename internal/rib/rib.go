// Package rib implements the per-session Adj-RIB-In a SWIFTED router
// maintains, built on an interning core: AS paths and AS links are
// deduplicated into a refcounted Pool of densely numbered entries
// (real tables carry far fewer unique paths than prefixes), each table
// stores Prefix → PathID plus per-PathID prefix groups, and the
// inverted link index the inference algorithm (W and P counters of
// §4.1) and the encoding algorithm (per-link prefix loads of §5) are
// built on collapses to dense per-LinkID counters. Prefix sets are
// materialized on demand — group by path, test the handful of inferred
// links against each unique path once, expand the matching groups —
// instead of being maintained for every link on every update.
package rib

import (
	"swift/internal/flatmap"
	"swift/internal/netaddr"
	"swift/internal/topology"
)

// routeRef locates one installed route: the interned path id plus the
// prefix's position inside the table's per-path group (for O(1)
// swap-removal). It is deliberately pointer-free — the routes map is
// the table's only O(prefixes) structure, and a pointer-free map is
// invisible to the garbage collector (the entry pointer lives in the
// O(paths) perPath groups instead).
type routeRef struct {
	pid PathID
	idx int32
}

// pathRoutes is one per-path prefix group. ent tracks the entry that
// currently owns this PathID slot; the slice holds every prefix the
// table routes over that path; pos is the group's index in the table's
// live list while the group is non-empty.
type pathRoutes struct {
	ent      *pathEntry
	prefixes []netaddr.Prefix
	pos      int32
}

// Table is one BGP session's RIB with link counting. It is not
// concurrency-safe: the SWIFT engine owns one per session and serializes
// access (the paper runs inference per session precisely to enable this
// parallelism without sharing). The Pool behind it IS safe to share —
// a fleet of per-peer tables deduplicates overlapping paths through one
// pool.
type Table struct {
	localAS uint32
	pool    *Pool
	// routes is a flat open-addressing map: route lookup, install and
	// withdrawal are the three most-executed operations in a burst
	// cycle, and the flat probe is several times cheaper than a generic
	// map's. Pointer-free, so the GC never scans the table's only
	// O(prefixes) structure.
	routes flatmap.Map[netaddr.Prefix, routeRef]
	// perPath groups the table's prefixes by PathID. The slice is
	// indexed by pool-scoped ids, so with a fleet-shared pool it is
	// sparse (32 bytes per id the pool has numbered, used or not);
	// iteration never scans it — livePaths lists exactly the ids this
	// table populates, keeping per-path queries O(table paths) however
	// many paths the rest of the fleet interned.
	perPath   []pathRoutes
	livePaths []PathID
	// onLink is P(l, t) by LinkID: how many prefixes' current path
	// crosses the link (each prefix counted once per link).
	onLink []int32
	// firstLink caches the LinkID of (localAS, head) per first-hop AS —
	// the only per-table piece of a path's link decomposition. fastHead/
	// fastFirst is a one-entry inline cache in front of it: sessions see
	// long runs of the same neighbor, so most resolutions are two
	// compares instead of a map probe.
	firstLink map[uint32]LinkID
	fastHead  uint32
	fastFirst LinkID
	// sig is the order-independent content signature of the installed
	// routes: XOR over SigMix(prefix ^ path content hash) per route.
	// Equal signatures mean (up to 64-bit collision) the same
	// prefix→path assignment — the memo key that lets burst-end
	// re-provisioning skip recomputation when BGP reconverged onto the
	// provisioned state.
	sig uint64
	// onLinkChange, when set, is called once per link whose P(l, t)
	// counter moves (announce, withdraw, or replacement) — the hook the
	// inference tracker uses to keep its per-link Fit-Score inputs
	// incremental instead of rescanning every touched link per Infer.
	onLinkChange func(LinkID)
	// set is the scratch LinkSet behind the []topology.Link query
	// surface.
	set LinkSet
	// cachePID is a two-entry intern cache: the ids of the last paths
	// this table installed. Burst churn re-announces the same one or
	// two paths thousands of times in a row; when the cached path is
	// still live in this table, Announce takes a refcount instead of
	// re-keying the shared pool's intern map.
	cachePID [2]PathID
	cacheSet [2]bool
}

// New returns an empty table for a session of localAS with a private
// pool.
func New(localAS uint32) *Table { return NewWithPool(localAS, NewPool()) }

// NewWithPool returns an empty table sharing pool — the fleet
// configuration, where per-peer tables announce overlapping paths and
// should store each once.
func NewWithPool(localAS uint32, pool *Pool) *Table {
	return &Table{
		localAS:   localAS,
		pool:      pool,
		firstLink: make(map[uint32]LinkID),
	}
}

// Pool returns the table's path/link pool.
func (t *Table) Pool() *Pool { return t.pool }

// LocalAS returns the AS that owns the table.
func (t *Table) LocalAS() uint32 { return t.localAS }

// Len returns the number of routed prefixes.
func (t *Table) Len() int { return t.routes.Len() }

// Path returns the current AS path for p (nil when absent). The slice
// is the pool's canonical copy: valid while the route stays installed,
// never mutated.
func (t *Table) Path(p netaddr.Prefix) []uint32 {
	ref, ok := t.routes.Get(p)
	if !ok {
		return nil
	}
	return t.perPath[ref.pid].ent.path
}

// HandleOf returns a borrowed handle for p's current path. The handle
// is valid only while the route stays installed; callers needing it
// longer must Retain it.
func (t *Table) HandleOf(p netaddr.Prefix) (PathHandle, bool) {
	ref, ok := t.routes.Get(p)
	if !ok {
		return PathHandle{}, false
	}
	return PathHandle{t.perPath[ref.pid].ent}, true
}

// PathLinks appends to dst the links of path as seen from the local AS:
// (local, n1), (n1, n2), ... Duplicate consecutive ASes (prepending) are
// skipped, as are self-loops. The output is positional (links[d-1] is
// the link at depth d), which is what the encoding layer's per-depth
// dictionaries key on.
func PathLinks(dst []topology.Link, localAS uint32, path []uint32) []topology.Link {
	prev := localAS
	for _, as := range path {
		if as == prev {
			continue // AS-path prepending
		}
		dst = append(dst, topology.MakeLink(prev, as))
		prev = as
	}
	return dst
}

// Links returns the links of p's current path (nil when absent).
func (t *Table) Links(p netaddr.Prefix) []topology.Link {
	path := t.Path(p)
	if path == nil {
		return nil
	}
	return PathLinks(nil, t.localAS, path)
}

// Announce installs or replaces the route for p, returning the previous
// path (nil if p was new). The path is interned: storage is canonical
// and never aliases the argument, so callers may reuse or mutate their
// buffer immediately. Re-announcing the current path is a near-free
// no-op.
func (t *Table) Announce(p netaddr.Prefix, path []uint32) (old []uint32) {
	ref, exists := t.routes.Get(p)
	if exists {
		e := t.perPath[ref.pid].ent
		old = e.path
		if pathsEqual(old, path) {
			return old // refresh of the current route
		}
		t.removeRoute(p, ref)
		t.pool.Release(PathHandle{e})
	}
	h, ok := t.cachedIntern(path)
	if !ok {
		h = t.pool.Intern(path)
		t.cacheSet[1], t.cachePID[1] = t.cacheSet[0], t.cachePID[0]
		t.cacheSet[0], t.cachePID[0] = true, h.e.id
	}
	t.addRoute(p, h.e)
	return old
}

// cachedIntern resolves path against the two-entry install cache: when
// a cached id still names a path live in this table with the same
// content, the table already pins the entry, so taking one more
// reference is a plain refcount add — no pool map probe, no key
// build. Single-threaded like the rest of the table; liveness is
// guaranteed by the table's own references, never by pool internals.
func (t *Table) cachedIntern(path []uint32) (PathHandle, bool) {
	for i, set := range &t.cacheSet {
		if !set {
			continue
		}
		pid := t.cachePID[i]
		if int(pid) >= len(t.perPath) {
			continue
		}
		g := &t.perPath[pid]
		if len(g.prefixes) > 0 && g.ent.id == pid && pathsEqual(g.ent.path, path) {
			h := PathHandle{g.ent}
			t.pool.Retain(h, 1)
			return h, true
		}
	}
	return PathHandle{}, false
}

func pathsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// Withdraw removes the route for p, returning the withdrawn path (nil
// if p was not routed). The returned slice is the canonical copy and
// stays intact even if this was the path's last reference.
func (t *Table) Withdraw(p netaddr.Prefix) (old []uint32) {
	h, ok := t.WithdrawHandle(p)
	if !ok {
		return nil
	}
	old = h.Path()
	t.pool.Release(h)
	return old
}

// WithdrawHandle removes the route for p and transfers the route's
// path reference to the caller, who must Release it (directly or via
// ReleaseHandle). The inference tracker uses this to keep withdrawn
// paths alive — and their PathIDs stable — for the duration of a burst
// without copying anything.
func (t *Table) WithdrawHandle(p netaddr.Prefix) (PathHandle, bool) {
	ref, ok := t.routes.Get(p)
	if !ok {
		return PathHandle{}, false
	}
	e := t.perPath[ref.pid].ent
	t.removeRoute(p, ref)
	t.routes.Delete(p)
	return PathHandle{e}, true
}

// ReleaseHandle returns a previously transferred path reference.
func (t *Table) ReleaseHandle(h PathHandle) { t.pool.Release(h) }

// addRoute indexes a new route whose path reference the caller already
// holds; ownership of that reference moves to the table.
func (t *Table) addRoute(p netaddr.Prefix, e *pathEntry) {
	id := int(e.id)
	if id >= len(t.perPath) {
		grown := make([]pathRoutes, id+1+id/2)
		copy(grown, t.perPath)
		t.perPath = grown
	}
	g := &t.perPath[id]
	g.ent = e
	if len(g.prefixes) == 0 {
		g.pos = int32(len(t.livePaths))
		t.livePaths = append(t.livePaths, e.id)
	}
	t.routes.Put(p, routeRef{pid: e.id, idx: int32(len(g.prefixes))})
	g.prefixes = append(g.prefixes, p)
	t.sig ^= SigMix(uint64(p) ^ e.hash)
	t.linkDelta(e, +1)
}

// removeRoute unindexes p (group membership and link counters) without
// touching the routes map entry or the path reference.
func (t *Table) removeRoute(p netaddr.Prefix, ref routeRef) {
	g := &t.perPath[ref.pid]
	last := len(g.prefixes) - 1
	if int(ref.idx) != last {
		moved := g.prefixes[last]
		g.prefixes[ref.idx] = moved
		t.routes.Ptr(moved).idx = ref.idx
	}
	g.prefixes = g.prefixes[:last]
	if last == 0 {
		t.dropLivePath(g)
	}
	t.sig ^= SigMix(uint64(p) ^ g.ent.hash)
	t.linkDelta(g.ent, -1)
}

// dropLivePath swap-removes an emptied group from the live list.
func (t *Table) dropLivePath(g *pathRoutes) {
	end := len(t.livePaths) - 1
	if int(g.pos) != end {
		movedID := t.livePaths[end]
		t.livePaths[g.pos] = movedID
		t.perPath[movedID].pos = g.pos
	}
	t.livePaths = t.livePaths[:end]
}

// SetLinkObserver registers fn to be called once per link whose
// P(l, t) counter changes, on every route install or removal. One
// observer per table; nil unregisters. The callback runs synchronously
// on the update path and must be fast.
func (t *Table) SetLinkObserver(fn func(LinkID)) { t.onLinkChange = fn }

// linkDelta adjusts the per-link counters for one route across every
// link of its path (first-hop link plus deduplicated interior links).
func (t *Table) linkDelta(e *pathEntry, d int32) {
	first, hasFirst := t.firstLinkID(e)
	if hasFirst {
		t.growLinks(first)
		t.onLink[first] += d
		if t.onLinkChange != nil {
			t.onLinkChange(first)
		}
	}
	for _, id := range e.links {
		if hasFirst && id == first {
			continue // path revisits the local link; count once
		}
		t.growLinks(id)
		t.onLink[id] += d
		if t.onLinkChange != nil {
			t.onLinkChange(id)
		}
	}
}

func (t *Table) growLinks(id LinkID) {
	if int(id) >= len(t.onLink) {
		grown := make([]int32, int(id)+1+int(id)/2)
		copy(grown, t.onLink)
		t.onLink = grown
	}
}

// firstLinkID resolves the local first-hop link (localAS, head) of an
// entry through the per-table cache. ok is false for the empty path and
// for paths starting at the local AS (no local link to cross).
func (t *Table) firstLinkID(e *pathEntry) (LinkID, bool) {
	if len(e.path) == 0 {
		return 0, false
	}
	head := e.path[0]
	if head == t.localAS {
		return 0, false
	}
	if head == t.fastHead && head != 0 {
		return t.fastFirst, true
	}
	id, ok := t.firstLink[head]
	if !ok {
		id = t.pool.LinkID(topology.MakeLink(t.localAS, head))
		t.firstLink[head] = id
	}
	t.fastHead, t.fastFirst = head, id
	return id, true
}

// firstLinkIDRO is firstLinkID without any cache write — the variant
// concurrent readers (CountOnSetRange workers) must use, since the
// inline fastHead/fastFirst cache is single-writer state. A head the
// table has never cached resolves through the pool without creating an
// id: a link the pool has never numbered cannot be in any LinkSet, so
// (0, false) is the correct membership answer for it.
func (t *Table) firstLinkIDRO(e *pathEntry) (LinkID, bool) {
	if len(e.path) == 0 {
		return 0, false
	}
	head := e.path[0]
	if head == t.localAS {
		return 0, false
	}
	if id, ok := t.firstLink[head]; ok {
		return id, true
	}
	return t.pool.LookupLink(topology.MakeLink(t.localAS, head))
}

// Signature returns the table's order-independent route-content
// signature: two tables (or one table at two points in time) with the
// same prefix→path assignment have equal signatures, up to 64-bit hash
// collision. O(1) — maintained incrementally by every update.
func (t *Table) Signature() uint64 { return t.sig }

// AppendPathLinkIDs appends the dense link ids of h's path as seen from
// this table's local AS (first-hop link plus interior), deduplicated —
// each link once, matching the table's counter semantics.
func (t *Table) AppendPathLinkIDs(dst []LinkID, h PathHandle) []LinkID {
	first, hasFirst := t.firstLinkID(h.e)
	if hasFirst {
		dst = append(dst, first)
	}
	for _, id := range h.e.links {
		if hasFirst && id == first {
			continue
		}
		dst = append(dst, id)
	}
	return dst
}

// PathCrossesSet reports whether h's path (seen from this table's local
// AS) crosses any link in set.
func (t *Table) PathCrossesSet(h PathHandle, set *LinkSet) bool {
	if first, ok := t.firstLinkID(h.e); ok && set.Has(first) {
		return true
	}
	for _, id := range h.e.links {
		if set.Has(id) {
			return true
		}
	}
	return false
}

// OnLink returns the number of prefixes whose current path crosses l —
// the P(l, t) of §4.1 — as a dense counter read.
func (t *Table) OnLink(l topology.Link) int {
	id, ok := t.pool.LookupLink(l)
	if !ok {
		return 0
	}
	return t.OnLinkID(id)
}

// OnLinkID is OnLink keyed by dense id — the inference hot path, one
// array lookup.
func (t *Table) OnLinkID(id LinkID) int {
	if int(id) >= len(t.onLink) {
		return 0
	}
	return int(t.onLink[id])
}

// LinkByID returns the link named by id.
func (t *Table) LinkByID(id LinkID) topology.Link { return t.pool.LinkAt(id) }

// LookupLinkID returns the dense id of l without creating one.
func (t *Table) LookupLinkID(l topology.Link) (LinkID, bool) { return t.pool.LookupLink(l) }

// FillLinkSet resets set and fills it with the ids of links, skipping
// links the pool has never numbered (no path ever crossed them, so no
// table state mentions them either).
func (t *Table) FillLinkSet(set *LinkSet, links []topology.Link) {
	set.Reset()
	for _, l := range links {
		if id, ok := t.pool.LookupLink(l); ok {
			set.Add(id)
		}
	}
}

// CountOnSet returns the number of distinct prefixes whose current path
// crosses any link in set — |∪ P(l)| computed by testing each unique
// path once and summing group sizes, never touching per-prefix state.
func (t *Table) CountOnSet(set *LinkSet) int {
	if set.Len() == 0 {
		return 0
	}
	n := 0
	for _, id := range t.livePaths {
		g := &t.perPath[id]
		if t.pathCrossesSetRO(g.ent, set) {
			n += len(g.prefixes)
		}
	}
	return n
}

// NumLivePaths returns the number of distinct paths currently carrying
// at least one prefix — the iteration domain of the per-path queries,
// which parallel callers split into CountOnSetRange spans.
func (t *Table) NumLivePaths() int { return len(t.livePaths) }

// CountOnSetRange is CountOnSet restricted to the live-path positions
// [lo, hi) — the shard of work one scoring worker takes. Ranges
// covering [0, NumLivePaths) sum to CountOnSet exactly. Strictly
// read-only (it bypasses the table's inline first-link cache): safe to
// run concurrently with other readers, but not with updates.
func (t *Table) CountOnSetRange(set *LinkSet, lo, hi int) int {
	n := 0
	for _, id := range t.livePaths[lo:hi] {
		g := &t.perPath[id]
		if t.pathCrossesSetRO(g.ent, set) {
			n += len(g.prefixes)
		}
	}
	return n
}

// pathCrossesSetRO is PathCrossesSet on the read-only first-link
// resolution (see firstLinkIDRO).
func (t *Table) pathCrossesSetRO(e *pathEntry, set *LinkSet) bool {
	if first, ok := t.firstLinkIDRO(e); ok && set.Has(first) {
		return true
	}
	for _, id := range e.links {
		if set.Has(id) {
			return true
		}
	}
	return false
}

// AppendPrefixesOnSet appends every prefix whose current path crosses
// any link in set — materialization on demand, group by path then
// expand. Each prefix appears exactly once; the order is unspecified.
func (t *Table) AppendPrefixesOnSet(dst []netaddr.Prefix, set *LinkSet) []netaddr.Prefix {
	if set.Len() == 0 {
		return dst
	}
	for _, id := range t.livePaths {
		g := &t.perPath[id]
		if t.pathCrossesSetRO(g.ent, set) {
			dst = append(dst, g.prefixes...)
		}
	}
	return dst
}

// PrefixesOn appends to dst every prefix currently routed across l. The
// order is unspecified.
func (t *Table) PrefixesOn(dst []netaddr.Prefix, l topology.Link) []netaddr.Prefix {
	t.FillLinkSet(&t.set, []topology.Link{l})
	return t.AppendPrefixesOnSet(dst, &t.set)
}

// PrefixesOnAny returns the sorted union of prefixes across the given
// links — the set SWIFT reroutes after inferring that those links
// failed. Group-by-path materialization yields each prefix once, so the
// union is append + sort + in-place dedup with no set allocation.
func (t *Table) PrefixesOnAny(links []topology.Link) []netaddr.Prefix {
	t.FillLinkSet(&t.set, links)
	out := t.AppendPrefixesOnSet(make([]netaddr.Prefix, 0, 64), &t.set)
	netaddr.Sort(out)
	return netaddr.DedupSorted(out)
}

// ActiveLinks returns every link currently carrying at least one prefix.
// The order is unspecified.
func (t *Table) ActiveLinks() []topology.Link {
	var out []topology.Link
	for id, n := range t.onLink {
		if n > 0 {
			out = append(out, t.pool.LinkAt(LinkID(id)))
		}
	}
	return out
}

// ForEach calls fn for every (prefix, path) pair. Iteration order is
// unspecified; fn must not mutate the table.
func (t *Table) ForEach(fn func(p netaddr.Prefix, path []uint32)) {
	t.routes.ForEach(func(p netaddr.Prefix, ref routeRef) {
		fn(p, t.perPath[ref.pid].ent.path)
	})
}

// ForEachPath calls fn once per unique path with the group of prefixes
// currently routed over it — the shape provisioning-time consumers
// (reroute planning, tag encoding) want, since per-path work is done
// once instead of once per prefix. fn must not mutate the table or
// retain either slice.
func (t *Table) ForEachPath(fn func(path []uint32, prefixes []netaddr.Prefix)) {
	for _, id := range t.livePaths {
		g := &t.perPath[id]
		fn(g.ent.path, g.prefixes)
	}
}

// Clone returns a deep copy of the table sharing the same pool (paths
// are interned, so the clone retains one reference per copied route).
// The encoding layer snapshots the RIB this way before recomputing
// tags.
func (t *Table) Clone() *Table {
	out := NewWithPool(t.localAS, t.pool)
	out.routes = t.routes.Clone()
	out.perPath = make([]pathRoutes, len(t.perPath))
	for _, id := range t.livePaths {
		g := &t.perPath[id]
		out.perPath[id] = pathRoutes{
			ent:      g.ent,
			prefixes: append([]netaddr.Prefix(nil), g.prefixes...),
			pos:      g.pos,
		}
		t.pool.Retain(PathHandle{g.ent}, len(g.prefixes))
	}
	out.livePaths = append([]PathID(nil), t.livePaths...)
	out.onLink = append([]int32(nil), t.onLink...)
	for head, id := range t.firstLink {
		out.firstLink[head] = id
	}
	out.sig = t.sig
	return out
}

// Release drops every route, returning the table's path references to
// the pool. A released table is empty and reusable; clones that are
// done being inspected should be released so pooled paths can be
// freed.
func (t *Table) Release() {
	for _, id := range t.livePaths {
		g := &t.perPath[id]
		t.pool.ReleaseN(PathHandle{g.ent}, len(g.prefixes))
		g.prefixes = g.prefixes[:0]
	}
	t.livePaths = t.livePaths[:0]
	t.routes.Clear()
	t.cacheSet = [2]bool{}
	for i := range t.onLink {
		t.onLink[i] = 0
	}
	t.sig = 0
}
