package rib

import (
	"testing"

	"swift/internal/netaddr"
)

// BenchmarkAnnounce measures route installation with link indexing.
func BenchmarkAnnounce(b *testing.B) {
	t := New(1)
	path := []uint32{2, 5, 6, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Announce(netaddr.PrefixFor(uint32(100+i%500), i%(1<<20-1)), path)
	}
}

// BenchmarkWithdraw measures removal including index cleanup.
func BenchmarkWithdraw(b *testing.B) {
	t := New(1)
	path := []uint32{2, 5, 6, 8}
	n := b.N
	if n > 1<<20-1 {
		n = 1<<20 - 1
	}
	for i := 0; i < n; i++ {
		t.Announce(netaddr.PrefixFor(8, i), path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Withdraw(netaddr.PrefixFor(8, i%n))
	}
}
