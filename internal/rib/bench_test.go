package rib

import (
	"testing"

	"swift/internal/netaddr"
	"swift/internal/topology"
)

// BenchmarkAnnounce measures route installation with link counting.
func BenchmarkAnnounce(b *testing.B) {
	t := New(1)
	path := []uint32{2, 5, 6, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Announce(netaddr.PrefixFor(uint32(100+i%500), i%(1<<20-1)), path)
	}
}

// BenchmarkAnnounceRefresh measures the steady-state fast path: a
// re-announcement of the current route (the dominant message on a
// quiet collector session).
func BenchmarkAnnounceRefresh(b *testing.B) {
	t := New(1)
	path := []uint32{2, 5, 6, 8}
	const n = 4096
	for i := 0; i < n; i++ {
		t.Announce(netaddr.PrefixFor(8, i), path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Announce(netaddr.PrefixFor(8, i%n), path)
	}
}

// BenchmarkWithdraw measures removal including counter cleanup.
func BenchmarkWithdraw(b *testing.B) {
	t := New(1)
	path := []uint32{2, 5, 6, 8}
	n := b.N
	if n > 1<<20-1 {
		n = 1<<20 - 1
	}
	for i := 0; i < n; i++ {
		t.Announce(netaddr.PrefixFor(8, i), path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Withdraw(netaddr.PrefixFor(8, i%n))
	}
}

// BenchmarkWithdrawAnnounceCycle keeps the table full so every
// withdrawal is a live-route removal (BenchmarkWithdraw drains the
// table, after which most iterations measure the miss path).
func BenchmarkWithdrawAnnounceCycle(b *testing.B) {
	t := New(1)
	path := []uint32{2, 5, 6, 8}
	const n = 1 << 16
	for i := 0; i < n; i++ {
		t.Announce(netaddr.PrefixFor(8, i), path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netaddr.PrefixFor(8, i%n)
		t.Withdraw(p)
		t.Announce(p, path)
	}
}

// BenchmarkIntern measures a pool hit — the per-announcement interning
// cost once a path has been seen.
func BenchmarkIntern(b *testing.B) {
	pool := NewPool()
	path := []uint32{2, 5, 6, 8, 11, 13}
	h := pool.Intern(path)
	defer pool.Release(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Release(pool.Intern(path))
	}
}

// benchTableForUnions builds a 200k-prefix table: 50 unique paths over
// a shared trunk, 4k prefixes each — full-table shape at 1/3 scale.
func benchTableForUnions() *Table {
	t := New(1)
	for g := uint32(0); g < 50; g++ {
		path := []uint32{2, 5, 600 + g, 700 + g}
		for i := 0; i < 4000; i++ {
			t.Announce(netaddr.PrefixFor(100+g, i), path)
		}
	}
	return t
}

// BenchmarkPrefixesOnAny measures the reroute-path materialization: the
// union of prefixes across an inferred link set, built by grouping per
// path and expanding only matching groups (it must fit §6's 2s budget).
func BenchmarkPrefixesOnAny(b *testing.B) {
	t := benchTableForUnions()
	links := []topology.Link{topology.MakeLink(5, 600), topology.MakeLink(5, 601)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := t.PrefixesOnAny(links)
		if len(ps) != 8000 {
			b.Fatalf("union = %d, want 8000", len(ps))
		}
	}
}

// BenchmarkPrefixesOnAnyWide is the worst case: the shared trunk link,
// crossed by every path, materializing the whole table.
func BenchmarkPrefixesOnAnyWide(b *testing.B) {
	t := benchTableForUnions()
	links := []topology.Link{topology.MakeLink(2, 5)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := t.PrefixesOnAny(links)
		if len(ps) != 200000 {
			b.Fatalf("union = %d, want 200000", len(ps))
		}
	}
}

// BenchmarkCountOnSet measures the counting form the inference layer
// uses for Predicted: no materialization at all.
func BenchmarkCountOnSet(b *testing.B) {
	t := benchTableForUnions()
	var set LinkSet
	t.FillLinkSet(&set, []topology.Link{topology.MakeLink(5, 600), topology.MakeLink(5, 601)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := t.CountOnSet(&set); n != 8000 {
			b.Fatalf("count = %d", n)
		}
	}
}

// BenchmarkInternParallel measures the fleet-shared intern hot path
// under concurrency: every goroutine interns from the same overlapping
// path set, the read-mostly sharded pool resolving hits lock-free. On a
// multi-core host aggregate throughput should scale with GOMAXPROCS
// instead of serializing behind one pool mutex.
func BenchmarkInternParallel(b *testing.B) {
	pool := NewPool()
	paths := make([][]uint32, 64)
	var warm []PathHandle
	for i := range paths {
		paths[i] = []uint32{2, 5, uint32(600 + i), uint32(700 + i%8)}
		warm = append(warm, pool.Intern(paths[i]))
	}
	defer func() {
		for _, h := range warm {
			pool.Release(h)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h := pool.Intern(paths[i&63])
			pool.Release(h)
			i++
		}
	})
}

// BenchmarkInternChurnParallel is the worst case for the sharded pool:
// concurrent goroutines interning and fully releasing private paths, so
// every operation crosses a shard's locked slow path (slot allocation
// and free). This bounds the cost of the locked tier.
func BenchmarkInternChurnParallel(b *testing.B) {
	pool := NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			path := []uint32{2, 5, 1000 + i&255}
			h := pool.Intern(path)
			pool.Release(h)
			i++
		}
	})
}
