package rib

import (
	"math/rand"
	"sync"
	"testing"

	"swift/internal/netaddr"
	"swift/internal/topology"
)

// TestAnnounceDoesNotAliasCallerBuffer is the regression test for the
// old aliasing footgun: Announce used to store the caller's slice, so a
// buffer-reusing source (a BGP decoder) silently corrupted the RIB.
// Interning makes storage canonical — mutating the buffer after
// Announce must leave the table untouched.
func TestAnnounceDoesNotAliasCallerBuffer(t *testing.T) {
	tb := New(1)
	p := netaddr.PrefixFor(8, 0)
	buf := []uint32{2, 5, 6, 8}
	tb.Announce(p, buf)

	// Source reuses its buffer for the next message.
	buf[0], buf[1], buf[2], buf[3] = 9, 9, 9, 9

	got := tb.Path(p)
	want := []uint32{2, 5, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v, want %v (caller's buffer mutation leaked in)", got, want)
		}
	}
	// The link index must reflect the original path too.
	if tb.OnLink(link(5, 6)) != 1 || tb.OnLink(link(9, 9)) != 0 {
		t.Error("link counters follow the mutated buffer, not the canonical path")
	}
	// And a second prefix announcing the same (restored) content shares
	// the canonical copy.
	buf[0], buf[1], buf[2], buf[3] = 2, 5, 6, 8
	p2 := netaddr.PrefixFor(8, 1)
	tb.Announce(p2, buf)
	if tb.Pool().Len() != 1 {
		t.Errorf("pool holds %d paths, want 1 (identical paths must intern)", tb.Pool().Len())
	}
}

func TestWithdrawnPathSurvivesEntryReuse(t *testing.T) {
	tb := New(1)
	p := netaddr.PrefixFor(8, 0)
	tb.Announce(p, []uint32{2, 5, 6})
	old := tb.Withdraw(p) // frees the entry slot
	// Reuse the slot with a different path.
	tb.Announce(p, []uint32{3, 9})
	if len(old) != 3 || old[0] != 2 || old[1] != 5 || old[2] != 6 {
		t.Fatalf("withdrawn path corrupted by slot reuse: %v", old)
	}
}

func TestPoolRefcountLifecycle(t *testing.T) {
	pool := NewPool()
	a := NewWithPool(1, pool)
	b := NewWithPool(1, pool)

	// Two tables, overlapping paths: each unique path stored once.
	for i := 0; i < 100; i++ {
		a.Announce(netaddr.PrefixFor(8, i), []uint32{2, 5, 6, 8})
		b.Announce(netaddr.PrefixFor(8, i), []uint32{2, 5, 6, 8})
		b.Announce(netaddr.PrefixFor(7, i), []uint32{2, 5, 6, 7})
	}
	if got := pool.Len(); got != 2 {
		t.Fatalf("pool.Len() = %d, want 2 unique paths", got)
	}

	// Withdrawing every route returns the pool to baseline.
	for i := 0; i < 100; i++ {
		a.Withdraw(netaddr.PrefixFor(8, i))
		b.Withdraw(netaddr.PrefixFor(8, i))
		b.Withdraw(netaddr.PrefixFor(7, i))
	}
	if got := pool.Len(); got != 0 {
		t.Fatalf("pool.Len() = %d after withdrawing everything, want 0", got)
	}
	st := pool.Stats()
	if st.FreeSlots != 2 {
		t.Errorf("free slots = %d, want 2", st.FreeSlots)
	}
	// Links are never freed.
	if st.Links == 0 {
		t.Error("links must persist")
	}
}

func TestCloneRetainsAndReleaseReturns(t *testing.T) {
	pool := NewPool()
	tb := NewWithPool(1, pool)
	for i := 0; i < 50; i++ {
		tb.Announce(netaddr.PrefixFor(8, i), []uint32{2, 5, 6})
	}
	cp := tb.Clone()
	for i := 0; i < 50; i++ {
		tb.Withdraw(netaddr.PrefixFor(8, i))
	}
	// The clone still references the path.
	if pool.Len() != 1 {
		t.Fatalf("pool.Len() = %d with live clone, want 1", pool.Len())
	}
	if cp.Len() != 50 || cp.OnLink(link(5, 6)) != 50 {
		t.Error("clone lost state after original withdrew")
	}
	cp.Release()
	if pool.Len() != 0 {
		t.Fatalf("pool.Len() = %d after clone release, want 0", pool.Len())
	}
	if cp.Len() != 0 {
		t.Error("released table must be empty")
	}
}

func TestLongAndPrependedPaths(t *testing.T) {
	tb := New(1)
	// 24-hop path: longer than the old fixed 16-link scratch buffers.
	long := make([]uint32, 24)
	for i := range long {
		long[i] = uint32(100 + i)
	}
	p := netaddr.PrefixFor(8, 0)
	tb.Announce(p, long)
	if got := len(tb.Links(p)); got != 24 {
		t.Errorf("24-hop path yields %d links, want 24", got)
	}
	if tb.OnLink(topology.MakeLink(110, 111)) != 1 {
		t.Error("deep link not counted")
	}

	// Prepending dedups: {2,2,2,5} crosses (1,2) and (2,5) only.
	p2 := netaddr.PrefixFor(8, 1)
	tb.Announce(p2, []uint32{2, 2, 2, 5})
	if tb.OnLink(link(1, 2)) != 1 || tb.OnLink(link(2, 5)) != 1 {
		t.Error("prepended path miscounted")
	}
	if tb.OnLink(link(2, 2)) != 0 {
		t.Error("self-loop must not be a link")
	}

	// A path revisiting a link counts it once per prefix.
	p3 := netaddr.PrefixFor(8, 2)
	tb.Announce(p3, []uint32{2, 9, 2, 5})
	if got := tb.OnLink(link(2, 9)); got != 1 {
		t.Errorf("OnLink(2,9) = %d, want 1 (revisited link counted once)", got)
	}
}

// TestHeadEqualsLocalAS covers paths starting at the table's own AS:
// there is no local first-hop link to cross.
func TestHeadEqualsLocalAS(t *testing.T) {
	tb := New(1)
	p := netaddr.PrefixFor(8, 0)
	tb.Announce(p, []uint32{1, 2, 5})
	if tb.OnLink(link(1, 2)) != 1 || tb.OnLink(link(2, 5)) != 1 {
		t.Error("interior links of a local-headed path missing")
	}
	got := tb.PrefixesOnAny([]topology.Link{link(1, 2)})
	if len(got) != 1 || got[0] != p {
		t.Errorf("PrefixesOnAny = %v", got)
	}
}

// TestRandomizedPoolBaseline announces and withdraws random routes,
// then drains the table and checks the pool returns to empty — the
// refcount-leak property on a messier schedule than the lifecycle test.
func TestRandomizedPoolBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := NewPool()
	tb := NewWithPool(1, pool)
	paths := [][]uint32{
		{2, 5, 6}, {2, 5, 6, 8}, {3, 6}, {3, 6, 8}, {2, 2, 5}, {4, 7, 9, 11},
	}
	for i := 0; i < 5000; i++ {
		p := netaddr.PrefixFor(uint32(2+rng.Intn(6)), rng.Intn(40))
		if rng.Intn(3) == 0 {
			tb.Withdraw(p)
		} else {
			tb.Announce(p, paths[rng.Intn(len(paths))])
		}
	}
	tb.ForEach(func(p netaddr.Prefix, _ []uint32) {}) // smoke: no corruption
	var all []netaddr.Prefix
	tb.ForEach(func(p netaddr.Prefix, _ []uint32) { all = append(all, p) })
	for _, p := range all {
		tb.Withdraw(p)
	}
	if tb.Len() != 0 {
		t.Fatalf("table not drained: %d", tb.Len())
	}
	if pool.Len() != 0 {
		t.Fatalf("pool leaks %d paths after drain", pool.Len())
	}
	for _, l := range tb.ActiveLinks() {
		t.Errorf("active link %v on empty table", l)
	}
}

// TestPoolConcurrentInternRelease hammers one pool from many
// goroutines interning, retaining and releasing a mix of overlapping
// and goroutine-private paths. Invariants: handles always resolve to
// the path that was interned (no slot aliasing through stale
// snapshots), refcounts never double-free (no panic), and the pool
// returns to empty once every reference is dropped.
func TestPoolConcurrentInternRelease(t *testing.T) {
	pool := NewPool()
	const goroutines = 8
	const rounds = 3000

	shared := [][]uint32{
		{2, 5, 6}, {2, 5, 6, 8}, {3, 6}, {2, 9, 6}, {4, 7, 9},
	}
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			private := []uint32{100 + uint32(g), 200 + uint32(g), 300 + uint32(g)}
			var held []PathHandle
			for i := 0; i < rounds; i++ {
				var path []uint32
				if rng.Intn(3) == 0 {
					path = private
				} else {
					path = shared[rng.Intn(len(shared))]
				}
				h := pool.Intern(path)
				got := h.Path()
				if len(got) != len(path) {
					errs <- "interned path length mismatch"
					return
				}
				for j := range path {
					if got[j] != path[j] {
						errs <- "interned path content mismatch (stale snapshot aliasing)"
						return
					}
				}
				// Churn: hold some handles, release others right away,
				// and sometimes retain+release to exercise the
				// revive-vs-free race.
				switch rng.Intn(4) {
				case 0:
					held = append(held, h)
				case 1:
					pool.Retain(h, 2)
					pool.ReleaseN(h, 3)
				default:
					pool.Release(h)
				}
				if len(held) > 16 {
					pool.Release(held[0])
					held = held[1:]
				}
			}
			for _, h := range held {
				pool.Release(h)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if n := pool.Len(); n != 0 {
		t.Fatalf("pool leaks %d paths after concurrent churn", n)
	}
	st := pool.Stats()
	if st.Paths != 0 {
		t.Fatalf("Stats.Paths = %d, want 0", st.Paths)
	}
	if st.Links == 0 {
		t.Error("links must persist after churn")
	}
}

// TestPoolConcurrentTables runs per-goroutine tables against one shared
// pool — the fleet shape — and checks cross-table interning plus the
// leak baseline after every table drains.
func TestPoolConcurrentTables(t *testing.T) {
	pool := NewPool()
	const tables = 6
	var wg sync.WaitGroup
	for g := 0; g < tables; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			tb := NewWithPool(1, pool)
			paths := [][]uint32{
				{2, 5, 6}, {2, 5, 6, 8}, {3, 6}, {3, 6, 8}, {2, 9, 6},
			}
			for i := 0; i < 4000; i++ {
				p := netaddr.PrefixFor(uint32(2+rng.Intn(6)), rng.Intn(50))
				if rng.Intn(3) == 0 {
					tb.Withdraw(p)
				} else {
					tb.Announce(p, paths[rng.Intn(len(paths))])
				}
			}
			var all []netaddr.Prefix
			tb.ForEach(func(p netaddr.Prefix, _ []uint32) { all = append(all, p) })
			for _, p := range all {
				tb.Withdraw(p)
			}
			if tb.Len() != 0 {
				t.Error("table not drained")
			}
		}(g)
	}
	wg.Wait()
	if n := pool.Len(); n != 0 {
		t.Fatalf("pool leaks %d paths after all tables drained", n)
	}
}

// TestPoolStatsShardBalance checks the shard-balance view: distinct
// paths spread across shards, and the per-shard counts sum to the
// total.
func TestPoolStatsShardBalance(t *testing.T) {
	pool := NewPool()
	var held []PathHandle
	const n = 512
	for i := 0; i < n; i++ {
		held = append(held, pool.Intern([]uint32{2, 5, uint32(1000 + i)}))
	}
	st := pool.Stats()
	if st.Paths != n {
		t.Fatalf("Stats.Paths = %d, want %d", st.Paths, n)
	}
	sum, occupied := 0, 0
	for _, c := range st.ShardPaths {
		sum += c
		if c > 0 {
			occupied++
		}
	}
	if sum != n {
		t.Fatalf("shard counts sum to %d, want %d", sum, n)
	}
	if occupied < st.Shards()/2 {
		t.Errorf("only %d of %d shards occupied for %d distinct paths — degenerate shard hash", occupied, st.Shards(), n)
	}
	for _, h := range held {
		pool.Release(h)
	}
	if pool.Len() != 0 {
		t.Fatal("pool must drain")
	}
}
