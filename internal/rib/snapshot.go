package rib

import (
	"fmt"
	"sort"

	"swift/internal/netaddr"
	"swift/internal/topology"
)

// This file is the RIB half of the warm-restart path: the pool and the
// per-session tables export their steady state into plain canonical
// images, and an empty pool/table rebuilds from them reusing the
// original dense PathIDs and LinkIDs — no re-interning, so every
// per-PathID slice, per-LinkID counter, compiled scheme and provisioned
// FIB restored alongside stays valid verbatim.
//
// Images are canonical: slices are sorted by their dense id (paths,
// links) or by prefix (routes), so exporting the same logical state
// twice yields identical images however the underlying maps happened
// to iterate. That is what lets the snapshot round-trip test demand
// byte-identical re-serialization.

// PathImage is one interned path pinned to its original dense id.
type PathImage struct {
	ID   PathID
	Path []uint32
}

// PoolImage is the interned state of a Pool: the append-only link
// numbering (Links[0] is the reserved zero link) and every live path
// with its dense id, ascending.
type PoolImage struct {
	Links []topology.Link
	Paths []PathImage
}

// Export captures the pool's live paths and link numbering. Shards are
// locked one at a time; callers wanting a consistent cut must quiesce
// writers first (the fleet snapshot path holds every peer lock).
func (p *Pool) Export() PoolImage {
	links := *p.linkSnap.Load()
	img := PoolImage{Links: append([]topology.Link(nil), links...)}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, e := range sh.byKey {
			img.Paths = append(img.Paths, PathImage{ID: e.id, Path: append([]uint32(nil), e.path...)})
		}
		sh.mu.Unlock()
	}
	sort.Slice(img.Paths, func(i, j int) bool { return img.Paths[i].ID < img.Paths[j].ID })
	return img
}

// Restore rebuilds an empty pool from img, placing every path at its
// original dense id with a zero refcount and numbering links in their
// original order. Tables restored afterwards look entries up through
// the transient restore index and take their references; a final
// PruneUnreferenced drops whatever no table claimed and closes the
// restore window.
func (p *Pool) Restore(img PoolImage) error {
	if p.Len() != 0 || p.NumLinks() != 0 {
		return fmt.Errorf("rib: restore into non-empty pool (%d paths, %d links)", p.Len(), p.NumLinks())
	}
	if len(img.Links) > 0 && img.Links[0] != (topology.Link{}) {
		return fmt.Errorf("rib: restore: link 0 is not the reserved zero link")
	}
	for i := 1; i < len(img.Links); i++ {
		if id := p.LinkID(img.Links[i]); id != LinkID(i) {
			return fmt.Errorf("rib: restore: link %v numbered %d, want %d (duplicate link in image?)",
				img.Links[i], id, i)
		}
	}
	p.restoreIdx = make(map[PathID]*pathEntry, len(img.Paths))
	var prev PathID
	for n, pi := range img.Paths {
		if pi.ID == 0 {
			return fmt.Errorf("rib: restore: path image uses reserved id 0")
		}
		if n > 0 && pi.ID <= prev {
			return fmt.Errorf("rib: restore: path ids not strictly ascending at %d", pi.ID)
		}
		prev = pi.ID
		si := uint32(pi.ID) & poolShardMask
		if shardOfPath(pi.Path) != si {
			return fmt.Errorf("rib: restore: path id %d not in its content shard", pi.ID)
		}
		var stack [pathKeyStack]byte
		key := appendPathKey(stack[:0], pi.Path)
		sh := &p.shards[si]
		sh.mu.Lock()
		if _, dup := sh.byKey[string(key)]; dup {
			sh.mu.Unlock()
			return fmt.Errorf("rib: restore: duplicate path content at id %d", pi.ID)
		}
		e := &pathEntry{id: pi.ID}
		e.path = append([]uint32(nil), pi.Path...)
		e.hash = fnv64(key)
		e.links = p.interiorLinks(nil, e.path)
		sh.byKey[string(key)] = e
		sh.live++
		sh.dirty++
		if slot := uint32(pi.ID) >> poolShardBits; slot >= sh.next {
			sh.next = slot + 1
		}
		sh.mu.Unlock()
		p.live.Add(1)
		p.restoreIdx[pi.ID] = e
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.publishLocked(true)
		sh.mu.Unlock()
	}
	return nil
}

// restoredEntry resolves a dense id through the restore index — only
// valid between Restore and PruneUnreferenced.
func (p *Pool) restoredEntry(id PathID) (*pathEntry, bool) {
	e, ok := p.restoreIdx[id]
	return e, ok
}

// PruneUnreferenced ends a restore window: every restored entry no
// table claimed a reference on is freed (its slot queued for reuse),
// and the restore index is dropped. Returns the number pruned.
func (p *Pool) PruneUnreferenced() int {
	p.restoreIdx = nil
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for k, e := range sh.byKey {
			if e.refs.Load() == 0 && !e.freed {
				delete(sh.byKey, k)
				e.freed = true
				e.path = nil
				sh.free = append(sh.free, e)
				sh.live--
				sh.dirty++
				p.live.Add(-1)
				n++
			}
		}
		sh.publishLocked(true)
		sh.mu.Unlock()
	}
	return n
}

// RouteImage is one installed route by dense path id.
type RouteImage struct {
	Prefix netaddr.Prefix
	Path   PathID
}

// TableImage is a session table's routes, ascending by prefix. The
// per-path groups, link counters and content signature are derivable
// and rebuilt on restore.
type TableImage struct {
	LocalAS uint32
	Routes  []RouteImage
}

// Export captures the table's installed routes. Not concurrency-safe;
// the caller owns the table like any other accessor.
func (t *Table) Export() TableImage {
	img := TableImage{LocalAS: t.localAS, Routes: make([]RouteImage, 0, t.routes.Len())}
	t.routes.ForEach(func(p netaddr.Prefix, ref routeRef) {
		img.Routes = append(img.Routes, RouteImage{Prefix: p, Path: ref.pid})
	})
	sort.Slice(img.Routes, func(i, j int) bool { return img.Routes[i].Prefix < img.Routes[j].Prefix })
	return img
}

// RestoreRoutes replays img into an empty table whose pool is inside a
// restore window (Pool.Restore ran, PruneUnreferenced has not). Each
// route takes one reference on its restored entry, exactly like a live
// Announce, so link counters, per-path groups and the signature come
// out identical to the exported table's.
func (t *Table) RestoreRoutes(img TableImage) error {
	if t.Len() != 0 {
		return fmt.Errorf("rib: restore into non-empty table (%d routes)", t.Len())
	}
	if img.LocalAS != t.localAS {
		return fmt.Errorf("rib: restore: table local AS %d, image %d", t.localAS, img.LocalAS)
	}
	// The link observer is muted for the replay: a restoring engine
	// discards its tracker state afterwards anyway (the inference
	// tracker is deliberately not part of the snapshot), and firing the
	// callback once per link of every restored route is a measurable
	// slice of a 100k-route warm restart.
	saved := t.onLinkChange
	t.onLinkChange = nil
	defer func() { t.onLinkChange = saved }()
	t.routes.Reserve(len(img.Routes))
	for _, r := range img.Routes {
		e, ok := t.pool.restoredEntry(r.Path)
		if !ok {
			return fmt.Errorf("rib: restore: route %v names unknown path id %d", r.Prefix, r.Path)
		}
		if _, dup := t.routes.Get(r.Prefix); dup {
			return fmt.Errorf("rib: restore: duplicate route for prefix %v", r.Prefix)
		}
		e.refs.Add(1)
		t.addRoute(r.Prefix, e)
	}
	return nil
}
