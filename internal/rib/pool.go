package rib

import (
	"sync"
	"sync/atomic"

	"swift/internal/topology"
)

// PathID is a dense identifier for one canonical interned AS path.
// IDs are pool-scoped: every Table sharing a Pool agrees on them, which
// is what lets per-table state (prefix groups, counters) live in plain
// slices indexed by PathID. ID 0 is reserved and never names a path.
//
// The pool is sharded; the low poolShardBits of an id name the shard
// that owns the path, the rest is the shard-local slot. IDs therefore
// stay dense up to a small constant factor (the shard imbalance), which
// is all per-table slice indexing needs.
type PathID uint32

// LinkID is a dense identifier for one AS link. Like PathID it is
// pool-scoped, so per-link counters are array lookups instead of map
// probes. ID 0 is reserved; links are never freed (their cardinality is
// bounded by the topology, not the table size).
type LinkID uint32

const (
	// poolShardBits sizes the intern shard count. 16 shards keep a
	// fleet of per-peer sessions from serializing behind one lock while
	// adding at most 4 bits of PathID sparsity.
	poolShardBits = 4
	poolShards    = 1 << poolShardBits
	poolShardMask = poolShards - 1

	// pathKeyStack is the stack budget for building probe keys (4 bytes
	// per AS hop). Longer paths fall back to a heap append — they are
	// beyond any plausible AS path already.
	pathKeyStack = 256
)

// pathEntry is one canonical interned path. The path and links fields
// are written under the owning shard's lock before any handle escapes
// and never mutated while a reference is held, so holders may read them
// without locking. refs is atomic: retain and release never take a lock
// unless the count hits zero.
type pathEntry struct {
	id   PathID
	refs atomic.Int32
	// freed marks an entry whose slot is on the shard free list. It is
	// guarded by the shard lock and makes the release-to-zero path
	// idempotent when a revived-then-re-released entry has several
	// pending zero checks queued on the lock.
	freed bool
	// path is the canonical AS sequence (neighbor first). It is dropped
	// (not recycled) when the entry is freed, so slices handed out while
	// the entry was live can never be overwritten by a later intern.
	path []uint32
	// hash is a 64-bit content hash of path, computed once at intern.
	// Tables fold it into their route signature — content-addressed, so
	// PathID slot recycling cannot alias two different paths.
	hash uint64
	// links are the path's interior AS links — MakeLink over consecutive
	// distinct ASes of path, deduplicated — as dense IDs. The local
	// first-hop link (localAS, path[0]) is per-table (tables differ in
	// localAS) and therefore not part of the shared entry; Table
	// resolves it through its firstLink cache.
	links []LinkID
}

// acquire takes one reference iff the entry is currently referenced.
// It is the lock-free half of the read-mostly intern: a zero count
// means a release is (or may be) freeing the entry, and the caller must
// fall back to the locked path. A successful CAS from a positive count
// cannot race a free: the zero check runs under the shard lock, and no
// reference can appear during the free's critical section.
func (e *pathEntry) acquire() bool {
	for {
		r := e.refs.Load()
		if r <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// PathHandle is a borrowed or owned reference to an interned path.
// Handles returned by Pool.Intern and Table.WithdrawHandle own one
// reference and must be released exactly once; handles returned by
// Table.HandleOf borrow the table's reference and are valid only while
// the route stays installed.
type PathHandle struct{ e *pathEntry }

// Valid reports whether the handle names a path.
func (h PathHandle) Valid() bool { return h.e != nil }

// ID returns the dense path identifier.
func (h PathHandle) ID() PathID { return h.e.id }

// Path returns the canonical AS path. The slice is owned by the pool
// and immutable while the handle's reference is held.
func (h PathHandle) Path() []uint32 { return h.e.path }

// Head returns the first AS of the path (the session neighbor), or
// false for the empty path.
func (h PathHandle) Head() (uint32, bool) {
	if len(h.e.path) == 0 {
		return 0, false
	}
	return h.e.path[0], true
}

// InteriorLinkIDs returns the path's interior links (everything except
// the per-table local first-hop link), deduplicated. The slice is owned
// by the pool and immutable while the handle's reference is held.
func (h PathHandle) InteriorLinkIDs() []LinkID { return h.e.links }

// poolShard is one intern stripe. byKey is the authoritative index,
// guarded by mu; snap is a read-mostly copy published for lock-free
// probes and refreshed by the publication policy below. The pad keeps
// neighboring shards' hot state off one cache line.
type poolShard struct {
	mu    sync.Mutex
	byKey map[string]*pathEntry
	snap  atomic.Pointer[map[string]*pathEntry]
	// dirty counts mutations (inserts + frees) since the last publish;
	// misses counts locked probes that found an entry the snapshot does
	// not have yet. Either crossing its threshold triggers a republish.
	dirty  int
	misses int
	free   []*pathEntry
	next   uint32 // next fresh shard-local slot
	live   int
	_      [24]byte
}

// publishLocked decides whether the mutation pressure warrants cloning
// the authoritative map into a fresh snapshot. Tiny shards republish on
// every mutation (the clone is trivial); everything else amortizes the
// O(n) clone over n/8 mutations — sustained churn costs O(1) amortized
// per operation — with the miss counter short-circuiting when a
// not-yet-published path turns hot on the locked probe path.
func (s *poolShard) publishLocked(force bool) {
	n := len(s.byKey)
	if !force && n > 64 && s.dirty*8 < n && s.misses < 16 {
		return
	}
	m := make(map[string]*pathEntry, n)
	for k, e := range s.byKey {
		m[k] = e
	}
	s.snap.Store(&m)
	s.dirty = 0
	s.misses = 0
}

// Pool deduplicates AS paths and AS links into refcounted, densely
// numbered entries. Real tables carry far fewer unique paths than
// prefixes, so one Pool shared across a fleet of per-peer tables stores
// each path once regardless of how many prefixes — on how many peers —
// announce it.
//
// The pool is built for concurrent fleets: paths are sharded by a hash
// of their content, interning an already-known path is lock-free (a
// published-snapshot probe plus one refcount CAS), and retain/release
// never lock until a count hits zero. Entry contents reachable through
// a held PathHandle are immutable and may be read without any
// synchronization; the link table is an append-only array published by
// atomic snapshot, so LinkAt never locks either.
type Pool struct {
	shards [poolShards]poolShard
	live   atomic.Int64

	linkMu   sync.RWMutex
	linkIDs  map[topology.Link]LinkID
	links    []topology.Link // append-only backing; linkSnap publishes it
	linkSnap atomic.Pointer[[]topology.Link]

	// restoreIdx maps dense ids to entries during a snapshot-restore
	// window (Restore sets it, PruneUnreferenced clears it); tables
	// rebuilt from images resolve their PathIDs through it. Single
	// restoring goroutine only.
	restoreIdx map[PathID]*pathEntry
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	p := &Pool{linkIDs: make(map[topology.Link]LinkID)}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.byKey = make(map[string]*pathEntry)
		empty := make(map[string]*pathEntry)
		sh.snap.Store(&empty)
	}
	p.shards[0].next = 1 // PathID 0 is reserved
	p.links = make([]topology.Link, 1, 64)
	snap := p.links
	p.linkSnap.Store(&snap)
	return p
}

// appendPathKey encodes path into dst (4 little-endian bytes per hop).
func appendPathKey(dst []byte, path []uint32) []byte {
	for _, as := range path {
		dst = append(dst, byte(as), byte(as>>8), byte(as>>16), byte(as>>24))
	}
	return dst
}

// fnv64 is FNV-1a over the probe key — the path content hash stored on
// every entry.
func fnv64(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// SigMix is the signature finalizer (splitmix64): tables and engines
// fold per-route and per-table hashes through it so XOR accumulation
// stays collision-resistant under real update streams.
func SigMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardOfPath hashes path content to its owning shard (FNV-1a over the
// hops, one round per AS).
func shardOfPath(path []uint32) uint32 {
	h := uint32(2166136261)
	for _, as := range path {
		h = (h ^ as) * 16777619
	}
	return h & poolShardMask
}

// Intern returns an owned handle for the canonical copy of path,
// creating the entry on first sight. Interning an already-known path is
// lock-free — a snapshot probe plus one refcount CAS — so concurrent
// sessions announcing overlapping paths do not serialize. It is also
// allocation-free: the probe key is built on the stack and the
// canonical copy is shared. The caller's slice is never retained —
// callers may reuse or mutate it freely afterwards.
func (p *Pool) Intern(path []uint32) PathHandle {
	var stack [pathKeyStack]byte
	key := appendPathKey(stack[:0], path)
	si := shardOfPath(path)
	sh := &p.shards[si]
	if e, ok := (*sh.snap.Load())[string(key)]; ok && e.acquire() {
		// The snapshot may be stale: the slot could have been freed and
		// re-interned as a different path since it was published.
		// Validate the content; on mismatch undo the acquire (a full
		// release — the entry may legitimately die here) and take the
		// locked path.
		if pathsEqual(e.path, path) {
			return PathHandle{e}
		}
		p.ReleaseN(PathHandle{e}, 1)
	}
	return p.internSlow(si, key, path)
}

func (p *Pool) internSlow(si uint32, key []byte, path []uint32) PathHandle {
	sh := &p.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.byKey[string(key)]; ok {
		// A plain increment is safe under the lock: a pending
		// release-to-zero aborts its free once it sees refs != 0.
		e.refs.Add(1)
		sh.misses++
		sh.publishLocked(false)
		return PathHandle{e}
	}
	var e *pathEntry
	if n := len(sh.free); n > 0 {
		e = sh.free[n-1]
		sh.free = sh.free[:n-1]
		e.freed = false
	} else {
		e = &pathEntry{id: PathID(sh.next<<poolShardBits) | PathID(si)}
		sh.next++
	}
	// Content first, refcount last: a lock-free prober holding a stale
	// snapshot that still maps some key to this revived slot gates on
	// acquire() — publishing refs only after path/hash/links are written
	// means a successful acquire can never observe a half-built entry.
	e.path = append([]uint32(nil), path...)
	e.hash = fnv64(key)
	e.links = p.interiorLinks(e.links[:0], e.path)
	e.refs.Store(1)
	sh.byKey[string(key)] = e
	sh.live++
	sh.dirty++
	sh.publishLocked(false)
	p.live.Add(1)
	return PathHandle{e}
}

// Retain adds n references to the handle's entry (Clone bulk-retains
// one per copied route). Lock-free: the caller already holds a
// reference, so the entry cannot be freed concurrently.
func (p *Pool) Retain(h PathHandle, n int) {
	h.e.refs.Add(int32(n))
}

// Release drops one reference. When the last reference goes, the entry
// is unindexed and its slot queued for reuse; the canonical path slice
// is abandoned to the garbage collector so previously returned slices
// stay intact.
func (p *Pool) Release(h PathHandle) { p.ReleaseN(h, 1) }

// ReleaseN drops n references at once (Table.Release bulk-returns one
// per dropped route). The decrement is lock-free; only a drop to zero
// takes the shard lock to free the slot, and that free aborts if a
// concurrent Intern revived the entry in the meantime.
func (p *Pool) ReleaseN(h PathHandle, n int) {
	e := h.e
	r := e.refs.Add(int32(-n))
	if r > 0 {
		return
	}
	if r < 0 {
		panic("rib: path over-released")
	}
	sh := &p.shards[e.id&poolShardMask]
	sh.mu.Lock()
	if e.refs.Load() == 0 && !e.freed {
		var stack [pathKeyStack]byte
		delete(sh.byKey, string(appendPathKey(stack[:0], e.path)))
		e.freed = true
		e.path = nil
		sh.free = append(sh.free, e)
		sh.live--
		sh.dirty++
		sh.publishLocked(false)
		p.live.Add(-1)
	}
	sh.mu.Unlock()
}

// interiorLinks appends the deduplicated interior links of path:
// MakeLink over consecutive distinct ASes, skipping prepending runs.
func (p *Pool) interiorLinks(dst []LinkID, path []uint32) []LinkID {
	if len(path) == 0 {
		return dst
	}
	prev := path[0]
	for _, as := range path[1:] {
		if as == prev {
			continue // AS-path prepending
		}
		id := p.LinkID(topology.MakeLink(prev, as))
		prev = as
		if !containsLinkID(dst, id) {
			dst = append(dst, id)
		}
	}
	return dst
}

func containsLinkID(ids []LinkID, id LinkID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// LinkID returns (creating if needed) the dense id of l. The known-link
// path takes a read lock only.
func (p *Pool) LinkID(l topology.Link) LinkID {
	p.linkMu.RLock()
	id, ok := p.linkIDs[l]
	p.linkMu.RUnlock()
	if ok {
		return id
	}
	return p.linkIDSlow(l)
}

func (p *Pool) linkIDSlow(l topology.Link) LinkID {
	p.linkMu.Lock()
	defer p.linkMu.Unlock()
	if id, ok := p.linkIDs[l]; ok {
		return id
	}
	if len(p.links) == cap(p.links) {
		// Grow into a fresh backing array; snapshots handed out earlier
		// keep reading the old one.
		grown := make([]topology.Link, len(p.links), 2*cap(p.links))
		copy(grown, p.links)
		p.links = grown
	}
	id := LinkID(len(p.links))
	p.links = append(p.links, l)
	p.linkIDs[l] = id
	// Publish a header with the new length. In-place appends are safe:
	// older snapshots have a shorter len over the same backing, and the
	// element write happens-before the snapshot store.
	snap := p.links
	p.linkSnap.Store(&snap)
	return id
}

// LookupLink returns the dense id of l without creating one.
func (p *Pool) LookupLink(l topology.Link) (LinkID, bool) {
	p.linkMu.RLock()
	id, ok := p.linkIDs[l]
	p.linkMu.RUnlock()
	return id, ok
}

// LinkAt returns the link named by id (the zero Link for id 0 or out of
// range). Lock-free: it reads the published link-array snapshot.
func (p *Pool) LinkAt(id LinkID) topology.Link {
	snap := *p.linkSnap.Load()
	if int(id) >= len(snap) {
		return topology.Link{}
	}
	return snap[id]
}

// Len returns the number of live (referenced) paths — the leak-check
// observable: after every route referencing a path is withdrawn and
// every tracker reset, Len returns to its baseline.
func (p *Pool) Len() int { return int(p.live.Load()) }

// NumLinks returns how many distinct links the pool has numbered.
// Links are never freed.
func (p *Pool) NumLinks() int {
	return len(*p.linkSnap.Load()) - 1
}

// PoolStats summarizes a pool's occupancy for memory accounting and
// shard-balance inspection.
type PoolStats struct {
	// Paths is the live (referenced) path count.
	Paths int
	// FreeSlots is how many freed entry slots await reuse.
	FreeSlots int
	// Links is the numbered link count (never shrinks).
	Links int
	// ShardPaths is the live path count per intern shard — the
	// load-balance view. A heavily skewed distribution means the shard
	// hash is degenerate for the workload and interning is serializing
	// again.
	ShardPaths [poolShards]int
}

// Shards returns the pool's shard count.
func (PoolStats) Shards() int { return poolShards }

// MaxShardPaths returns the most-loaded shard's live path count. With
// Paths/Shards() as the mean, max/mean is the imbalance factor the ops
// plane exports: near 1 means interning is spreading, far above 1 means
// the shard hash has gone degenerate for the workload and the pool is
// serializing again.
func (st PoolStats) MaxShardPaths() int {
	m := 0
	for _, n := range st.ShardPaths {
		if n > m {
			m = n
		}
	}
	return m
}

// Stats snapshots the pool. Shards are locked one at a time, so the
// snapshot is per-shard consistent but not a global atomic cut.
func (p *Pool) Stats() PoolStats {
	var st PoolStats
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		st.ShardPaths[i] = sh.live
		st.Paths += sh.live
		st.FreeSlots += len(sh.free)
		sh.mu.Unlock()
	}
	st.Links = p.NumLinks()
	return st
}

// LinkSet is a reusable dense membership set over LinkIDs — the shape
// the inference layer passes to the union/materialization queries so a
// path's links test against an inferred set by array lookup.
type LinkSet struct {
	mark []bool
	ids  []LinkID
}

// Reset empties the set, keeping capacity.
func (s *LinkSet) Reset() {
	for _, id := range s.ids {
		s.mark[id] = false
	}
	s.ids = s.ids[:0]
}

// Add inserts id.
func (s *LinkSet) Add(id LinkID) {
	if int(id) >= len(s.mark) {
		grown := make([]bool, int(id)+1)
		copy(grown, s.mark)
		s.mark = grown
	}
	if !s.mark[id] {
		s.mark[id] = true
		s.ids = append(s.ids, id)
	}
}

// Has reports membership.
func (s *LinkSet) Has(id LinkID) bool {
	return int(id) < len(s.mark) && s.mark[id]
}

// Len returns the member count.
func (s *LinkSet) Len() int { return len(s.ids) }
