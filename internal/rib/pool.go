package rib

import (
	"sync"

	"swift/internal/topology"
)

// PathID is a dense identifier for one canonical interned AS path.
// IDs are pool-scoped: every Table sharing a Pool agrees on them, which
// is what lets per-table state (prefix groups, counters) live in plain
// slices indexed by PathID. ID 0 is reserved and never names a path.
type PathID uint32

// LinkID is a dense identifier for one AS link. Like PathID it is
// pool-scoped, so per-link counters are array lookups instead of map
// probes. ID 0 is reserved; links are never freed (their cardinality is
// bounded by the topology, not the table size).
type LinkID uint32

// pathEntry is one canonical interned path. The path and links fields
// are written once under the pool lock before any handle escapes and
// never mutated while a reference is held, so holders may read them
// without locking.
type pathEntry struct {
	id   PathID
	refs int32
	// path is the canonical AS sequence (neighbor first). It is dropped
	// (not recycled) when the entry is freed, so slices handed out while
	// the entry was live can never be overwritten by a later intern.
	path []uint32
	// links are the path's interior AS links — MakeLink over consecutive
	// distinct ASes of path, deduplicated — as dense IDs. The local
	// first-hop link (localAS, path[0]) is per-table (tables differ in
	// localAS) and therefore not part of the shared entry; Table
	// resolves it through its firstLink cache.
	links []LinkID
}

// PathHandle is a borrowed or owned reference to an interned path.
// Handles returned by Pool.Intern and Table.WithdrawHandle own one
// reference and must be released exactly once; handles returned by
// Table.HandleOf borrow the table's reference and are valid only while
// the route stays installed.
type PathHandle struct{ e *pathEntry }

// Valid reports whether the handle names a path.
func (h PathHandle) Valid() bool { return h.e != nil }

// ID returns the dense path identifier.
func (h PathHandle) ID() PathID { return h.e.id }

// Path returns the canonical AS path. The slice is owned by the pool
// and immutable while the handle's reference is held.
func (h PathHandle) Path() []uint32 { return h.e.path }

// Head returns the first AS of the path (the session neighbor), or
// false for the empty path.
func (h PathHandle) Head() (uint32, bool) {
	if len(h.e.path) == 0 {
		return 0, false
	}
	return h.e.path[0], true
}

// InteriorLinkIDs returns the path's interior links (everything except
// the per-table local first-hop link), deduplicated. The slice is owned
// by the pool and immutable while the handle's reference is held.
func (h PathHandle) InteriorLinkIDs() []LinkID { return h.e.links }

// Pool deduplicates AS paths and AS links into refcounted, densely
// numbered entries. Real tables carry far fewer unique paths than
// prefixes, so one Pool shared across a fleet of per-peer tables stores
// each path once regardless of how many prefixes — on how many peers —
// announce it.
//
// All methods are safe for concurrent use; entry contents reachable
// through a held PathHandle are immutable and may be read lock-free.
type Pool struct {
	mu      sync.Mutex
	entries []*pathEntry // indexed by PathID; entries[0] is nil
	free    []PathID     // freed entry slots awaiting reuse
	byKey   map[string]PathID
	live    int

	links   []topology.Link // indexed by LinkID; links[0] is the zero Link
	linkIDs map[topology.Link]LinkID

	keyBuf []byte // scratch for allocation-free map probes
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		entries: make([]*pathEntry, 1),
		byKey:   make(map[string]PathID),
		links:   make([]topology.Link, 1),
		linkIDs: make(map[topology.Link]LinkID),
	}
}

// pathKeyLocked encodes path into the scratch key buffer. The returned
// slice is only valid until the next call.
func (p *Pool) pathKeyLocked(path []uint32) []byte {
	b := p.keyBuf[:0]
	for _, as := range path {
		b = append(b, byte(as), byte(as>>8), byte(as>>16), byte(as>>24))
	}
	p.keyBuf = b
	return b
}

// Intern returns an owned handle for the canonical copy of path,
// creating the entry on first sight. Interning an already-known path is
// allocation-free: the probe key is built in a scratch buffer and the
// canonical copy is shared. The caller's slice is never retained —
// callers may reuse or mutate it freely afterwards.
func (p *Pool) Intern(path []uint32) PathHandle {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := p.pathKeyLocked(path)
	if id, ok := p.byKey[string(key)]; ok {
		e := p.entries[id]
		e.refs++
		return PathHandle{e}
	}
	var e *pathEntry
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		e = p.entries[id]
	} else {
		e = &pathEntry{id: PathID(len(p.entries))}
		p.entries = append(p.entries, e)
	}
	e.refs = 1
	e.path = append([]uint32(nil), path...)
	e.links = p.interiorLinksLocked(e.links[:0], e.path)
	p.byKey[string(key)] = e.id
	p.live++
	return PathHandle{e}
}

// Retain adds n references to the handle's entry (Clone bulk-retains
// one per copied route).
func (p *Pool) Retain(h PathHandle, n int) {
	p.mu.Lock()
	h.e.refs += int32(n)
	p.mu.Unlock()
}

// Release drops one reference. When the last reference goes, the entry
// is unindexed and its slot queued for reuse; the canonical path slice
// is abandoned to the garbage collector so previously returned slices
// stay intact.
func (p *Pool) Release(h PathHandle) { p.ReleaseN(h, 1) }

// ReleaseN drops n references at once (Table.Release bulk-returns one
// per dropped route).
func (p *Pool) ReleaseN(h PathHandle, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := h.e
	e.refs -= int32(n)
	if e.refs > 0 {
		return
	}
	if e.refs < 0 {
		panic("rib: path over-released")
	}
	delete(p.byKey, string(p.pathKeyLocked(e.path)))
	e.path = nil
	p.free = append(p.free, e.id)
	p.live--
}

// interiorLinksLocked appends the deduplicated interior links of path:
// MakeLink over consecutive distinct ASes, skipping prepending runs.
func (p *Pool) interiorLinksLocked(dst []LinkID, path []uint32) []LinkID {
	if len(path) == 0 {
		return dst
	}
	prev := path[0]
	for _, as := range path[1:] {
		if as == prev {
			continue // AS-path prepending
		}
		id := p.linkIDLocked(topology.MakeLink(prev, as))
		prev = as
		if !containsLinkID(dst, id) {
			dst = append(dst, id)
		}
	}
	return dst
}

func containsLinkID(ids []LinkID, id LinkID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func (p *Pool) linkIDLocked(l topology.Link) LinkID {
	if id, ok := p.linkIDs[l]; ok {
		return id
	}
	id := LinkID(len(p.links))
	p.links = append(p.links, l)
	p.linkIDs[l] = id
	return id
}

// LinkID returns (creating if needed) the dense id of l.
func (p *Pool) LinkID(l topology.Link) LinkID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.linkIDLocked(l)
}

// LookupLink returns the dense id of l without creating one.
func (p *Pool) LookupLink(l topology.Link) (LinkID, bool) {
	p.mu.Lock()
	id, ok := p.linkIDs[l]
	p.mu.Unlock()
	return id, ok
}

// LinkAt returns the link named by id (the zero Link for id 0 or out of
// range).
func (p *Pool) LinkAt(id LinkID) topology.Link {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.links) {
		return topology.Link{}
	}
	return p.links[id]
}

// Len returns the number of live (referenced) paths — the leak-check
// observable: after every route referencing a path is withdrawn and
// every tracker reset, Len returns to its baseline.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// NumLinks returns how many distinct links the pool has numbered.
// Links are never freed.
func (p *Pool) NumLinks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links) - 1
}

// PoolStats summarizes a pool's occupancy for memory accounting.
type PoolStats struct {
	// Paths is the live (referenced) path count.
	Paths int
	// FreeSlots is how many freed entry slots await reuse.
	FreeSlots int
	// Links is the numbered link count (never shrinks).
	Links int
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Paths: p.live, FreeSlots: len(p.free), Links: len(p.links) - 1}
}

// LinkSet is a reusable dense membership set over LinkIDs — the shape
// the inference layer passes to the union/materialization queries so a
// path's links test against an inferred set by array lookup.
type LinkSet struct {
	mark []bool
	ids  []LinkID
}

// Reset empties the set, keeping capacity.
func (s *LinkSet) Reset() {
	for _, id := range s.ids {
		s.mark[id] = false
	}
	s.ids = s.ids[:0]
}

// Add inserts id.
func (s *LinkSet) Add(id LinkID) {
	if int(id) >= len(s.mark) {
		grown := make([]bool, int(id)+1)
		copy(grown, s.mark)
		s.mark = grown
	}
	if !s.mark[id] {
		s.mark[id] = true
		s.ids = append(s.ids, id)
	}
}

// Has reports membership.
func (s *LinkSet) Has(id LinkID) bool {
	return int(id) < len(s.mark) && s.mark[id]
}

// Len returns the member count.
func (s *LinkSet) Len() int { return len(s.ids) }
