package rib

import (
	"testing"
	"testing/quick"

	"swift/internal/netaddr"
	"swift/internal/topology"
)

func link(a, b uint32) topology.Link { return topology.MakeLink(a, b) }

func TestPathLinks(t *testing.T) {
	ls := PathLinks(nil, 1, []uint32{2, 5, 6, 8})
	want := []topology.Link{link(1, 2), link(2, 5), link(5, 6), link(6, 8)}
	if len(ls) != len(want) {
		t.Fatalf("links = %v", ls)
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Errorf("link %d = %v, want %v", i, ls[i], want[i])
		}
	}
}

func TestPathLinksPrepending(t *testing.T) {
	ls := PathLinks(nil, 1, []uint32{2, 2, 2, 5})
	if len(ls) != 2 || ls[0] != link(1, 2) || ls[1] != link(2, 5) {
		t.Errorf("prepended path links = %v", ls)
	}
}

func TestAnnounceWithdraw(t *testing.T) {
	tb := New(1)
	p := netaddr.PrefixFor(8, 0)
	if old := tb.Announce(p, []uint32{2, 5, 6, 8}); old != nil {
		t.Errorf("old = %v", old)
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
	if tb.OnLink(link(5, 6)) != 1 || tb.OnLink(link(1, 2)) != 1 {
		t.Error("link index not populated")
	}
	// Replace with a path avoiding (5,6).
	old := tb.Announce(p, []uint32{3, 6, 8})
	if len(old) != 4 {
		t.Errorf("old = %v", old)
	}
	if tb.OnLink(link(5, 6)) != 0 {
		t.Error("stale link index entry after reannounce")
	}
	if tb.OnLink(link(3, 6)) != 1 || tb.OnLink(link(1, 3)) != 1 {
		t.Error("new links not indexed")
	}
	wd := tb.Withdraw(p)
	if len(wd) != 3 || tb.Len() != 0 {
		t.Errorf("withdraw = %v, len = %d", wd, tb.Len())
	}
	if tb.OnLink(link(3, 6)) != 0 {
		t.Error("index not cleaned by withdraw")
	}
	if tb.Withdraw(p) != nil {
		t.Error("double withdraw must return nil")
	}
}

func TestFig4Counters(t *testing.T) {
	// Rebuild the pre-failure state of Fig. 1 at AS 1's session with
	// AS 2 and check the P(l) values that feed Fig. 4.
	tb := New(1)
	n := 0
	add := func(origin uint32, count int, path ...uint32) {
		for i := 0; i < count; i++ {
			tb.Announce(netaddr.PrefixFor(origin, i), path)
			n++
		}
	}
	add(2, 1000, 2)
	add(5, 1000, 2, 5)
	add(6, 1000, 2, 5, 6)
	add(7, 10000, 2, 5, 6, 7)
	add(8, 10000, 2, 5, 6, 8)

	if tb.Len() != n {
		t.Fatalf("len = %d, want %d", tb.Len(), n)
	}
	for _, c := range []struct {
		l    topology.Link
		want int
	}{
		{link(1, 2), 23000},
		{link(2, 5), 22000},
		{link(5, 6), 21000},
		{link(6, 7), 10000},
		{link(6, 8), 10000},
	} {
		if got := tb.OnLink(c.l); got != c.want {
			t.Errorf("OnLink%v = %d, want %d", c.l, got, c.want)
		}
	}
	// Prefixes to reroute for an inferred failure of (5,6).
	got := tb.PrefixesOnAny([]topology.Link{link(5, 6)})
	if len(got) != 21000 {
		t.Errorf("PrefixesOnAny(5,6) = %d, want 21000", len(got))
	}
}

func TestPrefixesOnAnyUnion(t *testing.T) {
	tb := New(1)
	p1, p2, p3 := netaddr.PrefixFor(6, 0), netaddr.PrefixFor(7, 0), netaddr.PrefixFor(9, 0)
	tb.Announce(p1, []uint32{2, 5, 6})
	tb.Announce(p2, []uint32{2, 5, 6, 7})
	tb.Announce(p3, []uint32{3, 9})
	got := tb.PrefixesOnAny([]topology.Link{link(5, 6), link(6, 7)})
	if len(got) != 2 {
		t.Fatalf("union = %v", got)
	}
	// Sorted output.
	if got[0] > got[1] {
		t.Error("PrefixesOnAny must sort")
	}
}

func TestActiveLinks(t *testing.T) {
	tb := New(1)
	tb.Announce(netaddr.PrefixFor(6, 0), []uint32{2, 5, 6})
	links := tb.ActiveLinks()
	if len(links) != 3 {
		t.Errorf("active links = %v", links)
	}
	tb.Withdraw(netaddr.PrefixFor(6, 0))
	if len(tb.ActiveLinks()) != 0 {
		t.Error("links must disappear with their last prefix")
	}
}

func TestClone(t *testing.T) {
	tb := New(1)
	p := netaddr.PrefixFor(6, 0)
	tb.Announce(p, []uint32{2, 5, 6})
	cp := tb.Clone()
	tb.Withdraw(p)
	if cp.Len() != 1 || cp.OnLink(link(5, 6)) != 1 {
		t.Error("clone shares state with original")
	}
}

func TestForEach(t *testing.T) {
	tb := New(1)
	tb.Announce(netaddr.PrefixFor(6, 0), []uint32{2, 6})
	tb.Announce(netaddr.PrefixFor(7, 0), []uint32{2, 7})
	count := 0
	tb.ForEach(func(p netaddr.Prefix, path []uint32) { count++ })
	if count != 2 {
		t.Errorf("ForEach visited %d", count)
	}
}

func TestIndexConsistencyProperty(t *testing.T) {
	// Property: after any sequence of announce/withdraw operations, the
	// link index exactly matches the routes map.
	f := func(ops []uint16) bool {
		tb := New(1)
		paths := [][]uint32{
			{2, 5, 6}, {3, 6}, {4, 5, 6, 7}, {2, 5, 6, 8}, nil,
		}
		for _, op := range ops {
			p := netaddr.PrefixFor(uint32(op%7+2), int(op/7)%5)
			path := paths[int(op)%len(paths)]
			if path == nil {
				tb.Withdraw(p)
			} else {
				tb.Announce(p, path)
			}
		}
		// Rebuild the index from scratch and compare counts.
		fresh := New(1)
		tb.ForEach(func(p netaddr.Prefix, path []uint32) { fresh.Announce(p, path) })
		if fresh.Len() != tb.Len() {
			return false
		}
		for _, l := range fresh.ActiveLinks() {
			if tb.OnLink(l) != fresh.OnLink(l) {
				return false
			}
		}
		for _, l := range tb.ActiveLinks() {
			if tb.OnLink(l) != fresh.OnLink(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
