package topology

import (
	"testing"
	"testing/quick"
)

func TestMakeLinkCanonical(t *testing.T) {
	if MakeLink(5, 2) != MakeLink(2, 5) {
		t.Error("link order must canonicalize")
	}
	l := MakeLink(2, 5)
	if l.A != 2 || l.B != 5 {
		t.Errorf("link = %v", l)
	}
	if !l.Has(2) || !l.Has(5) || l.Has(3) {
		t.Error("Has broken")
	}
	if l.Other(2) != 5 || l.Other(5) != 2 || l.Other(9) != 0 {
		t.Error("Other broken")
	}
	if l.String() != "(2,5)" {
		t.Errorf("String = %q", l.String())
	}
}

func TestGraphRelationships(t *testing.T) {
	g := New()
	g.AddCustomerProvider(10, 20) // 10 buys from 20
	g.AddPeers(20, 30)

	if r, ok := g.RelOf(10, 20); !ok || r != RelProvider {
		t.Errorf("RelOf(10,20) = %v, %v; want provider", r, ok)
	}
	if r, _ := g.RelOf(20, 10); r != RelCustomer {
		t.Errorf("RelOf(20,10) = %v; want customer", r)
	}
	if r, _ := g.RelOf(20, 30); r != RelPeer {
		t.Errorf("RelOf(20,30) = %v; want peer", r)
	}
	if _, ok := g.RelOf(10, 30); ok {
		t.Error("non-adjacent RelOf must report !ok")
	}
	if !g.HasLink(10, 20) || g.HasLink(10, 30) {
		t.Error("HasLink broken")
	}
	if g.NumLinks() != 2 || g.NumASes() != 3 {
		t.Errorf("counts = %d links, %d ASes", g.NumLinks(), g.NumASes())
	}
}

func TestDuplicateLinkIgnored(t *testing.T) {
	g := New()
	g.AddCustomerProvider(1, 2)
	g.AddPeers(1, 2) // conflicting second declaration is dropped
	if r, _ := g.RelOf(1, 2); r != RelProvider {
		t.Errorf("first relationship must win, got %v", r)
	}
	if g.NumLinks() != 1 {
		t.Errorf("links = %d", g.NumLinks())
	}
}

func TestWithoutLink(t *testing.T) {
	g := Fig1()
	h := g.WithoutLink(5, 6)
	if h.HasLink(5, 6) || h.HasLink(6, 5) {
		t.Error("link (5,6) not removed")
	}
	if !g.HasLink(5, 6) {
		t.Error("original graph mutated")
	}
	if h.NumLinks() != g.NumLinks()-1 {
		t.Errorf("links = %d, want %d", h.NumLinks(), g.NumLinks()-1)
	}
}

func TestWithoutAS(t *testing.T) {
	g := Fig1()
	h := g.WithoutAS(6)
	if h.NumASes() != g.NumASes()-1 {
		t.Errorf("ASes = %d", h.NumASes())
	}
	for _, as := range h.ASes() {
		if as == 6 {
			t.Fatal("AS 6 still present")
		}
		for _, n := range h.Neighbors(as) {
			if n.AS == 6 {
				t.Fatalf("AS %d still adjacent to 6", as)
			}
		}
	}
}

func TestFig1Shape(t *testing.T) {
	g := Fig1()
	if g.NumASes() != 8 {
		t.Errorf("ASes = %d, want 8", g.NumASes())
	}
	// The vantage must have exactly its three providers.
	ns := g.Neighbors(1)
	if len(ns) != 3 {
		t.Fatalf("AS1 neighbors = %v", ns)
	}
	for _, n := range ns {
		if n.Rel != RelProvider {
			t.Errorf("AS1 -> AS%d rel = %v, want provider", n.AS, n.Rel)
		}
	}
	// The failure link of the running example must exist.
	if !g.HasLink(5, 6) || !g.HasLink(3, 6) || !g.HasLink(5, 3) {
		t.Error("expected links missing")
	}
	origins := Fig1Origins(10000)
	if origins[7] != 10000 || origins[8] != 10000 || origins[6] != 1000 {
		t.Errorf("origins = %v", origins)
	}
}

func TestTiersFig1(t *testing.T) {
	g := Fig1()
	tiers := g.Tiers()
	for as, tier := range tiers {
		if tier < 1 {
			t.Errorf("AS%d unclassified", as)
		}
	}
	// Highest-degree ASes must be tier 1.
	if tiers[6] != 1 && tiers[5] != 1 {
		t.Errorf("expected a core AS in tier 1: %v", tiers)
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(GenConfig{NumASes: 500, AvgDegree: 8.4, Seed: 42})
	if g.NumASes() != 500 {
		t.Fatalf("ASes = %d", g.NumASes())
	}
	avg := g.AvgDegree()
	if avg < 6 || avg > 11 {
		t.Errorf("average degree = %.2f, want ≈8.4", avg)
	}
	// Tier 1 must be a full mesh of peers.
	tiers := g.Tiers()
	var t1 []uint32
	for as, tier := range tiers {
		if tier == 1 {
			t1 = append(t1, as)
		}
	}
	if len(t1) != 3 {
		t.Fatalf("tier-1 count = %d", len(t1))
	}
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			if r, ok := g.RelOf(t1[i], t1[j]); !ok || r != RelPeer {
				t.Errorf("tier1 %d-%d rel = %v, %v", t1[i], t1[j], r, ok)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{NumASes: 200, AvgDegree: 8, Seed: 7})
	b := Generate(GenConfig{NumASes: 200, AvgDegree: 8, Seed: 7})
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %v vs %v", i, la[i], lb[i])
		}
	}
}

func TestGeneratePowerLawTail(t *testing.T) {
	g := Generate(GenConfig{NumASes: 1000, AvgDegree: 8.4, Seed: 1})
	// A scale-free graph must have hubs: max degree far above average.
	maxDeg := 0
	for _, as := range g.ASes() {
		if d := g.Degree(as); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 40 {
		t.Errorf("max degree = %d; expected a heavy tail", maxDeg)
	}
}

func TestGenerateRelationshipsConsistent(t *testing.T) {
	g := Generate(GenConfig{NumASes: 300, AvgDegree: 8, Seed: 3})
	// Every edge must be seen consistently from both sides.
	for _, as := range g.ASes() {
		for _, n := range g.Neighbors(as) {
			back, ok := g.RelOf(n.AS, as)
			if !ok {
				t.Fatalf("asymmetric edge %d-%d", as, n.AS)
			}
			switch n.Rel {
			case RelPeer:
				if back != RelPeer {
					t.Fatalf("peer edge %d-%d seen as %v from far side", as, n.AS, back)
				}
			case RelCustomer:
				if back != RelProvider {
					t.Fatalf("customer edge %d-%d seen as %v", as, n.AS, back)
				}
			case RelProvider:
				if back != RelCustomer {
					t.Fatalf("provider edge %d-%d seen as %v", as, n.AS, back)
				}
			}
		}
	}
}

func TestLinksSortedUnique(t *testing.T) {
	g := Generate(GenConfig{NumASes: 100, AvgDegree: 6, Seed: 11})
	links := g.Links()
	seen := make(map[Link]bool)
	for i, l := range links {
		if l.A >= l.B {
			t.Errorf("non-canonical link %v", l)
		}
		if seen[l] {
			t.Errorf("duplicate link %v", l)
		}
		seen[l] = true
		if i > 0 {
			prev := links[i-1]
			if prev.A > l.A || (prev.A == l.A && prev.B >= l.B) {
				t.Errorf("links not sorted at %d: %v after %v", i, l, prev)
			}
		}
	}
}

func TestRelString(t *testing.T) {
	if RelCustomer.String() != "customer" || RelPeer.String() != "peer" ||
		RelProvider.String() != "provider" || Rel(9).String() != "unknown" {
		t.Error("Rel.String broken")
	}
}

func TestWithoutLinkProperty(t *testing.T) {
	g := Generate(GenConfig{NumASes: 100, AvgDegree: 6, Seed: 5})
	links := g.Links()
	f := func(idx uint16) bool {
		l := links[int(idx)%len(links)]
		h := g.WithoutLink(l.A, l.B)
		return !h.HasLink(l.A, l.B) && h.NumLinks() == g.NumLinks()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
