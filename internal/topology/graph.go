// Package topology models AS-level Internet topologies: ASes, links,
// Gao–Rexford business relationships, and tier classification. It
// provides both the paper's running-example topology (Fig. 1) and the
// synthetic 1,000-AS power-law topologies of §6.1.
package topology

import (
	"fmt"
	"sort"
)

// Rel is the business relationship of a neighbor from the local AS's
// point of view.
type Rel int8

// Relationship kinds. RelCustomer means "the neighbor is my customer".
const (
	RelCustomer Rel = iota
	RelPeer
	RelProvider
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return "unknown"
}

// Link is an undirected AS adjacency in canonical (low, high) order.
// SWIFT's inference algorithm reasons about exactly these: pairs of
// adjacent ASes extracted from AS paths.
type Link struct {
	A, B uint32
}

// MakeLink canonicalizes the endpoint order.
func MakeLink(a, b uint32) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// Has reports whether as is one of the link's endpoints.
func (l Link) Has(as uint32) bool { return l.A == as || l.B == as }

// Other returns the endpoint that is not as (or 0 if as is not on l).
func (l Link) Other(as uint32) uint32 {
	switch as {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return 0
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("(%d,%d)", l.A, l.B) }

// Neighbor pairs a neighbor AS with its relationship to the local AS.
type Neighbor struct {
	AS  uint32
	Rel Rel
}

// Graph is an AS-level topology with business relationships.
type Graph struct {
	adj map[uint32][]Neighbor
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[uint32][]Neighbor)}
}

// AddAS ensures as exists even if isolated.
func (g *Graph) AddAS(as uint32) {
	if _, ok := g.adj[as]; !ok {
		g.adj[as] = nil
	}
}

// AddCustomerProvider records that customer buys transit from provider.
func (g *Graph) AddCustomerProvider(customer, provider uint32) {
	g.addEdge(customer, Neighbor{AS: provider, Rel: RelProvider})
	g.addEdge(provider, Neighbor{AS: customer, Rel: RelCustomer})
}

// AddPeers records a settlement-free peering between a and b.
func (g *Graph) AddPeers(a, b uint32) {
	g.addEdge(a, Neighbor{AS: b, Rel: RelPeer})
	g.addEdge(b, Neighbor{AS: a, Rel: RelPeer})
}

func (g *Graph) addEdge(from uint32, n Neighbor) {
	for _, e := range g.adj[from] {
		if e.AS == n.AS {
			return // first relationship wins; duplicate links ignored
		}
	}
	g.adj[from] = append(g.adj[from], n)
	g.AddAS(n.AS)
}

// HasLink reports whether a and b are adjacent.
func (g *Graph) HasLink(a, b uint32) bool {
	for _, n := range g.adj[a] {
		if n.AS == b {
			return true
		}
	}
	return false
}

// RelOf returns the relationship of neighbor b from a's perspective.
func (g *Graph) RelOf(a, b uint32) (Rel, bool) {
	for _, n := range g.adj[a] {
		if n.AS == b {
			return n.Rel, true
		}
	}
	return 0, false
}

// Neighbors returns a's adjacency list. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(a uint32) []Neighbor { return g.adj[a] }

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a uint32) int { return len(g.adj[a]) }

// ASes returns all AS numbers in ascending order.
func (g *Graph) ASes() []uint32 {
	out := make([]uint32, 0, len(g.adj))
	for as := range g.adj {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumASes returns the AS count.
func (g *Graph) NumASes() int { return len(g.adj) }

// Links returns every link once, in canonical order, sorted.
func (g *Graph) Links() []Link {
	var out []Link
	for as, ns := range g.adj {
		for _, n := range ns {
			if as < n.AS {
				out = append(out, Link{A: as, B: n.AS})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumLinks returns the link count.
func (g *Graph) NumLinks() int {
	n := 0
	for _, ns := range g.adj {
		n += len(ns)
	}
	return n / 2
}

// AvgDegree returns the mean adjacency count.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return float64(2*g.NumLinks()) / float64(len(g.adj))
}

// WithoutLink returns a copy of g with link (a,b) removed. The simulator
// uses this to model a link failure without mutating shared state.
func (g *Graph) WithoutLink(a, b uint32) *Graph {
	out := &Graph{adj: make(map[uint32][]Neighbor, len(g.adj))}
	for as, ns := range g.adj {
		var kept []Neighbor
		for _, n := range ns {
			if (as == a && n.AS == b) || (as == b && n.AS == a) {
				continue
			}
			kept = append(kept, n)
		}
		out.adj[as] = kept
	}
	return out
}

// WithoutAS returns a copy of g with the AS and all its links removed,
// modeling a whole-router/AS outage (the multi-link failure case of §4.2).
func (g *Graph) WithoutAS(dead uint32) *Graph {
	out := &Graph{adj: make(map[uint32][]Neighbor, len(g.adj))}
	for as, ns := range g.adj {
		if as == dead {
			continue
		}
		var kept []Neighbor
		for _, n := range ns {
			if n.AS == dead {
				continue
			}
			kept = append(kept, n)
		}
		out.adj[as] = kept
	}
	return out
}

// Tiers classifies ASes the way §6.1 does: the three highest-degree ASes
// are Tier 1; an AS directly connected to tier t (and to no smaller
// tier) is tier t+1. Returned map values start at 1. Isolated ASes get
// tier 0 (unclassified).
func (g *Graph) Tiers() map[uint32]int {
	tiers := make(map[uint32]int, len(g.adj))
	ases := g.ASes()
	if len(ases) == 0 {
		return tiers
	}
	// Top 3 by degree, ties broken by lower ASN for determinism.
	byDegree := append([]uint32(nil), ases...)
	sort.Slice(byDegree, func(i, j int) bool {
		di, dj := g.Degree(byDegree[i]), g.Degree(byDegree[j])
		if di != dj {
			return di > dj
		}
		return byDegree[i] < byDegree[j]
	})
	n := 3
	if len(byDegree) < n {
		n = len(byDegree)
	}
	frontier := byDegree[:n]
	for _, as := range frontier {
		tiers[as] = 1
	}
	// BFS outwards: tier = 1 + min tier among neighbors.
	for tier := 2; len(frontier) > 0; tier++ {
		var next []uint32
		for _, as := range frontier {
			for _, nb := range g.adj[as] {
				if _, seen := tiers[nb.AS]; !seen {
					tiers[nb.AS] = tier
					next = append(next, nb.AS)
				}
			}
		}
		frontier = next
	}
	return tiers
}
