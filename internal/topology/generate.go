package topology

import (
	"math/rand"
	"sort"
)

// GenConfig parameterizes the synthetic Internet generator of §6.1.
type GenConfig struct {
	// NumASes is the topology size (the paper uses 1,000).
	NumASes int
	// AvgDegree targets the mean adjacency count (the paper uses 8.4,
	// the CAIDA AS-level value of October 2016).
	AvgDegree float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds a scale-free AS topology by preferential attachment
// (power-law degree distribution, the paper targets exponent ≈2.1) and
// assigns Gao–Rexford relationships per §6.1: the three highest-degree
// ASes are fully meshed Tier 1s; links between same-tier ASes are
// peer-to-peer, all others customer-to-provider with the lower-tier
// (higher-numbered tier) AS as the customer.
//
// AS numbers are 1..NumASes.
func Generate(cfg GenConfig) *Graph {
	n := cfg.NumASes
	if n < 4 {
		n = 4
	}
	avg := cfg.AvgDegree
	if avg <= 2 {
		avg = 8.4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// m links per arriving node gives average degree ≈ 2m. Alternate
	// between floor and ceil to hit fractional targets.
	mBase := int(avg / 2)
	frac := avg/2 - float64(mBase)

	var edges []edge
	// Repeated-node list for degree-proportional sampling, with a small
	// uniform admixture that fattens the tail toward exponent ~2.1
	// (pure Barabási–Albert yields 3).
	var ballot []uint32

	// Seed clique of 4 nodes.
	for a := uint32(1); a <= 4; a++ {
		for b := a + 1; b <= 4; b++ {
			edges = append(edges, edge{a, b})
			ballot = append(ballot, a, b)
		}
	}
	for v := uint32(5); v <= uint32(n); v++ {
		m := mBase
		if rng.Float64() < frac {
			m++
		}
		if m < 1 {
			m = 1
		}
		chosen := make(map[uint32]bool, m)
		for len(chosen) < m && len(chosen) < int(v-1) {
			var t uint32
			if rng.Float64() < 0.2 {
				t = uint32(rng.Intn(int(v-1))) + 1 // uniform admixture
			} else {
				t = ballot[rng.Intn(len(ballot))]
			}
			if t == v || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		targets := make([]uint32, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			edges = append(edges, edge{v, t})
			ballot = append(ballot, v, t)
		}
	}

	// Degrees for tier assignment.
	deg := make(map[uint32]int, n)
	for _, e := range edges {
		deg[e.a]++
		deg[e.b]++
	}
	tiers := tierByDegree(deg, edges)

	g := New()
	for as := uint32(1); as <= uint32(n); as++ {
		g.AddAS(as)
	}
	for _, e := range edges {
		ta, tb := tiers[e.a], tiers[e.b]
		switch {
		case ta == tb:
			g.AddPeers(e.a, e.b)
		case ta < tb: // a is closer to the core: a is the provider
			g.AddCustomerProvider(e.b, e.a)
		default:
			g.AddCustomerProvider(e.a, e.b)
		}
	}
	// Tier 1 full mesh.
	var t1 []uint32
	for as, t := range tiers {
		if t == 1 {
			t1 = append(t1, as)
		}
	}
	sort.Slice(t1, func(i, j int) bool { return t1[i] < t1[j] })
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			if !g.HasLink(t1[i], t1[j]) {
				g.AddPeers(t1[i], t1[j])
			}
		}
	}
	return g
}

type edge struct{ a, b uint32 }

// tierByDegree computes tiers from raw edges before the Graph exists
// (relationship assignment needs tiers, which need connectivity).
func tierByDegree(deg map[uint32]int, edges []edge) map[uint32]int {
	adj := make(map[uint32][]uint32)
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	var all []uint32
	for as := range deg {
		all = append(all, as)
	}
	sort.Slice(all, func(i, j int) bool {
		if deg[all[i]] != deg[all[j]] {
			return deg[all[i]] > deg[all[j]]
		}
		return all[i] < all[j]
	})
	tiers := make(map[uint32]int, len(all))
	k := 3
	if len(all) < k {
		k = len(all)
	}
	frontier := all[:k]
	for _, as := range frontier {
		tiers[as] = 1
	}
	for tier := 2; len(frontier) > 0; tier++ {
		var next []uint32
		for _, as := range frontier {
			for _, nb := range adj[as] {
				if _, ok := tiers[nb]; !ok {
					tiers[nb] = tier
					next = append(next, nb)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	return tiers
}

// Fig1 returns the paper's running-example topology (Fig. 1): eight
// ASes where AS 1 is the SWIFTED vantage point, its primary route to
// ASes 6/7/8 runs through 2→5→6, AS 4 provides an alternate that also
// crosses (5,6), and AS 3 provides the only (5,6)-free backup via its
// direct link to AS 6. AS 5 additionally buys partial transit from
// AS 3 (prefixes of AS 7 only — see §2.1), which is what lets it send
// 10k path updates instead of withdrawals for S7 after (5,6) fails.
//
// Prefix counts per origin follow Fig. 4's WS/PS table: ASes 2, 5 and 6
// originate 1k each, AS 7 and AS 8 10k each (scaled by the caller).
func Fig1() *Graph {
	g := New()
	// AS 1 buys transit from 2, 3 and 4.
	g.AddCustomerProvider(1, 2)
	g.AddCustomerProvider(1, 3)
	g.AddCustomerProvider(1, 4)
	// 2 and 4 reach 5; 5 reaches 6; 3 has a direct link to 6.
	g.AddCustomerProvider(2, 5)
	g.AddCustomerProvider(4, 5)
	g.AddCustomerProvider(5, 6)
	g.AddCustomerProvider(3, 6)
	// Partial transit: 5 buys from 3, but 3 only exports S7 to 5 (the
	// simulator's Fig1ExportFilter enforces the prefix restriction).
	g.AddCustomerProvider(5, 3)
	// 6 provides transit to the stub ASes 7 and 8.
	g.AddCustomerProvider(7, 6)
	g.AddCustomerProvider(8, 6)
	return g
}

// Fig1Origins returns the per-AS originated prefix counts of the running
// example, scaled so that AS 7 and AS 8 each originate scale prefixes
// and ASes 2, 5 and 6 originate scale/10 (minimum 1).
func Fig1Origins(scale int) map[uint32]int {
	small := scale / 10
	if small < 1 {
		small = 1
	}
	return map[uint32]int{
		2: small, 5: small, 6: small, 7: scale, 8: scale,
	}
}
