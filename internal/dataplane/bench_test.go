package dataplane

import (
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// BenchmarkForward measures the full two-stage pipeline lookup.
func BenchmarkForward(b *testing.B) {
	f := New(Config{})
	for i := 0; i < 100000; i++ {
		f.SetTag(netaddr.PrefixFor(uint32(100+i%50), i/50), encoding.Tag(i%64))
	}
	for p := 0; p < 8; p++ {
		f.InstallRule(encoding.Rule{Value: encoding.Tag(p), Mask: 0x3f, NextHop: uint32(p), Priority: p})
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = netaddr.PrefixFor(uint32(100+i%50), i).Addr()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(addrs[i%len(addrs)])
	}
}
