package dataplane

import (
	"fmt"
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// The LPM benchmarks measure three structures side by side on the same
// tables and address samples: the Poptrie (the FIB's stage-1 read path
// — 16-bit direct root + popcount-indexed stride-6 levels), the
// compressed binary Trie it fronts (the authoritative ordered store,
// and the read path before PR 8), and the map-plus-length-scan baseline
// the trie replaced in PR 5 (newMapLPM in lpm_test.go, retained as the
// reference point of the whole trajectory).

// benchPrefixes builds a mixed-length table shaped like a provisioned
// stage 1: mostly /32 host routes plus covering blocks — the hot-case
// table the trie lost to the map on (BENCH_5: 177ns vs 13ns).
func benchPrefixes(n int) []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			out = append(out, netaddr.BlockFor(uint32(100+i%50), i%256))
		} else {
			out = append(out, netaddr.PrefixFor(uint32(100+i%50), i/50))
		}
	}
	return out
}

// benchAddrs samples hit addresses from a prefix table.
func benchAddrs(ps []netaddr.Prefix) []uint32 {
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = ps[(i*97)%len(ps)].Addr()
	}
	return addrs
}

func fillPoptrie(ps []netaddr.Prefix) *Poptrie {
	var pt Poptrie
	for i, p := range ps {
		pt.Insert(p, encoding.Tag(i%64))
	}
	return &pt
}

func fillTrie(ps []netaddr.Prefix) *Trie {
	var tr Trie
	for i, p := range ps {
		tr.Insert(p, encoding.Tag(i%64))
	}
	return &tr
}

func fillMap(ps []netaddr.Prefix) *mapLPM {
	r := newMapLPM()
	for i, p := range ps {
		r.Insert(p, encoding.Tag(i%64))
	}
	return r
}

// BenchmarkLPMLookupPoptrie measures stage-1 longest-prefix match on
// the hot /32-heavy table through the direct-index + popcount read
// path — the number that has to beat the map.
func BenchmarkLPMLookupPoptrie(b *testing.B) {
	pt := fillPoptrie(benchPrefixes(100000))
	addrs := benchAddrs(benchPrefixes(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Lookup(addrs[i%len(addrs)])
	}
}

// BenchmarkLPMLookupTrie measures the same lookups through the
// authoritative compressed trie (the pre-PR-8 read path).
func BenchmarkLPMLookupTrie(b *testing.B) {
	tr := fillTrie(benchPrefixes(100000))
	addrs := benchAddrs(benchPrefixes(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

// BenchmarkLPMLookupMap measures the map-plus-length-scan baseline,
// retained since PR 5 as the fixed reference of the lookup trajectory.
func BenchmarkLPMLookupMap(b *testing.B) {
	r := fillMap(benchPrefixes(100000))
	addrs := benchAddrs(benchPrefixes(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(addrs[i%len(addrs)])
	}
}

// BenchmarkLPMLookupBatch measures the burst-amortized stage-1 path:
// one LookupBatch call resolving 256 addresses, reported per packet.
func BenchmarkLPMLookupBatch(b *testing.B) {
	pt := fillPoptrie(benchPrefixes(100000))
	addrs := benchAddrs(benchPrefixes(100000))[:256]
	tags := make([]encoding.Tag, len(addrs))
	ok := make([]bool, len(addrs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.LookupBatch(addrs, tags, ok)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(addrs)), "ns/packet")
}

// benchDensePrefixes spreads n prefixes over /16../24 — the shape of a
// full Internet table (BGP tables are /24-dominated with covering
// aggregates) at realistic size, so the hit-latency target is proven at
// 512k entries, not just the small fixtures.
func benchDensePrefixes(n int) []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		length := 16 + i%9
		addr := (uint32(i)*2654435761 + 40503) & netaddr.Mask(length)
		out = append(out, netaddr.MakePrefix(addr, length))
	}
	return out
}

// BenchmarkLPMLookupDensePoptrie / ...DenseTrie / ...DenseMap: hit
// lookups against a 512k-entry /16../24 full-table shape.
func BenchmarkLPMLookupDensePoptrie(b *testing.B) {
	ps := benchDensePrefixes(512 << 10)
	pt := fillPoptrie(ps)
	addrs := benchAddrs(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkLPMLookupDenseTrie(b *testing.B) {
	ps := benchDensePrefixes(512 << 10)
	tr := fillTrie(ps)
	addrs := benchAddrs(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkLPMLookupDenseMap(b *testing.B) {
	ps := benchDensePrefixes(512 << 10)
	r := fillMap(ps)
	addrs := benchAddrs(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(addrs[i%len(addrs)])
	}
}

// benchMixedLengths spreads prefixes over many distinct lengths
// (8..32), hits at varying depths — the case the old length-probe scan
// degrades on (one map probe per populated length).
func benchMixedLengths(n int) []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		length := 8 + i%25
		addr := (uint32(i)*2654435761 + 12345) & netaddr.Mask(length)
		p := netaddr.MakePrefix(addr, length)
		out = append(out, p)
	}
	return out
}

// BenchmarkLPMMixedLengths{Poptrie,Trie,Map}: lookups against a table
// with 25 populated prefix lengths.
func BenchmarkLPMMixedLengthsPoptrie(b *testing.B) {
	ps := benchMixedLengths(100000)
	pt := fillPoptrie(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Lookup(ps[(i*97)%len(ps)].Addr())
	}
}

func BenchmarkLPMMixedLengthsTrie(b *testing.B) {
	ps := benchMixedLengths(100000)
	tr := fillTrie(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(ps[(i*97)%len(ps)].Addr())
	}
}

func BenchmarkLPMMixedLengthsMap(b *testing.B) {
	ps := benchMixedLengths(100000)
	r := fillMap(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(ps[(i*97)%len(ps)].Addr())
	}
}

// BenchmarkLPMMiss{Poptrie,Trie,Map}: addresses with no covering
// prefix. The poptrie rejects on the root probe, the trie at the first
// diverging node; the scan probes every populated length.
func BenchmarkLPMMissPoptrie(b *testing.B) {
	pt := fillPoptrie(benchMixedLengths(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Lookup(0xf0000000 | uint32(i))
	}
}

func BenchmarkLPMMissTrie(b *testing.B) {
	tr := fillTrie(benchMixedLengths(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(0xf0000000 | uint32(i))
	}
}

func BenchmarkLPMMissMap(b *testing.B) {
	r := fillMap(benchMixedLengths(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(0xf0000000 | uint32(i))
	}
}

// BenchmarkLPMInsertDelete{Poptrie,Trie} measure a full
// withdraw/re-announce churn cycle against a warm 100k-entry table —
// the poptrie pays the incremental read-path mirror on top of the trie
// write.
func BenchmarkLPMInsertDeletePoptrie(b *testing.B) {
	ps := benchPrefixes(100000)
	pt := fillPoptrie(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		pt.Delete(p)
		pt.Insert(p, encoding.Tag(i%64))
	}
}

func BenchmarkLPMInsertDeleteTrie(b *testing.B) {
	ps := benchPrefixes(100000)
	tr := fillTrie(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		tr.Delete(p)
		tr.Insert(p, encoding.Tag(i%64))
	}
}

// benchFIB provisions the two-stage pipeline the Forward benchmarks
// share: 100k stage-1 entries, 8 stage-2 rules.
func benchFIB() (*FIB, []uint32) {
	f := New(Config{})
	for i := 0; i < 100000; i++ {
		f.SetTag(netaddr.PrefixFor(uint32(100+i%50), i/50), encoding.Tag(i%64))
	}
	for p := 0; p < 8; p++ {
		f.InstallRule(encoding.Rule{Value: encoding.Tag(p), Mask: 0x3f, NextHop: uint32(p), Priority: p})
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = netaddr.PrefixFor(uint32(100+i%50), i).Addr()
	}
	return f, addrs
}

// BenchmarkForward measures the full two-stage pipeline, one packet per
// call.
func BenchmarkForward(b *testing.B) {
	f, addrs := benchFIB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(addrs[i%len(addrs)])
	}
}

// BenchmarkForwardBatch measures the burst pipeline: one ForwardBatch
// call moving 256 packets through both stages, reported per packet.
func BenchmarkForwardBatch(b *testing.B) {
	f, addrs := benchFIB()
	burst := addrs[:256]
	nh := make([]uint32, len(burst))
	ok := make([]bool, len(burst))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ForwardBatch(burst, nh, ok)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(burst)), "ns/packet")
}

// BenchmarkForwardBurst documents the amortization curve NDN-DPDK-style
// burst sizing rests on: batched vs per-packet forwarding at burst
// sizes 1, 16, 64 and 256, each reported per packet.
func BenchmarkForwardBurst(b *testing.B) {
	f, addrs := benchFIB()
	for _, size := range []int{1, 16, 64, 256} {
		burst := addrs[:size]
		nh := make([]uint32, size)
		ok := make([]bool, size)
		b.Run(fmt.Sprintf("batched-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.ForwardBatch(burst, nh, ok)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/packet")
		})
		b.Run(fmt.Sprintf("perpacket-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, a := range burst {
					f.Forward(a)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/packet")
		})
	}
}
