package dataplane

import (
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// benchPrefixes builds a mixed-length table shaped like a provisioned
// stage 1: mostly /32 host routes plus covering blocks.
func benchPrefixes(n int) []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			out = append(out, netaddr.BlockFor(uint32(100+i%50), i%256))
		} else {
			out = append(out, netaddr.PrefixFor(uint32(100+i%50), i/50))
		}
	}
	return out
}

// BenchmarkLPMLookupTrie measures stage-1 longest-prefix match through
// the compressed trie.
func BenchmarkLPMLookupTrie(b *testing.B) {
	var tr Trie
	ps := benchPrefixes(100000)
	for i, p := range ps {
		tr.Insert(p, encoding.Tag(i%64))
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = ps[(i*97)%len(ps)].Addr()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

// BenchmarkLPMLookupMap measures the map-plus-length-scan baseline the
// trie replaced (kept as the reference structure in lpm_test.go).
func BenchmarkLPMLookupMap(b *testing.B) {
	r := newMapLPM()
	ps := benchPrefixes(100000)
	for i, p := range ps {
		r.Insert(p, encoding.Tag(i%64))
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = ps[(i*97)%len(ps)].Addr()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(addrs[i%len(addrs)])
	}
}

// benchMixedLengths spreads prefixes over many distinct lengths
// (8..32), the shape of a real Internet table — the case the old
// length-probe scan degrades on (one map probe per populated length).
func benchMixedLengths(n int) []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		length := 8 + i%25
		addr := (uint32(i)*2654435761 + 12345) & netaddr.Mask(length)
		p := netaddr.MakePrefix(addr, length)
		out = append(out, p)
	}
	return out
}

// BenchmarkLPMMixedLengthsTrie / ...Map: lookups against a table with
// 25 populated prefix lengths, hits at varying depths.
func BenchmarkLPMMixedLengthsTrie(b *testing.B) {
	var tr Trie
	ps := benchMixedLengths(100000)
	for i, p := range ps {
		tr.Insert(p, encoding.Tag(i%64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(ps[(i*97)%len(ps)].Addr())
	}
}

func BenchmarkLPMMixedLengthsMap(b *testing.B) {
	r := newMapLPM()
	ps := benchMixedLengths(100000)
	for i, p := range ps {
		r.Insert(p, encoding.Tag(i%64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(ps[(i*97)%len(ps)].Addr())
	}
}

// BenchmarkLPMMissTrie / ...Map: addresses with no covering prefix.
// The trie rejects at the first diverging node; the scan probes every
// populated length before giving up.
func BenchmarkLPMMissTrie(b *testing.B) {
	var tr Trie
	for i, p := range benchMixedLengths(100000) {
		tr.Insert(p, encoding.Tag(i%64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(0xf0000000 | uint32(i))
	}
}

func BenchmarkLPMMissMap(b *testing.B) {
	r := newMapLPM()
	for i, p := range benchMixedLengths(100000) {
		r.Insert(p, encoding.Tag(i%64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(0xf0000000 | uint32(i))
	}
}

// BenchmarkLPMInsertDeleteTrie measures a full withdraw/re-announce
// churn cycle against a warm 100k-entry trie.
func BenchmarkLPMInsertDeleteTrie(b *testing.B) {
	var tr Trie
	ps := benchPrefixes(100000)
	for i, p := range ps {
		tr.Insert(p, encoding.Tag(i%64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		tr.Delete(p)
		tr.Insert(p, encoding.Tag(i%64))
	}
}

// BenchmarkForward measures the full two-stage pipeline lookup.
func BenchmarkForward(b *testing.B) {
	f := New(Config{})
	for i := 0; i < 100000; i++ {
		f.SetTag(netaddr.PrefixFor(uint32(100+i%50), i/50), encoding.Tag(i%64))
	}
	for p := 0; p < 8; p++ {
		f.InstallRule(encoding.Rule{Value: encoding.Tag(p), Mask: 0x3f, NextHop: uint32(p), Priority: p})
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = netaddr.PrefixFor(uint32(100+i%50), i).Addr()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(addrs[i%len(addrs)])
	}
}
