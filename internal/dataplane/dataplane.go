// Package dataplane simulates the two-stage forwarding table SWIFT
// requires (§3.2): stage 1 maps destination prefixes to tags (the
// embedding a real router performs by rewriting the destination MAC),
// stage 2 forwards on prioritized ternary matches over those tags. The
// package also carries the update-latency model used throughout the
// evaluation: per-rule write costs between 128 and 282 µs, the range
// reported by [24, 64] and used in §3.2 and §6.5.
package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// Update-cost constants from the paper's sources.
const (
	// MinRuleUpdate and MaxRuleUpdate bound the per-rule write cost
	// reported by prior measurement studies [24, 64].
	MinRuleUpdate = 128 * time.Microsecond
	MaxRuleUpdate = 282 * time.Microsecond
	// DefaultRuleUpdate is the midpoint used when no cost is configured.
	DefaultRuleUpdate = 205 * time.Microsecond
)

// Config parameterizes the FIB model.
type Config struct {
	// RuleUpdateCost is the modeled latency of one rule write (stage 1
	// or stage 2). Zero selects DefaultRuleUpdate.
	RuleUpdateCost time.Duration
}

func (c Config) cost() time.Duration {
	if c.RuleUpdateCost <= 0 {
		return DefaultRuleUpdate
	}
	return c.RuleUpdateCost
}

// FIB is the simulated two-stage forwarding table. Stage 1 is a
// lookup-optimized LPM (see Poptrie): a 16-bit direct-index root array
// with compressed popcount-indexed deeper levels as the read path,
// fronting the compressed binary trie that stays the authoritative
// ordered store (batched updates, iteration, deterministic Dump).
// Stage 2 is a priority-ordered ternary rule list over the tags stage 1
// produces.
type FIB struct {
	cfg    Config
	stage1 Poptrie
	stage2 []encoding.Rule

	// batchTags is the scratch stage-1 output of the batched forwarding
	// path, grown to the largest burst seen.
	batchTags []encoding.Tag

	writes  int
	elapsed time.Duration
}

// New returns an empty FIB.
func New(cfg Config) *FIB {
	return &FIB{cfg: cfg}
}

// charge accounts n rule writes.
func (f *FIB) charge(n int) {
	f.writes += n
	f.elapsed += time.Duration(n) * f.cfg.cost()
}

// Writes returns the total number of rule writes performed.
func (f *FIB) Writes() int { return f.writes }

// Elapsed returns the modeled time the writes took. This is the number
// a hardware FIB would spend, not wall-clock time of the simulation.
func (f *FIB) Elapsed() time.Duration { return f.elapsed }

// ResetAccounting zeroes the write counters (e.g., after initial
// provisioning, to measure only the failure reaction).
func (f *FIB) ResetAccounting() {
	f.writes = 0
	f.elapsed = 0
}

// SetTag installs or updates the stage-1 tagging rule for p.
func (f *FIB) SetTag(p netaddr.Prefix, t encoding.Tag) {
	f.stage1.Insert(p, t)
	f.charge(1)
}

// ReplaceTags swaps in a complete stage-1 assignment built from m,
// charging one write per entry — the accounting a rebuild via SetTag
// would produce. The map is only read during the call (it is not
// retained), which keeps burst-end re-provisioning cheap for the
// caller: the scheme's freshly compiled tag map is consumed in place.
func (f *FIB) ReplaceTags(m map[netaddr.Prefix]encoding.Tag) {
	f.stage1.Replace(m)
	f.charge(len(m))
}

// RemoveTag deletes p's stage-1 rule.
func (f *FIB) RemoveTag(p netaddr.Prefix) {
	if f.stage1.Delete(p) {
		f.charge(1)
	}
}

// TagOf looks up the stage-1 tag by longest-prefix match on addr.
func (f *FIB) TagOf(addr uint32) (encoding.Tag, bool) {
	return f.stage1.Lookup(addr)
}

// InstallRule adds a stage-2 rule. Rules with higher Priority win;
// within a priority, earlier installation wins.
func (f *FIB) InstallRule(r encoding.Rule) {
	f.stage2 = append(f.stage2, r)
	sort.SliceStable(f.stage2, func(i, j int) bool {
		return f.stage2[i].Priority > f.stage2[j].Priority
	})
	f.charge(1)
}

// InstallRules adds a batch of stage-2 rules.
func (f *FIB) InstallRules(rs []encoding.Rule) {
	for _, r := range rs {
		f.stage2 = append(f.stage2, r)
	}
	sort.SliceStable(f.stage2, func(i, j int) bool {
		return f.stage2[i].Priority > f.stage2[j].Priority
	})
	f.charge(len(rs))
}

// RemoveRulesAt deletes every stage-2 rule with the given priority —
// SWIFT's fallback once BGP has reconverged (§3).
func (f *FIB) RemoveRulesAt(priority int) int {
	kept := f.stage2[:0]
	removed := 0
	for _, r := range f.stage2 {
		if r.Priority == priority {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	f.stage2 = kept
	f.charge(removed)
	return removed
}

// NumRules returns the stage-2 rule count.
func (f *FIB) NumRules() int { return len(f.stage2) }

// NumTags returns the stage-1 entry count (tagged prefixes) — with
// NumRules, the FIB-occupancy pair the ops plane exports per peer.
func (f *FIB) NumTags() int { return f.stage1.Len() }

// Forward runs the full pipeline for a packet to addr: stage-1 tag
// lookup, then the highest-priority matching stage-2 rule. ok is false
// when the packet would be dropped (no tag or no matching rule).
func (f *FIB) Forward(addr uint32) (nextHop uint32, ok bool) {
	nextHop, _, ok = f.ForwardDetail(addr)
	return nextHop, ok
}

// ForwardDetail is Forward returning also the priority of the matched
// stage-2 rule, so evaluation harnesses can attribute a delivery to the
// rule class that produced it (primary route vs fast-reroute override).
func (f *FIB) ForwardDetail(addr uint32) (nextHop uint32, priority int, ok bool) {
	t, ok := f.stage1.Lookup(addr)
	if !ok {
		return 0, 0, false
	}
	for _, r := range f.stage2 {
		if r.Matches(t) {
			return r.NextHop, r.Priority, true
		}
	}
	return 0, 0, false
}

// ForwardPrefix is Forward for a prefix's first address, convenient in
// tests and experiments that reason per prefix.
func (f *FIB) ForwardPrefix(p netaddr.Prefix) (uint32, bool) {
	return f.Forward(p.Addr())
}

// ForwardBatch runs the full pipeline for a burst of packets in one
// call: nh[i], ok[i] receive what Forward(addrs[i]) would return. nh
// and ok must be at least len(addrs) long. One batched stage-1 pass
// resolves every tag before stage-2 matching, amortizing per-packet
// call overhead the way NDN-DPDK forwards in bursts.
func (f *FIB) ForwardBatch(addrs []uint32, nh []uint32, ok []bool) {
	tags := f.stageOne(addrs, ok)
	nh = nh[:len(addrs)]
	rules := f.stage2
	for i := range addrs {
		if !ok[i] {
			nh[i] = 0
			continue
		}
		t := tags[i]
		matched := false
		for _, r := range rules {
			if t&r.Mask == r.Value {
				nh[i], matched = r.NextHop, true
				break
			}
		}
		if !matched {
			nh[i], ok[i] = 0, false
		}
	}
}

// ForwardDetailBatch is ForwardBatch returning also each packet's
// matched stage-2 priority, the batched counterpart of ForwardDetail.
// nh, prio and ok must be at least len(addrs) long.
func (f *FIB) ForwardDetailBatch(addrs []uint32, nh []uint32, prio []int, ok []bool) {
	tags := f.stageOne(addrs, ok)
	nh = nh[:len(addrs)]
	prio = prio[:len(addrs)]
	rules := f.stage2
	for i := range addrs {
		if !ok[i] {
			nh[i], prio[i] = 0, 0
			continue
		}
		t := tags[i]
		matched := false
		for _, r := range rules {
			if t&r.Mask == r.Value {
				nh[i], prio[i], matched = r.NextHop, r.Priority, true
				break
			}
		}
		if !matched {
			nh[i], prio[i], ok[i] = 0, 0, false
		}
	}
}

// stageOne resolves a burst of stage-1 lookups into the FIB's scratch
// tag buffer, returning it sized to the burst.
func (f *FIB) stageOne(addrs []uint32, ok []bool) []encoding.Tag {
	if cap(f.batchTags) < len(addrs) {
		f.batchTags = make([]encoding.Tag, len(addrs))
	}
	tags := f.batchTags[:len(addrs)]
	f.stage1.LookupBatch(addrs, tags, ok)
	return tags
}

// Dump renders the complete forwarding state deterministically: every
// stage-1 entry in ascending prefix order, then every stage-2 rule in
// match order (the order the hardware would try them). Two FIBs with
// identical dumps forward identically, which is what the provision-skip
// equivalence tests pin.
func (f *FIB) Dump() string {
	var b strings.Builder
	f.stage1.ForEach(func(p netaddr.Prefix, t encoding.Tag) {
		fmt.Fprintf(&b, "tag %s %#x\n", p, uint64(t))
	})
	for _, r := range f.stage2 {
		fmt.Fprintf(&b, "rule %#x/%#x -> %d @%d\n", uint64(r.Value), uint64(r.Mask), r.NextHop, r.Priority)
	}
	return b.String()
}
