// Package dataplane simulates the two-stage forwarding table SWIFT
// requires (§3.2): stage 1 maps destination prefixes to tags (the
// embedding a real router performs by rewriting the destination MAC),
// stage 2 forwards on prioritized ternary matches over those tags. The
// package also carries the update-latency model used throughout the
// evaluation: per-rule write costs between 128 and 282 µs, the range
// reported by [24, 64] and used in §3.2 and §6.5.
package dataplane

import (
	"sort"
	"time"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// Update-cost constants from the paper's sources.
const (
	// MinRuleUpdate and MaxRuleUpdate bound the per-rule write cost
	// reported by prior measurement studies [24, 64].
	MinRuleUpdate = 128 * time.Microsecond
	MaxRuleUpdate = 282 * time.Microsecond
	// DefaultRuleUpdate is the midpoint used when no cost is configured.
	DefaultRuleUpdate = 205 * time.Microsecond
)

// Config parameterizes the FIB model.
type Config struct {
	// RuleUpdateCost is the modeled latency of one rule write (stage 1
	// or stage 2). Zero selects DefaultRuleUpdate.
	RuleUpdateCost time.Duration
}

func (c Config) cost() time.Duration {
	if c.RuleUpdateCost <= 0 {
		return DefaultRuleUpdate
	}
	return c.RuleUpdateCost
}

// FIB is the simulated two-stage forwarding table.
type FIB struct {
	cfg    Config
	stage1 map[netaddr.Prefix]encoding.Tag
	// lengths tracks which prefix lengths exist in stage 1, for LPM.
	lengths [33]int
	stage2  []encoding.Rule

	writes  int
	elapsed time.Duration
}

// New returns an empty FIB.
func New(cfg Config) *FIB {
	return &FIB{cfg: cfg, stage1: make(map[netaddr.Prefix]encoding.Tag)}
}

// charge accounts n rule writes.
func (f *FIB) charge(n int) {
	f.writes += n
	f.elapsed += time.Duration(n) * f.cfg.cost()
}

// Writes returns the total number of rule writes performed.
func (f *FIB) Writes() int { return f.writes }

// Elapsed returns the modeled time the writes took. This is the number
// a hardware FIB would spend, not wall-clock time of the simulation.
func (f *FIB) Elapsed() time.Duration { return f.elapsed }

// ResetAccounting zeroes the write counters (e.g., after initial
// provisioning, to measure only the failure reaction).
func (f *FIB) ResetAccounting() {
	f.writes = 0
	f.elapsed = 0
}

// SetTag installs or updates the stage-1 tagging rule for p.
func (f *FIB) SetTag(p netaddr.Prefix, t encoding.Tag) {
	if _, exists := f.stage1[p]; !exists {
		f.lengths[p.Len()]++
	}
	f.stage1[p] = t
	f.charge(1)
}

// ReplaceTags swaps in a complete stage-1 assignment, taking ownership
// of m (the caller must not mutate it afterwards; shared reads are
// fine). It charges one write per entry — the accounting a rebuild via
// SetTag would produce — without the per-entry copy into a second map,
// which is what makes burst-end re-provisioning cheap.
func (f *FIB) ReplaceTags(m map[netaddr.Prefix]encoding.Tag) {
	f.stage1 = m
	f.lengths = [33]int{}
	for p := range m {
		f.lengths[p.Len()]++
	}
	f.charge(len(m))
}

// RemoveTag deletes p's stage-1 rule.
func (f *FIB) RemoveTag(p netaddr.Prefix) {
	if _, exists := f.stage1[p]; exists {
		delete(f.stage1, p)
		f.lengths[p.Len()]--
		f.charge(1)
	}
}

// TagOf looks up the stage-1 tag by longest-prefix match on addr.
func (f *FIB) TagOf(addr uint32) (encoding.Tag, bool) {
	for l := 32; l >= 0; l-- {
		if f.lengths[l] == 0 {
			continue
		}
		if t, ok := f.stage1[netaddr.MakePrefix(addr, l)]; ok {
			return t, true
		}
	}
	return 0, false
}

// InstallRule adds a stage-2 rule. Rules with higher Priority win;
// within a priority, earlier installation wins.
func (f *FIB) InstallRule(r encoding.Rule) {
	f.stage2 = append(f.stage2, r)
	sort.SliceStable(f.stage2, func(i, j int) bool {
		return f.stage2[i].Priority > f.stage2[j].Priority
	})
	f.charge(1)
}

// InstallRules adds a batch of stage-2 rules.
func (f *FIB) InstallRules(rs []encoding.Rule) {
	for _, r := range rs {
		f.stage2 = append(f.stage2, r)
	}
	sort.SliceStable(f.stage2, func(i, j int) bool {
		return f.stage2[i].Priority > f.stage2[j].Priority
	})
	f.charge(len(rs))
}

// RemoveRulesAt deletes every stage-2 rule with the given priority —
// SWIFT's fallback once BGP has reconverged (§3).
func (f *FIB) RemoveRulesAt(priority int) int {
	kept := f.stage2[:0]
	removed := 0
	for _, r := range f.stage2 {
		if r.Priority == priority {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	f.stage2 = kept
	f.charge(removed)
	return removed
}

// NumRules returns the stage-2 rule count.
func (f *FIB) NumRules() int { return len(f.stage2) }

// Forward runs the full pipeline for a packet to addr: stage-1 tag
// lookup, then the highest-priority matching stage-2 rule. ok is false
// when the packet would be dropped (no tag or no matching rule).
func (f *FIB) Forward(addr uint32) (nextHop uint32, ok bool) {
	t, ok := f.TagOf(addr)
	if !ok {
		return 0, false
	}
	for _, r := range f.stage2 {
		if r.Matches(t) {
			return r.NextHop, true
		}
	}
	return 0, false
}

// ForwardPrefix is Forward for a prefix's first address, convenient in
// tests and experiments that reason per prefix.
func (f *FIB) ForwardPrefix(p netaddr.Prefix) (uint32, bool) {
	return f.Forward(p.Addr())
}
