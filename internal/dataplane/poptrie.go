package dataplane

import (
	"math/bits"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// Poptrie is the lookup-optimized stage-1 LPM structure: a DIR-24-8 /
// poptrie hybrid fronting the authoritative compressed binary Trie.
//
// The read path is a 16-bit-stride direct-index root array — one probe
// resolves every prefix of length <= 16 — whose entries point, for
// chunks holding a >/16 tail, into compressed popcount-indexed stride-6
// nodes (two 64-bit occupancy vectors per node, children and pushed
// leaf tags stored densely and addressed by popcount), so a /32 hit
// costs the root probe plus at most three node hops and a miss rejects
// at the first empty vector. The trie remains the ordered store: exact
// match, iteration and the deterministic Dump contract delegate to it,
// and it is the oracle consulted when deleting a short prefix exposes
// the next-best cover for a root slot.
//
// Updates are incremental, mirrored from the trie's insert/delete path:
// a long prefix repaints one node's 64 leaf slots from the node-local
// prefix set, a short prefix touches its 2^(16-len) root slots, and a
// whole-table swap (Replace) just marks the read path dirty so the next
// lookup rebuilds it in one pass — burst-end re-provisioning pays
// nothing until the table is actually read.
//
// The zero value is an empty structure ready for use. Like the Trie it
// fronts, a Poptrie is not safe for concurrent use.
type Poptrie struct {
	trie Trie

	// rootLeaf[s] is the tag of the longest <=16-bit prefix covering
	// chunk s when no node exists for s; rootNode[s], when non-nil, is
	// the stride-6 subtree for the chunk's >/16 tail (the chunk's cover
	// then lives in the node's default, not here).
	rootLeaf []rootLeaf
	rootNode []*popNode

	// dirty marks the read path stale after Replace; the next lookup
	// rebuilds it from the trie.
	dirty bool
}

// rootLeaf packs a root slot's cover so one cache line resolves both
// the tag and the presence/length test. l encodes "no cover" as 0 and a
// cover of length n as n+1, so the cleared state is the empty one.
type rootLeaf struct {
	tag encoding.Tag
	l   uint8
}

// popNode is one stride-6 level of a chunk subtree. Occupied leaf slots
// (leafBits) and children (intBits) are popcount-indexed into the dense
// leaves/children slices. local holds the node's own prefixes — those
// whose length lands within this node's six bits — from which the 64
// leaf slots are repainted on every local update; defTag/defLen carry
// the chunk's <=16-bit cover on depth-16 nodes (same 0 = none encoding
// as rootLeaf.l).
type popNode struct {
	leafBits uint64
	intBits  uint64
	leaves   []encoding.Tag
	children []*popNode
	local    []localPfx
	defTag   encoding.Tag
	defLen   uint8
}

// localPfx is one prefix terminating inside a node: pat is its
// remaining bits left-aligned in the 6-bit stride, rem (1..6) how many
// of them are significant. It paints leaf slots [pat, pat+2^(6-rem)).
type localPfx struct {
	pat uint8
	rem uint8
	tag encoding.Tag
}

// Len returns the number of tagged prefixes.
func (p *Poptrie) Len() int { return p.trie.Len() }

// Get returns the tag stored exactly at pfx (no LPM).
func (p *Poptrie) Get(pfx netaddr.Prefix) (encoding.Tag, bool) { return p.trie.Get(pfx) }

// ForEach visits every tagged prefix in ascending netaddr order — the
// trie's deterministic iteration, unchanged by the read structure.
func (p *Poptrie) ForEach(fn func(pfx netaddr.Prefix, tag encoding.Tag)) { p.trie.ForEach(fn) }

// Trie exposes the authoritative ordered store (read-only use).
func (p *Poptrie) Trie() *Trie { return &p.trie }

// Insert sets pfx's tag, returning true when pfx was not present
// before, and mirrors the write into the read path.
func (p *Poptrie) Insert(pfx netaddr.Prefix, tag encoding.Tag) bool {
	fresh := p.trie.Insert(pfx, tag)
	if !p.dirty {
		p.ensure()
		p.insertRead(pfx.Addr(), pfx.Len(), tag)
	}
	return fresh
}

// Delete removes pfx's tag, reporting whether it was present.
func (p *Poptrie) Delete(pfx netaddr.Prefix) bool {
	if !p.trie.Delete(pfx) {
		return false
	}
	if !p.dirty && p.rootLeaf != nil {
		p.deleteRead(pfx.Addr(), pfx.Len())
	}
	return true
}

// InsertBatch applies a batch of tag writes and returns how many were
// new.
func (p *Poptrie) InsertBatch(entries []TagEntry) int {
	fresh := 0
	for _, e := range entries {
		if p.Insert(e.Prefix, e.Tag) {
			fresh++
		}
	}
	return fresh
}

// DeleteBatch removes a batch of prefixes and returns how many were
// present.
func (p *Poptrie) DeleteBatch(ps []netaddr.Prefix) int {
	hit := 0
	for _, pfx := range ps {
		if p.Delete(pfx) {
			hit++
		}
	}
	return hit
}

// Replace swaps in a complete table built from m. The read path is only
// marked stale: the next lookup rebuilds it in one pass over the trie.
func (p *Poptrie) Replace(m map[netaddr.Prefix]encoding.Tag) {
	p.trie = *TrieFromMap(m)
	p.dirty = true
}

// RestoreSorted swaps in a table bulk-built from entries in ascending
// prefix order, deferring the read path exactly like Replace: the next
// lookup rebuilds it in one ordered pass. This is the warm-restart
// entry point — a restored FIB serves Get/ForEach/Dump immediately and
// pays for the read structure only if it is actually looked up.
func (p *Poptrie) RestoreSorted(entries []TagEntry) error {
	t, err := TrieFromSorted(entries)
	if err != nil {
		return err
	}
	p.trie = *t
	p.rootLeaf, p.rootNode = nil, nil
	p.dirty = true
	return nil
}

// Lookup returns the tag of the longest tagged prefix containing addr.
func (p *Poptrie) Lookup(addr uint32) (encoding.Tag, bool) {
	if p.dirty {
		p.rebuild()
	}
	if p.rootNode == nil {
		return 0, false
	}
	s := addr >> 16
	n := p.rootNode[s]
	if n == nil {
		rl := p.rootLeaf[s]
		return rl.tag, rl.l != 0
	}
	best, ok := n.defTag, n.defLen != 0
	key := addr << 16
	for {
		bit := uint64(1) << (key >> 26)
		key <<= 6
		if n.leafBits&bit != 0 {
			best, ok = n.leaves[bits.OnesCount64(n.leafBits&(bit-1))], true
		}
		if n.intBits&bit == 0 {
			return best, ok
		}
		n = n.children[bits.OnesCount64(n.intBits&(bit-1))]
	}
}

// LookupBatch resolves a burst of addresses in one call: tags[i], ok[i]
// receive what Lookup(addrs[i]) would return. tags and ok must be at
// least len(addrs) long. Batching amortizes the per-call overhead and
// keeps the root array hot across the burst, NDN-DPDK style.
func (p *Poptrie) LookupBatch(addrs []uint32, tags []encoding.Tag, ok []bool) {
	if p.dirty {
		p.rebuild()
	}
	tags = tags[:len(addrs)]
	ok = ok[:len(addrs)]
	if p.rootNode == nil {
		for i := range addrs {
			tags[i], ok[i] = 0, false
		}
		return
	}
	for i, addr := range addrs {
		n := p.rootNode[addr>>16]
		if n == nil {
			rl := p.rootLeaf[addr>>16]
			tags[i], ok[i] = rl.tag, rl.l != 0
			continue
		}
		best, found := n.defTag, n.defLen != 0
		key := addr << 16
		for {
			bit := uint64(1) << (key >> 26)
			key <<= 6
			if n.leafBits&bit != 0 {
				best, found = n.leaves[bits.OnesCount64(n.leafBits&(bit-1))], true
			}
			if n.intBits&bit == 0 {
				break
			}
			n = n.children[bits.OnesCount64(n.intBits&(bit-1))]
		}
		tags[i], ok[i] = best, found
	}
}

// ensure allocates the root arrays on first use.
func (p *Poptrie) ensure() {
	if p.rootLeaf == nil {
		p.rootLeaf = make([]rootLeaf, 1<<16)
		p.rootNode = make([]*popNode, 1<<16)
	}
}

// rebuild reconstructs the read path from the trie in one ordered pass.
func (p *Poptrie) rebuild() {
	p.dirty = false
	p.ensure()
	clear(p.rootLeaf)
	clear(p.rootNode)
	p.trie.ForEach(func(pfx netaddr.Prefix, tag encoding.Tag) {
		p.insertRead(pfx.Addr(), pfx.Len(), tag)
	})
}

// insertRead mirrors one insert into the read structures.
func (p *Poptrie) insertRead(addr uint32, plen int, tag encoding.Tag) {
	if plen <= 16 {
		p.insertShort(addr, plen, tag)
		return
	}
	s := addr >> 16
	n := p.rootNode[s]
	if n == nil {
		// First long prefix in the chunk: the root slot's cover moves
		// into the node default.
		rl := p.rootLeaf[s]
		n = &popNode{defTag: rl.tag, defLen: rl.l}
		p.rootNode[s] = n
		p.rootLeaf[s] = rootLeaf{}
	}
	d, key := 16, addr<<16
	for plen > d+6 {
		n = n.ensureChild(uint(key >> 26))
		key <<= 6
		d += 6
	}
	// addr is masked to plen, so the top 6 remaining bits already have
	// zeros below the rem significant ones.
	n.setLocal(uint8(key>>26), uint8(plen-d), tag)
	n.repaint()
}

// insertShort expands a <=16-bit prefix over its root slots, longest
// cover winning per slot (equal length means the same prefix — an
// overwrite).
func (p *Poptrie) insertShort(addr uint32, plen int, tag encoding.Tag) {
	l := uint8(plen) + 1
	lo := addr >> 16
	hi := lo + 1<<(16-plen)
	for s := lo; s < hi; s++ {
		if n := p.rootNode[s]; n != nil {
			if l >= n.defLen {
				n.defTag, n.defLen = tag, l
			}
		} else if l >= p.rootLeaf[s].l {
			p.rootLeaf[s] = rootLeaf{tag: tag, l: l}
		}
	}
}

// deleteRead mirrors one delete; the trie (already updated) supplies
// the next-best cover where a short prefix was the visible one.
func (p *Poptrie) deleteRead(addr uint32, plen int) {
	if plen <= 16 {
		p.deleteShort(addr, plen)
		return
	}
	s := addr >> 16
	n := p.rootNode[s]
	if n == nil {
		return
	}
	if p.deleteLong(n, addr<<16, plen-16) {
		// Chunk subtree emptied: its cover returns to the root slot.
		p.rootLeaf[s] = rootLeaf{tag: n.defTag, l: n.defLen}
		p.rootNode[s] = nil
	}
}

// deleteShort withdraws a <=16-bit prefix: every slot it was the
// visible cover of (cover length equal — a slot cannot be covered by
// two distinct prefixes of one length) falls back to the next-best
// cover the already-updated trie reports.
func (p *Poptrie) deleteShort(addr uint32, plen int) {
	l := uint8(plen) + 1
	lo := addr >> 16
	hi := lo + 1<<(16-plen)
	for s := lo; s < hi; s++ {
		if n := p.rootNode[s]; n != nil {
			if n.defLen == l {
				n.defTag, n.defLen = p.trie.lookupMax(s<<16, 16)
			}
		} else if p.rootLeaf[s].l == l {
			tag, nl := p.trie.lookupMax(s<<16, 16)
			p.rootLeaf[s] = rootLeaf{tag: tag, l: nl}
		}
	}
}

// deleteLong removes the prefix (key left-aligned, rem bits remaining)
// from the subtree under n, collapsing emptied nodes; it reports
// whether n itself is now empty.
func (p *Poptrie) deleteLong(n *popNode, key uint32, rem int) bool {
	if rem <= 6 {
		n.removeLocal(uint8(key>>26), uint8(rem))
		n.repaint()
	} else {
		bit := uint64(1) << (key >> 26)
		if n.intBits&bit != 0 {
			pos := bits.OnesCount64(n.intBits & (bit - 1))
			if p.deleteLong(n.children[pos], key<<6, rem-6) {
				copy(n.children[pos:], n.children[pos+1:])
				n.children = n.children[:len(n.children)-1]
				n.intBits &^= bit
			}
		}
	}
	return n.leafBits == 0 && n.intBits == 0
}

// ensureChild returns the child at slot idx, creating (and
// popcount-inserting) it when absent.
func (n *popNode) ensureChild(idx uint) *popNode {
	bit := uint64(1) << idx
	pos := bits.OnesCount64(n.intBits & (bit - 1))
	if n.intBits&bit != 0 {
		return n.children[pos]
	}
	c := &popNode{}
	n.children = append(n.children, nil)
	copy(n.children[pos+1:], n.children[pos:])
	n.children[pos] = c
	n.intBits |= bit
	return c
}

// setLocal installs or overwrites the node-local prefix (pat, rem).
func (n *popNode) setLocal(pat, rem uint8, tag encoding.Tag) {
	for i := range n.local {
		if n.local[i].pat == pat && n.local[i].rem == rem {
			n.local[i].tag = tag
			return
		}
	}
	n.local = append(n.local, localPfx{pat: pat, rem: rem, tag: tag})
}

// removeLocal drops the node-local prefix (pat, rem) if present.
func (n *popNode) removeLocal(pat, rem uint8) {
	for i := range n.local {
		if n.local[i].pat == pat && n.local[i].rem == rem {
			n.local[i] = n.local[len(n.local)-1]
			n.local = n.local[:len(n.local)-1]
			return
		}
	}
}

// repaint rebuilds the node's 64 leaf slots from its local prefix set:
// every local expands over 2^(6-rem) slots, the longest winning each
// slot, and the dense popcount-indexed leaves vector is re-emitted in
// slot order — so the painted state is independent of insertion order.
func (n *popNode) repaint() {
	var tag [64]encoding.Tag
	var ln [64]uint8 // 0 = unpainted, else rem
	for _, e := range n.local {
		lo := uint(e.pat)
		hi := lo + 1<<(6-e.rem)
		for s := lo; s < hi; s++ {
			if e.rem > ln[s] {
				ln[s], tag[s] = e.rem, e.tag
			}
		}
	}
	n.leafBits = 0
	n.leaves = n.leaves[:0]
	for s := 0; s < 64; s++ {
		if ln[s] != 0 {
			n.leafBits |= uint64(1) << uint(s)
			n.leaves = append(n.leaves, tag[s])
		}
	}
}
