package dataplane

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// mapLPM is the brute-force longest-prefix-match reference: the
// map-plus-length-scan structure the FIB used before the trie. It is
// the model the property test pins Trie against.
type mapLPM struct {
	m       map[netaddr.Prefix]encoding.Tag
	lengths [33]int
}

func newMapLPM() *mapLPM {
	return &mapLPM{m: make(map[netaddr.Prefix]encoding.Tag)}
}

func (r *mapLPM) Insert(p netaddr.Prefix, t encoding.Tag) bool {
	_, exists := r.m[p]
	if !exists {
		r.lengths[p.Len()]++
	}
	r.m[p] = t
	return !exists
}

func (r *mapLPM) Delete(p netaddr.Prefix) bool {
	if _, exists := r.m[p]; !exists {
		return false
	}
	delete(r.m, p)
	r.lengths[p.Len()]--
	return true
}

func (r *mapLPM) Lookup(addr uint32) (encoding.Tag, bool) {
	for l := 32; l >= 0; l-- {
		if r.lengths[l] == 0 {
			continue
		}
		if t, ok := r.m[netaddr.MakePrefix(addr, l)]; ok {
			return t, true
		}
	}
	return 0, false
}

func TestTrieBasics(t *testing.T) {
	var tr Trie
	p8 := netaddr.MustParsePrefix("10.0.0.0/8")
	p16 := netaddr.MustParsePrefix("10.1.0.0/16")
	p24 := netaddr.MustParsePrefix("10.1.2.0/24")
	def := netaddr.MustParsePrefix("0.0.0.0/0")

	if _, ok := tr.Lookup(0x0a010203); ok {
		t.Fatal("empty trie matched")
	}
	if !tr.Insert(p8, 1) || !tr.Insert(p16, 2) || !tr.Insert(p24, 3) {
		t.Fatal("fresh inserts reported as overwrites")
	}
	if tr.Insert(p16, 20) {
		t.Fatal("overwrite reported as fresh")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for _, tc := range []struct {
		addr uint32
		tag  encoding.Tag
		ok   bool
	}{
		{0x0a010203, 3, true},  // 10.1.2.3 -> /24
		{0x0a010303, 20, true}, // 10.1.3.3 -> /16 (overwritten tag)
		{0x0a020303, 1, true},  // 10.2.3.3 -> /8
		{0x0b000001, 0, false}, // 11.0.0.1 -> none
	} {
		got, ok := tr.Lookup(tc.addr)
		if ok != tc.ok || got != tc.tag {
			t.Errorf("Lookup(%08x) = %v,%v want %v,%v", tc.addr, got, ok, tc.tag, tc.ok)
		}
	}
	// Default route catches everything.
	tr.Insert(def, 9)
	if got, ok := tr.Lookup(0x0b000001); !ok || got != 9 {
		t.Errorf("default route: got %v,%v", got, ok)
	}
	if !tr.Delete(p16) || tr.Delete(p16) {
		t.Fatal("delete/re-delete misbehaved")
	}
	if got, ok := tr.Lookup(0x0a010303); !ok || got != 1 {
		t.Errorf("after /16 delete, 10.1.3.3 = %v,%v want 1,true", got, ok)
	}
	// Iterator order is ascending (addr, len).
	var seen []netaddr.Prefix
	tr.ForEach(func(p netaddr.Prefix, _ encoding.Tag) { seen = append(seen, p) })
	want := []netaddr.Prefix{def, p8, p24}
	if len(seen) != len(want) {
		t.Fatalf("ForEach yielded %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", seen, want)
		}
	}
}

// TestTriePropertyVsReference drives the trie AND the poptrie read
// path against the brute-force reference through long randomized
// insert/delete/lookup sequences — tag overwrites, full
// withdraw-then-re-announce cycles, whole-table Replace swaps and
// batched ops — and requires the three structures to agree on every
// observable after every (batch) operation.
func TestTriePropertyVsReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var tr Trie
			var pop Poptrie
			ref := newMapLPM()

			// A confined universe of prefixes so operations collide:
			// overwrites, deletes of absent entries and nested covers all
			// happen often.
			universe := make([]netaddr.Prefix, 0, 256)
			for i := 0; i < 256; i++ {
				length := 8 + rng.Intn(25) // 8..32
				addr := uint32(10)<<24 | uint32(rng.Intn(8))<<16 | uint32(rng.Intn(16))<<8 | uint32(rng.Intn(4))
				universe = append(universe, netaddr.MakePrefix(addr&netaddr.Mask(length), length))
			}
			var batchTags [32]encoding.Tag
			var batchOK [32]bool
			probe := func() {
				var addrs [32]uint32
				for i := range addrs {
					addrs[i] = uint32(10)<<24 | uint32(rng.Intn(8))<<16 | uint32(rng.Intn(16))<<8 | uint32(rng.Intn(256))
				}
				pop.LookupBatch(addrs[:], batchTags[:], batchOK[:])
				for i, addr := range addrs {
					gt, gok := tr.Lookup(addr)
					pt, pok := pop.Lookup(addr)
					wt, wok := ref.Lookup(addr)
					if gt != wt || gok != wok {
						t.Fatalf("trie Lookup(%08x) = %v,%v want %v,%v", addr, gt, gok, wt, wok)
					}
					if pt != wt || pok != wok {
						t.Fatalf("poptrie Lookup(%08x) = %v,%v want %v,%v", addr, pt, pok, wt, wok)
					}
					if batchTags[i] != wt || batchOK[i] != wok {
						t.Fatalf("poptrie LookupBatch(%08x) = %v,%v want %v,%v", addr, batchTags[i], batchOK[i], wt, wok)
					}
				}
			}
			insert := func(step int, p netaddr.Prefix, tag encoding.Tag) {
				got, pgot, want := tr.Insert(p, tag), pop.Insert(p, tag), ref.Insert(p, tag)
				if got != want || pgot != want {
					t.Fatalf("step %d: Insert(%s) fresh trie=%v pop=%v want %v", step, p, got, pgot, want)
				}
			}
			remove := func(step int, p netaddr.Prefix) {
				got, pgot, want := tr.Delete(p), pop.Delete(p), ref.Delete(p)
				if got != want || pgot != want {
					t.Fatalf("step %d: Delete(%s) trie=%v pop=%v want %v", step, p, got, pgot, want)
				}
			}

			for step := 0; step < 4000; step++ {
				p := universe[rng.Intn(len(universe))]
				switch rng.Intn(12) {
				case 0, 1, 2, 3, 4: // insert / overwrite
					insert(step, p, encoding.Tag(rng.Intn(64)))
				case 5, 6, 7: // delete (possibly absent)
					remove(step, p)
				case 8: // withdraw-then-re-announce cycle with a new tag
					remove(step, p)
					insert(step, p, encoding.Tag(rng.Intn(64)))
				case 9: // full flush of a random half, then re-announce
					for _, q := range universe[:len(universe)/2] {
						remove(step, q)
					}
					for _, q := range universe[:len(universe)/4] {
						insert(step, q, encoding.Tag(rng.Intn(64)))
					}
				case 10: // batched churn: one InsertBatch + one DeleteBatch
					entries := make([]TagEntry, 0, 8)
					dels := make([]netaddr.Prefix, 0, 4)
					for i := 0; i < 8; i++ {
						entries = append(entries, TagEntry{Prefix: universe[rng.Intn(len(universe))], Tag: encoding.Tag(rng.Intn(64))})
					}
					for i := 0; i < 4; i++ {
						dels = append(dels, universe[rng.Intn(len(universe))])
					}
					fresh, pfresh := tr.InsertBatch(entries), pop.InsertBatch(entries)
					wfresh := 0
					for _, e := range entries {
						if ref.Insert(e.Prefix, e.Tag) {
							wfresh++
						}
					}
					if fresh != wfresh || pfresh != wfresh {
						t.Fatalf("step %d: InsertBatch fresh trie=%d pop=%d want %d", step, fresh, pfresh, wfresh)
					}
					hit, phit := tr.DeleteBatch(dels), pop.DeleteBatch(dels)
					whit := 0
					for _, q := range dels {
						if ref.Delete(q) {
							whit++
						}
					}
					if hit != whit || phit != whit {
						t.Fatalf("step %d: DeleteBatch hit trie=%d pop=%d want %d", step, hit, phit, whit)
					}
				case 11: // whole-table swap: the burst-end ReplaceTags path
					snap := make(map[netaddr.Prefix]encoding.Tag, len(ref.m))
					for q, tag := range ref.m {
						snap[q] = tag
					}
					pop.Replace(snap)
				}
				if tr.Len() != len(ref.m) || pop.Len() != len(ref.m) {
					t.Fatalf("step %d: Len trie=%d pop=%d, reference %d", step, tr.Len(), pop.Len(), len(ref.m))
				}
				if step%64 == 0 {
					probe()
				}
			}
			probe()

			// Exact-match view and iteration agree with the reference.
			n := 0
			tr.ForEach(func(p netaddr.Prefix, tag encoding.Tag) {
				n++
				if want, ok := ref.m[p]; !ok || want != tag {
					t.Fatalf("ForEach yielded %s=%v, reference %v,%v", p, tag, want, ok)
				}
			})
			if n != len(ref.m) {
				t.Fatalf("ForEach yielded %d entries, reference %d", n, len(ref.m))
			}
			for p, want := range ref.m {
				if got, ok := tr.Get(p); !ok || got != want {
					t.Fatalf("Get(%s) = %v,%v want %v,true", p, got, ok, want)
				}
				if got, ok := pop.Get(p); !ok || got != want {
					t.Fatalf("poptrie Get(%s) = %v,%v want %v,true", p, got, ok, want)
				}
			}
		})
	}
}

func TestTrieBatchOps(t *testing.T) {
	var tr Trie
	entries := []TagEntry{
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Tag: 1},
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Tag: 2},
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Tag: 3}, // overwrite within batch
	}
	if fresh := tr.InsertBatch(entries); fresh != 2 {
		t.Fatalf("InsertBatch fresh = %d, want 2", fresh)
	}
	if got, _ := tr.Lookup(0x0a010000); got != 3 {
		t.Fatalf("batch overwrite lost: got %v", got)
	}
	if hit := tr.DeleteBatch([]netaddr.Prefix{
		netaddr.MustParsePrefix("10.1.0.0/16"),
		netaddr.MustParsePrefix("10.9.0.0/16"), // absent
	}); hit != 1 {
		t.Fatalf("DeleteBatch hit = %d, want 1", hit)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

// TestTrieFromSorted drives the bulk restore constructor against
// per-entry Insert over randomized prefix sets: identical structure
// observables (Len, ForEach order, random lookups), identical behavior
// under further mutation, and rejection of unsorted input. The poptrie
// RestoreSorted wrapper is exercised the same way, including the lazy
// read-path rebuild after the bulk swap.
func TestTrieFromSorted(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		set := map[netaddr.Prefix]encoding.Tag{}
		n := 1 + rng.Intn(600)
		for i := 0; i < n; i++ {
			length := 4 + rng.Intn(29) // 4..32
			addr := uint32(rng.Intn(1<<20)) << 12
			p := netaddr.MakePrefix(addr&netaddr.Mask(length), length)
			set[p] = encoding.Tag(1 + rng.Intn(1<<16))
		}
		entries := make([]TagEntry, 0, len(set))
		var ref Trie
		for p, tag := range set {
			entries = append(entries, TagEntry{Prefix: p, Tag: tag})
			ref.Insert(p, tag)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Prefix < entries[j].Prefix })

		bulk, err := TrieFromSorted(entries)
		if err != nil {
			t.Fatalf("seed %d: TrieFromSorted: %v", seed, err)
		}
		if bulk.Len() != ref.Len() {
			t.Fatalf("seed %d: Len %d, want %d", seed, bulk.Len(), ref.Len())
		}
		var got, want []TagEntry
		bulk.ForEach(func(p netaddr.Prefix, tag encoding.Tag) { got = append(got, TagEntry{p, tag}) })
		ref.ForEach(func(p netaddr.Prefix, tag encoding.Tag) { want = append(want, TagEntry{p, tag}) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: ForEach[%d] = %+v, want %+v", seed, i, got[i], want[i])
			}
		}

		var pop Poptrie
		if err := pop.RestoreSorted(entries); err != nil {
			t.Fatalf("seed %d: RestoreSorted: %v", seed, err)
		}
		for i := 0; i < 2000; i++ {
			addr := uint32(rng.Intn(1 << 28))
			bt, bok := bulk.Lookup(addr)
			rt, rok := ref.Lookup(addr)
			pt, pok := pop.Lookup(addr)
			if bt != rt || bok != rok || pt != rt || pok != rok {
				t.Fatalf("seed %d: Lookup(%08x) bulk=%v,%v pop=%v,%v want %v,%v",
					seed, addr, bt, bok, pt, pok, rt, rok)
			}
		}

		// Mutations after a bulk build behave exactly like on the
		// incrementally built structures.
		for i := 0; i < 200; i++ {
			e := entries[rng.Intn(len(entries))]
			switch rng.Intn(3) {
			case 0:
				nt := encoding.Tag(1 + rng.Intn(1<<16))
				bulk.Insert(e.Prefix, nt)
				ref.Insert(e.Prefix, nt)
				pop.Insert(e.Prefix, nt)
			case 1:
				bulk.Delete(e.Prefix)
				ref.Delete(e.Prefix)
				pop.Delete(e.Prefix)
			case 2:
				addr := e.Prefix.Addr() | uint32(rng.Intn(1<<12))
				bt, bok := bulk.Lookup(addr)
				rt, rok := ref.Lookup(addr)
				pt, pok := pop.Lookup(addr)
				if bt != rt || bok != rok || pt != rt || pok != rok {
					t.Fatalf("seed %d: post-mutation Lookup(%08x) bulk=%v,%v pop=%v,%v want %v,%v",
						seed, addr, bt, bok, pt, pok, rt, rok)
				}
			}
		}
	}

	if _, err := TrieFromSorted([]TagEntry{
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Tag: 1},
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Tag: 2},
	}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := TrieFromSorted([]TagEntry{
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Tag: 1},
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Tag: 2},
	}); err == nil {
		t.Fatal("duplicate input accepted")
	}
	if tr, err := TrieFromSorted(nil); err != nil || tr.Len() != 0 {
		t.Fatalf("empty input: %v, len %d", err, tr.Len())
	}
}
