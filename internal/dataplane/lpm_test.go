package dataplane

import (
	"fmt"
	"math/rand"
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// mapLPM is the brute-force longest-prefix-match reference: the
// map-plus-length-scan structure the FIB used before the trie. It is
// the model the property test pins Trie against.
type mapLPM struct {
	m       map[netaddr.Prefix]encoding.Tag
	lengths [33]int
}

func newMapLPM() *mapLPM {
	return &mapLPM{m: make(map[netaddr.Prefix]encoding.Tag)}
}

func (r *mapLPM) Insert(p netaddr.Prefix, t encoding.Tag) bool {
	_, exists := r.m[p]
	if !exists {
		r.lengths[p.Len()]++
	}
	r.m[p] = t
	return !exists
}

func (r *mapLPM) Delete(p netaddr.Prefix) bool {
	if _, exists := r.m[p]; !exists {
		return false
	}
	delete(r.m, p)
	r.lengths[p.Len()]--
	return true
}

func (r *mapLPM) Lookup(addr uint32) (encoding.Tag, bool) {
	for l := 32; l >= 0; l-- {
		if r.lengths[l] == 0 {
			continue
		}
		if t, ok := r.m[netaddr.MakePrefix(addr, l)]; ok {
			return t, true
		}
	}
	return 0, false
}

func TestTrieBasics(t *testing.T) {
	var tr Trie
	p8 := netaddr.MustParsePrefix("10.0.0.0/8")
	p16 := netaddr.MustParsePrefix("10.1.0.0/16")
	p24 := netaddr.MustParsePrefix("10.1.2.0/24")
	def := netaddr.MustParsePrefix("0.0.0.0/0")

	if _, ok := tr.Lookup(0x0a010203); ok {
		t.Fatal("empty trie matched")
	}
	if !tr.Insert(p8, 1) || !tr.Insert(p16, 2) || !tr.Insert(p24, 3) {
		t.Fatal("fresh inserts reported as overwrites")
	}
	if tr.Insert(p16, 20) {
		t.Fatal("overwrite reported as fresh")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for _, tc := range []struct {
		addr uint32
		tag  encoding.Tag
		ok   bool
	}{
		{0x0a010203, 3, true},  // 10.1.2.3 -> /24
		{0x0a010303, 20, true}, // 10.1.3.3 -> /16 (overwritten tag)
		{0x0a020303, 1, true},  // 10.2.3.3 -> /8
		{0x0b000001, 0, false}, // 11.0.0.1 -> none
	} {
		got, ok := tr.Lookup(tc.addr)
		if ok != tc.ok || got != tc.tag {
			t.Errorf("Lookup(%08x) = %v,%v want %v,%v", tc.addr, got, ok, tc.tag, tc.ok)
		}
	}
	// Default route catches everything.
	tr.Insert(def, 9)
	if got, ok := tr.Lookup(0x0b000001); !ok || got != 9 {
		t.Errorf("default route: got %v,%v", got, ok)
	}
	if !tr.Delete(p16) || tr.Delete(p16) {
		t.Fatal("delete/re-delete misbehaved")
	}
	if got, ok := tr.Lookup(0x0a010303); !ok || got != 1 {
		t.Errorf("after /16 delete, 10.1.3.3 = %v,%v want 1,true", got, ok)
	}
	// Iterator order is ascending (addr, len).
	var seen []netaddr.Prefix
	tr.ForEach(func(p netaddr.Prefix, _ encoding.Tag) { seen = append(seen, p) })
	want := []netaddr.Prefix{def, p8, p24}
	if len(seen) != len(want) {
		t.Fatalf("ForEach yielded %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", seen, want)
		}
	}
}

// TestTriePropertyVsReference drives the trie and the brute-force
// reference through long randomized insert/delete/lookup sequences —
// including tag overwrites and full withdraw-then-re-announce cycles —
// and requires identical observable behavior throughout.
func TestTriePropertyVsReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var tr Trie
			ref := newMapLPM()

			// A confined universe of prefixes so operations collide:
			// overwrites, deletes of absent entries and nested covers all
			// happen often.
			universe := make([]netaddr.Prefix, 0, 256)
			for i := 0; i < 256; i++ {
				length := 8 + rng.Intn(25) // 8..32
				addr := uint32(10)<<24 | uint32(rng.Intn(8))<<16 | uint32(rng.Intn(16))<<8 | uint32(rng.Intn(4))
				universe = append(universe, netaddr.MakePrefix(addr&netaddr.Mask(length), length))
			}
			probe := func() {
				for i := 0; i < 32; i++ {
					addr := uint32(10)<<24 | uint32(rng.Intn(8))<<16 | uint32(rng.Intn(16))<<8 | uint32(rng.Intn(256))
					gt, gok := tr.Lookup(addr)
					wt, wok := ref.Lookup(addr)
					if gt != wt || gok != wok {
						t.Fatalf("Lookup(%08x) = %v,%v want %v,%v", addr, gt, gok, wt, wok)
					}
				}
			}

			for step := 0; step < 4000; step++ {
				p := universe[rng.Intn(len(universe))]
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // insert / overwrite
					tag := encoding.Tag(rng.Intn(64))
					if got, want := tr.Insert(p, tag), ref.Insert(p, tag); got != want {
						t.Fatalf("step %d: Insert(%s) fresh=%v want %v", step, p, got, want)
					}
				case 5, 6, 7: // delete (possibly absent)
					if got, want := tr.Delete(p), ref.Delete(p); got != want {
						t.Fatalf("step %d: Delete(%s) = %v want %v", step, p, got, want)
					}
				case 8: // withdraw-then-re-announce cycle with a new tag
					tr.Delete(p)
					ref.Delete(p)
					tag := encoding.Tag(rng.Intn(64))
					if got, want := tr.Insert(p, tag), ref.Insert(p, tag); got != want {
						t.Fatalf("step %d: cycle Insert(%s) fresh=%v want %v", step, p, got, want)
					}
				case 9: // full flush of a random half, then re-announce
					for _, q := range universe[:len(universe)/2] {
						if got, want := tr.Delete(q), ref.Delete(q); got != want {
							t.Fatalf("step %d: flush Delete(%s) = %v want %v", step, q, got, want)
						}
					}
					for _, q := range universe[:len(universe)/4] {
						tag := encoding.Tag(rng.Intn(64))
						if got, want := tr.Insert(q, tag), ref.Insert(q, tag); got != want {
							t.Fatalf("step %d: re-announce Insert(%s) = %v want %v", step, q, got, want)
						}
					}
				}
				if tr.Len() != len(ref.m) {
					t.Fatalf("step %d: Len = %d, reference %d", step, tr.Len(), len(ref.m))
				}
				if step%64 == 0 {
					probe()
				}
			}
			probe()

			// Exact-match view and iteration agree with the reference.
			n := 0
			tr.ForEach(func(p netaddr.Prefix, tag encoding.Tag) {
				n++
				if want, ok := ref.m[p]; !ok || want != tag {
					t.Fatalf("ForEach yielded %s=%v, reference %v,%v", p, tag, want, ok)
				}
			})
			if n != len(ref.m) {
				t.Fatalf("ForEach yielded %d entries, reference %d", n, len(ref.m))
			}
			for p, want := range ref.m {
				if got, ok := tr.Get(p); !ok || got != want {
					t.Fatalf("Get(%s) = %v,%v want %v,true", p, got, ok, want)
				}
			}
		})
	}
}

func TestTrieBatchOps(t *testing.T) {
	var tr Trie
	entries := []TagEntry{
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Tag: 1},
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Tag: 2},
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Tag: 3}, // overwrite within batch
	}
	if fresh := tr.InsertBatch(entries); fresh != 2 {
		t.Fatalf("InsertBatch fresh = %d, want 2", fresh)
	}
	if got, _ := tr.Lookup(0x0a010000); got != 3 {
		t.Fatalf("batch overwrite lost: got %v", got)
	}
	if hit := tr.DeleteBatch([]netaddr.Prefix{
		netaddr.MustParsePrefix("10.1.0.0/16"),
		netaddr.MustParsePrefix("10.9.0.0/16"), // absent
	}); hit != 1 {
		t.Fatalf("DeleteBatch hit = %d, want 1", hit)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}
