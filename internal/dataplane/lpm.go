package dataplane

import (
	"fmt"
	"math/bits"
	"sort"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// Trie is a compressed (path-collapsed) binary trie over IPv4 prefixes
// supporting longest-prefix match — the stage-1 structure of the FIB.
// One-child chains are collapsed into a single node carrying the whole
// bit string, so lookups touch at most one node per branching point
// instead of one per bit, and an empty or sparse table costs nothing.
//
// It replaces the map[Prefix]Tag + 33-length probe scan the FIB used
// before. The trade-off is explicit: the scan paid one map probe per
// POPULATED prefix length, so on a table with only one or two lengths
// (all-/32 host routes) a hit was 1-2 probes and the map stays faster
// there; the trie wins where the scan degrades — misses (~4x faster:
// it rejects at the first diverging node instead of probing every
// length) and real Internet-shaped tables with many populated lengths
// — and its O(32) worst case is independent of the length mix. It
// also gives the FIB what a map cannot: ordered iteration (the
// deterministic Dump the equivalence tests pin) and batched
// insert/delete. BenchmarkLPM* in bench_test.go measures both
// structures side by side.
//
// The zero value is an empty trie ready for use.
type Trie struct {
	root *trieNode
	size int
}

// trieNode covers the prefix (key, bits). Children, when present,
// extend the node's bit string and diverge on bit position bits (the
// first bit after the node's prefix). A node exists either because a
// tag is stored on it (tagged) or because two tagged descendants
// diverge below it. The mask is stored, not recomputed, because the
// containment test runs once per node on the lookup path.
type trieNode struct {
	key    uint32 // left-aligned network bits, masked to bits
	mask   uint32 // netaddr.Mask(bits)
	bits   uint8
	tagged bool
	tag    encoding.Tag
	child  [2]*trieNode
}

func newTrieNode(addr uint32, bits uint8) *trieNode {
	m := netaddr.Mask(int(bits))
	return &trieNode{key: addr & m, mask: m, bits: bits}
}

// TagEntry is one stage-1 rule, the unit of batched trie updates.
type TagEntry struct {
	Prefix netaddr.Prefix
	Tag    encoding.Tag
}

// bitAt returns bit i of x counting from the most significant (bit 0).
func bitAt(x uint32, i uint8) int { return int(x>>(31-i)) & 1 }

// commonBits returns the length of the longest common prefix of a and
// b, capped at max.
func commonBits(a, b uint32, max uint8) uint8 {
	c := uint8(bits.LeadingZeros32(a ^ b))
	if c > max {
		return max
	}
	return c
}

// Len returns the number of tagged prefixes.
func (t *Trie) Len() int { return t.size }

// Insert sets p's tag, returning true when p was not present before
// (an overwrite returns false).
func (t *Trie) Insert(p netaddr.Prefix, tag encoding.Tag) bool {
	addr, plen := p.Addr(), uint8(p.Len())
	pp := &t.root
	for {
		n := *pp
		if n == nil {
			leaf := newTrieNode(addr, plen)
			leaf.tagged, leaf.tag = true, tag
			*pp = leaf
			t.size++
			return true
		}
		limit := plen
		if n.bits < limit {
			limit = n.bits
		}
		cb := commonBits(addr, n.key, limit)
		if cb < n.bits {
			// Diverge above n: split its collapsed path at cb.
			split := newTrieNode(addr, cb)
			split.child[bitAt(n.key, cb)] = n
			if cb == plen {
				split.tagged, split.tag = true, tag
			} else {
				leaf := newTrieNode(addr, plen)
				leaf.tagged, leaf.tag = true, tag
				split.child[bitAt(addr, cb)] = leaf
			}
			*pp = split
			t.size++
			return true
		}
		if n.bits == plen {
			fresh := !n.tagged
			n.tagged, n.tag = true, tag
			if fresh {
				t.size++
			}
			return fresh
		}
		// n's prefix covers p strictly: descend on the next bit.
		pp = &n.child[bitAt(addr, n.bits)]
	}
}

// Delete removes p's tag, reporting whether it was present. Pass-through
// nodes left with fewer than two children are collapsed back into their
// remaining child, so the structure never accumulates dead interior
// nodes across withdraw/re-announce cycles.
func (t *Trie) Delete(p netaddr.Prefix) bool {
	var ok bool
	t.root, ok = t.delete(t.root, p.Addr(), uint8(p.Len()))
	if ok {
		t.size--
	}
	return ok
}

func (t *Trie) delete(n *trieNode, addr uint32, plen uint8) (*trieNode, bool) {
	if n == nil || n.bits > plen || addr&n.mask != n.key {
		return n, false
	}
	if n.bits == plen {
		if !n.tagged {
			return n, false
		}
		n.tagged = false
		return collapse(n), true
	}
	c := bitAt(addr, n.bits)
	nc, ok := t.delete(n.child[c], addr, plen)
	if !ok {
		return n, false
	}
	n.child[c] = nc
	return collapse(n), true
}

// collapse removes n if it is an untagged pass-through: with no
// children it vanishes, with one child the child (whose key already
// carries the full bit string) takes its place.
func collapse(n *trieNode) *trieNode {
	if n.tagged {
		return n
	}
	a, b := n.child[0], n.child[1]
	switch {
	case a != nil && b != nil:
		return n
	case a != nil:
		return a
	default:
		return b // nil when both children are gone
	}
}

// Lookup returns the tag of the longest tagged prefix containing addr.
func (t *Trie) Lookup(addr uint32) (encoding.Tag, bool) {
	var best encoding.Tag
	found := false
	for n := t.root; n != nil; {
		if addr&n.mask != n.key {
			break
		}
		if n.tagged {
			best, found = n.tag, true
		}
		if n.bits == 32 {
			break
		}
		n = n.child[bitAt(addr, n.bits)]
	}
	return best, found
}

// lookupMax returns the longest tagged prefix of length <= maxBits
// containing addr, encoded as the Poptrie root covers are: length+1,
// with 0 meaning no match. It is the oracle the poptrie consults when a
// deleted short prefix exposes the next-best cover of a root slot.
func (t *Trie) lookupMax(addr uint32, maxBits uint8) (encoding.Tag, uint8) {
	var best encoding.Tag
	l := uint8(0)
	for n := t.root; n != nil && n.bits <= maxBits; {
		if addr&n.mask != n.key {
			break
		}
		if n.tagged {
			best, l = n.tag, n.bits+1
		}
		if n.bits == 32 {
			break
		}
		n = n.child[bitAt(addr, n.bits)]
	}
	return best, l
}

// Get returns the tag stored exactly at p (no LPM).
func (t *Trie) Get(p netaddr.Prefix) (encoding.Tag, bool) {
	addr, plen := p.Addr(), uint8(p.Len())
	for n := t.root; n != nil; {
		if n.bits > plen || addr&n.mask != n.key {
			return 0, false
		}
		if n.bits == plen {
			return n.tag, n.tagged
		}
		n = n.child[bitAt(addr, n.bits)]
	}
	return 0, false
}

// InsertBatch applies a batch of tag writes and returns how many were
// new (the FIB charges one rule write per entry either way).
func (t *Trie) InsertBatch(entries []TagEntry) int {
	fresh := 0
	for _, e := range entries {
		if t.Insert(e.Prefix, e.Tag) {
			fresh++
		}
	}
	return fresh
}

// DeleteBatch removes a batch of prefixes and returns how many were
// present.
func (t *Trie) DeleteBatch(ps []netaddr.Prefix) int {
	hit := 0
	for _, p := range ps {
		if t.Delete(p) {
			hit++
		}
	}
	return hit
}

// ForEach visits every tagged prefix in ascending netaddr order
// (address, then length — a node's covering prefix before the more
// specific prefixes beneath it).
func (t *Trie) ForEach(fn func(p netaddr.Prefix, tag encoding.Tag)) {
	t.root.walk(fn)
}

func (n *trieNode) walk(fn func(p netaddr.Prefix, tag encoding.Tag)) {
	if n == nil {
		return
	}
	if n.tagged {
		fn(netaddr.MakePrefix(n.key, int(n.bits)), n.tag)
	}
	n.child[0].walk(fn)
	n.child[1].walk(fn)
}

// TrieFromMap builds a trie holding every entry of m.
func TrieFromMap(m map[netaddr.Prefix]encoding.Tag) *Trie {
	t := &Trie{}
	for p, tag := range m {
		t.Insert(p, tag)
	}
	return t
}

// TrieFromSorted builds a trie from entries in strictly ascending
// prefix order — the order Export and ForEach emit — in one top-down
// pass over the sorted slice, with every node allocated out of a single
// slab. It produces the same canonical structure per-entry Insert
// would (a node exists iff it is tagged or two tagged descendants
// diverge below it) without any path splitting or re-walking, which is
// what makes restoring a 100k-entry stage-1 table a few-millisecond
// operation instead of the dominant cost of a warm restart. The slab
// is reclaimed only when the whole trie is dropped; entries deleted
// later free no memory on their own, which matches the restore-then-
// mutate lifecycle this constructor serves.
func TrieFromSorted(entries []TagEntry) (*Trie, error) {
	for i := 1; i < len(entries); i++ {
		if entries[i].Prefix <= entries[i-1].Prefix {
			return nil, fmt.Errorf("dataplane: entries not strictly ascending at %v", entries[i].Prefix)
		}
	}
	t := &Trie{size: len(entries)}
	if len(entries) == 0 {
		return t, nil
	}
	b := &sortedBuilder{nodes: make([]trieNode, 2*len(entries)-1)}
	t.root = b.build(entries)
	return t, nil
}

// sortedBuilder allocates trie nodes sequentially from one slab.
type sortedBuilder struct {
	nodes []trieNode
	used  int
}

func (b *sortedBuilder) alloc(addr uint32, bits uint8) *trieNode {
	n := &b.nodes[b.used]
	b.used++
	n.mask = netaddr.Mask(int(bits))
	n.key = addr & n.mask
	n.bits = bits
	return n
}

// build constructs the subtree covering the non-empty sorted slice s.
// The subtree's root prefix is the longest common prefix of the whole
// slice: the divergence point of the first and last addresses, clipped
// to the first entry's length (ascending order puts the shortest prefix
// of the smallest address first, so no other entry can be shorter —
// see the strictly-ascending precondition).
func (b *sortedBuilder) build(s []TagEntry) *trieNode {
	first := s[0]
	faddr, flen := first.Prefix.Addr(), uint8(first.Prefix.Len())
	if len(s) == 1 {
		n := b.alloc(faddr, flen)
		n.tagged, n.tag = true, first.Tag
		return n
	}
	r := commonBits(faddr, s[len(s)-1].Prefix.Addr(), 32)
	if flen < r {
		r = flen
	}
	n := b.alloc(faddr, r)
	rest := s
	if flen == r {
		n.tagged, n.tag = true, first.Tag
		rest = s[1:]
	}
	// Every remaining entry extends past bit r, and ascending order
	// keeps the bit-r=0 entries contiguous before the bit-r=1 ones.
	split := sort.Search(len(rest), func(i int) bool {
		return bitAt(rest[i].Prefix.Addr(), r) == 1
	})
	// When n is untagged, r is the exact first/last divergence, so both
	// sides are non-empty and no pass-through chain is created.
	if split > 0 {
		n.child[0] = b.build(rest[:split])
	}
	if split < len(rest) {
		n.child[1] = b.build(rest[split:])
	}
	return n
}
