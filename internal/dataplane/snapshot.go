package dataplane

import (
	"fmt"
	"time"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// Warm-restart image for the two-stage FIB. Stage 1 exports in the
// trie's deterministic ascending-prefix order (the Dump order), stage 2
// verbatim in match order, and the write accounting rides along so a
// restored FIB reports the same modeled update cost it had accrued —
// restoring is not charged as rule writes, because the hardware table
// this models would be repopulated from the saved state, not rebuilt
// through the per-rule update path being metered.

// FIBImage is a FIB's complete forwarding state.
type FIBImage struct {
	Tags    []TagEntry
	Rules   []encoding.Rule
	Writes  int
	Elapsed time.Duration
}

// Export captures the FIB. Tags come out in ascending prefix order,
// rules in match order, so the image is canonical.
func (f *FIB) Export() FIBImage {
	img := FIBImage{
		Tags:    make([]TagEntry, 0, f.stage1.Len()),
		Rules:   append([]encoding.Rule(nil), f.stage2...),
		Writes:  f.writes,
		Elapsed: f.elapsed,
	}
	f.stage1.ForEach(func(p netaddr.Prefix, t encoding.Tag) {
		img.Tags = append(img.Tags, TagEntry{Prefix: p, Tag: t})
	})
	return img
}

// Restore builds a FIB from an image without charging writes.
func Restore(cfg Config, img FIBImage) (*FIB, error) {
	for i := 1; i < len(img.Rules); i++ {
		if img.Rules[i].Priority > img.Rules[i-1].Priority {
			return nil, fmt.Errorf("dataplane: restore: stage-2 rules not in match order at %d", i)
		}
	}
	f := New(cfg)
	if err := f.stage1.RestoreSorted(img.Tags); err != nil {
		return nil, err
	}
	f.stage2 = append([]encoding.Rule(nil), img.Rules...)
	f.writes = img.Writes
	f.elapsed = img.Elapsed
	return f, nil
}
