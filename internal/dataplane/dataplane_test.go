package dataplane

import (
	"testing"
	"time"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

func TestStage1LPM(t *testing.T) {
	f := New(Config{})
	f.SetTag(netaddr.MustParsePrefix("10.0.0.0/8"), 1)
	f.SetTag(netaddr.MustParsePrefix("10.1.0.0/16"), 2)
	f.SetTag(netaddr.MustParsePrefix("10.1.2.0/24"), 3)

	for _, c := range []struct {
		addr uint32
		want encoding.Tag
	}{
		{0x0a010203, 3}, // 10.1.2.3 -> /24
		{0x0a010303, 2}, // 10.1.3.3 -> /16
		{0x0a020303, 1}, // 10.2.3.3 -> /8
	} {
		got, ok := f.TagOf(c.addr)
		if !ok || got != c.want {
			t.Errorf("TagOf(%08x) = %d, %v; want %d", c.addr, got, ok, c.want)
		}
	}
	if _, ok := f.TagOf(0x0b000000); ok {
		t.Error("11.0.0.0 must miss")
	}
}

func TestRemoveTag(t *testing.T) {
	f := New(Config{})
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	f.SetTag(p, 1)
	f.RemoveTag(p)
	if _, ok := f.TagOf(0x0a000001); ok {
		t.Error("removed tag still matches")
	}
	f.RemoveTag(p) // idempotent
}

func TestPriorityMatching(t *testing.T) {
	f := New(Config{})
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	f.SetTag(p, 0b1010)
	f.InstallRule(encoding.Rule{Value: 0b1000, Mask: 0b1000, NextHop: 2, Priority: 0})
	nh, ok := f.Forward(0x0a000001)
	if !ok || nh != 2 {
		t.Fatalf("Forward = %d, %v", nh, ok)
	}
	// A higher-priority reroute rule takes over.
	f.InstallRule(encoding.Rule{Value: 0b0010, Mask: 0b0010, NextHop: 3, Priority: 10})
	nh, ok = f.Forward(0x0a000001)
	if !ok || nh != 3 {
		t.Fatalf("after reroute Forward = %d, %v", nh, ok)
	}
	// Fallback: removing the reroute restores the primary.
	if removed := f.RemoveRulesAt(10); removed != 1 {
		t.Errorf("removed = %d", removed)
	}
	nh, _ = f.Forward(0x0a000001)
	if nh != 2 {
		t.Errorf("after fallback Forward = %d", nh)
	}
}

func TestForwardDropsUnmatched(t *testing.T) {
	f := New(Config{})
	f.SetTag(netaddr.MustParsePrefix("10.0.0.0/8"), 0b0001)
	f.InstallRule(encoding.Rule{Value: 0b1000, Mask: 0b1000, NextHop: 2})
	if _, ok := f.Forward(0x0a000001); ok {
		t.Error("packet with non-matching tag must drop")
	}
	if _, ok := f.Forward(0x0b000001); ok {
		t.Error("packet without tag must drop")
	}
}

func TestUpdateAccounting(t *testing.T) {
	cost := 200 * time.Microsecond
	f := New(Config{RuleUpdateCost: cost})
	for i := 0; i < 100; i++ {
		f.SetTag(netaddr.PrefixFor(5, i), encoding.Tag(i))
	}
	f.InstallRules(make([]encoding.Rule, 10))
	if f.Writes() != 110 {
		t.Errorf("writes = %d, want 110", f.Writes())
	}
	if f.Elapsed() != 110*cost {
		t.Errorf("elapsed = %v, want %v", f.Elapsed(), 110*cost)
	}
	f.ResetAccounting()
	if f.Writes() != 0 || f.Elapsed() != 0 {
		t.Error("accounting not reset")
	}
}

func TestDefaultCostWithinPaperRange(t *testing.T) {
	if DefaultRuleUpdate < MinRuleUpdate || DefaultRuleUpdate > MaxRuleUpdate {
		t.Error("default per-rule cost must sit in the 128-282us range")
	}
	f := New(Config{})
	f.SetTag(netaddr.PrefixFor(5, 0), 0)
	if f.Elapsed() < MinRuleUpdate || f.Elapsed() > MaxRuleUpdate {
		t.Errorf("one write cost %v outside the paper's range", f.Elapsed())
	}
}

func TestRerouteLatencyIndependentOfPrefixCount(t *testing.T) {
	// The point of SWIFT's encoding (§3.2): rerouting N prefixes costs
	// a handful of rule writes, not N. Provision 50k prefixes, then
	// measure only the reroute.
	f := New(Config{})
	for i := 0; i < 50000; i++ {
		f.SetTag(netaddr.PrefixFor(5, i), 0b0100)
	}
	f.InstallRule(encoding.Rule{Value: 0, Mask: 0, NextHop: 2, Priority: 0})
	f.ResetAccounting()
	f.InstallRules([]encoding.Rule{
		{Value: 0b0100, Mask: 0b0100, NextHop: 3, Priority: 10},
	})
	if f.Writes() != 1 {
		t.Fatalf("reroute writes = %d, want 1", f.Writes())
	}
	if f.Elapsed() > time.Millisecond {
		t.Errorf("reroute cost = %v, want sub-millisecond", f.Elapsed())
	}
	// And it actually moved all the traffic.
	nh, ok := f.Forward(netaddr.PrefixFor(5, 12345).Addr())
	if !ok || nh != 3 {
		t.Errorf("rerouted Forward = %d, %v", nh, ok)
	}
}

func TestNumRules(t *testing.T) {
	f := New(Config{})
	f.InstallRule(encoding.Rule{Priority: 1})
	f.InstallRule(encoding.Rule{Priority: 2})
	if f.NumRules() != 2 {
		t.Errorf("rules = %d", f.NumRules())
	}
}
