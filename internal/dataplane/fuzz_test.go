package dataplane

import (
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

// FuzzLPMOps drives the poptrie-fronted stage-1 LPM and the bare trie
// through a fuzzer-chosen stream of interleaved InsertBatch /
// DeleteBatch / Lookup operations, checking every observable against
// the brute-force map reference: batch return counts, point lookups,
// entry counts, and a final full-table sweep. Ops are decoded from
// 6-byte records — [op][addr:4][len] — and mostly confined to a small
// address pocket so covers, overwrites, collapses and re-announces
// collide constantly.
func FuzzLPMOps(f *testing.F) {
	for _, seed := range fuzzLPMSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trie
		var pop Poptrie
		ref := newMapLPM()
		var ins []TagEntry
		var dels []netaddr.Prefix
		var touched []uint32

		check := func(addr uint32) {
			wt, wok := ref.Lookup(addr)
			if gt, gok := pop.Lookup(addr); gt != wt || gok != wok {
				t.Fatalf("poptrie Lookup(%08x) = %v,%v want %v,%v", addr, gt, gok, wt, wok)
			}
			if gt, gok := tr.Lookup(addr); gt != wt || gok != wok {
				t.Fatalf("trie Lookup(%08x) = %v,%v want %v,%v", addr, gt, gok, wt, wok)
			}
		}
		flush := func() {
			if len(ins) > 0 {
				want := 0
				for _, e := range ins {
					if ref.Insert(e.Prefix, e.Tag) {
						want++
					}
				}
				if got, pgot := tr.InsertBatch(ins), pop.InsertBatch(ins); got != want || pgot != want {
					t.Fatalf("InsertBatch fresh trie=%d pop=%d want %d", got, pgot, want)
				}
				ins = ins[:0]
			}
			if len(dels) > 0 {
				want := 0
				for _, p := range dels {
					if ref.Delete(p) {
						want++
					}
				}
				if got, pgot := tr.DeleteBatch(dels), pop.DeleteBatch(dels); got != want || pgot != want {
					t.Fatalf("DeleteBatch hit trie=%d pop=%d want %d", got, pgot, want)
				}
				dels = dels[:0]
			}
			if tr.Len() != len(ref.m) || pop.Len() != len(ref.m) {
				t.Fatalf("Len trie=%d pop=%d want %d", tr.Len(), pop.Len(), len(ref.m))
			}
		}

		for len(data) >= 6 {
			op, rec := data[0], data[1:6]
			data = data[6:]
			addr := uint32(rec[0])<<24 | uint32(rec[1])<<16 | uint32(rec[2])<<8 | uint32(rec[3])
			if op&4 == 0 {
				// Confined pocket: ops collide, covers nest.
				addr = uint32(10)<<24 | uint32(rec[1]&3)<<16 | uint32(rec[2]&15)<<8 | uint32(rec[3])
			}
			length := int(rec[4] % 33)
			pfx := netaddr.MakePrefix(addr&netaddr.Mask(length), length)
			touched = append(touched, addr)
			switch op % 3 {
			case 0:
				ins = append(ins, TagEntry{Prefix: pfx, Tag: encoding.Tag(rec[3] ^ rec[4])})
			case 1:
				dels = append(dels, pfx)
			case 2:
				flush()
				check(addr)
			}
		}
		flush()
		for _, addr := range touched {
			check(addr)
		}
		n := 0
		pop.ForEach(func(p netaddr.Prefix, tag encoding.Tag) {
			n++
			if want, ok := ref.m[p]; !ok || want != tag {
				t.Fatalf("ForEach yielded %s=%v, reference %v,%v", p, tag, want, ok)
			}
		})
		if n != len(ref.m) {
			t.Fatalf("ForEach yielded %d entries, reference %d", n, len(ref.m))
		}
	})
}

// fuzzLPMSeeds hand-builds op streams covering the structure's seams:
// nested covers across the /16 stride, default-route expansion,
// withdraw/re-announce cycles, and chunk-subtree collapse.
func fuzzLPMSeeds() [][]byte {
	rec := func(op byte, addr uint32, length byte) []byte {
		return []byte{op, byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr), length}
	}
	cat := func(recs ...[]byte) []byte {
		var out []byte
		for _, r := range recs {
			out = append(out, r...)
		}
		return out
	}
	a := uint32(10)<<24 | 1<<16 | 2<<8 | 3
	return [][]byte{
		// Nested tower 0/8/16/24/32, probe, then peel it top-down.
		cat(rec(0, a, 0), rec(0, a, 8), rec(0, a, 16), rec(0, a, 24), rec(0, a, 32),
			rec(2, a, 0), rec(1, a, 32), rec(1, a, 24), rec(2, a, 0), rec(1, a, 16), rec(2, a, 0)),
		// Withdraw/re-announce churn on one /24 with tag changes.
		cat(rec(0, a, 24), rec(1, a, 24), rec(0, a, 24), rec(2, a, 0), rec(1, a, 24), rec(2, a, 0)),
		// Wide-address ops (op&4 set): chunk 0xffff and chunk 0.
		cat(rec(4, 0xffffffff, 32), rec(4, 0x00000001, 32), rec(6, 0xffffffff, 0), rec(6, 0x00000001, 0)),
		// Batched mixed insert+delete flushed together.
		cat(rec(0, a, 20), rec(0, a, 22), rec(1, a, 20), rec(0, a, 28), rec(2, a, 0)),
	}
}
