package dataplane

import (
	"math/rand"
	"testing"

	"swift/internal/encoding"
	"swift/internal/netaddr"
)

func TestPoptrieBasics(t *testing.T) {
	var pt Poptrie
	def := netaddr.MustParsePrefix("0.0.0.0/0")
	p8 := netaddr.MustParsePrefix("10.0.0.0/8")
	p16 := netaddr.MustParsePrefix("10.1.0.0/16")
	p24 := netaddr.MustParsePrefix("10.1.2.0/24")
	p32 := netaddr.MustParsePrefix("10.1.2.3/32")

	if _, ok := pt.Lookup(0x0a010203); ok {
		t.Fatal("empty poptrie matched")
	}
	for i, e := range []struct {
		p netaddr.Prefix
		t encoding.Tag
	}{{p8, 1}, {p16, 2}, {p24, 3}, {p32, 4}} {
		if !pt.Insert(e.p, e.t) {
			t.Fatalf("insert %d reported overwrite", i)
		}
	}
	for _, tc := range []struct {
		addr uint32
		tag  encoding.Tag
		ok   bool
	}{
		{0x0a010203, 4, true},  // exact /32
		{0x0a010204, 3, true},  // /24
		{0x0a010303, 2, true},  // /16 — node default, not root leaf
		{0x0a020304, 1, true},  // /8 root expansion
		{0x0b000001, 0, false}, // miss
	} {
		if got, ok := pt.Lookup(tc.addr); ok != tc.ok || got != tc.tag {
			t.Errorf("Lookup(%08x) = %v,%v want %v,%v", tc.addr, got, ok, tc.tag, tc.ok)
		}
	}
	// Default route expands over the whole root array.
	pt.Insert(def, 9)
	if got, ok := pt.Lookup(0xdeadbeef); !ok || got != 9 {
		t.Fatalf("default route: got %v,%v", got, ok)
	}
	// Withdrawing the chunk's /16 exposes the /8 inside the node default.
	pt.Delete(p16)
	if got, ok := pt.Lookup(0x0a010303); !ok || got != 1 {
		t.Fatalf("after /16 delete: got %v,%v want 1", got, ok)
	}
	// Collapsing the long tail returns the cover to the root slot.
	pt.Delete(p24)
	pt.Delete(p32)
	if got, ok := pt.Lookup(0x0a010203); !ok || got != 1 {
		t.Fatalf("after tail delete: got %v,%v want 1", got, ok)
	}
	pt.Delete(p8)
	if got, ok := pt.Lookup(0x0a010203); !ok || got != 9 {
		t.Fatalf("after /8 delete: got %v,%v want 9 (default)", got, ok)
	}
	pt.Delete(def)
	if _, ok := pt.Lookup(0x0a010203); ok {
		t.Fatal("emptied poptrie still matches")
	}
	if pt.Len() != 0 {
		t.Fatalf("Len = %d, want 0", pt.Len())
	}
}

// TestPoptrieReplaceLazyRebuild pins the Replace contract: the swap is
// visible on the next lookup (the rebuild is lazy but transparent), and
// incremental updates applied while the read path is stale land too.
func TestPoptrieReplaceLazyRebuild(t *testing.T) {
	var pt Poptrie
	pt.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), 1)
	pt.Replace(map[netaddr.Prefix]encoding.Tag{
		netaddr.MustParsePrefix("10.1.0.0/16"): 5,
		netaddr.MustParsePrefix("10.1.2.0/24"): 6,
	})
	// Mutate before the first post-swap read: must not be lost.
	pt.Insert(netaddr.MustParsePrefix("10.1.2.3/32"), 7)
	pt.Delete(netaddr.MustParsePrefix("10.1.2.0/24"))
	if got, ok := pt.Lookup(0x0a010203); !ok || got != 7 {
		t.Fatalf("post-swap /32: got %v,%v want 7", got, ok)
	}
	if got, ok := pt.Lookup(0x0a010204); !ok || got != 5 {
		t.Fatalf("post-swap /16: got %v,%v want 5", got, ok)
	}
	if got, ok := pt.Lookup(0x0a000001); ok {
		t.Fatalf("pre-swap /8 leaked through Replace: got %v", got)
	}
}

// TestForwardBatchMatchesForward drives a randomized two-stage FIB and
// requires the batched pipeline to agree packet-for-packet with the
// scalar one, including drops at both stages.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(Config{})
	for i := 0; i < 4096; i++ {
		length := 8 + rng.Intn(25)
		addr := rng.Uint32() & netaddr.Mask(length)
		f.SetTag(netaddr.MakePrefix(addr, length), encoding.Tag(rng.Intn(64)))
	}
	// Rules that match only half the tag space, so stage-2 drops occur.
	for p := 0; p < 8; p++ {
		f.InstallRule(encoding.Rule{Value: encoding.Tag(p), Mask: 0x3f, NextHop: uint32(100 + p), Priority: p % 3})
	}
	addrs := make([]uint32, 1000)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	nh := make([]uint32, len(addrs))
	ok := make([]bool, len(addrs))
	prio := make([]int, len(addrs))
	f.ForwardDetailBatch(addrs, nh, prio, ok)
	for i, addr := range addrs {
		wantNH, wantPrio, wantOK := f.ForwardDetail(addr)
		if nh[i] != wantNH || prio[i] != wantPrio || ok[i] != wantOK {
			t.Fatalf("ForwardDetailBatch[%d] addr %08x = %d,%d,%v want %d,%d,%v",
				i, addr, nh[i], prio[i], ok[i], wantNH, wantPrio, wantOK)
		}
	}
	f.ForwardBatch(addrs, nh, ok)
	for i, addr := range addrs {
		wantNH, wantOK := f.Forward(addr)
		if nh[i] != wantNH || ok[i] != wantOK {
			t.Fatalf("ForwardBatch[%d] addr %08x = %d,%v want %d,%v", i, addr, nh[i], ok[i], wantNH, wantOK)
		}
	}
}

// TestFIBDumpUnchangedByReadPath pins that the read-path structure does
// not perturb the deterministic Dump contract: dumps reflect the trie's
// ordered walk regardless of how the table was built or churned.
func TestFIBDumpUnchangedByReadPath(t *testing.T) {
	build := func(viaReplace bool) *FIB {
		f := New(Config{})
		m := map[netaddr.Prefix]encoding.Tag{}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 512; i++ {
			length := 8 + rng.Intn(25)
			addr := rng.Uint32() & netaddr.Mask(length)
			m[netaddr.MakePrefix(addr, length)] = encoding.Tag(rng.Intn(64))
		}
		if viaReplace {
			f.ReplaceTags(m)
		} else {
			for p, tag := range m {
				f.SetTag(p, tag)
			}
		}
		return f
	}
	a, b := build(true), build(false)
	// Force the lazy rebuild on one of them; dumps must still agree.
	a.TagOf(0)
	if a.Dump() != b.Dump() {
		t.Fatal("Dump differs between Replace-built and SetTag-built FIBs")
	}
}
