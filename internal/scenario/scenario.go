// Package scenario is the failure-scenario engine: a seeded,
// deterministic generator of diverse topology/failure scenarios plus a
// packet-level evaluation loop that scores each one by actual per-flow
// connectivity loss through the real two-stage FIB.
//
// The SWIFT paper's headline claim (§6) is reduced *traffic* loss
// during remote-outage convergence. The figure experiments in
// internal/experiments reproduce the paper's decision metrics; this
// package closes the loop to packets: every scenario builds a routed
// topology, injects a failure, replays the resulting BGP message
// stream into a fleet of SWIFT engines, and forwards a synthetic flow
// set through each engine's dataplane.FIB (stage-1 LPM tag lookup,
// stage-2 ternary match) at every virtual-time tick. A packet is lost
// while its flow is blackholed — between failure onset and the instant
// a rule that diverts it has finished installing — and delivered when
// the FIB hands it to a next-hop the post-failure routing actually
// serves. The same stream is scored against a vanilla router model
// (per-prefix FIB writes as messages arrive), so each scenario reports
// SWIFT-on and SWIFT-off loss side by side, with prediction FPR/FNR
// against the burst's ground truth.
//
// Everything is derived from Spec.Seed: same spec, same report.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/dataplane"
	"swift/internal/event"
	"swift/internal/netaddr"
	"swift/internal/topology"
)

// TopologyKind selects the scenario's topology family.
type TopologyKind uint8

const (
	// TopoFig1 is the paper's running example (Fig. 1).
	TopoFig1 TopologyKind = iota
	// TopoGenerated is a synthetic power-law topology (§6.1).
	TopoGenerated
)

// FailureKind selects what fails.
type FailureKind uint8

const (
	// FailLink fails a single remote AS link.
	FailLink FailureKind = iota
	// FailAS fails a whole AS: every adjacent link at once (§4.2).
	FailAS
)

// Spec is one scenario's complete parameterization. The zero value of
// every knob selects a sensible default (see withDefaults), so matrix
// generators only set what varies.
type Spec struct {
	Name string
	Seed int64

	// Topology.
	Topology          TopologyKind
	NumASes           int     // generated topologies (default 32)
	AvgDegree         float64 // generated topologies (default 5)
	NumOrigins        int     // generated topologies (default 8)
	PrefixesPerOrigin int     // default 40

	// Failure.
	Failure  FailureKind
	HopsAway int // AS-hop distance of the failed link from the vantage edge (default 2)

	// Burst shaping.
	Peers           int           // monitored sessions (default 1)
	PeerSkew        time.Duration // per-session onset skew
	PartialWithdraw float64       // fraction of withdrawals kept (0 or 1 = all)
	Flap            bool          // transient failure: resource recovers, routes re-announced
	FlapDelay       time.Duration // recovery delay past the burst (default 1.5s)
	Noise           int           // unrelated withdrawals injected into each burst

	// Engine knobs, scaled down from the paper's Internet-size defaults
	// so small scenarios still trigger detection and inference.
	TriggerEvery int           // default 15
	BurstStart   int           // default 20
	Window       time.Duration // default 5s

	// Evaluation loop.
	Tick            time.Duration // virtual-time step (default 10ms)
	MaxFlows        int           // per-session flow cap (default 256)
	SettleAfter     time.Duration // scored time past the last event (default 300ms)
	RuleUpdateCost  time.Duration // SWIFT rule write cost (default dataplane.DefaultRuleUpdate)
	PerPrefixUpdate time.Duration // vanilla router per-prefix FIB write (default 375µs, Table 1's slope)
}

func (s Spec) withDefaults() Spec {
	if s.NumASes <= 0 {
		s.NumASes = 32
	}
	if s.AvgDegree <= 0 {
		s.AvgDegree = 5
	}
	if s.NumOrigins <= 0 {
		s.NumOrigins = 8
	}
	if s.PrefixesPerOrigin <= 0 {
		s.PrefixesPerOrigin = 40
	}
	if s.HopsAway <= 0 {
		s.HopsAway = 2
	}
	if s.Peers <= 0 {
		s.Peers = 1
	}
	if s.FlapDelay <= 0 {
		s.FlapDelay = 1500 * time.Millisecond
	}
	if s.TriggerEvery <= 0 {
		s.TriggerEvery = 15
	}
	if s.BurstStart <= 0 {
		s.BurstStart = 20
	}
	if s.Window <= 0 {
		s.Window = 5 * time.Second
	}
	if s.Tick <= 0 {
		s.Tick = 10 * time.Millisecond
	}
	if s.MaxFlows <= 0 {
		s.MaxFlows = 256
	}
	if s.SettleAfter <= 0 {
		s.SettleAfter = 300 * time.Millisecond
	}
	if s.RuleUpdateCost <= 0 {
		s.RuleUpdateCost = dataplane.DefaultRuleUpdate
	}
	if s.PerPrefixUpdate <= 0 {
		s.PerPrefixUpdate = 375 * time.Microsecond
	}
	return s
}

// Session is one monitored BGP session of the scenario's vantage
// router, with the failure's message stream as observed there.
type Session struct {
	Peer     event.PeerKey
	Neighbor uint32
	// RIB is the pre-failure Adj-RIB-In: origin -> announced path.
	RIB map[uint32][]uint32
	// Burst is the session's replayed (and mutated) message stream.
	Burst *bgpsim.Burst
}

// Scenario is a built, evaluable failure scenario.
type Scenario struct {
	Spec     Spec
	Net      *bgpsim.Network
	Vantage  uint32
	Sessions []Session
	Failed   []topology.Link
	// FailureDesc names the fault for the report.
	FailureDesc string
	// Backup is the neighbor guaranteed to keep a valid detour for
	// every origin (Fig. 1's AS 3; the partial-transit provider in
	// generated topologies). The engines' reroute policy ranks it
	// cheapest.
	Backup uint32
	// NeighborRIBs holds every vantage neighbor's pre-failure export
	// (neighbor -> origin -> path): a session's primary table, and the
	// alternate tables its engine draws backups from.
	NeighborRIBs map[uint32]map[uint32][]uint32

	// validBefore / validAfter answer, per vantage neighbor and origin,
	// whether that neighbor serves a route pre-/post-failure — the
	// oracle a forwarded packet is judged against.
	validBefore map[uint32]map[uint32]bool
	validAfter  map[uint32]map[uint32]bool
	// convergedNH is the vantage's converged post-failure next hop per
	// origin (0 = unreachable) — where the vanilla router lands after
	// processing a withdrawal.
	convergedNH map[uint32]uint32
	// recoverAt, when positive, is the virtual time the failed resource
	// comes back (flap scenarios); from then on validBefore governs.
	recoverAt time.Duration
}

// Remote reports whether the scenario injects a remote failure — no
// failed link touches the vantage itself, the class the paper targets.
// pickFailure only produces remote failures today, but the report
// field stays derived so a future local-failure class classifies
// itself correctly.
func (sc *Scenario) Remote() bool {
	for _, l := range sc.Failed {
		if l.Has(sc.Vantage) {
			return false
		}
	}
	return len(sc.Failed) > 0
}

// Build derives the complete scenario from the spec, deterministically.
func Build(spec Spec) (*Scenario, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	net, vantage, backup, err := buildNetwork(spec, rng)
	if err != nil {
		return nil, err
	}
	solsBefore := net.Solve(net.Graph)
	neighbors := sessionNeighbors(net, vantage, spec.Peers)
	if len(neighbors) < 2 {
		return nil, fmt.Errorf("scenario %q: vantage %d has %d neighbors, need >= 2 for backups", spec.Name, vantage, len(neighbors))
	}
	primary := neighbors[0]

	failed, dead, desc, err := pickFailure(spec, rng, net, solsBefore, vantage, primary)
	if err != nil {
		return nil, err
	}

	sc := &Scenario{
		Spec:         spec,
		Net:          net,
		Vantage:      vantage,
		Failed:       failed,
		FailureDesc:  desc,
		Backup:       backup,
		NeighborRIBs: make(map[uint32]map[uint32][]uint32, len(neighbors)),
	}
	for _, nb := range neighbors {
		sc.NeighborRIBs[nb] = net.SessionRIB(solsBefore, vantage, nb)
	}

	// Per-session bursts with the spec's mutations.
	sessions := neighbors
	if len(sessions) > spec.Peers {
		sessions = sessions[:spec.Peers]
	}
	timing := func(i int) bgpsim.Timing {
		return bgpsim.DefaultTiming(spec.Seed*1000 + int64(i))
	}
	for i, nb := range sessions {
		var b *bgpsim.Burst
		var err error
		if dead != 0 {
			b, err = net.ReplayASFailure(vantage, nb, dead, timing(i))
		} else {
			b, err = net.ReplayLinkFailure(vantage, nb, failed[0], timing(i))
		}
		if err != nil {
			return nil, fmt.Errorf("scenario %q session %d: %w", spec.Name, nb, err)
		}
		if spec.PartialWithdraw > 0 && spec.PartialWithdraw < 1 {
			b.PartialWithdraw(spec.PartialWithdraw, spec.Seed*31+int64(i))
		}
		if spec.Noise > 0 {
			b.InjectNoise(net, spec.Noise, spec.Seed*37+int64(i))
		}
		if spec.PeerSkew > 0 {
			b.Shift(time.Duration(i) * spec.PeerSkew)
		}
		sc.Sessions = append(sc.Sessions, Session{
			Peer:     event.PeerKey{AS: nb, BGPID: uint32(i) + 1},
			Neighbor: nb,
			RIB:      sc.NeighborRIBs[nb],
			Burst:    b,
		})
	}
	if sc.Sessions[0].Burst.Size < spec.BurstStart {
		return nil, fmt.Errorf("scenario %q: primary burst carries %d withdrawals, below the %d detection threshold",
			spec.Name, sc.Sessions[0].Burst.Size, spec.BurstStart)
	}

	// Flap: the resource recovers at one global instant and every
	// session re-announces its withdrawn prefixes from there.
	if spec.Flap {
		var last time.Duration
		for _, s := range sc.Sessions {
			if d := s.Burst.Duration(); d > last {
				last = d
			}
		}
		sc.recoverAt = last + spec.FlapDelay
		for i, s := range sc.Sessions {
			s.Burst.Reannounce(s.RIB, sc.recoverAt, 400*time.Microsecond, spec.Seed*41+int64(i))
		}
	}

	// Oracle: pre- and post-failure reachability per (neighbor, origin),
	// and the vantage's converged next hop per origin.
	after := net.Graph
	if dead != 0 {
		after = net.Graph.WithoutAS(dead)
	} else {
		after = net.Graph.WithoutLink(failed[0].A, failed[0].B)
	}
	solsAfter := net.Solve(after)
	sc.validBefore = reachability(net, solsBefore, vantage)
	sc.validAfter = reachability(net, solsAfter, vantage)
	sc.convergedNH = make(map[uint32]uint32, len(net.Origins))
	for o := range net.Origins {
		sc.convergedNH[o] = solsAfter[o].RouteAt(vantage).NextHop()
	}
	return sc, nil
}

// reachability tabulates, for every neighbor of the vantage, which
// origins it serves a route for under sols.
func reachability(net *bgpsim.Network, sols map[uint32]*bgpsim.OriginSolution, vantage uint32) map[uint32]map[uint32]bool {
	out := make(map[uint32]map[uint32]bool)
	for _, nb := range net.Graph.Neighbors(vantage) {
		m := make(map[uint32]bool, len(net.Origins))
		for o := range net.Origins {
			if o == nb.AS {
				m[o] = true
				continue
			}
			m[o] = sols[o].RouteAt(nb.AS).Valid()
		}
		out[nb.AS] = m
	}
	return out
}

// oracleValid reports whether handing a packet for origin to next-hop
// nh at virtual time t delivers it.
func (sc *Scenario) oracleValid(nh, origin uint32, t time.Duration) bool {
	if nh == 0 {
		return false
	}
	m := sc.validAfter
	if sc.recoverAt > 0 && t >= sc.recoverAt {
		m = sc.validBefore
	}
	return m[nh][origin]
}

// buildNetwork constructs the topology, origin set, vantage and the
// guaranteed-detour backup neighbor.
func buildNetwork(spec Spec, rng *rand.Rand) (*bgpsim.Network, uint32, uint32, error) {
	if spec.Topology == TopoFig1 {
		// AS 3 is Fig. 1's (5,6)-free backup provider.
		return bgpsim.Fig1Network(spec.PrefixesPerOrigin), 1, 3, nil
	}
	g := topology.Generate(topology.GenConfig{
		NumASes:   spec.NumASes,
		AvgDegree: spec.AvgDegree,
		Seed:      spec.Seed,
	})
	tiers := g.Tiers()
	ases := g.ASes()

	// Vantage: a deep, multi-homed edge AS — at least two transit
	// providers, as far from the core as the graph offers (Fig. 1's
	// AS 1 shape: the router whose providers' chains a remote failure
	// can cut while a sibling provider keeps a detour).
	providerASes := func(as uint32) []uint32 {
		var out []uint32
		for _, nb := range g.Neighbors(as) {
			if nb.Rel == topology.RelProvider {
				out = append(out, nb.AS)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	vantage := uint32(0)
	byDepth := append([]uint32(nil), ases...)
	sort.Slice(byDepth, func(i, j int) bool {
		ti, tj := tiers[byDepth[i]], tiers[byDepth[j]]
		if ti != tj {
			return ti > tj // deeper first
		}
		di, dj := g.Degree(byDepth[i]), g.Degree(byDepth[j])
		if di != dj {
			return di > dj
		}
		return byDepth[i] < byDepth[j]
	})
	for _, as := range byDepth {
		if len(providerASes(as)) >= 2 {
			vantage = as
			break
		}
	}
	if vantage == 0 {
		return nil, 0, 0, fmt.Errorf("scenario %q: no viable vantage in generated topology", spec.Name)
	}

	// Narrow the primary chain: under pure Gao–Rexford, a transit
	// neighbor multihomed into a meshed core never fully withdraws — a
	// link failure just shifts its path. Real withdrawal bursts come
	// from narrow provider chains (Fig. 1's 2→5→6). Prune the primary
	// neighbor (the vantage's lowest-AS provider) and its upstream to a
	// single provider each, so the matrix's remote failures have a
	// chain to cut while the vantage's other providers keep a detour.
	isVantageNbr := map[uint32]bool{vantage: true}
	for _, nb := range g.Neighbors(vantage) {
		isVantageNbr[nb.AS] = true
	}
	chain := map[uint32]bool{}
	n0 := providerASes(vantage)[0]
	cur := n0
	for level := 0; level < 2; level++ {
		ups := providerASes(cur)
		if len(ups) == 0 {
			break
		}
		keep := ups[0]
		for _, p := range ups {
			if !isVantageNbr[p] {
				keep = p
				break
			}
		}
		for _, p := range ups {
			if p != keep {
				g = g.WithoutLink(cur, p)
			}
		}
		chain[keep] = true
		cur = keep
	}

	// Origins: edge ASes (highest tiers first) that are not the
	// vantage, its direct neighbors, or the primary chain, sampled
	// deterministically.
	excluded := map[uint32]bool{vantage: true}
	for _, nb := range g.Neighbors(vantage) {
		excluded[nb.AS] = true
	}
	for as := range chain {
		excluded[as] = true
	}
	var cands []uint32
	for _, as := range ases {
		if !excluded[as] {
			cands = append(cands, as)
		}
	}
	// Single-uplink edge ASes first: a stub origin's transit chain can
	// actually be cut (a multihomed origin just path-shifts), and the
	// backup transit added below keeps the cut restorable.
	single := func(as uint32) bool { return len(providerASes(as)) == 1 }
	sort.Slice(cands, func(i, j int) bool {
		si, sj := single(cands[i]), single(cands[j])
		if si != sj {
			return si
		}
		ti, tj := tiers[cands[i]], tiers[cands[j]]
		if ti != tj {
			return ti > tj // deeper tier (edge) first
		}
		return cands[i] < cands[j]
	})
	n := spec.NumOrigins
	if n > len(cands) {
		n = len(cands)
	}
	// Shuffle inside the stub pool only, so the preference order
	// survives the sampling.
	stubs := 0
	for stubs < len(cands) && single(cands[stubs]) {
		stubs++
	}
	rng.Shuffle(stubs, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	origins := make(map[uint32]int, n)
	originList := make([]uint32, 0, n)
	for _, as := range cands[:n] {
		origins[as] = spec.PrefixesPerOrigin
		originList = append(originList, as)
	}
	sort.Slice(originList, func(i, j int) bool { return originList[i] < originList[j] })

	// Guarantee a detour: every origin additionally buys PARTIAL
	// transit from the vantage's second provider — Fig. 1's exact
	// arrangement (AS 3 reaches AS 6's prefixes but resells that
	// reachability only to AS 1). The export veto below keeps the
	// backup path out of every other AS's routing, so the primary
	// session's paths still run over the real (cuttable) chains, while
	// the vantage always keeps the backup session as a valid detour
	// for every origin.
	n1 := providerASes(vantage)[1]
	for _, o := range originList {
		if !g.HasLink(o, n1) {
			g.AddCustomerProvider(o, n1)
		}
	}
	isOrigin := make(map[uint32]bool, len(origins))
	for o := range origins {
		isOrigin[o] = true
	}
	pol := &bgpsim.Policy{
		Export: func(exporter, importer, origin uint32) bool {
			if exporter == n1 && importer != vantage && isOrigin[origin] {
				return false
			}
			return true
		},
	}
	return &bgpsim.Network{Graph: g, Policy: pol, Origins: origins}, vantage, n1, nil
}

// sessionNeighbors orders the vantage's neighbors for session
// assignment: transit providers first (under Gao–Rexford export they
// are the neighbors that announce full tables — the sessions SWIFT
// monitors), then peers, then customers, ascending AS within each
// class. An explicit Policy.Prefer ranking (Fig. 1's "AS 2 first")
// overrides.
func sessionNeighbors(net *bgpsim.Network, vantage uint32, peers int) []uint32 {
	rank := func(as uint32) int {
		rel, _ := net.Graph.RelOf(vantage, as)
		switch rel {
		case topology.RelProvider:
			return 0
		case topology.RelPeer:
			return 1
		default:
			return 2
		}
	}
	var out []uint32
	for _, nb := range net.Graph.Neighbors(vantage) {
		out = append(out, nb.AS)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	if pref := net.Policy.Prefer[vantage]; len(pref) > 0 {
		ranked := append([]uint32(nil), pref...)
		seen := make(map[uint32]bool)
		for _, as := range ranked {
			seen[as] = true
		}
		for _, as := range out {
			if !seen[as] {
				ranked = append(ranked, as)
			}
		}
		out = ranked
	}
	return out
}

// pickFailure chooses the failed link (or AS) at the requested AS-hop
// distance along the primary session's paths, validating that the
// failure actually produces a detectable withdrawal burst. It returns
// the failed link set, the dead AS (0 for a link failure) and a
// description.
func pickFailure(spec Spec, rng *rand.Rand, net *bgpsim.Network, sols map[uint32]*bgpsim.OriginSolution, vantage, primary uint32) ([]topology.Link, uint32, string, error) {
	rib := net.SessionRIB(sols, vantage, primary)
	origins := make([]uint32, 0, len(rib))
	for o := range rib {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })

	// Candidate links per hop distance. Hop h >= 1 is the link between
	// the h-th and (h+1)-th AS past the vantage on a primary-session
	// path (h = 1 is adjacent to the session neighbor; the session link
	// itself is never failed — its loss is a session reset, not a
	// remote outage).
	type cand struct {
		link topology.Link
		far  uint32 // endpoint away from the vantage
	}
	byHop := make(map[int][]cand)
	seen := make(map[topology.Link]bool)
	maxHop := 0
	for _, o := range origins {
		path := rib[o]
		for h := 1; h < len(path); h++ {
			l := topology.MakeLink(path[h-1], path[h])
			if seen[l] {
				continue
			}
			seen[l] = true
			byHop[h] = append(byHop[h], cand{link: l, far: path[h]})
			if h > maxHop {
				maxHop = h
			}
		}
	}
	// Preferred hop first, then progressively nearer/farther.
	var hops []int
	for d := 0; d <= maxHop; d++ {
		if h := spec.HopsAway - d; h >= 1 && h <= maxHop {
			hops = append(hops, h)
		}
		if d > 0 {
			if h := spec.HopsAway + d; h >= 1 && h <= maxHop {
				hops = append(hops, h)
			}
		}
	}
	excluded := map[uint32]bool{vantage: true}
	for _, nb := range net.Graph.Neighbors(vantage) {
		excluded[nb.AS] = true
	}
	for _, h := range hops {
		cands := byHop[h]
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		for _, c := range cands {
			if spec.Failure == FailAS {
				if excluded[c.far] || net.Origins[c.far] > 0 {
					continue
				}
				b, err := net.ReplayASFailure(vantage, primary, c.far, bgpsim.DefaultTiming(spec.Seed*1000))
				if err == nil && viableBurst(b, spec) && restorable(net, vantage, b, net.Graph.WithoutAS(c.far)) {
					links := make([]topology.Link, 0, net.Graph.Degree(c.far))
					for _, nb := range net.Graph.Neighbors(c.far) {
						links = append(links, topology.MakeLink(c.far, nb.AS))
					}
					return links, c.far, fmt.Sprintf("as %d (hop %d)", c.far, h), nil
				}
				continue
			}
			b, err := net.ReplayLinkFailure(vantage, primary, c.link, bgpsim.DefaultTiming(spec.Seed*1000))
			if err == nil && viableBurst(b, spec) && restorable(net, vantage, b, net.Graph.WithoutLink(c.link.A, c.link.B)) {
				return []topology.Link{c.link}, 0, fmt.Sprintf("link %s (hop %d)", c.link, h), nil
			}
		}
	}
	return nil, 0, "", fmt.Errorf("scenario %q: no viable failure at ~%d hops on session (%d,%d)",
		spec.Name, spec.HopsAway, vantage, primary)
}

// viableBurst requires enough withdrawals to clear burst detection even
// after a partial-withdraw mutation.
func viableBurst(b *bgpsim.Burst, spec Spec) bool {
	size := float64(b.Size)
	if spec.PartialWithdraw > 0 && spec.PartialWithdraw < 1 {
		size *= spec.PartialWithdraw
	}
	return int(size) >= 2*spec.BurstStart
}

// restorable requires that the failure leaves a usable detour: at
// least half of the withdrawn origins must still have a valid route at
// the vantage on the post-failure graph. A failure that partitions the
// withdrawn origins entirely gives fast reroute nothing to divert to —
// loss is unavoidable for any router, which is not the scenario class
// the matrix measures.
func restorable(net *bgpsim.Network, vantage uint32, b *bgpsim.Burst, after *topology.Graph) bool {
	if len(b.WithdrawnOrigins) == 0 {
		return false
	}
	ok := 0
	for _, o := range b.WithdrawnOrigins {
		if bgpsim.SolveOrigin(after, net.Policy, o).RouteAt(vantage).Valid() {
			ok++
		}
	}
	return 2*ok >= len(b.WithdrawnOrigins)
}

// prefixesOf lists a session RIB's prefixes in deterministic order.
func prefixesOf(net *bgpsim.Network, rib map[uint32][]uint32) []netaddr.Prefix {
	origins := make([]uint32, 0, len(rib))
	for o := range rib {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	var out []netaddr.Prefix
	for _, o := range origins {
		for i := 0; i < net.Origins[o]; i++ {
			out = append(out, netaddr.PrefixFor(o, i))
		}
	}
	return out
}
