package scenario

import (
	"bytes"
	"testing"
	"time"
)

func TestMatrixNamesResolve(t *testing.T) {
	for _, name := range MatrixNames() {
		specs, err := Matrix(name, 1)
		if err != nil {
			t.Fatalf("Matrix(%q): %v", name, err)
		}
		if len(specs) == 0 {
			t.Fatalf("Matrix(%q) is empty", name)
		}
		seen := make(map[string]bool)
		for _, s := range specs {
			if seen[s.Name] {
				t.Errorf("Matrix(%q): duplicate scenario name %q", name, s.Name)
			}
			seen[s.Name] = true
		}
	}
	if _, err := Matrix("no-such-matrix", 1); err == nil {
		t.Error("unknown matrix name did not error")
	}
}

func TestDefaultMatrixSize(t *testing.T) {
	specs, err := Matrix("default", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 50 {
		t.Fatalf("default matrix has %d scenarios, want >= 50", len(specs))
	}
}

func TestBuildFig1(t *testing.T) {
	sc, err := Build(Spec{Name: "t", Seed: 5, Topology: TopoFig1, PrefixesPerOrigin: 150, HopsAway: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Vantage != 1 {
		t.Errorf("Fig1 vantage = %d, want 1", sc.Vantage)
	}
	if len(sc.Sessions) != 1 || sc.Sessions[0].Neighbor != 2 {
		t.Errorf("Fig1 primary session = %+v, want neighbor 2", sc.Sessions[0].Neighbor)
	}
	// The paper's failure: the (5,6) link, two hops past the vantage.
	if len(sc.Failed) != 1 || sc.Failed[0].A != 5 || sc.Failed[0].B != 6 {
		t.Errorf("Fig1 failure = %v, want (5,6)", sc.Failed)
	}
	if sc.Sessions[0].Burst.Size == 0 {
		t.Error("Fig1 burst carries no withdrawals")
	}
	// Oracle: post-failure, AS 3 still reaches the withdrawn origins
	// (the backup SWIFT uses), AS 2 does not.
	if !sc.oracleValid(3, 8, 0) {
		t.Error("oracle: AS3 should reach S8 post-failure")
	}
	if sc.oracleValid(2, 8, 0) {
		t.Error("oracle: AS2 should not reach S8 post-failure")
	}
}

// TestSmokeMatrix is the end-to-end gate: the smoke matrix must be
// byte-deterministic and SWIFT must lose strictly fewer packets than
// the vanilla router on every remote-failure scenario.
func TestSmokeMatrix(t *testing.T) {
	rep, err := Run("smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run("smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("two runs with the same seed produced different JSON reports")
	}
	for _, r := range rep.Scenarios {
		if r.PacketsSent == 0 {
			t.Errorf("%s: no packets evaluated", r.Name)
		}
		if r.Remote && r.SwiftLost >= r.BGPLost {
			t.Errorf("%s: SWIFT lost %d >= vanilla %d on a remote failure", r.Name, r.SwiftLost, r.BGPLost)
		}
	}
	if rep.RemoteScenarios == 0 || rep.RemoteSwiftWins != rep.RemoteScenarios {
		t.Errorf("remote wins %d / %d", rep.RemoteSwiftWins, rep.RemoteScenarios)
	}
	// A different seed produces a different (but internally consistent)
	// report.
	other, err := Run("smoke", 2)
	if err != nil {
		t.Fatal(err)
	}
	jo, err := other.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jo) {
		t.Error("different seeds produced identical reports")
	}
}

// TestDefaultMatrix runs the full >= 50-scenario matrix — the
// acceptance gate behind cmd/swift-eval: deterministic, and strictly
// lower loss with SWIFT on every remote failure.
func TestDefaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	rep, err := Run("default", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) < 50 {
		t.Fatalf("default matrix evaluated %d scenarios, want >= 50", len(rep.Scenarios))
	}
	for _, r := range rep.Scenarios {
		if r.Remote && r.SwiftLost >= r.BGPLost {
			t.Errorf("%s: SWIFT lost %d >= vanilla %d on a remote failure", r.Name, r.SwiftLost, r.BGPLost)
		}
	}
	if rep.RemoteSwiftWins != rep.RemoteScenarios {
		t.Errorf("remote wins %d / %d", rep.RemoteSwiftWins, rep.RemoteScenarios)
	}
	again, err := Run("default", 1)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("two default-matrix runs with the same seed diverged")
	}
}

// TestPredictionMetrics pins the oracle comparison: on the clean Fig. 1
// failure every withdrawn prefix must be predicted (FNR 0) and the
// false-positive rate must stay small.
func TestPredictionMetrics(t *testing.T) {
	sc, err := Build(Spec{Name: "t", Seed: 9, Topology: TopoFig1, PrefixesPerOrigin: 150, HopsAway: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Eval()
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Peers[0]
	if p.Decisions == 0 {
		t.Fatal("no inference decisions")
	}
	if p.FNR != 0 {
		t.Errorf("FNR = %v, want 0 (every withdrawn prefix predicted)", p.FNR)
	}
	if p.FPR > 0.5 {
		t.Errorf("FPR = %v, implausibly high", p.FPR)
	}
	// S8 is restored early by the reroute; S6's prefixes cannot be
	// diverted endpoint-free (AS 6 is an endpoint of the failed link),
	// so a late tail withdrawal can bound both restore times — SWIFT
	// must never restore later, and must lose strictly less overall.
	if p.SwiftRestore > p.BGPRestore {
		t.Errorf("SWIFT restored at %v, after vanilla at %v", p.SwiftRestore, p.BGPRestore)
	}
	if p.SwiftLost >= p.BGPLost {
		t.Errorf("SWIFT lost %d >= vanilla %d", p.SwiftLost, p.BGPLost)
	}
}

// TestFlapScenario pins the transient-failure path: routes come back,
// both routers re-converge, and the recovery instant flips the oracle.
func TestFlapScenario(t *testing.T) {
	sc, err := Build(Spec{
		Name: "t", Seed: 4, Topology: TopoFig1, PrefixesPerOrigin: 150,
		HopsAway: 2, Flap: true, FlapDelay: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.recoverAt == 0 {
		t.Fatal("flap scenario has no recovery instant")
	}
	// Before recovery the failed primary is invalid; after it is valid
	// again.
	if sc.oracleValid(2, 8, sc.recoverAt-time.Millisecond) {
		t.Error("oracle valid via AS2 before recovery")
	}
	if !sc.oracleValid(2, 8, sc.recoverAt) {
		t.Error("oracle invalid via AS2 after recovery")
	}
	rep, err := sc.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwiftLost >= rep.BGPLost {
		t.Errorf("flap: SWIFT lost %d >= vanilla %d", rep.SwiftLost, rep.BGPLost)
	}
}

// TestMultiPeerScoring pins that fleet runs score loss per peer: the
// two bursting sessions reroute independently, and the quiet session
// reports no decisions.
func TestMultiPeerScoring(t *testing.T) {
	sc, err := Build(Spec{
		Name: "t", Seed: 11, Topology: TopoFig1, PrefixesPerOrigin: 150,
		HopsAway: 2, Peers: 3, PeerSkew: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Sessions) != 3 {
		t.Fatalf("sessions = %d, want 3", len(sc.Sessions))
	}
	rep, err := sc.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Peers) != 3 {
		t.Fatalf("peer reports = %d, want 3", len(rep.Peers))
	}
	bursting := 0
	for _, p := range rep.Peers {
		if p.Decisions > 0 {
			bursting++
			if p.SwiftLost >= p.BGPLost {
				t.Errorf("peer %s: SWIFT lost %d >= vanilla %d", p.Peer, p.SwiftLost, p.BGPLost)
			}
		}
	}
	// Sessions 2 and 4 lose S6/S8 over the (5,6) link; session 3 loses
	// its provider-learned routes to ASes 2 and 5 (partial transit bars
	// it from using AS 5's exports). Every session must reroute on its
	// own burst.
	if bursting != 3 {
		t.Errorf("bursting peers = %d, want 3", bursting)
	}
}
