package scenario

import (
	"encoding/json"
	"time"
)

// Evaluation modes: per-peer is classic SWIFT (every session infers and
// acts alone); fused shares one evidence aggregator across the fleet.
const (
	ModePerPeer = "per-peer"
	ModeFused   = "fused"
)

// PeerReport is one session's packet-level outcome: the loss a SWIFTED
// router and a vanilla router suffer on the same event stream, plus the
// prediction quality of the accepted inferences against ground truth.
type PeerReport struct {
	// Peer is the session key ("AS<n>/<bgpid>") and Neighbor its AS.
	Peer     string `json:"peer"`
	Neighbor uint32 `json:"neighbor"`

	// Flows is the evaluated synthetic flow count; FlowsAffected how
	// many lost at least one packet under the vanilla router.
	Flows         int `json:"flows"`
	FlowsAffected int `json:"flows_affected"`
	// Ticks is the number of virtual-time steps scored; PacketsSent the
	// per-run offered load (Flows x Ticks).
	Ticks       int   `json:"ticks"`
	PacketsSent int64 `json:"packets_sent"`

	// SwiftLost / BGPLost count packets blackholed with SWIFT enabled /
	// disabled. SwiftRestore / BGPRestore are the virtual times the last
	// lost packet was observed (0 = no loss; the horizon when loss never
	// stopped).
	SwiftLost    int64         `json:"swift_lost"`
	BGPLost      int64         `json:"bgp_lost"`
	SwiftRestore time.Duration `json:"swift_restore_ns"`
	BGPRestore   time.Duration `json:"bgp_restore_ns"`

	// Decisions counts accepted inferences; Withdrawn the ground-truth
	// positives (prefixes withdrawn on the session); Predicted the union
	// of prefixes the decisions diverted. TP/FP/FN decompose Predicted
	// against ground truth; FPR is FP over the session's unaffected
	// prefixes and FNR is FN over Withdrawn.
	Decisions int `json:"decisions"`
	// External counts fused-verdict pre-triggers applied to the session
	// and Vetoed its own inferences the fusion gate deferred; both are
	// zero (and omitted) in per-peer mode.
	External  int     `json:"external_decisions,omitempty"`
	Vetoed    int     `json:"vetoed,omitempty"`
	Withdrawn int     `json:"withdrawn"`
	Predicted int     `json:"predicted"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	FPR       float64 `json:"fpr"`
	FNR       float64 `json:"fnr"`
}

// Report is one evaluated scenario.
type Report struct {
	Name   string `json:"name"`
	Mode   string `json:"mode,omitempty"`
	Seed   int64  `json:"seed"`
	Remote bool   `json:"remote"`
	// Failure describes the injected fault ("link (5,6)" / "as 6").
	Failure string `json:"failure"`
	// Topology summary.
	ASes     int `json:"ases"`
	Links    int `json:"links"`
	Prefixes int `json:"prefixes"`
	Sessions int `json:"sessions"`
	Events   int `json:"events"`

	Peers []PeerReport `json:"peers"`

	// Aggregates over every session.
	PacketsSent int64 `json:"packets_sent"`
	SwiftLost   int64 `json:"swift_lost"`
	BGPLost     int64 `json:"bgp_lost"`
}

// aggregate folds the per-peer counters into the scenario totals.
func (r *Report) aggregate() {
	for _, p := range r.Peers {
		r.PacketsSent += p.PacketsSent
		r.SwiftLost += p.SwiftLost
		r.BGPLost += p.BGPLost
	}
}

// MatrixReport is the deterministic output of a matrix run: same matrix
// name and seed, byte-identical JSON.
type MatrixReport struct {
	Matrix    string    `json:"matrix"`
	Mode      string    `json:"mode,omitempty"`
	Seed      int64     `json:"seed"`
	Scenarios []*Report `json:"scenarios"`

	// Totals over every scenario, and over the remote-failure subset —
	// the paper's headline comparison.
	PacketsSent     int64 `json:"packets_sent"`
	SwiftLost       int64 `json:"swift_lost"`
	BGPLost         int64 `json:"bgp_lost"`
	RemoteScenarios int   `json:"remote_scenarios"`
	RemoteSwiftLost int64 `json:"remote_swift_lost"`
	RemoteBGPLost   int64 `json:"remote_bgp_lost"`
	// RemoteSwiftWins counts remote scenarios where SWIFT lost strictly
	// fewer packets than the vanilla router.
	RemoteSwiftWins int `json:"remote_swift_wins"`
}

// aggregate folds the per-scenario reports into the matrix totals.
func (m *MatrixReport) aggregate() {
	for _, r := range m.Scenarios {
		m.PacketsSent += r.PacketsSent
		m.SwiftLost += r.SwiftLost
		m.BGPLost += r.BGPLost
		if r.Remote {
			m.RemoteScenarios++
			m.RemoteSwiftLost += r.SwiftLost
			m.RemoteBGPLost += r.BGPLost
			if r.SwiftLost < r.BGPLost {
				m.RemoteSwiftWins++
			}
		}
	}
}

// JSON renders the report with stable formatting (the determinism
// contract: same matrix, same seed, byte-identical output).
func (m *MatrixReport) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
