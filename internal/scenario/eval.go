package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/burst"
	"swift/internal/controller"
	"swift/internal/dataplane"
	"swift/internal/encoding"
	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/reroute"
	swiftengine "swift/internal/swift"
)

// captureSink records the batches a Source emits, so the evaluation
// loop can replay the exact interleaved stream (BurstSource's
// timestamp-merged multi-peer batches) in virtual-time slices.
type captureSink struct {
	batches []event.Batch
}

func (c *captureSink) Apply(b event.Batch) error {
	c.batches = append(c.batches, b)
	return nil
}

// flow is one synthetic traffic flow: a destination address inside one
// prefix of the session table, sending one packet per tick.
type flow struct {
	prefix netaddr.Prefix
	origin uint32
	addr   uint32
}

// fibWrite is one queued write of the vanilla-router FIB model: the
// update becomes visible at eff, after waiting behind earlier writes
// (per-prefix FIB rewrite, Table 1's convergence bottleneck). nh == 0
// removes the route.
type fibWrite struct {
	eff    time.Duration
	prefix netaddr.Prefix
	nh     uint32
}

// peerState is the per-session evaluation context.
type peerState struct {
	sess  Session
	flows []flow
	// table is the session's full prefix count (the flow set may be a
	// sample of it).
	table int
	truth map[netaddr.Prefix]bool // prefixes withdrawn on the session

	// Vanilla-router model: a real FIB whose stage-1 entries map each
	// prefix to its current next-hop's tag, updated per message with
	// write-queue lag.
	bgpFIB  *dataplane.FIB
	tagByNH map[uint32]encoding.Tag
	writes  []fibWrite
	wIdx    int

	// Fed by the fleet observer (under the peer lock; read under Do or
	// after a sync barrier). divertReady records, per predicted prefix,
	// when the first rule batch covering it finished installing: rule
	// updates are make-before-break, so later incremental decisions do
	// not re-blackhole flows that are already diverted. rerouteReady is
	// the FIRST batch's completion — the fallback bound for a prefix a
	// rule matches without it appearing in any predicted set (an
	// approximation: such a prefix diverted only by a later batch's
	// rules is charged against the first install window).
	rerouteReady time.Duration
	divertReady  map[netaddr.Prefix]time.Duration
	predicted    map[netaddr.Prefix]bool
	decisions    int
	external     int // fused-verdict pre-triggers applied to this peer
	vetoed       int // own inferences the fusion gate deferred

	// Scoring. addrs is the flow set's destination burst, built once;
	// the per-dataplane result slices are reused every tick so the two
	// FIBs forward the whole set in one ForwardBatch/ForwardDetailBatch
	// call each instead of one pipeline walk per packet.
	addrs                      []uint32
	nhB, nhS                   []uint32
	okB, okS                   []bool
	prioS                      []int
	ticks                      int
	swiftLost, bgpLost         int64
	lastSwiftLoss, lastBGPLoss time.Duration
	affected                   []bool
}

// Eval replays the scenario and scores packet-level loss with SWIFT
// enabled (the engine fleet's FIBs, fast-reroute overlay included) and
// disabled (the vanilla per-prefix-write router) on the same stream.
func (sc *Scenario) Eval() (*Report, error) { return sc.eval(false) }

// EvalFused evaluates the scenario with fleet-level evidence fusion
// enabled: the sessions share one fusion.Aggregator, wrong-link
// inferences conflicting with stronger fleet evidence are vetoed, and
// confirmed verdicts pre-trigger reroutes on lagging sessions. The
// stream is delivered in per-peer segments with sync barriers in
// between, so evidence reaches the aggregator in exact stream order and
// the run is byte-deterministic like the per-peer one.
func (sc *Scenario) EvalFused() (*Report, error) { return sc.eval(true) }

func (sc *Scenario) eval(fused bool) (*Report, error) {
	spec := sc.Spec

	// 1. Capture the interleaved multi-session stream once.
	keys := make([]event.PeerKey, 0, len(sc.Sessions))
	bursts := make([]*bgpsim.Burst, 0, len(sc.Sessions))
	for _, s := range sc.Sessions {
		keys = append(keys, s.Peer)
		bursts = append(bursts, s.Burst)
	}
	src := &bgpsim.BurstSource{Bursts: bursts, Peers: keys}
	capture := &captureSink{}
	if err := src.Run(capture); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	var events []event.Event
	for _, b := range capture.batches {
		events = append(events, b...)
	}
	var lastEv time.Duration
	for _, ev := range events {
		if ev.Kind != event.KindTick && ev.At > lastEv {
			lastEv = ev.At
		}
	}
	horizon := lastEv + spec.SettleAfter

	// 2. Per-session evaluation state.
	neighbors := make([]uint32, 0, len(sc.NeighborRIBs))
	for nb := range sc.NeighborRIBs {
		neighbors = append(neighbors, nb)
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	peers := make([]*peerState, len(sc.Sessions))
	byKey := make(map[event.PeerKey]*peerState, len(sc.Sessions))
	for i, sess := range sc.Sessions {
		pe := sc.newPeerState(sess, neighbors)
		peers[i] = pe
		byKey[sess.Peer] = pe
	}

	// 3. The SWIFT fleet: one engine per session, shared path pool,
	// loss-relevant lifecycle points observed per peer. The operator
	// policy ranks the guaranteed-detour neighbor cheapest, so viable
	// backups prefer the path the failure cannot touch (§3.2's
	// rerouting policies).
	var policy *reroute.Policy
	if sc.Backup != 0 {
		cost := make(map[uint32]int, len(neighbors))
		for _, nb := range neighbors {
			if nb != sc.Backup {
				cost[nb] = 10
			}
		}
		policy = &reroute.Policy{Cost: cost}
	}
	var fusionCfg *fusion.Config
	if fused {
		// ManualPump: verdicts fan out only at the loop's own tick
		// barriers below, never from a background goroutine.
		fusionCfg = &fusion.Config{ManualPump: true}
	}
	var provisionErr error
	fleet := controller.NewFleet(controller.FleetConfig{
		Fusion: fusionCfg,
		Engine: func(key controller.PeerKey) swiftengine.Config {
			return swiftengine.Config{
				LocalAS:         sc.Vantage,
				PrimaryNeighbor: byKey[key].sess.Neighbor,
				ReroutePolicy:   policy,
				Inference: inference.Config{
					TriggerEvery: spec.TriggerEvery,
					// The paper's plausibility gate is calibrated for
					// Internet-scale bursts; scenario bursts are orders of
					// magnitude smaller, so inferences stand on their own.
					UseHistory: false,
				},
				Encoding: encoding.Config{MinPrefixes: 1},
				Burst: burst.Config{
					Window:         spec.Window,
					StartThreshold: spec.BurstStart,
				},
				RuleUpdateCost: spec.RuleUpdateCost,
			}
		},
		OnPeer: func(p *controller.FleetPeer) {
			pe := byKey[p.Key()]
			sc.loadPeer(p, pe.sess)
			if err := p.Provision(); err != nil && provisionErr == nil {
				provisionErr = err
			}
		},
		Observer: controller.FleetObserver{
			OnDecision: func(key controller.PeerKey, d swiftengine.Decision) {
				pe := byKey[key]
				if d.External {
					pe.external++
				} else {
					pe.decisions++
				}
				ready := d.At + d.DataplaneTime
				// First batch only: later decisions refine the rule set
				// make-before-break, so a flow matched by rules since
				// the first install is never re-blackholed.
				if pe.rerouteReady == 0 {
					pe.rerouteReady = ready
				}
				// An external verdict only widens the rule set; prefixes it
				// newly predicts were already diverted by any earlier
				// batch's link-granular rules, so never push their charged
				// divert time past the first install window.
				if d.External && pe.rerouteReady < ready {
					ready = pe.rerouteReady
				}
				for _, p := range d.Predicted {
					pe.predicted[p] = true
					if _, ok := pe.divertReady[p]; !ok {
						pe.divertReady[p] = ready
					}
				}
			},
		},
	})
	defer fleet.Close()
	// Create (and provision) every peer up front, on this goroutine:
	// flows are scored from t = 0, before any event arrives.
	for _, s := range sc.Sessions {
		fleet.Peer(s.Peer)
	}
	if provisionErr != nil {
		return nil, fmt.Errorf("scenario %q: provision: %w", spec.Name, provisionErr)
	}

	// deliver hands a stream slice to the fleet. Per-peer evaluation
	// rides the fleet's concurrent per-peer queues as-is. Fused
	// evaluation serializes: maximal same-peer runs with a sync barrier
	// between them, so the shared aggregator observes proposals in exact
	// stream order and verdicts (and vetoes) are deterministic.
	deliver := func(evs []event.Event) error {
		if !fused {
			return fleet.Apply(evs)
		}
		for len(evs) > 0 {
			k := 1
			for k < len(evs) && evs[k].Peer == evs[0].Peer {
				k++
			}
			if err := fleet.Apply(evs[:k]); err != nil {
				return err
			}
			fleet.Sync()
			evs = evs[k:]
		}
		return nil
	}

	// 4. The virtual-time loop: deliver the stream slice up to each
	// tick, then forward every flow through both dataplanes.
	cursor := 0
	for t := spec.Tick; ; t += spec.Tick {
		j := cursor
		for j < len(events) && events[j].At <= t {
			j++
		}
		if j > cursor {
			if err := deliver(events[cursor:j]); err != nil {
				return nil, err
			}
			cursor = j
		}
		fleet.Sync()
		if fused {
			// Fan the fused verdict out at the tick barrier — the manual
			// pump point; pre-triggered peers record external decisions.
			fleet.FusePump(t)
		}
		for _, pe := range peers {
			pe.applyWrites(t)
			sc.scoreTick(fleet, pe, t)
		}
		if t >= horizon {
			break
		}
	}
	// Drain the tail (the closing ticks) so bursts end and the engines
	// run their burst-end fallback; not scored.
	if cursor < len(events) {
		if err := deliver(events[cursor:]); err != nil {
			return nil, err
		}
	}
	fleet.Sync()
	if fused {
		for _, s := range sc.Sessions {
			if p, ok := fleet.Lookup(s.Peer); ok {
				pe := byKey[s.Peer]
				p.Do(func(e *swiftengine.Engine) { pe.vetoed = e.Vetoed() })
			}
		}
	}
	fleet.Close()

	// 5. Report.
	mode := ModePerPeer
	if fused {
		mode = ModeFused
	}
	rep := &Report{
		Name:     spec.Name,
		Mode:     mode,
		Seed:     spec.Seed,
		Remote:   sc.Remote(),
		Failure:  sc.FailureDesc,
		ASes:     sc.Net.Graph.NumASes(),
		Links:    sc.Net.Graph.NumLinks(),
		Prefixes: sc.Net.TotalPrefixes(),
		Sessions: len(sc.Sessions),
		Events:   src.Events,
	}
	for _, pe := range peers {
		rep.Peers = append(rep.Peers, pe.report())
	}
	rep.aggregate()
	return rep, nil
}

// newPeerState builds a session's flows, ground truth and vanilla-FIB
// model.
func (sc *Scenario) newPeerState(sess Session, neighbors []uint32) *peerState {
	spec := sc.Spec
	pe := &peerState{
		sess:        sess,
		predicted:   make(map[netaddr.Prefix]bool),
		divertReady: make(map[netaddr.Prefix]time.Duration),
		truth:       make(map[netaddr.Prefix]bool),
		bgpFIB:      dataplane.New(dataplane.Config{RuleUpdateCost: spec.PerPrefixUpdate}),
		tagByNH:     make(map[uint32]encoding.Tag, len(neighbors)),
	}

	// The vanilla FIB's trivial encoding: one tag and one exact-match
	// rule per vantage neighbor.
	for i, nb := range neighbors {
		tag := encoding.Tag(i + 1)
		pe.tagByNH[nb] = tag
		pe.bgpFIB.InstallRule(encoding.Rule{Value: tag, Mask: ^encoding.Tag(0), NextHop: nb})
	}

	// Initial state: every session prefix forwarded via the session
	// neighbor. Flows sample the table with an even stride.
	prefixes := prefixesOf(sc.Net, sess.RIB)
	pe.table = len(prefixes)
	own := pe.tagByNH[sess.Neighbor]
	for _, p := range prefixes {
		pe.bgpFIB.SetTag(p, own)
	}
	n := spec.MaxFlows
	if n > len(prefixes) {
		n = len(prefixes)
	}
	for k := 0; k < n; k++ {
		p := prefixes[k*len(prefixes)/n]
		origin, _, _ := netaddr.PrefixOrigin(p)
		pe.flows = append(pe.flows, flow{prefix: p, origin: origin, addr: p.Addr()})
	}
	pe.affected = make([]bool, len(pe.flows))
	pe.addrs = make([]uint32, len(pe.flows))
	for i := range pe.flows {
		pe.addrs[i] = pe.flows[i].addr
	}
	pe.nhB = make([]uint32, len(pe.flows))
	pe.nhS = make([]uint32, len(pe.flows))
	pe.okB = make([]bool, len(pe.flows))
	pe.okS = make([]bool, len(pe.flows))
	pe.prioS = make([]int, len(pe.flows))

	// Ground truth and the write queue: the vanilla router processes
	// the stream message by message, each message paying one FIB write
	// behind the previous ones. A withdrawal lands on the converged
	// post-failure next hop (the locally known alternate); an
	// announcement installs the announced path's next hop.
	var clock time.Duration
	for _, ev := range sess.Burst.Events {
		if ev.At > clock {
			clock = ev.At
		}
		clock += spec.PerPrefixUpdate
		w := fibWrite{eff: clock, prefix: ev.Prefix}
		switch ev.Kind {
		case bgpsim.KindWithdraw:
			pe.truth[ev.Prefix] = true
			w.nh = sc.convergedNH[ev.Origin]
		case bgpsim.KindAnnounce:
			if len(ev.Path) > 0 {
				w.nh = ev.Path[0]
			}
		}
		pe.writes = append(pe.writes, w)
	}
	return pe
}

// loadPeer installs the session's primary table and every other
// neighbor's table as alternates, in deterministic order.
func (sc *Scenario) loadPeer(p *controller.FleetPeer, sess Session) {
	learn := func(rib map[uint32][]uint32, fn func(pfx netaddr.Prefix, path []uint32)) {
		origins := make([]uint32, 0, len(rib))
		for o := range rib {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		for _, o := range origins {
			path := rib[o]
			for i := 0; i < sc.Net.Origins[o]; i++ {
				fn(netaddr.PrefixFor(o, i), path)
			}
		}
	}
	learn(sess.RIB, p.LearnPrimary)
	alts := make([]uint32, 0, len(sc.NeighborRIBs))
	for nb := range sc.NeighborRIBs {
		if nb != sess.Neighbor {
			alts = append(alts, nb)
		}
	}
	sort.Slice(alts, func(i, j int) bool { return alts[i] < alts[j] })
	for _, nb := range alts {
		nb := nb
		learn(sc.NeighborRIBs[nb], func(pfx netaddr.Prefix, path []uint32) {
			p.LearnAlternate(nb, pfx, path)
		})
	}
}

// applyWrites makes every vanilla-router FIB write due by t visible.
func (pe *peerState) applyWrites(t time.Duration) {
	for pe.wIdx < len(pe.writes) && pe.writes[pe.wIdx].eff <= t {
		w := pe.writes[pe.wIdx]
		pe.wIdx++
		if w.nh == 0 {
			pe.bgpFIB.RemoveTag(w.prefix)
		} else {
			pe.bgpFIB.SetTag(w.prefix, pe.tagByNH[w.nh])
		}
	}
}

// scoreTick forwards one packet per flow through both dataplanes at
// virtual time t and charges losses.
//
// SWIFT path: the engine FIB's verdict stands when a fast-reroute rule
// matched — the packet is diverted to the rule's backup next hop, and
// it is charged as lost while the rule batch is still being written
// (between the decision and rerouteReady) or when the backup does not
// actually reach the origin post-failure. When no reroute rule matched
// (primary rule or no tag), the SWIFTED router forwards exactly like
// the vanilla router underneath — SWIFT is an overlay, BGP still
// converges the base FIB — so the vanilla verdict applies.
func (sc *Scenario) scoreTick(fleet *controller.Fleet, pe *peerState, t time.Duration) {
	pe.ticks++
	p, ok := fleet.Lookup(pe.sess.Peer)
	if !ok {
		return
	}
	// Both dataplanes forward the whole flow set in one burst: the
	// vanilla router's FIB outside the peer lock, the engine's under it.
	pe.bgpFIB.ForwardBatch(pe.addrs, pe.nhB, pe.okB)
	p.Do(func(e *swiftengine.Engine) {
		e.FIB().ForwardDetailBatch(pe.addrs, pe.nhS, pe.prioS, pe.okS)
		for i := range pe.flows {
			f := &pe.flows[i]
			delB := pe.okB[i] && sc.oracleValid(pe.nhB[i], f.origin, t)

			delS := delB
			if prio := pe.prioS[i]; pe.okS[i] &&
				(prio == swiftengine.ReroutePriority || prio == swiftengine.ExternalReroutePriority) {
				ready, known := pe.divertReady[f.prefix]
				if !known {
					ready = pe.rerouteReady
				}
				if t >= ready {
					delS = sc.oracleValid(pe.nhS[i], f.origin, t)
				}
				// Before ready the rule batch is still being written;
				// updates are make-before-break, so the pre-reroute
				// state governs: a withdrawn flow stays blackholed
				// (delB false — the charged install latency), a
				// still-routed flow keeps flowing on its primary.
			}

			if !delB {
				pe.bgpLost++
				pe.lastBGPLoss = t
				pe.affected[i] = true
			}
			if !delS {
				pe.swiftLost++
				pe.lastSwiftLoss = t
			}
		}
	})
}

// report folds a finished peer evaluation into its report row.
func (pe *peerState) report() PeerReport {
	r := PeerReport{
		Peer:         pe.sess.Peer.String(),
		Neighbor:     pe.sess.Neighbor,
		Flows:        len(pe.flows),
		Ticks:        pe.ticks,
		PacketsSent:  int64(len(pe.flows)) * int64(pe.ticks),
		SwiftLost:    pe.swiftLost,
		BGPLost:      pe.bgpLost,
		SwiftRestore: pe.lastSwiftLoss,
		BGPRestore:   pe.lastBGPLoss,
		Decisions:    pe.decisions,
		External:     pe.external,
		Vetoed:       pe.vetoed,
		Withdrawn:    len(pe.truth),
		Predicted:    len(pe.predicted),
	}
	for i := range pe.affected {
		if pe.affected[i] {
			r.FlowsAffected++
		}
	}
	for p := range pe.predicted {
		if pe.truth[p] {
			r.TP++
		} else {
			r.FP++
		}
	}
	r.FN = len(pe.truth) - r.TP
	if negatives := pe.table - len(pe.truth); negatives > 0 {
		r.FPR = float64(r.FP) / float64(negatives)
	}
	if len(pe.truth) > 0 {
		r.FNR = float64(r.FN) / float64(len(pe.truth))
	}
	return r
}

// Run builds and evaluates every scenario of the named matrix,
// fanning scenarios out over the available cores; the report order is
// the matrix order, so the output is deterministic regardless of
// parallelism.
func Run(matrix string, seed int64) (*MatrixReport, error) {
	return RunMode(matrix, seed, false)
}

// RunMode is Run with the evaluation mode explicit: fused enables
// fleet-level evidence fusion (EvalFused) on every scenario.
func RunMode(matrix string, seed int64, fused bool) (*MatrixReport, error) {
	specs, err := Matrix(matrix, seed)
	if err != nil {
		return nil, err
	}
	return RunSpecsMode(matrix, seed, specs, fused)
}

// RunSpecs evaluates an explicit scenario list in per-peer mode.
func RunSpecs(matrix string, seed int64, specs []Spec) (*MatrixReport, error) {
	return RunSpecsMode(matrix, seed, specs, false)
}

// RunSpecsMode evaluates an explicit scenario list in either mode.
func RunSpecsMode(matrix string, seed int64, specs []Spec, fused bool) (*MatrixReport, error) {
	mode := ModePerPeer
	if fused {
		mode = ModeFused
	}
	rep := &MatrixReport{Matrix: matrix, Mode: mode, Seed: seed, Scenarios: make([]*Report, len(specs))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				failed := len(errs) > 0
				mu.Unlock()
				if failed || i >= len(specs) {
					return
				}
				r, err := evalSpec(specs[i], fused)
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("scenario %q: %w", specs[i].Name, err))
				} else {
					rep.Scenarios[i] = r
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	rep.aggregate()
	return rep, nil
}

func evalSpec(spec Spec, fused bool) (*Report, error) {
	sc, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return sc.eval(fused)
}
