package scenario

import (
	"fmt"
	"time"
)

// MatrixNames lists the named scenario matrices, for CLIs.
func MatrixNames() []string { return []string{"smoke", "default", "fig1"} }

// Matrix expands a named matrix into its scenario specs. The expansion
// is a pure function of (name, seed): every spec's own seed derives
// from the matrix seed and its index, so two runs with the same inputs
// evaluate byte-identical scenarios.
//
//   - "smoke": a handful of scenarios covering every knob — the CI
//     gate.
//   - "default": the full evaluation matrix (>= 50 scenarios): Fig. 1
//     and generated topologies crossed with failure kind, failure
//     distance, session count, partial withdrawals, flap recovery,
//     noise and peer skew.
//   - "fig1": the paper's running example only, at two scales.
func Matrix(name string, seed int64) ([]Spec, error) {
	switch name {
	case "smoke":
		return smokeMatrix(seed), nil
	case "default":
		return defaultMatrix(seed), nil
	case "fig1":
		return fig1Matrix(seed), nil
	}
	return nil, fmt.Errorf("scenario: unknown matrix %q (have %v)", name, MatrixNames())
}

// specSeed derives a scenario seed from the matrix seed and the
// scenario index.
func specSeed(seed int64, i int) int64 { return seed*1_000_003 + int64(i)*7919 }

func fig1Base(name string, scale int) Spec {
	return Spec{
		Name:              name,
		Topology:          TopoFig1,
		PrefixesPerOrigin: scale,
		HopsAway:          2, // the paper's (5,6) failure
	}
}

func fig1Matrix(seed int64) []Spec {
	var specs []Spec
	add := func(s Spec) {
		s.Seed = specSeed(seed, len(specs))
		specs = append(specs, s)
	}
	for _, scale := range []int{150, 300} {
		base := fmt.Sprintf("fig1-x%d", scale)
		add(fig1Base(base+"-link", scale))
		s := fig1Base(base+"-3peer", scale)
		s.Peers = 3
		s.PeerSkew = 60 * time.Millisecond
		add(s)
		s = fig1Base(base+"-partial", scale)
		s.PartialWithdraw = 0.6
		s.BurstStart = 12
		s.TriggerEvery = 10
		add(s)
		s = fig1Base(base+"-flap", scale)
		s.Flap = true
		add(s)
		s = fig1Base(base+"-noise", scale)
		s.Noise = 25
		add(s)
	}
	return specs
}

func genBase(name string, ases, hops int) Spec {
	return Spec{
		Name:              name,
		Topology:          TopoGenerated,
		NumASes:           ases,
		NumOrigins:        8,
		PrefixesPerOrigin: 60,
		HopsAway:          hops,
	}
}

func defaultMatrix(seed int64) []Spec {
	specs := fig1Matrix(seed)
	add := func(s Spec) {
		s.Seed = specSeed(seed, len(specs))
		specs = append(specs, s)
	}
	sizes := []int{28, 40, 56}
	// Base grid: size x failure distance x failure kind.
	for _, ases := range sizes {
		for _, hops := range []int{1, 2, 3} {
			s := genBase(fmt.Sprintf("gen-n%d-h%d-link", ases, hops), ases, hops)
			add(s)
			s = genBase(fmt.Sprintf("gen-n%d-h%d-as", ases, hops), ases, hops)
			s.Failure = FailAS
			add(s)
		}
	}
	// Variant sweeps on the middle grid point of each size.
	for _, ases := range sizes {
		s := genBase(fmt.Sprintf("gen-n%d-2peer", ases), ases, 2)
		s.Peers = 2
		s.PeerSkew = 40 * time.Millisecond
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-2peer-as", ases), ases, 2)
		s.Failure = FailAS
		s.Peers = 2
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-partial", ases), ases, 2)
		s.PartialWithdraw = 0.6
		s.BurstStart = 12
		s.TriggerEvery = 10
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-partial-heavy", ases), ases, 1)
		s.PartialWithdraw = 0.4
		s.PrefixesPerOrigin = 80
		s.BurstStart = 12
		s.TriggerEvery = 10
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-flap", ases), ases, 2)
		s.Flap = true
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-flap-as", ases), ases, 2)
		s.Failure = FailAS
		s.Flap = true
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-noise", ases), ases, 2)
		s.Noise = 30
		add(s)
		s = genBase(fmt.Sprintf("gen-n%d-dense", ases), ases, 2)
		s.AvgDegree = 7
		add(s)
	}
	return specs
}

func smokeMatrix(seed int64) []Spec {
	var specs []Spec
	add := func(s Spec) {
		s.Seed = specSeed(seed, len(specs))
		specs = append(specs, s)
	}
	add(fig1Base("fig1-link", 150))
	s := fig1Base("fig1-3peer-flap", 150)
	s.Peers = 3
	s.Flap = true
	add(s)
	add(genBase("gen-link", 32, 2))
	s = genBase("gen-as", 32, 2)
	s.Failure = FailAS
	add(s)
	s = genBase("gen-2peer-partial", 32, 1)
	s.Peers = 2
	s.PartialWithdraw = 0.6
	s.BurstStart = 12
	s.TriggerEvery = 10
	add(s)
	s = genBase("gen-noise", 40, 2)
	s.Noise = 30
	add(s)
	return specs
}
