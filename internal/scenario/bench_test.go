package scenario

import "testing"

// BenchmarkScenarioEval measures one full scenario evaluation: build
// the routed topology, replay the failure into a provisioned engine
// fleet, and forward the flow set through both dataplanes at every
// virtual-time tick.
func BenchmarkScenarioEval(b *testing.B) {
	spec := Spec{Name: "bench", Seed: 1, Topology: TopoFig1, PrefixesPerOrigin: 150, HopsAway: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sc.Eval()
		if err != nil {
			b.Fatal(err)
		}
		if rep.SwiftLost >= rep.BGPLost {
			b.Fatalf("swift %d >= bgp %d", rep.SwiftLost, rep.BGPLost)
		}
	}
}

// BenchmarkScenarioBuild isolates scenario construction: topology
// generation, routing solve, failure selection and burst replay.
func BenchmarkScenarioBuild(b *testing.B) {
	spec := Spec{Name: "bench", Seed: 1, Topology: TopoGenerated, NumASes: 40, PrefixesPerOrigin: 60, HopsAway: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}
