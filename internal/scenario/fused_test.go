package scenario

import (
	"bytes"
	"testing"
	"time"
)

// TestFusedSmokeMatrixDeterminism is the fused-mode half of the
// determinism contract: the same matrix and seed evaluated with
// fleet-level evidence fusion produce byte-identical JSON, and the
// fused report differs from (is not accidentally aliased to) the
// per-peer one on a matrix that contains multi-session scenarios.
func TestFusedSmokeMatrixDeterminism(t *testing.T) {
	rep, err := RunMode("smoke", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeFused {
		t.Fatalf("report mode = %q, want %q", rep.Mode, ModeFused)
	}
	again, err := RunMode("smoke", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("two fused runs with the same seed produced different JSON reports")
	}
	pp, err := RunMode("smoke", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := pp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jp) {
		t.Error("fused and per-peer smoke reports are byte-identical (mode tag missing?)")
	}
	// Fused must keep the smoke gate: strictly fewer packets lost than
	// the vanilla router on every remote failure.
	for _, r := range rep.Scenarios {
		if r.Remote && r.SwiftLost >= r.BGPLost {
			t.Errorf("%s: fused SWIFT lost %d >= vanilla %d on a remote failure", r.Name, r.SwiftLost, r.BGPLost)
		}
	}
}

// TestFusedNeverWorse is the acceptance gate for cross-peer fusion on
// the full default matrix: against per-peer SWIFT on the identical
// seed,
//
//   - single-session scenarios (and multi-session ones whose extra
//     sessions never burst) are unchanged — the fusion gate is inert
//     below MinBursting;
//   - on every scenario, fused never loses more packets, never has a
//     later mean time-to-restore, and never predicts more false
//     positives;
//   - on the multi-session fig1 scenarios (three genuinely bursting
//     vantages), fused strictly reduces both packets lost and mean
//     time-to-restore.
func TestFusedNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	pp, err := RunMode("default", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	fu, err := RunMode("default", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Scenarios) != len(fu.Scenarios) {
		t.Fatalf("scenario counts diverge: %d vs %d", len(pp.Scenarios), len(fu.Scenarios))
	}
	strictlyBetter := 0
	for i, pr := range pp.Scenarios {
		fr := fu.Scenarios[i]
		if pr.Name != fr.Name {
			t.Fatalf("scenario %d: name %q vs %q", i, pr.Name, fr.Name)
		}
		if fr.SwiftLost > pr.SwiftLost {
			t.Errorf("%s: fused lost %d > per-peer %d", pr.Name, fr.SwiftLost, pr.SwiftLost)
		}
		var ppRestore, fuRestore time.Duration
		ppFP, fuFP := 0, 0
		for j, p := range pr.Peers {
			f := fr.Peers[j]
			ppRestore += p.SwiftRestore
			fuRestore += f.SwiftRestore
			ppFP += p.FP
			fuFP += f.FP
			if len(pr.Peers) == 1 && (f.SwiftLost != p.SwiftLost || f.SwiftRestore != p.SwiftRestore || f.FP != p.FP || f.FN != p.FN) {
				t.Errorf("%s: single-session scenario changed under fusion: lost %d->%d restore %v->%v fp %d->%d",
					pr.Name, p.SwiftLost, f.SwiftLost, p.SwiftRestore, f.SwiftRestore, p.FP, f.FP)
			}
		}
		if fuRestore > ppRestore {
			t.Errorf("%s: fused mean restore %v > per-peer %v", pr.Name, fuRestore, ppRestore)
		}
		if fuFP > ppFP {
			t.Errorf("%s: fused FP %d > per-peer %d", pr.Name, fuFP, ppFP)
		}
		if len(pr.Peers) > 1 && fr.SwiftLost < pr.SwiftLost && fuRestore < ppRestore {
			strictlyBetter++
		}
	}
	// The three-vantage fig1 scenarios (x150 and x300) must both be
	// strict wins — that is the point of fusing.
	if strictlyBetter < 2 {
		t.Errorf("strictly-better multi-session scenarios = %d, want >= 2", strictlyBetter)
	}
	if fu.SwiftLost >= pp.SwiftLost {
		t.Errorf("matrix total: fused lost %d >= per-peer %d", fu.SwiftLost, pp.SwiftLost)
	}
}

// TestFusedMultiPeerEngagement pins the mechanism, not just the
// outcome: on the three-peer fig1 scenario the fused run must apply
// external verdicts to at least one session and veto at least one
// wrong-link inference, and every session keeps FNR zero.
func TestFusedMultiPeerEngagement(t *testing.T) {
	specs, err := Matrix("fig1", 1)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, spec := range specs {
		if spec.Peers < 3 {
			continue
		}
		sc, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sc.EvalFused()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Mode != ModeFused {
			t.Fatalf("%s: report mode = %q, want %q", spec.Name, rep.Mode, ModeFused)
		}
		ran = true
		external, vetoed := 0, 0
		for _, p := range rep.Peers {
			external += p.External
			vetoed += p.Vetoed
			if p.FNR != 0 {
				t.Errorf("%s %s: fused FNR = %v, want 0", spec.Name, p.Peer, p.FNR)
			}
		}
		if external == 0 {
			t.Errorf("%s: no external verdicts applied in fused mode", spec.Name)
		}
		if vetoed == 0 {
			t.Errorf("%s: no conflicting inferences vetoed in fused mode", spec.Name)
		}
	}
	if !ran {
		t.Fatal("fig1 matrix has no 3-peer scenario")
	}
}
