// Package netaddr provides a compact IPv4 prefix type used throughout the
// SWIFT reproduction. Prefixes are the unit of BGP routing state: every
// RIB entry, withdrawal, tag and forwarding rule is keyed by one.
//
// The type is a single uint64 (address in the high 32 bits, prefix length
// in the low bits), so it is comparable, hashable, and free to copy —
// important because the inference and encoding layers keep multi-million
// entry maps keyed by prefix.
package netaddr

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR prefix packed into a uint64: the network address
// occupies bits 8..39 and the prefix length bits 0..7. The zero value is
// the invalid prefix and is never a routable destination.
type Prefix uint64

// Invalid is the zero Prefix. It is returned by parsing failures and used
// as a sentinel by callers.
const Invalid Prefix = 0

var errBadPrefix = errors.New("netaddr: malformed prefix")

// MakePrefix builds a Prefix from a 32-bit address and a length in [0,32].
// The address is masked to its network bits so that two spellings of the
// same network compare equal.
func MakePrefix(addr uint32, length int) Prefix {
	if length < 0 || length > 32 {
		return Invalid
	}
	return Prefix(uint64(addr&Mask(length))<<8 | uint64(length))
}

// Mask returns the network mask for a prefix length in [0,32].
func Mask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - uint(length))
}

// Addr returns the 32-bit network address.
func (p Prefix) Addr() uint32 { return uint32(p >> 8) }

// Len returns the prefix length in bits.
func (p Prefix) Len() int { return int(p & 0xff) }

// IsValid reports whether p is a well-formed, non-zero prefix.
func (p Prefix) IsValid() bool {
	return p != Invalid && p.Len() <= 32 && p.Addr()&^Mask(p.Len()) == 0
}

// Contains reports whether addr falls inside p.
func (p Prefix) Contains(addr uint32) bool {
	return addr&Mask(p.Len()) == p.Addr()
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Len() <= q.Len() {
		return p.Contains(q.Addr())
	}
	return q.Contains(p.Addr())
}

// String renders the prefix in dotted-quad CIDR notation.
func (p Prefix) String() string {
	a := p.Addr()
	return fmt.Sprintf("%d.%d.%d.%d/%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a), p.Len())
}

// ParsePrefix parses dotted-quad CIDR notation ("10.0.0.0/8").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Invalid, errBadPrefix
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return Invalid, errBadPrefix
	}
	var addr uint32
	rest := s[:slash]
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return Invalid, errBadPrefix
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 {
			return Invalid, errBadPrefix
		}
		addr = addr<<8 | uint32(v)
	}
	p := MakePrefix(addr, length)
	if p.Addr() != addr {
		return Invalid, fmt.Errorf("netaddr: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix for constants in tests and examples; it
// panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Sort orders prefixes by address then by length, in place. The order is
// deterministic, which keeps trace generation and tests reproducible.
func Sort(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}

// DedupSorted compacts equal neighbors of a sorted slice in place and
// returns the shortened slice — the allocation-free union finisher the
// reroute-path set materializations use (append, Sort, DedupSorted).
func DedupSorted(ps []Prefix) []Prefix {
	if len(ps) < 2 {
		return ps
	}
	w := 1
	for i := 1; i < len(ps); i++ {
		if ps[i] != ps[w-1] {
			ps[w] = ps[i]
			w++
		}
	}
	return ps[:w]
}

// BlockFor deterministically derives the i-th /24 prefix belonging to an
// origin AS. Every synthetic workload in this repository draws its
// address space through this function so that a (origin, index) pair
// always maps to the same prefix, letting independent components (trace
// generator, simulator, evaluator) agree without sharing state.
//
// The /24 network number is simply origin*256+i, so origins below 2^16
// get 256 collision-free prefixes each.
func BlockFor(origin uint32, i int) Prefix {
	if i < 0 || i > 0xff || origin > 0xffff {
		return Invalid
	}
	return MakePrefix((origin<<8|uint32(i))<<8, 24)
}

// PrefixFor deterministically derives the i-th host route (/32)
// originated by an origin AS. It complements BlockFor for workloads that
// need more than 256 prefixes per origin — the paper's case study
// advertises 290k prefixes from a single AS. Unique for origins below
// 2^12 and indices below 2^20.
func PrefixFor(origin uint32, i int) Prefix {
	if i < 0 || i >= 1<<20 || origin >= 1<<12 {
		return Invalid
	}
	return MakePrefix(origin<<20|uint32(i), 32)
}

// PrefixOrigin inverts PrefixFor.
func PrefixOrigin(p Prefix) (origin uint32, index int, ok bool) {
	if !p.IsValid() || p.Len() != 32 {
		return 0, 0, false
	}
	return p.Addr() >> 20, int(p.Addr() & (1<<20 - 1)), true
}

// OriginOf inverts BlockFor: it recovers the (origin, index) pair encoded
// in a /24 produced by BlockFor. ok is false for prefixes outside the
// deterministic layout.
func OriginOf(p Prefix) (origin uint32, index int, ok bool) {
	if !p.IsValid() || p.Len() != 24 {
		return 0, 0, false
	}
	n := p.Addr() >> 8
	return n >> 8, int(n & 0xff), true
}
