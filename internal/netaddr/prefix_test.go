package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		addr uint32
		len  int
	}{
		{"10.0.0.0/8", 0x0a000000, 8},
		{"192.168.1.0/24", 0xc0a80100, 24},
		{"0.0.0.0/0", 0, 0},
		{"255.255.255.255/32", 0xffffffff, 32},
		{"172.16.0.0/12", 0xac100000, 12},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", c.in, err)
		}
		if p.Addr() != c.addr || p.Len() != c.len {
			t.Errorf("ParsePrefix(%q) = %08x/%d, want %08x/%d", c.in, p.Addr(), p.Len(), c.addr, c.len)
		}
		if got := p.String(); got != c.in {
			t.Errorf("String() round trip = %q, want %q", got, c.in)
		}
	}
}

func TestParsePrefixErrors(t *testing.T) {
	bad := []string{
		"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0/8",
		"10.0.0.0.0/8", "256.0.0.0/8", "10.0.0.1/24", // host bits set
		"a.b.c.d/8", "10.0.0.0/x",
	}
	for _, s := range bad {
		if p, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) = %v, want error", s, p)
		}
	}
}

func TestMask(t *testing.T) {
	for _, c := range []struct {
		len  int
		want uint32
	}{{0, 0}, {8, 0xff000000}, {16, 0xffff0000}, {24, 0xffffff00}, {32, 0xffffffff}, {1, 0x80000000}, {31, 0xfffffffe}} {
		if got := Mask(c.len); got != c.want {
			t.Errorf("Mask(%d) = %08x, want %08x", c.len, got, c.want)
		}
	}
}

func TestContainsOverlaps(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(0x0a010203) {
		t.Error("10.1.0.0/16 should contain 10.1.2.3")
	}
	if p.Contains(0x0a020203) {
		t.Error("10.1.0.0/16 should not contain 10.2.2.3")
	}
	q := MustParsePrefix("10.1.2.0/24")
	if !p.Overlaps(q) || !q.Overlaps(p) {
		t.Error("nested prefixes must overlap symmetrically")
	}
	r := MustParsePrefix("10.2.0.0/16")
	if p.Overlaps(r) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestMakePrefixMasksHostBits(t *testing.T) {
	p := MakePrefix(0x0a0102ff, 24)
	if p.Addr() != 0x0a010200 {
		t.Errorf("MakePrefix did not mask host bits: %08x", p.Addr())
	}
	if !p.IsValid() {
		t.Error("masked prefix should be valid")
	}
}

func TestInvalidPrefix(t *testing.T) {
	if Invalid.IsValid() {
		t.Error("zero prefix must be invalid")
	}
	if MakePrefix(0, 33).IsValid() {
		t.Error("length 33 must be invalid")
	}
}

func TestBlockForRoundTrip(t *testing.T) {
	f := func(origin uint16, idx uint8) bool {
		p := BlockFor(uint32(origin), int(idx))
		if !p.IsValid() && origin != 0 {
			// origin 0, idx 0 packs to network 0 which is the Invalid
			// sentinel; all other combinations must be valid.
			return origin == 0 && idx == 0
		}
		o, i, ok := OriginOf(p)
		return ok && o == uint32(origin) && i == int(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockForUnique(t *testing.T) {
	seen := make(map[Prefix]bool)
	for origin := uint32(1); origin < 200; origin++ {
		for i := 0; i < 30; i++ {
			p := BlockFor(origin, i)
			if seen[p] {
				t.Fatalf("duplicate prefix %v for origin %d index %d", p, origin, i)
			}
			seen[p] = true
		}
	}
}

func TestPrefixComparable(t *testing.T) {
	// Prefix must be usable as a map key with value semantics.
	m := map[Prefix]int{MustParsePrefix("10.0.0.0/8"): 1}
	if m[MakePrefix(0x0a000000, 8)] != 1 {
		t.Error("equivalent prefixes must be equal map keys")
	}
}

func TestSortDeterministic(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.2.0.0/16"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.0.0/24"),
	}
	Sort(ps)
	if ps[0].String() != "10.1.0.0/16" || ps[1].String() != "10.1.0.0/24" || ps[2].String() != "10.2.0.0/16" {
		t.Errorf("unexpected order: %v", ps)
	}
}

func TestPrefixPropertyContainsSelf(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		length := int(l % 33)
		p := MakePrefix(addr, length)
		return p.Contains(p.Addr())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
