package controller

import (
	"fmt"
	"io"
	"sort"

	"swift/internal/snapshot"
	swiftengine "swift/internal/swift"
)

// Snapshot serializes the whole fleet to w in the warm-restart wire
// format: the shared intern pool plus every live peer engine's state.
//
// The cut is consistent: Sync first drains everything already enqueued,
// then the fleet quiesces — all stripe locks (no peers appear or
// disappear) and then every peer lock in key order (no engine mutates).
// Writers that race the quiesce simply block: deliveries park on the
// peer lock inside their shard worker, lookups park on the stripe
// locks, and both resume when the export is done. Nothing here waits on
// a worker or the fusion pump while holding a lock, so the blocking is
// one-way.
func (f *Fleet) Snapshot(w io.Writer) error {
	if f.closed.Load() {
		return ErrClosed
	}
	f.Sync()
	for i := range f.stripes {
		f.stripes[i].mu.Lock()
		defer f.stripes[i].mu.Unlock()
	}
	peers := make([]*FleetPeer, 0, 16)
	for i := range f.stripes {
		for _, p := range f.stripes[i].peers {
			// A closing peer's engine is about to be released on its
			// shard worker; its session is gone, so it has no place in
			// a warm restart.
			if !p.closing.Load() {
				peers = append(peers, p)
			}
		}
	}
	sortPeers(peers)
	for _, p := range peers {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	img := snapshot.FleetImage{
		Pool:  f.pool.Export(),
		Peers: make([]snapshot.PeerImage, len(peers)),
	}
	for i, p := range peers {
		img.Peers[i] = snapshot.PeerImage{Key: p.key, State: p.engine.ExportState()}
	}
	return snapshot.Write(w, &img)
}

// RestoreFleet builds a running fleet from a snapshot stream without
// re-ingesting any dump: the pool's dense path ids are re-seated
// exactly, each peer's engine is rebuilt around them, and the compiled
// schemes and provisioned FIBs load verbatim. cfg plays the same role
// as in NewFleet except that OnPeer is not called for restored peers —
// the state it would preload (alternate RIBs) is in the snapshot.
//
// The Engine factory must leave Config.Pool unset (or set it to the
// fleet pool it cannot know yet): snapshot path ids only mean anything
// against the shared pool the image was taken from.
//
// On error the partially built fleet is closed and the error returned;
// the caller falls back to a cold start.
func RestoreFleet(r io.Reader, cfg FleetConfig) (*Fleet, error) {
	img, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	f := NewFleet(cfg)
	if err := f.restore(img); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (f *Fleet) restore(img *snapshot.FleetImage) error {
	if err := f.pool.Restore(img.Pool); err != nil {
		return err
	}
	for i := range img.Peers {
		if err := f.restorePeer(&img.Peers[i]); err != nil {
			return fmt.Errorf("controller: restore peer %s: %w", img.Peers[i].Key, err)
		}
	}
	// Close the pool's restore window: every table has taken its path
	// references, so anything still unreferenced was only live in the
	// snapshot via state we do not restore.
	f.pool.PruneUnreferenced()
	f.logf("fleet: restored %d peers, %d paths", len(img.Peers), f.pool.Len())
	return nil
}

// restorePeer is Peer()'s creation path with RestoreState in place of
// the OnPeer hook. The fleet is private to the restoring goroutine, so
// there is no creation race to double-check against.
func (f *Fleet) restorePeer(pi *snapshot.PeerImage) error {
	key := pi.Key
	cfg := swiftengine.Config{PrimaryNeighbor: key.AS}
	if f.cfg.Engine != nil {
		cfg = f.cfg.Engine(key)
	}
	if cfg.Pool == nil {
		cfg.Pool = f.pool
	}
	if cfg.Pool != f.pool {
		return fmt.Errorf("engine factory supplied a private pool; snapshot ids are against the fleet pool")
	}
	if f.fusion != nil && cfg.Fusion == nil {
		cfg.Fusion = f.fusion.Gate(key)
	}
	p := &FleetPeer{
		key:    key,
		fleet:  f,
		worker: f.worker(key),
	}
	cfg.Observer = f.wireObserver(p, cfg.Observer)
	p.engine = swiftengine.New(cfg)
	if err := p.engine.RestoreState(pi.State); err != nil {
		return err
	}
	if pi.State.RerouteActive {
		// Seed the aggregate gauge the observer normally maintains.
		p.rerouting = true
		f.rerouting.Add(1)
	}
	s := f.stripe(key)
	s.mu.Lock()
	s.peers[key] = p
	s.mu.Unlock()
	return nil
}

func sortPeers(peers []*FleetPeer) {
	sort.Slice(peers, func(i, j int) bool {
		a, b := peers[i].key, peers[j].key
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		return a.BGPID < b.BGPID
	})
}
