// Package controller implements the paper's §7 deployment scheme for
// routers without a native two-stage table: a SWIFT controller speaks
// eBGP with the protected router's peers (the ExaBGP role), runs the
// SWIFT engine on each session's stream, and programs an SDN-switch-
// like data plane (our dataplane.FIB) with the tag rules. The protected
// router only needs BGP and ARP; here the "switch" is the simulated FIB
// the engine owns.
package controller

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpd"
	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/topology"
)

// Controller wires live BGP sessions into a SWIFT engine.
type Controller struct {
	mu     sync.Mutex
	engine *swiftengine.Engine
	start  time.Time
	logf   func(string, ...any)

	withdrawals   atomic.Uint64
	announcements atomic.Uint64

	wg       sync.WaitGroup
	sessions []*bgpd.Session
}

// New wraps an engine. The engine must already be provisioned (or be
// provisioned via Provision below after table transfer).
func New(engine *swiftengine.Engine, logf func(string, ...any)) *Controller {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Controller{engine: engine, start: time.Now(), logf: logf}
}

// Engine returns the wrapped engine. Callers must not use it
// concurrently with attached sessions.
func (c *Controller) Engine() *swiftengine.Engine { return c.engine }

// LoadTable ingests an initial table (e.g., from the first flood of
// UPDATEs after session establishment) into the primary RIB.
func (c *Controller) LoadTable(updates []*bgp.Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range updates {
		for _, p := range u.NLRI {
			c.engine.LearnPrimary(p, u.Attrs.ASPath)
		}
	}
}

// LoadAlternate ingests a neighbor's table into the alternates pool.
func (c *Controller) LoadAlternate(neighbor uint32, updates []*bgp.Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range updates {
		for _, p := range u.NLRI {
			c.engine.LearnAlternate(neighbor, p, u.Attrs.ASPath)
		}
	}
}

// Provision compiles the plan/tags once tables are loaded.
func (c *Controller) Provision() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.Provision()
}

// AttachPrimary consumes the primary session's update stream until the
// session closes, driving the engine in real time.
func (c *Controller) AttachPrimary(s *bgpd.Session) {
	c.sessions = append(c.sessions, s)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for u := range s.Updates() {
			c.apply(u)
		}
		c.logf("controller: primary session with AS%d closed", s.PeerAS())
	}()
}

// apply feeds one UPDATE into the engine as an event batch with a
// wall-clock stream offset.
func (c *Controller) apply(u *bgp.Update) {
	at := time.Since(c.start)
	b := make(event.Batch, 0, len(u.Withdrawn)+len(u.NLRI))
	for _, p := range u.Withdrawn {
		b = append(b, event.Withdraw(at, p))
	}
	for _, p := range u.NLRI {
		b = append(b, event.Announce(at, p, u.Attrs.ASPath))
	}
	c.withdrawals.Add(uint64(len(u.Withdrawn)))
	c.announcements.Add(uint64(len(u.NLRI)))
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.engine.Apply(b); err != nil {
		c.logf("controller: apply: %v", err)
	}
}

// Tick advances the engine's burst detector on a timer; run it from a
// ticker goroutine when streams can go quiet.
func (c *Controller) Tick() {
	at := time.Since(c.start)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.engine.Apply(event.Batch{event.Tick(at)}); err != nil {
		c.logf("controller: tick: %v", err)
	}
}

// Wait blocks until all attached sessions have drained.
func (c *Controller) Wait() { c.wg.Wait() }

// ForwardPrefix asks the programmed data plane where a prefix goes.
func (c *Controller) ForwardPrefix(p netaddr.Prefix) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.FIB().ForwardPrefix(p)
}

// OnLink reports how many RIB prefixes currently cross l.
func (c *Controller) OnLink(l topology.Link) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.RIB().OnLink(l)
}

// Decisions snapshots the engine's decision log.
func (c *Controller) Decisions() []swiftengine.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.Decisions()
}

// Status renders a one-line summary.
func (c *Controller) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("rib=%d prefixes, rules=%d, decisions=%d, rerouting=%v",
		c.engine.RIB().Len(), c.engine.FIB().NumRules(), c.engine.NumDecisions(), c.engine.RerouteActive())
}
